//===- tools/bench-diff.cpp - BENCH_*.json perf-regression sentinel -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two study reports written by writeStudyJson (the BENCH_*.json
/// files) cell by cell — per solver, per category: solved counts, Tmin /
/// Tmax / Tavg — plus the stage-0 counter split, and fails (exit 1) when
/// the current run regresses past the configured noise tolerance:
///
///   bench-diff [options] BASELINE.json CURRENT.json
///     --time-tol=FRAC       relative timing growth allowed (default 0.5)
///     --time-abs=SECONDS    absolute timing slack on top (default 0.05)
///     --solved-slack=N      allowed per-cell solved-count drop (default 0)
///     --allow-config-mismatch  compare despite differing run configs
///     --report=FILE         also write the report to FILE
///
/// A timing cell regresses when `current > baseline * (1 + tol) + abs`;
/// both knobs matter because short cells are dominated by scheduler noise
/// (absolute slack) and long cells by proportional drift (relative
/// tolerance). Solved counts are deterministic per config, so their default
/// slack is zero — a drop means a query stopped verifying in budget, the
/// one thing a perf sentinel must never wave through. Missing solvers or
/// categories in the current report fail likewise; new ones only warn.
///
/// Exit codes: 0 pass, 1 regression, 2 usage / unreadable or malformed
/// input / config mismatch. CI (bench-smoke) runs every bench twice —
/// against the checked-in baseline and against a deliberately regressed
/// fixture that must exit non-zero — so the sentinel itself is tested.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace mba;

namespace {

struct Options {
  double TimeTol = 0.5;
  double TimeAbs = 0.05;
  unsigned SolvedSlack = 0;
  bool AllowConfigMismatch = false;
  std::string ReportPath;
  std::string BaselinePath, CurrentPath;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench-diff [--time-tol=FRAC] [--time-abs=SECONDS] "
               "[--solved-slack=N] [--allow-config-mismatch] "
               "[--report=FILE] BASELINE.json CURRENT.json\n");
  return 2;
}

/// Report sink: stdout plus the optional --report file.
class Report {
public:
  explicit Report(const std::string &Path) {
    if (!Path.empty() && !(File = std::fopen(Path.c_str(), "w")))
      std::fprintf(stderr, "warning: cannot write report to '%s'\n",
                   Path.c_str());
  }
  ~Report() {
    if (File)
      std::fclose(File);
  }
  Report(const Report &) = delete;
  Report &operator=(const Report &) = delete;

  void line(const char *Fmt, ...) {
    va_list Args;
    va_start(Args, Fmt);
    char Buf[512];
    std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
    va_end(Args);
    std::printf("%s\n", Buf);
    if (File)
      std::fprintf(File, "%s\n", Buf);
  }

private:
  std::FILE *File = nullptr;
};

/// One solver/category cell of a report.
struct Cell {
  std::string Solver, Category;
  unsigned Solved = 0, Total = 0;
  bool HasTimes = false;
  double TMin = 0, TMax = 0, TAvg = 0;
};

/// Flattens the "solvers" array into cells; false on schema violations.
bool collectCells(const json::Value &Root, std::vector<Cell> &Out,
                  std::string &Err) {
  const json::Value *Solvers = Root.get("solvers");
  if (!Solvers || !Solvers->isArray()) {
    Err = "no \"solvers\" array";
    return false;
  }
  for (const json::Value &S : Solvers->elements()) {
    std::string Name(S.stringAt("name"));
    const json::Value *Cats = S.get("categories");
    if (Name.empty() || !Cats || !Cats->isArray()) {
      Err = "solver entry without name/categories";
      return false;
    }
    for (const json::Value &C : Cats->elements()) {
      Cell Cell;
      Cell.Solver = Name;
      Cell.Category = std::string(C.stringAt("category"));
      if (Cell.Category.empty()) {
        Err = "category entry without name";
        return false;
      }
      Cell.Solved = (unsigned)C.numberAt("solved");
      Cell.Total = (unsigned)C.numberAt("total");
      if (const json::Value *T = C.get("tavg")) {
        Cell.HasTimes = true;
        Cell.TAvg = T->asNumber();
        Cell.TMin = C.numberAt("tmin");
        Cell.TMax = C.numberAt("tmax");
      }
      Out.push_back(std::move(Cell));
    }
  }
  return true;
}

const Cell *findCell(const std::vector<Cell> &Cells, const Cell &Like) {
  for (const Cell &C : Cells)
    if (C.Solver == Like.Solver && C.Category == Like.Category)
      return &C;
  return nullptr;
}

/// The comparability key of a run: cells from runs with different scale,
/// width, seed or pipeline configuration measure different work.
std::string configKey(const json::Value &Root) {
  const json::Value *Config = Root.get("config");
  if (!Config)
    return "<none>";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "per_category=%.0f timeout=%.3f width=%.0f seed=%.0f "
                "stage_zero=%d simplify=%d incremental=%d",
                Config->numberAt("per_category"),
                Config->numberAt("timeout_seconds"),
                Config->numberAt("width"), Config->numberAt("seed"),
                Config->get("stage_zero") && Config->get("stage_zero")->asBool(),
                Config->get("simplify") && Config->get("simplify")->asBool(),
                Config->get("incremental") &&
                    Config->get("incremental")->asBool());
  return Buf;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, Len) == 0 ? Arg + Len : nullptr;
    };
    if (const char *V = Value("--time-tol="))
      Opts.TimeTol = std::strtod(V, nullptr);
    else if (const char *V = Value("--time-abs="))
      Opts.TimeAbs = std::strtod(V, nullptr);
    else if (const char *V = Value("--solved-slack="))
      Opts.SolvedSlack = (unsigned)std::strtoul(V, nullptr, 10);
    else if (std::strcmp(Arg, "--allow-config-mismatch") == 0)
      Opts.AllowConfigMismatch = true;
    else if (const char *V = Value("--report="))
      Opts.ReportPath = V;
    else if (Arg[0] == '-' && Arg[1] == '-')
      return usage();
    else if (Opts.BaselinePath.empty())
      Opts.BaselinePath = Arg;
    else if (Opts.CurrentPath.empty())
      Opts.CurrentPath = Arg;
    else
      return usage();
  }
  if (Opts.CurrentPath.empty() || Opts.TimeTol < 0 || Opts.TimeAbs < 0)
    return usage();

  json::Value Baseline, Current;
  std::string Err;
  if (!json::parseFile(Opts.BaselinePath, Baseline, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.BaselinePath.c_str(),
                 Err.c_str());
    return 2;
  }
  if (!json::parseFile(Opts.CurrentPath, Current, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.CurrentPath.c_str(),
                 Err.c_str());
    return 2;
  }

  std::vector<Cell> BaseCells, CurCells;
  if (!collectCells(Baseline, BaseCells, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.BaselinePath.c_str(),
                 Err.c_str());
    return 2;
  }
  if (!collectCells(Current, CurCells, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.CurrentPath.c_str(),
                 Err.c_str());
    return 2;
  }

  Report Out(Opts.ReportPath);
  Out.line("bench-diff: %s -> %s", Opts.BaselinePath.c_str(),
           Opts.CurrentPath.c_str());
  Out.line("  tolerance: +%.0f%% relative, +%.3fs absolute, solved slack %u",
           Opts.TimeTol * 100, Opts.TimeAbs, Opts.SolvedSlack);

  std::string BaseConfig = configKey(Baseline), CurConfig = configKey(Current);
  if (BaseConfig != CurConfig) {
    Out.line("  config mismatch:");
    Out.line("    baseline: %s", BaseConfig.c_str());
    Out.line("    current:  %s", CurConfig.c_str());
    if (!Opts.AllowConfigMismatch) {
      std::fprintf(stderr, "error: run configs differ; cells are not "
                           "comparable (--allow-config-mismatch overrides)\n");
      return 2;
    }
  }

  unsigned Regressions = 0;
  for (const Cell &B : BaseCells) {
    std::string Label = B.Solver + "/" + B.Category;
    const Cell *C = findCell(CurCells, B);
    if (!C) {
      Out.line("  [FAIL] %-28s missing from current report", Label.c_str());
      ++Regressions;
      continue;
    }
    bool CellBad = false;
    std::string Detail;
    char Buf[160];
    // Solved counts are deterministic per config; any drop beyond the
    // explicit slack is a regression, however fast the remaining cells ran.
    if (C->Solved + Opts.SolvedSlack < B.Solved) {
      CellBad = true;
      std::snprintf(Buf, sizeof(Buf), " solved %u -> %u", B.Solved, C->Solved);
      Detail += Buf;
    }
    auto CheckTime = [&](const char *What, double Base, double Cur) {
      double Limit = Base * (1 + Opts.TimeTol) + Opts.TimeAbs;
      if (Cur > Limit) {
        CellBad = true;
        std::snprintf(Buf, sizeof(Buf), " %s %.3fs -> %.3fs (limit %.3fs)",
                      What, Base, Cur, Limit);
        Detail += Buf;
      }
    };
    if (B.HasTimes && C->HasTimes) {
      CheckTime("tavg", B.TAvg, C->TAvg);
      CheckTime("tmax", B.TMax, C->TMax);
    }
    if (CellBad) {
      Out.line("  [FAIL] %-28s%s", Label.c_str(), Detail.c_str());
      ++Regressions;
    } else {
      std::snprintf(Buf, sizeof(Buf), " solved %u/%u", C->Solved, C->Total);
      std::string Note = Buf;
      if (B.HasTimes && C->HasTimes) {
        double Delta = B.TAvg > 0 ? 100.0 * (C->TAvg - B.TAvg) / B.TAvg : 0;
        std::snprintf(Buf, sizeof(Buf), ", tavg %.3fs -> %.3fs (%+.0f%%)",
                      B.TAvg, C->TAvg, Delta);
        Note += Buf;
      }
      Out.line("  [ok]   %-28s%s", Label.c_str(), Note.c_str());
    }
  }
  for (const Cell &C : CurCells)
    if (!findCell(BaseCells, C))
      Out.line("  [new]  %s/%s (not in baseline)", C.Solver.c_str(),
               C.Category.c_str());

  // Stage-0 split: deterministic per config, so drift is worth seeing in
  // the report, but it is a behavior diff, not a perf regression — the
  // solved-count gate above catches any semantic fallout.
  auto StageZero = [](const json::Value &Root, const char *Key) {
    const json::Value *S = Root.get("stage_zero");
    return S ? (long long)S->numberAt(Key) : -1;
  };
  for (const char *Key : {"proved", "refuted", "fallthrough"}) {
    long long BaseN = StageZero(Baseline, Key), CurN = StageZero(Current, Key);
    if (BaseN != CurN)
      Out.line("  [note] stage_zero.%s %lld -> %lld", Key, BaseN, CurN);
  }

  if (Regressions) {
    Out.line("result: REGRESSION (%u failing cell%s)", Regressions,
             Regressions == 1 ? "" : "s");
    return 1;
  }
  Out.line("result: PASS (%zu cells compared)", BaseCells.size());
  return 0;
}
