//===- tools/gen-basis3.cpp - Regenerate data/basis3.tbl ------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Emits the 3-variable basis table (synth/Basis3.h) on stdout, or into the
// file given as argv[1]. The output is deterministic, so regenerating over
// a checked-in data/basis3.tbl must be a no-op; CI can diff to prove the
// shipped file matches the code.
//
//===----------------------------------------------------------------------===//

#include "synth/Basis3.h"

#include <cstdio>
#include <fstream>
#include <iostream>

int main(int argc, char **argv) {
  std::string Table = mba::synth::generateBasis3Table();
  if (argc > 1) {
    std::ofstream Out(argv[1], std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "gen-basis3: cannot write %s\n", argv[1]);
      return 1;
    }
    Out << Table;
    return 0;
  }
  std::cout << Table;
  return 0;
}
