//===- tools/mba-tidy/Checks.h - Repo-specific lint checks ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mba-tidy check framework: a Diagnostic record, an abstract Check,
/// and the registry of all repo-specific checks. Checks are token-level
/// matchers over a lexed SourceFile (see Lexer.h); each one encodes an
/// invariant of this codebase that the compiler cannot express:
///
///   mba-cross-context-expr      Expr* interned in one Context passed into
///                               another Context's API without cloneExpr.
///   mba-context-captured-by-pool  A Context captured into a
///                               ThreadPool::parallelFor worker lambda
///                               instead of per-worker Context instances.
///   mba-unnamed-raii            Discarded RAII temporaries (MutexLock,
///                               SpanGuard, std::lock_guard, ...) that
///                               release their resource immediately.
///   mba-isa-outside-seam        Raw SIMD intrinsics, vector types, or
///                               CPU-feature macros outside the
///                               src/support/Bitslice* dispatch seam.
///   mba-raw-pointer-in-cache-key  Pointer values folded into 64-bit
///                               semantic cache keys, which breaks
///                               cross-process snapshot persistence.
///   mba-sat-solver-in-loop      Fresh SatSolver constructed inside a
///                               per-query loop in src/solvers instead of
///                               one hoisted incremental instance solved
///                               under assumptions.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_TOOLS_MBATIDY_CHECKS_H
#define MBA_TOOLS_MBATIDY_CHECKS_H

#include "Lexer.h"

#include <memory>

namespace mba::tidy {

struct Diagnostic {
  std::string File;
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;
  std::string CheckName;
};

class Check {
public:
  virtual ~Check() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  /// Appends findings for \p SF to \p Out. NOLINT filtering happens in
  /// runChecks, not here.
  virtual void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const = 0;
};

/// Instantiates every registered check, in stable (alphabetical) order.
std::vector<std::unique_ptr<Check>> createAllChecks();

/// Runs each check in \p Checks whose name is in \p Enabled (empty set =
/// run all) over \p SF and returns the findings that survive the file's
/// NOLINT suppressions, sorted by (line, col).
std::vector<Diagnostic>
runChecks(const SourceFile &SF,
          const std::vector<std::unique_ptr<Check>> &Checks,
          const std::set<std::string> &Enabled = {});

} // namespace mba::tidy

#endif // MBA_TOOLS_MBATIDY_CHECKS_H
