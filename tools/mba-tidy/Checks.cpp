//===- tools/mba-tidy/Checks.cpp - Repo-specific lint checks --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include <algorithm>
#include <tuple>

using namespace mba::tidy;

namespace {

using Tokens = std::vector<Token>;

/// Returns the index of the token matching the opener at \p Open
/// ('(' / '[' / '{'), treating all three bracket kinds as nesting, or
/// T.size() if unbalanced. Angle brackets are NOT handled here (they are
/// also comparison operators); see skipTemplateArgs.
size_t findBalanced(const Tokens &T, size_t Open) {
  int Depth = 0;
  for (size_t I = Open; I < T.size(); ++I) {
    const std::string &S = T[I].Text;
    if (S == "(" || S == "[" || S == "{")
      ++Depth;
    else if (S == ")" || S == "]" || S == "}") {
      if (--Depth == 0)
        return I;
    }
  }
  return T.size();
}

/// If T[I] is '<', returns the index just past the matching '>', treating
/// ">>" as two closers. Gives up (returns I) when a ';' or unbalanced
/// bracket intervenes — then it was a comparison, not template args.
size_t skipTemplateArgs(const Tokens &T, size_t I) {
  if (I >= T.size() || !T[I].is("<"))
    return I;
  int Depth = 0;
  for (size_t J = I; J < T.size(); ++J) {
    const std::string &S = T[J].Text;
    if (S == "<")
      ++Depth;
    else if (S == ">") {
      if (--Depth == 0)
        return J + 1;
    } else if (S == ">>") {
      Depth -= 2;
      if (Depth <= 0)
        return J + 1;
    } else if (S == ";" || S == "{" || S == "}") {
      return I; // not template arguments after all
    }
  }
  return I;
}

void emit(std::vector<Diagnostic> &Out, const SourceFile &SF, const Token &At,
          std::string_view CheckName, std::string Message) {
  Out.push_back({SF.Path, At.Line, At.Col, std::move(Message),
                 std::string(CheckName)});
}

//===----------------------------------------------------------------------===//
// Scope-aware tracking of Context and Expr variables, shared by the two
// cross-context checks.
//===----------------------------------------------------------------------===//

struct VarScopes {
  struct Info {
    bool IsContext = false;
    std::string ExprOrigin; // for Expr vars: owning Context name, "" = unknown
  };
  std::vector<std::map<std::string, Info>> Scopes{1};

  void enter() { Scopes.emplace_back(); }
  void leave() {
    if (Scopes.size() > 1)
      Scopes.pop_back();
  }
  void declare(const std::string &Name, Info I) {
    Scopes.back()[Name] = std::move(I);
  }
  const Info *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }
  Info *lookupMutable(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }
  bool isContext(const std::string &Name) const {
    const Info *I = lookup(Name);
    return I && I->IsContext;
  }
};

/// Classifies the expression starting at T[I] (just past an '=') as an
/// Expr-producing RHS and returns the owning Context name, or "" when the
/// origin cannot be pinned down. Recognizes:
///   Ctx.getFoo(...)          -> "Ctx"
///   cloneExpr(Dst, ...)      -> "Dst"
///   OtherTrackedExprVar      -> its recorded origin
std::string classifyExprOrigin(const Tokens &T, size_t I,
                               const VarScopes &Vars) {
  if (I >= T.size() || !T[I].isIdent())
    return "";
  const std::string &Head = T[I].Text;
  if (Head == "cloneExpr" && I + 2 < T.size() && T[I + 1].is("(") &&
      T[I + 2].isIdent() && Vars.isContext(T[I + 2].Text))
    return T[I + 2].Text;
  if (I + 1 < T.size() && T[I + 1].is(".") && Vars.isContext(Head))
    return Head;
  const VarScopes::Info *Alias = Vars.lookup(Head);
  if (Alias && !Alias->IsContext && !Alias->ExprOrigin.empty() &&
      (I + 1 >= T.size() || T[I + 1].is(";") || T[I + 1].is(",") ||
       T[I + 1].is(")")))
    return Alias->ExprOrigin;
  return "";
}

/// Walks T[I..] looking for variable declarations and updating Vars /
/// scope depth. Returns true (and advances I past the declared name) when
/// a declaration was consumed at I. Shared pre-step for both context
/// checks so they agree on what a "Context variable" is.
bool consumeDeclaration(const Tokens &T, size_t &I, VarScopes &Vars) {
  // `Context [&*]* Name` — also matches reference params in signatures and
  // qualified spellings (`mba::ast::Context &Ctx`): qualification tokens
  // precede `Context`, so they never reach this pattern.
  if (T[I].is("Context")) {
    size_t J = I + 1;
    while (J < T.size() && (T[J].is("&") || T[J].is("*")))
      ++J;
    if (J < T.size() && T[J].isIdent() &&
        (J + 1 >= T.size() || !T[J + 1].is("::"))) {
      Vars.declare(T[J].Text, {/*IsContext=*/true, ""});
      I = J;
      return true;
    }
    return false;
  }
  // `Expr * Name [= RHS]` — tracks interned-node pointers. `const` before
  // Expr is irrelevant; the lexer hands us the `Expr` token either way.
  if (T[I].is("Expr") && I + 2 < T.size() && T[I + 1].is("*") &&
      T[I + 2].isIdent()) {
    std::string Name = T[I + 2].Text;
    std::string Origin;
    if (I + 3 < T.size() && T[I + 3].is("="))
      Origin = classifyExprOrigin(T, I + 4, Vars);
    Vars.declare(Name, {/*IsContext=*/false, Origin});
    I = I + 2;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// mba-cross-context-expr
//===----------------------------------------------------------------------===//

class CrossContextExprCheck : public Check {
public:
  std::string_view name() const override { return "mba-cross-context-expr"; }
  std::string_view description() const override {
    return "Expr* interned in one Context passed into another Context's API "
           "without an intervening cloneExpr()";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    const Tokens &T = SF.Tokens;
    VarScopes Vars;
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].is("{")) {
        Vars.enter();
        continue;
      }
      if (T[I].is("}")) {
        Vars.leave();
        continue;
      }
      if (consumeDeclaration(T, I, Vars))
        continue;
      if (!T[I].isIdent())
        continue;
      // Reassignment keeps the origin fresh: `E = Ctx2.rebuild(...)`.
      if (I + 1 < T.size() && T[I + 1].is("=")) {
        if (VarScopes::Info *Known = Vars.lookupMutable(T[I].Text);
            Known && !Known->IsContext) {
          Known->ExprOrigin = classifyExprOrigin(T, I + 2, Vars);
          continue;
        }
      }
      // `B.method( ...args... )` with B a tracked Context.
      if (I + 3 < T.size() && T[I + 1].is(".") && T[I + 2].isIdent() &&
          T[I + 3].is("(") && Vars.isContext(T[I].Text))
        scanCallArgs(SF, T, I, /*OpenParen=*/I + 3, Vars, Out);
    }
  }

private:
  void scanCallArgs(const SourceFile &SF, const Tokens &T, size_t CtxIdx,
                    size_t OpenParen, const VarScopes &Vars,
                    std::vector<Diagnostic> &Out) const {
    const std::string &Callee = T[CtxIdx].Text;
    size_t Close = findBalanced(T, OpenParen);
    for (size_t J = OpenParen + 1; J < Close; ++J) {
      // cloneExpr(...) inside the argument list is the sanctioned way to
      // cross contexts — everything within its parens is exempt.
      if (T[J].is("cloneExpr") && J + 1 < Close && T[J + 1].is("(")) {
        J = findBalanced(T, J + 1);
        continue;
      }
      if (!T[J].isIdent())
        continue;
      // Skip member/qualified names and function call heads: only a bare
      // use of a tracked variable counts.
      if (J > 0 && (T[J - 1].is(".") || T[J - 1].is("->") || T[J - 1].is("::")))
        continue;
      if (J + 1 < T.size() && (T[J + 1].is("(") || T[J + 1].is("::")))
        continue;
      const VarScopes::Info *Info = Vars.lookup(T[J].Text);
      if (!Info || Info->IsContext || Info->ExprOrigin.empty() ||
          Info->ExprOrigin == Callee)
        continue;
      emit(Out, SF, T[J], name(),
           "'" + T[J].Text + "' was interned in Context '" + Info->ExprOrigin +
               "' but is passed to '" + Callee + "." + T[CtxIdx + 2].Text +
               "()'; hash-consed Expr* never cross contexts — use "
               "cloneExpr(" +
               Callee + ", " + T[J].Text + ") first");
    }
  }
};

//===----------------------------------------------------------------------===//
// mba-context-captured-by-pool
//===----------------------------------------------------------------------===//

class ContextCapturedByPoolCheck : public Check {
public:
  std::string_view name() const override {
    return "mba-context-captured-by-pool";
  }
  std::string_view description() const override {
    return "Context captured into a ThreadPool::parallelFor worker lambda; "
           "workers must build into per-worker Contexts";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    const Tokens &T = SF.Tokens;
    VarScopes Vars;
    for (size_t I = 0; I < T.size(); ++I) {
      if (T[I].is("{")) {
        Vars.enter();
        continue;
      }
      if (T[I].is("}")) {
        Vars.leave();
        continue;
      }
      if (consumeDeclaration(T, I, Vars))
        continue;
      if (T[I].is("parallelFor") && I + 1 < T.size() && T[I + 1].is("("))
        checkCall(SF, T, /*OpenParen=*/I + 1, Vars, Out);
    }
  }

private:
  // Read-only Context accessors a worker may call on a shared Context:
  // they touch immutable configuration, never the interner.
  static bool isSharedSafeMethod(const std::string &M) {
    static const std::set<std::string> Safe = {"width", "mask", "truncate",
                                               "toSigned"};
    return Safe.count(M) > 0;
  }

  void checkCall(const SourceFile &SF, const Tokens &T, size_t OpenParen,
                 const VarScopes &Vars, std::vector<Diagnostic> &Out) const {
    size_t CallEnd = findBalanced(T, OpenParen);
    // Locate the lambda: first '[' directly inside the call's parens.
    size_t LB = OpenParen + 1;
    while (LB < CallEnd && !T[LB].is("["))
      ++LB;
    if (LB >= CallEnd)
      return;
    size_t CaptureEnd = findBalanced(T, LB);

    // Parse the capture list: a bare '&' or '=' item captures everything
    // in scope; otherwise only the named variables can leak in.
    bool CapturesAll = false;
    std::set<std::string> Named;
    for (size_t J = LB + 1; J + 1 < T.size() && J < CaptureEnd; ++J) {
      if ((T[J].is("&") || T[J].is("=")) &&
          (T[J + 1].is(",") || T[J + 1].is("]")))
        CapturesAll = true;
      else if (T[J].isIdent())
        Named.insert(T[J].Text);
    }

    // Find the lambda body braces.
    size_t BodyOpen = CaptureEnd + 1;
    while (BodyOpen < CallEnd && !T[BodyOpen].is("{")) {
      if (T[BodyOpen].is("(")) {
        BodyOpen = findBalanced(T, BodyOpen);
        if (BodyOpen >= CallEnd)
          return;
      }
      ++BodyOpen;
    }
    if (BodyOpen >= CallEnd)
      return;
    size_t BodyClose = findBalanced(T, BodyOpen);

    // Contexts declared inside the body are per-worker and fine — collect
    // them (plus any name they shadow) before flagging uses.
    std::set<std::string> BodyLocal;
    for (size_t J = BodyOpen + 1; J < BodyClose; ++J) {
      size_t K = J;
      VarScopes Local; // throwaway; we only want the declared name
      if (consumeDeclaration(T, K, Local)) {
        for (const auto &KV : Local.Scopes.back())
          BodyLocal.insert(KV.first);
        J = K;
      }
    }

    for (size_t J = BodyOpen + 1; J < BodyClose; ++J) {
      if (!T[J].isIdent() || BodyLocal.count(T[J].Text))
        continue;
      if (J > 0 && (T[J - 1].is(".") || T[J - 1].is("->") || T[J - 1].is("::")))
        continue;
      if (!Vars.isContext(T[J].Text))
        continue;
      if (!CapturesAll && !Named.count(T[J].Text))
        continue;
      if (J + 2 < T.size() && T[J + 1].is(".") && T[J + 2].isIdent() &&
          isSharedSafeMethod(T[J + 2].Text))
        continue;
      emit(Out, SF, T[J], name(),
           "Context '" + T[J].Text +
               "' is captured into a parallelFor worker lambda; the "
               "interner is single-owner — build into a per-worker Context "
               "and cloneExpr the results back instead");
    }
  }
};

//===----------------------------------------------------------------------===//
// mba-unnamed-raii
//===----------------------------------------------------------------------===//

class UnnamedRaiiCheck : public Check {
public:
  std::string_view name() const override { return "mba-unnamed-raii"; }
  std::string_view description() const override {
    return "Discarded RAII temporary (lock guard / trace span) that "
           "releases its resource at the end of the full expression";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    static const std::set<std::string> RaiiTypes = {
        "SpanGuard",   "MutexLock",   "UniqueMutexLock", "SourceHandle",
        "lock_guard",  "unique_lock", "scoped_lock",     "shared_lock"};
    const Tokens &T = SF.Tokens;
    for (size_t I = 0; I < T.size(); ++I) {
      // Only statement-initial positions: a preceding identifier would
      // make this a declaration with the RAII type as a parameter/member.
      if (I > 0 && !(T[I - 1].is(";") || T[I - 1].is("{") || T[I - 1].is("}")))
        continue;
      // Optional `a::b::` qualification chain.
      size_t J = I;
      while (J + 1 < T.size() && T[J].isIdent() && T[J + 1].is("::"))
        J += 2;
      if (J >= T.size() || !T[J].isIdent() || !RaiiTypes.count(T[J].Text))
        continue;
      size_t K = skipTemplateArgs(T, J + 1);
      if (K >= T.size() || !(T[K].is("(") || T[K].is("{")))
        continue;
      size_t Close = findBalanced(T, K);
      if (Close + 1 >= T.size() || !T[Close + 1].is(";"))
        continue;
      // `Type();` and `Type(Args);` are also how constructors are
      // *declared* — only flag when the parens hold something that reads
      // as an expression, not a parameter list.
      if (Close == K + 1 || looksLikeParamList(T, K, Close))
        continue;
      emit(Out, SF, T[J], name(),
           "'" + T[J].Text +
               "' temporary is destroyed at the ';' — it guards nothing. "
               "Name it (e.g. `" +
               T[J].Text + " Guard(...);`)");
    }
  }

private:
  /// Heuristic: `const`, consecutive identifiers (`Mutex M`), or
  /// ident-&/&&/*-ident sequences mean a parameter list, i.e. a
  /// constructor declaration rather than a discarded temporary.
  static bool looksLikeParamList(const Tokens &T, size_t Open, size_t Close) {
    for (size_t J = Open + 1; J < Close; ++J) {
      if (T[J].is("const"))
        return true;
      if (T[J].isIdent() && J + 1 < Close && T[J + 1].isIdent())
        return true;
      if (T[J].isIdent() && J + 2 < Close &&
          (T[J + 1].is("&") || T[J + 1].is("&&") || T[J + 1].is("*")) &&
          T[J + 2].isIdent())
        return true;
    }
    return false;
  }
};

//===----------------------------------------------------------------------===//
// mba-isa-outside-seam
//===----------------------------------------------------------------------===//

/// Raw SIMD usage outside the wide-engine seam. src/support/Bitslice* is
/// the repository's single ISA boundary: the AVX2/AVX-512 back ends live
/// there behind runtime dispatch (bitslice::kernelsFor / activeKernels),
/// so every other file stays portable and the scalar/SIMD agreement tests
/// cover all vector code there is. Intrinsic calls, vector types,
/// CPU-feature macros, or the intrinsics headers anywhere else mean a
/// second dispatch seam is growing.
class IsaOutsideSeamCheck : public Check {
public:
  std::string_view name() const override { return "mba-isa-outside-seam"; }
  std::string_view description() const override {
    return "Raw AVX intrinsics or __AVX*__ feature tests outside "
           "src/support/Bitslice*; all ISA dispatch stays behind the "
           "wide-engine seam (bitslice::kernelsFor / activeKernels)";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    // The seam itself is the sanctioned home of intrinsics and feature
    // macros (its own lint corpus file stands in for "everywhere else").
    if (SF.Path.find("src/support/Bitslice") != std::string::npos)
      return;
    for (const Token &T : SF.Tokens) {
      if (!T.isIdent() || !isRawIsaToken(T.Text))
        continue;
      emit(Out, SF, T, name(),
           "raw ISA surface '" + T.Text +
               "' outside src/support/Bitslice*; SIMD intrinsics and "
               "CPU-feature tests stay behind the one wide-engine seam — "
               "dispatch via bitslice::kernelsFor()/activeKernels() "
               "(tests override with forceIsa()/MBA_FORCE_ISA)");
    }
  }

private:
  /// Intrinsic calls (_mm*_*), vector types (__m128/__m256/__m512...),
  /// feature-test macros (__AVX*/__SSE*), and the intrinsics headers.
  /// String literals never reach here (the lexer strips them into String
  /// tokens), so messages about intrinsics stay silent.
  static bool isRawIsaToken(std::string_view S) {
    return S.starts_with("_mm_") || S.starts_with("_mm256_") ||
           S.starts_with("_mm512_") || S.starts_with("__m128") ||
           S.starts_with("__m256") || S.starts_with("__m512") ||
           S.starts_with("__AVX") || S.starts_with("__SSE") ||
           S == "immintrin" || S == "x86intrin";
  }
};

//===----------------------------------------------------------------------===//
// mba-raw-pointer-in-cache-key
//===----------------------------------------------------------------------===//

class RawPointerInCacheKeyCheck : public Check {
public:
  std::string_view name() const override {
    return "mba-raw-pointer-in-cache-key";
  }
  std::string_view description() const override {
    return "Pointer value folded into a 64-bit semantic cache key; keys "
           "must survive snapshot save/load across processes";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    static const std::set<std::string> HashFns = {
        "hashCombine64", "hashMix64", "hashBytes64", "hashString64"};
    const Tokens &T = SF.Tokens;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      if (!T[I].isIdent() || !HashFns.count(T[I].Text) || !T[I + 1].is("("))
        continue;
      size_t Close = findBalanced(T, I + 1);
      for (size_t J = I + 2; J < Close; ++J) {
        if (T[J].is("uintptr_t") || T[J].is("intptr_t")) {
          emit(Out, SF, T[J], name(),
               "pointer identity reaches '" + T[I].Text +
                   "()' via " + T[J].Text +
                   "; interned addresses differ across processes, so this "
                   "key poisons persisted cache snapshots — hash the "
                   "expression's structural fingerprint instead");
        } else if (T[J].is("reinterpret_cast")) {
          if (integerTargetCast(T, J, Close))
            emit(Out, SF, T[J], name(),
                 "reinterpret_cast to an integer inside '" + T[I].Text +
                     "()' hashes a pointer value; semantic cache keys must "
                     "be address-free — hash the structural fingerprint "
                     "instead");
          // Either way, don't re-report identifiers inside the cast's
          // template arguments.
          if (J + 1 < Close && T[J + 1].is("<"))
            J = skipTemplateArgs(T, J + 1) - 1;
        }
      }
      I = Close;
    }
  }

private:
  /// reinterpret_cast<T> with no '*' in T converts *to* an integer, i.e.
  /// hashes the address itself. Pointer-target casts (e.g. to const
  /// char* for hashBytes64) read through the pointer and are fine.
  static bool integerTargetCast(const Tokens &T, size_t CastIdx,
                                size_t Limit) {
    if (CastIdx + 1 >= Limit || !T[CastIdx + 1].is("<"))
      return false;
    size_t End = skipTemplateArgs(T, CastIdx + 1);
    for (size_t J = CastIdx + 2; J + 1 < End; ++J)
      if (T[J].is("*"))
        return false;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// mba-sat-solver-in-loop
//===----------------------------------------------------------------------===//

class SatSolverInLoopCheck : public Check {
public:
  std::string_view name() const override { return "mba-sat-solver-in-loop"; }
  std::string_view description() const override {
    return "Fresh SatSolver constructed inside a per-query loop in "
           "src/solvers; hoist one incremental instance and solve under "
           "assumptions";
  }

  void run(const SourceFile &SF, std::vector<Diagnostic> &Out) const override {
    // The incremental-solver rule binds the backend implementations only:
    // tests and micro-benchmarks build throwaway solvers in loops by
    // design, so the check is scoped to src/solvers (plus its own lint
    // corpus).
    if (SF.Path.find("src/solvers") == std::string::npos &&
        SF.Path.find("static_analysis") == std::string::npos)
      return;
    const Tokens &T = SF.Tokens;
    std::set<size_t> Sites;
    for (size_t I = 0; I + 1 < T.size(); ++I) {
      size_t BodyOpen = T.size();
      if ((T[I].is("for") || T[I].is("while")) && T[I + 1].is("(")) {
        size_t CondClose = findBalanced(T, I + 1);
        if (CondClose + 1 < T.size() && T[CondClose + 1].is("{"))
          BodyOpen = CondClose + 1;
      } else if (T[I].is("do") && T[I + 1].is("{")) {
        BodyOpen = I + 1;
      }
      if (BodyOpen >= T.size())
        continue;
      size_t BodyClose = findBalanced(T, BodyOpen);
      for (size_t J = BodyOpen + 1; J < BodyClose; ++J)
        if (T[J].is("SatSolver") && isConstruction(T, J))
          Sites.insert(J); // set: nested loops see the same site twice
    }
    for (size_t J : Sites)
      emit(Out, SF, T[J], name(),
           "fresh SatSolver constructed inside a per-query loop; every "
           "iteration discards the learnt clauses, VSIDS order and saved "
           "phases the previous query paid for — hoist one persistent "
           "instance and solve under per-query assumption guards");
  }

private:
  /// True when the SatSolver token at \p J is a construction site: a local
  /// declaration (`SatSolver S;` / `SatSolver S(...);`), a make_unique
  /// template argument, or a new-expression. References and pointers to a
  /// hoisted instance are the sanctioned shape and stay silent.
  static bool isConstruction(const Tokens &T, size_t J) {
    // Declaration of a value (not `SatSolver &Ref = ...` / `SatSolver *P`).
    if (J + 2 < T.size() && T[J + 1].isIdent() &&
        (T[J + 2].is(";") || T[J + 2].is("(") || T[J + 2].is("{")))
      return true;
    // Walk back over the `ns ::` qualification chain, then look for the
    // constructing context: `new [ns::]SatSolver` or
    // `make_unique<[ns::]SatSolver>`.
    size_t K = J;
    while (K >= 2 && T[K - 1].is("::") && T[K - 2].isIdent())
      K -= 2;
    if (K >= 1 && T[K - 1].is("new"))
      return true;
    if (K >= 2 && T[K - 1].is("<") && T[K - 2].is("make_unique"))
      return true;
    return false;
  }
};

} // namespace

std::vector<std::unique_ptr<Check>> mba::tidy::createAllChecks() {
  std::vector<std::unique_ptr<Check>> Checks;
  Checks.push_back(std::make_unique<ContextCapturedByPoolCheck>());
  Checks.push_back(std::make_unique<CrossContextExprCheck>());
  Checks.push_back(std::make_unique<IsaOutsideSeamCheck>());
  Checks.push_back(std::make_unique<RawPointerInCacheKeyCheck>());
  Checks.push_back(std::make_unique<SatSolverInLoopCheck>());
  Checks.push_back(std::make_unique<UnnamedRaiiCheck>());
  return Checks;
}

std::vector<Diagnostic>
mba::tidy::runChecks(const SourceFile &SF,
                     const std::vector<std::unique_ptr<Check>> &Checks,
                     const std::set<std::string> &Enabled) {
  std::vector<Diagnostic> All;
  for (const auto &C : Checks) {
    if (!Enabled.empty() && !Enabled.count(std::string(C->name())))
      continue;
    C->run(SF, All);
  }
  std::erase_if(All, [&](const Diagnostic &D) {
    return SF.Nolint.suppressed(D.Line, D.CheckName);
  });
  std::sort(All.begin(), All.end(), [](const Diagnostic &A,
                                       const Diagnostic &B) {
    return std::tie(A.Line, A.Col, A.CheckName) <
           std::tie(B.Line, B.Col, B.CheckName);
  });
  return All;
}
