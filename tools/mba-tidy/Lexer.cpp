//===- tools/mba-tidy/Lexer.cpp - Lightweight C++ lexer -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Lexer.h"

#include <cctype>

using namespace mba::tidy;

namespace {

bool isIdentStart(char C) {
  return std::isalpha((unsigned char)C) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum((unsigned char)C) || C == '_';
}

/// Longest-match punctuator table (3-char first, then 2-char). Single
/// characters fall through to a one-byte token.
constexpr const char *Punct3[] = {"<<=", ">>=", "...", "->*"};
constexpr const char *Punct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                  "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                  "%=", "&=", "|=", "^=", "++", "--"};

/// Parses a NOLINT-style marker out of comment text, recording it into
/// \p Out for \p Line (or Line+1 for the NEXTLINE variants).
void harvestNolint(std::string_view Comment, unsigned Line, NolintMap &Out) {
  for (const auto &[Marker, Offset] :
       {std::pair<std::string_view, unsigned>{"NOLINTNEXTLINE", 1},
        std::pair<std::string_view, unsigned>{"NOLINT", 0}}) {
    size_t At = Comment.find(Marker);
    if (At == std::string_view::npos)
      continue;
    // "NOLINT" is a prefix of "NOLINTNEXTLINE": make sure we match the
    // exact marker (the NEXTLINE pass runs first and returns below).
    std::set<std::string> &Checks = Out.Lines[Line + Offset];
    size_t After = At + Marker.size();
    if (After < Comment.size() && Comment[After] == '(') {
      size_t Close = Comment.find(')', After);
      std::string_view List = Comment.substr(
          After + 1,
          (Close == std::string_view::npos ? Comment.size() : Close) - After -
              1);
      // Split on commas, trim spaces.
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        std::string_view Item = List.substr(
            Pos, (Comma == std::string_view::npos ? List.size() : Comma) - Pos);
        while (!Item.empty() && Item.front() == ' ')
          Item.remove_prefix(1);
        while (!Item.empty() && Item.back() == ' ')
          Item.remove_suffix(1);
        if (!Item.empty())
          Checks.insert(std::string(Item));
        if (Comma == std::string_view::npos)
          break;
        Pos = Comma + 1;
      }
    }
    // else: bare NOLINT — the (possibly fresh) empty set means "all".
    return;
  }
}

} // namespace

SourceFile mba::tidy::lexFile(std::string Path, std::string Text) {
  SourceFile SF;
  SF.Path = std::move(Path);
  SF.Text = std::move(Text);
  const std::string &S = SF.Text;

  size_t I = 0;
  unsigned Line = 1, Col = 1;
  auto advance = [&](size_t N) {
    for (size_t K = 0; K != N; ++K) {
      if (S[I + K] == '\n') {
        ++Line;
        Col = 1;
      } else {
        ++Col;
      }
    }
    I += N;
  };

  while (I < S.size()) {
    char C = S[I];
    // Whitespace.
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
        C == '\v') {
      advance(1);
      continue;
    }
    // Line comment.
    if (C == '/' && I + 1 < S.size() && S[I + 1] == '/') {
      size_t End = S.find('\n', I);
      if (End == std::string::npos)
        End = S.size();
      harvestNolint(std::string_view(S).substr(I, End - I), Line, SF.Nolint);
      advance(End - I);
      continue;
    }
    // Block comment.
    if (C == '/' && I + 1 < S.size() && S[I + 1] == '*') {
      size_t End = S.find("*/", I + 2);
      if (End == std::string::npos)
        End = S.size();
      else
        End += 2;
      harvestNolint(std::string_view(S).substr(I, End - I), Line, SF.Nolint);
      advance(End - I);
      continue;
    }
    // Raw string literal: R"tag( ... )tag".
    if (C == 'R' && I + 1 < S.size() && S[I + 1] == '"') {
      size_t TagStart = I + 2;
      size_t Open = S.find('(', TagStart);
      if (Open != std::string::npos && Open - TagStart <= 16) {
        std::string Close = ")" + S.substr(TagStart, Open - TagStart) + "\"";
        size_t End = S.find(Close, Open + 1);
        size_t Stop = End == std::string::npos ? S.size() : End + Close.size();
        SF.Tokens.push_back({TokenKind::String,
                             S.substr(Open + 1,
                                      (End == std::string::npos ? S.size()
                                                                : End) -
                                          Open - 1),
                             Line, Col});
        advance(Stop - I);
        continue;
      }
    }
    // String / char literal.
    if (C == '"' || C == '\'') {
      char Quote = C;
      size_t J = I + 1;
      while (J < S.size() && S[J] != Quote) {
        if (S[J] == '\\' && J + 1 < S.size())
          ++J;
        else if (S[J] == '\n')
          break; // unterminated; stop at EOL rather than eating the file
        ++J;
      }
      size_t Stop = J < S.size() && S[J] == Quote ? J + 1 : J;
      SF.Tokens.push_back(
          {TokenKind::String, S.substr(I + 1, J - I - 1), Line, Col});
      advance(Stop - I);
      continue;
    }
    // Identifier.
    if (isIdentStart(C)) {
      size_t J = I + 1;
      while (J < S.size() && isIdentChar(S[J]))
        ++J;
      SF.Tokens.push_back(
          {TokenKind::Identifier, S.substr(I, J - I), Line, Col});
      advance(J - I);
      continue;
    }
    // Number (greedy over pp-number-ish characters; exact grammar is not
    // needed for matching).
    if (std::isdigit((unsigned char)C) ||
        (C == '.' && I + 1 < S.size() &&
         std::isdigit((unsigned char)S[I + 1]))) {
      size_t J = I + 1;
      while (J < S.size() &&
             (isIdentChar(S[J]) || S[J] == '.' || S[J] == '\'')) {
        // Exponent signs: 1e-3, 0x1p+2.
        if ((S[J] == 'e' || S[J] == 'E' || S[J] == 'p' || S[J] == 'P') &&
            J + 1 < S.size() && (S[J + 1] == '+' || S[J + 1] == '-'))
          ++J;
        ++J;
      }
      SF.Tokens.push_back({TokenKind::Number, S.substr(I, J - I), Line, Col});
      advance(J - I);
      continue;
    }
    // Punctuators, longest match first.
    std::string_view Rest = std::string_view(S).substr(I);
    std::string Matched;
    for (const char *P : Punct3)
      if (Rest.substr(0, 3) == P) {
        Matched = P;
        break;
      }
    if (Matched.empty())
      for (const char *P : Punct2)
        if (Rest.substr(0, 2) == P) {
          Matched = P;
          break;
        }
    if (Matched.empty())
      Matched = std::string(1, C);
    SF.Tokens.push_back({TokenKind::Punct, Matched, Line, Col});
    advance(Matched.size());
  }
  return SF;
}
