//===- tools/mba-tidy/Lexer.h - Lightweight C++ lexer -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free C++ tokenizer for mba-tidy. It understands just
/// enough of the language for reliable token-level matching: identifiers,
/// numbers, string/char/raw-string literals (so nothing inside a literal is
/// ever mistaken for code), multi-character operators, and comments —
/// which are consumed but mined for `NOLINT` suppressions, clang-tidy
/// style.
///
/// This is not a parser and mba-tidy's checks are explicitly *matchers over
/// tokens*, tuned to this repository's idioms (tools/mba-tidy/README.md
/// discusses the trade against a real clang-tidy plugin, which needs the
/// LLVM/Clang dev headers this tool deliberately avoids).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_TOOLS_MBATIDY_LEXER_H
#define MBA_TOOLS_MBATIDY_LEXER_H

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mba::tidy {

enum class TokenKind : uint8_t {
  Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
  Number,     ///< numeric literal (integer or floating, any base/suffix)
  String,     ///< string, char, or raw-string literal (text excludes quotes)
  Punct,      ///< operator or punctuator, longest-match ("::", "->", ...)
};

struct Token {
  TokenKind Kind = TokenKind::Punct;
  std::string Text;
  unsigned Line = 0; ///< 1-based
  unsigned Col = 0;  ///< 1-based, byte offset

  bool is(std::string_view S) const { return Text == S; }
  bool isIdent() const { return Kind == TokenKind::Identifier; }
};

/// Per-line lint suppressions harvested from comments while lexing.
/// `// NOLINT` suppresses every check on its line, `// NOLINT(check-a,
/// check-b)` only the named ones; `NOLINTNEXTLINE` variants apply to the
/// following line. An entry with an empty set means "all checks".
struct NolintMap {
  std::map<unsigned, std::set<std::string>> Lines;

  /// True if \p CheckName is suppressed on \p Line.
  bool suppressed(unsigned Line, std::string_view CheckName) const {
    auto It = Lines.find(Line);
    if (It == Lines.end())
      return false;
    return It->second.empty() || It->second.count(std::string(CheckName)) > 0;
  }
};

/// One lexed source file.
struct SourceFile {
  std::string Path;
  std::string Text;
  std::vector<Token> Tokens;
  NolintMap Nolint;
};

/// Tokenizes \p Text (file contents) into \p SF. Never fails: bytes that
/// fit no token class are emitted as single-character Punct tokens.
SourceFile lexFile(std::string Path, std::string Text);

} // namespace mba::tidy

#endif // MBA_TOOLS_MBATIDY_LEXER_H
