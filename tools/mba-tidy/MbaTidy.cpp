//===- tools/mba-tidy/MbaTidy.cpp - Driver --------------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver. Usage:
///
///   mba-tidy [--checks=a,b] [--list-checks] [--quiet] file...
///
/// Diagnostics follow the clang-tidy format
/// (`file:line:col: warning: message [check-name]`) so editors and CI
/// annotators parse them out of the box. Exit status: 0 = clean,
/// 1 = findings, 2 = usage or I/O error.
///
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace mba::tidy;

namespace {

int usage() {
  std::cerr << "usage: mba-tidy [--checks=name,name] [--list-checks] "
               "[--quiet] file...\n";
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::set<std::string> Enabled;
  std::vector<std::string> Files;
  bool Quiet = false;

  auto Checks = createAllChecks();

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--list-checks") {
      for (const auto &C : Checks)
        std::cout << C->name() << "\n    " << C->description() << "\n";
      return 0;
    }
    if (Arg == "--quiet" || Arg == "-q") {
      Quiet = true;
      continue;
    }
    if (Arg.rfind("--checks=", 0) == 0) {
      std::stringstream List(Arg.substr(9));
      std::string Name;
      while (std::getline(List, Name, ','))
        if (!Name.empty() && Name != "*")
          Enabled.insert(Name);
      continue;
    }
    if (Arg.rfind("-", 0) == 0)
      return usage();
    Files.push_back(std::move(Arg));
  }
  if (Files.empty())
    return usage();

  // Reject unknown check names up front — a typo in CI silently running
  // zero checks would defeat the point of the gate.
  for (const std::string &Name : Enabled) {
    bool Known = false;
    for (const auto &C : Checks)
      Known |= C->name() == Name;
    if (!Known) {
      std::cerr << "mba-tidy: unknown check '" << Name << "'\n";
      return 2;
    }
  }

  size_t Findings = 0;
  for (const std::string &Path : Files) {
    std::ifstream In(Path, std::ios::binary);
    if (!In) {
      std::cerr << "mba-tidy: cannot read '" << Path << "'\n";
      return 2;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    SourceFile SF = lexFile(Path, Buf.str());
    for (const Diagnostic &D : runChecks(SF, Checks, Enabled)) {
      ++Findings;
      if (!Quiet)
        std::cout << D.File << ":" << D.Line << ":" << D.Col
                  << ": warning: " << D.Message << " [" << D.CheckName
                  << "]\n";
    }
  }
  if (Findings && !Quiet)
    std::cout << Findings << " warning" << (Findings == 1 ? "" : "s")
              << " generated.\n";
  return Findings ? 1 : 0;
}
