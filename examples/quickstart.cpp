//===- examples/quickstart.cpp - Library quickstart -----------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: parse a mixed bitwise-arithmetic expression, inspect its
/// complexity, and simplify it with MBA-Solver. Build and run:
///
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///   ./build/examples/quickstart '2*(x|y) - (~x&y) - (x&~y)'
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"

#include <cstdio>

using namespace mba;

int main(int Argc, char **Argv) {
  // Every expression lives in a Context, which fixes the word width (the
  // paper's setting is 64-bit two's complement, i.e. the ring Z/2^64).
  Context Ctx(64);

  // Parse an MBA expression. The default is the paper's Figure 1 equation
  // right-hand side, which stalls SMT solvers for an hour in raw form.
  const char *Text =
      Argc > 1 ? Argv[1] : "(x&~y)*(~x&y) + (x&y)*(x|y)";
  ParseResult Parsed = parseExpr(Ctx, Text);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "parse error at offset %zu: %s\n", Parsed.ErrorPos,
                 Parsed.Error.c_str());
    return 1;
  }
  const Expr *E = Parsed.E;

  // Inspect the complexity metrics the paper's study is built on.
  ComplexityMetrics M = measureComplexity(Ctx, E);
  std::printf("input:       %s\n", printExpr(Ctx, E).c_str());
  std::printf("category:    %s MBA\n", mbaKindName(M.Kind));
  std::printf("variables:   %u\n", M.NumVariables);
  std::printf("alternation: %llu   (the metric that dominates solver time)\n",
              (unsigned long long)M.Alternation);
  std::printf("terms:       %llu, length %zu, max |coeff| %llu\n",
              (unsigned long long)M.NumTerms, M.Length,
              (unsigned long long)M.MaxCoefficient);

  // Simplify. MBASolver is a semantics-preserving transformation: the
  // result is equal to the input on every input word.
  MBASolver Solver(Ctx);
  const Expr *Simple = Solver.simplify(E);
  ComplexityMetrics MS = measureComplexity(Ctx, Simple);
  std::printf("\nsimplified:  %s\n", printExpr(Ctx, Simple).c_str());
  std::printf("alternation: %llu -> %llu, length %zu -> %zu  (%.4f s)\n",
              (unsigned long long)M.Alternation,
              (unsigned long long)MS.Alternation, M.Length, MS.Length,
              Solver.stats().Seconds);
  return 0;
}
