//===- examples/mba_cli.cpp - Swiss-army MBA command line -----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// General-purpose CLI over the library:
///
///   mba_cli simplify '<expr>'            simplify one expression
///   mba_cli classify '<expr>'            category + metrics
///   mba_cli check '<a>' '<b>'            equivalence via all backends
///   mba_cli explain '<expr>'             simplify + verify with the flight
///                                        recorder on; render every stage,
///                                        rule fire and backend statistic
///   mba_cli sig '<expr>'                 signature vector (linear MBA)
///   mba_cli certify                      certify the shipped rewrite rules
///   mba_cli deobfuscate-ir <file>        run the IR deobfuscation pipeline
///                                        on a program and print the report
///   mba_cli dot '<expr>'                 expression DAG as Graphviz DOT
///   mba_cli dot --ir <file> [--def-use]  CFG (or def-use graph) as DOT
///
/// Options: --width=N (default 64), --timeout=SECONDS (check /
/// deobfuscate-ir verification; default 5), --no-verify (skip equivalence
/// verification of IR rewrites), --quiet (report only, no program dump),
/// --stats (print the telemetry registry summary — span timings and
/// pipeline counters — to stdout after the command), --query-log=FILE
/// (record every simplify/equivalence query of the command as JSONL; see
/// docs/OBSERVABILITY.md for the schema).
///
/// `certify` re-proves every shipped equality-saturation rule sound for all
/// bit widths and exits non-zero if any rule fails — CI runs it so an
/// unsound rule edit fails the build.
///
//===----------------------------------------------------------------------===//

#include "analysis/Rules.h"
#include "ast/Context.h"
#include "ast/DotPrinter.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "ir/IRDot.h"
#include "ir/Passes.h"
#include "ir/Program.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Json.h"
#include "support/QueryLog.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace mba;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--width=N] [--timeout=S] [--stats] "
               "[--query-log=FILE] "
               "simplify|classify|check|explain|sig|certify|deobfuscate-ir|"
               "dot [<expr>|<file>] [<expr2>]\n"
               "       %s deobfuscate-ir [--no-verify] [--quiet] <file>\n"
               "       %s dot '<expr>' | dot --ir <file> [--def-use]\n",
               Prog, Prog, Prog);
  return 2;
}

/// Reads a whole file (or stdin for "-"). Exits with a message on failure.
std::string readFileOrDie(const char *Path) {
  std::ostringstream Buf;
  if (std::strcmp(Path, "-") == 0) {
    Buf << std::cin.rdbuf();
    return Buf.str();
  }
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path);
    std::exit(1);
  }
  Buf << In.rdbuf();
  return Buf.str();
}

const Expr *parseArg(Context &Ctx, const char *Text) {
  ParseResult R = parseExpr(Ctx, Text);
  if (!R.ok()) {
    std::fprintf(stderr, "parse error at offset %zu: %s\n", R.ErrorPos,
                 R.Error.c_str());
    std::exit(1);
  }
  return R.E;
}

/// Renders one scalar flight-recorder field for `explain`. Integral
/// numbers print without a decimal point; ns-suffixed keys get a friendly
/// milliseconds rendering next to the raw value.
void printExplainField(const std::string &Key, const json::Value &V) {
  std::printf("  %-20s ", Key.c_str());
  switch (V.kind()) {
  case json::Value::KBool:
    std::printf("%s", V.asBool() ? "true" : "false");
    break;
  case json::Value::KNumber: {
    double N = V.asNumber();
    if (N == (double)(long long)N)
      std::printf("%lld", (long long)N);
    else
      std::printf("%g", N);
    if (Key.size() > 3 && Key.compare(Key.size() - 3, 3, "_ns") == 0)
      std::printf(" (%.3f ms)", N / 1e6);
    break;
  }
  case json::Value::KString:
    std::printf("%s", V.asString().c_str());
    break;
  default:
    std::printf("?");
    break;
  }
  std::printf("\n");
}

/// Renders one captured flight-recorder record (a parsed JSONL line) as a
/// human-readable stage report: header, scalar fields, per-stage timings,
/// per-rule attribution.
void printExplainRecord(const json::Value &Rec) {
  std::printf("--- %s query (%.3f ms) ---\n",
              std::string(Rec.stringAt("kind", "?")).c_str(),
              Rec.numberAt("ns") / 1e6);
  for (const auto &M : Rec.members()) {
    if (M.first == "kind" || M.first == "seq" || M.first == "tid" ||
        M.first == "ns" || M.first == "stages" || M.first == "rules")
      continue;
    printExplainField(M.first, M.second);
  }
  if (const json::Value *Stages = Rec.get("stages")) {
    std::printf("  stages:\n");
    for (const json::Value &S : Stages->elements())
      std::printf("    %-24s %10.3f ms\n",
                  std::string(S.stringAt("name")).c_str(),
                  S.numberAt("ns") / 1e6);
  }
  if (const json::Value *Rules = Rec.get("rules")) {
    std::printf("  rules:%*sfires         ms   nodes\n", 24, "");
    for (const json::Value &R : Rules->elements()) {
      std::printf("    %-24s %7llu %10.3f",
                  std::string(R.stringAt("rule")).c_str(),
                  (unsigned long long)R.numberAt("fires"),
                  R.numberAt("ns") / 1e6);
      unsigned long long Before = (unsigned long long)R.numberAt("nodes_before");
      unsigned long long After = (unsigned long long)R.numberAt("nodes_after");
      if (Before || After)
        std::printf("   %llu -> %llu", Before, After);
      std::printf("\n");
    }
  }
}

} // namespace

int run(int Argc, char **Argv);

int main(int Argc, char **Argv) {
  bool Stats = false;
  const char *QueryLogPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0)
      Stats = true;
    else if (std::strncmp(Argv[I], "--query-log=", 12) == 0)
      QueryLogPath = Argv[I] + 12;
  }
  if (Stats) {
    telemetry::setMetricsEnabled(true);
    telemetry::setTracingEnabled(true);
    telemetry::setThreadLabel("main");
  }
  if (QueryLogPath && !querylog::openFile(QueryLogPath)) {
    std::fprintf(stderr, "error: cannot open query log '%s'\n", QueryLogPath);
    return 1;
  }
  int Exit = run(Argc, Argv);
  if (QueryLogPath)
    querylog::close();
  if (Stats) {
    telemetry::setTracingEnabled(false);
    telemetry::printSummary(stdout);
  }
  return Exit;
}

int run(int Argc, char **Argv) {
  unsigned Width = 64;
  double Timeout = 5.0;
  bool NoVerify = false;
  bool DefUse = false;
  bool IRFile = false;
  bool Quiet = false;
  std::vector<const char *> Positional;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats") == 0 ||
        std::strncmp(Argv[I], "--query-log=", 12) == 0)
      continue;
    if (std::strcmp(Argv[I], "--no-verify") == 0) {
      NoVerify = true;
      continue;
    }
    if (std::strcmp(Argv[I], "--def-use") == 0) {
      DefUse = true;
      continue;
    }
    if (std::strcmp(Argv[I], "--ir") == 0) {
      IRFile = true;
      continue;
    }
    if (std::strcmp(Argv[I], "--quiet") == 0) {
      Quiet = true;
      continue;
    }
    if (std::sscanf(Argv[I], "--width=%u", &Width) == 1)
      continue;
    if (std::sscanf(Argv[I], "--timeout=%lf", &Timeout) == 1)
      continue;
    Positional.push_back(Argv[I]);
  }
  if (Positional.empty())
    return usage(Argv[0]);
  const std::string Command = Positional[0];
  if (Width < 1 || Width > 64) {
    std::fprintf(stderr, "width must be in [1, 64]\n");
    return 2;
  }

  if (Command == "certify") {
    RuleSet RS;
    addDefaultRules(RS);
    CertifySummary S = certifyRules(RS);
    for (const RuleCert &C : S.Results)
      if (C.ok())
        std::printf("  OK   %-28s %s\n", C.Name.c_str(),
                    certMethodName(C.Method));
      else
        std::printf("  FAIL %-28s %s\n", C.Name.c_str(), C.Detail.c_str());
    std::printf("%zu / %zu rules certified sound for all widths\n",
                S.NumCertified, S.Results.size());
    if (!S.allCertified()) {
      std::fprintf(stderr, "error: uncertified rules in the shipped table\n");
      return 1;
    }
    return 0;
  }

  if (Positional.size() < 2)
    return usage(Argv[0]);

  Context Ctx(Width);

  if (Command == "simplify") {
    const Expr *E = parseArg(Ctx, Positional[1]);
    MBASolver Solver(Ctx);
    const Expr *R = Solver.simplify(E);
    std::printf("%s\n", printExpr(Ctx, R).c_str());
    return 0;
  }

  if (Command == "classify") {
    const Expr *E = parseArg(Ctx, Positional[1]);
    ComplexityMetrics M = measureComplexity(Ctx, E);
    std::printf("category:    %s\n", mbaKindName(M.Kind));
    std::printf("variables:   %u\n", M.NumVariables);
    std::printf("alternation: %llu\n", (unsigned long long)M.Alternation);
    std::printf("length:      %zu\n", M.Length);
    std::printf("terms:       %llu\n", (unsigned long long)M.NumTerms);
    std::printf("max |coeff|: %llu\n", (unsigned long long)M.MaxCoefficient);
    return 0;
  }

  if (Command == "check") {
    if (Positional.size() < 3)
      return usage(Argv[0]);
    const Expr *A = parseArg(Ctx, Positional[1]);
    const Expr *B = parseArg(Ctx, Positional[2]);
    int Exit = 0;
    for (auto &C : makeAllCheckers()) {
      CheckResult R = C->check(Ctx, A, B, Timeout);
      std::printf("%-12s %-15s %.3f s\n", C->name().c_str(),
                  verdictName(R.Outcome), R.Seconds);
      if (R.Outcome == Verdict::NotEquivalent)
        Exit = 1;
    }
    return Exit;
  }

  if (Command == "explain") {
    const Expr *E = parseArg(Ctx, Positional[1]);
    // Capture the full decision trail in memory: simplify, then verify the
    // result against the input through the staged pipeline (stage-0 prover
    // in front of the incremental AIG backend) — the same path a study
    // query takes.
    querylog::beginCapture();
    MBASolver Solver(Ctx);
    const Expr *R = Solver.simplify(E);
    StageZeroStats Stats;
    auto Checker = makeStagedChecker(Ctx, makeAigChecker(true), &Stats,
                                     ProveBudget(), nullptr);
    CheckResult CR = Checker->check(Ctx, E, R, Timeout);
    std::vector<std::string> Lines = querylog::endCapture();

    std::printf("input:      %s\n", printExpr(Ctx, E).c_str());
    std::printf("simplified: %s\n", printExpr(Ctx, R).c_str());
    std::printf("verified:   %s (%s, %.3f s)\n\n",
                verdictName(CR.Outcome), Checker->name().c_str(), CR.Seconds);
    for (const std::string &Line : Lines) {
      json::Value Rec;
      std::string Err;
      if (!json::parse(Line, Rec, &Err)) {
        std::fprintf(stderr, "error: bad flight-recorder line: %s\n",
                     Err.c_str());
        return 1;
      }
      printExplainRecord(Rec);
    }
    return CR.Outcome == Verdict::Equivalent ? 0 : 1;
  }

  if (Command == "deobfuscate-ir") {
    std::string Text = readFileOrDie(Positional[1]);
    Diag D;
    auto P = Program::parse(Ctx, Text, &D);
    if (!P) {
      std::fprintf(stderr, "%s: %s\n", Positional[1], D.str().c_str());
      return 1;
    }
    PassOptions Opts;
    Opts.Verify = !NoVerify;
    Opts.VerifyTimeout = Timeout;
    ProgramReport Report = deobfuscateProgram(Ctx, *P, Opts);
    std::printf("%s", Report.str().c_str());
    if (Report.totalUnsoundBlocked() > 0)
      std::fprintf(stderr,
                   "warning: %zu candidate rewrite(s) failed verification "
                   "and were blocked\n",
                   Report.totalUnsoundBlocked());
    if (!Quiet) {
      std::printf("\n");
      std::printf("%s", P->print(Ctx).c_str());
    }
    return 0;
  }

  if (Command == "dot") {
    if (!IRFile) {
      const Expr *E = parseArg(Ctx, Positional[1]);
      std::printf("%s", toDot(Ctx, E).c_str());
      return 0;
    }
    std::string Text = readFileOrDie(Positional[1]);
    Diag D;
    auto P = Program::parse(Ctx, Text, &D);
    if (!P) {
      std::fprintf(stderr, "%s: %s\n", Positional[1], D.str().c_str());
      return 1;
    }
    for (const Function &F : P->Functions) {
      std::string Name = (DefUse ? "defuse_" : "cfg_") + F.Name;
      std::printf("%s", DefUse ? defUseToDot(Ctx, F, Name).c_str()
                               : cfgToDot(Ctx, F, Name).c_str());
    }
    return 0;
  }

  if (Command == "sig") {
    const Expr *E = parseArg(Ctx, Positional[1]);
    if (classifyMBA(Ctx, E) != MBAKind::Linear) {
      std::fprintf(stderr,
                   "signature vectors are defined for linear MBA only\n");
      return 1;
    }
    std::vector<const Expr *> Vars;
    auto Sig = computeSignature(Ctx, E, &Vars);
    std::printf("variables:");
    for (const Expr *V : Vars)
      std::printf(" %s", V->varName());
    std::printf("\nsignature: (");
    for (size_t I = 0; I != Sig.size(); ++I)
      std::printf("%s%lld", I ? ", " : "", (long long)Ctx.toSigned(Sig[I]));
    std::printf(")\n");
    return 0;
  }

  return usage(Argv[0]);
}
