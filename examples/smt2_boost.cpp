//===- examples/smt2_boost.cpp - Preprocess .smt2 MBA benchmarks ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Drop-in preprocessing for SMT-LIB2 bit-vector equivalence benchmarks:
/// reads a QF_BV script asserting `(distinct lhs rhs)` (the form MBA
/// datasets ship in and that this library's exporter writes), simplifies
/// both sides with MBA-Solver, and emits the simplified script — ready for
/// any external solver. With --solve, also answers the query in-process.
///
///   ./build/examples/smt2_boost query.smt2 > simplified.smt2
///   ./build/examples/smt2_boost --solve query.smt2
///   ./build/examples/smt2_boost --demo          # built-in Figure 1 query
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "solvers/SmtLib.h"
#include "solvers/SmtLibParser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace mba;

int main(int Argc, char **Argv) {
  bool Solve = false;
  bool Demo = false;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--solve") == 0)
      Solve = true;
    else if (std::strcmp(Argv[I], "--demo") == 0)
      Demo = true;
    else
      Path = Argv[I];
  }

  std::string Script;
  if (Demo) {
    Context Tmp(64);
    Script = "(set-logic QF_BV)\n"
             "(declare-const x (_ BitVec 64))\n"
             "(declare-const y (_ BitVec 64))\n"
             "(assert (distinct (bvmul x y)\n"
             "  (bvadd (bvmul (bvand x (bvnot y)) (bvand (bvnot x) y))\n"
             "         (bvmul (bvand x y) (bvor x y)))))\n"
             "(check-sat)\n";
  } else if (Path) {
    std::ifstream File(Path);
    if (!File) {
      std::fprintf(stderr, "cannot open %s\n", Path);
      return 1;
    }
    std::ostringstream SS;
    SS << File.rdbuf();
    Script = SS.str();
  } else {
    std::fprintf(stderr, "usage: %s [--solve] [--demo] [file.smt2]\n",
                 Argv[0]);
    return 2;
  }

  // Probe the width first (parse requires a matching context).
  unsigned Width = 64;
  {
    size_t P = Script.find("BitVec");
    if (P != std::string::npos)
      std::sscanf(Script.c_str() + P, "BitVec %u", &Width);
  }
  Context Ctx(Width);
  std::string Error;
  auto Query = parseSmtLibQuery(Ctx, Script, &Error);
  if (!Query) {
    std::fprintf(stderr, "parse error: %s\n", Error.c_str());
    return 1;
  }

  MBASolver Simplifier(Ctx);
  const Expr *L = Simplifier.simplify(Query->Lhs);
  const Expr *R = Simplifier.simplify(Query->Rhs);
  std::fprintf(stderr, "lhs: %s\nrhs: %s\nsimplification: %.4f s\n",
               printExpr(Ctx, L).c_str(), printExpr(Ctx, R).c_str(),
               Simplifier.stats().Seconds);

  if (Solve) {
    for (auto &C : makeAllCheckers()) {
      CheckResult Res = C->check(Ctx, L, R, 10.0);
      // The script asserts distinct: unsat (equivalent) means the original
      // assertion is unsatisfiable.
      const char *Answer = Res.Outcome == Verdict::Equivalent ? "unsat"
                           : Res.Outcome == Verdict::NotEquivalent ? "sat"
                                                                   : "unknown";
      std::printf("%s: %s (%.3f s)\n", C->name().c_str(), Answer,
                  Res.Seconds);
    }
    return 0;
  }

  std::fputs(toSmtLibQuery(Ctx, L, R).c_str(), stdout);
  return 0;
}
