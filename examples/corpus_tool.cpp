//===- examples/corpus_tool.cpp - Dataset generation tool -----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line tool that regenerates the evaluation corpus as a text
/// dataset (one identity per line: category, ground truth, obfuscated),
/// mirroring the datasets shipped with the paper's artifact.
///
///   ./build/examples/corpus_tool --per-category=1000 --seed=1 > corpus.tsv
///   ./build/examples/corpus_tool --stats
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Metrics.h"

#include <cstdio>
#include <cstring>

using namespace mba;

int main(int Argc, char **Argv) {
  unsigned PerCategory = 100;
  uint64_t Seed = 20210620;
  bool StatsOnly = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::sscanf(Argv[I], "--per-category=%u", &PerCategory) == 1)
      continue;
    if (std::sscanf(Argv[I], "--seed=%llu", (unsigned long long *)&Seed) == 1)
      continue;
    if (std::strcmp(Argv[I], "--stats") == 0) {
      StatsOnly = true;
      continue;
    }
    std::fprintf(stderr,
                 "usage: %s [--per-category=N] [--seed=N] [--stats]\n",
                 Argv[0]);
    return 2;
  }

  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = Opts.PolyCount = Opts.NonPolyCount = PerCategory;
  Opts.Seed = Seed;
  auto Corpus = generateCorpus(Ctx, Opts);

  // Verify every entry before emitting: the dataset must contain only
  // genuine identities.
  for (const CorpusEntry &E : Corpus) {
    if (!verifyEntrySampled(Ctx, E, 32)) {
      std::fprintf(stderr, "internal error: non-identity entry generated\n");
      return 1;
    }
  }

  if (StatsOnly) {
    double Alt[3] = {0, 0, 0}, Len[3] = {0, 0, 0};
    unsigned Count[3] = {0, 0, 0};
    for (const CorpusEntry &E : Corpus) {
      ComplexityMetrics M = measureComplexity(Ctx, E.Obfuscated);
      int C = (int)E.Category;
      Alt[C] += (double)M.Alternation;
      Len[C] += (double)M.Length;
      ++Count[C];
    }
    for (int C = 0; C != 3; ++C)
      std::printf("%-10s n=%u  avg alternation %.1f  avg length %.1f\n",
                  mbaKindName((MBAKind)C), Count[C],
                  Count[C] ? Alt[C] / Count[C] : 0,
                  Count[C] ? Len[C] / Count[C] : 0);
    return 0;
  }

  std::fputs(corpusToText(Ctx, Corpus).c_str(), stdout);
  return 0;
}
