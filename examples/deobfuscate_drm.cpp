//===- examples/deobfuscate_drm.cpp - Obfuscated-binary analysis demo -----===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's motivating application domain: software protections (Tigress,
/// Quarkslab Epona, Irdeto Cloaked CA, the DRM system of Mougey & Gabriel's
/// REcon'14 talk) hide data-flow behind MBA encodings, which then defeat the
/// SMT-solver-based reasoning inside reverse-engineering tools.
///
/// This example plays both sides:
///  1. an "obfuscator" protects a license-check transform with layered MBA
///     (linear null-space identities + non-poly rewrites, exactly the
///     constructions such products use), and
///  2. an "analyst" recovers the original semantics with MBA-Solver and
///     proves the recovery correct with an SMT solver.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/Obfuscator.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"

#include <cstdio>

using namespace mba;

int main() {
  Context Ctx(64);

  // The protected program computes a license transform over the serial x
  // and the hardware id y.
  const Expr *Secret = parseOrDie(Ctx, "3*x - y + 0x5f");
  std::printf("secret transform:   %s\n", printExpr(Ctx, Secret).c_str());

  // --- Vendor side: obfuscate. ------------------------------------------
  Obfuscator Obf(Ctx, /*Seed=*/0xD2);
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 3;
  Opts.TermsPerIdentity = 6;
  Opts.BitwiseDepth = 2;
  const Expr *Layer1 = Obf.obfuscateLinear(Secret, Opts);
  std::vector<const Expr *> Vars = collectVariables(Secret);
  const Expr *Shipped = Obf.obfuscateNonPoly(Layer1, Vars, 2);

  ComplexityMetrics M = measureComplexity(Ctx, Shipped);
  std::printf("shipped expression: %s\n", printExpr(Ctx, Shipped).c_str());
  std::printf("  category %s, %llu alternations, length %zu\n",
              mbaKindName(M.Kind), (unsigned long long)M.Alternation,
              M.Length);

  // Sanity: the obfuscated binary still computes the same function.
  RNG Rng(7);
  for (int I = 0; I < 1000; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    if (evaluate(Ctx, Shipped, Vals) != evaluate(Ctx, Secret, Vals)) {
      std::fprintf(stderr, "obfuscation broke the program!\n");
      return 1;
    }
  }

  // --- Analyst side: deobfuscate. ---------------------------------------
  MBASolver Analyst(Ctx);
  const Expr *Recovered = Analyst.simplify(Shipped);
  std::printf("\nrecovered:          %s   (%.4f s)\n",
              printExpr(Ctx, Recovered).c_str(), Analyst.stats().Seconds);

  // Prove the recovery with an SMT solver. Raw, this query would be the
  // kind that stalls symbolic-execution pipelines; after simplification it
  // is immediate.
  auto Checkers = makeAllCheckers();
  for (auto &C : Checkers) {
    CheckResult Raw = C->check(Ctx, Shipped, Secret, 0.5);
    CheckResult Nice = C->check(Ctx, Recovered, Secret, 10.0);
    std::printf("  %-12s raw query: %-14s   recovered query: %s in %.3fs\n",
                C->name().c_str(), verdictName(Raw.Outcome),
                verdictName(Nice.Outcome), Nice.Seconds);
  }

  bool Match = printExpr(Ctx, Recovered) == printExpr(Ctx, Analyst.simplify(Secret));
  std::printf("\nanalyst's verdict: the shipped check computes %s%s\n",
              printExpr(Ctx, Recovered).c_str(),
              Match ? " (canonical form of the secret)" : "");
  return 0;
}
