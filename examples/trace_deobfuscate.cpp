//===- examples/trace_deobfuscate.cpp - Code-level deobfuscation ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Deobfuscation at the *code* level rather than the expression level:
/// reads a straight-line trace (the form a binary-analysis frontend lifts
/// an obfuscated basic block into), flattens the requested outputs into
/// pure expressions over the inputs, simplifies them with MBA-Solver, and
/// prints the recovered minimal program.
///
///   ./build/examples/trace_deobfuscate              # built-in demo trace
///   ./build/examples/trace_deobfuscate file.trace out1 out2
///
/// Trace syntax: one `name = expr` per line; '#' comments; names never
/// assigned are inputs.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Printer.h"
#include "ir/Trace.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mba;

namespace {

const char *DemoTrace = R"(# a protected checksum routine, as lifted
acc1 = (key | data) + (key & data)
acc2 = (acc1 ^ 13) + 2*(acc1 & 13)
mix  = (acc2 & ~data) - (~acc2 & data)
obf  = ((mix - acc2 | acc1) + (mix - acc2 & acc1)) - acc1
check = obf + acc2
scratch = acc1 * acc1 - mix
)";

} // namespace

int main(int Argc, char **Argv) {
  Context Ctx(64);

  std::string Text;
  std::vector<std::string> RootNames;
  if (Argc > 1) {
    std::ifstream File(Argv[1]);
    if (!File) {
      std::fprintf(stderr, "cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream SS;
    SS << File.rdbuf();
    Text = SS.str();
    for (int I = 2; I < Argc; ++I)
      RootNames.push_back(Argv[I]);
  } else {
    Text = DemoTrace;
    RootNames = {"check"};
  }

  std::string Error;
  auto T = Trace::parse(Ctx, Text, &Error);
  if (!T) {
    std::fprintf(stderr, "trace parse error: %s\n", Error.c_str());
    return 1;
  }

  std::printf("--- lifted trace (%zu instructions) ---\n%s\n", T->size(),
              T->print(Ctx).c_str());

  std::vector<const Expr *> Roots;
  for (const std::string &Name : RootNames) {
    const Expr *V = Ctx.getVar(Name);
    if (!T->defines(V))
      std::fprintf(stderr, "warning: root '%s' is not defined by the trace\n",
                   Name.c_str());
    Roots.push_back(V);
  }
  if (Roots.empty()) {
    std::fprintf(stderr, "no roots requested\n");
    return 1;
  }

  for (const Expr *Root : Roots) {
    const Expr *Flat = T->flatten(Ctx, Root);
    ComplexityMetrics M = measureComplexity(Ctx, Flat);
    std::printf("flattened %s: %s MBA, %llu alternations, length %zu\n",
                Root->varName(), mbaKindName(M.Kind),
                (unsigned long long)M.Alternation, M.Length);
  }

  MBASolver Solver(Ctx);
  Trace Clean = T->deobfuscate(Ctx, Solver, Roots);
  std::printf("\n--- recovered program (%.4f s) ---\n%s",
              Solver.stats().Seconds, Clean.print(Ctx).c_str());
  return 0;
}
