//===- examples/solver_boost.cpp - Preprocessing pass demo ----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Demonstrates the paper's headline use case: MBA-Solver as a
/// *preprocessing pass in front of an unmodified SMT solver*. A set of MBA
/// identity equations is posed to every available solver backend twice —
/// raw, then after simplification — and the wall-clock difference is
/// printed.
///
///   ./build/examples/solver_boost [timeout-seconds]
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"

#include <cstdio>
#include <cstdlib>

using namespace mba;

int main(int Argc, char **Argv) {
  double Timeout = Argc > 1 ? std::strtod(Argv[1], nullptr) : 1.0;
  Context Ctx(64);

  struct Query {
    const char *Complex, *Ground;
  } Queries[] = {
      {"(x^y) + 2*(x|~y) + 2", "x - y"},
      {"2*(x|y) - (~x&y) - (x&~y)", "x + y"},
      {"(x&~y)*(~x&y) + (x&y)*(x|y)", "x*y"},
      {"((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)", "x - y + z"},
  };

  auto Checkers = makeAllCheckers();
  MBASolver Simplifier(Ctx);

  for (const Query &Q : Queries) {
    const Expr *L = parseOrDie(Ctx, Q.Complex);
    const Expr *R = parseOrDie(Ctx, Q.Ground);
    std::printf("query: %s == %s\n", Q.Complex, Q.Ground);

    const Expr *LS = Simplifier.simplify(L);
    std::printf("  MBA-Solver: %s\n", printExpr(Ctx, LS).c_str());
    for (auto &C : Checkers) {
      CheckResult Raw = C->check(Ctx, L, R, Timeout);
      CheckResult Boosted = C->check(Ctx, LS, R, Timeout);
      std::printf("  %-12s raw: %-14s %7.3fs   simplified: %-14s %7.3fs\n",
                  C->name().c_str(), verdictName(Raw.Outcome), Raw.Seconds,
                  verdictName(Boosted.Outcome), Boosted.Seconds);
    }
    std::printf("\n");
  }
  return 0;
}
