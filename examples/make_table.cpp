//===- examples/make_table.cpp - Pre-computed simplification tables -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's pre-computed mapping tables (Section 4.4): for
/// every 0/1 signature vector over t variables, the normalized MBA it
/// simplifies to, in the conjunction (Table 4/5) or disjunction (Table 9)
/// basis, optionally with the minimal single-bitwise form alongside.
///
///   ./build/examples/make_table            # Table 5 (2 variables)
///   ./build/examples/make_table --vars=3   # the 256-row 3-variable table
///   ./build/examples/make_table --basis=disj
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Printer.h"
#include "mba/Basis.h"
#include "mba/BooleanMin.h"
#include "poly/PolyExpr.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace mba;

int main(int Argc, char **Argv) {
  unsigned NumVars = 2;
  BasisKind Basis = BasisKind::Conjunction;
  for (int I = 1; I < Argc; ++I) {
    if (std::sscanf(Argv[I], "--vars=%u", &NumVars) == 1)
      continue;
    if (std::strcmp(Argv[I], "--basis=disj") == 0)
      Basis = BasisKind::Disjunction;
    else if (std::strcmp(Argv[I], "--basis=conj") == 0)
      Basis = BasisKind::Conjunction;
  }
  if (NumVars < 1 || NumVars > 4) {
    std::fprintf(stderr, "--vars must be 1..4\n");
    return 2;
  }

  Context Ctx(64);
  static const char *Names[] = {"x", "y", "z", "w"};
  std::vector<const Expr *> Vars;
  for (unsigned I = 0; I != NumVars; ++I)
    Vars.push_back(Ctx.getVar(Names[I]));
  unsigned Rows = 1u << NumVars;

  std::printf("# Pre-computed simplification table, %u variable(s), %s "
              "basis (paper Table 5 for 2 vars)\n",
              NumVars,
              Basis == BasisKind::Conjunction ? "conjunction" : "disjunction");
  std::printf("# signature vector -> normalized MBA%s\n",
              NumVars <= MaxBooleanMinVars ? " -> minimal bitwise form" : "");

  for (uint32_t F = 0; F != (1u << Rows); ++F) {
    std::vector<uint64_t> Sig(Rows);
    for (unsigned K = 0; K != Rows; ++K)
      Sig[K] = (F >> K) & 1;
    LinearCombo Combo = solveBasis(Ctx, Basis, Sig, Vars);
    const Expr *Normalized =
        buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);

    std::printf("(");
    for (unsigned K = 0; K != Rows; ++K)
      std::printf("%s%llu", K ? "," : "", (unsigned long long)Sig[K]);
    std::printf(")\t%s", printExpr(Ctx, Normalized).c_str());
    if (NumVars <= MaxBooleanMinVars) {
      const Expr *Minimal = synthesizeBitwise(Ctx, Vars, F);
      std::printf("\t%s", printExpr(Ctx, Minimal).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
