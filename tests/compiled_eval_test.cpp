//===- tests/compiled_eval_test.cpp - Bytecode evaluator tests ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/CompiledEval.h"

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(CompiledEval, MatchesInterpreterOnSamples) {
  Context Ctx(64);
  RNG Rng(12);
  const char *Samples[] = {
      "x",
      "42",
      "x + y",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
      "~(x - 1)",
      "((x-y)|z) + ((x-y)&z)",
      "2*(x|y) - (~x&y) - (x&~y)",
      "-x ^ (y | 3) * z",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    CompiledExpr C(Ctx, E);
    for (int I = 0; I < 200; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(C.evaluate(Vals), evaluate(Ctx, E, Vals)) << S;
    }
  }
}

TEST(CompiledEval, NarrowWidths) {
  for (unsigned W : {1u, 4u, 8u, 16u, 33u}) {
    Context Ctx(W);
    RNG Rng(W);
    const Expr *E = parseOrDie(Ctx, "x*y + (x&y) - ~x");
    CompiledExpr C(Ctx, E);
    for (int I = 0; I < 100; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next()};
      ASSERT_EQ(C.evaluate(Vals), evaluate(Ctx, E, Vals)) << "width " << W;
    }
  }
}

TEST(CompiledEval, SharedSubtreesCompileOnce) {
  Context Ctx(64);
  const Expr *Shared = parseOrDie(Ctx, "x*y + 1");
  const Expr *E = Ctx.getAdd(Shared, Ctx.getMul(Shared, Shared));
  CompiledExpr C(Ctx, E);
  // Nodes: x, y, x*y, 1, x*y+1 (shared), shared*shared, outer add = 7.
  EXPECT_EQ(C.size(), 7u);
}

TEST(CompiledEval, MissingVariablesReadZero) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  CompiledExpr C(Ctx, Ctx.getOr(X, Y));
  uint64_t Vals[] = {7}; // y out of range
  EXPECT_EQ(C.evaluate(Vals), 7u);
  EXPECT_EQ(C.evaluate({}), 0u);
}

TEST(CompiledEval, RepeatedEvaluationIsConsistent) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x*x - 2*x + 1");
  CompiledExpr C(Ctx, E);
  uint64_t Vals[] = {5};
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(C.evaluate(Vals), 16u);
}

} // namespace
