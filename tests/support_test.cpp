//===- tests/support_test.cpp - Support library tests ---------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/RNG.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

using namespace mba;

namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena A;
  std::set<void *> Seen;
  for (int I = 1; I <= 200; ++I) {
    size_t Align = 1ULL << (I % 5); // 1..16
    void *P = A.allocate((size_t)I, Align);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ((uintptr_t)P % Align, 0u);
    EXPECT_TRUE(Seen.insert(P).second);
    std::memset(P, 0xab, (size_t)I); // must be writable
  }
  EXPECT_GT(A.bytesUsed(), 0u);
  EXPECT_GE(A.bytesReserved(), A.bytesUsed());
}

TEST(ArenaTest, LargeAllocationsGrowSlabs) {
  Arena A;
  void *P1 = A.allocate(1 << 20, 8); // bigger than the first slab
  void *P2 = A.allocate(64, 8);
  EXPECT_NE(P1, nullptr);
  EXPECT_NE(P2, nullptr);
  EXPECT_GE(A.bytesReserved(), (size_t)(1 << 20));
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena A;
  struct Pair {
    int X, Y;
  };
  Pair *P = A.create<Pair>(Pair{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(ArenaTest, CopyStringNulTerminates) {
  Arena A;
  const char *S = A.copyString("hello", 5);
  EXPECT_STREQ(S, "hello");
  const char *Empty = A.copyString("", 0);
  EXPECT_STREQ(Empty, "");
  // Embedded content is copied, not aliased.
  char Buf[] = "mutate";
  const char *C = A.copyString(Buf, 6);
  Buf[0] = 'X';
  EXPECT_STREQ(C, "mutate");
}

TEST(RNGTest, DeterministicPerSeed) {
  RNG A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
  }
  bool Differs = false;
  RNG A2(42);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(RNGTest, BelowStaysInRange) {
  RNG R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.below(10), 10u);
    EXPECT_EQ(R.below(1), 0u);
  }
}

TEST(RNGTest, RangeIsInclusive) {
  RNG R(8);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
  EXPECT_EQ(R.range(5, 5), 5);
}

TEST(RNGTest, ChanceIsRoughlyCalibrated) {
  RNG R(9);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.chance(1, 4);
  EXPECT_GT(Hits, 2000);
  EXPECT_LT(Hits, 3000);
}

TEST(RNGTest, SplitProducesIndependentStream) {
  RNG A(10);
  RNG B = A.split();
  bool Differs = false;
  for (int I = 0; I < 50; ++I)
    Differs |= A.next() != B.next();
  EXPECT_TRUE(Differs);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double S = W.seconds();
  EXPECT_GE(S, 0.015);
  EXPECT_LT(S, 5.0);
  EXPECT_NEAR(W.millis(), W.seconds() * 1000, 50.0);
  W.reset();
  EXPECT_LT(W.seconds(), 0.015);
}

} // namespace
