//===- tests/sat_test.cpp - CDCL SAT solver tests -------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sat/Dimacs.h"
#include "sat/Solver.h"

#include "support/RNG.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace mba;
using namespace mba::sat;

namespace {

/// Loads a DIMACS string into a fresh solver.
void loadCnf(SatSolver &Solver, const CnfFormula &F) {
  while (Solver.numVars() < F.NumVars)
    Solver.newVar();
  for (const auto &Clause : F.Clauses)
    if (!Solver.addClause(Clause))
      return;
}

/// Brute-force SAT check for small variable counts (reference oracle).
bool bruteForceSat(const CnfFormula &F) {
  assert(F.NumVars <= 20 && "brute force only for small instances");
  for (uint64_t Mask = 0; Mask < (1ULL << F.NumVars); ++Mask) {
    bool All = true;
    for (const auto &Clause : F.Clauses) {
      bool Any = false;
      for (Lit L : Clause)
        Any |= ((Mask >> L.var()) & 1) != (uint64_t)L.negated();
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// Checks that a model satisfies every clause.
void expectModelSatisfies(const SatSolver &Solver, const CnfFormula &F) {
  for (const auto &Clause : F.Clauses) {
    bool Any = false;
    for (Lit L : Clause)
      Any |= Solver.modelValue(L.var()) != L.negated();
    EXPECT_TRUE(Any) << "model violates a clause";
  }
}

TEST(Lit, PackingRoundTrips) {
  Lit L(7, true);
  EXPECT_EQ(L.var(), 7u);
  EXPECT_TRUE(L.negated());
  EXPECT_EQ((~L).var(), 7u);
  EXPECT_FALSE((~L).negated());
  EXPECT_EQ(~~L, L);
  EXPECT_FALSE(Lit().valid());
}

TEST(SatSolverTest, TrivialSatAndUnsat) {
  {
    SatSolver S;
    Var A = S.newVar();
    EXPECT_TRUE(S.addClause({Lit(A, false)}));
    EXPECT_EQ(S.solve(), SatResult::Sat);
    EXPECT_TRUE(S.modelValue(A));
  }
  {
    SatSolver S;
    Var A = S.newVar();
    EXPECT_TRUE(S.addClause({Lit(A, false)}));
    EXPECT_FALSE(S.addClause({Lit(A, true)}));
    EXPECT_EQ(S.solve(), SatResult::Unsat);
    EXPECT_TRUE(S.isProvenUnsat());
  }
}

TEST(SatSolverTest, EmptyClauseListIsSat) {
  SatSolver S;
  S.newVar();
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolverTest, TautologyIsIgnored) {
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A, false), Lit(A, true)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(SatSolverTest, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): three pigeons, two holes. Var p*2+h = pigeon p in hole h.
  SatSolver S;
  for (int I = 0; I < 6; ++I)
    S.newVar();
  auto P = [](int Pigeon, int Hole) { return Lit(Pigeon * 2 + Hole, false); };
  for (int Pigeon = 0; Pigeon < 3; ++Pigeon)
    S.addClause({P(Pigeon, 0), P(Pigeon, 1)});
  for (int Hole = 0; Hole < 2; ++Hole)
    for (int A = 0; A < 3; ++A)
      for (int B = A + 1; B < 3; ++B)
        S.addClause({~P(A, Hole), ~P(B, Hole)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, PigeonHole6Into5IsUnsatWithLearning) {
  // Large enough to exercise conflict analysis, restarts and learning.
  const int Pigeons = 6, Holes = 5;
  SatSolver S;
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  auto P = [&](int Pigeon, int Hole) {
    return Lit(Pigeon * Holes + Hole, false);
  };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    std::vector<Lit> Clause;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Clause.push_back(P(Pigeon, Hole));
    S.addClause(Clause);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int A = 0; A < Pigeons; ++A)
      for (int B = A + 1; B < Pigeons; ++B)
        S.addClause({~P(A, Hole), ~P(B, Hole)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.stats().Conflicts, 10u);
}

TEST(SatSolverTest, BudgetReturnsUnknown) {
  // PHP(8,7) cannot be refuted in 10 conflicts.
  const int Pigeons = 8, Holes = 7;
  SatSolver S;
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  auto P = [&](int Pigeon, int Hole) {
    return Lit(Pigeon * Holes + Hole, false);
  };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    std::vector<Lit> Clause;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Clause.push_back(P(Pigeon, Hole));
    S.addClause(Clause);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int A = 0; A < Pigeons; ++A)
      for (int B = A + 1; B < Pigeons; ++B)
        S.addClause({~P(A, Hole), ~P(B, Hole)});
  Budget Limits;
  Limits.MaxConflicts = 10;
  EXPECT_EQ(S.solve(Limits), SatResult::Unknown);
  EXPECT_FALSE(S.isProvenUnsat());
  // With a real budget it is refutable.
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, RandomInstancesAgreeWithBruteForce) {
  // Random 3-SAT around the phase transition (ratio ~4.3), cross-checked
  // against exhaustive enumeration.
  RNG Rng(12345);
  for (int Trial = 0; Trial < 120; ++Trial) {
    unsigned NumVars = 4 + (unsigned)Rng.below(9); // 4..12
    unsigned NumClauses = (unsigned)(NumVars * 43 / 10);
    CnfFormula F;
    F.NumVars = NumVars;
    for (unsigned C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(
            Lit((Var)Rng.below(NumVars), Rng.chance(1, 2)));
      F.Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    loadCnf(S, F);
    SatResult R = S.solve();
    bool Expected = bruteForceSat(F);
    ASSERT_EQ(R, Expected ? SatResult::Sat : SatResult::Unsat)
        << "trial " << Trial;
    if (R == SatResult::Sat)
      expectModelSatisfies(S, F);
  }
}

TEST(SatSolverTest, ManyRandomSatInstancesProduceValidModels) {
  // Under-constrained instances (ratio 2.0) are almost surely SAT; verify
  // models on bigger variable counts than brute force allows.
  RNG Rng(777);
  for (int Trial = 0; Trial < 20; ++Trial) {
    unsigned NumVars = 50 + (unsigned)Rng.below(100);
    CnfFormula F;
    F.NumVars = NumVars;
    for (unsigned C = 0; C != NumVars * 2; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(Lit((Var)Rng.below(NumVars), Rng.chance(1, 2)));
      F.Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    loadCnf(S, F);
    ASSERT_EQ(S.solve(), SatResult::Sat);
    expectModelSatisfies(S, F);
  }
}

TEST(SatSolverTest, XorChainsStressLearning) {
  // x1 ^ x2 ^ ... ^ xn = 1 as CNF ladders with auxiliary variables, plus
  // the constraint that an even subset is set: UNSAT by parity.
  const unsigned N = 24;
  SatSolver S;
  std::vector<Var> X(N);
  for (auto &V : X)
    V = S.newVar();
  // t0 = x0; t_{i} = t_{i-1} ^ x_i; assert t_{N-1} = true.
  Var Prev = X[0];
  for (unsigned I = 1; I != N; ++I) {
    Var T = S.newVar();
    // T <-> Prev ^ X[I]
    Lit TL(T, false), A(Prev, false), B(X[I], false);
    S.addClause({~TL, ~A, ~B});
    S.addClause({~TL, A, B});
    S.addClause({TL, ~A, B});
    S.addClause({TL, A, ~B});
    Prev = T;
  }
  S.addClause({Lit(Prev, false)});
  // Now force all x to false: parity 0 != 1 -> UNSAT.
  for (unsigned I = 0; I != N; ++I)
    S.addClause({Lit(X[I], true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatSolverTest, ClauseDatabaseReductionStaysSound) {
  // Force frequent learnt-DB reductions (limit 30) on random instances
  // near the phase transition and cross-check every verdict against brute
  // force: a broken watch rebuild would surface as a bogus model or a
  // bogus refutation.
  RNG Rng(777777);
  unsigned Reductions = 0;
  for (int Trial = 0; Trial < 60; ++Trial) {
    unsigned NumVars = 10 + (unsigned)Rng.below(5);
    unsigned NumClauses = (unsigned)(NumVars * 43 / 10);
    CnfFormula F;
    F.NumVars = NumVars;
    for (unsigned C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(Lit((Var)Rng.below(NumVars), Rng.chance(1, 2)));
      F.Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    S.setLearntLimit(30);
    loadCnf(S, F);
    SatResult R = S.solve();
    bool Expected = bruteForceSat(F);
    ASSERT_EQ(R, Expected ? SatResult::Sat : SatResult::Unsat)
        << "trial " << Trial;
    if (R == SatResult::Sat)
      expectModelSatisfies(S, F);
    Reductions += S.stats().DeletedClauses > 0;
  }
  (void)Reductions; // small instances may finish before the limit

  // Guarantee the reduction path runs: PHP(7,6) needs far more than 20
  // learnt clauses to refute, and the answer must still be Unsat.
  const int Pigeons = 7, Holes = 6;
  SatSolver S;
  S.setLearntLimit(20);
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  auto P = [&](int Pigeon, int Hole) {
    return Lit((Var)(Pigeon * Holes + Hole), false);
  };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    std::vector<Lit> Clause;
    for (int Hole = 0; Hole < Holes; ++Hole)
      Clause.push_back(P(Pigeon, Hole));
    S.addClause(Clause);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int A = 0; A < Pigeons; ++A)
      for (int B = A + 1; B < Pigeons; ++B)
        S.addClause({~P(A, Hole), ~P(B, Hole)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.stats().DeletedClauses, 0u);
}

TEST(SatSolverTest, StatsArePopulated) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  S.addClause({Lit(A, true), Lit(C, false)});
  S.addClause({Lit(B, true), Lit(C, true)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_GT(S.stats().Propagations + S.stats().Decisions, 0u);
}

TEST(Dimacs, ParseAndWriteRoundTrip) {
  const char *Text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
  auto F = parseDimacs(Text);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->NumVars, 3u);
  ASSERT_EQ(F->Clauses.size(), 2u);
  EXPECT_EQ(F->Clauses[0][0], Lit(0, false));
  EXPECT_EQ(F->Clauses[0][1], Lit(1, true));
  auto F2 = parseDimacs(writeDimacs(*F));
  ASSERT_TRUE(F2.has_value());
  EXPECT_EQ(F2->Clauses, F->Clauses);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_FALSE(parseDimacs("1 2 3").has_value());   // missing terminator
  EXPECT_FALSE(parseDimacs("1 x 0").has_value());   // junk token
  EXPECT_TRUE(parseDimacs("").has_value());         // empty formula is fine
}

TEST(Dimacs, SolvesParsedFormula) {
  auto F = parseDimacs("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n");
  ASSERT_TRUE(F.has_value());
  SatSolver S;
  loadCnf(S, *F);
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(0));
  EXPECT_TRUE(S.modelValue(1));
}

TEST(Dimacs, LearntClausesRoundTrip) {
  CnfFormula F;
  F.NumVars = 3;
  F.Clauses = {{Lit(0, false), Lit(1, false)}, {Lit(2, true)}};
  F.LearntClauses = {{Lit(0, false), Lit(2, false)}, {Lit(1, true)}};

  // Without the flag, learnt clauses are not serialized.
  auto Plain = parseDimacs(writeDimacs(F));
  ASSERT_TRUE(Plain.has_value());
  EXPECT_EQ(Plain->Clauses, F.Clauses);
  EXPECT_TRUE(Plain->LearntClauses.empty());

  // With it, both sections survive the round trip.
  auto Full = parseDimacs(writeDimacs(F, /*IncludeLearnt=*/true));
  ASSERT_TRUE(Full.has_value());
  EXPECT_EQ(Full->Clauses, F.Clauses);
  EXPECT_EQ(Full->LearntClauses, F.LearntClauses);
}

//===----------------------------------------------------------------------===//
// Incremental solving: assumptions, final-conflict analysis, CNF export
//===----------------------------------------------------------------------===//

TEST(Incremental, AssumptionsRestrictWithoutPoisoning) {
  // (a | b) is satisfiable; unsatisfiable under {~a, ~b}; satisfiable
  // again afterwards — assumptions must not mark the instance unsat.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});

  Lit Assumps[] = {Lit(A, true), Lit(B, true)};
  EXPECT_EQ(S.solve(Assumps), SatResult::Unsat);
  EXPECT_FALSE(S.isProvenUnsat());
  EXPECT_EQ(S.failedAssumptions().size(), 2u);

  EXPECT_EQ(S.solve(), SatResult::Sat);
  Lit Only[] = {Lit(A, true)};
  EXPECT_EQ(S.solve(Only), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Incremental, ContradictoryAssumptionsFail) {
  SatSolver S;
  Var A = S.newVar();
  S.newVar();
  Lit Assumps[] = {Lit(A, false), Lit(A, true)};
  EXPECT_EQ(S.solve(Assumps), SatResult::Unsat);
  EXPECT_FALSE(S.isProvenUnsat());
  // Both polarities participate in the failure.
  EXPECT_EQ(S.failedAssumptions().size(), 2u);
}

TEST(Incremental, FailedAssumptionsAreTheUsedSubset) {
  // (~a | ~b) refutes {a, b}; c plays no role and must not be reported.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({Lit(A, true), Lit(B, true)});

  Lit Assumps[] = {Lit(C, false), Lit(A, false), Lit(B, false)};
  EXPECT_EQ(S.solve(Assumps), SatResult::Unsat);
  const auto &Failed = S.failedAssumptions();
  EXPECT_EQ(Failed.size(), 2u);
  for (Lit L : Failed)
    EXPECT_NE(L.var(), C) << "unused assumption reported in the core";
}

TEST(Incremental, GuardedQueriesReuseLearntClauses) {
  // The checker protocol: embed PHP(6,5) behind guard G1 (unsat under
  // {G1}), retire it, then run a satisfiable query behind G2 — on one
  // persistent solver, with learnt clauses carried across.
  const int Pigeons = 6, Holes = 5;
  SatSolver S;
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  Lit G1(S.newVar(), false);
  auto P = [&](int Pigeon, int Hole) {
    return Lit(Pigeon * Holes + Hole, false);
  };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    std::vector<Lit> Clause{~G1};
    for (int Hole = 0; Hole < Holes; ++Hole)
      Clause.push_back(P(Pigeon, Hole));
    S.addClause(Clause);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int A = 0; A < Pigeons; ++A)
      for (int B = A + 1; B < Pigeons; ++B)
        S.addClause({~G1, ~P(A, Hole), ~P(B, Hole)});

  Lit Q1[] = {G1};
  EXPECT_EQ(S.solve(Q1), SatResult::Unsat);
  EXPECT_FALSE(S.isProvenUnsat());
  ASSERT_EQ(S.failedAssumptions().size(), 1u);
  EXPECT_EQ(S.failedAssumptions()[0], G1);
  uint64_t LearntAfterQ1 = S.stats().LearntClauses;
  EXPECT_GT(LearntAfterQ1, 0u);

  // Retire query 1; its clauses are permanently satisfied.
  EXPECT_TRUE(S.addClause({~G1}));

  // Query 2 on the same solver sees the learnt DB from query 1.
  Lit G2(S.newVar(), false);
  S.addClause({~G2, P(0, 0)});
  Lit Q2[] = {G2};
  EXPECT_EQ(S.solve(Q2), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(P(0, 0).var()));
  EXPECT_EQ(S.stats().AssumptionSolves, 2u);
  EXPECT_GT(S.stats().ReusedLearnts, 0u);

  // The whole instance (guards free) is still satisfiable.
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

TEST(Incremental, RandomAssumptionSolvesAgreeWithBruteForce) {
  // solve(assumptions) must equal solving F + assumption units from
  // scratch — across repeated queries on one persistent solver.
  RNG Rng(424242);
  for (int Trial = 0; Trial < 40; ++Trial) {
    unsigned NumVars = 4 + (unsigned)Rng.below(7); // 4..10
    unsigned NumClauses = (unsigned)(NumVars * 4);
    CnfFormula F;
    F.NumVars = NumVars;
    for (unsigned C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(Lit((Var)Rng.below(NumVars), Rng.chance(1, 2)));
      F.Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    loadCnf(S, F);
    if (S.isProvenUnsat())
      continue;
    for (int Query = 0; Query < 8; ++Query) {
      unsigned NumAssumps = 1 + (unsigned)Rng.below(NumVars / 2);
      std::vector<Lit> Assumps;
      for (unsigned I = 0; I != NumAssumps; ++I)
        Assumps.push_back(Lit((Var)Rng.below(NumVars), Rng.chance(1, 2)));

      CnfFormula WithUnits = F;
      for (Lit L : Assumps)
        WithUnits.Clauses.push_back({L});
      bool Expected = bruteForceSat(WithUnits);

      SatResult R = S.solve(Assumps);
      ASSERT_EQ(R, Expected ? SatResult::Sat : SatResult::Unsat)
          << "trial " << Trial << " query " << Query;
      if (R == SatResult::Sat) {
        expectModelSatisfies(S, F);
        for (Lit L : Assumps)
          EXPECT_NE(S.modelValue(L.var()), L.negated())
              << "model violates an assumption";
      } else if (S.isProvenUnsat()) {
        // CDCL may prove the base formula root-unsat mid-query; that is
        // only sound if F really is unsatisfiable on its own.
        EXPECT_FALSE(bruteForceSat(F));
      } else {
        // The failed subset must itself be a refutation core.
        CnfFormula Core = F;
        for (Lit L : S.failedAssumptions())
          Core.Clauses.push_back({L});
        EXPECT_FALSE(bruteForceSat(Core))
            << "failed-assumption set is not a core";
      }
    }
  }
}

TEST(Incremental, ExportCnfRoundTripsThroughDimacs) {
  // Solve guarded PHP(6,5) to grow a learnt DB, export with the learnt
  // clauses, round-trip through DIMACS text, and check the exported
  // problem clauses alone reproduce the verdicts.
  const int Pigeons = 6, Holes = 5;
  SatSolver S;
  for (int I = 0; I < Pigeons * Holes; ++I)
    S.newVar();
  Lit G1(S.newVar(), false);
  auto P = [&](int Pigeon, int Hole) {
    return Lit(Pigeon * Holes + Hole, false);
  };
  for (int Pigeon = 0; Pigeon < Pigeons; ++Pigeon) {
    std::vector<Lit> Clause{~G1};
    for (int Hole = 0; Hole < Holes; ++Hole)
      Clause.push_back(P(Pigeon, Hole));
    S.addClause(Clause);
  }
  for (int Hole = 0; Hole < Holes; ++Hole)
    for (int A = 0; A < Pigeons; ++A)
      for (int B = A + 1; B < Pigeons; ++B)
        S.addClause({~G1, ~P(A, Hole), ~P(B, Hole)});
  Lit Q1[] = {G1};
  ASSERT_EQ(S.solve(Q1), SatResult::Unsat);

  CnfFormula Exported = S.exportCnf(/*IncludeLearnt=*/true);
  EXPECT_EQ(Exported.NumVars, S.numVars());
  EXPECT_EQ(Exported.LearntClauses.size(), S.numLearnts());
  EXPECT_GT(Exported.LearntClauses.size(), 0u);

  auto Reparsed = parseDimacs(writeDimacs(Exported, /*IncludeLearnt=*/true));
  ASSERT_TRUE(Reparsed.has_value());
  EXPECT_EQ(Reparsed->Clauses, Exported.Clauses);
  EXPECT_EQ(Reparsed->LearntClauses, Exported.LearntClauses);

  // The exported problem clauses are the same instance: unsat under {G1}
  // even with the learnt DB loaded as ordinary (implied) clauses.
  SatSolver S2;
  loadCnf(S2, *Reparsed);
  for (const auto &Clause : Reparsed->LearntClauses)
    S2.addClause(Clause);
  EXPECT_EQ(S2.solve(Q1), SatResult::Unsat);
  EXPECT_EQ(S2.solve(), SatResult::Sat);
}

} // namespace
