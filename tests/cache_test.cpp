//===- tests/cache_test.cpp - Semantic memoization layer tests ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests of support/Cache.h and its three clients: ShardedCache semantics
/// (LRU, merge, sharding, stats), concurrent stress under the ThreadPool,
/// the snapshot format (round-trip, corruption and version/width guards),
/// and the BasisCache / SimplifyCache / VerdictCache codecs.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Basis.h"
#include "mba/SimplifyCache.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Cache.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <unistd.h>

using namespace mba;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + "/" + Name;
}

TEST(ShardedCache, InsertLookupMiss) {
  ShardedCache<uint64_t> Cache(1024);
  uint64_t Out = 0;
  EXPECT_FALSE(Cache.lookup(7, Out));
  Cache.insert(7, 49);
  ASSERT_TRUE(Cache.lookup(7, Out));
  EXPECT_EQ(Out, 49u);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Inserts, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_EQ(S.Evictions, 0u);
}

TEST(ShardedCache, OverwriteAndMerge) {
  ShardedCache<uint64_t> Cache(1024);
  Cache.insert(1, 10);
  Cache.insert(1, 20); // plain insert overwrites
  uint64_t Out = 0;
  ASSERT_TRUE(Cache.lookup(1, Out));
  EXPECT_EQ(Out, 20u);

  Cache.insertMerge(1, 5, [](uint64_t &Existing, const uint64_t &New) {
    Existing = std::max(Existing, New);
  });
  ASSERT_TRUE(Cache.lookup(1, Out));
  EXPECT_EQ(Out, 20u); // merge kept the max
  EXPECT_EQ(Cache.stats().Inserts, 1u); // overwrite/merge is not an insert
}

TEST(ShardedCache, LruEvictionSingleShard) {
  // One shard of capacity 8 makes the LRU order directly observable.
  ShardedCache<uint64_t> Cache(8, 1);
  ASSERT_EQ(Cache.numShards(), 1u);
  for (uint64_t K = 0; K != 8; ++K)
    Cache.insert(K, K);

  // Touch key 0 so key 1 is now the LRU entry.
  uint64_t Out = 0;
  ASSERT_TRUE(Cache.lookup(0, Out));
  Cache.insert(100, 100);
  EXPECT_FALSE(Cache.lookup(1, Out)) << "LRU entry should have been evicted";
  EXPECT_TRUE(Cache.lookup(0, Out)) << "recently used entry must survive";
  EXPECT_TRUE(Cache.lookup(100, Out));
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  EXPECT_EQ(Cache.stats().Entries, 8u);
}

TEST(ShardedCache, CapacitySplitsOverShards) {
  ShardedCache<uint64_t> Cache(1 << 10, 16);
  EXPECT_EQ(Cache.numShards(), 16u);
  EXPECT_EQ(Cache.shardCapacity(), (1u << 10) / 16);
}

TEST(ShardedCache, ConcurrentStress) {
  // 8 workers hammer a shared cache with overlapping key ranges; every
  // lookup that hits must return the unique value derived from its key.
  ShardedCache<uint64_t> Cache(1 << 12, 16);
  ThreadPool Pool(8);
  const size_t OpsPerWorker = 20000;
  std::atomic<size_t> BadValues{0};
  Pool.parallelFor(8, [&](size_t, unsigned Worker) {
    uint64_t Rng = 0x9e3779b97f4a7c15ULL * (Worker + 1);
    for (size_t I = 0; I != OpsPerWorker; ++I) {
      Rng = hashMix64(Rng);
      // Key and operation come from disjoint bits — otherwise the key's
      // parity would decide the operation and lookups could never hit.
      uint64_t Key = (Rng >> 8) % 4096;
      if (Rng & 1) {
        Cache.insert(Key, Key * 2 + 1);
      } else {
        uint64_t Out = 0;
        if (Cache.lookup(Key, Out) && Out != Key * 2 + 1)
          ++BadValues;
      }
    }
  });
  EXPECT_EQ(BadValues.load(), 0u);
  CacheStats S = Cache.stats();
  EXPECT_GT(S.Hits, 0u);
  EXPECT_GT(S.Inserts, 0u);
}

TEST(Snapshot, RoundTrip) {
  std::string Path = tempPath("roundtrip.mbacache");
  ShardedCache<uint64_t> Cache(1024);
  for (uint64_t K = 0; K != 100; ++K)
    Cache.insert(K, K * K);
  {
    SnapshotWriter W(Path, 64);
    ASSERT_TRUE(W.ok());
    saveCacheSection(W, "test.section", Cache,
                     [](const uint64_t &V, std::vector<uint8_t> &Out) {
                       putU64(Out, V);
                     });
    ASSERT_TRUE(W.finish());
  }

  SnapshotReader R(Path, 64);
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Name;
  uint64_t Count = 0;
  ASSERT_TRUE(R.nextSection(Name, Count));
  EXPECT_EQ(Name, "test.section");
  EXPECT_EQ(Count, 100u);
  ShardedCache<uint64_t> Loaded(1024);
  size_t N = loadCacheSection(
      R, Count, Loaded,
      [](const std::vector<uint8_t> &Buf) -> std::optional<uint64_t> {
        ByteCursor C(Buf);
        uint64_t V = C.u64();
        if (C.failed() || !C.atEnd())
          return std::nullopt;
        return V;
      });
  EXPECT_EQ(N, 100u);
  EXPECT_FALSE(R.nextSection(Name, Count)) << "clean EOF expected";
  EXPECT_TRUE(R.ok()) << R.error();
  for (uint64_t K = 0; K != 100; ++K) {
    uint64_t Out = 0;
    ASSERT_TRUE(Loaded.lookup(K, Out)) << "missing key " << K;
    EXPECT_EQ(Out, K * K);
  }
}

TEST(Snapshot, RejectsBadMagic) {
  std::string Path = tempPath("badmagic.mbacache");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("this is not a cache snapshot at all........", F);
  std::fclose(F);
  SnapshotReader R(Path, 64);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("bad magic"), std::string::npos) << R.error();
}

TEST(Snapshot, RejectsMissingFile) {
  SnapshotReader R(tempPath("never-written.mbacache"), 64);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("cannot open"), std::string::npos) << R.error();
}

TEST(Snapshot, RejectsWidthMismatch) {
  std::string Path = tempPath("width.mbacache");
  {
    SnapshotWriter W(Path, 64);
    ASSERT_TRUE(W.finish());
  }
  SnapshotReader R(Path, 8);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("width"), std::string::npos) << R.error();
}

TEST(Snapshot, RejectsVersionMismatch) {
  std::string Path = tempPath("version.mbacache");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fwrite(SnapshotMagic, 1, sizeof(SnapshotMagic), F);
  uint32_t FutureVersion = SnapshotVersion + 41, Width = 64;
  std::fwrite(&FutureVersion, 4, 1, F); // host-endian == little on x86/arm64
  std::fwrite(&Width, 4, 1, F);
  std::fclose(F);
  SnapshotReader R(Path, 64);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("version"), std::string::npos) << R.error();
}

TEST(Snapshot, RejectsTruncation) {
  std::string Path = tempPath("trunc.mbacache");
  ShardedCache<uint64_t> Cache(64);
  for (uint64_t K = 0; K != 32; ++K)
    Cache.insert(K, K);
  {
    SnapshotWriter W(Path, 64);
    saveCacheSection(W, "test.section", Cache,
                     [](const uint64_t &V, std::vector<uint8_t> &Out) {
                       putU64(Out, V);
                     });
    ASSERT_TRUE(W.finish());
  }
  // Chop the tail off: entries past the cut must read as corruption, not
  // as a clean EOF.
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fclose(F);
  ASSERT_GT(Size, 40);
  ASSERT_EQ(truncate(Path.c_str(), Size - 9), 0);

  SnapshotReader R(Path, 64);
  ASSERT_TRUE(R.ok());
  std::string Name;
  uint64_t Count = 0;
  ASSERT_TRUE(R.nextSection(Name, Count));
  uint64_t Key = 0;
  std::vector<uint8_t> Payload;
  size_t Read = 0;
  while (R.entry(Key, Payload))
    ++Read;
  EXPECT_LT(Read, Count);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.error().find("corrupted"), std::string::npos) << R.error();
}

TEST(BasisCacheTest, RawSolveMatchesSolveBasis) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  std::vector<uint64_t> Sig = {0, 1, 1, 2, 3, 4, 5, 6};
  for (BasisKind Kind : {BasisKind::Conjunction, BasisKind::Disjunction}) {
    LinearCombo Direct = solveBasis(Ctx, Kind, Sig, Vars);
    BasisSolution Raw = solveBasisRaw(Kind, Sig, 3, Ctx.mask());
    LinearCombo Rebuilt = comboFromSolution(Ctx, Raw, Vars);
    EXPECT_EQ(Direct.Constant, Rebuilt.Constant);
    ASSERT_EQ(Direct.Terms.size(), Rebuilt.Terms.size());
    for (size_t I = 0; I != Direct.Terms.size(); ++I) {
      EXPECT_EQ(Direct.Terms[I].first, Rebuilt.Terms[I].first);
      EXPECT_EQ(Direct.Terms[I].second, Rebuilt.Terms[I].second)
          << "basis expressions must be interned identically";
    }
  }
}

TEST(BasisCacheTest, SnapshotRoundTrip) {
  std::string Path = tempPath("basis.mbacache");
  BasisCache Cache;
  std::vector<uint64_t> Sig = {0, 1, 1, 2};
  BasisSolution S = solveBasisRaw(BasisKind::Conjunction, Sig, 2, ~0ULL);
  Cache.insert(1234, S);
  {
    SnapshotWriter W(Path, 64);
    Cache.save(W);
    ASSERT_TRUE(W.finish());
  }
  SnapshotReader R(Path, 64);
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Name;
  uint64_t Count = 0;
  ASSERT_TRUE(R.nextSection(Name, Count));
  EXPECT_EQ(Name, BasisCache::SectionName);
  BasisCache Loaded;
  EXPECT_EQ(Loaded.loadSection(R, Count), 1u);
  BasisSolution Out;
  ASSERT_TRUE(Loaded.lookup(1234, Out));
  EXPECT_EQ(Out.Kind, S.Kind);
  EXPECT_EQ(Out.Constant, S.Constant);
  EXPECT_EQ(Out.Terms, S.Terms);
}

TEST(SimplifyCacheTest, LookupClonesIntoCallerContext) {
  SimplifyCache Cache(64);
  Context A(64);
  const Expr *E = parseOrDie(A, "x + 2*(x&y)");
  Cache.insertResult(99, E);

  Context B(64);
  const Expr *Out = Cache.lookupResult(99, B);
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(printExpr(B, Out), printExpr(A, E));
  EXPECT_EQ(Cache.lookupResult(98, B), nullptr);
}

TEST(SimplifyCacheTest, SnapshotRoundTrip) {
  std::string Path = tempPath("simplify.mbacache");
  {
    SimplifyCache Cache(64);
    Context Ctx(64);
    Cache.insertResult(1, parseOrDie(Ctx, "x ^ y"));
    Cache.insertLinear(2, parseOrDie(Ctx, "x + y - 2*(x&y)"));
    SnapshotWriter W(Path, 64);
    Cache.save(W);
    ASSERT_TRUE(W.finish());
  }
  SimplifyCache Loaded(64);
  SnapshotReader R(Path, 64);
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Name;
  uint64_t Count = 0;
  while (R.nextSection(Name, Count))
    EXPECT_TRUE(Loaded.loadSection(R, Name, Count));
  EXPECT_TRUE(R.ok()) << R.error();

  Context Ctx(64);
  const Expr *Result = Loaded.lookupResult(1, Ctx);
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(printExpr(Ctx, Result), "x^y");
  const Expr *Lin = Loaded.lookupLinear(2, Ctx);
  ASSERT_NE(Lin, nullptr);
  EXPECT_EQ(printExpr(Ctx, Lin), printExpr(Ctx, parseOrDie(Ctx, "x+y-2*(x&y)")));
}

TEST(VerdictCacheTest, MergeKeepsDecidedOverUnknown) {
  VerdictCache Cache;
  Cache.insert(5, {VerdictEntry::Unknown, 0.5});
  VerdictEntry Out;
  ASSERT_TRUE(Cache.lookup(5, Out));
  EXPECT_EQ(Out.Outcome, VerdictEntry::Unknown);

  // A larger exhausted budget widens the Unknown entry...
  Cache.insert(5, {VerdictEntry::Unknown, 2.0});
  ASSERT_TRUE(Cache.lookup(5, Out));
  EXPECT_DOUBLE_EQ(Out.BudgetSeconds, 2.0);
  // ...a smaller one does not shrink it...
  Cache.insert(5, {VerdictEntry::Unknown, 0.1});
  ASSERT_TRUE(Cache.lookup(5, Out));
  EXPECT_DOUBLE_EQ(Out.BudgetSeconds, 2.0);
  // ...and a decided verdict replaces it and then sticks.
  Cache.insert(5, {VerdictEntry::Equivalent, 0});
  Cache.insert(5, {VerdictEntry::Unknown, 9.0});
  ASSERT_TRUE(Cache.lookup(5, Out));
  EXPECT_EQ(Out.Outcome, VerdictEntry::Equivalent);
}

TEST(VerdictCacheTest, QueryKeyDistinguishesOperandsAndBackend) {
  Context Ctx(64);
  const Expr *A = parseOrDie(Ctx, "x + y");
  const Expr *B = parseOrDie(Ctx, "x ^ y");
  uint64_t K1 = VerdictCache::queryKey(Ctx, A, B, "Z3");
  EXPECT_NE(K1, VerdictCache::queryKey(Ctx, B, A, "Z3"));
  EXPECT_NE(K1, VerdictCache::queryKey(Ctx, A, B, "BlastBV"));
  EXPECT_EQ(K1, VerdictCache::queryKey(Ctx, A, B, "Z3"));
}

TEST(VerdictCacheTest, SnapshotRoundTrip) {
  std::string Path = tempPath("verdicts.mbacache");
  VerdictCache Cache;
  Cache.insert(1, {VerdictEntry::Equivalent, 0});
  Cache.insert(2, {VerdictEntry::NotEquivalent, 0});
  Cache.insert(3, {VerdictEntry::Unknown, 1.5});
  {
    SnapshotWriter W(Path, 64);
    Cache.save(W);
    ASSERT_TRUE(W.finish());
  }
  VerdictCache Loaded;
  SnapshotReader R(Path, 64);
  ASSERT_TRUE(R.ok()) << R.error();
  std::string Name;
  uint64_t Count = 0;
  ASSERT_TRUE(R.nextSection(Name, Count));
  EXPECT_EQ(Name, VerdictCache::SectionName);
  EXPECT_EQ(Loaded.loadSection(R, Count), 3u);
  VerdictEntry Out;
  ASSERT_TRUE(Loaded.lookup(1, Out));
  EXPECT_EQ(Out.Outcome, VerdictEntry::Equivalent);
  ASSERT_TRUE(Loaded.lookup(3, Out));
  EXPECT_EQ(Out.Outcome, VerdictEntry::Unknown);
  EXPECT_NEAR(Out.BudgetSeconds, 1.5, 1e-6);
}

TEST(ExprFingerprintTest, StableAcrossContextsAndOrderSensitive) {
  Context A(64), B(64);
  // Force different interning orders so pointer values cannot agree.
  parseOrDie(B, "q*r - 17");
  uint64_t FA = exprFingerprint(parseOrDie(A, "x - y"));
  uint64_t FB = exprFingerprint(parseOrDie(B, "x - y"));
  EXPECT_EQ(FA, FB) << "fingerprint must be context-independent";
  EXPECT_NE(FA, exprFingerprint(parseOrDie(A, "y - x")))
      << "operand order must be distinguished";
  EXPECT_NE(exprFingerprint(parseOrDie(A, "x & y")),
            exprFingerprint(parseOrDie(A, "x | y")));
}

} // namespace
