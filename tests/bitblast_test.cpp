//===- tests/bitblast_test.cpp - Bit-blasting circuit tests ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bitblast/BitBlaster.h"
#include "bitblast/ExprBlaster.h"

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;
using namespace mba::sat;

namespace {

/// Reads the model value of a word as an integer.
uint64_t wordValue(const SatSolver &S, const BitBlaster &B,
                   const BitBlaster::Word &W) {
  uint64_t V = 0;
  for (unsigned I = 0; I != W.size(); ++I) {
    Lit L = W[I];
    bool Bit;
    if (L == B.trueLit())
      Bit = true;
    else if (L == ~B.trueLit())
      Bit = false;
    else
      Bit = S.modelValue(L.var()) != L.negated();
    if (Bit)
      V |= 1ULL << I;
  }
  return V;
}

/// Asserts that a circuit output equals a constant and checks SAT-model
/// consistency: Op(a, b) forced to equal Expected for concrete a, b.
class CircuitParamTest
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(CircuitParamTest, ArithmeticMatchesReference) {
  auto [Width, Rewriting] = GetParam();
  RNG Rng(500 + Width + (Rewriting ? 1 : 0));
  uint64_t Mask = Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
  for (int Trial = 0; Trial < 12; ++Trial) {
    uint64_t AVal = Rng.next() & Mask;
    uint64_t BVal = Rng.next() & Mask;
    SatSolver S;
    BitBlaster B(S, Width, Rewriting);
    auto A = B.constWord(AVal);
    auto BB = B.constWord(BVal);

    struct OpCase {
      BitBlaster::Word W;
      uint64_t Expected;
    };
    std::vector<OpCase> Cases = {
        {B.bvAdd(A, BB), (AVal + BVal) & Mask},
        {B.bvSub(A, BB), (AVal - BVal) & Mask},
        {B.bvMul(A, BB), (AVal * BVal) & Mask},
        {B.bvAnd(A, BB), AVal & BVal},
        {B.bvOr(A, BB), AVal | BVal},
        {B.bvXor(A, BB), AVal ^ BVal},
        {B.bvNot(A), ~AVal & Mask},
        {B.bvNeg(A), (0 - AVal) & Mask},
    };
    ASSERT_EQ(S.solve(), SatResult::Sat);
    for (auto &C : Cases)
      ASSERT_EQ(wordValue(S, B, C.W), C.Expected)
          << "width " << Width << " rewriting " << Rewriting;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndConfigs, CircuitParamTest,
    ::testing::Combine(::testing::Values(1u, 4u, 8u, 16u, 32u, 64u),
                       ::testing::Bool()));

TEST(BitBlasterTest, RewritingFoldsConstantGates) {
  SatSolver S;
  BitBlaster B(S, 8, /*EnableRewriting=*/true);
  Lit T = B.trueLit(), F = B.falseLit();
  EXPECT_EQ(B.mkAnd(T, T), T);
  EXPECT_EQ(B.mkAnd(T, F), F);
  EXPECT_EQ(B.mkXor(T, T), F);
  EXPECT_EQ(B.mkXor(T, F), T);
  Lit X(S.newVar(), false);
  EXPECT_EQ(B.mkAnd(X, X), X);
  EXPECT_EQ(B.mkAnd(X, ~X), F);
  EXPECT_EQ(B.mkXor(X, X), F);
  EXPECT_EQ(B.mkXor(X, ~X), T);
  EXPECT_EQ(B.numGates(), 0u); // everything folded
}

TEST(BitBlasterTest, StructuralHashingSharesGates) {
  SatSolver S;
  BitBlaster B(S, 8, /*EnableRewriting=*/true);
  Lit X(S.newVar(), false), Y(S.newVar(), false);
  Lit G1 = B.mkAnd(X, Y);
  Lit G2 = B.mkAnd(Y, X); // commuted: must hit the cache
  EXPECT_EQ(G1, G2);
  EXPECT_EQ(B.numGates(), 1u);
  // xor negation normalization: xor(~x, y) == ~xor(x, y).
  Lit X1 = B.mkXor(X, Y);
  Lit X2 = B.mkXor(~X, Y);
  EXPECT_EQ(X2, ~X1);
}

TEST(BitBlasterTest, PlainModeCreatesFreshGates) {
  SatSolver S;
  BitBlaster B(S, 8, /*EnableRewriting=*/false);
  Lit X(S.newVar(), false), Y(S.newVar(), false);
  Lit G1 = B.mkAnd(X, Y);
  Lit G2 = B.mkAnd(X, Y);
  EXPECT_NE(G1, G2);
  EXPECT_EQ(B.numGates(), 2u);
}

TEST(ExprBlasterTest, CircuitAgreesWithEvaluator) {
  // Blast an expression, force the inputs to concrete values with unit
  // clauses, and compare the circuit output with the interpreter.
  Context Ctx(16);
  RNG Rng(808);
  const char *Samples[] = {
      "x + y",
      "x * y - (x & y)",
      "~(x - 1)",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
      "2*(x|y) - (~x&y) - (x&~y)",
      "-x ^ (y | 3)",
  };
  for (const char *Text : Samples) {
    const Expr *E = parseOrDie(Ctx, Text);
    for (int Trial = 0; Trial < 6; ++Trial) {
      uint64_t XV = Rng.next() & Ctx.mask(), YV = Rng.next() & Ctx.mask();
      SatSolver S;
      BitBlaster B(S, Ctx.width(), true);
      ExprBlaster EB(B);
      auto Out = EB.blast(E);
      // Pin the inputs.
      auto Pin = [&](const Expr *V, uint64_t Value) {
        const auto &W = EB.inputWord(V);
        for (unsigned I = 0; I != W.size(); ++I)
          B.assertLit((Value >> I & 1) ? W[I] : ~W[I]);
      };
      Pin(Ctx.getVar("x"), XV);
      Pin(Ctx.getVar("y"), YV);
      ASSERT_EQ(S.solve(), SatResult::Sat) << Text;
      uint64_t Vals[] = {XV, YV};
      ASSERT_EQ(wordValue(S, B, Out), evaluate(Ctx, E, Vals)) << Text;
    }
  }
}

TEST(ExprBlasterTest, EquivalenceRefutationUnsat) {
  // (x&~y) + y == x|y: asserting disequality must be UNSAT.
  Context Ctx(8);
  SatSolver S;
  BitBlaster B(S, 8, true);
  ExprBlaster EB(B);
  auto L = EB.blast(parseOrDie(Ctx, "(x&~y) + y"));
  auto R = EB.blast(parseOrDie(Ctx, "x|y"));
  B.assertLit(B.disequal(L, R));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(ExprBlasterTest, NonEquivalenceFindsWitness) {
  // x + y != x | y somewhere (e.g. x = y = 1): SAT with a valid witness.
  Context Ctx(8);
  SatSolver S;
  BitBlaster B(S, 8, true);
  ExprBlaster EB(B);
  const Expr *EL = parseOrDie(Ctx, "x + y");
  const Expr *ER = parseOrDie(Ctx, "x | y");
  auto L = EB.blast(EL);
  auto R = EB.blast(ER);
  B.assertLit(B.disequal(L, R));
  ASSERT_EQ(S.solve(), SatResult::Sat);
  uint64_t XV = wordValue(S, B, EB.inputWord(Ctx.getVar("x")));
  uint64_t YV = wordValue(S, B, EB.inputWord(Ctx.getVar("y")));
  uint64_t Vals[] = {XV, YV};
  EXPECT_NE(evaluate(Ctx, EL, Vals), evaluate(Ctx, ER, Vals));
}

TEST(ExprBlasterTest, SharedSubDagBlastedOnce) {
  Context Ctx(8);
  SatSolver S;
  BitBlaster B(S, 8, false);
  ExprBlaster EB(B);
  const Expr *Shared = parseOrDie(Ctx, "x*y");
  const Expr *E = Ctx.getAdd(Shared, Shared);
  EB.blast(E);
  uint64_t GatesOnce = B.numGates();
  SatSolver S2;
  BitBlaster B2(S2, 8, false);
  ExprBlaster EB2(B2);
  EB2.blast(Shared);
  uint64_t GatesShared = B2.numGates();
  // The sum costs one adder more than the product alone — not two products.
  EXPECT_LT(GatesOnce, 2 * GatesShared);
}

} // namespace
