//===- tests/simplifier_test.cpp - MBASolver simplification tests --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Simplifier.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/SimplifyCache.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

/// Checks semantic equivalence on random and corner inputs (up to 4 vars).
void expectEquivalent(const Context &Ctx, const Expr *A, const Expr *B,
                      uint64_t Seed = 1234) {
  RNG Rng(Seed);
  auto Vars = collectVariables(A);
  for (const Expr *V : collectVariables(B)) {
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  }
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<uint64_t> Vals(MaxIndex + 1);
  // Random samples.
  for (int I = 0; I < 300; ++I) {
    for (auto &V : Vals)
      V = Rng.next();
    ASSERT_EQ(evaluate(Ctx, A, Vals), evaluate(Ctx, B, Vals))
        << printExpr(Ctx, A) << "  vs  " << printExpr(Ctx, B);
  }
  // All corners (each variable 0 or -1) — the inputs signatures live on.
  unsigned T = (unsigned)Vars.size();
  if (T <= 6) {
    for (unsigned K = 0; K != (1u << T); ++K) {
      std::fill(Vals.begin(), Vals.end(), 0);
      for (unsigned I = 0; I != T; ++I)
        if (K >> I & 1)
          Vals[Vars[I]->varIndex()] = Ctx.mask();
      ASSERT_EQ(evaluate(Ctx, A, Vals), evaluate(Ctx, B, Vals))
          << printExpr(Ctx, A) << "  vs  " << printExpr(Ctx, B);
    }
  }
}

//===----------------------------------------------------------------------===//
// Linear MBA
//===----------------------------------------------------------------------===//

TEST(SimplifyLinear, PaperSection43Headline) {
  // 2(x|y) - (~x&y) - (x&~y)  ==>  x + y.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  const Expr *R = Solver.simplify(E);
  EXPECT_EQ(printExpr(Ctx, R), "x+y");
}

TEST(SimplifyLinear, PaperExample1Identity) {
  // x - y == (x^y) + 2*(x|~y) + 2: the right side must simplify to x - y.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "(x^y) + 2*(x|~y) + 2");
  const Expr *R = Solver.simplify(E);
  EXPECT_EQ(printExpr(Ctx, R), "x-y");
}

TEST(SimplifyLinear, ClassicAdditionEncodings) {
  // All four x+y obfuscations from Section 2.2 normalize to x + y.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const char *Encodings[] = {
      "(x|y) + (~x|y) - ~x",
      "(x|y) + y - (~x&y)",
      "(x^y) + 2*y - 2*(~x&y)",
      "y + (x&~y) + (x&y)",
  };
  for (const char *S : Encodings) {
    const Expr *R = Solver.simplify(parseOrDie(Ctx, S));
    EXPECT_EQ(printExpr(Ctx, R), "x+y") << S;
  }
}

TEST(SimplifyLinear, FinalOptRecoversSingleBitwiseOps) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  struct Case {
    const char *In, *Out;
  } Cases[] = {
      {"x + y - 2*(x&y)", "x^y"},            // Section 4.5's example
      {"(x&~y) + y", "x|y"},                 // HAKMEM equation (2)
      {"(x|y) - (x&y)", "x^y"},              // HAKMEM equation (3)
      {"-x - 1", "~x"},                      // two's complement
      {"x + y - (x&y)", "x|y"},
  };
  for (auto &C : Cases) {
    const Expr *R = Solver.simplify(parseOrDie(Ctx, C.In));
    EXPECT_EQ(printExpr(Ctx, R), C.Out) << C.In;
    expectEquivalent(Ctx, parseOrDie(Ctx, C.In), R);
  }
}

TEST(SimplifyLinear, ConstantExpressions) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "3*5 - 15"))), "0");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "~0 + 1"))), "0");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "x - x"))), "0");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "x ^ x"))), "0");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "x | ~x"))), "-1");
}

TEST(SimplifyLinear, ThreeAndFourVariables) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  // x + y + z written through pairwise encodings.
  const Expr *E = parseOrDie(Ctx, "(x|y) + (x&y) + (y|z) + (y&z) - y - y + w - w");
  const Expr *R = Solver.simplify(E);
  expectEquivalent(Ctx, E, R);
  ComplexityMetrics M = measureComplexity(Ctx, R);
  EXPECT_EQ(M.Alternation, 0u) << printExpr(Ctx, R);
}

TEST(SimplifyLinear, NarrowWidths) {
  for (unsigned W : {4u, 8u, 16u, 32u}) {
    Context Ctx(W);
    MBASolver Solver(Ctx);
    const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
    const Expr *R = Solver.simplify(E);
    EXPECT_EQ(printExpr(Ctx, R), "x+y") << "width " << W;
  }
}

TEST(SimplifyLinear, LookupCacheHits) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  Solver.simplify(E);
  size_t MissesAfterFirst = Solver.stats().CacheMisses;
  // Same signature again (different syntax, same semantics & variables).
  Solver.simplify(parseOrDie(Ctx, "(~x&y) + (x&~y) + 2*(x&y)"));
  EXPECT_EQ(Solver.stats().CacheMisses, MissesAfterFirst);
  EXPECT_GT(Solver.stats().CacheHits, 0u);
}

//===----------------------------------------------------------------------===//
// Polynomial MBA
//===----------------------------------------------------------------------===//

TEST(SimplifyPoly, Figure1Expression) {
  // (x&~y)*(~x&y) + (x&y)*(x|y)  ==>  x*y — the motivating example that
  // stalls Z3 for an hour in raw form.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  const Expr *R = Solver.simplify(E);
  EXPECT_EQ(printExpr(Ctx, R), "x*y");
}

TEST(SimplifyPoly, ProductsOfLinearEncodings) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  // ((x|y)+(x&y)) * ((x|y)+(x&y)) == (x+y)^2 -> expanded normal form.
  const Expr *E = parseOrDie(Ctx, "((x|y)+(x&y)) * ((x|y)+(x&y))");
  const Expr *R = Solver.simplify(E);
  expectEquivalent(Ctx, E, R);
  const Expr *Expected = parseOrDie(Ctx, "(x+y)*(x+y)");
  expectEquivalent(Ctx, R, Expected);
  // No bitwise operators should remain.
  EXPECT_EQ(mbaAlternation(R), 0u) << printExpr(Ctx, R);
}

TEST(SimplifyPoly, AlternationDropsOnRandomPolyMBA) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const char *Samples[] = {
      "(x&y)*(x|y) + (x&~y)*(~x&y)",
      "2*(x&y)*(x^y) + (x^y)*(x^y)",
      "(x|y)*(x|y) - 2*(x|y)*(x&y) + (x&y)*(x&y)",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    const Expr *R = Solver.simplify(E);
    expectEquivalent(Ctx, E, R);
    EXPECT_LE(mbaAlternation(R), mbaAlternation(E)) << S;
  }
}

//===----------------------------------------------------------------------===//
// Non-polynomial MBA
//===----------------------------------------------------------------------===//

TEST(SimplifyNonPoly, PaperSection45CommonSubexpression) {
  // ((x&~y - ~x&y)|z) + ((x&~y - ~x&y)&z)  ==>  x - y + z.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)");
  const Expr *R = Solver.simplify(E);
  EXPECT_EQ(printExpr(Ctx, R), "x-y+z");
}

TEST(SimplifyNonPoly, NotOfXMinus1) {
  // ~(x-1) == -x: the case the paper's prototype misses; the temp-variable
  // abstraction handles it (~t has signature (1,0) -> -t - 1).
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "~(x-1)");
  const Expr *R = Solver.simplify(E);
  EXPECT_EQ(printExpr(Ctx, R), "-x");
}

TEST(SimplifyNonPoly, MixedDepths) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const char *Samples[] = {
      "((x+y)|z) + ((x+y)&z)",            // -> x + y + z
      "~((x|y) + (x&y)) + 1",             // -> -(x+y) = -x-y
      "(((x^y)+2*(x&y))|w) + (((x^y)+2*(x&y))&w)", // -> x + y + w
  };
  // Variables appear in name-sorted order in normalized output.
  const char *Expected[] = {"x+y+z", "-x-y", "w+x+y"};
  for (int I = 0; I < 3; ++I) {
    const Expr *E = parseOrDie(Ctx, Samples[I]);
    const Expr *R = Solver.simplify(E);
    expectEquivalent(Ctx, E, R);
    EXPECT_EQ(printExpr(Ctx, R), Expected[I]) << Samples[I];
  }
}

TEST(SimplifyNonPoly, ComplementOperandsShareOneTemporary) {
  // -x-y-1 is ~(x+y): abstraction must model the pair as t and ~t, so the
  // tautology (t|~t) + (t&~t) collapses to -1 + 0.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E =
      parseOrDie(Ctx, "((x+y) | (-x-y-1)) + ((x+y) & (-x-y-1))");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(E)), "-1");
  // And with the operands swapped / duplicated.
  const Expr *F =
      parseOrDie(Ctx, "((-x-y-1) ^ (x+y)) - ((x+y) | (-x-y-1))");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(F)), "0");
}

TEST(SimplifyNonPoly, ConstantMaskStaysSound) {
  // x & 3 cannot be normalized (3 is not a truth-table column), but the
  // simplifier must stay sound and not crash.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "(x&3) + (x&3)");
  const Expr *R = Solver.simplify(E);
  expectEquivalent(Ctx, E, R);
}

TEST(SimplifyNonPoly, NoTempVariablesLeak) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "((x-y)|z) + ((x-y)&z)");
  const Expr *R = Solver.simplify(E);
  for (const Expr *V : collectVariables(R))
    EXPECT_NE(V->varName()[0], '_') << printExpr(Ctx, R);
}

//===----------------------------------------------------------------------===//
// Options and ablations
//===----------------------------------------------------------------------===//

TEST(SimplifyOptionsTest, DisjunctionBasisIsEquivalent) {
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.Basis = BasisKind::Disjunction;
  MBASolver Solver(Ctx, Opts);
  const char *Samples[] = {
      "2*(x|y) - (~x&y) - (x&~y)",
      "(x^y) + 2*(x|~y) + 2",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    const Expr *R = Solver.simplify(E);
    expectEquivalent(Ctx, E, R);
    EXPECT_LE(mbaAlternation(R), mbaAlternation(E)) << S;
  }
}

TEST(SimplifyOptionsTest, AutoBasisIsSoundAndAtLeastAsCompact) {
  Context Ctx(64);
  SimplifyOptions Fixed, Auto;
  Auto.AutoBasis = true;
  MBASolver FixedSolver(Ctx, Fixed), AutoSolver(Ctx, Auto);
  const char *Samples[] = {
      "2*(x|y) - (~x&y) - (x&~y)",
      "(x^y) + 2*(x|~y) + 2",
      "x + y - (x&y)",              // a disjunction-friendly signature
      "((x-y)|z) + ((x-y)&z)",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    const Expr *RF = FixedSolver.simplify(E);
    const Expr *RA = AutoSolver.simplify(E);
    expectEquivalent(Ctx, E, RA);
    // Auto selection never picks a combination with more terms, so the
    // result is never longer than the fixed-conjunction one by more than
    // formatting noise.
    EXPECT_LE(printExpr(Ctx, RA).size(), printExpr(Ctx, RF).size() + 4) << S;
  }
}

TEST(SimplifyOptionsTest, CSEDisabledStillSound) {
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.EnableCSE = false;
  MBASolver Solver(Ctx, Opts);
  const Expr *E = parseOrDie(Ctx, "((x-y)|z) + ((x-y)&z)");
  const Expr *R = Solver.simplify(E);
  expectEquivalent(Ctx, E, R);
}

TEST(SimplifyOptionsTest, FinalOptDisabledKeepsNormalizedForm) {
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.EnableFinalOpt = false;
  MBASolver Solver(Ctx, Opts);
  const Expr *R = Solver.simplify(parseOrDie(Ctx, "(x|y) - (x&y)"));
  // Normalized conjunction form, not the x^y final form.
  EXPECT_EQ(printExpr(Ctx, R), "x+y-2*(x&y)");
}

TEST(SimplifyOptionsTest, StatsAccumulate) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  Solver.simplify(parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)"));
  EXPECT_GT(Solver.stats().LinearRuns, 0u);
  EXPECT_GT(Solver.stats().Seconds, 0.0);
  Solver.resetStats();
  EXPECT_EQ(Solver.stats().LinearRuns, 0u);
}

//===----------------------------------------------------------------------===//
// Idempotence and robustness
//===----------------------------------------------------------------------===//

TEST(SimplifyRobustness, SimplifyIsIdempotent) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const char *Samples[] = {
      "2*(x|y) - (~x&y) - (x&~y)",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
      "((x-y)|z) + ((x-y)&z)",
      "x + y",
      "x*y",
      "~(x-1)",
  };
  for (const char *S : Samples) {
    const Expr *R1 = Solver.simplify(parseOrDie(Ctx, S));
    const Expr *R2 = Solver.simplify(R1);
    EXPECT_EQ(printExpr(Ctx, R1), printExpr(Ctx, R2)) << S;
  }
}

TEST(SimplifyRobustness, LeavesAreUntouched) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *X = Ctx.getVar("x");
  EXPECT_EQ(Solver.simplify(X), X);
  const Expr *C = Ctx.getConst(7);
  EXPECT_EQ(Solver.simplify(C), C);
}

TEST(SimplifyRobustness, ManyVariablesFallBackGracefully) {
  // 12 variables exceed the signature budget; the polynomial path must
  // still produce an equivalent result.
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.MaxSignatureVars = 8;
  MBASolver Solver(Ctx, Opts);
  std::string Text;
  for (int I = 0; I < 12; ++I) {
    if (I)
      Text += " + ";
    std::string V = "v" + std::to_string(I);
    std::string W = "v" + std::to_string((I + 1) % 12);
    Text += "(" + V + "|" + W + ") + (" + V + "&" + W + ") - " + W;
  }
  const Expr *E = parseOrDie(Ctx, Text);
  const Expr *R = Solver.simplify(E);
  expectEquivalent(Ctx, E, R);
  EXPECT_LE(mbaAlternation(R), mbaAlternation(E));
}

TEST(SimplifyRobustness, RandomLinearFuzz) {
  // Random linear MBA over random bitwise terms: result must be equivalent
  // and alternation must not increase.
  Context Ctx(32);
  MBASolver Solver(Ctx);
  RNG Rng(2024);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y"), *Z = Ctx.getVar("z");
  std::vector<const Expr *> Pool = {
      X, Y, Z,
      Ctx.getAnd(X, Y), Ctx.getOr(Y, Z), Ctx.getXor(X, Z),
      Ctx.getNot(Ctx.getAnd(X, Z)), Ctx.getAnd(Ctx.getNot(X), Y),
      Ctx.getOr(X, Ctx.getNot(Z))};
  for (int Trial = 0; Trial < 40; ++Trial) {
    const Expr *E = Ctx.getConst(Rng.below(16));
    for (int T = 0; T < 6; ++T) {
      const Expr *Term = Ctx.getMul(Ctx.getConst(1 + Rng.below(9)),
                                    Pool[Rng.below(Pool.size())]);
      E = Rng.chance(1, 2) ? Ctx.getAdd(E, Term) : Ctx.getSub(E, Term);
    }
    const Expr *R = Solver.simplify(E);
    expectEquivalent(Ctx, E, R, Rng.next());
    EXPECT_LE(mbaAlternation(R), mbaAlternation(E));
  }
}

TEST(SharedCacheTest, CachedRunsAreBitIdentical) {
  // The memoization contract: attaching the shared caches never changes
  // output, not even its printed form — cold pass, warm pass and uncached
  // run all agree character for character.
  const char *Inputs[] = {
      "2*(x|y) - (~x&y) - (x&~y) + 4*(x^y) - 3*(x&y)",
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
      "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
      "x + y - 2*(x&y)",
      "(x^y) + 2*(x&y)",
      "2*(x|y) - (~x&y) - (x&~y) + 4*(x^y) - 3*(x&y)", // repeat: result hit
  };
  std::vector<std::string> Expected;
  {
    Context Ctx(64);
    MBASolver Solver(Ctx);
    for (const char *S : Inputs)
      Expected.push_back(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, S))));
  }

  SimplifyCache Shared(64);
  BasisCache Basis;
  SimplifyOptions Opts;
  Opts.SharedCache = &Shared;
  Opts.SharedBasisCache = &Basis;
  for (int Round = 0; Round != 2; ++Round) {
    Context Ctx(64); // fresh context per round: hits must clone correctly
    MBASolver Solver(Ctx, Opts);
    for (size_t I = 0; I != std::size(Inputs); ++I)
      EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, Inputs[I]))),
                Expected[I])
          << "round " << Round << ", input " << Inputs[I];
  }
  EXPECT_GT(Shared.resultStats().Hits, 0u) << "warm round must hit";
  EXPECT_GT(Shared.resultStats().Inserts, 0u);
}

TEST(SharedCacheTest, DisabledCacheOptionBypassesSharedCaches) {
  SimplifyCache Shared(64);
  BasisCache Basis;
  SimplifyOptions Opts;
  Opts.SharedCache = &Shared;
  Opts.SharedBasisCache = &Basis;
  Opts.EnableCache = false;
  Context Ctx(64);
  MBASolver Solver(Ctx, Opts);
  Solver.simplify(parseOrDie(Ctx, "x + y - 2*(x&y)"));
  EXPECT_EQ(Shared.resultStats().Hits + Shared.resultStats().Misses, 0u);
  EXPECT_EQ(Basis.stats().Hits + Basis.stats().Misses, 0u);
}

} // namespace
