//===- tests/bitslice_test.cpp - Bitsliced kernel and evaluator tests -----===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Pins the transposed (bitsliced) evaluation path to the scalar evaluator:
/// word kernels against per-lane arithmetic, the transpose against a naive
/// bit-by-bit version, and BitslicedExpr against evaluate() over random DAGs
/// at odd widths and lane counts that are not multiples of 64.
///
//===----------------------------------------------------------------------===//

#include "ast/BitslicedEval.h"
#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "mba/Signature.h"
#include "support/Bitslice.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

using namespace mba;
namespace bs = mba::bitslice;

namespace {

uint64_t maskOf(unsigned Width) {
  return Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
}

//===----------------------------------------------------------------------===//
// Word kernels
//===----------------------------------------------------------------------===//

TEST(Bitslice, TransposeMatchesNaive) {
  RNG Rng(1);
  std::array<uint64_t, 64> M, Ref;
  for (uint64_t &W : M)
    W = Rng.next();
  for (unsigned I = 0; I != 64; ++I) {
    Ref[I] = 0;
    for (unsigned J = 0; J != 64; ++J)
      Ref[I] |= ((M[J] >> I) & 1) << J;
  }
  bs::transpose64(M.data());
  EXPECT_EQ(M, Ref);
  // Involution: transposing twice restores the original.
  std::array<uint64_t, 64> Twice = M;
  bs::transpose64(Twice.data());
  bs::transpose64(Twice.data());
  EXPECT_EQ(Twice, M);
}

TEST(Bitslice, LaneSliceRoundTrip) {
  RNG Rng(2);
  for (unsigned Width : {1u, 7u, 32u, 64u}) {
    for (unsigned NumLanes : {1u, 13u, 64u}) {
      std::vector<uint64_t> Lanes(NumLanes);
      for (uint64_t &L : Lanes)
        L = Rng.next() & maskOf(Width);
      std::vector<uint64_t> Slices(Width);
      bs::lanesToSlices(Lanes.data(), NumLanes, Width, Slices.data());
      // Slice b, bit j must be bit b of lane j.
      for (unsigned B = 0; B != Width; ++B)
        for (unsigned J = 0; J != NumLanes; ++J)
          EXPECT_EQ((Slices[B] >> J) & 1, (Lanes[J] >> B) & 1);
      std::vector<uint64_t> Back(NumLanes);
      bs::slicesToLanes(Slices.data(), Width, NumLanes, Back.data());
      EXPECT_EQ(Back, Lanes) << "width " << Width << " lanes " << NumLanes;
    }
  }
}

TEST(Bitslice, ArithmeticKernelsMatchScalar) {
  RNG Rng(3);
  for (unsigned Width : {1u, 2u, 7u, 8u, 16u, 17u, 31u, 33u, 64u}) {
    const uint64_t Mask = maskOf(Width);
    std::vector<uint64_t> A(64), B(64);
    for (unsigned I = 0; I != 64; ++I) {
      A[I] = Rng.next() & Mask;
      B[I] = Rng.next() & Mask;
    }
    std::vector<uint64_t> SA(Width), SB(Width), SOut(Width), Lanes(64);
    bs::lanesToSlices(A.data(), 64, Width, SA.data());
    bs::lanesToSlices(B.data(), 64, Width, SB.data());

    auto check = [&](const char *Name, auto Scalar) {
      bs::slicesToLanes(SOut.data(), Width, 64, Lanes.data());
      for (unsigned I = 0; I != 64; ++I)
        ASSERT_EQ(Lanes[I], Scalar(A[I], B[I]) & Mask)
            << Name << " lane " << I << " width " << Width;
    };

    bs::sliceAdd(Width, SA.data(), SB.data(), SOut.data());
    check("add", [](uint64_t X, uint64_t Y) { return X + Y; });
    bs::sliceSub(Width, SA.data(), SB.data(), SOut.data());
    check("sub", [](uint64_t X, uint64_t Y) { return X - Y; });
    bs::sliceMul(Width, SA.data(), SB.data(), SOut.data());
    check("mul", [](uint64_t X, uint64_t Y) { return X * Y; });
    bs::sliceNeg(Width, SA.data(), SOut.data());
    check("neg", [](uint64_t X, uint64_t) { return 0 - X; });

    // Aliased forms: Out == A.
    std::vector<uint64_t> SA2 = SA;
    bs::sliceAdd(Width, SA2.data(), SB.data(), SA2.data());
    SOut = SA2;
    check("add-aliased", [](uint64_t X, uint64_t Y) { return X + Y; });
    SA2 = SA;
    bs::sliceSub(Width, SA2.data(), SB.data(), SA2.data());
    SOut = SA2;
    check("sub-aliased", [](uint64_t X, uint64_t Y) { return X - Y; });
  }
}

TEST(Bitslice, BroadcastMatchesConstant) {
  for (unsigned Width : {1u, 8u, 64u}) {
    const uint64_t Value = 0xDEADBEEFCAFEF00DULL & maskOf(Width);
    std::vector<uint64_t> Slices(Width), Lanes(64);
    bs::sliceBroadcast(Width, Value, Slices.data());
    bs::slicesToLanes(Slices.data(), Width, 64, Lanes.data());
    for (uint64_t L : Lanes)
      EXPECT_EQ(L, Value);
  }
}

//===----------------------------------------------------------------------===//
// BitslicedExpr vs. the scalar evaluator
//===----------------------------------------------------------------------===//

const Expr *randomExpr(Context &Ctx, RNG &Rng,
                       const std::vector<const Expr *> &Vars, unsigned Depth) {
  if (Depth == 0) {
    if (Rng.below(3) == 0)
      return Ctx.getConst(Rng.next());
    return Vars[Rng.below(Vars.size())];
  }
  switch (Rng.below(8)) {
  case 0:
    return Ctx.getNot(randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 1:
    return Ctx.getNeg(randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 2:
    return Ctx.getAdd(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 3:
    return Ctx.getSub(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 4:
    return Ctx.getMul(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 5:
    return Ctx.getAnd(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 6:
    return Ctx.getOr(randomExpr(Ctx, Rng, Vars, Depth - 1),
                     randomExpr(Ctx, Rng, Vars, Depth - 1));
  default:
    return Ctx.getXor(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  }
}

TEST(BitslicedEval, FuzzAgreementWithScalar) {
  RNG Rng(0xB175);
  for (unsigned Width : {1u, 2u, 7u, 8u, 16u, 31u, 32u, 63u, 64u}) {
    Context Ctx(Width);
    std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                      Ctx.getVar("z")};
    for (unsigned Trial = 0; Trial != 40; ++Trial) {
      const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(4));
      BitslicedExpr BE(Ctx, E);
      // Lane counts straddling and not dividing the 64-point block size.
      for (size_t NumPoints : {(size_t)1, (size_t)13, (size_t)64, (size_t)65,
                               (size_t)100, (size_t)133}) {
        std::vector<std::vector<uint64_t>> Inputs(Vars.size());
        for (auto &Col : Inputs) {
          Col.resize(NumPoints);
          for (uint64_t &V : Col)
            V = Rng.next();
        }
        std::vector<const uint64_t *> Ptrs;
        for (auto &Col : Inputs)
          Ptrs.push_back(Col.data());
        std::vector<uint64_t> Got = BE.evaluatePoints(Ptrs, NumPoints);
        ASSERT_EQ(Got.size(), NumPoints);
        for (size_t P = 0; P != NumPoints; ++P) {
          std::vector<uint64_t> Vals = {Inputs[0][P], Inputs[1][P],
                                        Inputs[2][P]};
          ASSERT_EQ(Got[P], evaluate(Ctx, E, Vals))
              << "width " << Width << " point " << P;
        }
      }
    }
  }
}

TEST(BitslicedEval, CornerModeMatchesScalarCornerLoop) {
  RNG Rng(0xC0121E2);
  for (unsigned Width : {1u, 8u, 32u, 64u}) {
    Context Ctx(Width);
    const uint64_t Mask = maskOf(Width);
    std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                      Ctx.getVar("z")};
    for (unsigned Trial = 0; Trial != 20; ++Trial) {
      const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(3));
      BitslicedExpr BE(Ctx, E);
      // All 8 corners of the 3-variable truth table in one partial block.
      std::vector<uint64_t> VarMasks(Vars.size(), 0);
      for (unsigned Corner = 0; Corner != 8; ++Corner)
        for (unsigned V = 0; V != 3; ++V)
          if ((Corner >> V) & 1)
            VarMasks[V] |= 1ULL << Corner;
      uint64_t Out[8];
      BE.evaluateCorners(VarMasks, 8, Out);
      for (unsigned Corner = 0; Corner != 8; ++Corner) {
        std::vector<uint64_t> Vals(3);
        for (unsigned V = 0; V != 3; ++V)
          Vals[V] = ((Corner >> V) & 1) ? Mask : 0;
        ASSERT_EQ(Out[Corner], evaluate(Ctx, E, Vals))
            << "width " << Width << " corner " << Corner;
      }
    }
  }
}

TEST(BitslicedEval, MissingVariablesReadZero) {
  Context Ctx(32);
  const Expr *E = parseOrDie(Ctx, "x + (y & z)");
  BitslicedExpr BE(Ctx, E);
  // Only x is supplied; y and z (dense indices 1 and 2) must read 0.
  std::vector<uint64_t> X = {5, 6, 7};
  std::vector<const uint64_t *> Ptrs = {X.data()};
  std::vector<uint64_t> Got = BE.evaluatePoints(Ptrs, 3);
  EXPECT_EQ(Got, (std::vector<uint64_t>{5, 6, 7}));
  // Same for corner mode: empty mask span means every variable is 0.
  uint64_t Out[4];
  BE.evaluateCorners({}, 4, Out);
  for (uint64_t V : Out)
    EXPECT_EQ(V, 0u);
}

TEST(BitslicedEval, SignaturePathsAgree) {
  // The production computeSignature runs corners through the bitsliced
  // evaluator; pin it to the scalar reference across variable counts that
  // exercise partial (t <= 6) and multi-block (t = 7, 8) corner batches.
  RNG Rng(0x51619);
  for (unsigned Width : {8u, 64u}) {
    Context Ctx(Width);
    std::vector<const Expr *> Vars;
    for (unsigned V = 0; V != 8; ++V)
      Vars.push_back(Ctx.getVar(std::string(1, (char)('a' + V)).c_str()));
    for (unsigned T : {1u, 2u, 3u, 6u, 7u, 8u}) {
      std::vector<const Expr *> Sub(Vars.begin(), Vars.begin() + T);
      for (unsigned Trial = 0; Trial != 8; ++Trial) {
        const Expr *E = randomExpr(Ctx, Rng, Sub, 3);
        ASSERT_EQ(computeSignature(Ctx, E, Sub),
                  computeSignatureScalar(Ctx, E, Sub))
            << "width " << Width << " t " << T;
      }
    }
  }
}

TEST(BitslicedEval, ConstantExpression) {
  Context Ctx(16);
  const Expr *E = parseOrDie(Ctx, "3 * 5 + ~0");
  BitslicedExpr BE(Ctx, E);
  std::vector<uint64_t> Got = BE.evaluatePoints({}, 70);
  std::vector<uint64_t> Vals;
  for (uint64_t V : Got)
    EXPECT_EQ(V, evaluate(Ctx, E, Vals));
}

} // namespace
