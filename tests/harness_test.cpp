//===- tests/harness_test.cpp - Benchmark harness tests -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace mba;
using namespace mba::bench;

namespace {

TEST(HarnessArgs, DefaultsAndOverrides) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_EQ(Opts.PerCategory, 40u);
    EXPECT_EQ(Opts.TimeoutSeconds, 1.0);
    EXPECT_EQ(Opts.Width, 64u);
  }
  {
    char Prog[] = "bench";
    char A1[] = "--per-category=7";
    char A2[] = "--timeout=0.125";
    char A3[] = "--width=16";
    char A4[] = "--seed=99";
    char *Argv[] = {Prog, A1, A2, A3, A4};
    HarnessOptions Opts = parseHarnessArgs(5, Argv);
    EXPECT_EQ(Opts.PerCategory, 7u);
    EXPECT_EQ(Opts.TimeoutSeconds, 0.125);
    EXPECT_EQ(Opts.Width, 16u);
    EXPECT_EQ(Opts.Seed, 99u);
  }
}

TEST(HarnessStudy, RunsRawAndSimplifiedStudies) {
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 4;
  CorpusOpts.PolyCount = 2;
  CorpusOpts.NonPolyCount = 2;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Checkers = makeAllCheckers();
  auto Raw = runSolvingStudy(Ctx, Corpus, Checkers, 0.2, nullptr);
  EXPECT_EQ(Raw.size(), Corpus.size() * Checkers.size());
  for (const QueryRecord &R : Raw) {
    EXPECT_FALSE(R.Solver.empty());
    EXPECT_LT(R.EntryIndex, Corpus.size());
    // Corpus entries are identities: a solver may time out but must never
    // refute one.
    EXPECT_NE(R.Outcome, Verdict::NotEquivalent);
  }

  MBASolver Simplifier(Ctx);
  auto Simplified = runSolvingStudy(Ctx, Corpus, Checkers, 2.0, &Simplifier);
  unsigned Solved = 0;
  for (const QueryRecord &R : Simplified)
    Solved += R.Outcome == Verdict::Equivalent;
  // After preprocessing at width 8, effectively everything solves.
  EXPECT_GE(Solved, Simplified.size() - 2);
}

TEST(HarnessFormat, SecondsFormatting) {
  EXPECT_EQ(formatSeconds(0.0), "0.000");
  EXPECT_EQ(formatSeconds(1.2345), "1.234");
  EXPECT_EQ(formatSeconds(12.0), "12.000");
}

TEST(HarnessPrint, TablesRenderWithoutCrashing) {
  // Smoke the printers with a synthetic record set covering every cell
  // state (solved, unsolved, absent categories).
  std::vector<QueryRecord> Records = {
      {"SolverA", MBAKind::Linear, Verdict::Equivalent, 0.05, 0},
      {"SolverA", MBAKind::Linear, Verdict::Timeout, 0.2, 1},
      {"SolverA", MBAKind::Polynomial, Verdict::Timeout, 0.2, 2},
      {"SolverB", MBAKind::Linear, Verdict::Equivalent, 0.01, 0},
      {"SolverB", MBAKind::NonPolynomial, Verdict::Equivalent, 0.02, 3},
  };
  printSolverCategoryTable(Records, 2, "unit-test table");
  printTimeDistribution(Records, 0.2, "unit-test distribution");
  SUCCEED();
}

} // namespace
