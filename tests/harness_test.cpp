//===- tests/harness_test.cpp - Benchmark harness tests -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ast/Parser.h"
#include "support/Json.h"
#include "support/QueryLog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace mba;
using namespace mba::bench;

namespace {

TEST(HarnessArgs, DefaultsAndOverrides) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_EQ(Opts.PerCategory, 40u);
    EXPECT_EQ(Opts.TimeoutSeconds, 1.0);
    EXPECT_EQ(Opts.Width, 64u);
  }
  {
    char Prog[] = "bench";
    char A1[] = "--per-category=7";
    char A2[] = "--timeout=0.125";
    char A3[] = "--width=16";
    char A4[] = "--seed=99";
    char *Argv[] = {Prog, A1, A2, A3, A4};
    HarnessOptions Opts = parseHarnessArgs(5, Argv);
    EXPECT_EQ(Opts.PerCategory, 7u);
    EXPECT_EQ(Opts.TimeoutSeconds, 0.125);
    EXPECT_EQ(Opts.Width, 16u);
    EXPECT_EQ(Opts.Seed, 99u);
  }
}

TEST(HarnessStudy, RunsRawAndSimplifiedStudies) {
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 4;
  CorpusOpts.PolyCount = 2;
  CorpusOpts.NonPolyCount = 2;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Checkers = makeAllCheckers();
  auto Raw = runSolvingStudy(Ctx, Corpus, Checkers, 0.2, nullptr);
  EXPECT_EQ(Raw.size(), Corpus.size() * Checkers.size());
  for (const QueryRecord &R : Raw) {
    EXPECT_FALSE(R.Solver.empty());
    EXPECT_LT(R.EntryIndex, Corpus.size());
    // Corpus entries are identities: a solver may time out but must never
    // refute one.
    EXPECT_NE(R.Outcome, Verdict::NotEquivalent);
  }

  MBASolver Simplifier(Ctx);
  auto Simplified = runSolvingStudy(Ctx, Corpus, Checkers, 2.0, &Simplifier);
  unsigned Solved = 0;
  for (const QueryRecord &R : Simplified)
    Solved += R.Outcome == Verdict::Equivalent;
  // After preprocessing at width 8, effectively everything solves.
  EXPECT_GE(Solved, Simplified.size() - 2);
}

TEST(HarnessArgs, JobsAndJsonOverrides) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_EQ(Opts.Jobs, 0u) << "default = hardware concurrency";
    EXPECT_TRUE(Opts.JsonPath.empty());
  }
  {
    char Prog[] = "bench";
    char A1[] = "--jobs=4";
    char A2[] = "--json=/tmp/out.json";
    char *Argv[] = {Prog, A1, A2};
    HarnessOptions Opts = parseHarnessArgs(3, Argv);
    EXPECT_EQ(Opts.Jobs, 4u);
    EXPECT_EQ(Opts.JsonPath, "/tmp/out.json");
  }
}

TEST(HarnessStudy, ParallelVerdictsMatchSerial) {
  // The determinism contract of runSolvingStudyParallel: for any job
  // count, record order and verdicts are identical to the serial path.
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 6;
  CorpusOpts.PolyCount = 3;
  CorpusOpts.NonPolyCount = 3;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Simplify = true;
  Config.StageZero = true;
  auto Factory = [](Context &) { return makeAllCheckers(); };

  Config.Jobs = 1;
  StudyResult Serial = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);
  Config.Jobs = 4;
  StudyResult Parallel =
      runSolvingStudyParallel(Ctx, Corpus, Factory, Config);

  ASSERT_EQ(Serial.Records.size(), Parallel.Records.size());
  for (size_t I = 0; I != Serial.Records.size(); ++I) {
    EXPECT_EQ(Serial.Records[I].Solver, Parallel.Records[I].Solver);
    EXPECT_EQ(Serial.Records[I].Category, Parallel.Records[I].Category);
    EXPECT_EQ(Serial.Records[I].EntryIndex, Parallel.Records[I].EntryIndex);
    EXPECT_EQ(Serial.Records[I].Outcome, Parallel.Records[I].Outcome)
        << "verdict diverged at record " << I << " (solver "
        << Serial.Records[I].Solver << ", entry "
        << Serial.Records[I].EntryIndex << ")";
  }
  // Both paths see the same query stream, so the stage-0 split matches.
  EXPECT_EQ(Serial.StaticStats.Proved, Parallel.StaticStats.Proved);
  EXPECT_EQ(Serial.StaticStats.Refuted, Parallel.StaticStats.Refuted);
  EXPECT_EQ(Serial.StaticStats.Fallthrough,
            Parallel.StaticStats.Fallthrough);
  EXPECT_EQ(Parallel.Jobs, 4u);
  EXPECT_EQ(Parallel.Pool.Tasks, Corpus.size());
}

TEST(HarnessStudy, JsonReportIsWellFormed) {
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 2;
  CorpusOpts.PolyCount = 1;
  CorpusOpts.NonPolyCount = 1;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Jobs = 2;
  Config.StageZero = true;
  StudyResult Result = runSolvingStudyParallel(
      Ctx, Corpus, [](Context &) { return makeAllCheckers(); }, Config);

  HarnessOptions Opts;
  std::string Path = ::testing::TempDir() + "harness_study.json";
  writeStudyJson(Path, "unit", Opts, Result);

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Json = Buf.str();
  // Structural sanity: balanced braces/brackets and the documented keys.
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
  for (const char *Key :
       {"\"table\"", "\"config\"", "\"timing\"", "\"pool\"",
        "\"stage_zero\"", "\"solvers\"", "\"wall_seconds\"", "\"jobs\"",
        "\"total_seconds\"", "\"caches\"", "\"enabled\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key;
}

TEST(HarnessArgs, CacheOverrides) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_FALSE(Opts.Cache);
    EXPECT_TRUE(Opts.CacheFile.empty());
  }
  {
    char Prog[] = "bench";
    char A1[] = "--cache=1";
    char *Argv[] = {Prog, A1};
    HarnessOptions Opts = parseHarnessArgs(2, Argv);
    EXPECT_TRUE(Opts.Cache);
    EXPECT_TRUE(Opts.CacheFile.empty());
  }
  {
    // A snapshot path implies caching; spelling out --cache=1 is optional.
    char Prog[] = "bench";
    char A1[] = "--cache-file=/tmp/warm.mba";
    char *Argv[] = {Prog, A1};
    HarnessOptions Opts = parseHarnessArgs(2, Argv);
    EXPECT_TRUE(Opts.Cache);
    EXPECT_EQ(Opts.CacheFile, "/tmp/warm.mba");
  }
  {
    char Prog[] = "bench";
    char A1[] = "--cache=0";
    char *Argv[] = {Prog, A1};
    HarnessOptions Opts = parseHarnessArgs(2, Argv);
    EXPECT_FALSE(Opts.Cache);
  }
}

TEST(HarnessStudy, CachedParallelMatchesUncachedSerial) {
  // The headline determinism contract of the memoization layer: caches on
  // with 4 workers must produce bit-identical verdicts AND simplified
  // output text to a cache-free serial run, on a full 120-entry corpus.
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 40;
  CorpusOpts.PolyCount = 40;
  CorpusOpts.NonPolyCount = 40;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);
  ASSERT_EQ(Corpus.size(), 120u);

  auto Factory = [](Context &) { return makeAllCheckers(); };
  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Simplify = true;
  Config.StageZero = true;
  Config.RecordSimplified = true;

  Config.Jobs = 1;
  Config.Caches = nullptr;
  StudyResult Baseline = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);
  EXPECT_FALSE(Baseline.CachesEnabled);

  PipelineCaches Caches(/*Width=*/8);
  Config.Jobs = 4;
  Config.Caches = &Caches;
  StudyResult Cached = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);
  EXPECT_TRUE(Cached.CachesEnabled);

  ASSERT_EQ(Baseline.Records.size(), Cached.Records.size());
  for (size_t I = 0; I != Baseline.Records.size(); ++I) {
    EXPECT_EQ(Baseline.Records[I].Solver, Cached.Records[I].Solver);
    EXPECT_EQ(Baseline.Records[I].EntryIndex, Cached.Records[I].EntryIndex);
    EXPECT_EQ(Baseline.Records[I].Outcome, Cached.Records[I].Outcome)
        << "verdict diverged at record " << I << " (solver "
        << Baseline.Records[I].Solver << ", entry "
        << Baseline.Records[I].EntryIndex << ")";
  }
  ASSERT_EQ(Baseline.SimplifiedLhs.size(), Corpus.size());
  ASSERT_EQ(Cached.SimplifiedLhs.size(), Corpus.size());
  for (size_t I = 0; I != Corpus.size(); ++I) {
    EXPECT_EQ(Baseline.SimplifiedLhs[I], Cached.SimplifiedLhs[I])
        << "simplified LHS diverged at entry " << I;
    EXPECT_EQ(Baseline.SimplifiedRhs[I], Cached.SimplifiedRhs[I])
        << "simplified RHS diverged at entry " << I;
  }
  // Note: StaticStats are intentionally not compared — a verdict-cache hit
  // legitimately skips stage 0, so the cached run sees fewer queries.
}

TEST(HarnessStudy, CacheSnapshotWarmsSecondStudy) {
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 6;
  CorpusOpts.PolyCount = 3;
  CorpusOpts.NonPolyCount = 3;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Factory = [](Context &) { return makeAllCheckers(); };
  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Simplify = true;
  Config.StageZero = true;
  Config.RecordSimplified = true;
  Config.Jobs = 2;

  PipelineCaches Cold(/*Width=*/8);
  Config.Caches = &Cold;
  StudyResult First = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);

  std::string Path = ::testing::TempDir() + "harness_snapshot.mba";
  std::string Err;
  ASSERT_TRUE(Cold.saveTo(Path, Err)) << Err;

  // A fresh process would construct new caches and load the snapshot; model
  // that with a second PipelineCaches instance.
  PipelineCaches Warm(/*Width=*/8);
  ASSERT_TRUE(Warm.loadFrom(Path, Err)) << Err;
  Config.Caches = &Warm;
  StudyResult Second = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);

  ASSERT_EQ(First.Records.size(), Second.Records.size());
  for (size_t I = 0; I != First.Records.size(); ++I)
    EXPECT_EQ(First.Records[I].Outcome, Second.Records[I].Outcome);
  for (size_t I = 0; I != Corpus.size(); ++I) {
    EXPECT_EQ(First.SimplifiedLhs[I], Second.SimplifiedLhs[I]);
    EXPECT_EQ(First.SimplifiedRhs[I], Second.SimplifiedRhs[I]);
  }
  // The warm run must actually hit: every simplification was snapshotted.
  EXPECT_GT(Second.SimplifyResultCache.Hits + Second.SimplifyLinearCache.Hits,
            0u);
  EXPECT_GT(Second.VerdictCacheStats.Hits, 0u);

  // Width mismatch is rejected on load, never silently reinterpreted.
  PipelineCaches Wrong(/*Width=*/16);
  EXPECT_FALSE(Wrong.loadFrom(Path, Err));
  EXPECT_NE(Err.find("width"), std::string::npos) << Err;
}

TEST(HarnessArgs, TraceAndMetricsOverrides) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_TRUE(Opts.TracePath.empty());
    EXPECT_TRUE(Opts.MetricsPath.empty());
  }
  {
    char Prog[] = "bench";
    char A1[] = "--trace=/tmp/t.json";
    char A2[] = "--metrics=/tmp/m.txt";
    char *Argv[] = {Prog, A1, A2};
    HarnessOptions Opts = parseHarnessArgs(3, Argv);
    EXPECT_EQ(Opts.TracePath, "/tmp/t.json");
    EXPECT_EQ(Opts.MetricsPath, "/tmp/m.txt");
  }
}

TEST(HarnessStudy, TracedParallelMatchesUntraced) {
  // Observation must not perturb the pipeline: a fully traced + metered
  // 4-worker run produces bit-identical verdicts and simplified text to an
  // untraced one.
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 10;
  CorpusOpts.PolyCount = 5;
  CorpusOpts.NonPolyCount = 5;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Factory = [](Context &) { return makeAllCheckers(); };
  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Jobs = 4;
  Config.Simplify = true;
  Config.StageZero = true;
  Config.RecordSimplified = true;

  StudyResult Plain = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);

  telemetry::setMetricsEnabled(true);
  telemetry::clearTrace();
  telemetry::setTracingEnabled(true);
  StudyResult Traced = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);
  telemetry::setTracingEnabled(false);
  telemetry::setMetricsEnabled(false);

  ASSERT_EQ(Plain.Records.size(), Traced.Records.size());
  for (size_t I = 0; I != Plain.Records.size(); ++I) {
    EXPECT_EQ(Plain.Records[I].Solver, Traced.Records[I].Solver);
    EXPECT_EQ(Plain.Records[I].Outcome, Traced.Records[I].Outcome)
        << "tracing changed the verdict at record " << I;
  }
  for (size_t I = 0; I != Corpus.size(); ++I) {
    EXPECT_EQ(Plain.SimplifiedLhs[I], Traced.SimplifiedLhs[I]);
    EXPECT_EQ(Plain.SimplifiedRhs[I], Traced.SimplifiedRhs[I]);
  }

  // The traced run actually recorded: per-worker task spans exist and the
  // workers carry their stable labels.
  std::vector<telemetry::TraceEvent> Trace = telemetry::collectTrace();
  size_t TaskSpans = 0;
  for (const telemetry::TraceEvent &E : Trace)
    TaskSpans += std::string_view(E.Name) == "pool.task";
  EXPECT_EQ(TaskSpans, Corpus.size());
  size_t WorkerLabels = 0;
  for (auto &[Tid, Label] : telemetry::traceThreads())
    WorkerLabels += Label.rfind("worker-", 0) == 0;
  EXPECT_GE(WorkerLabels, 1u);
  telemetry::clearTrace();
}

TEST(HarnessArgs, QueryLogOverride) {
  {
    char Prog[] = "bench";
    char *Argv[] = {Prog};
    HarnessOptions Opts = parseHarnessArgs(1, Argv);
    EXPECT_TRUE(Opts.QueryLogPath.empty());
  }
  {
    char Prog[] = "bench";
    char A1[] = "--query-log=/tmp/q.jsonl";
    char *Argv[] = {Prog, A1};
    HarnessOptions Opts = parseHarnessArgs(2, Argv);
    EXPECT_EQ(Opts.QueryLogPath, "/tmp/q.jsonl");
  }
}

TEST(HarnessStudy, QueryLoggedMatchesUnlogged) {
  // The flight recorder is observational: a fully logged 4-worker study
  // must produce bit-identical verdicts and simplified text to an unlogged
  // one, and every JSONL record it leaves behind must parse with the
  // complete decision chain (classify -> stages for simplify records,
  // verdict + stage0 disposition for check records).
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 10;
  CorpusOpts.PolyCount = 5;
  CorpusOpts.NonPolyCount = 5;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Factory = [](Context &) { return makeAllCheckers(); };
  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Jobs = 4;
  Config.Simplify = true;
  Config.StageZero = true;
  Config.RecordSimplified = true;

  StudyResult Plain = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);

  std::string Path = ::testing::TempDir() + "harness_query.jsonl";
  ASSERT_TRUE(querylog::openFile(Path));
  StudyResult Logged = runSolvingStudyParallel(Ctx, Corpus, Factory, Config);
  uint64_t Written = querylog::recordsWritten();
  querylog::close();

  ASSERT_EQ(Plain.Records.size(), Logged.Records.size());
  for (size_t I = 0; I != Plain.Records.size(); ++I) {
    EXPECT_EQ(Plain.Records[I].Solver, Logged.Records[I].Solver);
    EXPECT_EQ(Plain.Records[I].Outcome, Logged.Records[I].Outcome)
        << "query logging changed the verdict at record " << I;
  }
  for (size_t I = 0; I != Corpus.size(); ++I) {
    EXPECT_EQ(Plain.SimplifiedLhs[I], Logged.SimplifiedLhs[I]);
    EXPECT_EQ(Plain.SimplifiedRhs[I], Logged.SimplifiedRhs[I]);
  }

  // Parse every line back and require the complete chain. Simplify runs
  // twice per corpus entry (both sides); every (checker, entry) pair adds
  // one check record.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  size_t SimplifyRecords = 0, CheckRecords = 0;
  std::string Line;
  while (std::getline(In, Line)) {
    json::Value Rec;
    std::string Err;
    ASSERT_TRUE(json::parse(Line, Rec, &Err)) << Err << "\n" << Line;
    std::string Kind(Rec.stringAt("kind"));
    EXPECT_GT(Rec.numberAt("ns"), 0);
    if (Kind == "simplify") {
      ++SimplifyRecords;
      EXPECT_FALSE(Rec.stringAt("class").empty()) << Line;
      EXPECT_EQ(Rec.stringAt("fp_in").size(), 16u);
      EXPECT_EQ(Rec.stringAt("fp_out").size(), 16u);
      const json::Value *Stages = Rec.get("stages");
      ASSERT_NE(Stages, nullptr) << Line;
      EXPECT_EQ(Stages->at(0).stringAt("name"), "classify") << Line;
    } else {
      ASSERT_EQ(Kind, "check") << Line;
      ++CheckRecords;
      EXPECT_FALSE(Rec.stringAt("verdict").empty()) << Line;
      EXPECT_FALSE(Rec.stringAt("backend").empty()) << Line;
      EXPECT_FALSE(Rec.stringAt("stage0").empty()) << Line;
    }
  }
  EXPECT_EQ(SimplifyRecords + CheckRecords, Written);
  EXPECT_EQ(SimplifyRecords, Corpus.size() * 2);
  EXPECT_EQ(CheckRecords, Plain.Records.size());
}

TEST(HarnessStudy, JsonHistogramsCarryBucketsAndPercentiles) {
  // Satellite contract: --json histogram entries embed bucket data and
  // estimated percentiles, not just count/sum.
  Context Ctx(8);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 2;
  CorpusOpts.PolyCount = 1;
  CorpusOpts.NonPolyCount = 1;
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  StudyConfig Config;
  Config.TimeoutSeconds = 0.2;
  Config.Jobs = 1;
  Config.Simplify = true;
  telemetry::setMetricsEnabled(true);
  StudyResult Result = runSolvingStudyParallel(
      Ctx, Corpus, [](Context &) { return makeAllCheckers(); }, Config);
  telemetry::setMetricsEnabled(false);

  HarnessOptions Opts;
  std::string Path = ::testing::TempDir() + "harness_hist.json";
  writeStudyJson(Path, "unit", Opts, Result);

  json::Value Root;
  std::string Err;
  ASSERT_TRUE(json::parseFile(Path, Root, &Err)) << Err;
  ASSERT_NE(Root.get("build_info"), nullptr);
  EXPECT_FALSE(Root.get("build_info")->stringAt("version").empty());
  const json::Value *Metrics = Root.get("metrics");
  ASSERT_NE(Metrics, nullptr);
  const json::Value *Duration = Metrics->get("simplify.duration_ns");
  ASSERT_NE(Duration, nullptr)
      << "simplify histogram missing from the metrics object";
  EXPECT_GT(Duration->numberAt("count"), 0);
  EXPECT_GT(Duration->numberAt("p50"), 0);
  EXPECT_GE(Duration->numberAt("p99"), Duration->numberAt("p50"));
  const json::Value *Buckets = Duration->get("buckets");
  ASSERT_NE(Buckets, nullptr);
  EXPECT_GT(Buckets->members().size(), 0u) << "bucket data must be embedded";
}

TEST(HarnessFormat, SecondsFormatting) {
  EXPECT_EQ(formatSeconds(0.0), "0.000");
  EXPECT_EQ(formatSeconds(1.2345), "1.234");
  EXPECT_EQ(formatSeconds(12.0), "12.000");
}

TEST(HarnessPrint, TablesRenderWithoutCrashing) {
  // Smoke the printers with a synthetic record set covering every cell
  // state (solved, unsolved, absent categories).
  std::vector<QueryRecord> Records = {
      {"SolverA", MBAKind::Linear, Verdict::Equivalent, 0.05, 0},
      {"SolverA", MBAKind::Linear, Verdict::Timeout, 0.2, 1},
      {"SolverA", MBAKind::Polynomial, Verdict::Timeout, 0.2, 2},
      {"SolverB", MBAKind::Linear, Verdict::Equivalent, 0.01, 0},
      {"SolverB", MBAKind::NonPolynomial, Verdict::Equivalent, 0.02, 3},
  };
  printSolverCategoryTable(Records, 2, "unit-test table");
  printTimeDistribution(Records, 0.2, "unit-test distribution");
  SUCCEED();
}

} // namespace
