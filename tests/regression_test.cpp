//===- tests/regression_test.cpp - Golden simplification outputs ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Golden outputs: the exact canonical text the default-configured
/// simplifier produces for a catalogue of inputs. Guards the public
/// behaviour against unintended drift — any change here should be a
/// deliberate improvement, reviewed like an API change.
///
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

struct Golden {
  const char *In;
  const char *Out;
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, CanonicalOutputIsStable) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, GetParam().In);
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(E)), GetParam().Out)
      << "input: " << GetParam().In;
}

INSTANTIATE_TEST_SUITE_P(
    LinearCatalogue, GoldenTest,
    ::testing::Values(
        Golden{"2*(x|y) - (~x&y) - (x&~y)", "x+y"},
        Golden{"(x^y) + 2*(x|~y) + 2", "x-y"},
        Golden{"(x|y) + (~x|y) - ~x", "x+y"},
        Golden{"(x|y) + y - (~x&y)", "x+y"},
        Golden{"(x^y) + 2*y - 2*(~x&y)", "x+y"},
        Golden{"y + (x&~y) + (x&y)", "x+y"},
        Golden{"(x&~y) + y", "x|y"},
        Golden{"(x|y) - (x&y)", "x^y"},
        Golden{"x + y - 2*(x&y)", "x^y"},
        Golden{"x + y - (x|y)", "x&y"},
        Golden{"x + y - (x&y)", "x|y"},
        Golden{"~x + 1", "-x"},
        Golden{"-x - 1", "~x"},
        Golden{"(x&~y) - (~x&y)", "x-y"},
        Golden{"2*(x&~y) - (x^y)", "x-y"},
        Golden{"(x^y) - 2*(~x&y)", "x-y"},
        Golden{"3*(x&y) + 3*(x^y) - 2*(x|y)", "x|y"}));

INSTANTIATE_TEST_SUITE_P(
    PolyCatalogue, GoldenTest,
    ::testing::Values(
        Golden{"(x&~y)*(~x&y) + (x&y)*(x|y)", "x*y"},
        Golden{"(x&y)*(x|y) + (x&~y)*(~x&y)", "x*y"},
        Golden{"((x|y)+(x&y)) * ((x|y)+(x&y))",
               "x*x+2*x*y+y*y"},
        // (x|y - x&y)^2 == (x^y)^2, fully expanded over conj atoms.
        Golden{"(x|y)*(x|y) - 2*(x|y)*(x&y) + (x&y)*(x&y)",
               "4*(x&y)*(x&y)-4*(x&y)*y-4*x*(x&y)+x*x+2*x*y+y*y"}));

INSTANTIATE_TEST_SUITE_P(
    NonPolyCatalogue, GoldenTest,
    ::testing::Values(
        Golden{"((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)", "x-y+z"},
        Golden{"~(x-1)", "-x"},
        Golden{"((x+y)|z) + ((x+y)&z)", "x+y+z"},
        Golden{"~((x|y) + (x&y)) + 1", "-x-y"},
        Golden{"((x+y) | (-x-y-1)) + ((x+y) & (-x-y-1))", "-1"},
        Golden{"(x*2) & 1", "0"}));

INSTANTIATE_TEST_SUITE_P(
    TrivialCatalogue, GoldenTest,
    ::testing::Values(
        Golden{"x", "x"},
        Golden{"0", "0"},
        Golden{"x - x", "0"},
        Golden{"x ^ x", "0"},
        Golden{"x | ~x", "-1"},
        Golden{"x & ~x", "0"},
        Golden{"3*5 - 15", "0"},
        Golden{"~(60 + 3)", "-64"},
        Golden{"x & -1", "x"},
        Golden{"x | 0", "x"}));

} // namespace
