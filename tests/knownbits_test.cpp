//===- tests/knownbits_test.cpp - Known-bits analysis tests ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"

#include "analysis/AbstractInterp.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(KnownBitsTest, ConstantsAreFullyKnown) {
  Context Ctx(8);
  KnownBits K = computeKnownBits(Ctx, Ctx.getConst(0b1010));
  EXPECT_EQ(K.One, 0b1010u);
  EXPECT_EQ(K.Zero, 0xf5u);
  EXPECT_TRUE(K.isConstant(Ctx.mask()));
}

TEST(KnownBitsTest, VariablesAreUnknown) {
  Context Ctx(64);
  KnownBits K = computeKnownBits(Ctx, Ctx.getVar("x"));
  EXPECT_EQ(K.knownMask(), 0u);
}

TEST(KnownBitsTest, BitwiseTransfer) {
  Context Ctx(8);
  // x & 0x0f: the high nibble is known zero.
  KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "x & 15"));
  EXPECT_EQ(K.Zero, 0xf0u);
  EXPECT_EQ(K.One, 0u);
  // x | 0xf0: the high nibble is known one.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x | 240"));
  EXPECT_EQ(K.One, 0xf0u);
  // (x|240) ^ (x|240): everything cancels... via Xor transfer only the
  // known-agreeing bits are known; identical subtrees share a node, so
  // their knowledge aligns on the 0xf0 window.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x|240) ^ (x|240)"));
  EXPECT_EQ(K.Zero & 0xf0u, 0xf0u);
  // ~(x & 15): complement of a known-zero window is known one.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "~(x & 15)"));
  EXPECT_EQ(K.One, 0xf0u);
}

TEST(KnownBitsTest, ArithmeticTrailingWindows) {
  Context Ctx(8);
  // (x & 240) + 3: the low 4 bits are known (0 + 3 = 3).
  KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x & 240) + 3"));
  EXPECT_EQ(K.One & 0x0fu, 3u);
  EXPECT_EQ(K.Zero & 0x0fu, 0x0cu);
  // (x & 240) - 1: low nibble borrows to all-ones.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x & 240) - 1"));
  EXPECT_EQ(K.One & 0x0fu, 0x0fu);
  // x * 2 clears bit 0; x * 4 clears two bits.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x * 2"));
  EXPECT_EQ(K.Zero & 1u, 1u);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x * 4"));
  EXPECT_EQ(K.Zero & 3u, 3u);
  // -(x*2) is still even.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "-(x * 2)"));
  EXPECT_EQ(K.Zero & 1u, 1u);
}

TEST(KnownBitsTest, SoundnessOnRandomExpressions) {
  // Property: claimed known bits agree with concrete evaluation.
  Context Ctx(16);
  RNG Rng(404);
  const char *Samples[] = {
      "(x & 255) * (y & 255)",
      "((x | 61440) + y) & 4095",
      "~(x * 8) | (y & 7)",
      "(x & 240) + (y & 240)",
      "(x ^ y) & (x ^ y) & 15",
      "x - (x & 3) + 3",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    KnownBits K = computeKnownBits(Ctx, E);
    for (int I = 0; I < 300; ++I) {
      uint64_t Vals[] = {Rng.next() & Ctx.mask(), Rng.next() & Ctx.mask()};
      uint64_t V = evaluate(Ctx, E, Vals);
      ASSERT_EQ(V & K.Zero, 0u) << S << " value " << V;
      ASSERT_EQ(V & K.One, K.One) << S << " value " << V;
    }
  }
}

TEST(KnownBitsTest, FoldsFullyKnownSubtrees) {
  Context Ctx(64);
  // (x*2) & 1 == 0: multiplication by two clears the tested bit.
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x*2) & 1"))),
            "0");
  // (x | 1) & 1 == 1.
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x | 1) & 1"))),
            "1");
  // (x & 6) & 9 == 0 (disjoint masks).
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x & 6) & 9"))),
            "0");
  // Nothing folds when bits stay unknown.
  const Expr *E = parseOrDie(Ctx, "x & 3");
  EXPECT_EQ(foldKnownBits(Ctx, E), E);
}

TEST(KnownBitsTest, SimplifierUsesTheFoldingPrePass) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  // The fold exposes a pure MBA expression underneath.
  const Expr *E = parseOrDie(Ctx, "((x*2) & 1) + (x|y) + (x&y) - y");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(E)), "x");
  // Disabled, the masked term survives (soundness unchanged).
  SimplifyOptions Opts;
  Opts.EnableKnownBits = false;
  MBASolver Plain(Ctx, Opts);
  const Expr *R = Plain.simplify(E);
  RNG Rng(11);
  for (int I = 0; I < 50; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    EXPECT_EQ(evaluate(Ctx, R, Vals), evaluate(Ctx, E, Vals));
  }
}

TEST(KnownBitsTest, WorksAtAllWidths) {
  // (Known-bits is per-node dataflow: it cannot see relational facts like
  // x ^ ~x == -1; those belong to the signature machinery.)
  for (unsigned W : {1u, 2u, 7u, 32u, 64u}) {
    Context Ctx(W);
    KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "x & 0"));
    EXPECT_EQ(K.Zero, Ctx.mask()) << "width " << W;
    K = computeKnownBits(Ctx, parseOrDie(Ctx, "x | -1"));
    EXPECT_EQ(K.One, Ctx.mask()) << "width " << W;
    K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x & 0) + 1"));
    EXPECT_TRUE(K.isConstant(Ctx.mask())) << "width " << W;
    EXPECT_EQ(K.One, 1u) << "width " << W;
  }
}

TEST(KnownBitsTest, Width64MaskBoundaries) {
  // Transfer functions must stay exact at the full 64-bit width, where
  // mask arithmetic is most prone to shift/overflow slips.
  Context Ctx(64);
  const uint64_t High = 0x8000000000000000ull;
  KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "x | 9223372036854775808"));
  EXPECT_EQ(K.One, High);
  EXPECT_EQ(K.Zero, 0u);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x & 9223372036854775808"));
  EXPECT_EQ(K.Zero, ~High);
  // Adding two values with 63 known-zero low bits: the trailing window
  // covers bits 0..62 of the sum, and carries cannot reach it.
  K = computeKnownBits(
      Ctx, parseOrDie(Ctx, "(x & 9223372036854775808) + "
                           "(y & 9223372036854775808)"));
  EXPECT_EQ(K.Zero & ~High, ~High);
  // All-ones constants survive the boundary.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x | -1"));
  EXPECT_TRUE(K.isConstant(Ctx.mask()));
  EXPECT_EQ(K.One, ~0ull);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x & 0) - 1"));
  EXPECT_TRUE(K.isConstant(Ctx.mask()));
  EXPECT_EQ(K.One, ~0ull);
  // Folding at the boundary: ~x | x is not foldable by known-bits (it is
  // a relational fact), but (x*2) & 1 is, even at width 64.
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x*2) & 1"))),
            "0");
}

TEST(KnownBitsTest, MultiplicationByEvenConstants) {
  Context Ctx(32);
  // Trailing zeros of the factors accumulate: 6 = 2*3, 12 = 4*3, 40 = 8*5.
  KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "x * 6"));
  EXPECT_EQ(K.Zero & 1u, 1u);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x * 12"));
  EXPECT_EQ(K.Zero & 3u, 3u);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "x * 40"));
  EXPECT_EQ(K.Zero & 7u, 7u);
  // Factors compound across a product tree: (x*2) * (y*4) has 3 trailing
  // zeros even though neither factor alone has more than 2.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x*2) * (y*4)"));
  EXPECT_EQ(K.Zero & 7u, 7u);
  // An odd factor contributes nothing but must not destroy the evenness.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "(x*2) * 3"));
  EXPECT_EQ(K.Zero & 1u, 1u);
  // Folds that hinge on even multiplication.
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x*6) & 1"))),
            "0");
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(Ctx, parseOrDie(Ctx, "(x*12) & 3"))),
            "0");
}

TEST(KnownBitsTest, NotInteractsWithKnownOneBits) {
  Context Ctx(8);
  // ~ swaps the roles of Zero and One exactly.
  KnownBits K = computeKnownBits(Ctx, parseOrDie(Ctx, "~(x | 240)"));
  EXPECT_EQ(K.Zero, 240u);
  EXPECT_EQ(K.One, 0u);
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "~(x | 1)"));
  EXPECT_EQ(K.Zero & 1u, 1u);
  // Double negation restores the original knowledge.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "~~(x | 240)"));
  EXPECT_EQ(K.One, 240u);
  // -(x|1) = ~(x|1) + 1: the known-one low bit flips to known-zero under
  // ~, then the +1 carries through the known window to a known one.
  K = computeKnownBits(Ctx, parseOrDie(Ctx, "-(x | 1)"));
  EXPECT_EQ(K.One & 1u, 1u);
  // ~ of a fully-known constant folds (the printer renders 254 mod 2^8 in
  // its signed form, -2).
  EXPECT_EQ(printExpr(Ctx, foldKnownBits(
                               Ctx, parseOrDie(Ctx, "~((x|1) & 1) & 255"))),
            "-2");
}

TEST(KnownBitsTest, ZeroOneDisjointInvariantUnderAllOps) {
  // Structural invariant of the lattice: a bit can never be known zero and
  // known one at once, and claimed bits stay inside the width mask. Checked
  // on every node of random expressions over the full operator set.
  for (unsigned Width : {1u, 8u, 33u, 64u}) {
    Context Ctx(Width);
    RNG Rng(555 + Width);
    const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
    for (int Trial = 0; Trial < 50; ++Trial) {
      const Expr *E = Vars[0];
      for (int I = 0; I < 12; ++I) {
        const Expr *Other = Rng.chance(1, 3)
                                ? Ctx.getConst(Rng.next())
                                : Vars[Rng.below(2)];
        switch (Rng.below(8)) {
        case 0: E = Ctx.getAdd(E, Other); break;
        case 1: E = Ctx.getSub(E, Other); break;
        case 2: E = Ctx.getMul(E, Other); break;
        case 3: E = Ctx.getAnd(E, Other); break;
        case 4: E = Ctx.getOr(E, Other); break;
        case 5: E = Ctx.getXor(E, Other); break;
        case 6: E = Ctx.getNot(E); break;
        default: E = Ctx.getNeg(E); break;
        }
      }
      std::unordered_map<const Expr *, KnownBits> Memo;
      computeKnownBits(Ctx, E, Memo);
      for (const auto &[Node, K] : Memo) {
        ASSERT_EQ(K.Zero & K.One, 0u)
            << "width " << Width << ": " << printExpr(Ctx, Node);
        ASSERT_EQ(K.Zero & ~Ctx.mask(), 0u) << printExpr(Ctx, Node);
        ASSERT_EQ(K.One & ~Ctx.mask(), 0u) << printExpr(Ctx, Node);
      }
    }
  }
}

TEST(IntervalMulTest, EvenConstantMultiplierTightensTheTop) {
  // Companion to KnownBitsTest.MultiplicationByEvenConstants: the interval
  // domain now also exploits c = m·2^t — the product stays a multiple of
  // 2^t through wraparound, so the top drops from mask to mask & ~(2^t-1).
  Context Ctx(8);
  EXPECT_EQ(computeInterval(Ctx, parseOrDie(Ctx, "x * 4")).Hi, 252u);
  EXPECT_EQ(computeInterval(Ctx, parseOrDie(Ctx, "x * 6")).Hi, 254u);
  EXPECT_EQ(computeInterval(Ctx, parseOrDie(Ctx, "16 * x")).Hi, 240u);
  // The small-range fast path still wins when no wraparound can occur.
  Interval Narrow = computeInterval(Ctx, parseOrDie(Ctx, "(x & 3) * 4"));
  EXPECT_EQ(Narrow.Lo, 0u);
  EXPECT_EQ(Narrow.Hi, 12u);
}

TEST(IntervalMulTest, SoundOnRandomEvenProducts) {
  // Random widths and multipliers: the concrete product must always land
  // in the computed interval.
  RNG Rng(0xE7E7);
  for (int Trial = 0; Trial < 200; ++Trial) {
    unsigned Width = 2 + Rng.below(63);
    Context Ctx(Width);
    uint64_t C = Rng.next() & Ctx.mask();
    const Expr *E = Ctx.getMul(Ctx.getVar("x"), Ctx.getConst(C));
    Interval I = computeInterval(Ctx, E);
    std::vector<uint64_t> Vals(1);
    for (int Pt = 0; Pt < 64; ++Pt) {
      Vals[0] = Rng.next() & Ctx.mask();
      uint64_t V = evaluate(Ctx, E, Vals);
      ASSERT_TRUE(I.contains(V))
          << "w=" << Width << " c=" << C << " x=" << Vals[0];
    }
  }
}

} // namespace
