//===- tests/linalg_test.cpp - Truth table / modular algebra tests -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "linalg/IntKernel.h"
#include "linalg/ModSolver.h"
#include "linalg/Subset.h"
#include "linalg/TruthTable.h"

#include "ast/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(TruthTable, RowConventionMatchesPaper) {
  // The paper lists rows (x,y) = (0,0),(0,1),(1,0),(1,1): x is the high bit.
  EXPECT_EQ(truthBit(/*Row=*/1, /*VarPos=*/0, /*NumVars=*/2), 0u); // x
  EXPECT_EQ(truthBit(/*Row=*/1, /*VarPos=*/1, /*NumVars=*/2), 1u); // y
  EXPECT_EQ(truthBit(/*Row=*/2, /*VarPos=*/0, /*NumVars=*/2), 1u);
  EXPECT_EQ(truthBit(/*Row=*/2, /*VarPos=*/1, /*NumVars=*/2), 0u);
}

TEST(TruthTable, PaperExample1Columns) {
  // Columns of Example 1's matrix M: x, y, x^y, x|~y over rows
  // (0,0),(0,1),(1,0),(1,1).
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "x"), Vars),
            (std::vector<uint8_t>{0, 0, 1, 1}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "y"), Vars),
            (std::vector<uint8_t>{0, 1, 0, 1}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "x^y"), Vars),
            (std::vector<uint8_t>{0, 1, 1, 0}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "x|~y"), Vars),
            (std::vector<uint8_t>{1, 0, 1, 1}));
}

TEST(TruthTable, Table3BaseVectors) {
  // Table 3: ~x&~y, ~x&y, x&~y, x&y are the four unit columns.
  Context Ctx(32);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "~x&~y"), Vars),
            (std::vector<uint8_t>{1, 0, 0, 0}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "~x&y"), Vars),
            (std::vector<uint8_t>{0, 1, 0, 0}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "x&~y"), Vars),
            (std::vector<uint8_t>{0, 0, 1, 0}));
  EXPECT_EQ(truthColumn(Ctx, parseOrDie(Ctx, "x&y"), Vars),
            (std::vector<uint8_t>{0, 0, 0, 1}));
}

TEST(TruthTable, MatrixLayout) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  const Expr *Exprs[] = {parseOrDie(Ctx, "x"), parseOrDie(Ctx, "y")};
  auto M = truthTableMatrix(Ctx, Exprs, Vars);
  ASSERT_EQ(M.size(), 8u);
  // Row 2 = (x=1,y=0): columns (1, 0).
  EXPECT_EQ(M[2 * 2 + 0], 1);
  EXPECT_EQ(M[2 * 2 + 1], 0);
}

TEST(TruthTable, CornerAssignment) {
  Context Ctx(16);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  auto A = cornerAssignment(Ctx, 2, Vars); // (x,y) = (1,0)
  EXPECT_EQ(A[0], 0xffffu);
  EXPECT_EQ(A[1], 0u);
}

TEST(Subset, ZetaThenMoebiusRoundTrips) {
  RNG Rng(3);
  uint64_t Mask = ~0ULL;
  for (unsigned T = 0; T <= 6; ++T) {
    std::vector<uint64_t> Data(1u << T), Orig;
    for (auto &V : Data)
      V = Rng.next();
    Orig = Data;
    subsetZeta(Data, Mask);
    subsetMoebius(Data, Mask);
    EXPECT_EQ(Data, Orig) << "t = " << T;
  }
}

TEST(Subset, ZetaComputesSubsetSums) {
  std::vector<uint64_t> Data = {1, 2, 3, 4}; // indexed by subset {y}, {x}
  subsetZeta(Data, ~0ULL);
  EXPECT_EQ(Data[0], 1u);           // {}
  EXPECT_EQ(Data[1], 3u);           // {} + {y}
  EXPECT_EQ(Data[2], 4u);           // {} + {x}
  EXPECT_EQ(Data[3], 10u);          // all four
}

TEST(Subset, MoebiusSolvesConjunctionBasisSystem) {
  // Section 4.3's system: sig = (0,1,1,2) over basis x&y-style columns.
  // With the zeta convention sig[S] = sum_{T subseteq S} c_T, Moebius
  // recovers c. Basis order (rows by (x,y)): c[{}], c[{y}], c[{x}], c[{x,y}]
  // must come out as the paper's C4=0 -> constant 0, C1 (x) = 1, C2 (y) = 1,
  // C3 (x&y) = 0.
  std::vector<uint64_t> Sig = {0, 1, 1, 2};
  subsetMoebius(Sig, ~0ULL);
  EXPECT_EQ(Sig[0], 0u); // constant term (coefficient of -1)
  EXPECT_EQ(Sig[1], 1u); // y
  EXPECT_EQ(Sig[2], 1u); // x
  EXPECT_EQ(Sig[3], 0u); // x&y
}

TEST(ModSolver, InverseMod2N) {
  uint64_t Mask64 = ~0ULL;
  for (uint64_t A : {1ULL, 3ULL, 5ULL, 0x123456789abcdef1ULL, ~0ULL}) {
    uint64_t Inv = inverseMod2N(A, Mask64);
    EXPECT_EQ((A * Inv) & Mask64, 1u) << A;
  }
  uint64_t Mask8 = 0xff;
  for (uint64_t A = 1; A < 256; A += 2) {
    uint64_t Inv = inverseMod2N(A, Mask8);
    EXPECT_EQ((A * Inv) & Mask8, 1u) << A;
  }
}

TEST(ModSolver, SolvesPaperTable9Basis) {
  // Basis {x, y, x|y, -1} (Table 9): columns form an invertible matrix over
  // Z/2^w. Solve for the signature of x&y = (0,0,0,1): expected solution
  // from inclusion-exclusion is x + y - (x|y), i.e. (1, 1, -1, 0).
  SquareMatrix A;
  A.N = 4;
  // Rows: truth rows (0,0),(0,1),(1,0),(1,1); columns x, y, x|y, all-ones.
  A.Data = {0, 0, 0, 1, //
            0, 1, 1, 1, //
            1, 0, 1, 1, //
            1, 1, 1, 1};
  uint64_t Mask = ~0ULL;
  std::vector<uint64_t> B = {0, 0, 0, 1};
  auto X = solveInvertibleMod2N(A, B, Mask);
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ((*X)[0], 1u);
  EXPECT_EQ((*X)[1], 1u);
  EXPECT_EQ((*X)[2], (uint64_t)-1);
  EXPECT_EQ((*X)[3], 0u);
}

TEST(ModSolver, DetectsSingularMatrix) {
  SquareMatrix A;
  A.N = 2;
  A.Data = {2, 4, 6, 8}; // all even: singular over Z/2^w
  std::vector<uint64_t> B = {1, 1};
  EXPECT_FALSE(solveInvertibleMod2N(A, B, ~0ULL).has_value());
  EXPECT_FALSE(isInvertibleMod2(A));
}

TEST(ModSolver, RandomRoundTrip) {
  RNG Rng(17);
  uint64_t Mask = 0xffffffffULL;
  for (int Trial = 0; Trial < 50; ++Trial) {
    unsigned N = 1 + (unsigned)Rng.below(6);
    SquareMatrix A;
    A.N = N;
    A.Data.resize(N * N);
    for (auto &V : A.Data)
      V = Rng.next() & Mask;
    // Force invertibility: make the diagonal odd-dominant.
    for (unsigned I = 0; I != N; ++I)
      A.at(I, I) |= 1;
    for (unsigned I = 0; I != N; ++I)
      for (unsigned J = 0; J != N; ++J)
        if (I != J)
          A.at(I, J) &= ~1ULL; // off-diagonal even => det odd
    std::vector<uint64_t> X0(N);
    for (auto &V : X0)
      V = Rng.next() & Mask;
    std::vector<uint64_t> B(N, 0);
    for (unsigned I = 0; I != N; ++I) {
      for (unsigned J = 0; J != N; ++J)
        B[I] += A.at(I, J) * X0[J];
      B[I] &= Mask;
    }
    auto X = solveInvertibleMod2N(A, B, Mask);
    ASSERT_TRUE(X.has_value());
    EXPECT_EQ(*X, X0);
  }
}

TEST(IntKernel, PaperExample1KernelVector) {
  // Example 1: M columns x, y, x^y, x|~y, all-ones; kernel vector
  // proportional to (1, -1, -1, -2, 2).
  IntMatrix M;
  M.Rows = 4;
  M.Cols = 5;
  M.Data = {0, 0, 0, 1, 1, //
            0, 1, 1, 0, 1, //
            1, 0, 1, 1, 1, //
            1, 1, 0, 1, 1};
  auto C = integerKernelVector(M);
  ASSERT_TRUE(C.has_value());
  ASSERT_EQ(C->size(), 5u);
  // Verify M C = 0.
  for (unsigned R = 0; R != 4; ++R) {
    int64_t Sum = 0;
    for (unsigned Col = 0; Col != 5; ++Col)
      Sum += M.at(R, Col) * (*C)[Col];
    EXPECT_EQ(Sum, 0) << "row " << R;
  }
  // The kernel is one-dimensional here, so C is +-(1,-1,-1,-2,2).
  int64_t Sign = (*C)[0] > 0 ? 1 : -1;
  EXPECT_EQ((*C)[0] * Sign, 1);
  EXPECT_EQ((*C)[1] * Sign, -1);
  EXPECT_EQ((*C)[2] * Sign, -1);
  EXPECT_EQ((*C)[3] * Sign, -2);
  EXPECT_EQ((*C)[4] * Sign, 2);
}

TEST(IntKernel, FullRankHasTrivialKernel) {
  IntMatrix M;
  M.Rows = 2;
  M.Cols = 2;
  M.Data = {1, 0, 0, 1};
  EXPECT_FALSE(integerKernelVector(M).has_value());
  EXPECT_EQ(rationalRank(M), 2u);
}

TEST(IntKernel, RandomKernelVectorsAnnihilate) {
  RNG Rng(23);
  for (int Trial = 0; Trial < 100; ++Trial) {
    IntMatrix M;
    M.Rows = 4;
    M.Cols = 6; // more columns than rows: kernel guaranteed
    M.Data.resize(M.Rows * M.Cols);
    for (auto &V : M.Data)
      V = (int64_t)Rng.below(2);
    auto C = integerKernelVector(M, (unsigned)Rng.below(4));
    ASSERT_TRUE(C.has_value());
    bool NonZero = false;
    for (int64_t V : *C)
      NonZero |= V != 0;
    EXPECT_TRUE(NonZero);
    for (unsigned R = 0; R != M.Rows; ++R) {
      int64_t Sum = 0;
      for (unsigned Col = 0; Col != M.Cols; ++Col)
        Sum += M.at(R, Col) * (*C)[Col];
      EXPECT_EQ(Sum, 0);
    }
  }
}

TEST(TruthTablePacked, AgreesWithScalarColumn) {
  Context Ctx(64);
  // Mixes packed-evaluable bitwise forms with arithmetic ones that force
  // the scalar fallback (semantically still bitwise, e.g. -x-1 == ~x).
  // MinVars keeps every referenced variable inside the column's var list.
  struct Case {
    const char *Text;
    unsigned MinVars;
  } Cases[] = {{"x", 1},
               {"~x", 1},
               {"x & y", 2},
               {"x | ~y", 2},
               {"x ^ y ^ z", 3},
               {"(x|y) & ~(y&z)", 3},
               {"-x - 1", 1},
               {"(x ^ y) | (w & z)", 4}};
  for (const Case &C : Cases) {
    const char *Text = C.Text;
    const Expr *E = parseOrDie(Ctx, Text);
    for (unsigned T : {2u, 3u, 4u, 7u}) {
      if (T < C.MinVars)
        continue;
      std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                        Ctx.getVar("z"), Ctx.getVar("w")};
      if (T < 4)
        Vars.resize(T);
      while (Vars.size() < T)
        Vars.push_back(Ctx.getVar("p" + std::to_string(Vars.size())));
      std::vector<uint8_t> Scalar = truthColumn(Ctx, E, Vars);
      std::vector<uint64_t> Packed = truthColumnPacked(Ctx, E, Vars);
      ASSERT_EQ(Packed.size(), (Scalar.size() + 63) / 64);
      for (size_t Row = 0; Row != Scalar.size(); ++Row)
        ASSERT_EQ(Packed[Row >> 6] >> (Row & 63) & 1, Scalar[Row])
            << Text << " with " << T << " vars, row " << Row;
      // Tail bits above 2^T must be zero so packed columns compare equal.
      if (Scalar.size() < 64) {
        EXPECT_EQ(Packed[0] >> Scalar.size(), 0u) << Text;
      }
    }
  }
}

TEST(TruthTablePacked, MatrixMatchesColumns) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  const Expr *Exprs[] = {parseOrDie(Ctx, "x & y"), parseOrDie(Ctx, "y | z"),
                         parseOrDie(Ctx, "x ^ z")};
  std::vector<uint8_t> M = truthTableMatrix(Ctx, Exprs, Vars);
  for (unsigned Col = 0; Col != 3; ++Col) {
    std::vector<uint8_t> C = truthColumn(Ctx, Exprs[Col], Vars);
    for (unsigned Row = 0; Row != 8; ++Row)
      EXPECT_EQ(M[Row * 3 + Col], C[Row]);
  }
}

TEST(ModSolver, InvertibilityBeyond64Columns) {
  // The bit-packed GF(2) elimination spans multiple words now; check both
  // verdicts at N = 100. Identity + strictly-upper noise is unitriangular
  // (invertible); zeroing a diagonal entry of a triangular matrix makes
  // the determinant even (singular).
  const unsigned N = 100;
  SquareMatrix A;
  A.N = N;
  A.Data.resize(size_t(N) * N);
  RNG Rng(7);
  for (unsigned R = 0; R != N; ++R) {
    A.at(R, R) = 1;
    for (unsigned C = R + 1; C != N; ++C)
      A.at(R, C) = Rng.next() & 1;
  }
  EXPECT_TRUE(isInvertibleMod2(A));
  A.at(70, 70) = 0;
  EXPECT_FALSE(isInvertibleMod2(A));
}

} // namespace
