//===- tests/edge_test.cpp - Cross-module edge cases ----------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Edge cases collected across modules: constant-folding in classification,
/// single- and four-variable bases, width-1/width-64 boundaries, parser
/// corner syntax, solver clause handling, and rewriter rule validation.
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "linalg/ModSolver.h"
#include "mba/Basis.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"
#include "peer/PatternRewriter.h"
#include "poly/PolyExpr.h"
#include "sat/Solver.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

//===----------------------------------------------------------------------===//
// Classification with constant-valued subtrees
//===----------------------------------------------------------------------===//

TEST(ClassifyConstFold, VariableFreeSubtreesActAsConstants) {
  Context Ctx(64);
  // ~63 is a constant, so these stay in the cheap categories.
  EXPECT_EQ(classifyMBA(Ctx, parseOrDie(Ctx, "~(60 + 3)")), MBAKind::Linear);
  EXPECT_EQ(classifyMBA(Ctx, Ctx.getNot(Ctx.getConst(63))), MBAKind::Linear);
  // (2*3)*x is linear even though neither Mul side is a literal Const.
  const Expr *X = Ctx.getVar("x");
  const Expr *E = Ctx.getMul(Ctx.getMul(Ctx.getConst(2), Ctx.getConst(3)), X);
  EXPECT_EQ(classifyMBA(Ctx, E), MBAKind::Linear);
  // A constant-valued subtree that folds to -1 is a bitwise atom.
  const Expr *AllOnes = Ctx.getSub(Ctx.getConst(0), Ctx.getConst(1));
  EXPECT_EQ(classifyMBA(Ctx, Ctx.getAnd(X, AllOnes)), MBAKind::Linear);
  EXPECT_TRUE(isPureBitwise(Ctx, Ctx.getAnd(X, AllOnes)));
  // ...but one folding to 3 keeps x & 3 non-poly.
  const Expr *Three = Ctx.getAdd(Ctx.getConst(1), Ctx.getConst(2));
  EXPECT_EQ(classifyMBA(Ctx, Ctx.getAnd(X, Three)), MBAKind::NonPolynomial);
}

TEST(ClassifyConstFold, SimplifierFoldsConstantExpressions) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "~(60 + 3)"))),
            "-64");
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, "(2*3)*x"))),
            "6*x");
}

//===----------------------------------------------------------------------===//
// Bases at the variable-count extremes
//===----------------------------------------------------------------------===//

TEST(BasisEdge, SingleVariableBasis) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Vars[] = {X};
  // sig(~x) = (1, 0): expect -x - 1.
  std::vector<uint64_t> Sig = {1, 0};
  LinearCombo Combo = solveBasis(Ctx, BasisKind::Conjunction, Sig, Vars);
  const Expr *E = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
  EXPECT_TRUE(linearMBAEquivalent(Ctx, E, parseOrDie(Ctx, "~x")));
}

TEST(BasisEdge, FourVariableBasisRoundTrip) {
  Context Ctx(32);
  RNG Rng(88);
  const Expr *Vars[] = {Ctx.getVar("w"), Ctx.getVar("x"), Ctx.getVar("y"),
                        Ctx.getVar("z")};
  for (BasisKind Kind : {BasisKind::Conjunction, BasisKind::Disjunction}) {
    for (int Trial = 0; Trial < 10; ++Trial) {
      std::vector<uint64_t> Sig(16);
      for (auto &S : Sig)
        S = Rng.next() & Ctx.mask();
      LinearCombo Combo = solveBasis(Ctx, Kind, Sig, Vars);
      const Expr *E = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
      EXPECT_EQ(computeSignature(Ctx, E, Vars), Sig) << (int)Kind;
    }
  }
}

TEST(BasisEdge, DisjunctionBasisInvertibleUpTo5Vars) {
  // The Table 9 family must stay invertible over Z/2^w as variables grow.
  for (unsigned T = 1; T <= 5; ++T) {
    unsigned N = 1u << T;
    SquareMatrix A;
    A.N = N;
    A.Data.assign((size_t)N * N, 0);
    for (unsigned Row = 0; Row != N; ++Row)
      for (unsigned Col = 0; Col != N; ++Col)
        A.at(Row, Col) = Col == 0 ? 1 : ((Col & Row) != 0);
    EXPECT_TRUE(isInvertibleMod2(A)) << T << " variables";
  }
}

//===----------------------------------------------------------------------===//
// Signatures at width boundaries
//===----------------------------------------------------------------------===//

TEST(SignatureEdge, Width1SignaturesAreMod2) {
  Context Ctx(1);
  const Expr *E = parseOrDie(Ctx, "x + y"); // == x ^ y at width 1
  const Expr *F = parseOrDie(Ctx, "x ^ y");
  EXPECT_TRUE(linearMBAEquivalent(Ctx, E, F));
  // And x - y == x + y mod 2.
  EXPECT_TRUE(linearMBAEquivalent(Ctx, parseOrDie(Ctx, "x - y"), E));
}

TEST(SignatureEdge, Width64FullMaskConstants) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x & -1");
  EXPECT_TRUE(linearMBAEquivalent(Ctx, E, Ctx.getVar("x")));
}

//===----------------------------------------------------------------------===//
// Parser corner syntax
//===----------------------------------------------------------------------===//

TEST(ParserEdge, WhitespaceEverywhere) {
  Context Ctx(64);
  const Expr *A = parseOrDie(Ctx, "  x  +  y  ");
  const Expr *B = parseOrDie(Ctx, "x+y");
  EXPECT_EQ(A, B);
}

TEST(ParserEdge, LongIdentifiersAndUnderscores) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "_very_long_variable_name42 + _");
  auto Vars = collectVariables(E);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_STREQ(Vars[0]->varName(), "_");
  EXPECT_STREQ(Vars[1]->varName(), "_very_long_variable_name42");
}

TEST(ParserEdge, HexPrefixWithoutDigitsFails) {
  Context Ctx(64);
  EXPECT_FALSE(parseExpr(Ctx, "0x").ok());
  EXPECT_FALSE(parseExpr(Ctx, "0xg").ok());
  // Plain 0 followed by x parses as 0 then fails on trailing junk.
  EXPECT_FALSE(parseExpr(Ctx, "0 x").ok());
}

TEST(ParserEdge, DeeplyNestedParentheses) {
  Context Ctx(64);
  std::string Text(1000, '(');
  Text += "x";
  Text += std::string(1000, ')');
  ParseResult R = parseExpr(Ctx, Text);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.E, Ctx.getVar("x"));
}

TEST(ParserEdge, ConstantWrapAroundAtWidth) {
  Context Ctx(8);
  EXPECT_EQ(parseOrDie(Ctx, "256")->constValue(), 0u);
  EXPECT_EQ(parseOrDie(Ctx, "257")->constValue(), 1u);
  EXPECT_EQ(parseOrDie(Ctx, "-1")->constValue(), 0xffu);
}

//===----------------------------------------------------------------------===//
// SAT solver clause handling
//===----------------------------------------------------------------------===//

TEST(SatEdge, DuplicateLiteralsAreDeduped) {
  using namespace mba::sat;
  SatSolver S;
  Var A = S.newVar();
  EXPECT_TRUE(S.addClause({Lit(A, false), Lit(A, false), Lit(A, false)}));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.modelValue(A));
}

TEST(SatEdge, AddClauseAfterSolveIsIncremental) {
  using namespace mba::sat;
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  // Constrain further and re-solve.
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({Lit(B, true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(SatEdge, PropagationBudgetStops) {
  using namespace mba::sat;
  // A long implication chain: x0 -> x1 -> ... -> xN, all forced.
  SatSolver S;
  const unsigned N = 200;
  std::vector<Var> X(N);
  for (auto &V : X)
    V = S.newVar();
  for (unsigned I = 0; I + 1 < N; ++I)
    S.addClause({Lit(X[I], true), Lit(X[I + 1], false)});
  Budget Limits;
  Limits.MaxPropagations = 3; // far too few to finish after the decision
  SatResult R = S.solve(Limits);
  // Either it finished trivially before the budget or returned Unknown;
  // with a fresh chain and one decision it must hit the budget.
  EXPECT_EQ(R, SatResult::Unknown);
  EXPECT_EQ(S.solve(), SatResult::Sat); // full budget succeeds
}

//===----------------------------------------------------------------------===//
// Pattern-rewriter rule validation
//===----------------------------------------------------------------------===//

TEST(RewriterRules, EveryLibraryRuleIsAnIdentity) {
  // Validate the whole built-in library semantically: instantiate each
  // rule's wildcards with random expressions and compare sides.
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx); // construct to assert library parses
  (void)Rewriter;
  // The library is not exposed directly; probe through rule-shaped inputs
  // whose wildcards are bound to nontrivial expressions.
  const char *Bindings[][2] = {
      {"(z*3 - 1)", "(w ^ 5)"},
      {"(w & z)", "(z + z)"},
  };
  const char *Templates[] = {
      "(A&~B)+B",     "(A|B)-(A&B)",  "(A^B)+2*(A&B)", "(A|B)+(A&B)",
      "2*(A|B)-(A^B)", "A+B-(A|B)",    "A+B-(A&B)",     "A+B-2*(A&B)",
      "(A&~B)-(~A&B)", "(A^B)-2*(~A&B)", "~A+1",        "~(A-1)",
      "(A^B)+(A&B)",  "(A|B)-B",      "(~A&B)+(A&B)",  "~(-A)",
  };
  RNG Rng(61);
  for (auto &Bind : Bindings) {
    for (const char *Template : Templates) {
      std::string Text;
      for (const char *P = Template; *P; ++P) {
        if (*P == 'A')
          Text += Bind[0];
        else if (*P == 'B')
          Text += Bind[1];
        else
          Text += *P;
      }
      const Expr *E = parseOrDie(Ctx, Text);
      const Expr *R = Rewriter.simplify(E);
      for (int I = 0; I < 60; ++I) {
        uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
        ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals)) << Text;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Metrics at extremes
//===----------------------------------------------------------------------===//

TEST(MetricsEdge, SharedDagAlternationSaturates) {
  // Exponential tree size through sharing must not overflow the counter.
  Context Ctx(64);
  const Expr *E = Ctx.getAdd(Ctx.getAnd(Ctx.getVar("x"), Ctx.getVar("y")),
                             Ctx.getVar("z"));
  for (int I = 0; I < 80; ++I)
    E = Ctx.getAdd(E, E); // doubles the tree each step
  uint64_t Alt = mbaAlternation(E);
  EXPECT_GT(Alt, 0u); // saturated or huge, but defined
  uint64_t Terms = countTerms(E);
  EXPECT_GT(Terms, 0u);
}

TEST(MetricsEdge, MaxCoefficientSignedBoundary) {
  Context Ctx(8);
  // 0x80 = -128 at width 8: magnitude 128.
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "x + 128")), 128u);
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "x + 127")), 127u);
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "x - 127")), 127u);
}

//===----------------------------------------------------------------------===//
// Simplifier stress corners
//===----------------------------------------------------------------------===//

TEST(SimplifierEdge, ManyDistinctTempsInNonPoly) {
  // Each bitwise operand is a distinct arithmetic expression: abstraction
  // creates many temps but stays within the signature budget or falls back
  // gracefully.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  std::string Text = "((x+1)&y) + ((x+2)&y) + ((x+3)&y) + ((x+4)&y)"
                     " + ((x+5)&y) + ((x+6)&y) + ((x+7)&y) + ((x+8)&y)"
                     " + ((x+9)&y) + ((x+10)&y) + ((x+11)&y)";
  const Expr *E = parseOrDie(Ctx, Text);
  const Expr *R = Solver.simplify(E);
  RNG Rng(71);
  for (int I = 0; I < 60; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
  }
}

TEST(SimplifierEdge, ZeroResultFromBigCancellation) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  // E - E with E obfuscated-looking: must collapse to exactly 0.
  const Expr *R = Solver.simplify(parseOrDie(
      Ctx, "(2*(x|y) - (~x&y) - (x&~y)) - ((x^y) + 2*(x&y))"));
  EXPECT_EQ(printExpr(Ctx, R), "0");
}

TEST(SimplifierEdge, MaxSignatureVarsOneStillWorks) {
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.MaxSignatureVars = 1;
  MBASolver Solver(Ctx, Opts);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  const Expr *R = Solver.simplify(E);
  RNG Rng(81);
  for (int I = 0; I < 60; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
  }
}

} // namespace
