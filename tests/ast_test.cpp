//===- tests/ast_test.cpp - AST, parser, printer, evaluator tests --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(Context, InterningDeduplicatesNodes) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  EXPECT_EQ(X, Ctx.getVar("x"));
  EXPECT_NE(X, Y);
  EXPECT_EQ(Ctx.getAdd(X, Y), Ctx.getAdd(X, Y));
  EXPECT_NE(Ctx.getAdd(X, Y), Ctx.getAdd(Y, X)); // not canonicalized
  EXPECT_EQ(Ctx.getConst(5), Ctx.getConst(5));
  EXPECT_EQ(Ctx.getNot(X), Ctx.getNot(X));
}

TEST(Context, WidthMaskAndTruncation) {
  Context Ctx(8);
  EXPECT_EQ(Ctx.mask(), 0xffu);
  EXPECT_EQ(Ctx.getConst(0x1ff)->constValue(), 0xffu);
  EXPECT_EQ(Ctx.toSigned(0xff), -1);
  EXPECT_EQ(Ctx.toSigned(0x7f), 127);
  EXPECT_EQ(Ctx.toSigned(0x80), -128);
}

TEST(Context, Width64Mask) {
  Context Ctx(64);
  EXPECT_EQ(Ctx.mask(), ~0ULL);
  EXPECT_EQ(Ctx.toSigned(~0ULL), -1);
}

TEST(Context, VarIndicesAreDense) {
  Context Ctx(32);
  EXPECT_EQ(Ctx.getVar("a")->varIndex(), 0u);
  EXPECT_EQ(Ctx.getVar("b")->varIndex(), 1u);
  EXPECT_EQ(Ctx.getVar("a")->varIndex(), 0u);
  EXPECT_EQ(Ctx.numVars(), 2u);
  EXPECT_EQ(Ctx.getVarByIndex(1), Ctx.getVar("b"));
}

TEST(Context, RebuildReturnsSameNodeWhenUnchanged) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  const Expr *E = Ctx.getAdd(X, Y);
  EXPECT_EQ(Ctx.rebuild(E, X, Y), E);
  EXPECT_EQ(Ctx.rebuild(E, Y, X), Ctx.getAdd(Y, X));
  const Expr *N = Ctx.getNot(X);
  EXPECT_EQ(Ctx.rebuild(N, X, nullptr), N);
}

TEST(ExprKindPredicates, Classification) {
  EXPECT_TRUE(isArithmeticKind(ExprKind::Add));
  EXPECT_TRUE(isArithmeticKind(ExprKind::Neg));
  EXPECT_FALSE(isArithmeticKind(ExprKind::And));
  EXPECT_TRUE(isBitwiseKind(ExprKind::Not));
  EXPECT_TRUE(isBitwiseKind(ExprKind::Xor));
  EXPECT_FALSE(isBitwiseKind(ExprKind::Mul));
  EXPECT_TRUE(isCommutativeKind(ExprKind::Mul));
  EXPECT_FALSE(isCommutativeKind(ExprKind::Sub));
}

TEST(Evaluator, BasicOperators) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  uint64_t Vals[] = {7, 12};
  EXPECT_EQ(evaluate(Ctx, Ctx.getAdd(X, Y), Vals), 19u);
  EXPECT_EQ(evaluate(Ctx, Ctx.getSub(X, Y), Vals), (uint64_t)-5);
  EXPECT_EQ(evaluate(Ctx, Ctx.getMul(X, Y), Vals), 84u);
  EXPECT_EQ(evaluate(Ctx, Ctx.getAnd(X, Y), Vals), 4u);
  EXPECT_EQ(evaluate(Ctx, Ctx.getOr(X, Y), Vals), 15u);
  EXPECT_EQ(evaluate(Ctx, Ctx.getXor(X, Y), Vals), 11u);
  EXPECT_EQ(evaluate(Ctx, Ctx.getNot(X), Vals), ~7ULL);
  EXPECT_EQ(evaluate(Ctx, Ctx.getNeg(X), Vals), (uint64_t)-7);
}

TEST(Evaluator, NarrowWidthWraps) {
  Context Ctx(8);
  const Expr *X = Ctx.getVar("x");
  uint64_t Vals[] = {200};
  EXPECT_EQ(evaluate(Ctx, Ctx.getAdd(X, X), Vals), (200 + 200) & 0xffu);
  EXPECT_EQ(evaluate(Ctx, Ctx.getMul(X, X), Vals), (200 * 200) & 0xffu);
}

TEST(Evaluator, MissingVariableIsZero) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  uint64_t Vals[] = {3}; // y unbound
  EXPECT_EQ(evaluate(Ctx, Ctx.getOr(X, Y), Vals), 3u);
}

TEST(Evaluator, MapOverload) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  std::unordered_map<const Expr *, uint64_t> Vals = {{X, 41}};
  EXPECT_EQ(evaluate(Ctx, Ctx.getAdd(X, Ctx.getOne()), Vals), 42u);
}

TEST(Evaluator, HackersDelightIdentities) {
  // Classic identities from the paper's Background section hold for random
  // inputs: x | y == (x & ~y) + y and x ^ y == (x | y) - (x & y).
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  const Expr *Lhs1 = Ctx.getOr(X, Y);
  const Expr *Rhs1 = Ctx.getAdd(Ctx.getAnd(X, Ctx.getNot(Y)), Y);
  const Expr *Lhs2 = Ctx.getXor(X, Y);
  const Expr *Rhs2 = Ctx.getSub(Ctx.getOr(X, Y), Ctx.getAnd(X, Y));
  RNG Rng(1);
  for (int I = 0; I < 100; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    EXPECT_EQ(evaluate(Ctx, Lhs1, Vals), evaluate(Ctx, Rhs1, Vals));
    EXPECT_EQ(evaluate(Ctx, Lhs2, Vals), evaluate(Ctx, Rhs2, Vals));
  }
}

TEST(Parser, PrecedenceMatchesPython) {
  Context Ctx(64);
  // '&' binds looser than '+': x&y+2 == x & (y+2).
  const Expr *E = parseOrDie(Ctx, "x&y+2");
  ASSERT_EQ(E->kind(), ExprKind::And);
  EXPECT_EQ(E->rhs()->kind(), ExprKind::Add);
  // '|' loosest, '^' between '|' and '&'.
  const Expr *F = parseOrDie(Ctx, "a|b^c&d");
  ASSERT_EQ(F->kind(), ExprKind::Or);
  EXPECT_EQ(F->rhs()->kind(), ExprKind::Xor);
  ASSERT_EQ(F->rhs()->rhs()->kind(), ExprKind::And);
}

TEST(Parser, UnaryOperators) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "~x * -y");
  ASSERT_EQ(E->kind(), ExprKind::Mul);
  EXPECT_EQ(E->lhs()->kind(), ExprKind::Not);
  EXPECT_EQ(E->rhs()->kind(), ExprKind::Neg);
  // Double negation parses.
  const Expr *F = parseOrDie(Ctx, "--x");
  ASSERT_EQ(F->kind(), ExprKind::Neg);
  EXPECT_EQ(F->operand()->kind(), ExprKind::Neg);
}

TEST(Parser, NegativeConstantsFold) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "-1");
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), ~0ULL);
  const Expr *F = parseOrDie(Ctx, "~0");
  ASSERT_TRUE(F->isConst());
  EXPECT_EQ(F->constValue(), ~0ULL);
}

TEST(Parser, HexLiterals) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "0xdeadBEEF");
  ASSERT_TRUE(E->isConst());
  EXPECT_EQ(E->constValue(), 0xdeadbeefULL);
}

TEST(Parser, SubtractionIsLeftAssociative) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "a-b-c");
  ASSERT_EQ(E->kind(), ExprKind::Sub);
  EXPECT_EQ(E->lhs()->kind(), ExprKind::Sub);
  uint64_t Vals[] = {10, 3, 2};
  EXPECT_EQ(evaluate(Ctx, E, Vals), 5u);
}

TEST(Parser, PaperFigure1Expression) {
  Context Ctx(64);
  const Expr *E =
      parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  const Expr *XY = parseOrDie(Ctx, "x*y");
  RNG Rng(7);
  for (int I = 0; I < 200; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, XY, Vals));
  }
}

TEST(Parser, ErrorsAreReported) {
  Context Ctx(64);
  EXPECT_FALSE(parseExpr(Ctx, "x +").ok());
  EXPECT_FALSE(parseExpr(Ctx, "(x").ok());
  EXPECT_FALSE(parseExpr(Ctx, "x $ y").ok());
  EXPECT_FALSE(parseExpr(Ctx, "").ok());
  EXPECT_FALSE(parseExpr(Ctx, "x y").ok());
  ParseResult R = parseExpr(Ctx, "x + $");
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(R.Error.empty());
  EXPECT_EQ(R.ErrorPos, 4u);
}

TEST(Printer, ConstantsPrintSigned) {
  Context Ctx(64);
  EXPECT_EQ(printExpr(Ctx, Ctx.getAllOnes()), "-1");
  EXPECT_EQ(printExpr(Ctx, Ctx.getConst(42)), "42");
}

TEST(Printer, MinimalParentheses) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  const Expr *Z = Ctx.getVar("z");
  EXPECT_EQ(printExpr(Ctx, Ctx.getAdd(Ctx.getMul(X, Y), Z)), "x*y+z");
  EXPECT_EQ(printExpr(Ctx, Ctx.getMul(Ctx.getAdd(X, Y), Z)), "(x+y)*z");
  EXPECT_EQ(printExpr(Ctx, Ctx.getAnd(Ctx.getAdd(X, Y), Z)), "x+y&z");
  EXPECT_EQ(printExpr(Ctx, Ctx.getAdd(Ctx.getAnd(X, Y), Z)), "(x&y)+z");
  EXPECT_EQ(printExpr(Ctx, Ctx.getSub(X, Ctx.getSub(Y, Z))), "x-(y-z)");
  EXPECT_EQ(printExpr(Ctx, Ctx.getSub(Ctx.getSub(X, Y), Z)), "x-y-z");
}

TEST(Printer, RoundTripPreservesSemantics) {
  Context Ctx(64);
  RNG Rng(99);
  const char *Samples[] = {
      "x+2*y+(x&y)-3*(x^y)+4",
      "2*(x|y)-(~x&y)-(x&~y)",
      "(x&~y)*(~x&y)+(x&y)*(x|y)",
      "((x&~y-~x&y)|z)+((x&~y-~x&y)&z)",
      "~(x-1)",
      "-x-1",
      "x^y^z^w",
  };
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    std::string Printed = printExpr(Ctx, E);
    const Expr *F = parseOrDie(Ctx, Printed);
    for (int I = 0; I < 50; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, F, Vals))
          << "sample: " << S << " printed: " << Printed;
    }
  }
}

TEST(ExprUtils, CollectVariablesSortsByName) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "b + a*c + a");
  auto Vars = collectVariables(E);
  ASSERT_EQ(Vars.size(), 3u);
  EXPECT_STREQ(Vars[0]->varName(), "a");
  EXPECT_STREQ(Vars[1]->varName(), "b");
  EXPECT_STREQ(Vars[2]->varName(), "c");
}

TEST(ExprUtils, ContainsSubExpr) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(x&y) + z");
  const Expr *Sub = parseOrDie(Ctx, "x&y");
  const Expr *Other = parseOrDie(Ctx, "x|y");
  EXPECT_TRUE(containsSubExpr(E, Sub));
  EXPECT_FALSE(containsSubExpr(E, Other));
}

TEST(ExprUtils, CountNodes) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *S = Ctx.getAdd(X, X); // shared leaf
  EXPECT_EQ(countDagNodes(S), 2u);
  EXPECT_EQ(countTreeNodes(S), 3u);
}

TEST(ExprUtils, SubstituteReplacesAllOccurrences) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(x-y)|z");
  const Expr *T = Ctx.getVar("t");
  const Expr *XY = parseOrDie(Ctx, "x-y");
  std::unordered_map<const Expr *, const Expr *> Map = {{XY, T}};
  const Expr *R = substitute(Ctx, E, Map);
  EXPECT_EQ(R, parseOrDie(Ctx, "t|z"));
}

TEST(ExprUtils, SubstituteIsNonRecursive) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  // x -> x+1 must not loop on the substituted x.
  std::unordered_map<const Expr *, const Expr *> Map = {
      {X, Ctx.getAdd(X, Ctx.getOne())}};
  const Expr *R = substitute(Ctx, Ctx.getMul(X, X), Map);
  EXPECT_EQ(R, parseOrDie(Ctx, "(x+1)*(x+1)"));
}

TEST(ExprUtils, RewriteBottomUpFoldsConstants) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(2+3)*x");
  const Expr *R = rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    if (N->isBinary() && N->lhs()->isConst() && N->rhs()->isConst()) {
      uint64_t A = N->lhs()->constValue(), B = N->rhs()->constValue();
      if (N->kind() == ExprKind::Add)
        return Ctx.getConst(A + B);
    }
    return N;
  });
  EXPECT_EQ(R, parseOrDie(Ctx, "5*x"));
}

TEST(ExprUtils, DeepExpressionDoesNotOverflowStack) {
  Context Ctx(64);
  const Expr *E = Ctx.getVar("x");
  for (int I = 0; I < 200000; ++I)
    E = Ctx.getAdd(E, Ctx.getOne());
  EXPECT_EQ(countDagNodes(E), 200002u);
}

TEST(ExprUtils, CloneExprPreservesStructureAcrossContexts) {
  Context Src(32);
  const Expr *E = parseOrDie(Src, "2*(x|y) - (~x&y) + (x^y)*(x^y) - 7");
  Context Dst(32);
  // Different interning history in the destination: x/y get new indices.
  Dst.getVar("q");
  const Expr *C = cloneExpr(Dst, E);
  EXPECT_EQ(printExpr(Src, E), printExpr(Dst, C));
  for (uint64_t X : {0ull, 1ull, 0xFFFFFFFFull, 0x1234ull})
    for (uint64_t Y : {0ull, 7ull, 0x80000000ull}) {
      std::vector<uint64_t> SrcVals(Src.numVars(), 0);
      SrcVals[Src.getVar("x")->varIndex()] = X;
      SrcVals[Src.getVar("y")->varIndex()] = Y;
      std::vector<uint64_t> DstVals(Dst.numVars(), 0);
      DstVals[Dst.getVar("x")->varIndex()] = X;
      DstVals[Dst.getVar("y")->varIndex()] = Y;
      EXPECT_EQ(evaluate(Src, E, SrcVals), evaluate(Dst, C, DstVals));
    }
}

TEST(ExprUtils, CloneExprSharesClonedSubtrees) {
  Context Src(64);
  const Expr *X = Src.getVar("x");
  const Expr *Shared = Src.getMul(X, X);
  const Expr *E = Src.getAdd(Shared, Src.getNot(Shared));
  Context Dst(64);
  const Expr *C = cloneExpr(Dst, E);
  // Interning in the destination re-establishes the sharing.
  EXPECT_EQ(C->lhs(), C->rhs()->operand());
  EXPECT_EQ(countDagNodes(C), countDagNodes(E));
}

TEST(ExprUtils, CloneExprDeepTowerDoesNotOverflowStack) {
  Context Src(64);
  const Expr *E = Src.getVar("x");
  for (int I = 0; I < 200000; ++I)
    E = Src.getAdd(E, Src.getOne());
  Context Dst(64);
  EXPECT_EQ(countDagNodes(cloneExpr(Dst, E)), 200002u);
}

} // namespace
