//===- tests/ir_program_test.cpp - SSA program IR tests -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include "ast/Printer.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

const char *DiamondText = R"(
# opaque diamond over two parameters
func @demo(x, y) {
entry:
  p = (x | 1) & 1
  br p, left, right
left:
  a = x + y
  jmp join
right:
  b = x - y
  jmp join
join:
  m = phi [left: a], [right: b]
  ret m
}
)";

Diag parseFail(Context &Ctx, const std::string &Text) {
  Diag D;
  auto P = Program::parse(Ctx, Text, &D);
  EXPECT_FALSE(P.has_value()) << "expected parse failure for:\n" << Text;
  return D;
}

TEST(IRParse, ParsesDiamond) {
  Context Ctx(64);
  Diag D;
  auto P = Program::parse(Ctx, DiamondText, &D);
  ASSERT_TRUE(P.has_value()) << D.str();
  ASSERT_EQ(P->Functions.size(), 1u);
  const Function &F = P->Functions.front();
  EXPECT_EQ(F.Name, "demo");
  ASSERT_EQ(F.Params.size(), 2u);
  EXPECT_STREQ(F.Params[0]->varName(), "x");
  ASSERT_EQ(F.numBlocks(), 4u);
  EXPECT_EQ(F.entry().Name, "entry");
  EXPECT_EQ(F.findBlock("join"), 3);
  EXPECT_EQ(F.findBlock("nope"), -1);
  const BasicBlock &Join = F.Blocks[3];
  ASSERT_EQ(Join.Phis.size(), 1u);
  EXPECT_STREQ(Join.Phis[0].Dest->varName(), "m");
  ASSERT_EQ(Join.Phis[0].Incoming.size(), 2u);
  EXPECT_EQ(Join.Phis[0].Incoming[0].first, 1u); // left
  EXPECT_EQ(Join.Phis[0].Incoming[1].first, 2u); // right
}

TEST(IRParse, ForwardLabelReferencesResolve) {
  // Regression: terminator/phi label slots must survive the block vector
  // growing while later blocks are parsed (an early version stored raw
  // pointers into F.Blocks and silently resolved every target to 0).
  Context Ctx(64);
  auto P = Program::parse(Ctx, DiamondText);
  ASSERT_TRUE(P.has_value());
  const Function &F = P->Functions.front();
  EXPECT_EQ(F.Blocks[0].Term.Succs[0], 1u); // entry -> left (taken)
  EXPECT_EQ(F.Blocks[0].Term.Succs[1], 2u); // entry -> right
  EXPECT_EQ(F.Blocks[1].Term.Succs[0], 3u); // left -> join
  EXPECT_EQ(F.Blocks[2].Term.Succs[0], 3u); // right -> join
}

TEST(IRParse, MultipleFunctionsAndLookup) {
  Context Ctx(64);
  auto P = Program::parse(Ctx,
                          "func @a(x) {\nentry:\n  ret x\n}\n"
                          "func @b(y) {\nentry:\n  ret y + 1\n}\n");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Functions.size(), 2u);
  EXPECT_NE(P->findFunction("a"), nullptr);
  EXPECT_NE(P->findFunction("b"), nullptr);
  EXPECT_EQ(P->findFunction("c"), nullptr);
}

TEST(IRParse, NegativePhiConstants) {
  Context Ctx(64);
  auto P = Program::parse(Ctx,
                          "func @f(x) {\nentry:\n  br x, a, b\n"
                          "a:\n  jmp join\nb:\n  jmp join\n"
                          "join:\n  m = phi [a: -1], [b: 3]\n  ret m\n}\n");
  ASSERT_TRUE(P.has_value());
  const PhiNode &Phi = P->Functions[0].Blocks[3].Phis[0];
  ASSERT_TRUE(Phi.Incoming[0].second->isConst());
  EXPECT_EQ(Phi.Incoming[0].second->constValue(), UINT64_MAX);
  EXPECT_EQ(Phi.Incoming[1].second->constValue(), 3u);
}

TEST(IRPrint, RoundTripIsCanonical) {
  Context Ctx(64);
  auto P = Program::parse(Ctx, DiamondText);
  ASSERT_TRUE(P.has_value());
  std::string Printed = P->print(Ctx);
  Diag D;
  auto P2 = Program::parse(Ctx, Printed, &D);
  ASSERT_TRUE(P2.has_value()) << D.str();
  EXPECT_EQ(P2->print(Ctx), Printed);
}

//===----------------------------------------------------------------------===//
// Diagnostics: every rejection carries line, column, and offending token.
//===----------------------------------------------------------------------===//

TEST(IRDiag, TopLevelMustBeFunc) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "garbage here\n");
  EXPECT_EQ(D.Line, 1u);
  EXPECT_EQ(D.Col, 1u);
  EXPECT_EQ(D.Token, "garbage");
  EXPECT_NE(D.Message.find("expected 'func'"), std::string::npos);
  EXPECT_NE(D.str().find("line 1, col 1"), std::string::npos);
  EXPECT_NE(D.str().find("near 'garbage'"), std::string::npos);
}

TEST(IRDiag, MissingAtBeforeName) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func f(x) {\n");
  EXPECT_EQ(D.Line, 1u);
  EXPECT_NE(D.Message.find("'@'"), std::string::npos);
}

TEST(IRDiag, DuplicateParameter) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x, x) {\nentry:\n  ret x\n}\n");
  EXPECT_EQ(D.Line, 1u);
  EXPECT_EQ(D.Token, "x");
  EXPECT_EQ(D.Col, 12u);
  EXPECT_NE(D.Message.find("duplicate parameter"), std::string::npos);
}

TEST(IRDiag, BadExpressionPointsAtColumn) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  a = x +\n  ret a\n}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_GT(D.Col, 6u); // inside the expression, past 'a ='
}

TEST(IRDiag, MissingTerminatorBeforeLabel) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  a = x\nnext:\n  ret a\n}\n");
  EXPECT_EQ(D.Line, 4u);
  EXPECT_EQ(D.Token, "next");
  EXPECT_NE(D.Message.find("no terminator"), std::string::npos);
}

TEST(IRDiag, MissingTerminatorBeforeClose) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  a = x\n}\n");
  EXPECT_NE(D.Message.find("no terminator"), std::string::npos);
}

TEST(IRDiag, UnknownLabel) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  jmp nowhere\n}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_EQ(D.Col, 7u);
  EXPECT_EQ(D.Token, "nowhere");
  EXPECT_NE(D.Message.find("unknown block label"), std::string::npos);
}

TEST(IRDiag, DuplicateBlockLabel) {
  Context Ctx(64);
  Diag D = parseFail(
      Ctx, "func @f(x) {\nentry:\n  jmp entry\nentry:\n  ret x\n}\n");
  EXPECT_EQ(D.Line, 4u);
  EXPECT_EQ(D.Token, "entry");
  EXPECT_NE(D.Message.find("duplicate block label"), std::string::npos);
}

TEST(IRDiag, RedefinitionViolatesSSA) {
  Context Ctx(64);
  Diag D = parseFail(
      Ctx, "func @f(x) {\nentry:\n  a = x\n  a = x + 1\n  ret a\n}\n");
  EXPECT_EQ(D.Line, 4u);
  EXPECT_EQ(D.Token, "a");
  EXPECT_NE(D.Message.find("redefinition of 'a'"), std::string::npos);
  EXPECT_NE(D.Message.find("line 3"), std::string::npos);
}

TEST(IRDiag, ParameterRedefinition) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  x = 1\n  ret x\n}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_NE(D.Message.find("redefinition"), std::string::npos);
}

TEST(IRDiag, EntryBlockCannotHavePhis) {
  Context Ctx(64);
  Diag D = parseFail(
      Ctx, "func @f(x) {\nentry:\n  m = phi [entry: x]\n  ret m\n}\n");
  EXPECT_NE(D.Message.find("entry block cannot have phi"), std::string::npos);
}

TEST(IRDiag, PhiIncomingMustBePredecessor) {
  // 'lost' has no edge to 'next', so its incoming is a verify error.
  Context Ctx(64);
  Diag D = parseFail(Ctx,
                     "func @g(x) {\nentry:\n  jmp next\n"
                     "lost:\n  ret x\n"
                     "next:\n  m = phi [entry: x], [lost: x]\n  ret m\n}\n");
  EXPECT_NE(D.Message.find("not a predecessor"), std::string::npos);
}

TEST(IRDiag, PhiMissingIncoming) {
  Context Ctx(64);
  Diag D = parseFail(Ctx,
                     "func @f(x) {\nentry:\n  br x, a, b\n"
                     "a:\n  jmp join\nb:\n  jmp join\n"
                     "join:\n  m = phi [a: x]\n  ret m\n}\n");
  EXPECT_NE(D.Message.find("missing an incoming"), std::string::npos);
  EXPECT_NE(D.Message.find("'b'"), std::string::npos);
}

TEST(IRDiag, PhiDuplicateIncoming) {
  Context Ctx(64);
  Diag D = parseFail(Ctx,
                     "func @f(x) {\nentry:\n  br x, a, b\n"
                     "a:\n  jmp join\nb:\n  jmp join\n"
                     "join:\n  m = phi [a: x], [a: x]\n  ret m\n}\n");
  EXPECT_NE(D.Message.find("twice"), std::string::npos);
}

TEST(IRDiag, UseOfUndefinedValue) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  ret q\n}\n");
  EXPECT_EQ(D.Line, 3u);
  EXPECT_EQ(D.Token, "q");
  EXPECT_NE(D.Message.find("use of undefined value 'q'"), std::string::npos);
}

TEST(IRDiag, UseNotDominatedByDef) {
  // 'a' is defined only on the left path but used at the join.
  Context Ctx(64);
  Diag D = parseFail(Ctx,
                     "func @f(x) {\nentry:\n  br x, left, join\n"
                     "left:\n  a = x + 1\n  jmp join\n"
                     "join:\n  ret a\n}\n");
  EXPECT_NE(D.Message.find("not dominated"), std::string::npos);
}

TEST(IRDiag, UnexpectedEndOfInput) {
  Context Ctx(64);
  Diag D = parseFail(Ctx, "func @f(x) {\nentry:\n  ret x\n");
  EXPECT_NE(D.Message.find("unexpected end of input"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(IRInterp, StraightLine) {
  Context Ctx(64);
  auto P = Program::parse(
      Ctx, "func @f(x, y) {\nentry:\n  a = x + y\n  b = a * 2\n  ret b\n}\n");
  ASSERT_TRUE(P.has_value());
  uint64_t Args[] = {3, 4};
  auto R = interpretFunction(Ctx, P->Functions[0], Args);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 14u);
}

TEST(IRInterp, LoopSumsViaPhis) {
  Context Ctx(64);
  auto P = Program::parse(Ctx,
                          "func @sum(n) {\nentry:\n  jmp head\n"
                          "head:\n"
                          "  i = phi [entry: 0], [body: i2]\n"
                          "  s = phi [entry: 0], [body: s2]\n"
                          "  c = i - n\n"
                          "  br c, body, done\n"
                          "body:\n  i2 = i + 1\n  s2 = s + i\n  jmp head\n"
                          "done:\n  ret s\n}\n");
  ASSERT_TRUE(P.has_value());
  for (uint64_t N : {0u, 1u, 5u, 10u}) {
    uint64_t Args[] = {N};
    auto R = interpretFunction(Ctx, P->Functions[0], Args);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(*R, N * (N - 1) / 2) << "n=" << N;
  }
}

TEST(IRInterp, PhisEvaluateInParallel) {
  // One trip through the back edge swaps a and b simultaneously. A
  // sequential (wrong) evaluation would read the already-updated 'a'.
  Context Ctx(64);
  auto P = Program::parse(Ctx,
                          "func @swap(x, y) {\nentry:\n  jmp head\n"
                          "head:\n"
                          "  a = phi [entry: x], [head: b]\n"
                          "  b = phi [entry: y], [head: a]\n"
                          "  t = phi [entry: 0], [head: t2]\n"
                          "  t2 = t + 1\n"
                          "  c = 2 - t2\n"
                          "  br c, head, done\n"
                          "done:\n  r = a + 3*b\n  ret r\n}\n");
  ASSERT_TRUE(P.has_value());
  uint64_t Args[] = {11, 7};
  auto R = interpretFunction(Ctx, P->Functions[0], Args);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 7u + 3u * 11u); // parallel: a=y, b=x after one swap
}

TEST(IRInterp, FuelStopsRunawayLoops) {
  Context Ctx(64);
  auto P = Program::parse(Ctx, "func @spin(x) {\nentry:\n  jmp entry\n}\n");
  ASSERT_TRUE(P.has_value());
  uint64_t Args[] = {1};
  EXPECT_FALSE(interpretFunction(Ctx, P->Functions[0], Args, 64).has_value());
}

TEST(IRInterp, MissingArgsDefaultToZero) {
  Context Ctx(64);
  auto P = Program::parse(Ctx, "func @f(x, y) {\nentry:\n  ret x + y\n}\n");
  ASSERT_TRUE(P.has_value());
  uint64_t Args[] = {9};
  auto R = interpretFunction(Ctx, P->Functions[0], Args);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, 9u);
}

TEST(IRMetrics, CountsNodesAndInsts) {
  Context Ctx(64);
  auto P = Program::parse(Ctx, DiamondText);
  ASSERT_TRUE(P.has_value());
  const Function &F = P->Functions.front();
  // 4 = 3 instructions + 1 phi.
  EXPECT_EQ(countFunctionInsts(F), 4u);
  // Nodes: every inst rhs, branch cond, ret value, plus 1 + #incomings
  // per phi — just pin that it is stable and nontrivial.
  EXPECT_GT(countFunctionNodes(F), 10u);
}

} // namespace
