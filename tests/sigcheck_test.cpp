//===- tests/sigcheck_test.cpp - MBA-theory checker tests -----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"

#include "ast/Parser.h"
#include "gen/Corpus.h"
#include "gen/SeedIdentities.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(SigCheck, ProvesLinearIdentitiesInstantly) {
  Context Ctx(64);
  auto C = makeSignatureChecker();
  EXPECT_EQ(C->name(), "SigCheck");
  struct Pair {
    const char *L, *R;
  } Pairs[] = {
      {"(x&~y) + y", "x|y"},
      {"2*(x|y) - (~x&y) - (x&~y)", "x + y"},
      {"(x^y) + 2*(x|~y) + 2", "x - y"},
  };
  for (auto &P : Pairs) {
    CheckResult R = C->check(Ctx, parseOrDie(Ctx, P.L), parseOrDie(Ctx, P.R),
                             10);
    EXPECT_EQ(R.Outcome, Verdict::Equivalent) << P.L;
    EXPECT_LT(R.Seconds, 0.1) << P.L;
  }
}

TEST(SigCheck, ProvesNonLinearThroughCanonicalization) {
  Context Ctx(64);
  auto C = makeSignatureChecker();
  // The Figure 1 poly identity — hopeless for SAT search at 64 bits,
  // decided by canonicalization here.
  CheckResult R =
      C->check(Ctx, parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)"),
               parseOrDie(Ctx, "x*y"), 10);
  EXPECT_EQ(R.Outcome, Verdict::Equivalent);
  EXPECT_LT(R.Seconds, 0.5);
  // And the non-poly Section 4.5 case.
  CheckResult R2 = C->check(
      Ctx, parseOrDie(Ctx, "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)"),
      parseOrDie(Ctx, "x - y + z"), 10);
  EXPECT_EQ(R2.Outcome, Verdict::Equivalent);
}

TEST(SigCheck, RefutesNonIdentities) {
  Context Ctx(64);
  auto C = makeSignatureChecker();
  struct Pair {
    const char *L, *R;
  } Pairs[] = {
      {"x + y", "x | y"},
      {"x * y", "x & y"},
      {"x", "x + 1"},
      // Linear pair differing only at a corner: sampling may miss it, but
      // Theorem 1 cannot.
      {"x + y - (x&y)", "x + y - (x|y)"},
  };
  for (auto &P : Pairs) {
    CheckResult R = C->check(Ctx, parseOrDie(Ctx, P.L), parseOrDie(Ctx, P.R),
                             10);
    EXPECT_EQ(R.Outcome, Verdict::NotEquivalent) << P.L;
  }
}

TEST(SigCheck, SeedIdentitiesAllProve) {
  Context Ctx(64);
  auto C = makeSignatureChecker();
  for (const SeedIdentity &S : seedIdentities()) {
    ParsedIdentity P = parseSeedIdentity(Ctx, S);
    CheckResult R = C->check(Ctx, P.Obfuscated, P.Ground, 10);
    EXPECT_EQ(R.Outcome, Verdict::Equivalent) << S.Obfuscated;
  }
}

TEST(SigCheck, CorpusThroughput) {
  // The whole (scaled) corpus decides in well under a second per entry —
  // the payoff of building the decision procedure on the paper's theory.
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 20;
  Opts.PolyCount = 15;
  Opts.NonPolyCount = 15;
  auto Corpus = generateCorpus(Ctx, Opts);
  auto C = makeSignatureChecker();
  unsigned Proven = 0;
  for (const CorpusEntry &E : Corpus) {
    CheckResult R = C->check(Ctx, E.Obfuscated, E.Ground, 5);
    EXPECT_NE(R.Outcome, Verdict::NotEquivalent); // identities: never refuted
    Proven += R.Outcome == Verdict::Equivalent;
  }
  // Nearly everything proves; a small unknown residue is acceptable.
  EXPECT_GE(Proven, Corpus.size() * 9 / 10);
}

TEST(SigCheck, NeverGuessesOnUndecidedNonLinear) {
  // Two distinct-but-equal forms the canonicalizer cannot unify should
  // answer Timeout (unknown), never a wrong verdict. Construct a pair that
  // only differs by a mask constant under &.
  Context Ctx(64);
  auto C = makeSignatureChecker();
  const Expr *L = parseOrDie(Ctx, "(x & 6) + (x & 9)");
  const Expr *R = parseOrDie(Ctx, "(x & 15)");   // equal: 6 and 9 disjoint
  CheckResult Res = C->check(Ctx, L, R, 5);
  EXPECT_NE(Res.Outcome, Verdict::NotEquivalent);
}

} // namespace
