//===- tests/benchdiff_cli_test.cpp - bench-diff sentinel tests -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Spawns the real bench-diff binary (path injected by CMake) against
// synthetic BENCH-style reports and pins the exit-code contract CI relies
// on: 0 for a clean comparison, 1 for a regression (including the
// deliberately doubled-tavg fixture), 2 for unusable input.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

RunResult runDiff(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(BENCH_DIFF_BIN) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr) << Cmd;
  if (!Pipe)
    return R;
  char Buf[4096];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

/// Writes a minimal writeStudyJson-shaped report. \p TavgScale multiplies
/// the timing cells; \p SolvedDrop subtracts from one solved count.
std::string writeReport(const std::string &Name, double TavgScale = 1.0,
                        unsigned SolvedDrop = 0) {
  // Prefix by test name: ctest runs each case as its own process, and
  // concurrent writers to a shared TempDir() filename race.
  std::string Path =
      ::testing::TempDir() +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + "_" +
      Name;
  std::ofstream Out(Path);
  char Buf[256];
  auto Cell = [&](const char *Cat, unsigned Solved, double Tavg,
                  const char *Sep) {
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"category\": \"%s\", \"solved\": %u, \"total\": "
                  "10, \"tmin\": %.6f, \"tmax\": %.6f, \"tavg\": %.6f}%s\n",
                  Cat, Solved, 0.4 * Tavg, 3.0 * Tavg, Tavg, Sep);
    Out << Buf;
  };
  Out << "{\n  \"table\": \"unit\",\n"
         "  \"config\": {\"per_category\": 10, \"timeout_seconds\": 1.0, "
         "\"width\": 64, \"seed\": 1, \"jobs\": 1, \"stage_zero\": true, "
         "\"simplify\": true, \"incremental\": true},\n"
         "  \"stage_zero\": {\"proved\": 12, \"refuted\": 0, "
         "\"fallthrough\": 8},\n"
         "  \"solvers\": [\n    {\"name\": \"BlastBV\", \"categories\": [\n";
  Cell("linear", 10 - SolvedDrop, 1.0 * TavgScale, ",");
  Cell("poly", 9, 2.0 * TavgScale, "");
  Out << "    ], \"total_solved\": 19, \"total\": 20}\n  ]\n}\n";
  return Path;
}

TEST(BenchDiffCli, IdenticalReportsPass) {
  std::string Base = writeReport("bd_base.json");
  RunResult R = runDiff(Base + " " + Base);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("result: PASS"), std::string::npos) << R.Output;
}

TEST(BenchDiffCli, NoiseWithinTolerancePasses) {
  std::string Base = writeReport("bd_base.json");
  std::string Cur = writeReport("bd_noisy.json", /*TavgScale=*/1.2);
  RunResult R = runDiff("--time-tol=0.5 " + Base + " " + Cur);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(BenchDiffCli, DoubledTavgFailsNonzero) {
  // The acceptance fixture: a deliberate 2x tavg regression must exit
  // non-zero under the default 50% tolerance.
  std::string Base = writeReport("bd_base.json");
  std::string Cur = writeReport("bd_slow.json", /*TavgScale=*/2.0);
  RunResult R = runDiff(Base + " " + Cur);
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("result: REGRESSION"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("tavg"), std::string::npos) << R.Output;
}

TEST(BenchDiffCli, SolvedDropFailsRegardlessOfTiming) {
  std::string Base = writeReport("bd_base.json");
  std::string Cur = writeReport("bd_unsolved.json", 1.0, /*SolvedDrop=*/2);
  RunResult R = runDiff(Base + " " + Cur);
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("solved 10 -> 8"), std::string::npos) << R.Output;
  // ... but an explicit slack waves it through.
  R = runDiff("--solved-slack=2 " + Base + " " + Cur);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(BenchDiffCli, GarbageInputExitsTwo) {
  std::string Base = writeReport("bd_base.json");
  std::string Garbage = ::testing::TempDir() + "bd_garbage.json";
  {
    std::ofstream Out(Garbage);
    Out << "not json at all{";
  }
  EXPECT_EQ(runDiff(Base + " " + Garbage).ExitCode, 2);
  EXPECT_EQ(runDiff(Base + " " + Base + ".missing").ExitCode, 2);
  EXPECT_EQ(runDiff("").ExitCode, 2) << "missing operands";
  EXPECT_EQ(runDiff("--bogus-flag " + Base + " " + Base).ExitCode, 2);
}

TEST(BenchDiffCli, ReportFileMirrorsStdout) {
  std::string Base = writeReport("bd_base.json");
  std::string Report = ::testing::TempDir() + "bd_report.txt";
  RunResult R = runDiff("--report=" + Report + " " + Base + " " + Base);
  EXPECT_EQ(R.ExitCode, 0);
  std::ifstream In(Report);
  ASSERT_TRUE(In.good());
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("result: PASS"), std::string::npos);
}

} // namespace
