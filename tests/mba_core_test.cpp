//===- tests/mba_core_test.cpp - Classify/metrics/signature/basis tests ---===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Basis.h"
#include "mba/BooleanMin.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "linalg/TruthTable.h"
#include "poly/PolyExpr.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

//===----------------------------------------------------------------------===//
// Classification
//===----------------------------------------------------------------------===//

struct ClassifyCase {
  const char *Text;
  MBAKind Expected;
};

class ClassifyTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyTest, Classifies) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, GetParam().Text);
  EXPECT_EQ(classifyMBA(Ctx, E), GetParam().Expected) << GetParam().Text;
}

INSTANTIATE_TEST_SUITE_P(
    Linear, ClassifyTest,
    ::testing::Values(
        ClassifyCase{"x", MBAKind::Linear},
        ClassifyCase{"42", MBAKind::Linear},
        ClassifyCase{"x&y", MBAKind::Linear},
        ClassifyCase{"x + 2*y + (x&y) - 3*(x^y) + 4", MBAKind::Linear},
        ClassifyCase{"2*(x|y) - (~x&y) - (x&~y)", MBAKind::Linear},
        ClassifyCase{"-(x&y)", MBAKind::Linear},
        ClassifyCase{"(x&y)*5", MBAKind::Linear},
        ClassifyCase{"3*(2*(x^y))", MBAKind::Linear},
        ClassifyCase{"~x + ~y", MBAKind::Linear},
        ClassifyCase{"x&-1", MBAKind::Linear},  // -1 is a bitwise atom
        ClassifyCase{"x&0", MBAKind::Linear}));

INSTANTIATE_TEST_SUITE_P(
    Poly, ClassifyTest,
    ::testing::Values(
        ClassifyCase{"x*y", MBAKind::Polynomial},
        ClassifyCase{"(x&~y)*(~x&y) + (x&y)*(x|y)", MBAKind::Polynomial},
        ClassifyCase{"x*y + 2*(x&y) + 3*(x&~y)*(x|y) - 5", MBAKind::Polynomial},
        ClassifyCase{"(x+y)*(x-y)", MBAKind::Polynomial},
        ClassifyCase{"(x&y)*(x&y)*(x&y)", MBAKind::Polynomial}));

INSTANTIATE_TEST_SUITE_P(
    NonPoly, ClassifyTest,
    ::testing::Values(
        ClassifyCase{"(x+y)&z", MBAKind::NonPolynomial},
        ClassifyCase{"~(x-1)", MBAKind::NonPolynomial},
        ClassifyCase{"((x-y)|z) + ((x-y)&z)", MBAKind::NonPolynomial},
        ClassifyCase{"x&3", MBAKind::NonPolynomial}, // 3 is not 0/-1
        ClassifyCase{"~(x*y)", MBAKind::NonPolynomial}));

TEST(Classify, PureBitwise) {
  Context Ctx(64);
  EXPECT_TRUE(isPureBitwise(Ctx, parseOrDie(Ctx, "x & ~(y ^ z) | x")));
  EXPECT_TRUE(isPureBitwise(Ctx, parseOrDie(Ctx, "x & -1")));
  EXPECT_FALSE(isPureBitwise(Ctx, parseOrDie(Ctx, "x & 3")));
  EXPECT_FALSE(isPureBitwise(Ctx, parseOrDie(Ctx, "x + y")));
  EXPECT_FALSE(isPureBitwise(Ctx, parseOrDie(Ctx, "-x")));
}

TEST(Classify, KindNames) {
  EXPECT_STREQ(mbaKindName(MBAKind::Linear), "linear");
  EXPECT_STREQ(mbaKindName(MBAKind::Polynomial), "poly");
  EXPECT_STREQ(mbaKindName(MBAKind::NonPolynomial), "non-poly");
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, AlternationPaperExample) {
  // (x&y) + 2*z has exactly one alternation: the '+' with a bitwise child.
  Context Ctx(64);
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "(x&y) + 2*z")), 1u);
}

TEST(Metrics, AlternationPureExpressionsAreZero) {
  Context Ctx(64);
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "x & y | ~z ^ x")), 0u);
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "x + y*z - 3")), 0u);
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "x")), 0u);
}

TEST(Metrics, AlternationCountsEachBoundary) {
  Context Ctx(64);
  // '+' over two bitwise children: two boundaries.
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "(x&y) + (x|y)")), 2u);
  // ~(x+y): bitwise over arithmetic.
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "~(x+y)")), 1u);
  // Nested: ~( (x&y) + z ) has '~'->'+' and '+'->'&'.
  EXPECT_EQ(mbaAlternation(parseOrDie(Ctx, "~((x&y) + z)")), 2u);
}

TEST(Metrics, AlternationUsesTreeSemantics) {
  // A shared DAG node must be counted per occurrence.
  Context Ctx(64);
  const Expr *A = parseOrDie(Ctx, "x&y");
  const Expr *Sum = Ctx.getAdd(A, A); // (x&y) + (x&y): 2 alternations
  EXPECT_EQ(mbaAlternation(Sum), 2u);
}

TEST(Metrics, CountTerms) {
  Context Ctx(64);
  EXPECT_EQ(countTerms(parseOrDie(Ctx, "x + 2*y + (x&y) - 3*(x^y) + 4")), 5u);
  EXPECT_EQ(countTerms(parseOrDie(Ctx, "x")), 1u);
  EXPECT_EQ(countTerms(parseOrDie(Ctx, "-(x + y)")), 2u);
  EXPECT_EQ(countTerms(parseOrDie(Ctx, "(x+y)*(x-y)")), 1u);
}

TEST(Metrics, MaxCoefficient) {
  Context Ctx(64);
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "3*x - 17*y + 5")), 17u);
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "x + y")), 0u);
  // -1 has magnitude 1.
  EXPECT_EQ(maxCoefficient(Ctx, parseOrDie(Ctx, "x & -1")), 1u);
}

TEST(Metrics, MeasureComplexityBundle) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x + 2*y + (x&y) - 3*(x^y) + 4");
  ComplexityMetrics M = measureComplexity(Ctx, E);
  EXPECT_EQ(M.Kind, MBAKind::Linear);
  EXPECT_EQ(M.NumVariables, 2u);
  EXPECT_EQ(M.NumTerms, 5u);
  EXPECT_EQ(M.MaxCoefficient, 4u);
  EXPECT_GT(M.Length, 0u);
  EXPECT_EQ(M.Alternation, 2u); // '&' and '^' children of the +/- spine
}

//===----------------------------------------------------------------------===//
// Signature vectors
//===----------------------------------------------------------------------===//

TEST(Signature, PaperExample2) {
  // sig(2*(x|y) - (~x&y) - (x&~y)) = (0, 1, 1, 2).
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  auto Sig = computeSignature(Ctx, E);
  EXPECT_EQ(Sig, (std::vector<uint64_t>{0, 1, 1, 2}));
}

TEST(Signature, BitwiseSignatureIsTruthColumn) {
  Context Ctx(64);
  std::vector<const Expr *> Vars;
  const Expr *E = parseOrDie(Ctx, "x^y");
  auto Sig = computeSignature(Ctx, E, &Vars);
  ASSERT_EQ(Vars.size(), 2u);
  EXPECT_EQ(Sig, (std::vector<uint64_t>{0, 1, 1, 0}));
}

TEST(Signature, ConstantSignature) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *E = Ctx.getAdd(X, Ctx.getConst(5)); // x + 5
  std::vector<const Expr *> Vars = {X};
  auto Sig = computeSignature(Ctx, E, Vars);
  // Row x=0: -(5) = -5; row x=-1: -(-1+5) = -4.
  EXPECT_EQ(Sig[0], (uint64_t)-5);
  EXPECT_EQ(Sig[1], (uint64_t)-4);
}

TEST(Signature, Theorem1EquivalenceHolds) {
  Context Ctx(64);
  // The Section 4.2 pair: 2(x|y)-(~x&y)-(x&~y) == (~x&y)+(x&~y)+2(x&y).
  const Expr *E1 = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  const Expr *E2 = parseOrDie(Ctx, "(~x&y) + (x&~y) + 2*(x&y)");
  EXPECT_TRUE(linearMBAEquivalent(Ctx, E1, E2));
  // And x - y == (x^y) + 2*(x|~y) + 2 from Example 1.
  const Expr *E3 = parseOrDie(Ctx, "x - y");
  const Expr *E4 = parseOrDie(Ctx, "(x^y) + 2*(x|~y) + 2");
  EXPECT_TRUE(linearMBAEquivalent(Ctx, E3, E4));
  EXPECT_FALSE(linearMBAEquivalent(Ctx, E3, parseOrDie(Ctx, "x + y")));
}

TEST(Signature, DifferentVariableSetsHandled) {
  Context Ctx(64);
  EXPECT_TRUE(linearMBAEquivalent(Ctx, parseOrDie(Ctx, "y + x - y"),
                                  parseOrDie(Ctx, "x")));
}

TEST(Signature, Theorem1AgreesWithRandomEvaluation) {
  // Property: signature equality <=> agreement on random inputs, for random
  // linear MBA pairs built from a shared pool of bitwise terms.
  Context Ctx(16);
  RNG Rng(41);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");
  std::vector<const Expr *> Pool = {
      X, Y, Ctx.getAnd(X, Y), Ctx.getOr(X, Y), Ctx.getXor(X, Y),
      Ctx.getNot(X), Ctx.getAnd(Ctx.getNot(X), Y)};
  for (int Trial = 0; Trial < 60; ++Trial) {
    auto RandomLinear = [&]() {
      const Expr *E = Ctx.getConst(Rng.below(8));
      for (int T = 0; T < 4; ++T) {
        const Expr *Term = Ctx.getMul(Ctx.getConst(Rng.below(5)),
                                      Pool[Rng.below(Pool.size())]);
        E = Rng.chance(1, 2) ? Ctx.getAdd(E, Term) : Ctx.getSub(E, Term);
      }
      return E;
    };
    const Expr *E1 = RandomLinear();
    const Expr *E2 = RandomLinear();
    bool SigEq = linearMBAEquivalent(Ctx, E1, E2);
    bool EvalEq = true;
    for (int I = 0; I < 256 && EvalEq; ++I) {
      uint64_t Vals[] = {Rng.next() & 0xffff, Rng.next() & 0xffff};
      EvalEq = evaluate(Ctx, E1, Vals) == evaluate(Ctx, E2, Vals);
    }
    // Signature equality is exact; random agreement on 256 samples of a
    // 16-bit space almost surely matches it (inequivalent linear MBA
    // differ on a corner, which random sampling may miss only for equal-
    // on-samples pairs; assert one direction strictly).
    if (SigEq) {
      EXPECT_TRUE(EvalEq);
    }
    if (!EvalEq) {
      EXPECT_FALSE(SigEq);
    }
  }
}

//===----------------------------------------------------------------------===//
// Normalized bases
//===----------------------------------------------------------------------===//

TEST(Basis, ConjunctionBasisExprs) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  EXPECT_EQ(printExpr(Ctx, basisExpr(Ctx, BasisKind::Conjunction, 0b100, Vars)),
            "x");
  EXPECT_EQ(printExpr(Ctx, basisExpr(Ctx, BasisKind::Conjunction, 0b011, Vars)),
            "y&z");
  EXPECT_EQ(printExpr(Ctx, basisExpr(Ctx, BasisKind::Conjunction, 0b111, Vars)),
            "x&y&z");
  EXPECT_EQ(printExpr(Ctx, basisExpr(Ctx, BasisKind::Disjunction, 0b110, Vars)),
            "x|y");
}

TEST(Basis, Section43Example) {
  // sig = (0,1,1,2) in the conjunction basis is x + y (all bitwise terms
  // vanish) — the paper's headline linear simplification.
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");
  const Expr *Vars[] = {X, Y};
  std::vector<uint64_t> Sig = {0, 1, 1, 2};
  LinearCombo Combo = solveBasis(Ctx, BasisKind::Conjunction, Sig, Vars);
  EXPECT_EQ(Combo.Constant, 0u);
  ASSERT_EQ(Combo.Terms.size(), 2u);
  EXPECT_EQ(Combo.Terms[0], (std::pair<uint64_t, const Expr *>{1, X}));
  EXPECT_EQ(Combo.Terms[1], (std::pair<uint64_t, const Expr *>{1, Y}));
}

TEST(Basis, ComboSignatureRoundTrip) {
  // Property: rebuilding an expression from solveBasis output reproduces
  // the original signature, in both bases.
  Context Ctx(32);
  RNG Rng(5);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (BasisKind Kind : {BasisKind::Conjunction, BasisKind::Disjunction}) {
    for (int Trial = 0; Trial < 40; ++Trial) {
      std::vector<uint64_t> Sig(8);
      for (auto &S : Sig)
        S = Rng.next() & Ctx.mask();
      LinearCombo Combo = solveBasis(Ctx, Kind, Sig, Vars);
      const Expr *E = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
      EXPECT_EQ(computeSignature(Ctx, E, Vars), Sig)
          << printExpr(Ctx, E) << " basis " << (int)Kind;
    }
  }
}

TEST(Basis, Table5Reproduction) {
  // The paper's pre-computed two-variable table (Table 5), row by row:
  // signature -> normalized MBA over {x, y, x&y, -1}.
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  struct Row {
    std::vector<uint64_t> Sig;
    const char *Expected;
  };
  uint64_t M1 = (uint64_t)-1; // the constant -1 in signatures
  const Row Rows[] = {
      // Base vectors.
      {{0, 0, 1, 1}, "x"},
      {{0, 1, 0, 1}, "y"},
      {{0, 0, 0, 1}, "x&y"},
      {{1, 1, 1, 1}, "-1"},
      // Derivative rows.
      {{0, 0, 0, 0}, "0"},
      {{0, 0, 1, 0}, "x-(x&y)"},
      {{0, 1, 0, 0}, "y-(x&y)"},
      {{0, 1, 1, 0}, "x+y-2*(x&y)"},
      {{0, 1, 1, 1}, "x+y-(x&y)"},
      {{1, 0, 0, 0}, "-x-y+(x&y)-1"},
      {{1, 0, 0, 1}, "-x-y+2*(x&y)-1"},
      {{1, 0, 1, 0}, "-y-1"},
      {{1, 0, 1, 1}, "-y+(x&y)-1"},
      {{1, 1, 0, 0}, "-x-1"},
      {{1, 1, 0, 1}, "-x+(x&y)-1"},
      {{1, 1, 1, 0}, "-(x&y)-1"},
  };
  for (const Row &R : Rows) {
    std::vector<uint64_t> Sig = R.Sig;
    for (auto &S : Sig)
      if (S == 1)
        S = 1; // signatures use 1 where the table shows 1
    (void)M1;
    LinearCombo Combo = solveBasis(Ctx, BasisKind::Conjunction, Sig, Vars);
    const Expr *E = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
    EXPECT_EQ(printExpr(Ctx, E), R.Expected);
  }
}

TEST(Basis, DisjunctionBasisTable9Shape) {
  // In the Table 9 basis, sig(x&y) = (0,0,0,1) must come out as
  // x + y - (x|y) (inclusion-exclusion).
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  std::vector<uint64_t> Sig = {0, 0, 0, 1};
  LinearCombo Combo = solveBasis(Ctx, BasisKind::Disjunction, Sig, Vars);
  const Expr *E = buildLinearCombination(Ctx, Combo.Terms, Combo.Constant);
  EXPECT_EQ(printExpr(Ctx, E), "x+y-(x|y)");
}

//===----------------------------------------------------------------------===//
// Boolean minimal synthesis
//===----------------------------------------------------------------------===//

TEST(BooleanMin, TwoVariableBasics) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  unsigned Cost = 0;
  // Truth bit k corresponds to row k: x^y has rows (0,1,1,0) -> bits 0b0110.
  const Expr *Xor = synthesizeBitwise(Ctx, Vars, 0b0110, &Cost);
  EXPECT_EQ(printExpr(Ctx, Xor), "x^y");
  EXPECT_EQ(Cost, 1u);
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b1000)), "x&y");
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b1110)), "x|y");
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b1100)), "x");
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b0011)), "~x");
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b0000)), "0");
  EXPECT_EQ(printExpr(Ctx, synthesizeBitwise(Ctx, Vars, 0b1111)), "-1");
}

TEST(BooleanMin, AllFunctionsRealizeTheirTruthTable) {
  for (unsigned T = 1; T <= 3; ++T) {
    Context Ctx(8);
    std::vector<const Expr *> Vars;
    for (unsigned I = 0; I != T; ++I)
      Vars.push_back(Ctx.getVar(std::string(1, (char)('a' + I))));
    unsigned Rows = 1u << T;
    for (uint32_t F = 0; F != (1u << Rows); ++F) {
      const Expr *E = synthesizeBitwise(Ctx, Vars, F);
      ASSERT_NE(E, nullptr);
      auto Column = truthColumn(Ctx, E, Vars);
      for (unsigned K = 0; K != Rows; ++K)
        ASSERT_EQ(Column[K], (F >> K) & 1)
            << "t=" << T << " f=" << F << " -> " << printExpr(Ctx, E);
    }
  }
}

TEST(BooleanMin, CostsAreMinimalForKnownFunctions) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  unsigned Cost = ~0u;
  synthesizeBitwise(Ctx, Vars, 0b1100, &Cost); // x
  EXPECT_EQ(Cost, 0u);
  synthesizeBitwise(Ctx, Vars, 0b0110, &Cost); // x^y
  EXPECT_EQ(Cost, 1u);
  synthesizeBitwise(Ctx, Vars, 0b1001, &Cost); // ~(x^y)
  EXPECT_EQ(Cost, 2u);
}

} // namespace
