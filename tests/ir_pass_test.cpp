//===- tests/ir_pass_test.cpp - Deobfuscation pass tests ------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Passes.h"

#include "ast/Evaluator.h"
#include "ir/Dataflow.h"
#include "ir/IRDot.h"
#include "support/RNG.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace mba;

namespace {

Function parseOne(Context &Ctx, const char *Text) {
  Diag D;
  auto P = Program::parse(Ctx, Text, &D);
  EXPECT_TRUE(P.has_value()) << D.str();
  return std::move(P->Functions.front());
}

/// interpretFunction(F) must agree with \p Ground (over F's parameters) on
/// \p Trials random inputs.
void expectSemantics(const Context &Ctx, const Function &F,
                     const Expr *Ground, unsigned Trials = 32) {
  RNG R(0x5eed);
  for (unsigned T = 0; T != Trials; ++T) {
    std::vector<uint64_t> Args;
    std::unordered_map<const Expr *, uint64_t> Env;
    for (const Expr *P : F.Params) {
      uint64_t V = R.next() & Ctx.mask();
      Args.push_back(V);
      Env.emplace(P, V);
    }
    auto Got = interpretFunction(Ctx, F, Args);
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(*Got, evaluate(Ctx, Ground, Env));
  }
}

const char *OpaqueText = R"(
func @d(x, y) {
entry:
  p = (x | 1) & 1
  br p, real, junk
junk:
  j = (x ^ y) & (x | y)
  jmp real
real:
  t1 = (x & y) + (x | y)
  t2 = t1 * 2
  ret t2
}
)";

TEST(IRFold, AlwaysTakenOpaquePredicate) {
  Context Ctx(64);
  Function F = parseOne(Ctx, OpaqueText);
  PassOptions Opts;
  FunctionReport Report;
  EXPECT_EQ(foldOpaqueBranches(Ctx, F, nullptr, Opts, &Report), 1u);
  EXPECT_EQ(Report.BranchesFolded, 1u);
  EXPECT_EQ(F.entry().Term.Kind, TermKind::Jump);
  EXPECT_EQ(F.Blocks[F.entry().Term.Succs[0]].Name, "real");
  EXPECT_EQ(removeUnreachableBlocks(F, &Report), 1u); // junk is gone
  EXPECT_EQ(F.findBlock("junk"), -1);
  const Expr *Ground =
      Ctx.getMul(Ctx.getAdd(Ctx.getVar("x"), Ctx.getVar("y")),
                 Ctx.getConst(2));
  expectSemantics(Ctx, F, Ground);
}

TEST(IRFold, NeverTakenBranch) {
  Context Ctx(64);
  Function F = parseOne(Ctx,
                        "func @n(x) {\nentry:\n  p = x ^ x\n"
                        "  br p, junk, real\n"
                        "junk:\n  ret 0\n"
                        "real:\n  r = x + 1\n  ret r\n}\n");
  PassOptions Opts;
  EXPECT_EQ(foldOpaqueBranches(Ctx, F, nullptr, Opts), 1u);
  EXPECT_EQ(F.entry().Term.Kind, TermKind::Jump);
  EXPECT_EQ(F.Blocks[F.entry().Term.Succs[0]].Name, "real");
}

TEST(IRFold, VerifiedFoldWithChecker) {
  Context Ctx(64);
  Function F = parseOne(Ctx, OpaqueText);
  auto Checker = makeRegionVerifier(Ctx);
  PassOptions Opts;
  FunctionReport Report;
  EXPECT_EQ(foldOpaqueBranches(Ctx, F, Checker.get(), Opts, &Report), 1u);
  EXPECT_EQ(Report.BranchesFolded, 1u);
}

TEST(IRPass, RemoveUnreachableRemapsPhis) {
  Context Ctx(64);
  Function F = parseOne(Ctx,
                        "func @r(x) {\nentry:\n  jmp exit\n"
                        "dead:\n  jmp exit\n"
                        "exit:\n  m = phi [entry: 7], [dead: 9]\n"
                        "  ret m\n}\n");
  EXPECT_EQ(removeUnreachableBlocks(F), 1u);
  ASSERT_EQ(F.numBlocks(), 2u);
  EXPECT_EQ(F.entry().Term.Succs[0], 1u);
  ASSERT_EQ(F.Blocks[1].Phis.size(), 1u);
  ASSERT_EQ(F.Blocks[1].Phis[0].Incoming.size(), 1u);
  EXPECT_EQ(F.Blocks[1].Phis[0].Incoming[0].first, 0u);
  uint64_t Args[] = {5};
  EXPECT_EQ(interpretFunction(Ctx, F, Args), std::optional<uint64_t>(7));

  // The now single-incoming phi is trivial; substitution removes it.
  EXPECT_EQ(simplifyTrivialPhis(Ctx, F), 1u);
  EXPECT_TRUE(F.Blocks[1].Phis.empty());
  EXPECT_EQ(interpretFunction(Ctx, F, Args), std::optional<uint64_t>(7));
}

TEST(IRPass, AllEqualPhiIsTrivial) {
  Context Ctx(64);
  Function F = parseOne(Ctx,
                        "func @q(x) {\nentry:\n  br x, a, b\n"
                        "a:\n  jmp join\nb:\n  jmp join\n"
                        "join:\n  m = phi [a: x], [b: x]\n  ret m\n}\n");
  EXPECT_EQ(simplifyTrivialPhis(Ctx, F), 1u);
  EXPECT_TRUE(F.Blocks[3].Phis.empty());
  expectSemantics(Ctx, F, Ctx.getVar("x"));
}

TEST(IRPass, EliminateDeadInstructions) {
  Context Ctx(64);
  Function F = parseOne(Ctx,
                        "func @e(x) {\nentry:\n  a = x + 1\n  b = x * 2\n"
                        "  ret b\n}\n");
  EXPECT_EQ(eliminateDeadInstructions(F), 1u);
  ASSERT_EQ(F.entry().Insts.size(), 1u);
  EXPECT_STREQ(F.entry().Insts[0].Dest->varName(), "b");
}

TEST(IRRegion, RewritesLinearMBARegion) {
  Context Ctx(64);
  Function F = parseOne(
      Ctx, "func @m(x, y) {\nentry:\n"
           "  t1 = (x & y) + (x | y)\n"
           "  t2 = (x ^ y) + ((x & y) * 2)\n"
           "  r = t1 + t2\n"
           "  ret r\n}\n");
  const Expr *Ground = Ctx.getMul(
      Ctx.getAdd(Ctx.getVar("x"), Ctx.getVar("y")), Ctx.getConst(2));
  MBASolver Solver(Ctx);
  auto Checker = makeRegionVerifier(Ctx);
  PassOptions Opts;
  FunctionReport Report;
  EXPECT_GE(rewriteMBARegions(Ctx, F, Solver, Checker.get(), Opts, &Report),
            1u);
  EXPECT_GE(Report.RegionsFound, 1u);
  EXPECT_GE(Report.RegionsRewritten, 1u);
  EXPECT_EQ(Report.UnsoundBlocked, 0u);
  ASSERT_FALSE(Report.Regions.empty());
  EXPECT_TRUE(Report.Regions[0].Verified);
  EXPECT_LT(Report.Regions[0].AlternationAfter,
            Report.Regions[0].AlternationBefore);
  eliminateDeadInstructions(F);
  expectSemantics(Ctx, F, Ground);
}

TEST(IRRegion, UnsoundExperimentalRuleIsBlocked) {
  // A deliberately wrong rule rewrites everything to 0. The verifier must
  // refute the candidate and the pass must keep the original code.
  Context Ctx(64);
  Function F = parseOne(
      Ctx, "func @u(x, y) {\nentry:\n  t = (x & y) + (x | y)\n  ret t\n}\n");
  SimplifyOptions Bad;
  Bad.ExperimentalRule = [](Context &C, const Expr *) {
    return C.getZero();
  };
  MBASolver Solver(Ctx, Bad);
  auto Checker = makeRegionVerifier(Ctx);
  PassOptions Opts;
  FunctionReport Report;
  EXPECT_EQ(rewriteMBARegions(Ctx, F, Solver, Checker.get(), Opts, &Report),
            0u);
  EXPECT_GE(Report.RegionsFound, 1u);
  EXPECT_EQ(Report.RegionsRewritten, 0u);
  EXPECT_GE(Report.UnsoundBlocked, 1u);
  expectSemantics(Ctx, F,
                  Ctx.getAdd(Ctx.getVar("x"), Ctx.getVar("y")));
}

TEST(IRPipeline, DeobfuscatesOpaqueDemoEndToEnd) {
  Context Ctx(64);
  Function F = parseOne(Ctx, OpaqueText);
  MBASolver Solver(Ctx);
  auto Checker = makeRegionVerifier(Ctx);
  FunctionReport R = deobfuscateFunction(Ctx, F, Solver, Checker.get());
  EXPECT_EQ(R.BranchesFolded, 1u);
  EXPECT_EQ(R.UnsoundBlocked, 0u);
  EXPECT_LT(R.BlocksAfter, R.BlocksBefore);
  EXPECT_LT(R.NodesAfter, R.NodesBefore);
  EXPECT_NE(R.str().find("branches folded"), std::string::npos);
  const Expr *Ground =
      Ctx.getMul(Ctx.getAdd(Ctx.getVar("x"), Ctx.getVar("y")),
                 Ctx.getConst(2));
  expectSemantics(Ctx, F, Ground);
}

TEST(IRDotExport, CfgAndDefUseAreWellFormed) {
  Context Ctx(64);
  Function F = parseOne(Ctx, OpaqueText);
  for (const std::string &Dot :
       {cfgToDot(Ctx, F, "cfg_d"), defUseToDot(Ctx, F, "defuse_d")}) {
    EXPECT_NE(Dot.find("digraph"), std::string::npos);
    EXPECT_NE(Dot.find("->"), std::string::npos);
    EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
              std::count(Dot.begin(), Dot.end(), '}'));
    EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '"') % 2, 0);
  }
  EXPECT_NE(cfgToDot(Ctx, F).find("junk"), std::string::npos);
  EXPECT_NE(defUseToDot(Ctx, F).find("t1"), std::string::npos);
}

uint64_t counterValue(const char *Name) {
  for (const telemetry::MetricValue &M : telemetry::snapshotMetrics())
    if (M.Name == Name)
      return M.Value;
  return 0;
}

TEST(IRTelemetry, PipelineCountersAreMirrored) {
  telemetry::setMetricsEnabled(true);
  uint64_t Found0 = counterValue("ir.regions_found");
  uint64_t Rewritten0 = counterValue("ir.regions_rewritten");
  uint64_t Folded0 = counterValue("ir.branches_folded");

  Context Ctx(64);
  Diag D;
  auto P = Program::parse(Ctx, OpaqueText, &D);
  ASSERT_TRUE(P.has_value()) << D.str();
  ProgramReport R = deobfuscateProgram(Ctx, *P);
  EXPECT_EQ(R.totalUnsoundBlocked(), 0u);

  EXPECT_GE(counterValue("ir.regions_found"),
            Found0 + R.totalRegionsFound());
  EXPECT_GE(counterValue("ir.regions_rewritten"),
            Rewritten0 + R.totalRegionsRewritten());
  EXPECT_GE(counterValue("ir.branches_folded"),
            Folded0 + R.totalBranchesFolded());
  EXPECT_GE(R.totalBranchesFolded(), 1u);

  // And the Prometheus dump carries the mba_ir_* names the CI smoke job
  // asserts on.
  std::string Path = ::testing::TempDir() + "ir_pass_test_metrics.txt";
  ASSERT_TRUE(telemetry::writeMetricsText(Path));
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();
  EXPECT_NE(Text.find("mba_ir_regions_found"), std::string::npos);
  EXPECT_NE(Text.find("mba_ir_regions_rewritten"), std::string::npos);
  EXPECT_NE(Text.find("mba_ir_branches_folded"), std::string::npos);
}

} // namespace
