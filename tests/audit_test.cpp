//===- tests/audit_test.cpp - Rewrite audit trail tests -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the opt-in rewrite audit trail (analysis/Audit.h) and its
/// integration with the simplifier. The acceptance scenario: inject a
/// deliberately unsound rewrite rule through
/// SimplifyOptions::ExperimentalRule and assert the auditor flags it with a
/// minimized reproducer, while clean runs over real MBA corpora audit
/// green.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(RewriteTrailTest, RecordsNonIdentitySteps) {
  Context Ctx(32);
  RewriteTrail Trail;
  const Expr *A = parseOrDie(Ctx, "x + y");
  const Expr *B = parseOrDie(Ctx, "y + x");
  Trail.record("identity", A, A); // identity: dropped
  EXPECT_TRUE(Trail.empty());
  Trail.record("commute", A, B);
  ASSERT_EQ(Trail.size(), 1u);
  EXPECT_STREQ(Trail.steps()[0].Rule, "commute");
  EXPECT_EQ(Trail.steps()[0].Before, A);
  EXPECT_EQ(Trail.steps()[0].After, B);
  Trail.clear();
  EXPECT_TRUE(Trail.empty());
}

TEST(AuditTest, CleanSimplifierRunsAuditGreen) {
  Context Ctx(64);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.Trail = &Trail;
  MBASolver Solver(Ctx, Opts);

  const char *Samples[] = {
      "(x & y) + (x | y)",                     // == x + y
      "(x ^ y) + 2*(x & y)",                   // == x + y
      "x + y - 2*(x & y)",                     // == x ^ y
      "2*(x | y) - (x ^ y)",                   // == x + y
      "(x & ~y) + y",                          // == x | y
      "((x*2) & 1) + (x | y) + (x & y) - y",   // fold pre-pass + linear
      "(x + x) & 1",                           // parity-domain fold
      "(x | y)*(x & y) + (x & ~y)*(~x & y)",   // polynomial: == x*y
  };
  for (const char *S : Samples)
    Solver.simplify(parseOrDie(Ctx, S));

  // Real rewrites happened and every recorded claim holds up.
  ASSERT_FALSE(Trail.empty());
  AuditReport Report = auditTrail(Ctx, Trail);
  EXPECT_EQ(Report.StepsChecked, Trail.size());
  for (const AuditIssue &I : Report.Issues)
    ADD_FAILURE() << "rule '" << I.Step.Rule << "' failed " << I.Check
                  << " check: " << I.Detail << "\n" << I.Reproducer;
}

TEST(AuditTest, TrailNamesThePipelineStages) {
  Context Ctx(64);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.Trail = &Trail;
  MBASolver Solver(Ctx, Opts);
  Solver.simplify(parseOrDie(Ctx, "((x*2) & 1) + (x & y) + (x | y)"));
  bool SawFold = false, SawPath = false;
  for (const RewriteStep &S : Trail.steps()) {
    std::string_view Rule = S.Rule;
    if (Rule == "abstract-fold")
      SawFold = true;
    if (Rule == "linear-signature" || Rule == "poly-normalize" ||
        Rule == "nonpoly-abstraction")
      SawPath = true;
  }
  EXPECT_TRUE(SawFold);
  EXPECT_TRUE(SawPath);
}

// The acceptance scenario: a deliberately unsound rule (rewriting a & b
// into a | b) sneaks into the pipeline via the experimental-rule hook. The
// audit replay must flag exactly that step — with a minimized concrete
// witness in the reproducer — while the sound steps stay green.
TEST(AuditTest, FlagsInjectedUnsoundRule) {
  Context Ctx(8);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.Trail = &Trail;
  Opts.ExperimentalRule = [](Context &C, const Expr *E) -> const Expr * {
    if (E->kind() == ExprKind::And)
      return C.getOr(E->lhs(), E->rhs()); // unsound: & is not |
    return E;
  };
  MBASolver Solver(Ctx, Opts);
  Solver.simplify(parseOrDie(Ctx, "x & y"));

  AuditReport Report = auditTrail(Ctx, Trail);
  ASSERT_FALSE(Report.ok());
  ASSERT_EQ(Report.Issues.size(), 1u);
  const AuditIssue &I = Report.Issues[0];
  EXPECT_STREQ(I.Step.Rule, "experimental-rule");
  // x & y and x | y agree on abstract domains (both top) but disagree on
  // truth-table corners, so the signature cross-check catches it.
  EXPECT_EQ(I.Check, "signature");
  // The reproducer carries a *minimized* witness: the greedy shrink drives
  // the corner witness (x = 255, y = 0) down to x = 1, y = 0.
  ASSERT_FALSE(I.Reproducer.empty());
  EXPECT_NE(I.Reproducer.find("rule 'experimental-rule'"), std::string::npos)
      << I.Reproducer;
  EXPECT_NE(I.Reproducer.find("-->"), std::string::npos) << I.Reproducer;
  EXPECT_NE(I.Reproducer.find("x = 1"), std::string::npos) << I.Reproducer;
  EXPECT_NE(I.Reproducer.find("y = 0"), std::string::npos) << I.Reproducer;
  EXPECT_NE(I.Reproducer.find("lhs = 0"), std::string::npos) << I.Reproducer;
  EXPECT_NE(I.Reproducer.find("rhs = 1"), std::string::npos) << I.Reproducer;
}

TEST(AuditTest, AbstractDomainRefutesOffByOneRule) {
  // An off-by-one rewrite (e -> e + 1) flips the parity of an even
  // expression, so the abstract check refutes it without any evaluation —
  // and the refutation is a proof the sides differ on *every* input, so
  // the reproducer uses the already-minimal all-zeros witness.
  Context Ctx(32);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.Trail = &Trail;
  Opts.ExperimentalRule = [](Context &C, const Expr *E) -> const Expr * {
    return C.getAdd(E, C.getOne());
  };
  MBASolver Solver(Ctx, Opts);
  Solver.simplify(parseOrDie(Ctx, "x + x"));

  AuditReport Report = auditTrail(Ctx, Trail);
  ASSERT_FALSE(Report.ok());
  bool SawAbstract = false;
  for (const AuditIssue &I : Report.Issues)
    if (std::string_view(I.Step.Rule) == "experimental-rule") {
      SawAbstract = true;
      EXPECT_EQ(I.Check, "abstract");
      EXPECT_NE(I.Detail.find("parity"), std::string::npos) << I.Detail;
      EXPECT_NE(I.Reproducer.find("x = 0"), std::string::npos)
          << I.Reproducer;
    }
  EXPECT_TRUE(SawAbstract);
}

TEST(AuditTest, StructureCheckRejectsForeignNodes) {
  // A hand-forged step whose after-side lives in a different context must
  // be reported as a structure issue (and not evaluated at all).
  Context Ctx(32), Other(32);
  RewriteTrail Trail;
  Trail.record("forged", parseOrDie(Ctx, "x + 1"),
               parseOrDie(Other, "x + 1"));
  AuditReport Report = auditTrail(Ctx, Trail);
  ASSERT_EQ(Report.Issues.size(), 1u);
  EXPECT_EQ(Report.Issues[0].Check, "structure");
  EXPECT_TRUE(Report.Issues[0].Reproducer.empty());
}

TEST(AuditTest, ChecksCanBeToggledOff) {
  Context Ctx(8);
  RewriteTrail Trail;
  Trail.record("bogus", parseOrDie(Ctx, "x & y"), parseOrDie(Ctx, "x | y"));
  AuditOptions Opts;
  Opts.CheckAbstract = false;
  Opts.CheckSignatures = false;
  Opts.CheckConcrete = false;
  // Structure is fine, and every semantic check is off: audit is green.
  EXPECT_TRUE(auditTrail(Ctx, Trail, Opts).ok());
  // Concrete alone still catches it.
  Opts.CheckConcrete = true;
  AuditReport Report = auditTrail(Ctx, Trail, Opts);
  ASSERT_FALSE(Report.ok());
  EXPECT_EQ(Report.Issues[0].Check, "concrete");
}

TEST(AuditTest, AuditIsDeterministic) {
  Context Ctx(64);
  RewriteTrail Trail;
  // Many-variable step so the corner check samples rather than enumerates.
  Trail.record("bogus",
               parseOrDie(Ctx, "a+b+c+d+e+f+g+h+i+j+k+(x & y)"),
               parseOrDie(Ctx, "a+b+c+d+e+f+g+h+i+j+k+(x | y)"));
  AuditOptions Opts;
  Opts.MaxCornerVars = 4; // force sampling
  AuditReport R1 = auditTrail(Ctx, Trail, Opts);
  AuditReport R2 = auditTrail(Ctx, Trail, Opts);
  ASSERT_FALSE(R1.ok());
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R1.Issues[0].Reproducer, R2.Issues[0].Reproducer);
  EXPECT_EQ(R1.Issues[0].Detail, R2.Issues[0].Detail);
}

} // namespace
