//===- tests/analysis_test.cpp - Verifier and abstract-domain tests -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the soundness-auditing subsystem (src/analysis): the IR
/// verifier and the multi-domain abstract-interpretation framework.
///
/// The load-bearing regression tests here pin down that the parity and
/// interval domains each decide expressions the known-bits domain cannot:
///  * parity exploits DAG operand sharing — `(x + x) & 1 == 0`;
///  * intervals propagate magnitude prefixes — `((x & 3) + 252) & 252`
///    at width 8 is the constant 252.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterp.h"

#include "analysis/EGraph.h"
#include "analysis/KnownBits.h"
#include "analysis/Prover.h"
#include "analysis/Rules.h"
#include "analysis/Verifier.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <span>

using namespace mba;

namespace {

//===----------------------------------------------------------------------===//
// IR verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, WellFormedExpressionsPass) {
  Context Ctx(32);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) + (x^y)*(x&3) - -z");
  VerifyResult R = verifyExpr(Ctx, E);
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_TRUE(verifyContext(Ctx).ok());
}

TEST(VerifierTest, ContextVerifiesAfterHeavyUse) {
  Context Ctx(16);
  RNG Rng(99);
  const Expr *Vars[] = {Ctx.getVar("a"), Ctx.getVar("b"), Ctx.getVar("c")};
  const Expr *E = Vars[0];
  for (int I = 0; I < 500; ++I) {
    const Expr *V = Vars[Rng.below(3)];
    switch (Rng.below(6)) {
    case 0: E = Ctx.getAdd(E, V); break;
    case 1: E = Ctx.getMul(E, Ctx.getConst(Rng.next())); break;
    case 2: E = Ctx.getXor(E, V); break;
    case 3: E = Ctx.getNot(E); break;
    case 4: E = Ctx.getSub(V, E); break;
    default: E = Ctx.getOr(E, Ctx.getAnd(E, V)); break;
    }
  }
  VerifyResult R = verifyContext(Ctx);
  EXPECT_TRUE(R.ok()) << R.Message;
}

TEST(VerifierTest, RejectsForeignNodes) {
  // A structurally fine node from another context is not interned here:
  // the verifier must refuse it rather than silently accept look-alikes.
  Context Ours(32), Theirs(32);
  const Expr *Foreign = Theirs.getAdd(Theirs.getVar("x"), Theirs.getConst(1));
  VerifyResult R = verifyExpr(Ours, Foreign);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Message.find("not interned"), std::string::npos) << R.Message;
}

TEST(VerifierTest, RejectsForeignVariables) {
  Context Ours(32), Theirs(32);
  Ours.getVar("x");
  const Expr *TheirVar = Theirs.getVar("y");
  Theirs.getVar("z");
  // Same dense index range, different identity: the variable-table check
  // must notice the pointer mismatch.
  VerifyResult R = verifyExpr(Ours, TheirVar);
  EXPECT_FALSE(R.ok());
}

TEST(VerifierTest, RejectsNull) {
  Context Ctx(8);
  EXPECT_FALSE(verifyExpr(Ctx, nullptr).ok());
}

//===----------------------------------------------------------------------===//
// Parity / congruence domain
//===----------------------------------------------------------------------===//

TEST(ParityDomainTest, ConstantsAndStructure) {
  Context Ctx(8);
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "12"));
  EXPECT_EQ(P.KnownLow, 8u);
  EXPECT_EQ(P.Residue, 12u);
  // x is top; x*2 is even; x*4 ≡ 0 (mod 4).
  EXPECT_TRUE(computeParity(Ctx, parseOrDie(Ctx, "x")).isTop());
  P = computeParity(Ctx, parseOrDie(Ctx, "x*2"));
  EXPECT_GE(P.KnownLow, 1u);
  EXPECT_EQ(P.Residue & 1, 0u);
  P = computeParity(Ctx, parseOrDie(Ctx, "x*4 + 3"));
  EXPECT_GE(P.KnownLow, 2u);
  EXPECT_EQ(P.Residue & 3, 3u);
}

TEST(ParityDomainTest, SharedOperandDoubling) {
  // Hash-consing makes the two operands of x + x the same node, so the
  // domain may conclude the sum is even although x itself is unknown.
  Context Ctx(64);
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "x + x"));
  EXPECT_GE(P.KnownLow, 1u);
  EXPECT_EQ(P.Residue & 1, 0u);
  // x - x and x ^ x collapse to the constant 0 outright.
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x - x")).KnownLow, 64u);
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x - x")).Residue, 0u);
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x ^ x")).KnownLow, 64u);
}

TEST(ParityDomainTest, FoldsWhatKnownBitsCannot) {
  // The known-bits add transfer needs a known trailing window on *both*
  // operands; x + x has none, so known-bits proves nothing about the low
  // bit. The parity domain sees the doubled operand and folds.
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(x + x) & 1");
  EXPECT_EQ(foldKnownBits(Ctx, E), E); // known-bits alone: no progress
  KnownBits K = computeKnownBits(Ctx, E);
  EXPECT_EQ(K.knownMask() & 1, 0u);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, E)), "0");
  // The odd companion: (x + x) + 1 is odd, so & 1 gives 1.
  const Expr *Odd = parseOrDie(Ctx, "((x + x) + 1) & 1");
  EXPECT_EQ(foldKnownBits(Ctx, Odd), Odd);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, Odd)), "1");
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(IntervalDomainTest, RangeArithmetic) {
  Context Ctx(8);
  Interval I = computeInterval(Ctx, parseOrDie(Ctx, "x & 15"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 15u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "(x & 15) + 16"));
  EXPECT_EQ(I.Lo, 16u);
  EXPECT_EQ(I.Hi, 31u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "(x & 3) * (y & 3)"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 9u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "~(x & 15)"));
  EXPECT_EQ(I.Lo, 240u);
  EXPECT_EQ(I.Hi, 255u);
  // Possible wraparound widens to top.
  I = computeInterval(Ctx, parseOrDie(Ctx, "x + 1"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 255u);
}

TEST(IntervalDomainTest, FoldsWhatKnownBitsCannot) {
  // (x & 3) + 252 has no known trailing window (bits 0-1 unknown), so the
  // known-bits add transfer learns nothing at all. The interval domain
  // bounds the sum in [252, 255], whose common prefix fixes the high six
  // bits, and the final mask erases the remaining uncertainty.
  Context Ctx(8);
  // (The printer renders width-8 constants in signed form: 252 is -4.)
  const Expr *E = parseOrDie(Ctx, "((x & 3) + 252) & 252");
  EXPECT_EQ(foldKnownBits(Ctx, E), E); // known-bits alone: no progress
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, E)), "-4");
  // The | twin: forcing the low bits on collapses [252,255] to 255 (-1).
  const Expr *OrE = parseOrDie(Ctx, "((x & 3) + 252) | 3");
  EXPECT_EQ(foldKnownBits(Ctx, OrE), OrE);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, OrE)), "-1");
}

//===----------------------------------------------------------------------===//
// Engine soundness and refutation
//===----------------------------------------------------------------------===//

/// Uniform random expression over the full operator set (mirrors the fuzz
/// harness generator, shallower).
const Expr *randomExpr(Context &Ctx, RNG &Rng,
                       std::span<const Expr *const> Vars, unsigned Depth) {
  if (Depth == 0 || Rng.chance(1, 4)) {
    if (Rng.chance(1, 2))
      return Vars[Rng.below(Vars.size())];
    return Ctx.getConst(Rng.chance(1, 2) ? Rng.next() : Rng.below(16));
  }
  ExprKind Kinds[] = {ExprKind::Not, ExprKind::Neg, ExprKind::Add,
                      ExprKind::Sub, ExprKind::Mul, ExprKind::And,
                      ExprKind::Or,  ExprKind::Xor};
  ExprKind K = Kinds[Rng.below(std::size(Kinds))];
  if (isUnaryKind(K))
    return Ctx.getUnary(K, randomExpr(Ctx, Rng, Vars, Depth - 1));
  return Ctx.getBinary(K, randomExpr(Ctx, Rng, Vars, Depth - 1),
                       randomExpr(Ctx, Rng, Vars, Depth - 1));
}

TEST(AbstractInterpTest, AllDomainsSoundOnRandomExpressions) {
  // Property: every domain's abstract value contains the concrete value of
  // every node, for every sampled input. This is the Galois-connection
  // soundness obligation checked dynamically.
  for (unsigned Width : {1u, 8u, 32u, 64u}) {
    Context Ctx(Width);
    RNG Rng(1234 + Width);
    const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
    KnownBitsDomain KBD(Ctx.mask());
    ParityDomain PD(Ctx.width());
    IntervalDomain ID(Ctx.mask());
    for (int Trial = 0; Trial < 60; ++Trial) {
      const Expr *E = randomExpr(Ctx, Rng, Vars, 4);
      std::unordered_map<const Expr *, KnownBits> KBMemo;
      std::unordered_map<const Expr *, Parity> PMemo;
      std::unordered_map<const Expr *, Interval> IMemo;
      computeAbstract(KBD, E, KBMemo);
      computeAbstract(PD, E, PMemo);
      computeAbstract(ID, E, IMemo);
      for (int I = 0; I < 20; ++I) {
        uint64_t Vals[] = {Rng.next() & Ctx.mask(), Rng.next() & Ctx.mask(),
                           Rng.next() & Ctx.mask()};
        std::unordered_map<const Expr *, uint64_t> Concrete;
        forEachNodePostOrder(E, [&](const Expr *N) {
          uint64_t V = evaluate(Ctx, N, Vals);
          Concrete.emplace(N, V);
          KnownBits KB = KBMemo.at(N);
          ASSERT_EQ(V & KB.Zero, 0u) << printExpr(Ctx, N);
          ASSERT_EQ(V & KB.One, KB.One) << printExpr(Ctx, N);
          Parity P = PMemo.at(N);
          ASSERT_EQ(V & lowBitsMask(P.KnownLow), P.Residue)
              << printExpr(Ctx, N) << " width " << Width;
          ASSERT_TRUE(IMemo.at(N).contains(V))
              << printExpr(Ctx, N) << " = " << V << " not in ["
              << IMemo.at(N).Lo << ", " << IMemo.at(N).Hi << "]";
        });
      }
    }
  }
}

TEST(AbstractInterpTest, FoldAbstractPreservesSemantics) {
  Context Ctx(16);
  RNG Rng(777);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 80; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 5);
    const Expr *F = foldAbstract(Ctx, E);
    ASSERT_TRUE(verifyExpr(Ctx, F).ok());
    for (int I = 0; I < 20; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, F, Vals))
          << printExpr(Ctx, E) << " -> " << printExpr(Ctx, F);
    }
  }
}

TEST(AbstractInterpTest, RefutesProvablyDifferentExpressions) {
  Context Ctx(8);
  // Parity: 2x vs 2x + 1 differ in the low bit on every input.
  auto R = refuteEquivalence(Ctx, parseOrDie(Ctx, "x + x"),
                             parseOrDie(Ctx, "(x + x) + 1"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "parity");
  // Interval: disjoint ranges [8,11] vs [16,19]. Neither side has a known
  // trailing bit (bits 0-1 are free), so known-bits and parity see nothing
  // and only the interval domain refutes.
  R = refuteEquivalence(Ctx, parseOrDie(Ctx, "(x & 3) + 8"),
                        parseOrDie(Ctx, "(y & 3) + 16"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "interval");
  // Known-bits: conflicting decided bit.
  R = refuteEquivalence(Ctx, parseOrDie(Ctx, "x * 2"),
                        parseOrDie(Ctx, "y | 1"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "known-bits");
  // No false refutation on actually-equivalent forms.
  EXPECT_FALSE(refuteEquivalence(Ctx, parseOrDie(Ctx, "x + y"),
                                 parseOrDie(Ctx, "(x^y) + 2*(x&y)")));
}

TEST(AbstractInterpTest, RefutationNeverFiresOnEquivalentRandomPairs) {
  // refuteEquivalence must be a *proof* of difference: feeding it two
  // expressions that are literally the same function (one obfuscated by a
  // semantics-preserving wrapper) must never produce a refutation.
  Context Ctx(32);
  RNG Rng(4242);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  for (int Trial = 0; Trial < 60; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 4);
    // ~~E and E + 0 and E * 1 are E.
    const Expr *Same = nullptr;
    switch (Rng.below(3)) {
    case 0: Same = Ctx.getNot(Ctx.getNot(E)); break;
    case 1: Same = Ctx.getAdd(E, Ctx.getZero()); break;
    default: Same = Ctx.getMul(E, Ctx.getOne()); break;
    }
    auto R = refuteEquivalence(Ctx, E, Same);
    ASSERT_FALSE(R.has_value())
        << printExpr(Ctx, E) << " falsely refuted via " << R->Domain << ": "
        << R->Detail;
  }
}

TEST(AbstractInterpTest, WorksAtWidthOne) {
  Context Ctx(1);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, parseOrDie(Ctx, "x + x"))), "0");
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, parseOrDie(Ctx, "x ^ x"))), "0");
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "x * 3"));
  EXPECT_LE(P.KnownLow, 1u);
}

TEST(IntervalDomainTest, MulByEvenConstantShiftsTheBound) {
  // Constant multiplier c = m·2^t keeps the product a multiple of 2^t even
  // after wraparound, so the interval top drops by the trailing-zero bits
  // — where the old transfer had to give up with [0, mask].
  Context Ctx(8);
  Interval I = computeInterval(Ctx, parseOrDie(Ctx, "x * 4"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 252u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "6 * x"));
  EXPECT_EQ(I.Hi, 254u); // 6 = 3·2: one trailing zero
  I = computeInterval(Ctx, parseOrDie(Ctx, "x * 32"));
  EXPECT_EQ(I.Hi, 224u);
  // Odd constants and non-constant multipliers still widen to top.
  I = computeInterval(Ctx, parseOrDie(Ctx, "x * 3"));
  EXPECT_EQ(I.Hi, 255u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "x * y"));
  EXPECT_EQ(I.Hi, 255u);
}

TEST(IntervalDomainTest, MulEvenConstantTransferIsSound) {
  // Exhaustive at width 8: every product must land inside the transfer's
  // interval for a spread of even and odd multipliers.
  Context Ctx(8);
  for (uint64_t C : {2u, 4u, 6u, 12u, 40u, 128u, 130u, 255u}) {
    Interval I = computeInterval(
        Ctx, Ctx.getMul(Ctx.getVar("x"), Ctx.getConst(C)));
    for (uint64_t X = 0; X != 256; ++X) {
      uint64_t V = (X * C) & Ctx.mask();
      ASSERT_TRUE(I.contains(V)) << "c=" << C << " x=" << X;
    }
  }
}

//===----------------------------------------------------------------------===//
// E-graph: hashcons, congruence closure, folding, extraction
//===----------------------------------------------------------------------===//

TEST(EGraphTest, HashConsingInternsEachNodeOnce) {
  Context Ctx(32);
  EGraph G(Ctx);
  EClassId A = G.addExpr(parseOrDie(Ctx, "x + y"));
  EClassId B = G.addExpr(parseOrDie(Ctx, "x + y"));
  EXPECT_EQ(G.find(A), G.find(B));
  // x, y, x+y: three e-nodes, three classes.
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(G.numClasses(), 3u);
}

TEST(EGraphTest, CongruenceClosurePropagatesThroughOperators) {
  // Merging b ≡ c must pull a+b and a+c (and then (a+b)*d, (a+c)*d)
  // together at rebuild() — the congruence invariant.
  Context Ctx(32);
  EGraph G(Ctx);
  EClassId AB = G.addExpr(parseOrDie(Ctx, "(a + b) * d"));
  EClassId AC = G.addExpr(parseOrDie(Ctx, "(a + c) * d"));
  ASSERT_NE(G.find(AB), G.find(AC));
  G.merge(G.addExpr(parseOrDie(Ctx, "b")), G.addExpr(parseOrDie(Ctx, "c")));
  G.rebuild();
  EXPECT_TRUE(G.sameClass(AB, AC));
}

TEST(EGraphTest, FoldsConstantOperandsEagerly) {
  Context Ctx(32);
  EGraph G(Ctx);
  EClassId Id = G.addExpr(parseOrDie(Ctx, "2 * 3"));
  ASSERT_TRUE(G.constantOf(Id).has_value());
  EXPECT_EQ(*G.constantOf(Id), 6u);
}

TEST(EGraphTest, FoldsConstantsDiscoveredByMerging) {
  // x+4 is not constant — until x is learned equal to 2; rebuild() must
  // then fold the parent to 6.
  Context Ctx(32);
  EGraph G(Ctx);
  EClassId Sum = G.addExpr(parseOrDie(Ctx, "x + 4"));
  EXPECT_FALSE(G.constantOf(Sum).has_value());
  G.merge(G.addVar(parseOrDie(Ctx, "x")->varIndex()), G.addConst(2));
  G.rebuild();
  ASSERT_TRUE(G.constantOf(Sum).has_value());
  EXPECT_EQ(*G.constantOf(Sum), 6u);
}

TEST(EGraphTest, ConstantsTruncateToTheContextWidth) {
  Context Ctx(8);
  EGraph G(Ctx);
  EXPECT_EQ(G.find(G.addConst(256)), G.find(G.addConst(0)));
  EXPECT_EQ(G.find(G.addConst(~0ULL)), G.find(G.addConst(255)));
}

TEST(EGraphTest, ExtractsTheSmallestKnownForm) {
  Context Ctx(32);
  EGraph G(Ctx);
  EClassId Big = G.addExpr(parseOrDie(Ctx, "(x | y) + (x & y)"));
  const Expr *Small = parseOrDie(Ctx, "x + y");
  G.merge(Big, G.addExpr(Small));
  G.rebuild();
  EXPECT_EQ(G.extract(Big), Small);
}

//===----------------------------------------------------------------------===//
// Rule certification: every shipped rule, all widths, unsound rejection
//===----------------------------------------------------------------------===//

TEST(RuleCertification, ShippedTableFullyCertified) {
  RuleSet RS;
  addDefaultRules(RS);
  CertifySummary S = certifyRules(RS);
  EXPECT_TRUE(S.allCertified());
  for (const RuleCert &C : S.Results)
    EXPECT_TRUE(C.ok()) << C.Name << ": " << C.Detail;
  // Both provers must carry their share: the ring axioms certify
  // polynomially, the MBA bridges by corner sums.
  unsigned Poly = 0, Corner = 0;
  for (const EqualityRule &R : RS.rules()) {
    Poly += R.Certified == CertMethod::Polynomial;
    Corner += R.Certified == CertMethod::LinearCorner;
  }
  EXPECT_GT(Poly, 0u);
  EXPECT_GT(Corner, 0u);
}

TEST(RuleCertification, ShippedRulesHoldAtEveryWidth2Through64) {
  // The certificate claims all-width soundness; spot-check it against the
  // concrete evaluator by re-parsing each rule's surface syntax into a
  // context of every width and sampling random points.
  RuleSet RS;
  addDefaultRules(RS);
  RNG Rng(0xA11);
  for (unsigned Width = 2; Width <= 64; ++Width) {
    Context Ctx(Width);
    for (const EqualityRule &R : RS.rules()) {
      const Expr *L = parseOrDie(Ctx, R.LhsText);
      const Expr *Rh = parseOrDie(Ctx, R.RhsText);
      std::vector<uint64_t> Vals(Ctx.numVars());
      for (int I = 0; I < 24; ++I) {
        for (uint64_t &V : Vals)
          V = Rng.next();
        ASSERT_EQ(evaluate(Ctx, L, Vals), evaluate(Ctx, Rh, Vals))
            << "rule " << R.Name << " fails at width " << Width;
      }
    }
  }
}

TEST(RuleCertification, RejectsDeliberatelyUnsoundRules) {
  // An injected unsound rule must stay Uncertified, with the witnessing
  // corner reported — the table is checked data, not trusted code.
  RuleSet RS;
  RS.add("bogus-add-to-or", "a+b", "a|b");
  RS.add("bogus-mul-to-and", "a*b", "a&b");
  RS.add("bogus-neg", "-a", "~a");
  RS.add("sound-control", "a+b", "(a|b)+(a&b)"); // genuine Table 5 entry
  CertifySummary S = certifyRules(RS);
  EXPECT_EQ(S.NumCertified, 1u);
  EXPECT_FALSE(S.allCertified());
  for (const RuleCert &C : S.Results) {
    if (C.Name == "sound-control") {
      EXPECT_TRUE(C.ok());
      continue;
    }
    EXPECT_FALSE(C.ok()) << C.Name;
    EXPECT_FALSE(C.Detail.empty()) << C.Name;
  }
  // And pruning drops exactly the bogus ones.
  EXPECT_EQ(RS.pruneUncertified(), 3u);
  ASSERT_EQ(RS.rules().size(), 1u);
  EXPECT_EQ(RS.rules().front().Name, "sound-control");
}

TEST(RuleCertification, CertificationIsIdempotent) {
  RuleSet RS;
  addDefaultRules(RS);
  CertifySummary First = certifyRules(RS);
  CertifySummary Second = certifyRules(RS);
  ASSERT_EQ(First.Results.size(), Second.Results.size());
  for (size_t I = 0; I != First.Results.size(); ++I)
    EXPECT_EQ(First.Results[I].Method, Second.Results[I].Method)
        << First.Results[I].Name;
}

TEST(RuleCertification, CertifiedRulesSingletonIsFullyCertified) {
  for (const EqualityRule &R : certifiedRules().rules())
    EXPECT_NE(R.Certified, CertMethod::Uncertified) << R.Name;
  EXPECT_FALSE(certifiedRules().rules().empty());
}

//===----------------------------------------------------------------------===//
// The equality-saturation prover
//===----------------------------------------------------------------------===//

TEST(ProverTest, SyntacticAndCongruentFastPaths) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x*y + (x&z)");
  EXPECT_EQ(proveEquivalence(Ctx, E, E).Outcome, ProveOutcome::Proved);
  // Constant folding inside the e-graph: congruence without saturation.
  ProveResult R =
      proveEquivalence(Ctx, parseOrDie(Ctx, "x + (2*3)"),
                       parseOrDie(Ctx, "x + 6"));
  EXPECT_EQ(R.Outcome, ProveOutcome::Proved);
}

TEST(ProverTest, ProvesTable5AndRingIdentities) {
  Context Ctx(64);
  const std::pair<const char *, const char *> Identities[] = {
      {"(x&~y)+y", "x|y"},
      {"(x|y)+(x&y)", "x+y"},
      {"(x^y)+2*(x&y)", "x+y"},
      {"2*(x|y)-(x^y)", "x+y"},
      {"x+y-(x&y)", "x|y"},
      {"(x|y)-(x&y)", "x^y"},
      {"(x&~y)-(~x&y)", "x-y"},
      {"~(x&y)", "~x|~y"},
      {"-(-x)", "x"},
      {"(x+y)+z", "x+(y+z)"},
      {"x*(y+z)", "x*y+x*z"},
  };
  for (auto [Lhs, Rhs] : Identities) {
    ProveResult R = proveEquivalence(Ctx, parseOrDie(Ctx, Lhs),
                                     parseOrDie(Ctx, Rhs));
    EXPECT_EQ(R.Outcome, ProveOutcome::Proved)
        << Lhs << " == " << Rhs << " (" << R.Detail << ")";
  }
}

TEST(ProverTest, RefutesViaAbstractDomains) {
  Context Ctx(64);
  // Parity: 2x is even, 2x+1 is odd — different on every input.
  ProveResult R = proveEquivalence(Ctx, parseOrDie(Ctx, "2*x"),
                                   parseOrDie(Ctx, "2*x + 1"));
  EXPECT_EQ(R.Outcome, ProveOutcome::Refuted);
  EXPECT_FALSE(R.Detail.empty());
}

TEST(ProverTest, UnknownOnUndecidablePairsWithinBudget) {
  Context Ctx(64);
  // Different variables: not equal, but no domain refutes a top value.
  EXPECT_EQ(proveEquivalence(Ctx, parseOrDie(Ctx, "x"), parseOrDie(Ctx, "y"))
                .Outcome,
            ProveOutcome::Unknown);
  // x*x vs x: unequal beyond the rule fragment; must stay Unknown, never
  // a false verdict.
  EXPECT_EQ(proveEquivalence(Ctx, parseOrDie(Ctx, "x*x"),
                             parseOrDie(Ctx, "x"))
                .Outcome,
            ProveOutcome::Unknown);
}

TEST(ProverTest, ReportsSaturationStatistics) {
  Context Ctx(64);
  ProveResult R = proveEquivalence(Ctx, parseOrDie(Ctx, "(x|y)+(x&y)"),
                                   parseOrDie(Ctx, "x+y"));
  ASSERT_EQ(R.Outcome, ProveOutcome::Proved);
  EXPECT_GE(R.Stats.Iterations, 1u);
  EXPECT_GT(R.Stats.Matches, 0u);
  EXPECT_GT(R.Stats.ENodes, 0u);
}

TEST(ProverTest, UncertifiedRulesNeverTouchTheEGraph) {
  // A custom rule set whose only entry is unsound and uncertified: the
  // saturation loop must skip it, leaving the (false) equivalence Unknown
  // rather than "proving" it.
  Context Ctx(64);
  RuleSet RS;
  RS.add("bogus-add-to-or", "a+b", "a|b");
  Prover P(Ctx, &RS);
  EXPECT_EQ(P.prove(parseOrDie(Ctx, "x+y"), parseOrDie(Ctx, "x|y")).Outcome,
            ProveOutcome::Unknown);
  // Certification fails; the rule stays out even after the attempt.
  certifyRules(RS);
  EXPECT_EQ(P.prove(parseOrDie(Ctx, "x+y"), parseOrDie(Ctx, "x|y")).Outcome,
            ProveOutcome::Unknown);
}

TEST(ProverTest, BudgetBoundsTheSearch) {
  Context Ctx(64);
  ProveBudget Tiny;
  Tiny.MaxIterations = 0; // congruence closure only, no saturation
  ProveResult R = proveEquivalence(Ctx, parseOrDie(Ctx, "(x|y)+(x&y)"),
                                   parseOrDie(Ctx, "x+y"), Tiny);
  EXPECT_EQ(R.Outcome, ProveOutcome::Unknown);
  EXPECT_EQ(R.Stats.Iterations, 0u);
}

TEST(ProverTest, SaturateAndExtractShrinksKnownIdentities) {
  Context Ctx(64);
  Prover P(Ctx);
  const Expr *E = parseOrDie(Ctx, "(x | y) + (x & y)");
  const Expr *S = P.saturateAndExtract(E);
  // The minimal form is x+y (or its commutation, depending on discovery
  // order) — 3 tree nodes either way.
  EXPECT_EQ(countTreeNodes(S), 3u) << printExpr(Ctx, S);
  EXPECT_EQ(proveEquivalence(Ctx, E, S).Outcome, ProveOutcome::Proved);
  // Extraction must never grow the expression (commutation is allowed).
  const Expr *Already = parseOrDie(Ctx, "x ^ y");
  const Expr *Kept = P.saturateAndExtract(Already);
  EXPECT_LE(countTreeNodes(Kept), countTreeNodes(Already));
  EXPECT_EQ(proveEquivalence(Ctx, Already, Kept).Outcome,
            ProveOutcome::Proved);
}

} // namespace
