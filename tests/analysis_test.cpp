//===- tests/analysis_test.cpp - Verifier and abstract-domain tests -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the soundness-auditing subsystem (src/analysis): the IR
/// verifier and the multi-domain abstract-interpretation framework.
///
/// The load-bearing regression tests here pin down that the parity and
/// interval domains each decide expressions the known-bits domain cannot:
///  * parity exploits DAG operand sharing — `(x + x) & 1 == 0`;
///  * intervals propagate magnitude prefixes — `((x & 3) + 252) & 252`
///    at width 8 is the constant 252.
///
//===----------------------------------------------------------------------===//

#include "analysis/AbstractInterp.h"

#include "analysis/KnownBits.h"
#include "analysis/Verifier.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <span>

using namespace mba;

namespace {

//===----------------------------------------------------------------------===//
// IR verifier
//===----------------------------------------------------------------------===//

TEST(VerifierTest, WellFormedExpressionsPass) {
  Context Ctx(32);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) + (x^y)*(x&3) - -z");
  VerifyResult R = verifyExpr(Ctx, E);
  EXPECT_TRUE(R.ok()) << R.Message;
  EXPECT_TRUE(verifyContext(Ctx).ok());
}

TEST(VerifierTest, ContextVerifiesAfterHeavyUse) {
  Context Ctx(16);
  RNG Rng(99);
  const Expr *Vars[] = {Ctx.getVar("a"), Ctx.getVar("b"), Ctx.getVar("c")};
  const Expr *E = Vars[0];
  for (int I = 0; I < 500; ++I) {
    const Expr *V = Vars[Rng.below(3)];
    switch (Rng.below(6)) {
    case 0: E = Ctx.getAdd(E, V); break;
    case 1: E = Ctx.getMul(E, Ctx.getConst(Rng.next())); break;
    case 2: E = Ctx.getXor(E, V); break;
    case 3: E = Ctx.getNot(E); break;
    case 4: E = Ctx.getSub(V, E); break;
    default: E = Ctx.getOr(E, Ctx.getAnd(E, V)); break;
    }
  }
  VerifyResult R = verifyContext(Ctx);
  EXPECT_TRUE(R.ok()) << R.Message;
}

TEST(VerifierTest, RejectsForeignNodes) {
  // A structurally fine node from another context is not interned here:
  // the verifier must refuse it rather than silently accept look-alikes.
  Context Ours(32), Theirs(32);
  const Expr *Foreign = Theirs.getAdd(Theirs.getVar("x"), Theirs.getConst(1));
  VerifyResult R = verifyExpr(Ours, Foreign);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Message.find("not interned"), std::string::npos) << R.Message;
}

TEST(VerifierTest, RejectsForeignVariables) {
  Context Ours(32), Theirs(32);
  Ours.getVar("x");
  const Expr *TheirVar = Theirs.getVar("y");
  Theirs.getVar("z");
  // Same dense index range, different identity: the variable-table check
  // must notice the pointer mismatch.
  VerifyResult R = verifyExpr(Ours, TheirVar);
  EXPECT_FALSE(R.ok());
}

TEST(VerifierTest, RejectsNull) {
  Context Ctx(8);
  EXPECT_FALSE(verifyExpr(Ctx, nullptr).ok());
}

//===----------------------------------------------------------------------===//
// Parity / congruence domain
//===----------------------------------------------------------------------===//

TEST(ParityDomainTest, ConstantsAndStructure) {
  Context Ctx(8);
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "12"));
  EXPECT_EQ(P.KnownLow, 8u);
  EXPECT_EQ(P.Residue, 12u);
  // x is top; x*2 is even; x*4 ≡ 0 (mod 4).
  EXPECT_TRUE(computeParity(Ctx, parseOrDie(Ctx, "x")).isTop());
  P = computeParity(Ctx, parseOrDie(Ctx, "x*2"));
  EXPECT_GE(P.KnownLow, 1u);
  EXPECT_EQ(P.Residue & 1, 0u);
  P = computeParity(Ctx, parseOrDie(Ctx, "x*4 + 3"));
  EXPECT_GE(P.KnownLow, 2u);
  EXPECT_EQ(P.Residue & 3, 3u);
}

TEST(ParityDomainTest, SharedOperandDoubling) {
  // Hash-consing makes the two operands of x + x the same node, so the
  // domain may conclude the sum is even although x itself is unknown.
  Context Ctx(64);
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "x + x"));
  EXPECT_GE(P.KnownLow, 1u);
  EXPECT_EQ(P.Residue & 1, 0u);
  // x - x and x ^ x collapse to the constant 0 outright.
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x - x")).KnownLow, 64u);
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x - x")).Residue, 0u);
  EXPECT_EQ(computeParity(Ctx, parseOrDie(Ctx, "x ^ x")).KnownLow, 64u);
}

TEST(ParityDomainTest, FoldsWhatKnownBitsCannot) {
  // The known-bits add transfer needs a known trailing window on *both*
  // operands; x + x has none, so known-bits proves nothing about the low
  // bit. The parity domain sees the doubled operand and folds.
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(x + x) & 1");
  EXPECT_EQ(foldKnownBits(Ctx, E), E); // known-bits alone: no progress
  KnownBits K = computeKnownBits(Ctx, E);
  EXPECT_EQ(K.knownMask() & 1, 0u);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, E)), "0");
  // The odd companion: (x + x) + 1 is odd, so & 1 gives 1.
  const Expr *Odd = parseOrDie(Ctx, "((x + x) + 1) & 1");
  EXPECT_EQ(foldKnownBits(Ctx, Odd), Odd);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, Odd)), "1");
}

//===----------------------------------------------------------------------===//
// Interval domain
//===----------------------------------------------------------------------===//

TEST(IntervalDomainTest, RangeArithmetic) {
  Context Ctx(8);
  Interval I = computeInterval(Ctx, parseOrDie(Ctx, "x & 15"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 15u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "(x & 15) + 16"));
  EXPECT_EQ(I.Lo, 16u);
  EXPECT_EQ(I.Hi, 31u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "(x & 3) * (y & 3)"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 9u);
  I = computeInterval(Ctx, parseOrDie(Ctx, "~(x & 15)"));
  EXPECT_EQ(I.Lo, 240u);
  EXPECT_EQ(I.Hi, 255u);
  // Possible wraparound widens to top.
  I = computeInterval(Ctx, parseOrDie(Ctx, "x + 1"));
  EXPECT_EQ(I.Lo, 0u);
  EXPECT_EQ(I.Hi, 255u);
}

TEST(IntervalDomainTest, FoldsWhatKnownBitsCannot) {
  // (x & 3) + 252 has no known trailing window (bits 0-1 unknown), so the
  // known-bits add transfer learns nothing at all. The interval domain
  // bounds the sum in [252, 255], whose common prefix fixes the high six
  // bits, and the final mask erases the remaining uncertainty.
  Context Ctx(8);
  // (The printer renders width-8 constants in signed form: 252 is -4.)
  const Expr *E = parseOrDie(Ctx, "((x & 3) + 252) & 252");
  EXPECT_EQ(foldKnownBits(Ctx, E), E); // known-bits alone: no progress
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, E)), "-4");
  // The | twin: forcing the low bits on collapses [252,255] to 255 (-1).
  const Expr *OrE = parseOrDie(Ctx, "((x & 3) + 252) | 3");
  EXPECT_EQ(foldKnownBits(Ctx, OrE), OrE);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, OrE)), "-1");
}

//===----------------------------------------------------------------------===//
// Engine soundness and refutation
//===----------------------------------------------------------------------===//

/// Uniform random expression over the full operator set (mirrors the fuzz
/// harness generator, shallower).
const Expr *randomExpr(Context &Ctx, RNG &Rng,
                       std::span<const Expr *const> Vars, unsigned Depth) {
  if (Depth == 0 || Rng.chance(1, 4)) {
    if (Rng.chance(1, 2))
      return Vars[Rng.below(Vars.size())];
    return Ctx.getConst(Rng.chance(1, 2) ? Rng.next() : Rng.below(16));
  }
  ExprKind Kinds[] = {ExprKind::Not, ExprKind::Neg, ExprKind::Add,
                      ExprKind::Sub, ExprKind::Mul, ExprKind::And,
                      ExprKind::Or,  ExprKind::Xor};
  ExprKind K = Kinds[Rng.below(std::size(Kinds))];
  if (isUnaryKind(K))
    return Ctx.getUnary(K, randomExpr(Ctx, Rng, Vars, Depth - 1));
  return Ctx.getBinary(K, randomExpr(Ctx, Rng, Vars, Depth - 1),
                       randomExpr(Ctx, Rng, Vars, Depth - 1));
}

TEST(AbstractInterpTest, AllDomainsSoundOnRandomExpressions) {
  // Property: every domain's abstract value contains the concrete value of
  // every node, for every sampled input. This is the Galois-connection
  // soundness obligation checked dynamically.
  for (unsigned Width : {1u, 8u, 32u, 64u}) {
    Context Ctx(Width);
    RNG Rng(1234 + Width);
    const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
    KnownBitsDomain KBD(Ctx.mask());
    ParityDomain PD(Ctx.width());
    IntervalDomain ID(Ctx.mask());
    for (int Trial = 0; Trial < 60; ++Trial) {
      const Expr *E = randomExpr(Ctx, Rng, Vars, 4);
      std::unordered_map<const Expr *, KnownBits> KBMemo;
      std::unordered_map<const Expr *, Parity> PMemo;
      std::unordered_map<const Expr *, Interval> IMemo;
      computeAbstract(KBD, E, KBMemo);
      computeAbstract(PD, E, PMemo);
      computeAbstract(ID, E, IMemo);
      for (int I = 0; I < 20; ++I) {
        uint64_t Vals[] = {Rng.next() & Ctx.mask(), Rng.next() & Ctx.mask(),
                           Rng.next() & Ctx.mask()};
        std::unordered_map<const Expr *, uint64_t> Concrete;
        forEachNodePostOrder(E, [&](const Expr *N) {
          uint64_t V = evaluate(Ctx, N, Vals);
          Concrete.emplace(N, V);
          KnownBits KB = KBMemo.at(N);
          ASSERT_EQ(V & KB.Zero, 0u) << printExpr(Ctx, N);
          ASSERT_EQ(V & KB.One, KB.One) << printExpr(Ctx, N);
          Parity P = PMemo.at(N);
          ASSERT_EQ(V & lowBitsMask(P.KnownLow), P.Residue)
              << printExpr(Ctx, N) << " width " << Width;
          ASSERT_TRUE(IMemo.at(N).contains(V))
              << printExpr(Ctx, N) << " = " << V << " not in ["
              << IMemo.at(N).Lo << ", " << IMemo.at(N).Hi << "]";
        });
      }
    }
  }
}

TEST(AbstractInterpTest, FoldAbstractPreservesSemantics) {
  Context Ctx(16);
  RNG Rng(777);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 80; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 5);
    const Expr *F = foldAbstract(Ctx, E);
    ASSERT_TRUE(verifyExpr(Ctx, F).ok());
    for (int I = 0; I < 20; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, F, Vals))
          << printExpr(Ctx, E) << " -> " << printExpr(Ctx, F);
    }
  }
}

TEST(AbstractInterpTest, RefutesProvablyDifferentExpressions) {
  Context Ctx(8);
  // Parity: 2x vs 2x + 1 differ in the low bit on every input.
  auto R = refuteEquivalence(Ctx, parseOrDie(Ctx, "x + x"),
                             parseOrDie(Ctx, "(x + x) + 1"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "parity");
  // Interval: disjoint ranges [8,11] vs [16,19]. Neither side has a known
  // trailing bit (bits 0-1 are free), so known-bits and parity see nothing
  // and only the interval domain refutes.
  R = refuteEquivalence(Ctx, parseOrDie(Ctx, "(x & 3) + 8"),
                        parseOrDie(Ctx, "(y & 3) + 16"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "interval");
  // Known-bits: conflicting decided bit.
  R = refuteEquivalence(Ctx, parseOrDie(Ctx, "x * 2"),
                        parseOrDie(Ctx, "y | 1"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Domain, "known-bits");
  // No false refutation on actually-equivalent forms.
  EXPECT_FALSE(refuteEquivalence(Ctx, parseOrDie(Ctx, "x + y"),
                                 parseOrDie(Ctx, "(x^y) + 2*(x&y)")));
}

TEST(AbstractInterpTest, RefutationNeverFiresOnEquivalentRandomPairs) {
  // refuteEquivalence must be a *proof* of difference: feeding it two
  // expressions that are literally the same function (one obfuscated by a
  // semantics-preserving wrapper) must never produce a refutation.
  Context Ctx(32);
  RNG Rng(4242);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  for (int Trial = 0; Trial < 60; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 4);
    // ~~E and E + 0 and E * 1 are E.
    const Expr *Same = nullptr;
    switch (Rng.below(3)) {
    case 0: Same = Ctx.getNot(Ctx.getNot(E)); break;
    case 1: Same = Ctx.getAdd(E, Ctx.getZero()); break;
    default: Same = Ctx.getMul(E, Ctx.getOne()); break;
    }
    auto R = refuteEquivalence(Ctx, E, Same);
    ASSERT_FALSE(R.has_value())
        << printExpr(Ctx, E) << " falsely refuted via " << R->Domain << ": "
        << R->Detail;
  }
}

TEST(AbstractInterpTest, WorksAtWidthOne) {
  Context Ctx(1);
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, parseOrDie(Ctx, "x + x"))), "0");
  EXPECT_EQ(printExpr(Ctx, foldAbstract(Ctx, parseOrDie(Ctx, "x ^ x"))), "0");
  Parity P = computeParity(Ctx, parseOrDie(Ctx, "x * 3"));
  EXPECT_LE(P.KnownLow, 1u);
}

} // namespace
