// mba-tidy corpus: a shared Context captured into parallelFor workers.
// The interner is single-owner; workers must build into per-worker
// Contexts (bench/Harness.cpp shows the sanctioned pattern).
#include "ast/Context.h"
#include "support/ThreadPool.h"

using namespace mba;

void defaultRefCapture(support::ThreadPool &Pool, Context &Ctx) {
  Pool.parallelFor(64, [&](size_t I, unsigned) {
    const Expr *E = Ctx.getConst(I); // EXPECT: mba-context-captured-by-pool
    (void)E;
  });
}

void explicitCapture(support::ThreadPool &Pool, Context &Shared) {
  Pool.parallelFor(8, [&Shared](size_t I, unsigned) {
    Shared.getVar("x"); // EXPECT: mba-context-captured-by-pool
    (void)I;
  });
}

void readOnlyUseIsFine(support::ThreadPool &Pool, Context &Ctx,
                       uint64_t *Sums) {
  Pool.parallelFor(8, [&](size_t I, unsigned) {
    Sums[I] = Ctx.mask() & Ctx.truncate(I); // width/mask family: allowed
  });
}
