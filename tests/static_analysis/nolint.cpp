// mba-tidy corpus: NOLINT suppression semantics. Every pattern below is a
// true positive, but each carries a suppression that must silence it, so
// the whole file is expected to produce zero findings.
#include <cstdint>
#include <mutex>

#include "ast/Context.h"
#include "support/Cache.h"

using namespace mba;

void suppressedAll(std::mutex &Mu, int &Counter) {
  std::lock_guard<std::mutex>(Mu); // NOLINT
  ++Counter;
}

void suppressedByName(std::mutex &Mu, int &Counter) {
  std::lock_guard<std::mutex>(Mu); // NOLINT(mba-unnamed-raii)
  ++Counter;
}

uint64_t suppressedNextLine(const Expr *E) {
  // NOLINTNEXTLINE(mba-raw-pointer-in-cache-key)
  return support::hashMix64((uintptr_t)E);
}

const Expr *suppressedCross(Context &A, Context &B) {
  const Expr *X = A.getVar("x");
  // This crossing is deliberate in this snippet; a real one would need a
  // justification comment just like MBA_NO_THREAD_SAFETY_ANALYSIS does.
  return B.getNot(X); // NOLINT(mba-cross-context-expr)
}
