// mba-tidy corpus: fresh SAT solvers built inside per-query loops. The
// incremental backend owns one persistent SatSolver and retires queries
// with guard literals; rebuilding the solver every iteration throws away
// the learnt clauses, VSIDS order and saved phases the previous query
// paid for.
#include "sat/Solver.h"

#include <memory>
#include <vector>

void freshSolverPerQuery(const std::vector<int> &Queries) {
  for (int Q : Queries) {
    mba::sat::SatSolver S; // EXPECT: mba-sat-solver-in-loop
    (void)Q;
    (void)S;
  }
}

void freshHeapSolverPerQuery(const std::vector<int> &Queries) {
  std::unique_ptr<mba::sat::SatSolver> S;
  while (!Queries.empty()) {
    S = std::make_unique<mba::sat::SatSolver>(); // EXPECT: mba-sat-solver-in-loop
    break;
  }
}

void rawNewPerQuery(int N) {
  for (int I = 0; I != N; ++I) {
    auto *S = new mba::sat::SatSolver; // EXPECT: mba-sat-solver-in-loop
    delete S;
  }
}

// The sanctioned shape: one hoisted instance outside the loop, each query
// guarded by an assumption literal. A reference to the persistent solver
// inside the loop body is fine.
void hoistedIncrementalSolver(const std::vector<int> &Queries) {
  mba::sat::SatSolver Solver;
  for (int Q : Queries) {
    mba::sat::SatSolver &S = Solver;
    (void)S;
    (void)Q;
  }
}
