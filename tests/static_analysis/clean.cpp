// mba-tidy corpus: the positive case. Everything in this file follows the
// repo's concurrency and caching idioms, so every check must stay silent —
// a finding here is a false positive and a test failure.
#include <cstdint>
#include <mutex>

#include "ast/Context.h"
#include "ast/ExprUtils.h"
#include "support/Cache.h"
#include "support/ThreadPool.h"
#include "support/ThreadSafety.h"
#include "support/Telemetry.h"

using namespace mba;

// RAII guards with names live to the end of the scope.
void namedGuards(support::Mutex &Mu, std::mutex &Raw, int &Counter) {
  MBA_TRACE_SPAN("clean.namedGuards");
  support::MutexLock Lock(Mu);
  std::lock_guard<std::mutex> Other(Raw);
  ++Counter;
}

// Constructor declarations look like `Type(...);` but must not be flagged.
class GuardLike {
public:
  explicit GuardLike(support::Mutex &M);
  GuardLike(const GuardLike &) = delete;
  GuardLike &operator=(const GuardLike &) = delete;

private:
  support::Mutex &Mu;
};

// Crossing contexts through cloneExpr is the sanctioned path.
const Expr *cloneThenUse(Context &A, Context &B) {
  const Expr *X = A.getVar("x");
  const Expr *Moved = cloneExpr(B, X);
  return B.getAdd(Moved, B.getOne());
}

// Workers own their Contexts; the shared one is only read for config.
void perWorkerContexts(support::ThreadPool &Pool, Context &Shared,
                       uint64_t *Out) {
  Pool.parallelFor(16, [&](size_t I, unsigned) {
    Context Mine(Shared.width());
    const Expr *E = Mine.getConst(I);
    Out[I] = E->constValue() & Shared.mask();
  });
}

// Cache keys from structural fingerprints, never addresses. Reading bytes
// *through* a pointer is fine; hashing the pointer value is not.
uint64_t goodKey(const Expr *E, std::string_view Name) {
  uint64_t H = support::hashMix64(exprFingerprint(E));
  H = support::hashCombine64(H, support::hashString64(Name));
  H = support::hashCombine64(H, support::hashBytes64(Name.data(), Name.size()));
  return H;
}
