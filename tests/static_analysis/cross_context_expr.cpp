// mba-tidy corpus: Expr* crossing Context boundaries without cloneExpr.
// Lines carrying an expectation marker must be flagged by exactly the named
// check; every other line must stay silent. Corpus files are lexed, never
// compiled.
#include "ast/Context.h"
#include "ast/ExprUtils.h"

using namespace mba;

const Expr *leakAcrossContexts(Context &A, Context &B) {
  const Expr *X = A.getVar("x");
  const Expr *Y = A.getAdd(X, A.getOne()); // same context: fine
  return B.getNot(Y); // EXPECT: mba-cross-context-expr
}

const Expr *leakViaRebuild(Context &Src, Context &Dst) {
  const Expr *E = Src.getVar("x");
  const Expr *L = cloneExpr(Dst, Src.getConst(1)); // sanctioned crossing
  return Dst.rebuild(E, L, L); // EXPECT: mba-cross-context-expr
}

const Expr *staleAfterReassign(Context &A, Context &B) {
  const Expr *E = cloneExpr(B, A.getVar("x")); // origin becomes B
  const Expr *Ok = B.getNeg(E);                // fine: E lives in B now
  E = A.getVar("y");                           // origin back to A
  (void)Ok;
  return B.getNeg(E); // EXPECT: mba-cross-context-expr
}
