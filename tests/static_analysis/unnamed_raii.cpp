// mba-tidy corpus: discarded RAII temporaries. Each unnamed guard is
// destroyed at its own ';', so the critical section it was meant to
// protect runs unlocked (or the trace span records ~0ns).
#include <mutex>

#include "support/ThreadSafety.h"
#include "support/Telemetry.h"

void unlockedCriticalSection(std::mutex &Mu, int &Counter) {
  std::lock_guard<std::mutex>(Mu); // EXPECT: mba-unnamed-raii
  ++Counter;
}

void guardGoneImmediately(mba::support::Mutex &Mu, int &Counter) {
  mba::support::MutexLock(Mu); // EXPECT: mba-unnamed-raii
  ++Counter;
}

void zeroLengthSpan() {
  mba::support::SpanGuard("simplify.total"); // EXPECT: mba-unnamed-raii
}
