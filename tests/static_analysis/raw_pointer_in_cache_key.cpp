// mba-tidy corpus: pointer values folded into semantic cache keys.
// Interned Expr addresses are process-local; a key derived from one can
// never match after a snapshot save/load, silently zeroing the hit rate.
#include <cstdint>

#include "ast/Expr.h"
#include "support/Cache.h"

using namespace mba;

uint64_t keyFromAddress(const Expr *E, uint64_t Salt) {
  uint64_t H = support::hashMix64(Salt);
  H = support::hashCombine64(H, (uintptr_t)E); // EXPECT: mba-raw-pointer-in-cache-key
  return H;
}

uint64_t keyFromCast(const Expr *E) {
  return support::hashMix64(reinterpret_cast<uintptr_t>(E)); // EXPECT: mba-raw-pointer-in-cache-key
}
