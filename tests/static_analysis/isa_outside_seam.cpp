// mba-tidy corpus: raw SIMD surface outside the src/support/Bitslice*
// seam. This repository keeps every intrinsic, vector type, and
// CPU-feature macro behind the one wide-engine dispatch boundary; a file
// like this one (path not under the seam) reaching for them directly is
// growing a second, untested ISA seam. (One flagged token per line: the
// corpus harness pairs each diagnostic with one EXPECT marker.)
#include <immintrin.h> // EXPECT: mba-isa-outside-seam

#include <cstdint>

#ifdef __AVX2__ // EXPECT: mba-isa-outside-seam
void copyAvx2(const uint64_t *A, uint64_t *Out) {
  __m256i V =              // EXPECT: mba-isa-outside-seam
      _mm256_loadu_si256(  // EXPECT: mba-isa-outside-seam
          reinterpret_cast<const __m256i_u *>(A)); // EXPECT: mba-isa-outside-seam
  _mm256_storeu_si256(     // EXPECT: mba-isa-outside-seam
      reinterpret_cast<__m256i_u *>(Out), V);      // EXPECT: mba-isa-outside-seam
}
#endif

#if defined(__AVX512F__) // EXPECT: mba-isa-outside-seam
void copyAvx512(const uint64_t *A, uint64_t *Out) {
  __m512i V =              // EXPECT: mba-isa-outside-seam
      _mm512_loadu_si512(A); // EXPECT: mba-isa-outside-seam
  _mm512_storeu_si512(     // EXPECT: mba-isa-outside-seam
      Out, V);
}
#endif

// The sanctioned shape: ISA-agnostic code through the dispatch API. Names
// from the seam's public surface (kernelsFor, activeKernels, forceIsa,
// MBA_FORCE_ISA, Isa::Avx2) are not raw ISA surface and stay silent, as
// do intrinsic names inside string literals.
namespace fake_bitslice {
struct WideKernels {
  void (*LaneAnd)(const uint64_t *, const uint64_t *, uint64_t *, unsigned);
};
const WideKernels &activeKernels();
} // namespace fake_bitslice

void andDispatch(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                 unsigned N) {
  fake_bitslice::activeKernels().LaneAnd(A, B, Out, N);
  const char *Doc = "prefer kernelsFor over _mm256_and_si256";
  (void)Doc;
}
