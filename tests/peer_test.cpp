//===- tests/peer_test.cpp - SSPAM / Syntia peer-tool tests ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "peer/PatternRewriter.h"
#include "peer/Synthesizer.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Metrics.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

void expectSameSemantics(const Context &Ctx, const Expr *A, const Expr *B,
                         uint64_t Seed = 3) {
  RNG Rng(Seed);
  for (int I = 0; I < 200; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, A, Vals), evaluate(Ctx, B, Vals))
        << printExpr(Ctx, A) << " vs " << printExpr(Ctx, B);
  }
}

TEST(PatternRewriterTest, LibraryRulesAreIdentities) {
  // Every built-in rule must itself be semantics-preserving; probe them
  // through expressions that trigger each rule shape.
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  EXPECT_GT(Rewriter.numRules(), 30u);
  const char *Triggers[] = {
      "(x&~y)+y",      "(x|y)-(x&y)",  "(x^y)+2*(x&y)", "(x|y)+(x&y)",
      "2*(x|y)-(x^y)", "x+y-(x|y)",    "x+y-(x&y)",     "x+y-2*(x&y)",
      "(x&~y)-(~x&y)", "~x+1",         "-~x-1",         "~(~x)",
      "~(x-1)",        "x&x",          "x^x",           "x|~x",
      "x&0",           "x^-1",         "x*1",           "0-x",
      "(x^y)+(x&y)",   "(x|y)-y",      "(~x&y)+(x&y)",  "~(-x)",
  };
  for (const char *T : Triggers) {
    const Expr *E = parseOrDie(Ctx, T);
    const Expr *R = Rewriter.simplify(E);
    expectSameSemantics(Ctx, E, R);
    EXPECT_NE(R, E) << "rule did not fire for " << T;
  }
}

TEST(PatternRewriterTest, EveryRuleIsUniversallyValid) {
  // Direct verification of the library: a rule's wildcards are universally
  // quantified, so evaluating pattern and replacement with the wildcard
  // variables bound to random words must always agree.
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  RNG Rng(2025);
  for (const RewriteRule &Rule : Rewriter.rules()) {
    for (int I = 0; I < 200; ++I) {
      uint64_t Vals[8];
      for (auto &V : Vals)
        V = Rng.next();
      ASSERT_EQ(evaluate(Ctx, Rule.Pattern, Vals),
                evaluate(Ctx, Rule.Replacement, Vals))
          << "rule '" << Rule.Name << "' is not an identity";
    }
  }
}

TEST(PatternRewriterTest, SimplifiesKnownPatterns) {
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  struct Case {
    const char *In, *Out;
  } Cases[] = {
      {"(x&~y)+y", "x|y"},
      {"(x|y)-(x&y)", "x^y"},
      {"~x+1", "-x"},
      {"x^x", "0"},
      {"(x&~y)+y + 0", "x|y"},   // nested: fires inside the sum
      {"((x|y)-(x&y)) ^ 0", "x^y"},
      {"3*5", "15"},             // constant folding
  };
  for (auto &C : Cases)
    EXPECT_EQ(printExpr(Ctx, Rewriter.simplify(parseOrDie(Ctx, C.In))), C.Out)
        << C.In;
}

TEST(PatternRewriterTest, CommutativeMatching) {
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  // The same rule must fire with operands swapped.
  EXPECT_EQ(printExpr(Ctx, Rewriter.simplify(parseOrDie(Ctx, "y+(x&~y)"))),
            "x|y");
  EXPECT_EQ(printExpr(Ctx, Rewriter.simplify(parseOrDie(Ctx, "2*(x&y)+(x^y)"))),
            "x+y");
}

TEST(PatternRewriterTest, FailsOnComplexMBA) {
  // The limitation Table 7 documents: a shuffled many-term linear MBA does
  // not literally contain a library pattern, so SSPAM-style rewriting
  // cannot reduce it to the ground truth.
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  const Expr *E = parseOrDie(
      Ctx, "4*(x&y) - 2*(~x&~y) + 3*(x^y) - (x|~y) - 2*x + 3 - (x&~y)");
  const Expr *R = Rewriter.simplify(E);
  expectSameSemantics(Ctx, E, R);
  // It stays complex (no ground-truth-sized result).
  EXPECT_GT(measureComplexity(Ctx, R).Length, 10u);
}

TEST(PatternRewriterTest, CustomRules) {
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  Rewriter.addRule("a*2", "a+a", "double");
  const Expr *R = Rewriter.simplify(parseOrDie(Ctx, "z*2"));
  EXPECT_EQ(printExpr(Ctx, R), "z+z");
}

TEST(PatternRewriterTest, AlwaysTerminates) {
  Context Ctx(64);
  PatternRewriter Rewriter(Ctx);
  // A pathological self-feeding rule pair must still stop (iteration cap).
  Rewriter.addRule("a+b", "b+a", "swap"); // non-terminating ping-pong
  const Expr *E = parseOrDie(Ctx, "x+y+z+w");
  const Expr *R = Rewriter.simplify(E, 4);
  expectSameSemantics(Ctx, E, R);
}

TEST(SynthesizerTest, RecoversSimpleExpressions) {
  Context Ctx(64);
  Synthesizer Synth(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  SynthOptions Opts;
  Opts.Seed = 99;
  const char *Targets[] = {"x+y", "x&y", "x", "x^y"};
  for (const char *T : Targets) {
    const Expr *Target = parseOrDie(Ctx, T);
    SynthResult R = Synth.synthesize(Target, Vars, Opts);
    ASSERT_NE(R.Best, nullptr);
    EXPECT_TRUE(R.MatchesAllSamples) << T;
    // On 24 random 64-bit samples, a sample-consistent candidate for these
    // tiny targets is essentially always semantically right.
    expectSameSemantics(Ctx, Target, R.Best);
    EXPECT_LE(countTreeNodes(R.Best), 8u) << printExpr(Ctx, R.Best);
  }
}

TEST(SynthesizerTest, RecoversObfuscatedLinearMBA) {
  // The oracle only sees I/O, so obfuscation does not matter — synthesis
  // should still find the simple ground truth x+y behind the complex form.
  Context Ctx(64);
  Synthesizer Synth(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  const Expr *Target = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  SynthOptions Opts;
  Opts.Seed = 7;
  SynthResult R = Synth.synthesize(Target, Vars, Opts);
  EXPECT_TRUE(R.MatchesAllSamples);
  if (R.MatchesAllSamples)
    expectSameSemantics(Ctx, Target, R.Best);
}

TEST(SynthesizerTest, CanProduceWrongAnswers) {
  // Syntia's documented failure mode: with few samples at tiny width, a
  // sample-consistent candidate is often semantically wrong. Construct a
  // target that agrees with a simple function on most inputs but not all.
  Context Ctx(4);
  Synthesizer Synth(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  // x + y plus a perturbation that vanishes on the oracle's four special
  // samples (x,y) in {(0,1),(1,15),(15,2),(2,0)} but not at e.g. (3,3):
  // with only those samples, a consistent candidate (x+y) is wrong.
  const Expr *Target = parseOrDie(Ctx, "x + y + (x&y&1)*(x&2)*(y&2)");
  SynthOptions Opts;
  Opts.NumSamples = 4; // exactly the special samples: a starved oracle
  Opts.MaxIterations = 1500;
  bool SawConsistentButWrong = false;
  for (uint64_t Seed = 1; Seed <= 12 && !SawConsistentButWrong; ++Seed) {
    Opts.Seed = Seed;
    SynthResult R = Synth.synthesize(Target, Vars, Opts);
    if (!R.MatchesAllSamples)
      continue;
    // Exhaustively compare on the 4-bit domain.
    for (uint64_t X = 0; X != 16; ++X) {
      for (uint64_t Y = 0; Y != 16; ++Y) {
        uint64_t Vals[] = {X, Y};
        if (evaluate(Ctx, Target, Vals) != evaluate(Ctx, R.Best, Vals)) {
          SawConsistentButWrong = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(SawConsistentButWrong)
      << "expected at least one sample-consistent but wrong synthesis";
}

TEST(SynthesizerTest, RespectsSizeCap) {
  Context Ctx(64);
  Synthesizer Synth(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  SynthOptions Opts;
  Opts.MaxNodes = 5;
  Opts.MaxIterations = 300;
  SynthResult R =
      Synth.synthesize(parseOrDie(Ctx, "x*y + x - y"), Vars, Opts);
  ASSERT_NE(R.Best, nullptr);
  EXPECT_LE(countTreeNodes(R.Best), 5u);
}

TEST(SynthesizerTest, DeterministicForFixedSeed) {
  Context Ctx(64);
  Synthesizer Synth(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  SynthOptions Opts;
  Opts.Seed = 4242;
  Opts.MaxIterations = 500;
  const Expr *Target = parseOrDie(Ctx, "x - y");
  SynthResult R1 = Synth.synthesize(Target, Vars, Opts);
  SynthResult R2 = Synth.synthesize(Target, Vars, Opts);
  EXPECT_EQ(R1.Best, R2.Best);
  EXPECT_EQ(R1.BestReward, R2.BestReward);
}

} // namespace
