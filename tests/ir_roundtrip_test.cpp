//===- tests/ir_roundtrip_test.cpp - Generated-corpus properties ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
// Property tests over a generated corpus of obfuscated programs: the
// printer/parser round-trip is a fixpoint, interpretation agrees with the
// ground-truth expression, and the full verified deobfuscation pipeline
// preserves semantics with zero unsound rewrites.
//
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/Printer.h"
#include "gen/ProgramGen.h"
#include "ir/Passes.h"
#include "ir/Program.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

constexpr size_t CorpusSize = 500;
constexpr uint64_t CorpusSeed = 20210620;

std::vector<GeneratedProgram> corpus(Context &Ctx) {
  ProgramGenOptions Opts;
  return generateProgramCorpus(Ctx, CorpusSize, CorpusSeed, Opts,
                               /*MixBranchy=*/true);
}

void expectAgreesWithGround(const Context &Ctx, const Function &F,
                            const Expr *Ground, RNG &R,
                            unsigned Trials, size_t Index,
                            const char *Stage) {
  for (unsigned T = 0; T != Trials; ++T) {
    std::vector<uint64_t> Args;
    std::unordered_map<const Expr *, uint64_t> Env;
    for (const Expr *P : F.Params) {
      uint64_t V = R.next() & Ctx.mask();
      Args.push_back(V);
      Env.emplace(P, V);
    }
    auto Got = interpretFunction(Ctx, F, Args);
    ASSERT_TRUE(Got.has_value()) << Stage << ": program " << Index;
    ASSERT_EQ(*Got, evaluate(Ctx, Ground, Env))
        << Stage << ": program " << Index << " disagrees with "
        << printExpr(Ctx, Ground);
  }
}

TEST(IRCorpus, PrintParseRoundTripIsFixpoint) {
  Context Ctx(64);
  std::vector<GeneratedProgram> C = corpus(Ctx);
  ASSERT_EQ(C.size(), CorpusSize);
  for (size_t I = 0; I != C.size(); ++I) {
    Diag D;
    auto P = Program::parse(Ctx, C[I].Text, &D);
    ASSERT_TRUE(P.has_value()) << "program " << I << ": " << D.str();
    std::string Printed = P->print(Ctx);
    Diag D2;
    auto P2 = Program::parse(Ctx, Printed, &D2);
    ASSERT_TRUE(P2.has_value()) << "program " << I << ": " << D2.str();
    ASSERT_EQ(P2->print(Ctx), Printed) << "program " << I;
  }
}

TEST(IRCorpus, InterpretationMatchesGroundTruth) {
  Context Ctx(64);
  std::vector<GeneratedProgram> C = corpus(Ctx);
  RNG R(0xc0ffee);
  for (size_t I = 0; I != C.size(); ++I) {
    auto P = Program::parse(Ctx, C[I].Text);
    ASSERT_TRUE(P.has_value()) << "program " << I;
    expectAgreesWithGround(Ctx, P->Functions.front(), C[I].Ground, R, 8, I,
                           "raw");
  }
}

TEST(IRCorpus, VerifiedPipelineIsSoundAcrossCorpus) {
  Context Ctx(64);
  std::vector<GeneratedProgram> C = corpus(Ctx);
  PassOptions Opts;
  Opts.VerifyTimeout = 1.0;
  RNG R(0xfeedface);
  size_t Rewritten = 0, Folded = 0;
  for (size_t I = 0; I != C.size(); ++I) {
    auto P = Program::parse(Ctx, C[I].Text);
    ASSERT_TRUE(P.has_value()) << "program " << I;
    ProgramReport Rep = deobfuscateProgram(Ctx, *P, Opts);
    ASSERT_EQ(Rep.totalUnsoundBlocked(), 0u) << "program " << I;
    expectAgreesWithGround(Ctx, P->Functions.front(), C[I].Ground, R, 8, I,
                           "deobfuscated");
    Rewritten += Rep.totalRegionsRewritten();
    Folded += Rep.totalBranchesFolded();
  }
  // The pipeline must actually do work on an obfuscated corpus, not just
  // preserve semantics vacuously.
  EXPECT_GT(Rewritten, CorpusSize / 4);
  EXPECT_GT(Folded, CorpusSize / 8);
}

} // namespace
