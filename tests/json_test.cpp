//===- tests/json_test.cpp - JSON reader tests ----------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

using namespace mba;

namespace {

json::Value parseOk(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, &Err)) << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Text, V, &Err)) << "accepted: " << Text;
  return Err;
}

TEST(Json, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").asBool());
  EXPECT_FALSE(parseOk("false").asBool(true));
  EXPECT_EQ(parseOk("42").asNumber(), 42);
  EXPECT_EQ(parseOk("-17").asNumber(), -17);
  EXPECT_EQ(parseOk("2.5e3").asNumber(), 2500);
  EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
  EXPECT_EQ(parseOk("9007199254740992").asU64(), 9007199254740992ull);
}

TEST(Json, ArraysAndObjectsPreserveOrder) {
  json::Value V = parseOk("{\"b\": [1, 2, 3], \"a\": {\"x\": true}}");
  ASSERT_TRUE(V.isObject());
  ASSERT_EQ(V.members().size(), 2u);
  EXPECT_EQ(V.members()[0].first, "b") << "member order must be preserved";
  EXPECT_EQ(V.members()[1].first, "a");
  const json::Value *B = V.get("b");
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B->size(), 3u);
  EXPECT_EQ(B->at(2).asNumber(), 3);
  ASSERT_NE(V.get("a"), nullptr);
  EXPECT_TRUE(V.get("a")->get("x")->asBool());
  EXPECT_EQ(V.get("missing"), nullptr);
  EXPECT_EQ(V.numberAt("nope", 7), 7);
  EXPECT_EQ(V.stringAt("nope", "dflt"), "dflt");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parseOk("\"a\\\"b\\\\c\\nd\\te\\u0041\"").asString(),
            "a\"b\\c\nd\teA");
  // \u escapes outside ASCII encode as UTF-8.
  EXPECT_EQ(parseOk("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(Json, ErrorsCarryByteOffsets) {
  EXPECT_NE(parseErr("{\"a\": }").find("offset"), std::string::npos);
  parseErr("");
  parseErr("{");
  parseErr("[1, 2,]");
  parseErr("{\"a\" 1}");
  parseErr("\"unterminated");
  parseErr("tru");
  parseErr("1 2") ; // trailing content
  // Depth bomb: beyond the parser's recursion cap, rejected not crashed.
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  parseErr(Deep);
}

TEST(Json, ParseFile) {
  std::string Path = ::testing::TempDir() + "json_test.json";
  {
    std::ofstream Out(Path);
    Out << "{\"n\": 3}\n";
  }
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parseFile(Path, V, &Err)) << Err;
  EXPECT_EQ(V.numberAt("n"), 3);
  EXPECT_FALSE(json::parseFile(Path + ".missing", V, &Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
