//===- tests/solvers_test.cpp - Solver backend tests ----------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/EquivalenceChecker.h"

#include "ast/Parser.h"
#include "gen/SeedIdentities.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(Checkers, AllBackendsAvailable) {
  auto Checkers = makeAllCheckers();
  // At least the two blast configurations; Z3 when built in.
  EXPECT_GE(Checkers.size(), 2u);
  for (auto &C : Checkers)
    EXPECT_FALSE(C->name().empty());
}

TEST(Checkers, VerdictNames) {
  EXPECT_STREQ(verdictName(Verdict::Equivalent), "equivalent");
  EXPECT_STREQ(verdictName(Verdict::NotEquivalent), "not-equivalent");
  EXPECT_STREQ(verdictName(Verdict::Timeout), "timeout");
}

class BackendTest : public ::testing::TestWithParam<int> {
protected:
  std::unique_ptr<EquivalenceChecker> checker() {
    auto All = makeAllCheckers();
    return std::move(All[GetParam() % All.size()]);
  }
};

TEST_P(BackendTest, ProvesSimpleIdentities) {
  Context Ctx(8); // narrow width keeps blast queries fast
  auto C = checker();
  struct Pair {
    const char *L, *R;
  } Pairs[] = {
      {"(x&~y) + y", "x|y"},
      {"(x|y) - (x&y)", "x^y"},
      {"x + y", "(x^y) + 2*(x&y)"},
      {"~x + 1", "-x"},
      {"x", "x"},
  };
  for (auto &P : Pairs) {
    CheckResult R = C->check(Ctx, parseOrDie(Ctx, P.L), parseOrDie(Ctx, P.R),
                             /*TimeoutSeconds=*/20);
    EXPECT_EQ(R.Outcome, Verdict::Equivalent)
        << C->name() << ": " << P.L << " == " << P.R;
  }
}

TEST_P(BackendTest, RefutesNonIdentities) {
  Context Ctx(8);
  auto C = checker();
  struct Pair {
    const char *L, *R;
  } Pairs[] = {
      {"x + y", "x | y"},
      {"x * y", "x & y"},
      {"x - y", "y - x"},
      {"x + 1", "x"},
  };
  for (auto &P : Pairs) {
    CheckResult R = C->check(Ctx, parseOrDie(Ctx, P.L), parseOrDie(Ctx, P.R),
                             /*TimeoutSeconds=*/20);
    EXPECT_EQ(R.Outcome, Verdict::NotEquivalent)
        << C->name() << ": " << P.L << " vs " << P.R;
  }
}

TEST_P(BackendTest, SeedIdentitiesAtWidth8) {
  Context Ctx(8);
  auto C = checker();
  for (const SeedIdentity &S : seedIdentities()) {
    // Skip the poly identity for the blast backends at this budget: 8-bit
    // multiplication refutation is feasible but slow in plain mode.
    if (S.Category == MBAKind::Polynomial && C->name() != "Z3")
      continue;
    ParsedIdentity P = parseSeedIdentity(Ctx, S);
    CheckResult R = C->check(Ctx, P.Obfuscated, P.Ground, 30);
    EXPECT_EQ(R.Outcome, Verdict::Equivalent)
        << C->name() << ": " << S.Obfuscated;
  }
}

TEST_P(BackendTest, TimeoutReportsTimeout) {
  // A hard query at width 64 with a ~50ms budget must time out (this is
  // the Figure 1 expression that stalls Z3 for an hour).
  Context Ctx(64);
  auto C = checker();
  const Expr *L = parseOrDie(Ctx, "x*y");
  const Expr *R = parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  CheckResult Res = C->check(Ctx, L, R, 0.05);
  EXPECT_EQ(Res.Outcome, Verdict::Timeout) << C->name();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(0, 1, 2));

TEST(Z3Backend, SolvesWidth64Linear) {
  auto Z3 = makeZ3Checker();
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  Context Ctx(64);
  CheckResult R =
      Z3->check(Ctx, parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)"),
                parseOrDie(Ctx, "x + y"), 30);
  EXPECT_EQ(R.Outcome, Verdict::Equivalent);
}

TEST(BlastBackend, RewritingNoWorseOnEqualSyntax) {
  // Identical expressions blast to identical words under rewriting: the
  // disequality collapses at encode time and solves instantly.
  Context Ctx(64);
  auto C = makeBlastChecker(true);
  const Expr *E = parseOrDie(Ctx, "x*y + (x&y) - 3");
  CheckResult R = C->check(Ctx, E, E, 5);
  EXPECT_EQ(R.Outcome, Verdict::Equivalent);
  EXPECT_LT(R.Seconds, 1.0);
}

/// Inner backend that returns a fixed verdict and counts invocations — the
/// observable for the verdict-cache short-circuit tests.
class CountingChecker final : public EquivalenceChecker {
public:
  CountingChecker(unsigned &Calls, Verdict Result)
      : Calls(Calls), Result(Result) {}
  std::string name() const override { return "Counting"; }
  CheckResult check(const Context &, const Expr *, const Expr *,
                    double) override {
    ++Calls;
    return {Result, 0.0001};
  }

private:
  unsigned &Calls;
  Verdict Result;
};

TEST(VerdictCacheStaged, RepeatQueriesSkipStageZeroAndInner) {
  Context Ctx(8);
  StageZeroStats Stats;
  VerdictCache Cache;
  unsigned InnerCalls = 0;
  auto Staged = makeStagedChecker(
      Ctx, std::make_unique<CountingChecker>(InnerCalls, Verdict::Equivalent),
      &Stats, ProveBudget(), &Cache);
  const Expr *A = parseOrDie(Ctx, "(x&~y) + y");
  const Expr *B = parseOrDie(Ctx, "x|y");

  CheckResult First = Staged->check(Ctx, A, B, 1.0);
  ASSERT_EQ(Stats.queries(), 1u);
  unsigned InnerAfterFirst = InnerCalls;

  CheckResult Second = Staged->check(Ctx, A, B, 1.0);
  EXPECT_EQ(Second.Outcome, First.Outcome);
  EXPECT_EQ(Stats.queries(), 1u)
      << "a cache hit must not re-run stage 0 or bump its counters";
  EXPECT_EQ(InnerCalls, InnerAfterFirst);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(VerdictCacheStaged, UnknownEntriesRespectBudgets) {
  Context Ctx(8);
  VerdictCache Cache;
  unsigned InnerCalls = 0;
  // A zero-iteration prover budget keeps this equivalent-but-dissimilar
  // pair undecided in stage 0, so every uncached query reaches the inner
  // backend — which always times out.
  ProveBudget Budget;
  Budget.MaxIterations = 0;
  auto Staged = makeStagedChecker(
      Ctx, std::make_unique<CountingChecker>(InnerCalls, Verdict::Timeout),
      nullptr, Budget, &Cache);
  const Expr *A = parseOrDie(Ctx, "x*x + 2*x");
  const Expr *B = parseOrDie(Ctx, "x*(x + 2)");

  EXPECT_EQ(Staged->check(Ctx, A, B, 1.0).Outcome, Verdict::Timeout);
  ASSERT_EQ(InnerCalls, 1u) << "expected a stage-0 fallthrough";

  // Equal or smaller budget: the recorded failure covers it.
  EXPECT_EQ(Staged->check(Ctx, A, B, 0.5).Outcome, Verdict::Timeout);
  EXPECT_EQ(InnerCalls, 1u);

  // Larger budget: the query must actually run again, widening the entry.
  EXPECT_EQ(Staged->check(Ctx, A, B, 2.0).Outcome, Verdict::Timeout);
  EXPECT_EQ(InnerCalls, 2u);
  EXPECT_EQ(Staged->check(Ctx, A, B, 1.5).Outcome, Verdict::Timeout);
  EXPECT_EQ(InnerCalls, 2u);
}

} // namespace
