//===- tests/gen_test.cpp - Obfuscator and corpus generator tests --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"
#include "gen/EncodeArithmetic.h"
#include "gen/Obfuscator.h"
#include "gen/SeedIdentities.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"
#include "poly/PolyExpr.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(Decompose, LinearTerms) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x + 2*y - 3*(x&y) + 4");
  auto Terms = decomposeLinearTerms(Ctx, E);
  ASSERT_EQ(Terms.size(), 4u);
  EXPECT_EQ(Terms[0].first, 1u);
  EXPECT_EQ(printExpr(Ctx, Terms[0].second), "x");
  EXPECT_EQ(Terms[1].first, 2u);
  EXPECT_EQ(Terms[2].first, (uint64_t)-3);
  EXPECT_EQ(printExpr(Ctx, Terms[2].second), "x&y");
  EXPECT_EQ(Terms[3].second, nullptr);
  EXPECT_EQ(Terms[3].first, 4u);
}

TEST(Decompose, NestedScaling) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "-(2*(x - 3*y))");
  auto Terms = decomposeLinearTerms(Ctx, E);
  ASSERT_EQ(Terms.size(), 2u);
  EXPECT_EQ(Terms[0].first, (uint64_t)-2);
  EXPECT_EQ(Terms[1].first, 6u);
}

TEST(Decompose, RoundTripsThroughBuild) {
  Context Ctx(64);
  RNG Rng(9);
  const char *Samples[] = {"x", "3*x - y + 7", "-(x&y) - (x|y)*2 + 5 - x"};
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    auto Terms = decomposeLinearTerms(Ctx, E);
    uint64_t Constant = 0;
    std::vector<LinearTerm> ExprTerms;
    for (auto &T : Terms) {
      if (T.second)
        ExprTerms.push_back(T);
      else
        Constant += T.first;
    }
    const Expr *R = buildLinearCombination(Ctx, ExprTerms, Constant);
    for (int I = 0; I < 50; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next()};
      EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals)) << S;
    }
  }
}

TEST(ObfuscatorTest, RandomBitwiseIsPureBitwise) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 5);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int I = 0; I < 200; ++I) {
    const Expr *E = Obf.randomBitwise(Vars, 3);
    EXPECT_TRUE(isPureBitwise(Ctx, E)) << printExpr(Ctx, E);
  }
}

TEST(ObfuscatorTest, ZeroIdentityIsZeroEverywhere) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 11);
  RNG Rng(13);
  for (unsigned T = 1; T <= 3; ++T) {
    std::vector<const Expr *> Vars;
    for (unsigned I = 0; I != T; ++I)
      Vars.push_back(Ctx.getVar(std::string(1, (char)('x' + I))));
    for (int Trial = 0; Trial < 30; ++Trial) {
      const Expr *Z = Obf.zeroIdentity(Vars, 5);
      // Signature of a zero identity is the zero vector (Theorem 1).
      auto Sig = computeSignature(Ctx, Z, Vars);
      for (uint64_t S : Sig)
        ASSERT_EQ(S, 0u) << printExpr(Ctx, Z);
      // And it evaluates to zero on random (non-corner) inputs too.
      for (int I = 0; I < 20; ++I) {
        std::vector<uint64_t> Vals(4);
        for (auto &V : Vals)
          V = Rng.next();
        ASSERT_EQ(evaluate(Ctx, Z, Vals), 0u) << printExpr(Ctx, Z);
      }
    }
  }
}

TEST(ObfuscatorTest, LinearObfuscationPreservesSemantics) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 21);
  RNG Rng(23);
  const char *Targets[] = {"x+y", "x-y", "x^y", "x&y", "2*x + 3*y - 1", "x"};
  ObfuscationOptions Opts;
  for (const char *T : Targets) {
    const Expr *Target = parseOrDie(Ctx, T);
    const Expr *Obfuscated = Obf.obfuscateLinear(Target, Opts);
    EXPECT_EQ(classifyMBA(Ctx, Obfuscated), MBAKind::Linear);
    EXPECT_TRUE(linearMBAEquivalent(Ctx, Target, Obfuscated)) << T;
    // Obfuscation must actually complicate the expression.
    EXPECT_GT(mbaAlternation(Obfuscated), mbaAlternation(Target)) << T;
    for (int I = 0; I < 30; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, Target, Vals), evaluate(Ctx, Obfuscated, Vals));
    }
  }
}

TEST(ObfuscatorTest, PolyObfuscationPreservesSemantics) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 31);
  RNG Rng(33);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");
  Obfuscator::ProductTerm Term{1, {X, Y}}; // x*y
  ObfuscationOptions Opts;
  const Expr *Obfuscated = Obf.obfuscatePoly(std::span(&Term, 1), Opts);
  EXPECT_EQ(classifyMBA(Ctx, Obfuscated), MBAKind::Polynomial);
  const Expr *Ground = Ctx.getMul(X, Y);
  for (int I = 0; I < 100; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, Ground, Vals), evaluate(Ctx, Obfuscated, Vals));
  }
}

TEST(ObfuscatorTest, NonPolyObfuscationPreservesSemantics) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 41);
  RNG Rng(43);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  const Expr *Ground = parseOrDie(Ctx, "x - y");
  ObfuscationOptions Opts;
  const Expr *Seed = Obf.obfuscateLinear(Ground, Opts);
  const Expr *NonPoly = Obf.obfuscateNonPoly(Seed, Vars, 3);
  EXPECT_EQ(classifyMBA(Ctx, NonPoly), MBAKind::NonPolynomial);
  for (int I = 0; I < 100; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, Ground, Vals), evaluate(Ctx, NonPoly, Vals));
  }
}

TEST(EncodeArithmeticTest, PreservesSemantics) {
  Context Ctx(64);
  RNG Rng(505);
  const char *Targets[] = {"x + y", "x - y", "x ^ y", "x | y", "x & y",
                           "~x",    "-x",    "x * y", "3*x - 2*y + 7"};
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    EncodeOptions Opts;
    Opts.Seed = Seed;
    Opts.Rounds = 2;
    for (const char *T : Targets) {
      const Expr *E = parseOrDie(Ctx, T);
      const Expr *Enc = encodeArithmetic(Ctx, E, Opts);
      for (int I = 0; I < 60; ++I) {
        uint64_t Vals[] = {Rng.next(), Rng.next()};
        ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, Enc, Vals))
            << T << " seed " << Seed << " -> " << printExpr(Ctx, Enc);
      }
    }
  }
}

TEST(EncodeArithmeticTest, RoundsCompoundComplexity) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "x + y");
  size_t PrevLength = printExpr(Ctx, E).size();
  for (unsigned Rounds = 1; Rounds <= 4; ++Rounds) {
    EncodeOptions Opts;
    Opts.Rounds = Rounds;
    Opts.Percent = 100;
    Opts.Seed = 9;
    const Expr *Enc = encodeArithmetic(Ctx, E, Opts);
    size_t Length = printExpr(Ctx, Enc).size();
    EXPECT_GT(Length, PrevLength) << "rounds " << Rounds;
    PrevLength = Length;
  }
}

TEST(EncodeArithmeticTest, MulEncodingMatchesFigure1) {
  Context Ctx(64);
  EncodeOptions Opts;
  Opts.Rounds = 1;
  Opts.Percent = 100;
  const Expr *Enc = encodeArithmetic(Ctx, parseOrDie(Ctx, "x*y"), Opts);
  // One round of x*y yields exactly the Figure 1 shape.
  EXPECT_EQ(printExpr(Ctx, Enc), "(x&y)*(x|y)+(x&~y)*(~x&y)");
  // With EncodeMul off, products survive.
  Opts.EncodeMul = false;
  EXPECT_EQ(encodeArithmetic(Ctx, parseOrDie(Ctx, "x*y"), Opts),
            parseOrDie(Ctx, "x*y"));
}

TEST(EncodeArithmeticTest, SimplifierInvertsTheEncoding) {
  // The core claim, end to end: Tigress-style layered encoding undone by
  // MBA-Solver.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  EncodeOptions Opts;
  Opts.Rounds = 3;
  Opts.Percent = 100;
  Opts.Seed = 77;
  const Expr *E = parseOrDie(Ctx, "x + y");
  const Expr *Enc = encodeArithmetic(Ctx, E, Opts);
  EXPECT_GT(printExpr(Ctx, Enc).size(), 60u); // genuinely obfuscated
  EXPECT_EQ(printExpr(Ctx, Solver.simplify(Enc)), "x+y");
}

TEST(SeedIdentitiesTest, AllSeedIdentitiesHold) {
  Context Ctx(64);
  RNG Rng(51);
  for (const SeedIdentity &S : seedIdentities()) {
    ParsedIdentity P = parseSeedIdentity(Ctx, S);
    EXPECT_EQ(classifyMBA(Ctx, P.Obfuscated), S.Category) << S.Obfuscated;
    for (int I = 0; I < 200; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, P.Obfuscated, Vals),
                evaluate(Ctx, P.Ground, Vals))
          << S.Obfuscated << " (" << S.Source << ")";
    }
  }
}

TEST(CorpusTest, SmallCorpusShape) {
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 40;
  Opts.PolyCount = 30;
  Opts.NonPolyCount = 30;
  auto Corpus = generateCorpus(Ctx, Opts);
  ASSERT_EQ(Corpus.size(), 100u);
  unsigned Counts[3] = {0, 0, 0};
  for (const CorpusEntry &E : Corpus) {
    ++Counts[(int)E.Category];
    EXPECT_EQ(classifyMBA(Ctx, E.Obfuscated), E.Category);
    EXPECT_GE(E.NumVars, 1u);
    EXPECT_LE(E.NumVars, 4u);
  }
  EXPECT_EQ(Counts[(int)MBAKind::Linear], 40u);
  EXPECT_EQ(Counts[(int)MBAKind::Polynomial], 30u);
  EXPECT_EQ(Counts[(int)MBAKind::NonPolynomial], 30u);
}

TEST(CorpusTest, EveryEntryIsAnIdentity) {
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 60;
  Opts.PolyCount = 40;
  Opts.NonPolyCount = 40;
  auto Corpus = generateCorpus(Ctx, Opts);
  for (const CorpusEntry &E : Corpus)
    EXPECT_TRUE(verifyEntrySampled(Ctx, E, 64))
        << printExpr(Ctx, E.Obfuscated) << " != " << printExpr(Ctx, E.Ground);
}

TEST(CorpusTest, DeterministicForFixedSeed) {
  CorpusOptions Opts;
  Opts.LinearCount = 10;
  Opts.PolyCount = 10;
  Opts.NonPolyCount = 10;
  Context Ctx1(64), Ctx2(64);
  auto C1 = generateCorpus(Ctx1, Opts);
  auto C2 = generateCorpus(Ctx2, Opts);
  ASSERT_EQ(C1.size(), C2.size());
  for (size_t I = 0; I != C1.size(); ++I)
    EXPECT_EQ(printExpr(Ctx1, C1[I].Obfuscated),
              printExpr(Ctx2, C2[I].Obfuscated));
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusOptions A, B;
  A.LinearCount = B.LinearCount = 5;
  A.PolyCount = B.PolyCount = 0;
  A.NonPolyCount = B.NonPolyCount = 0;
  A.IncludeSeedIdentities = B.IncludeSeedIdentities = false;
  B.Seed = A.Seed + 1;
  Context Ctx1(64), Ctx2(64);
  auto C1 = generateCorpus(Ctx1, A);
  auto C2 = generateCorpus(Ctx2, B);
  bool AnyDifferent = false;
  for (size_t I = 0; I != C1.size(); ++I)
    AnyDifferent |= printExpr(Ctx1, C1[I].Obfuscated) !=
                    printExpr(Ctx2, C2[I].Obfuscated);
  EXPECT_TRUE(AnyDifferent);
}

TEST(CorpusTest, TextSerializationRoundTrips) {
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 5;
  Opts.PolyCount = 5;
  Opts.NonPolyCount = 5;
  auto Corpus = generateCorpus(Ctx, Opts);
  std::string Text = corpusToText(Ctx, Corpus);
  // One line per entry; each obfuscated column reparses to the same node.
  size_t Lines = std::count(Text.begin(), Text.end(), '\n');
  EXPECT_EQ(Lines, Corpus.size());
  // Reparsing may reassociate +/- chains (minimal parentheses), so the
  // round trip is semantic: reparsed text must evaluate identically.
  RNG Rng(77);
  size_t Pos = 0;
  for (const CorpusEntry &E : Corpus) {
    size_t End = Text.find('\n', Pos);
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    size_t Tab1 = Line.find('\t');
    size_t Tab2 = Line.find('\t', Tab1 + 1);
    const Expr *Ground = parseOrDie(Ctx, Line.substr(Tab1 + 1, Tab2 - Tab1 - 1));
    const Expr *Obf = parseOrDie(Ctx, Line.substr(Tab2 + 1));
    for (int I = 0; I < 20; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, Ground, Vals), evaluate(Ctx, E.Ground, Vals));
      ASSERT_EQ(evaluate(Ctx, Obf, Vals), evaluate(Ctx, E.Obfuscated, Vals));
    }
  }
}

TEST(CorpusTest, ComplexityRoughlyMatchesTable1) {
  // The regenerated corpus should land in the paper's Table 1 ballpark:
  // average alternation around 5-20, average length around 50-500, term
  // counts around 5-25.
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 100;
  Opts.PolyCount = 100;
  Opts.NonPolyCount = 100;
  Opts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, Opts);
  double SumAlt = 0, SumLen = 0, SumTerms = 0;
  for (const CorpusEntry &E : Corpus) {
    ComplexityMetrics M = measureComplexity(Ctx, E.Obfuscated);
    SumAlt += (double)M.Alternation;
    SumLen += (double)M.Length;
    SumTerms += (double)M.NumTerms;
  }
  double N = (double)Corpus.size();
  EXPECT_GE(SumAlt / N, 4.0);
  EXPECT_LE(SumAlt / N, 40.0);
  EXPECT_GE(SumLen / N, 40.0);
  EXPECT_LE(SumLen / N, 800.0);
  EXPECT_GE(SumTerms / N, 4.0);
  EXPECT_LE(SumTerms / N, 40.0);
}

} // namespace
