//===- tests/fuzz_test.cpp - Randomized soundness fuzzing -----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Adversarial random-expression fuzzing of the whole pipeline. Unlike the
/// generator-based property tests (which produce well-formed MBA), these
/// expressions are drawn from the *full* grammar with arbitrary nesting —
/// constants in bitwise positions, products of sums, negations of
/// negations — to hit every fallback path in the simplifier.
///
/// Invariants checked per expression:
///  * simplify() preserves semantics on random and corner inputs;
///  * simplify() never increases MBA alternation;
///  * parse(print(E)) preserves semantics;
///  * the SSPAM-style rewriter preserves semantics;
///  * classification is stable under printing round-trips.
///
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"
#include "analysis/Verifier.h"
#include "ast/BitslicedEval.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "peer/PatternRewriter.h"
#include "support/Bitslice.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

/// Uniform random expression over the full operator set.
const Expr *randomExpr(Context &Ctx, RNG &Rng,
                       std::span<const Expr *const> Vars, unsigned Depth) {
  if (Depth == 0 || Rng.chance(1, 5)) {
    // Leaf: variable (2/3) or constant (1/3) with interesting values.
    if (Rng.chance(2, 3))
      return Vars[Rng.below(Vars.size())];
    static const uint64_t Interesting[] = {0,  1,  2,   3,    5,
                                           7,  8,  255, ~0ULL, ~1ULL,
                                           63, 64, 0x80, 0xfffe};
    return Ctx.getConst(Rng.chance(1, 3)
                            ? Rng.next()
                            : Interesting[Rng.below(std::size(Interesting))]);
  }
  switch (Rng.below(10)) {
  case 0:
    return Ctx.getNot(randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 1:
    return Ctx.getNeg(randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 2:
  case 3:
    return Ctx.getAdd(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 4:
    return Ctx.getSub(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 5:
    return Ctx.getMul(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 6:
    return Ctx.getAnd(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  case 7:
    return Ctx.getOr(randomExpr(Ctx, Rng, Vars, Depth - 1),
                     randomExpr(Ctx, Rng, Vars, Depth - 1));
  default:
    return Ctx.getXor(randomExpr(Ctx, Rng, Vars, Depth - 1),
                      randomExpr(Ctx, Rng, Vars, Depth - 1));
  }
}

/// Samples agreement of two expressions on random + corner inputs. Both
/// sides are first run through the IR verifier: every expression the fuzz
/// pipeline produces must satisfy the hash-consing invariants.
void expectAgreement(const Context &Ctx, const Expr *A, const Expr *B,
                     RNG &Rng, const char *What) {
  for (const Expr *Side : {A, B}) {
    VerifyResult VR = verifyExpr(Ctx, Side);
    ASSERT_TRUE(VR.ok()) << What << ": " << VR.Message;
  }
  std::vector<const Expr *> Vars = collectVariables(A);
  for (const Expr *V : collectVariables(B))
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  // One bitsliced block of random points, with the scalar interpreter
  // cross-checked on a prefix so the two evaluators pin each other down.
  constexpr unsigned NumPoints = 64;
  std::vector<std::vector<uint64_t>> Lanes(Vars.size());
  for (auto &L : Lanes)
    L.resize(NumPoints);
  for (unsigned I = 0; I != NumPoints; ++I)
    for (size_t V = 0; V != Vars.size(); ++V)
      Lanes[V][I] = Rng.next();
  std::vector<const uint64_t *> Ptrs(MaxIndex + 1, nullptr);
  for (size_t V = 0; V != Vars.size(); ++V)
    Ptrs[Vars[V]->varIndex()] = Lanes[V].data();
  std::vector<uint64_t> OutA = Ctx.getBitsliced(A).evaluatePoints(Ptrs, NumPoints);
  std::vector<uint64_t> OutB = Ctx.getBitsliced(B).evaluatePoints(Ptrs, NumPoints);
  std::vector<uint64_t> Vals(MaxIndex + 1, 0);
  for (unsigned I = 0; I != NumPoints; ++I) {
    if (I < 4) {
      for (size_t V = 0; V != Vars.size(); ++V)
        Vals[Vars[V]->varIndex()] = Lanes[V][I];
      ASSERT_EQ(evaluate(Ctx, A, Vals), OutA[I])
          << What << " (bitsliced vs scalar):\n  " << printExpr(Ctx, A);
      ASSERT_EQ(evaluate(Ctx, B, Vals), OutB[I])
          << What << " (bitsliced vs scalar):\n  " << printExpr(Ctx, B);
    }
    ASSERT_EQ(OutA[I], OutB[I])
        << What << ":\n  " << printExpr(Ctx, A) << "\n  "
        << printExpr(Ctx, B);
  }
  unsigned T = (unsigned)Vars.size();
  if (T <= 4) {
    // All corners in one bitsliced call, every one cross-checked scalar
    // (there are at most 16).
    uint64_t CornA[16], CornB[16];
    std::vector<uint64_t> Masks(MaxIndex + 1, 0);
    for (unsigned I = 0; I != T; ++I)
      Masks[Vars[I]->varIndex()] = bitslice::cornerMask(I, 0);
    Ctx.getBitsliced(A).evaluateCorners(Masks, 1u << T, CornA);
    Ctx.getBitsliced(B).evaluateCorners(Masks, 1u << T, CornB);
    for (unsigned K = 0; K != (1u << T); ++K) {
      for (unsigned I = 0; I != T; ++I)
        Vals[Vars[I]->varIndex()] = (K >> I & 1) ? Ctx.mask() : 0;
      ASSERT_EQ(evaluate(Ctx, A, Vals), CornA[K])
          << What << " (corner, bitsliced vs scalar):\n  "
          << printExpr(Ctx, A);
      ASSERT_EQ(CornA[K], CornB[K])
          << What << " (corner):\n  " << printExpr(Ctx, A) << "\n  "
          << printExpr(Ctx, B);
    }
  }
}

class FuzzSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSweep, SimplifierSoundOnArbitraryExpressions) {
  unsigned Width = GetParam();
  Context Ctx(Width);
  RNG Rng(0xF00D + Width);
  MBASolver Solver(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 120; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(4));
    const Expr *R = Solver.simplify(E);
    expectAgreement(Ctx, E, R, Rng, "simplify");
    EXPECT_LE(mbaAlternation(R), mbaAlternation(E)) << printExpr(Ctx, E);
  }
}

TEST_P(FuzzSweep, PrintParseRoundTripOnArbitraryExpressions) {
  unsigned Width = GetParam();
  Context Ctx(Width);
  RNG Rng(0xBEEF + Width);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 200; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(4));
    std::string Text = printExpr(Ctx, E);
    ParseResult P = parseExpr(Ctx, Text);
    ASSERT_TRUE(P.ok()) << Text;
    expectAgreement(Ctx, E, P.E, Rng, "round-trip");
    // Classification is a semantic-ish property of the printed form too:
    // reparsing may reassociate but never flips linear <-> non-poly.
    MBAKind K1 = classifyMBA(Ctx, E);
    MBAKind K2 = classifyMBA(Ctx, P.E);
    EXPECT_EQ(K1 == MBAKind::NonPolynomial, K2 == MBAKind::NonPolynomial)
        << Text;
  }
}

TEST_P(FuzzSweep, PatternRewriterSoundOnArbitraryExpressions) {
  unsigned Width = GetParam();
  Context Ctx(Width);
  RNG Rng(0xCAFE + Width);
  PatternRewriter Rewriter(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 120; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(3));
    const Expr *R = Rewriter.simplify(E);
    expectAgreement(Ctx, E, R, Rng, "pattern-rewrite");
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FuzzSweep,
                         ::testing::Values(1u, 2u, 8u, 31u, 32u, 64u));

TEST(FuzzProver, AgreesWithConcreteEvaluator) {
  // The static prover's verdicts against ground truth: a Proved pair must
  // agree on 10k random points; a Refuted pair must differ on *every*
  // sampled point (refutation means disjoint value sets, not a mere
  // counterexample). Equivalent pairs come from the simplifier (whose own
  // soundness the FuzzSweep tests pin down), unrelated pairs from two
  // independent draws.
  Context Ctx(64);
  RNG Rng(0x5EED);
  MBASolver Solver(Ctx);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  std::vector<uint64_t> Vals(Ctx.numVars() + 8, 0);
  unsigned NumProved = 0, NumRefuted = 0;
  for (int Trial = 0; Trial < 80; ++Trial) {
    const Expr *A = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(3));
    const Expr *B = (Trial & 1) ? Solver.simplify(A)
                                : randomExpr(Ctx, Rng, Vars,
                                             2 + (unsigned)Rng.below(3));
    ProveResult R = proveEquivalence(Ctx, A, B);
    Vals.resize(Ctx.numVars(), 0);
    // Agreement sweeps run 64 points per bitsliced block; the scalar
    // interpreter double-checks the first points of each batch.
    auto batchEval = [&](size_t NumPoints, auto &&Check) {
      std::vector<uint64_t> Lanes[3];
      for (auto &L : Lanes)
        L.resize(NumPoints);
      for (size_t I = 0; I != NumPoints; ++I)
        for (size_t V = 0; V != 3; ++V)
          Lanes[V][I] = Rng.next();
      std::vector<const uint64_t *> Ptrs(Ctx.numVars(), nullptr);
      for (size_t V = 0; V != 3; ++V)
        Ptrs[Vars[V]->varIndex()] = Lanes[V].data();
      std::vector<uint64_t> OutA =
          Ctx.getBitsliced(A).evaluatePoints(Ptrs, NumPoints);
      std::vector<uint64_t> OutB =
          Ctx.getBitsliced(B).evaluatePoints(Ptrs, NumPoints);
      for (size_t I = 0; I != NumPoints; ++I) {
        if (I < 8) {
          for (size_t V = 0; V != 3; ++V)
            Vals[Vars[V]->varIndex()] = Lanes[V][I];
          ASSERT_EQ(evaluate(Ctx, A, Vals), OutA[I])
              << "bitsliced vs scalar:\n  " << printExpr(Ctx, A);
          ASSERT_EQ(evaluate(Ctx, B, Vals), OutB[I])
              << "bitsliced vs scalar:\n  " << printExpr(Ctx, B);
        }
        Check(OutA[I], OutB[I]);
      }
    };
    if (R.Outcome == ProveOutcome::Proved) {
      ++NumProved;
      batchEval(10000, [&](uint64_t VA, uint64_t VB) {
        ASSERT_EQ(VA, VB)
            << "proved but differs (" << R.Detail << "):\n  "
            << printExpr(Ctx, A) << "\n  " << printExpr(Ctx, B);
      });
    } else if (R.Outcome == ProveOutcome::Refuted) {
      ++NumRefuted;
      batchEval(1000, [&](uint64_t VA, uint64_t VB) {
        ASSERT_NE(VA, VB)
            << "refuted but equal at a point (" << R.Detail << "):\n  "
            << printExpr(Ctx, A) << "\n  " << printExpr(Ctx, B);
      });
    }
  }
  // The generator must exercise both sound verdicts, or this test is
  // vacuous: simplifier pairs prove, parity/interval conflicts refute.
  EXPECT_GT(NumProved, 0u);
  EXPECT_GT(NumRefuted, 0u);
}

TEST(FuzzProver, SaturateAndExtractIsSoundAndVerified) {
  // The simplification pre-pass: every extracted expression must satisfy
  // the IR invariants and agree with its input everywhere (checked by the
  // same sampler the other fuzz invariants use).
  Context Ctx(32);
  RNG Rng(0xE66);
  Prover P(Ctx);
  ProveBudget Budget;
  Budget.MaxIterations = 3; // keep the fuzz loop brisk
  Budget.MaxENodes = 1024;
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  for (int Trial = 0; Trial < 60; ++Trial) {
    const Expr *E = randomExpr(Ctx, Rng, Vars, 2 + (unsigned)Rng.below(3));
    const Expr *S = P.saturateAndExtract(E, Budget);
    expectAgreement(Ctx, E, S, Rng, "saturate-extract");
  }
}

TEST(FuzzEdge, WidthOneIsTheBooleanRing) {
  // At width 1, arithmetic degenerates: + and - are XOR, * is AND, -1 == 1,
  // and every identity must still hold.
  Context Ctx(1);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "2*(x|y) - (~x&y) - (x&~y)");
  const Expr *R = Solver.simplify(E);
  for (uint64_t X = 0; X != 2; ++X)
    for (uint64_t Y = 0; Y != 2; ++Y) {
      uint64_t Vals[] = {X, Y};
      EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
    }
  // x + y at width 1 is x ^ y; the canonical result must agree everywhere.
  const Expr *Sum = parseOrDie(Ctx, "x + y");
  const Expr *Xor = parseOrDie(Ctx, "x ^ y");
  for (uint64_t X = 0; X != 2; ++X)
    for (uint64_t Y = 0; Y != 2; ++Y) {
      uint64_t Vals[] = {X, Y};
      EXPECT_EQ(evaluate(Ctx, Sum, Vals), evaluate(Ctx, Xor, Vals));
    }
}

TEST(FuzzEdge, SimplifierHandlesSingleVariableWidth1Exhaustively) {
  // Exhaustive check over all inputs at width 1 for assorted expressions.
  Context Ctx(1);
  MBASolver Solver(Ctx);
  const char *Samples[] = {"~(x-1)", "x*x*x", "-x", "x&~x", "3*x + 1",
                           "(x|1) - (x&1)"};
  for (const char *S : Samples) {
    const Expr *E = parseOrDie(Ctx, S);
    const Expr *R = Solver.simplify(E);
    for (uint64_t X = 0; X != 2; ++X) {
      uint64_t Vals[] = {X};
      EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals)) << S;
    }
  }
}

TEST(FuzzEdge, VeryDeepExpressionSimplifies) {
  // A 1000-level alternating tower must not crash or blow the stack.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *X = Ctx.getVar("x");
  const Expr *E = X;
  for (int I = 0; I < 1000; ++I) {
    E = Ctx.getAdd(E, Ctx.getOne());
    if (I % 7 == 3)
      E = Ctx.getNot(E);
    if (I % 11 == 5)
      E = Ctx.getNeg(E);
  }
  const Expr *R = Solver.simplify(E);
  RNG Rng(5);
  for (int I = 0; I < 20; ++I) {
    uint64_t Vals[] = {Rng.next()};
    ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
  }
  // ~/- towers over x + k collapse to a short linear form.
  EXPECT_LT(printExpr(Ctx, R).size(), 40u);
}

} // namespace
