//===- tests/sweep_test.cpp - Seed-identity x width x option sweeps -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The full cross product: every built-in seed identity, simplified at
/// every representative width under every simplifier configuration, must
/// stay semantically equal to its ground truth. This is the library's
/// broadest single correctness net (hundreds of combinations, each a
/// distinct (input, ring, configuration) triple).
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/SeedIdentities.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace mba;

namespace {

struct SweepParam {
  unsigned Width;
  unsigned Config; // bit 0: disjunction basis, 1: auto, 2: no CSE,
                   // 3: no final-opt, 4: no known-bits, 5: no cache

  SimplifyOptions options() const {
    SimplifyOptions Opts;
    if (Config & 1)
      Opts.Basis = BasisKind::Disjunction;
    if (Config & 2)
      Opts.AutoBasis = true;
    if (Config & 4)
      Opts.EnableCSE = false;
    if (Config & 8)
      Opts.EnableFinalOpt = false;
    if (Config & 16)
      Opts.EnableKnownBits = false;
    if (Config & 32)
      Opts.EnableCache = false;
    return Opts;
  }

  friend void PrintTo(const SweepParam &P, std::ostream *OS) {
    *OS << "w" << P.Width << "c" << P.Config;
  }
};

class SeedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SeedSweep, EverySeedIdentitySimplifiesSoundly) {
  SweepParam P = GetParam();
  Context Ctx(P.Width);
  MBASolver Solver(Ctx, P.options());
  RNG Rng(1000 + P.Width * 64 + P.Config);
  for (const SeedIdentity &S : seedIdentities()) {
    ParsedIdentity Parsed = parseSeedIdentity(Ctx, S);
    const Expr *R = Solver.simplify(Parsed.Obfuscated);
    // Sound against the ground truth on random inputs...
    for (int I = 0; I < 40; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, R, Vals), evaluate(Ctx, Parsed.Ground, Vals))
          << S.Obfuscated << " width " << P.Width << " config " << P.Config
          << "\n -> " << printExpr(Ctx, R);
    }
    // ...and never more mixed than the input.
    EXPECT_LE(mbaAlternation(R), mbaAlternation(Parsed.Obfuscated))
        << S.Obfuscated;
  }
}

std::vector<SweepParam> allParams() {
  std::vector<SweepParam> Params;
  for (unsigned Width : {1u, 8u, 32u, 64u})
    for (unsigned Config : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 1u | 8u, 2u | 4u,
                            4u | 8u | 16u})
      Params.push_back({Width, Config});
  return Params;
}

INSTANTIATE_TEST_SUITE_P(WidthsAndConfigs, SeedSweep,
                         ::testing::ValuesIn(allParams()));

} // namespace
