//===- tests/static_analysis_test.cpp - mba-tidy check tests --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives the mba-tidy checks in-process over the negative-snippet corpus in
// tests/static_analysis/. Each corpus line carrying `EXPECT: <check>` must
// be flagged by exactly that check on exactly that line; every other line
// (including all of clean.cpp and the NOLINT-suppressed nolint.cpp) must be
// silent. The CLI binary itself is exercised by static_analysis_cli_test
// (labelled slow).
//
//===----------------------------------------------------------------------===//

#include "Checks.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

using namespace mba::tidy;

namespace {

SourceFile lexString(std::string Text) {
  return lexFile("<snippet>", std::move(Text));
}

std::vector<Diagnostic> runAll(const SourceFile &SF,
                               const std::set<std::string> &Enabled = {}) {
  static auto Checks = createAllChecks();
  return runChecks(SF, Checks, Enabled);
}

/// (line, check-name) pairs, sorted — the comparison currency for the
/// corpus tests.
using Findings = std::vector<std::pair<unsigned, std::string>>;

Findings expectedFindings(const std::string &Text) {
  Findings Out;
  std::istringstream In(Text);
  std::string LineText;
  for (unsigned Line = 1; std::getline(In, LineText); ++Line) {
    size_t At = LineText.find("EXPECT: ");
    if (At == std::string::npos)
      continue;
    size_t Start = At + 8;
    size_t End = LineText.find_first_of(" \t\r", Start);
    Out.emplace_back(Line, LineText.substr(Start, End == std::string::npos
                                                      ? std::string::npos
                                                      : End - Start));
  }
  return Out;
}

Findings actualFindings(const std::vector<Diagnostic> &Diags) {
  Findings Out;
  for (const Diagnostic &D : Diags)
    Out.emplace_back(D.Line, D.CheckName);
  return Out;
}

std::string readFile(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot read corpus file " << P;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

//===----------------------------------------------------------------------===//
// Corpus: every EXPECT fires, nothing else does.
//===----------------------------------------------------------------------===//

TEST(StaticAnalysisCorpus, EveryMarkerFiresAndNothingElse) {
  std::filesystem::path Dir(MBA_TIDY_CORPUS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(Dir)) << Dir;
  unsigned FilesSeen = 0, MarkersSeen = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".cpp")
      continue;
    ++FilesSeen;
    std::string Text = readFile(Entry.path());
    Findings Expected = expectedFindings(Text);
    MarkersSeen += Expected.size();
    SourceFile SF = lexFile(Entry.path().string(), std::move(Text));
    Findings Actual = actualFindings(runAll(SF));
    std::sort(Expected.begin(), Expected.end());
    std::sort(Actual.begin(), Actual.end());
    EXPECT_EQ(Expected, Actual) << "in corpus file " << Entry.path();
  }
  // Guard against the corpus silently vanishing: one negative file per
  // check plus clean.cpp and nolint.cpp, and at least one marker per check.
  EXPECT_GE(FilesSeen, 7u);
  EXPECT_GE(MarkersSeen, 10u);
}

TEST(StaticAnalysisCorpus, CleanFileHasNoFindings) {
  std::filesystem::path P =
      std::filesystem::path(MBA_TIDY_CORPUS_DIR) / "clean.cpp";
  SourceFile SF = lexFile(P.string(), readFile(P));
  EXPECT_TRUE(runAll(SF).empty());
}

TEST(StaticAnalysisCorpus, EveryCheckHasANegativeSnippet) {
  std::set<std::string> Flagged;
  for (const auto &Entry :
       std::filesystem::directory_iterator(MBA_TIDY_CORPUS_DIR)) {
    if (Entry.path().extension() != ".cpp")
      continue;
    for (const auto &[Line, Check] : expectedFindings(readFile(Entry.path())))
      Flagged.insert(Check);
  }
  for (const auto &C : createAllChecks())
    EXPECT_TRUE(Flagged.count(std::string(C->name())))
        << "no corpus snippet exercises " << C->name();
}

//===----------------------------------------------------------------------===//
// Check registry and filtering.
//===----------------------------------------------------------------------===//

TEST(StaticAnalysisChecks, RegistryIsStableAndNamed) {
  auto Checks = createAllChecks();
  ASSERT_EQ(Checks.size(), 6u);
  std::vector<std::string> Names;
  for (const auto &C : Checks) {
    Names.emplace_back(C->name());
    EXPECT_FALSE(C->description().empty());
    EXPECT_EQ(C->name().substr(0, 4), "mba-");
  }
  EXPECT_TRUE(std::is_sorted(Names.begin(), Names.end()));
}

TEST(StaticAnalysisChecks, EnabledSetFiltersChecks) {
  SourceFile SF = lexString("#include <mutex>\n"
                            "void f(std::mutex &Mu) {\n"
                            "  std::lock_guard<std::mutex>(Mu);\n"
                            "}\n");
  EXPECT_EQ(runAll(SF).size(), 1u);
  EXPECT_EQ(runAll(SF, {"mba-unnamed-raii"}).size(), 1u);
  EXPECT_TRUE(runAll(SF, {"mba-cross-context-expr"}).empty());
}

TEST(StaticAnalysisChecks, DiagnosticsCarryPreciseLocations) {
  SourceFile SF = lexString("void f(mba::Context &A, mba::Context &B) {\n"
                            "  const mba::Expr *X = A.getVar(\"x\");\n"
                            "  B.getNot(X);\n"
                            "}\n");
  auto Diags = runAll(SF);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckName, "mba-cross-context-expr");
  EXPECT_EQ(Diags[0].Line, 3u);
  EXPECT_EQ(Diags[0].Col, 12u);
  EXPECT_NE(Diags[0].Message.find("cloneExpr"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Lexer behaviour the checks rely on.
//===----------------------------------------------------------------------===//

TEST(StaticAnalysisLexer, LiteralsNeverLookLikeCode) {
  // A parallelFor spelled inside a string or comment must not trip the
  // pool check.
  SourceFile SF = lexString(
      "const char *Doc = \"Pool.parallelFor(8, [&]{ Ctx.getVar(); })\";\n"
      "// Pool.parallelFor(8, [&]{ Ctx.getConst(1); })\n"
      "/* Ctx.getAdd(X, Y) inside B */\n");
  EXPECT_TRUE(runAll(SF).empty());
  ASSERT_EQ(SF.Tokens.size(), 7u); // const char * Doc = "..." ;
  EXPECT_EQ(SF.Tokens[5].Kind, TokenKind::String);
}

TEST(StaticAnalysisLexer, RawStringsAndOperatorsTokenize) {
  SourceFile SF = lexString("auto S = R\"(no \"code\" here; })\";\n"
                            "x <<= y >> z; a->b::c;\n");
  bool SawRaw = false;
  for (const Token &T : SF.Tokens)
    SawRaw |= T.Kind == TokenKind::String &&
              T.Text.find("no \"code\" here") != std::string::npos;
  EXPECT_TRUE(SawRaw);
  unsigned Multi = 0;
  for (const Token &T : SF.Tokens)
    if (T.is("<<=") || T.is(">>") || T.is("->") || T.is("::"))
      ++Multi;
  EXPECT_EQ(Multi, 4u);
}

TEST(StaticAnalysisLexer, NolintGranularity) {
  SourceFile SF = lexString("int A; // NOLINT\n"
                            "int B; // NOLINT(check-a, check-b)\n"
                            "// NOLINTNEXTLINE(check-c)\n"
                            "int C;\n");
  EXPECT_TRUE(SF.Nolint.suppressed(1, "anything"));
  EXPECT_TRUE(SF.Nolint.suppressed(2, "check-a"));
  EXPECT_TRUE(SF.Nolint.suppressed(2, "check-b"));
  EXPECT_FALSE(SF.Nolint.suppressed(2, "check-c"));
  EXPECT_TRUE(SF.Nolint.suppressed(4, "check-c"));
  EXPECT_FALSE(SF.Nolint.suppressed(3, "check-c"));
  EXPECT_FALSE(SF.Nolint.suppressed(5, "check-c"));
}

//===----------------------------------------------------------------------===//
// Targeted check edges not covered by the corpus files.
//===----------------------------------------------------------------------===//

TEST(StaticAnalysisChecks, ValueCapturedLambdaWithoutContextIsSilent) {
  SourceFile SF =
      lexString("void f(mba::support::ThreadPool &Pool, int *Out) {\n"
                "  Pool.parallelFor(8, [Out](size_t I, unsigned) {\n"
                "    Out[I] = 1;\n"
                "  });\n"
                "}\n");
  EXPECT_TRUE(runAll(SF).empty());
}

TEST(StaticAnalysisChecks, UncapturedContextIsSilent) {
  // Explicit capture list that does not include the Context: the lambda
  // cannot touch it, so no finding even though the name appears outside.
  SourceFile SF =
      lexString("void f(mba::support::ThreadPool &Pool, mba::Context &Ctx,\n"
                "       int *Out) {\n"
                "  Out[0] = Ctx.width();\n"
                "  Pool.parallelFor(8, [Out](size_t I, unsigned) {\n"
                "    Out[I] = 2;\n"
                "  });\n"
                "}\n");
  EXPECT_TRUE(runAll(SF).empty());
}

TEST(StaticAnalysisChecks, ScopeExitForgetsLocals) {
  // The Expr from the inner scope dies with it; the later use of an
  // unrelated same-named variable must not inherit its origin.
  SourceFile SF = lexString("void f(mba::Context &A, mba::Context &B) {\n"
                            "  {\n"
                            "    const mba::Expr *E = A.getVar(\"x\");\n"
                            "    A.getNot(E);\n"
                            "  }\n"
                            "  const mba::Expr *E = getSomewhere();\n"
                            "  B.getNot(E);\n"
                            "}\n");
  EXPECT_TRUE(runAll(SF).empty());
}

TEST(StaticAnalysisChecks, SatSolverInLoopIsPathScoped) {
  // The same snippet fires inside src/solvers and stays silent elsewhere:
  // tests and micro-benchmarks construct throwaway solvers in loops by
  // design.
  const char *Snippet = "void f(int N) {\n"
                        "  for (int I = 0; I != N; ++I) {\n"
                        "    mba::sat::SatSolver S;\n"
                        "    (void)S;\n"
                        "  }\n"
                        "}\n";
  SourceFile InSolvers = lexFile("src/solvers/SomeChecker.cpp", Snippet);
  auto Diags = runAll(InSolvers);
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckName, "mba-sat-solver-in-loop");
  EXPECT_EQ(Diags[0].Line, 3u);

  SourceFile InTests = lexFile("tests/sat_test.cpp", Snippet);
  EXPECT_TRUE(runAll(InTests).empty());
}

TEST(StaticAnalysisChecks, HoistedSolverReferenceInLoopIsSilent) {
  SourceFile SF = lexFile("src/solvers/SomeChecker.cpp",
                          "void f(mba::sat::SatSolver &Solver, int N) {\n"
                          "  for (int I = 0; I != N; ++I) {\n"
                          "    mba::sat::SatSolver &S = Solver;\n"
                          "    mba::sat::SatSolver *P = &Solver;\n"
                          "    (void)S;\n"
                          "    (void)P;\n"
                          "  }\n"
                          "}\n");
  EXPECT_TRUE(runAll(SF).empty());
}

TEST(StaticAnalysisChecks, HashingThroughPointerIsSilent) {
  SourceFile SF = lexString(
      "uint64_t f(const char *P, size_t N) {\n"
      "  return mba::support::hashBytes64(reinterpret_cast<const void *>(P),"
      " N);\n"
      "}\n");
  EXPECT_TRUE(runAll(SF).empty());
}

} // namespace
