//===- tests/poly_test.cpp - Polynomial ring tests ------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/PolyExpr.h"
#include "poly/Polynomial.h"

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

constexpr uint64_t Mask64 = ~0ULL;

TEST(Monomial, ProductMergesExponents) {
  Monomial X = Monomial::atom(0);
  Monomial Y = Monomial::atom(1);
  Monomial XY = X * Y;
  EXPECT_EQ(XY.degree(), 2u);
  Monomial X2Y = XY * X;
  EXPECT_EQ(X2Y.degree(), 3u);
  ASSERT_EQ(X2Y.powers().size(), 2u);
  EXPECT_EQ(X2Y.powers()[0], (std::pair<AtomId, uint32_t>{0, 2}));
  EXPECT_EQ(X2Y.powers()[1], (std::pair<AtomId, uint32_t>{1, 1}));
}

TEST(Monomial, OrderingIsDegreeFirst) {
  Monomial C;                       // 1
  Monomial X = Monomial::atom(0);   // degree 1
  Monomial Y2 = Monomial::atom(1) * Monomial::atom(1);
  EXPECT_LT(C, X);
  EXPECT_LT(X, Y2);
}

TEST(Polynomial, AdditionCollectsAndCancels) {
  Polynomial A = Polynomial::atom(0, Mask64);
  Polynomial B = Polynomial::atom(0, Mask64);
  Polynomial Sum = A + B;
  EXPECT_EQ(Sum.linearCoefficient(0), 2u);
  Polynomial Zero = Sum - Sum;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_EQ(Zero.asConstant(), std::optional<uint64_t>(0));
}

TEST(Polynomial, MultiplicationExpands) {
  // (x + 1) * (x - 1) = x^2 - 1
  Polynomial X = Polynomial::atom(0, Mask64);
  Polynomial One = Polynomial::constant(1, Mask64);
  Polynomial P = (X + One) * (X - One);
  EXPECT_EQ(P.numTerms(), 2u);
  EXPECT_EQ(P.constantTerm(), Mask64); // -1
  EXPECT_EQ(P.degree(), 2u);
  EXPECT_FALSE(P.isLinear());
}

TEST(Polynomial, ArithmeticWrapsToWidth) {
  uint64_t Mask8 = 0xff;
  Polynomial A = Polynomial::constant(200, Mask8);
  Polynomial B = Polynomial::constant(100, Mask8);
  EXPECT_EQ((A + B).asConstant(), std::optional<uint64_t>((200 + 100) & 0xff));
  EXPECT_EQ((A * B).asConstant(), std::optional<uint64_t>((200 * 100) & 0xff));
}

TEST(Polynomial, ScaledAndNegated) {
  Polynomial X = Polynomial::atom(0, Mask64);
  EXPECT_EQ(X.scaled(3).linearCoefficient(0), 3u);
  EXPECT_EQ(X.negated().linearCoefficient(0), Mask64);
  EXPECT_EQ(X.scaled(0).numTerms(), 0u);
}

TEST(Polynomial, TryMulRespectsCap) {
  // Product of polynomials with many distinct atoms each exceeds the cap
  // only when the term count explodes; small products succeed.
  Polynomial A(Mask64), B(Mask64);
  for (AtomId I = 0; I < 10; ++I) {
    A.addTerm(Monomial::atom(I), 1);
    B.addTerm(Monomial::atom(100 + I), 1);
  }
  auto P = tryMul(A, B);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->numTerms(), 100u);
}

TEST(PolyExpr, PaperSection44Cancellation) {
  // (x - x&y) * (y - x&y) + (x&y) * (x + y - x&y) == x*y after expansion,
  // treating x, y, x&y as atoms — the paper's flagship cancellation.
  Context Ctx(64);
  const Expr *E =
      parseOrDie(Ctx, "(x - (x&y)) * (y - (x&y)) + (x&y) * (x + y - (x&y))");
  AtomMap Atoms;
  auto IsAtom = [](const Expr *N) {
    return N->isVar() || isBitwiseKind(N->kind());
  };
  auto P = exprToPolynomial(Ctx, E, Atoms, IsAtom);
  ASSERT_TRUE(P.has_value());
  const Expr *R = polynomialToExpr(Ctx, *P, Atoms);
  EXPECT_EQ(printExpr(Ctx, R), "x*y");
}

TEST(PolyExpr, RoundTripPreservesSemantics) {
  Context Ctx(64);
  RNG Rng(11);
  const char *Samples[] = {
      "3*x*y - 2*x + y*y*y - 7",
      "(x + y) * (x - y)",
      "-(x*y) + x*y",
      "2*(x&y)*(x&y) - (x&y)",
      "x*(y*(z*(x+1)))",
  };
  auto IsAtom = [](const Expr *N) {
    return N->isVar() || isBitwiseKind(N->kind());
  };
  for (const char *S : Samples) {
    AtomMap Atoms;
    const Expr *E = parseOrDie(Ctx, S);
    auto P = exprToPolynomial(Ctx, E, Atoms, IsAtom);
    ASSERT_TRUE(P.has_value()) << S;
    const Expr *R = polynomialToExpr(Ctx, *P, Atoms);
    for (int I = 0; I < 100; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next()};
      EXPECT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals)) << S;
    }
  }
}

TEST(PolyExpr, RejectsBitwiseUnderArithmeticWhenNotAtom) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, "(x&y) + 1");
  AtomMap Atoms;
  // Only variables are atoms: the bitwise node is unreachable territory.
  auto P = exprToPolynomial(Ctx, E, Atoms,
                            [](const Expr *N) { return N->isVar(); });
  EXPECT_FALSE(P.has_value());
}

TEST(PolyExpr, ExpansionCapReturnsNullopt) {
  // prod_{i=1..40} (x_i + 1) has 2^40 terms: must hit the cap, not hang.
  Context Ctx(64);
  const Expr *E = nullptr;
  for (int I = 0; I < 40; ++I) {
    const Expr *F =
        Ctx.getAdd(Ctx.getVar("v" + std::to_string(I)), Ctx.getOne());
    E = E ? Ctx.getMul(E, F) : F;
  }
  AtomMap Atoms;
  auto P = exprToPolynomial(Ctx, E, Atoms,
                            [](const Expr *N) { return N->isVar(); });
  EXPECT_FALSE(P.has_value());
}

TEST(PolyExpr, BuildLinearCombinationFormatting) {
  Context Ctx(64);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  const Expr *AndXY = Ctx.getAnd(X, Y);
  // x + y - 2*(x&y)
  const Expr *E = buildLinearCombination(
      Ctx, {{1, X}, {1, Y}, {(uint64_t)-2, AndXY}}, 0);
  EXPECT_EQ(printExpr(Ctx, E), "x+y-2*(x&y)");
  // Constant-only and zero cases.
  EXPECT_EQ(printExpr(Ctx, buildLinearCombination(Ctx, {}, (uint64_t)-1)),
            "-1");
  EXPECT_EQ(printExpr(Ctx, buildLinearCombination(Ctx, {}, 0)), "0");
  // Leading negative term renders with unary minus.
  const Expr *F = buildLinearCombination(Ctx, {{(uint64_t)-1, X}}, 1);
  EXPECT_EQ(printExpr(Ctx, F), "-x+1");
}

TEST(PolyExpr, PolynomialToExprZero) {
  Context Ctx(64);
  AtomMap Atoms;
  Polynomial Zero(Mask64);
  EXPECT_EQ(polynomialToExpr(Ctx, Zero, Atoms), Ctx.getZero());
}

} // namespace
