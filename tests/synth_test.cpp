//===- tests/synth_test.cpp - Enumerative synthesizer tests ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "analysis/Audit.h"
#include "ast/Evaluator.h"
#include "gen/Obfuscator.h"
#include "mba/Classify.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "linalg/TruthTable.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "mba/SimplifyCache.h"
#include "poly/PolyExpr.h"
#include "support/RNG.h"
#include "synth/Basis3.h"
#include "synth/TermBank.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

using namespace mba;
using namespace mba::synth;

namespace {

const Expr *parse(Context &Ctx, const char *Text) {
  auto R = parseExpr(Ctx, Text);
  EXPECT_TRUE(R.ok()) << Text << ": " << R.Error;
  return R.E;
}

/// Semantic agreement on random + corner inputs.
void expectEquivalent(const Context &Ctx, const Expr *A, const Expr *B) {
  RNG Rng(99);
  std::vector<const Expr *> Vars = collectVariables(A);
  for (const Expr *V : collectVariables(B))
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<uint64_t> Vals(MaxIndex + 1);
  for (int I = 0; I != 200; ++I) {
    for (auto &V : Vals)
      V = Rng.next();
    ASSERT_EQ(evaluate(Ctx, A, Vals), evaluate(Ctx, B, Vals))
        << printExpr(Ctx, A) << "  vs  " << printExpr(Ctx, B);
  }
  unsigned T = (unsigned)Vars.size();
  for (unsigned K = 0; T <= 6 && K != (1u << T); ++K) {
    std::fill(Vals.begin(), Vals.end(), 0);
    for (unsigned I = 0; I != T; ++I)
      if (K >> I & 1)
        Vals[Vars[I]->varIndex()] = Ctx.mask();
    ASSERT_EQ(evaluate(Ctx, A, Vals), evaluate(Ctx, B, Vals))
        << printExpr(Ctx, A) << "  vs  " << printExpr(Ctx, B);
  }
}

//===----------------------------------------------------------------------===//
// Basis table
//===----------------------------------------------------------------------===//

TEST(Basis3, EveryEntryRealizesItsTruthColumn) {
  // For all arities: rebuild each truth function as an expression and
  // evaluate it back over the corners.
  for (unsigned T = 1; T <= MaxBasisVars; ++T) {
    Context Ctx(8);
    std::vector<const Expr *> Vars;
    for (unsigned I = 0; I != T; ++I)
      Vars.push_back(Ctx.getVar(std::string(1, (char)('a' + I))));
    const unsigned Rows = 1u << T;
    for (uint32_t F = 0; F != (1u << Rows); ++F) {
      const Expr *E = bitwiseFromTruth(Ctx, Vars, F);
      ASSERT_NE(E, nullptr);
      std::vector<uint64_t> Vals(T);
      for (unsigned Row = 0; Row != Rows; ++Row) {
        for (unsigned I = 0; I != T; ++I)
          Vals[Vars[I]->varIndex()] = truthBit(Row, I, T) ? Ctx.mask() : 0;
        uint64_t Expect = (F >> Row) & 1 ? Ctx.mask() : 0;
        ASSERT_EQ(evaluate(Ctx, E, Vals), Expect)
            << "arity " << T << " truth " << F << " row " << Row << ": "
            << printExpr(Ctx, E);
      }
    }
  }
}

TEST(Basis3, CostMatchesOperatorCount) {
  for (unsigned T = 1; T <= MaxBasisVars; ++T) {
    for (uint32_t F = 0; F != (1u << (1u << T)); ++F) {
      std::string_view Rpn = bitwiseRpn(T, F);
      unsigned Ops = 0;
      for (char C : Rpn)
        Ops += C == '~' || C == '&' || C == '|' || C == '^';
      EXPECT_EQ(bitwiseCost(T, F), Ops) << "arity " << T << " truth " << F;
    }
  }
  // Spot checks: atoms are free, the classics cost what they should.
  EXPECT_EQ(bitwiseCost(1, 0b01), 1u); // ~a
  EXPECT_EQ(bitwiseCost(1, 0b10), 0u); // a
  EXPECT_EQ(bitwiseCost(2, 0b0110), 1u); // a^b
  EXPECT_EQ(bitwiseCost(2, 0b1000), 1u); // a&b
  EXPECT_EQ(bitwiseCost(2, 0b1110), 1u); // a|b
}

TEST(Basis3, GeneratedTableIsDeterministicAndWellFormed) {
  std::string T1 = generateBasis3Table();
  std::string T2 = generateBasis3Table();
  EXPECT_EQ(T1, T2);
  std::istringstream In(T1);
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  EXPECT_EQ(Line, "MBA-BASIS3 v1 vars=3 terms=256");
  unsigned Entries = 0;
  while (std::getline(In, Line))
    if (!Line.empty() && Line[0] != '#')
      ++Entries;
  EXPECT_EQ(Entries, 256u);
}

TEST(Basis3, ShippedTableLoadsWhenPresent) {
  // The build points MBA_BASIS3_DEFAULT_PATH at data/basis3.tbl in the
  // source tree; loading must have either succeeded (normal checkout) or
  // recorded why it fell back — and the fallback never changes content, so
  // the cost/rpn queries above hold either way.
  const Basis3LoadInfo &Info = basis3LoadInfo();
  EXPECT_FALSE(Info.Path.empty());
  if (Info.FromFile)
    EXPECT_TRUE(Info.Error.empty()) << Info.Error;
  else
    EXPECT_FALSE(Info.Error.empty());
}

//===----------------------------------------------------------------------===//
// Term bank
//===----------------------------------------------------------------------===//

TEST(TermBank, BankCoversAllNonConstantFunctionsRanked) {
  for (unsigned T = 1; T <= MaxBasisVars; ++T) {
    std::span<const BankTerm> Bank = termBank(T);
    const uint32_t Full = (1u << (1u << T)) - 1;
    ASSERT_EQ(Bank.size(), (size_t)Full - 1);
    std::vector<bool> Seen(Full + 1, false);
    for (size_t I = 0; I != Bank.size(); ++I) {
      EXPECT_GT(Bank[I].Truth, 0u);
      EXPECT_LT(Bank[I].Truth, Full);
      EXPECT_FALSE(Seen[Bank[I].Truth]);
      Seen[Bank[I].Truth] = true;
      if (I) {
        EXPECT_LE(Bank[I - 1].Cost, Bank[I].Cost) << "rank order broken";
      }
      EXPECT_EQ(Bank[I].Cost, bitwiseCost(T, Bank[I].Truth));
    }
  }
}

TEST(TermBank, MintermAndTermValuesMatchDirectEvaluation) {
  Context Ctx(16);
  const unsigned T = 3;
  const unsigned Rows = 1u << T;
  const size_t N = 37;
  RNG Rng(42);
  std::vector<uint64_t> Inputs(T * N);
  for (auto &V : Inputs)
    V = Rng.next() & Ctx.mask();
  const uint64_t *VarVals[3] = {&Inputs[0], &Inputs[N], &Inputs[2 * N]};
  std::vector<uint64_t> Minterms((size_t)Rows * N);
  mintermValues({VarVals, T}, T, N, Ctx.mask(), Minterms.data());

  std::vector<const Expr *> Vars = {Ctx.getVar("a"), Ctx.getVar("b"),
                                    Ctx.getVar("c")};
  std::vector<uint64_t> Vals(3);
  for (uint32_t F = 1; F < (1u << Rows) - 1; F += 23) {
    const Expr *E = bitwiseFromTruth(Ctx, Vars, F);
    for (size_t J = 0; J != N; ++J) {
      for (unsigned I = 0; I != T; ++I)
        Vals[Vars[I]->varIndex()] = VarVals[I][J];
      ASSERT_EQ(termValue(Minterms.data(), N, F, J), evaluate(Ctx, E, Vals))
          << "truth " << F << " point " << J;
    }
  }
}

//===----------------------------------------------------------------------===//
// Synthesizer
//===----------------------------------------------------------------------===//

TEST(Synthesizer, RecognizesConstantsSinglesAndPairs) {
  // Width 32 keeps the pair-shape AIG proof around a second; at width 64
  // the same miter takes ~10s of SAT. The generous timeout absorbs noisy
  // machines — rejecting a correct candidate on a stopwatch would make
  // this test flaky, not wrong.
  Context Ctx(32);
  SynthOptions SO;
  SO.VerifyTimeoutSeconds = 30.0;
  Synthesizer Synth(Ctx, SO);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");

  // An opaquely-written constant: x & ~x + 7  ==>  7.
  const Expr *C = parse(Ctx, "(x & ~x) + 7");
  const Expr *RC = Synth.synthesize(C);
  ASSERT_NE(RC, nullptr);
  EXPECT_EQ(RC, Ctx.getConst(7));

  // A single-term shape: 3*(x^y) - 1 written with its xor expanded.
  const Expr *S = parse(Ctx, "3*((x|y) - (x&y)) - 1");
  const Expr *RS = Synth.synthesize(S);
  ASSERT_NE(RS, nullptr);
  EXPECT_EQ(RS, buildLinearCombination(Ctx, {{3, Ctx.getXor(X, Y)}},
                                       (uint64_t)-1));

  // A two-term shape: 5*(x&y) + 2*(x|y); feed an equivalent rewriting.
  const Expr *P = parse(Ctx, "2*x + 2*y + 3*(x&y)");
  const Expr *RP = Synth.synthesize(P);
  ASSERT_NE(RP, nullptr);
  expectEquivalent(Ctx, P, RP);

  const SynthStats &St = Synth.stats();
  EXPECT_EQ(St.Queries, 3u);
  EXPECT_EQ(St.Installed, 3u);
  EXPECT_EQ(St.VerifyRejected, 0u);
}

TEST(Synthesizer, DeclinesWhatItCannotExpress) {
  Context Ctx(64);
  Synthesizer Synth(Ctx);
  // x*y is no linear combination of at most two bitwise terms.
  EXPECT_EQ(Synth.synthesize(parse(Ctx, "x*y")), nullptr);
  // Arity above the bank: four variables.
  EXPECT_EQ(Synth.synthesize(parse(Ctx, "w&(x|(y^z))")), nullptr);
  EXPECT_EQ(Synth.stats().Unsupported, 1u);
  EXPECT_EQ(Synth.stats().Installed, 0u);
}

TEST(Synthesizer, MemoHitsStayVerified) {
  Context Ctx(32);
  Synthesizer Synth(Ctx);
  const Expr *E = parse(Ctx, "3*((x|y) - (x&y)) - 1");
  const Expr *R1 = Synth.synthesize(E);
  ASSERT_NE(R1, nullptr);
  uint64_t HitsBefore = Synth.stats().CacheHits;
  // Same semantics, different syntax: the memo key is sampled semantics,
  // so this hits, replays the recipe, and must still prove it.
  const Expr *E2 = parse(Ctx, "3*(x^y) + (0 - 1)");
  const Expr *R2 = Synth.synthesize(E2);
  ASSERT_NE(R2, nullptr);
  EXPECT_EQ(R1, R2);
  EXPECT_GT(Synth.stats().CacheHits, HitsBefore);
}

TEST(Synthesizer, FallbackHookDeclinesForeignContexts) {
  Context A(64), B(64);
  Synthesizer Synth(A);
  auto Hook = Synth.fallbackHook();
  const Expr *E = parse(B, "(x&~x)+7");
  EXPECT_EQ(Hook(B, E), nullptr);
  EXPECT_EQ(Synth.stats().Queries, 0u);
}

//===----------------------------------------------------------------------===//
// MBASolver integration
//===----------------------------------------------------------------------===//

TEST(SynthFallback, SolverReducesOpaqueNonPolyResidue) {
  Context Ctx(64);
  // x*(x+1) is even, so its low bit never contributes: E == y. The
  // abstract-domain pre-pass is disabled so the case genuinely reaches the
  // non-poly path, where only the synthesizer can discover the identity.
  const char *Text = "y + ((x*(x+1)) & 1)";

  SimplifyOptions Plain;
  Plain.EnableKnownBits = false;
  MBASolver Without(Ctx, Plain);
  const Expr *E = parse(Ctx, Text);
  const Expr *RPlain = Without.simplify(E);
  EXPECT_GT(mbaAlternation(RPlain), 0u)
      << "baseline already solves this; the test lost its subject: "
      << printExpr(Ctx, RPlain);

  Synthesizer Synth(Ctx);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.EnableKnownBits = false;
  Opts.SynthFallback = Synth.fallbackHook();
  Opts.Trail = &Trail;
  MBASolver With(Ctx, Opts);
  const Expr *R = With.simplify(E);
  EXPECT_EQ(R, Ctx.getVar("y")) << printExpr(Ctx, R);
  EXPECT_GE(Synth.stats().Installed, 1u);

  bool SawRule = false;
  for (const auto &Step : Trail.steps())
    if (Step.Rule == std::string("synth-fallback"))
      SawRule = true;
  EXPECT_TRUE(SawRule);

  // The audit replays every recorded step, including the synthesized one.
  AuditReport Audit = auditTrail(Ctx, Trail);
  EXPECT_TRUE(Audit.ok());
}

TEST(SynthFallback, CracksGeneratedOpaqueResidueToGroundForm) {
  // End-to-end over the generator: obfuscateOpaque layers carry-fact zeros
  // that the syntactic pipeline provably cannot remove (the consecutive
  // product is abstracted as an opaque temporary), while the synthesizer's
  // verified reconstruction plus re-canonicalization recovers the exact
  // canonical form of the un-obfuscated ground — pointer equality, not
  // just semantic equivalence.
  Context Ctx(64);
  Obfuscator Obf(Ctx, /*Seed=*/7);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  const Expr *Ground = parse(Ctx, "3*(x&y)+5");
  const Expr *Obfuscated = Obf.obfuscateOpaque(Ground, Vars, 2);
  ASSERT_NE(Obfuscated, Ground);

  SimplifyOptions Plain;
  MBASolver Without(Ctx, Plain);
  const Expr *RPlain = Without.simplify(Obfuscated);
  ASSERT_EQ(classifyMBA(Ctx, RPlain), MBAKind::NonPolynomial)
      << "plain pipeline removed the opaque zero; the test lost its "
         "subject: "
      << printExpr(Ctx, RPlain);

  Synthesizer Synth(Ctx);
  SimplifyOptions Opts;
  Opts.SynthFallback = Synth.fallbackHook();
  MBASolver With(Ctx, Opts);
  const Expr *R = With.simplify(Obfuscated);
  const Expr *RGround = Without.simplify(Ground);
  EXPECT_EQ(R, RGround) << printExpr(Ctx, R) << "  vs  "
                        << printExpr(Ctx, RGround);
  EXPECT_GE(Synth.stats().Installed, 1u);
  expectEquivalent(Ctx, R, Ground);
}

TEST(SynthFallback, OptionChangesFingerprintAndSuspendsResultCache) {
  // Differently-hooked solvers must not alias one shared-cache entry;
  // the option folds into the fingerprint and suspends the result layer.
  SimplifyOptions A, B;
  B.SynthFallback = [](Context &, const Expr *) -> const Expr * {
    return nullptr;
  };
  // No public fingerprint accessor: equivalence is covered by the cache
  // suspension test below plus the fingerprint fold (compile-time wiring);
  // here we assert behaviour — a hooked solver ignores the shared cache.
  Context Ctx(64);
  SimplifyCache Cache(64);
  A.SharedCache = &Cache;
  B.SharedCache = &Cache;
  const Expr *E = parse(Ctx, "(x|y)+(x&y)");
  MBASolver SA(Ctx, A);
  const Expr *R1 = SA.simplify(E);
  CacheStats AfterFirst = Cache.resultStats();
  MBASolver SB(Ctx, B);
  const Expr *R2 = SB.simplify(E);
  EXPECT_EQ(R1, R2); // a declining hook must not change output
  // The hooked run neither hit nor inserted into the result layer.
  CacheStats AfterSecond = Cache.resultStats();
  EXPECT_EQ(AfterFirst.Inserts, AfterSecond.Inserts);
  EXPECT_EQ(AfterFirst.Hits, AfterSecond.Hits);
}

} // namespace
