//===- tests/printer_exhaustive_test.cpp - Exhaustive precedence checks ---===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Systematic verification of the printer's minimal-parenthesization logic:
/// enumerate *every* expression of depth <= 2 over a small leaf set and
/// every operator combination, print it, reparse, and require semantic
/// equality. Any precedence or associativity mistake in the printer shows
/// up as a disagreement on some operator pair.
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

#include <gtest/gtest.h>

#include <vector>

using namespace mba;

namespace {

TEST(PrinterExhaustive, AllDepthTwoExpressionsRoundTrip) {
  Context Ctx(16);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  std::vector<const Expr *> Leaves = {X, Y, Ctx.getConst(1),
                                      Ctx.getAllOnes()};

  const ExprKind BinaryOps[] = {ExprKind::Add, ExprKind::Sub, ExprKind::Mul,
                                ExprKind::And, ExprKind::Or, ExprKind::Xor};
  const ExprKind UnaryOps[] = {ExprKind::Not, ExprKind::Neg};

  // Depth-1 expressions: every operator over every leaf combination.
  std::vector<const Expr *> Depth1 = Leaves;
  for (ExprKind K : BinaryOps)
    for (const Expr *A : Leaves)
      for (const Expr *B : Leaves)
        Depth1.push_back(Ctx.getBinary(K, A, B));
  for (ExprKind K : UnaryOps)
    for (const Expr *A : Leaves)
      Depth1.push_back(Ctx.getUnary(K, A));

  const uint64_t Samples[][2] = {
      {0, 0}, {1, 0}, {0xffff, 0x00ff}, {0x1234, 0xfedc}, {0xffff, 0xffff}};

  auto CheckRoundTrip = [&](const Expr *E) {
    std::string Text = printExpr(Ctx, E);
    ParseResult R = parseExpr(Ctx, Text);
    ASSERT_TRUE(R.ok()) << Text;
    for (auto &S : Samples) {
      uint64_t Vals[] = {S[0], S[1]};
      ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R.E, Vals))
          << "printed: " << Text;
    }
  };

  // Depth-2: every operator over every pair of depth-1 expressions (this
  // covers every parent/child operator pairing on both sides), plus unary
  // wrappers.
  size_t Checked = 0;
  for (ExprKind K : BinaryOps) {
    for (const Expr *A : Depth1) {
      for (const Expr *B : Depth1) {
        CheckRoundTrip(Ctx.getBinary(K, A, B));
        ++Checked;
      }
      if (::testing::Test::HasFatalFailure())
        return;
    }
  }
  for (ExprKind K : UnaryOps) {
    for (const Expr *A : Depth1) {
      CheckRoundTrip(Ctx.getUnary(K, A));
      ++Checked;
    }
  }
  // 6 * (4 + 96 + 8)^2 + 2 * 108 combinations.
  EXPECT_GT(Checked, 65000u);
}

TEST(PrinterExhaustive, TripleChainAssociativity) {
  // a op1 b op2 c in both association orders must reparse equivalently for
  // every operator pair.
  Context Ctx(16);
  const Expr *A = Ctx.getVar("a");
  const Expr *B = Ctx.getVar("b");
  const Expr *C = Ctx.getVar("c");
  const ExprKind Ops[] = {ExprKind::Add, ExprKind::Sub, ExprKind::Mul,
                          ExprKind::And, ExprKind::Or, ExprKind::Xor};
  const uint64_t Samples[][3] = {
      {0, 0, 0}, {1, 2, 3}, {0xffff, 0x0f0f, 0x3333}, {7, 0xffff, 1}};
  for (ExprKind K1 : Ops) {
    for (ExprKind K2 : Ops) {
      const Expr *Left = Ctx.getBinary(K2, Ctx.getBinary(K1, A, B), C);
      const Expr *Right = Ctx.getBinary(K1, A, Ctx.getBinary(K2, B, C));
      for (const Expr *E : {Left, Right}) {
        std::string Text = printExpr(Ctx, E);
        ParseResult R = parseExpr(Ctx, Text);
        ASSERT_TRUE(R.ok()) << Text;
        for (auto &S : Samples) {
          uint64_t Vals[] = {S[0], S[1], S[2]};
          ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R.E, Vals))
              << "printed: " << Text;
        }
      }
    }
  }
}

} // namespace
