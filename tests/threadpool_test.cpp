//===- tests/threadpool_test.cpp - Work-stealing pool tests ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

using namespace mba;

namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  for (size_t N : {(size_t)0, (size_t)1, (size_t)3, (size_t)4, (size_t)1000}) {
    std::vector<std::atomic<unsigned>> Hits(N);
    Pool.parallelFor(N, [&](size_t I, unsigned Worker) {
      ASSERT_LT(I, N);
      ASSERT_LT(Worker, Pool.numWorkers());
      Hits[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I != N; ++I)
      ASSERT_EQ(Hits[I].load(), 1u) << "index " << I << " of " << N;
  }
  PoolStats Stats = Pool.stats();
  EXPECT_EQ(Stats.Tasks, 1008u);
}

TEST(ThreadPool, SingleWorkerCoversRange) {
  ThreadPool Pool(1);
  std::vector<unsigned> Hits(100, 0);
  Pool.parallelFor(100, [&](size_t I, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    ++Hits[I];
  });
  for (unsigned H : Hits)
    EXPECT_EQ(H, 1u);
  EXPECT_EQ(Pool.stats().Steals, 0u);
}

TEST(ThreadPool, StealingEngagesOnSkewedWork) {
  ThreadPool Pool(4);
  // A heavily skewed load: index 0 sleeps while the rest are free, so the
  // other workers must steal from worker 0's shard to finish its range.
  std::atomic<size_t> Done{0};
  Pool.parallelFor(4000, [&](size_t I, unsigned) {
    if (I == 0) {
      // Busy-wait until most other indices completed (bounded).
      for (int Spin = 0; Spin < 2000000 && Done.load() < 3000; ++Spin)
        ;
    }
    Done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(Done.load(), 4000u);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool Pool(3);
  std::atomic<size_t> Ran{0};
  bool Caught = false;
  try {
    Pool.parallelFor(50, [&](size_t I, unsigned) {
      Ran.fetch_add(1);
      if (I == 7)
        throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error &E) {
    Caught = true;
    EXPECT_STREQ(E.what(), "boom");
  }
  EXPECT_TRUE(Caught);
  // The pool stays usable after an exception.
  std::atomic<size_t> After{0};
  Pool.parallelFor(10, [&](size_t, unsigned) { After.fetch_add(1); });
  EXPECT_EQ(After.load(), 10u);
}

TEST(ThreadPool, WorkerOrdinalsAreStable) {
  ThreadPool Pool(2);
  std::set<unsigned> Seen;
  std::mutex Mu;
  Pool.parallelFor(64, [&](size_t, unsigned Worker) {
    std::lock_guard<std::mutex> Lock(Mu);
    Seen.insert(Worker);
  });
  for (unsigned W : Seen)
    EXPECT_LT(W, 2u);
}

} // namespace
