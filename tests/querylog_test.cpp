//===- tests/querylog_test.cpp - Flight recorder tests --------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the query-log contracts: JSONL records parse back with the full
// decision chain intact, concurrent writers produce line-atomic output,
// scope nesting follows the pass-through/suppress rules, the disabled path
// stays at one relaxed load, and the rule-attribution registry merges
// observations correctly.
//
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Json.h"
#include "support/QueryLog.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace mba;

namespace {

const Expr *parse(Context &Ctx, const char *Text) {
  ParseResult R = parseExpr(Ctx, Text);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.E;
}

std::vector<json::Value> parseLines(const std::vector<std::string> &Lines) {
  std::vector<json::Value> Out;
  for (const std::string &Line : Lines) {
    json::Value V;
    std::string Err;
    EXPECT_TRUE(json::parse(Line, V, &Err)) << Err << "\n" << Line;
    Out.push_back(std::move(V));
  }
  return Out;
}

TEST(QueryLog, DisabledByDefault) {
  ASSERT_FALSE(querylog::enabled());
  EXPECT_EQ(querylog::active(), nullptr);
  {
    querylog::QueryScope Scope("check");
    EXPECT_EQ(Scope.record(), nullptr) << "scope armed without a sink";
    EXPECT_EQ(querylog::active(), nullptr);
  }
  EXPECT_EQ(querylog::recordsWritten(), 0u);
}

TEST(QueryLog, SimplifyRecordHasCompleteChain) {
  Context Ctx(64);
  const Expr *E = parse(Ctx, "x + y - 2*(x & y)");
  querylog::beginCapture();
  MBASolver Solver(Ctx);
  const Expr *R = Solver.simplify(E);
  std::vector<json::Value> Records = parseLines(querylog::endCapture());
  EXPECT_EQ(printExpr(Ctx, R), "x^y");

  ASSERT_EQ(Records.size(), 1u);
  const json::Value &Rec = Records[0];
  EXPECT_EQ(Rec.stringAt("kind"), "simplify");
  EXPECT_EQ(Rec.stringAt("class"), "linear");
  EXPECT_EQ(Rec.numberAt("width"), 64);
  EXPECT_GT(Rec.numberAt("nodes_in"), Rec.numberAt("nodes_out"));
  EXPECT_EQ(Rec.stringAt("fp_in").size(), 16u);
  EXPECT_EQ(Rec.stringAt("fp_out").size(), 16u);
  EXPECT_GT(Rec.numberAt("ns"), 0);

  // The stage array names the Algorithm 1 steps that actually ran.
  const json::Value *Stages = Rec.get("stages");
  ASSERT_NE(Stages, nullptr);
  std::set<std::string> Names;
  for (const json::Value &S : Stages->elements())
    Names.insert(std::string(S.stringAt("name")));
  EXPECT_TRUE(Names.count("classify"));
  EXPECT_TRUE(Names.count("linear-signature"));
}

TEST(QueryLog, CheckRecordHasCompleteChain) {
  Context Ctx(64);
  const Expr *A = parse(Ctx, "x + y - 2*(x & y)");
  const Expr *B = parse(Ctx, "x ^ y");
  querylog::beginCapture();
  StageZeroStats Stats;
  auto Checker = makeStagedChecker(Ctx, makeAigChecker(true), &Stats,
                                   ProveBudget(), nullptr);
  CheckResult CR = Checker->check(Ctx, A, B, 5.0);
  std::vector<json::Value> Records = parseLines(querylog::endCapture());
  EXPECT_EQ(CR.Outcome, Verdict::Equivalent);

  ASSERT_EQ(Records.size(), 1u);
  const json::Value &Rec = Records[0];
  EXPECT_EQ(Rec.stringAt("kind"), "check");
  EXPECT_EQ(Rec.stringAt("verdict"), "equivalent");
  EXPECT_EQ(Rec.stringAt("verdict_cache"), "off");
  EXPECT_FALSE(Rec.stringAt("backend").empty());
  EXPECT_FALSE(Rec.stringAt("stage0").empty());
  EXPECT_EQ(Rec.stringAt("fp_a").size(), 16u);
  EXPECT_EQ(Rec.stringAt("fp_b").size(), 16u);
  const json::Value *Stages = Rec.get("stages");
  ASSERT_NE(Stages, nullptr);
  ASSERT_GE(Stages->size(), 1u);
  EXPECT_EQ(Stages->at(0).stringAt("name"), "stage0");
}

TEST(QueryLog, BackendFieldsLandInTheStagedRecord) {
  // A query stage 0 cannot decide reaches the backend, whose same-kind
  // nested scope must contribute SAT statistics into the *staged* record
  // rather than emit a second one.
  Context Ctx(8);
  const Expr *A = parse(Ctx, "(x & y) * (x | y) + (x & ~y) * (~x & y) + 17");
  const Expr *B = parse(Ctx, "x * y + 17");
  querylog::beginCapture();
  StageZeroStats Stats;
  auto Checker = makeStagedChecker(Ctx, makeAigChecker(true), &Stats,
                                   ProveBudget(), nullptr);
  // Generous timeout: the 8-bit multiplier miter takes seconds under a
  // loaded parallel ctest run, and an expiry would flip the verdict.
  CheckResult CR = Checker->check(Ctx, A, B, 60.0);
  std::vector<json::Value> Records = parseLines(querylog::endCapture());
  EXPECT_EQ(CR.Outcome, Verdict::Equivalent)
      << "x*y == (x&y)*(x|y) + (x&~y)*(~x&y) is an identity";

  ASSERT_EQ(Records.size(), 1u) << "backend must not emit its own record";
  const json::Value &Rec = Records[0];
  EXPECT_EQ(Rec.stringAt("stage0"), "unknown");
  EXPECT_EQ(Rec.stringAt("backend"), "BlastBV+AIG");
  EXPECT_NE(Rec.get("aig_nodes"), nullptr);
  std::set<std::string> Names;
  for (const json::Value &S : Rec.get("stages")->elements())
    Names.insert(std::string(S.stringAt("name")));
  EXPECT_TRUE(Names.count("stage0"));
  EXPECT_TRUE(Names.count("backend"));
}

TEST(QueryLog, StandaloneBackendArmsItsOwnRecord) {
  Context Ctx(64);
  const Expr *A = parse(Ctx, "x + y");
  const Expr *B = parse(Ctx, "y + x");
  querylog::beginCapture();
  auto Checker = makeAigChecker(true);
  Checker->check(Ctx, A, B, 5.0);
  std::vector<json::Value> Records = parseLines(querylog::endCapture());
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].stringAt("kind"), "check");
  EXPECT_EQ(Records[0].stringAt("backend"), "BlastBV+AIG");
  EXPECT_FALSE(Records[0].stringAt("verdict").empty());
}

TEST(QueryLog, DifferentKindNestedScopeIsSuppressed) {
  querylog::beginCapture();
  {
    querylog::QueryScope Outer("simplify");
    ASSERT_NE(querylog::active(), nullptr);
    querylog::active()->str("marker", "outer");
    {
      // The synth fallback's verification check must not leak backend
      // fields into the simplify record.
      querylog::QueryScope Inner("check");
      EXPECT_EQ(querylog::active(), nullptr);
    }
    ASSERT_NE(querylog::active(), nullptr);
  }
  std::vector<json::Value> Records = parseLines(querylog::endCapture());
  ASSERT_EQ(Records.size(), 1u);
  EXPECT_EQ(Records[0].stringAt("kind"), "simplify");
  EXPECT_EQ(Records[0].stringAt("marker"), "outer");
}

TEST(QueryLog, FileSinkRoundTripAndEscaping) {
  std::string Path = ::testing::TempDir() + "querylog_roundtrip.jsonl";
  ASSERT_TRUE(querylog::openFile(Path));
  {
    querylog::QueryScope Scope("check");
    ASSERT_NE(querylog::active(), nullptr);
    querylog::active()->str("nasty", "a\"b\\c\nd\te\x01f");
    querylog::active()->snum("signed", -42);
    querylog::active()->fnum("frac", 0.25);
    querylog::active()->flag("yes", true);
  }
  EXPECT_EQ(querylog::recordsWritten(), 1u);
  querylog::close();
  EXPECT_FALSE(querylog::enabled());

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  json::Value Rec;
  std::string Err;
  ASSERT_TRUE(json::parse(Line, Rec, &Err)) << Err;
  EXPECT_EQ(Rec.stringAt("nasty"), "a\"b\\c\nd\te\x01f");
  EXPECT_EQ(Rec.numberAt("signed"), -42);
  EXPECT_EQ(Rec.numberAt("frac"), 0.25);
  ASSERT_NE(Rec.get("yes"), nullptr);
  EXPECT_TRUE(Rec.get("yes")->asBool());
  EXPECT_FALSE(std::getline(In, Line)) << "exactly one record expected";
}

TEST(QueryLog, EightInterleavedWritersStayLineAtomic) {
  std::string Path = ::testing::TempDir() + "querylog_threads.jsonl";
  ASSERT_TRUE(querylog::openFile(Path));
  constexpr unsigned Threads = 8, PerThread = 50;
  // A long payload makes torn writes likely if line atomicity ever breaks.
  const std::string Payload(512, 'x');
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([T, &Payload] {
      for (unsigned I = 0; I != PerThread; ++I) {
        querylog::QueryScope Scope("check");
        ASSERT_NE(querylog::active(), nullptr);
        querylog::active()->num("writer", T);
        querylog::active()->num("iter", I);
        querylog::active()->str("payload", Payload);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(querylog::recordsWritten(), (uint64_t)Threads * PerThread);
  querylog::close();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::set<std::pair<unsigned, unsigned>> Seen;
  std::set<uint64_t> Seqs;
  std::string Line;
  while (std::getline(In, Line)) {
    json::Value Rec;
    std::string Err;
    ASSERT_TRUE(json::parse(Line, Rec, &Err)) << Err << "\n" << Line;
    EXPECT_EQ(Rec.stringAt("payload"), Payload) << "torn record";
    Seen.insert({(unsigned)Rec.numberAt("writer", 999),
                 (unsigned)Rec.numberAt("iter", 999)});
    Seqs.insert(Rec.get("seq")->asU64());
  }
  EXPECT_EQ(Seen.size(), (size_t)Threads * PerThread)
      << "every (writer, iter) pair must appear exactly once";
  EXPECT_EQ(Seqs.size(), (size_t)Threads * PerThread)
      << "sequence numbers must be unique";
}

TEST(QueryLog, DisabledActiveIsCheap) {
  // The contract the instrumentation sites in Simplifier / Prover / the
  // checkers rely on: with no sink open, active() is one relaxed load.
  // Bound it loosely — hundreds of ns per call would mean a lock or TLS
  // initialization snuck onto the disabled path.
  ASSERT_FALSE(querylog::enabled());
  constexpr unsigned N = 200000;
  uint64_t Start = telemetry::nowNs();
  for (unsigned I = 0; I != N; ++I)
    if (querylog::active())
      FAIL() << "active() returned a record with no sink open";
  uint64_t PerCall = (telemetry::nowNs() - Start) / N;
  EXPECT_LT(PerCall, 1000u) << "disabled query-log cost exploded";
}

TEST(QueryLog, RuleAttributionMergesAndSnapshotSorts) {
  querylog::resetRuleAttribution();
  querylog::noteRule("zz-rule", 1, 100, 10, 6);
  querylog::noteRule("aa-rule", 2, 50, 8, 8);
  querylog::noteRule("zz-rule", 3, 200, 20, 12);
  querylog::noteRuleOutcome("aa-rule", true);
  querylog::noteRuleOutcome("aa-rule", false);

  auto Attribution = querylog::ruleAttribution();
  ASSERT_EQ(Attribution.size(), 2u);
  EXPECT_EQ(Attribution[0].first, "aa-rule");
  EXPECT_EQ(Attribution[0].second.Fires, 2u);
  EXPECT_EQ(Attribution[0].second.Installs, 1u);
  EXPECT_EQ(Attribution[0].second.Rejects, 1u);
  EXPECT_EQ(Attribution[1].first, "zz-rule");
  EXPECT_EQ(Attribution[1].second.Fires, 4u);
  EXPECT_EQ(Attribution[1].second.Ns, 300u);
  EXPECT_EQ(Attribution[1].second.NodesBefore, 30u);
  EXPECT_EQ(Attribution[1].second.NodesAfter, 18u);
  querylog::resetRuleAttribution();
  EXPECT_TRUE(querylog::ruleAttribution().empty());
}

TEST(QueryLog, LoggedSimplifyMatchesUnlogged) {
  // Behavior neutrality at the unit level: the same input simplifies to
  // the same expression with and without a capture running (the full-study
  // variant lives in harness_test).
  Context Ctx(64);
  const Expr *E = parse(Ctx, "(a | b) + (a & b) - (a ^ b)");
  std::string Plain, Logged;
  {
    MBASolver Solver(Ctx);
    Plain = printExpr(Ctx, Solver.simplify(E));
  }
  querylog::beginCapture();
  {
    MBASolver Solver(Ctx);
    Logged = printExpr(Ctx, Solver.simplify(E));
  }
  std::vector<std::string> Lines = querylog::endCapture();
  EXPECT_EQ(Plain, Logged);
  EXPECT_EQ(Lines.size(), 1u);
}

} // namespace
