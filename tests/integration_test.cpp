//===- tests/integration_test.cpp - End-to-end pipeline tests -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the full paper pipeline across modules: corpus generation ->
/// MBA-Solver simplification -> solver verification, plus the peer-tool
/// paths, mirroring the evaluation setup of Sections 3 and 6 at test scale.
///
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/Corpus.h"
#include "gen/Obfuscator.h"
#include "gen/SeedIdentities.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "peer/PatternRewriter.h"
#include "peer/Synthesizer.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(Pipeline, SimplifyCorpusAndVerifySemantics) {
  // Simplify a 90-entry corpus; every result must be equivalent to the
  // ground truth on random samples, and average alternation must collapse.
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 30;
  Opts.PolyCount = 30;
  Opts.NonPolyCount = 30;
  auto Corpus = generateCorpus(Ctx, Opts);

  MBASolver Solver(Ctx);
  RNG Rng(1);
  double AltBefore = 0, AltAfter = 0;
  unsigned NonPolyResidue = 0;
  for (const CorpusEntry &E : Corpus) {
    const Expr *R = Solver.simplify(E.Obfuscated);
    AltBefore += (double)mbaAlternation(E.Obfuscated);
    AltAfter += (double)mbaAlternation(R);
    CorpusEntry Check{R, E.Ground, E.Category, E.NumVars};
    EXPECT_TRUE(verifyEntrySampled(Ctx, Check, 64, Rng.next()))
        << printExpr(Ctx, E.Obfuscated) << "\n -> " << printExpr(Ctx, R);
    if (mbaAlternation(R) > 2)
      ++NonPolyResidue;
  }
  // Paper Table 7: post-simplification alternation is ~24% of the input's;
  // we only require a clear drop.
  EXPECT_LT(AltAfter, AltBefore * 0.5);
  // The overwhelming majority must normalize to near-zero alternation.
  EXPECT_LE(NonPolyResidue, Corpus.size() / 5);
}

TEST(Pipeline, SimplifiedCorpusSolvesInstantlyOnBlastBackend) {
  // Table 6's shape at test scale: after simplification, the identity
  // queries become easy for a bit-blasting solver even at width 16.
  Context Ctx(16);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = 10;
  CorpusOpts.PolyCount = 0; // products at width 16 are slow pre-blast
  CorpusOpts.NonPolyCount = 6;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  MBASolver Simplifier(Ctx);
  auto Checker = makeBlastChecker(true);
  for (const CorpusEntry &E : Corpus) {
    const Expr *R = Simplifier.simplify(E.Obfuscated);
    CheckResult Res = Checker->check(Ctx, R, E.Ground, 20);
    EXPECT_EQ(Res.Outcome, Verdict::Equivalent)
        << printExpr(Ctx, E.Obfuscated) << " -> " << printExpr(Ctx, R);
  }
}

TEST(Pipeline, Figure1EndToEnd) {
  // The motivating example: raw query hopeless at 64-bit under a small
  // budget, instant after MBA-Solver.
  Context Ctx(64);
  const Expr *Obf = parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  const Expr *Ground = parseOrDie(Ctx, "x*y");

  auto Checker = makeBlastChecker(true);
  CheckResult Raw = Checker->check(Ctx, Obf, Ground, 0.25);
  EXPECT_EQ(Raw.Outcome, Verdict::Timeout);

  MBASolver Simplifier(Ctx);
  const Expr *R = Simplifier.simplify(Obf);
  EXPECT_EQ(printExpr(Ctx, R), "x*y");
  CheckResult Simplified = Checker->check(Ctx, R, Ground, 5);
  EXPECT_EQ(Simplified.Outcome, Verdict::Equivalent);
  EXPECT_LT(Simplified.Seconds, 1.0);
}

TEST(Pipeline, SeedIdentitiesSimplifyToGroundOrEquivalent) {
  Context Ctx(64);
  MBASolver Simplifier(Ctx);
  RNG Rng(33);
  for (const SeedIdentity &S : seedIdentities()) {
    ParsedIdentity P = parseSeedIdentity(Ctx, S);
    const Expr *R = Simplifier.simplify(P.Obfuscated);
    // Equivalent to ground truth on random inputs...
    for (int I = 0; I < 100; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, R, Vals), evaluate(Ctx, P.Ground, Vals))
          << S.Obfuscated;
    }
    // ...and essentially as simple (within a small factor of its length).
    EXPECT_LE(printExpr(Ctx, R).size(),
              2 * std::max<size_t>(printExpr(Ctx, P.Ground).size(), 4))
        << S.Obfuscated << " -> " << printExpr(Ctx, R);
  }
}

TEST(Pipeline, PeerToolsOnSeedIdentities) {
  // SSPAM-style rewriting handles the textbook patterns and never breaks
  // semantics; Syntia-style synthesis recovers small ground truths from
  // I/O alone.
  Context Ctx(64);
  PatternRewriter Sspam(Ctx);
  Synthesizer Syntia(Ctx);
  RNG Rng(55);
  unsigned SspamWins = 0;
  for (const SeedIdentity &S : seedIdentities()) {
    ParsedIdentity P = parseSeedIdentity(Ctx, S);
    const Expr *R = Sspam.simplify(P.Obfuscated);
    for (int I = 0; I < 60; ++I) {
      uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next(), Rng.next()};
      ASSERT_EQ(evaluate(Ctx, R, Vals), evaluate(Ctx, P.Obfuscated, Vals));
    }
    if (printExpr(Ctx, R).size() <= printExpr(Ctx, P.Ground).size() + 4)
      ++SspamWins;
  }
  // Pattern matching rescues some but not all of even the textbook set.
  EXPECT_GT(SspamWins, 2u);
  EXPECT_LT(SspamWins, seedIdentities().size());

  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  SynthOptions Opts;
  Opts.Seed = 11;
  SynthResult SR = Syntia.synthesize(
      parseOrDie(Ctx, "(x|y) + y - (~x&y)"), Vars, Opts);
  EXPECT_TRUE(SR.MatchesAllSamples);
}

TEST(Pipeline, ObfuscateSimplifyRoundTrip) {
  // Fresh obfuscations (not corpus presets) must collapse back to a form
  // equivalent to the target, across widths.
  for (unsigned Width : {8u, 16u, 32u, 64u}) {
    Context Ctx(Width);
    Obfuscator Obf(Ctx, 1000 + Width);
    MBASolver Simplifier(Ctx);
    RNG Rng(Width);
    const char *Targets[] = {"x+y", "x^y", "3*x - y + 2", "x&y"};
    ObfuscationOptions OOpts;
    for (const char *T : Targets) {
      const Expr *Target = parseOrDie(Ctx, T);
      const Expr *Complex = Obf.obfuscateLinear(Target, OOpts);
      const Expr *R = Simplifier.simplify(Complex);
      for (int I = 0; I < 50; ++I) {
        uint64_t Vals[] = {Rng.next(), Rng.next()};
        ASSERT_EQ(evaluate(Ctx, R, Vals), evaluate(Ctx, Target, Vals))
            << "width " << Width << " target " << T;
      }
    }
  }
}

TEST(Pipeline, StatsTrackSimplifierWork) {
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 10;
  Opts.PolyCount = 5;
  Opts.NonPolyCount = 5;
  auto Corpus = generateCorpus(Ctx, Opts);
  MBASolver Solver(Ctx);
  for (const CorpusEntry &E : Corpus)
    Solver.simplify(E.Obfuscated);
  const SimplifyStats &S = Solver.stats();
  EXPECT_GT(S.LinearRuns, 0u);
  EXPECT_GT(S.PolyRuns, 0u);
  EXPECT_GT(S.NonPolyRuns, 0u);
  EXPECT_GT(S.Seconds, 0.0);
  EXPECT_GT(S.CacheMisses, 0u);
}

} // namespace
