//===- tests/telemetry_test.cpp - Unified telemetry layer tests -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Covers the metrics registry (counters/gauges/histograms, striped storage
/// merged across threads, callback sources, the Prometheus-style text
/// dump) and the tracing-span layer (nesting/ordering, thread labels, the
/// Chrome trace-event JSON exporter — parsed back by a minimal JSON reader
/// to pin well-formedness).
///
/// The registry is process-global, so every test uses metric names unique
/// to this file and trace tests clear the span buffers up front.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace mba;
using namespace mba::telemetry;

namespace {

/// Turns metrics (and optionally tracing) on for one test body and restores
/// the disabled default afterwards, so test order never matters.
struct TelemetryOn {
  explicit TelemetryOn(bool Tracing = false) {
    setMetricsEnabled(true);
    if (Tracing) {
      clearTrace();
      setTracingEnabled(true);
    }
  }
  ~TelemetryOn() {
    setMetricsEnabled(false);
    setTracingEnabled(false);
  }
};

TEST(TelemetryMetrics, CounterDisabledRecordsNothing) {
  Counter &C = counter("test.disabled_counter");
  ASSERT_FALSE(metricsEnabled());
  C.add(17);
  EXPECT_EQ(C.value(), 0u);
}

TEST(TelemetryMetrics, CounterAccumulatesAndRegistryIsStable) {
  TelemetryOn On;
  Counter &C = counter("test.counter");
  EXPECT_EQ(&C, &counter("test.counter")) << "same name, same object";
  uint64_t Before = C.value();
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), Before + 42);
}

TEST(TelemetryMetrics, CounterMergesAcrossThreads) {
  TelemetryOn On;
  Counter &C = counter("test.mt_counter");
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 10000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&C] {
      for (unsigned I = 0; I != PerThread; ++I)
        C.add();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), (uint64_t)Threads * PerThread);
}

TEST(TelemetryMetrics, GaugeSetAndAdd) {
  TelemetryOn On;
  Gauge &G = gauge("test.gauge");
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.add(-10);
  EXPECT_EQ(G.value(), -3);
}

TEST(TelemetryMetrics, HistogramBucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(histogramBucket(0), 0u);
  EXPECT_EQ(histogramBucket(1), 1u);
  EXPECT_EQ(histogramBucket(2), 2u);
  EXPECT_EQ(histogramBucket(3), 2u);
  EXPECT_EQ(histogramBucket(4), 3u);
  EXPECT_EQ(histogramBucket(1023), 10u);
  EXPECT_EQ(histogramBucket(1024), 11u);
  EXPECT_EQ(histogramBucket(~0ULL), 64u);
  for (unsigned B = 1; B != HistogramBuckets; ++B) {
    // Every bucket's inclusive max lands in that bucket, and max+1 in the
    // next (except the last, which absorbs the top of the range).
    EXPECT_EQ(histogramBucket(histogramBucketMax(B)), B);
    if (B + 1 != HistogramBuckets) {
      EXPECT_EQ(histogramBucket(histogramBucketMax(B) + 1), B + 1);
    }
  }
  EXPECT_EQ(histogramBucketMax(0), 0u);
  EXPECT_EQ(histogramBucketMax(1), 1u);
  EXPECT_EQ(histogramBucketMax(10), 1023u);
  EXPECT_EQ(histogramBucketMax(64), ~0ULL);
}

TEST(TelemetryMetrics, HistogramRecordAndSnapshot) {
  TelemetryOn On;
  Histogram &H = histogram("test.hist");
  const uint64_t Samples[] = {0, 1, 1, 3, 100, 1 << 20};
  for (uint64_t S : Samples)
    H.record(S);
  Histogram::Snapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 6u);
  EXPECT_EQ(Snap.Sum, 0u + 1 + 1 + 3 + 100 + (1 << 20));
  EXPECT_EQ(Snap.Buckets[0], 1u);                       // the 0
  EXPECT_EQ(Snap.Buckets[1], 2u);                       // the two 1s
  EXPECT_EQ(Snap.Buckets[2], 1u);                       // 3
  EXPECT_EQ(Snap.Buckets[histogramBucket(100)], 1u);
  EXPECT_EQ(Snap.Buckets[histogramBucket(1 << 20)], 1u);
}

TEST(TelemetryMetrics, HistogramMergesAcrossThreads) {
  TelemetryOn On;
  Histogram &H = histogram("test.mt_hist");
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 4096;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&H, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        H.record(T); // thread T records the constant T
    });
  for (std::thread &T : Pool)
    T.join();
  Histogram::Snapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, (uint64_t)Threads * PerThread);
  uint64_t ExpectedSum = 0;
  for (unsigned T = 0; T != Threads; ++T)
    ExpectedSum += (uint64_t)T * PerThread;
  EXPECT_EQ(Snap.Sum, ExpectedSum);
  // Values 0..7 land in buckets 0,1,2,2,3,3,3,3.
  EXPECT_EQ(Snap.Buckets[0], (uint64_t)PerThread);
  EXPECT_EQ(Snap.Buckets[1], (uint64_t)PerThread);
  EXPECT_EQ(Snap.Buckets[2], (uint64_t)2 * PerThread);
  EXPECT_EQ(Snap.Buckets[3], (uint64_t)4 * PerThread);
}

TEST(TelemetryMetrics, SnapshotContainsRegisteredMetrics) {
  TelemetryOn On;
  counter("test.snap_counter").add(5);
  gauge("test.snap_gauge").set(-2);
  histogram("test.snap_hist").record(9);
  std::map<std::string, MetricValue> ByName;
  for (MetricValue &M : snapshotMetrics())
    ByName[M.Name] = M;
  ASSERT_TRUE(ByName.count("test.snap_counter"));
  EXPECT_EQ(ByName["test.snap_counter"].Which, MetricValue::KCounter);
  EXPECT_GE(ByName["test.snap_counter"].Value, 5u);
  ASSERT_TRUE(ByName.count("test.snap_gauge"));
  EXPECT_EQ(ByName["test.snap_gauge"].GaugeValue, -2);
  ASSERT_TRUE(ByName.count("test.snap_hist"));
  EXPECT_GE(ByName["test.snap_hist"].Hist.Count, 1u);
  // Sorted by name.
  std::vector<MetricValue> All = snapshotMetrics();
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1].Name, All[I].Name);
}

TEST(TelemetryMetrics, SourcesPolledAndUnregistered) {
  TelemetryOn On;
  uint64_t Live = 123;
  SourceHandle H = registerSource([&Live](MetricsSink &S) {
    S.value("test.source_value", Live);
  });
  EXPECT_TRUE(H.active());
  auto Find = [](const char *Name) -> const MetricValue * {
    static std::vector<MetricValue> Snap;
    Snap = snapshotMetrics();
    for (const MetricValue &M : Snap)
      if (M.Name == Name)
        return &M;
    return nullptr;
  };
  const MetricValue *M = Find("test.source_value");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Value, 123u);
  Live = 124; // sources are pulled fresh each snapshot
  M = Find("test.source_value");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Value, 124u);
  H.reset();
  EXPECT_FALSE(H.active());
  EXPECT_EQ(Find("test.source_value"), nullptr);
}

TEST(TelemetryMetrics, TwoSourcesSameNameAreSummed) {
  TelemetryOn On;
  SourceHandle A = registerSource(
      [](MetricsSink &S) { S.value("test.summed_source", 10); });
  SourceHandle B = registerSource(
      [](MetricsSink &S) { S.value("test.summed_source", 32); });
  for (const MetricValue &M : snapshotMetrics()) {
    if (M.Name == "test.summed_source") {
      EXPECT_EQ(M.Value, 42u);
    }
  }
}

TEST(TelemetryMetrics, TextDumpFormat) {
  TelemetryOn On;
  counter("test.dump_counter").add(3);
  histogram("test.dump_hist").record(5);
  std::string Path = testing::TempDir() + "telemetry_dump.txt";
  ASSERT_TRUE(writeMetricsText(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());

  EXPECT_NE(Text.find("# TYPE mba_test_dump_counter counter"),
            std::string::npos);
  EXPECT_NE(Text.find("mba_test_dump_counter 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE mba_test_dump_hist histogram"),
            std::string::npos);
  // Cumulative buckets end with the catch-all.
  EXPECT_NE(Text.find("mba_test_dump_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("mba_test_dump_hist_sum 5"), std::string::npos);
  EXPECT_NE(Text.find("mba_test_dump_hist_count 1"), std::string::npos);
  // Every non-comment line is "name value".
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    EXPECT_EQ(Line.compare(0, 4, "mba_"), 0) << Line;
  }
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(TelemetryTrace, DisabledRecordsNothing) {
  clearTrace();
  ASSERT_FALSE(tracingEnabled());
  { MBA_TRACE_SPAN("test.invisible"); }
  for (const TraceEvent &E : collectTrace())
    EXPECT_STRNE(E.Name, "test.invisible");
}

TEST(TelemetryTrace, SpanNestingAndOrdering) {
  TelemetryOn On(/*Tracing=*/true);
  {
    MBA_TRACE_SPAN("test.outer");
    { MBA_TRACE_SPAN("test.inner1"); }
    { MBA_TRACE_SPAN("test.inner2"); }
  }
  setTracingEnabled(false);
  std::vector<TraceEvent> Trace = collectTrace();
  const TraceEvent *Outer = nullptr, *Inner1 = nullptr, *Inner2 = nullptr;
  for (const TraceEvent &E : Trace) {
    if (std::string_view(E.Name) == "test.outer")
      Outer = &E;
    else if (std::string_view(E.Name) == "test.inner1")
      Inner1 = &E;
    else if (std::string_view(E.Name) == "test.inner2")
      Inner2 = &E;
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner1, nullptr);
  ASSERT_NE(Inner2, nullptr);
  // All on this thread, nested inside the outer window, in start order.
  EXPECT_EQ(Outer->Tid, Inner1->Tid);
  EXPECT_EQ(Outer->Tid, Inner2->Tid);
  EXPECT_LE(Outer->StartNs, Inner1->StartNs);
  EXPECT_LE(Inner1->StartNs + Inner1->DurNs, Inner2->StartNs);
  EXPECT_LE(Inner2->StartNs + Inner2->DurNs,
            Outer->StartNs + Outer->DurNs);
  // collectTrace sorts by (Tid, StartNs): enclosing spans come first.
  ptrdiff_t OuterIdx = Outer - Trace.data();
  ptrdiff_t Inner1Idx = Inner1 - Trace.data();
  ptrdiff_t Inner2Idx = Inner2 - Trace.data();
  EXPECT_LT(OuterIdx, Inner1Idx);
  EXPECT_LT(Inner1Idx, Inner2Idx);
}

TEST(TelemetryTrace, ThreadsGetStableIdsAndLabels) {
  TelemetryOn On(/*Tracing=*/true);
  setThreadLabel("unit-main");
  { MBA_TRACE_SPAN("test.main_span"); }
  std::thread([&] {
    setThreadLabel("unit-worker");
    MBA_TRACE_SPAN("test.worker_span");
  }).join();
  setTracingEnabled(false);

  uint32_t MainTid = ~0u, WorkerTid = ~0u;
  for (const TraceEvent &E : collectTrace()) {
    if (std::string_view(E.Name) == "test.main_span")
      MainTid = E.Tid;
    else if (std::string_view(E.Name) == "test.worker_span")
      WorkerTid = E.Tid;
  }
  ASSERT_NE(MainTid, ~0u);
  ASSERT_NE(WorkerTid, ~0u);
  EXPECT_NE(MainTid, WorkerTid);
  bool SawMain = false, SawWorker = false;
  for (auto &[Tid, Label] : traceThreads()) {
    if (Tid == MainTid && Label == "unit-main")
      SawMain = true;
    if (Tid == WorkerTid && Label == "unit-worker")
      SawWorker = true;
  }
  EXPECT_TRUE(SawMain);
  EXPECT_TRUE(SawWorker);
}

TEST(TelemetryTrace, InternNameIsStable) {
  std::string A = "test.dynamic.";
  A += "name";
  const char *P1 = internName(A);
  const char *P2 = internName("test.dynamic.name");
  EXPECT_EQ(P1, P2);
  EXPECT_STREQ(P1, "test.dynamic.name");
}

/// A minimal recursive-descent JSON reader — just enough to check the
/// Chrome trace export is well-formed and to pull out the events. Throws
/// std::runtime_error on malformed input.
struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } Which = Null;
  double Num = 0;
  bool B = false;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::map<std::string, JsonValue> Fields;
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  JsonValue parse() {
    JsonValue V = value();
    skipWs();
    if (Pos != Text.size())
      fail("trailing garbage");
    return V;
  }

private:
  [[noreturn]] void fail(const char *Why) {
    throw std::runtime_error(std::string(Why) + " at offset " +
                             std::to_string(Pos));
  }
  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }
  char peek() {
    if (Pos >= Text.size())
      fail("unexpected end");
    return Text[Pos];
  }
  void expect(char C) {
    if (peek() != C)
      fail("unexpected character");
    ++Pos;
  }
  JsonValue value() {
    skipWs();
    switch (peek()) {
    case '{': return object();
    case '[': return array();
    case '"': { JsonValue V; V.Which = JsonValue::String; V.Str = string(); return V; }
    case 't': literal("true"); { JsonValue V; V.Which = JsonValue::Bool; V.B = true; return V; }
    case 'f': literal("false"); { JsonValue V; V.Which = JsonValue::Bool; return V; }
    case 'n': literal("null"); return {};
    default: return number();
    }
  }
  void literal(const char *Lit) {
    for (; *Lit; ++Lit)
      expect(*Lit);
  }
  JsonValue number() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit((unsigned char)Text[Pos]) || Text[Pos] == '-' ||
            Text[Pos] == '+' || Text[Pos] == '.' || Text[Pos] == 'e' ||
            Text[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      fail("expected number");
    JsonValue V;
    V.Which = JsonValue::Number;
    V.Num = std::stod(Text.substr(Start, Pos - Start));
    return V;
  }
  std::string string() {
    expect('"');
    std::string Out;
    while (peek() != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        char E = peek();
        ++Pos;
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'r': Out += '\r'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'u':
          if (Pos + 4 > Text.size())
            fail("bad \\u escape");
          Pos += 4; // decoded value not needed for these tests
          Out += '?';
          break;
        default: fail("bad escape");
        }
      } else if ((unsigned char)C < 0x20) {
        fail("raw control character in string");
      } else {
        Out += C;
      }
    }
    ++Pos;
    return Out;
  }
  JsonValue array() {
    expect('[');
    JsonValue V;
    V.Which = JsonValue::Array;
    skipWs();
    if (peek() == ']') { ++Pos; return V; }
    for (;;) {
      V.Elems.push_back(value());
      skipWs();
      if (peek() == ',') { ++Pos; continue; }
      expect(']');
      return V;
    }
  }
  JsonValue object() {
    expect('{');
    JsonValue V;
    V.Which = JsonValue::Object;
    skipWs();
    if (peek() == '}') { ++Pos; return V; }
    for (;;) {
      skipWs();
      std::string Key = string();
      skipWs();
      expect(':');
      V.Fields[Key] = value();
      skipWs();
      if (peek() == ',') { ++Pos; continue; }
      expect('}');
      return V;
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

TEST(TelemetryTrace, ChromeTraceExportParsesBack) {
  TelemetryOn On(/*Tracing=*/true);
  setThreadLabel("json-main");
  {
    MBA_TRACE_SPAN("test.chrome \"quoted\\name\""); // exercises escaping
    MBA_TRACE_SPAN("test.chrome.inner");
  }
  setTracingEnabled(false);

  std::string Path = testing::TempDir() + "telemetry_trace.json";
  ASSERT_TRUE(writeChromeTrace(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());

  JsonValue Root;
  ASSERT_NO_THROW(Root = JsonParser(Text).parse()) << Text;
  ASSERT_EQ(Root.Which, JsonValue::Object);
  ASSERT_TRUE(Root.Fields.count("traceEvents"));
  const JsonValue &Events = Root.Fields["traceEvents"];
  ASSERT_EQ(Events.Which, JsonValue::Array);

  bool SawEscaped = false, SawInner = false, SawThreadName = false;
  for (const JsonValue &E : Events.Elems) {
    ASSERT_EQ(E.Which, JsonValue::Object);
    ASSERT_TRUE(E.Fields.count("ph"));
    std::string Ph = E.Fields.at("ph").Str;
    if (Ph == "X") {
      // Complete events carry name/ts/dur/pid/tid.
      EXPECT_TRUE(E.Fields.count("name"));
      EXPECT_EQ(E.Fields.at("ts").Which, JsonValue::Number);
      EXPECT_EQ(E.Fields.at("dur").Which, JsonValue::Number);
      EXPECT_TRUE(E.Fields.count("pid"));
      EXPECT_TRUE(E.Fields.count("tid"));
      std::string Name = E.Fields.at("name").Str;
      if (Name == "test.chrome \"quoted\\name\"")
        SawEscaped = true;
      if (Name == "test.chrome.inner")
        SawInner = true;
    } else if (Ph == "M") {
      if (E.Fields.at("name").Str == "thread_name" &&
          E.Fields.count("args") &&
          E.Fields.at("args").Fields.count("name") &&
          E.Fields.at("args").Fields.at("name").Str == "json-main")
        SawThreadName = true;
    }
  }
  EXPECT_TRUE(SawEscaped) << "escaped span name must round-trip";
  EXPECT_TRUE(SawInner);
  EXPECT_TRUE(SawThreadName) << "thread_name metadata for labelled thread";
}

TEST(TelemetryTrace, ClearTraceDropsEvents) {
  TelemetryOn On(/*Tracing=*/true);
  { MBA_TRACE_SPAN("test.cleared"); }
  setTracingEnabled(false);
  clearTrace();
  for (const TraceEvent &E : collectTrace())
    EXPECT_STRNE(E.Name, "test.cleared");
  EXPECT_EQ(traceDropped(), 0u);
}

TEST(TelemetryOverhead, DisabledOpsAreCheap) {
  // The contract instrumented hot paths rely on: with telemetry off, a
  // counter add / histogram record / span is a relaxed load and nothing
  // else. Bound it loosely (hundreds of ns per op would mean a lock or an
  // allocation snuck in); bench/micro_telemetry measures the real numbers.
  ASSERT_FALSE(metricsEnabled());
  ASSERT_FALSE(tracingEnabled());
  Counter &C = counter("test.overhead_counter");
  Histogram &H = histogram("test.overhead_hist");
  constexpr unsigned N = 200000;
  uint64_t Start = nowNs();
  for (unsigned I = 0; I != N; ++I) {
    C.add();
    H.record(I);
    MBA_TRACE_SPAN("test.overhead_span");
  }
  uint64_t PerIter = (nowNs() - Start) / N;
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_LT(PerIter, 1000u) << "disabled telemetry cost exploded";
}

TEST(TelemetryMetrics, HistogramPercentilesInterpolate) {
  setMetricsEnabled(true);
  Histogram &H = histogram("test.percentile_hist");
  // A three-mode distribution: 50 fast samples, 30 medium, 20 slow.
  for (int I = 0; I != 50; ++I)
    H.record(1);
  for (int I = 0; I != 30; ++I)
    H.record(10);
  for (int I = 0; I != 20; ++I)
    H.record(1000);
  setMetricsEnabled(false);
  Histogram::Snapshot S = H.snapshot();
  ASSERT_EQ(S.Count, 100u);

  // Ranks 1..50 sit in the value-1 bucket, which spans only {1}.
  EXPECT_DOUBLE_EQ(S.percentile(25), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(50), 1.0);
  // p75 lands among the 10s: interpolated inside bucket [8, 15].
  EXPECT_GE(S.percentile(75), 8.0);
  EXPECT_LE(S.percentile(75), 15.0);
  // p95/p99 land among the 1000s: bucket [512, 1023].
  EXPECT_GE(S.percentile(95), 512.0);
  EXPECT_LE(S.percentile(95), 1023.0);
  EXPECT_GE(S.percentile(99), S.percentile(95));
  // Out-of-range P clamps instead of reading past the distribution.
  EXPECT_DOUBLE_EQ(S.percentile(-5), 1.0);
  EXPECT_LE(S.percentile(200), 1023.0);
  // An empty histogram reports zero for every percentile.
  EXPECT_DOUBLE_EQ(Histogram::Snapshot().percentile(50), 0.0);
  // A zero-valued sample lands in bucket 0, which spans only {0}.
  Histogram::Snapshot Zeros;
  Zeros.Buckets[0] = 4;
  Zeros.Count = 4;
  EXPECT_DOUBLE_EQ(Zeros.percentile(99), 0.0);
}

} // namespace
