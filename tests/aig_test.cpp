//===- tests/aig_test.cpp - AIG layer and incremental-backend tests -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "aig/Aig.h"
#include "aig/AigBlaster.h"
#include "aig/ExprAig.h"

#include "ast/BitslicedEval.h"
#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "bitblast/BitBlaster.h"
#include "gen/Corpus.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

using namespace mba;
using namespace mba::aig;

namespace {

//===----------------------------------------------------------------------===//
// Core graph: strashing, constant propagation, two-level rewriting
//===----------------------------------------------------------------------===//

TEST(AigCore, ConstantAndTrivialRules) {
  Aig G;
  AigLit A = G.mkInput(), B = G.mkInput();
  EXPECT_EQ(G.mkAnd(A, Aig::falseLit()), Aig::falseLit());
  EXPECT_EQ(G.mkAnd(Aig::trueLit(), B), B);
  EXPECT_EQ(G.mkAnd(A, Aig::trueLit()), A);
  EXPECT_EQ(G.mkAnd(A, A), A);
  EXPECT_EQ(G.mkAnd(A, ~A), Aig::falseLit());
  EXPECT_EQ(G.stats().AndNodes, 0u); // nothing above built a node
  EXPECT_GE(G.stats().ConstFolds, 2u);
}

TEST(AigCore, StructuralHashingDedupsAcrossOperandOrder) {
  Aig G;
  AigLit A = G.mkInput(), B = G.mkInput();
  AigLit N1 = G.mkAnd(A, B);
  AigLit N2 = G.mkAnd(B, A);
  AigLit N3 = G.mkAnd(A, B);
  EXPECT_EQ(N1, N2);
  EXPECT_EQ(N1, N3);
  EXPECT_EQ(G.stats().AndNodes, 1u);
  EXPECT_EQ(G.stats().StrashHits, 2u);
}

TEST(AigCore, TwoLevelRewriteRules) {
  Aig G;
  AigLit X = G.mkInput(), Y = G.mkInput();
  AigLit XY = G.mkAnd(X, Y);

  // Idempotence/absorption: (x&y) & x == x&y.
  EXPECT_EQ(G.mkAnd(XY, X), XY);
  EXPECT_EQ(G.mkAnd(Y, XY), XY);
  // Contradiction: (x&y) & ~x == false.
  EXPECT_EQ(G.mkAnd(XY, ~X), Aig::falseLit());
  // Subsumption: ~(x&y) & ~x == ~x.
  EXPECT_EQ(G.mkAnd(~XY, ~X), ~X);
  // Substitution: ~(x&y) & x == x & ~y.
  AigLit XNotY = G.mkAnd(X, ~Y);
  EXPECT_EQ(G.mkAnd(~XY, X), XNotY);
  // Resolution: ~(x&y) & ~(x&~y) == ~x.
  EXPECT_EQ(G.mkAnd(~XY, ~XNotY), ~X);
  // Contradiction across grandchildren: (x&y) & (x&~y) == false.
  EXPECT_EQ(G.mkAnd(XY, XNotY), Aig::falseLit());
  EXPECT_GE(G.stats().Rewrites, 7u);
}

TEST(AigCore, MiterOfIdenticalStructureIsConstantFalse) {
  // The whole point of strashing for equivalence checking: both sides of
  // x&y vs y&x produce the same node, so the miter folds to false.
  Aig G;
  AigBlaster B(G, 8);
  auto X = B.freshWord(), Y = B.freshWord();
  auto L = B.bvAdd(X, Y);
  auto R = B.bvAdd(Y, X);
  EXPECT_EQ(B.disequalLit(L, R), Aig::falseLit());
}

TEST(AigCore, XorMuxDetection) {
  Aig G;
  AigLit A = G.mkInput(), B = G.mkInput(), S = G.mkInput();
  AigLit X = G.mkXor(A, B);
  ASSERT_TRUE(X.complemented()); // xor is built as ~(~(a&~b) & ~(~a&b))
  XorMux MX = G.matchXorMux(X.node());
  EXPECT_EQ(MX.K, XorMux::Xor);

  AigLit M = G.mkMux(S, A, B);
  XorMux MM = G.matchXorMux(M.node());
  EXPECT_EQ(MM.K, XorMux::Mux);

  AigLit Plain = G.mkAnd(A, B);
  EXPECT_EQ(G.matchXorMux(Plain.node()).K, XorMux::None);
}

TEST(AigCore, SimulateTruthTables) {
  Aig G;
  AigLit A = G.mkInput(), B = G.mkInput();
  AigLit And = G.mkAnd(A, B), Or = G.mkOr(A, B), Xor = G.mkXor(A, B);
  uint64_t PA = 0b0101, PB = 0b0011;
  std::vector<uint64_t> V;
  G.simulate(std::vector<uint64_t>{PA, PB}, V);
  uint64_t M = 0xF; // 4 lanes of interest
  EXPECT_EQ(Aig::simValue(V, And) & M, PA & PB);
  EXPECT_EQ(Aig::simValue(V, Or) & M, (PA | PB) & M);
  EXPECT_EQ(Aig::simValue(V, Xor) & M, (PA ^ PB) & M);
  EXPECT_EQ(Aig::simValue(V, ~And) & M, ~(PA & PB) & M);
  EXPECT_EQ(Aig::simValue(V, Aig::trueLit()) & M, M);
  EXPECT_EQ(Aig::simValue(V, Aig::falseLit()) & M, 0u);
}

//===----------------------------------------------------------------------===//
// CNF emission
//===----------------------------------------------------------------------===//

/// Pins AIG input \p In to SAT value \p Value through the emitter's input
/// variable.
void pinInput(sat::SatSolver &S, CnfEmitter &Em, AigLit In, bool Value) {
  sat::Lit L = Em.emit(In);
  S.addClause({Value ? L : ~L});
}

TEST(AigCnf, EmitterAgreesWithSimulation) {
  // Every (a, b, sel) corner of a mixed xor/mux/and cone: pin the inputs,
  // solve, and compare the forced root value against simulation.
  for (unsigned Corner = 0; Corner != 8; ++Corner) {
    bool AV = Corner & 1, BV = Corner & 2, SV = Corner & 4;
    Aig G;
    AigLit A = G.mkInput(), B = G.mkInput(), S = G.mkInput();
    AigLit Root = G.mkAnd(G.mkXor(A, B), ~G.mkMux(S, A, ~B));

    std::vector<uint64_t> Values;
    G.simulate(std::vector<uint64_t>{AV ? ~0ULL : 0, BV ? ~0ULL : 0,
                                     SV ? ~0ULL : 0},
               Values);
    bool Expected = Aig::simValue(Values, Root) & 1;

    sat::SatSolver Solver;
    CnfEmitter Em(G, Solver);
    sat::Lit RootLit = Em.emit(Root);
    pinInput(Solver, Em, A, AV);
    pinInput(Solver, Em, B, BV);
    pinInput(Solver, Em, S, SV);
    ASSERT_EQ(Solver.solve(), sat::SatResult::Sat);
    EXPECT_EQ(Solver.modelValue(RootLit.var()) != RootLit.negated(), Expected)
        << "corner " << Corner;
  }
}

TEST(AigCnf, IncrementalEmissionReusesEncodedCone) {
  Aig G;
  AigLit A = G.mkInput(), B = G.mkInput(), C = G.mkInput();
  AigLit N1 = G.mkAnd(A, B);

  sat::SatSolver S;
  CnfEmitter Em(G, S);
  sat::Lit L1 = Em.emit(N1);
  unsigned VarsAfterFirst = S.numVars();

  // Same root again: answered from the map, no new variables.
  sat::Lit L1Again = Em.emit(N1);
  EXPECT_EQ(L1, L1Again);
  EXPECT_EQ(S.numVars(), VarsAfterFirst);
  EXPECT_GE(Em.cacheHits(), 1u);

  // A root sharing the cone: only the new node and input get variables.
  AigLit N2 = G.mkAnd(N1, C);
  Em.emit(N2);
  EXPECT_EQ(S.numVars(), VarsAfterFirst + 2);
}

//===----------------------------------------------------------------------===//
// Exhaustive width-<=6 agreement: AIG vs interpreter vs BitslicedEval
//===----------------------------------------------------------------------===//

/// All ops the MBA language can produce, as parseable expressions.
const char *const OpExprs[] = {"x+y", "x-y", "x*y", "x&y",
                               "x|y", "x^y", "~x",  "-x"};

TEST(AigWord, ExhaustiveAgreementUpToWidth6) {
  for (unsigned W = 1; W <= 6; ++W) {
    uint64_t Mask = (1ULL << W) - 1;
    unsigned NumVals = 1u << W; // <= 64, one simulation lane per y value
    for (const char *Text : OpExprs) {
      Context Ctx(W);
      const Expr *E = parseOrDie(Ctx, Text);
      const Expr *XV = Ctx.getVar("x");
      const Expr *YV = Ctx.getVar("y");

      Aig G;
      AigBlaster AB(G, W);
      ExprAig EA(AB);
      AigBlaster::Word R = EA.blast(E);
      BitslicedExpr Sliced(Ctx, E);

      for (uint64_t A = 0; A != NumVals; ++A) {
        // Lane k simulates y = k; x is the broadcast constant A.
        std::vector<uint64_t> Patterns(G.numInputs(), 0);
        const AigBlaster::Word &XW = EA.inputWord(XV);
        for (unsigned I = 0; I != W; ++I)
          Patterns[G.inputOrdinal(XW[I].node())] =
              (A >> I) & 1 ? ~0ULL : 0;
        if (std::string_view(Text).find('y') != std::string_view::npos) {
          const AigBlaster::Word &YW = EA.inputWord(YV);
          for (unsigned I = 0; I != W; ++I) {
            uint64_t Pattern = 0;
            for (uint64_t BVal = 0; BVal != NumVals; ++BVal)
              Pattern |= ((BVal >> I) & 1) << BVal;
            Patterns[G.inputOrdinal(YW[I].node())] = Pattern;
          }
        }
        std::vector<uint64_t> Values;
        G.simulate(Patterns, Values);

        // Reference lanes from the bitsliced evaluator.
        std::vector<uint64_t> XLanes(NumVals, A), YLanes(NumVals);
        for (uint64_t BVal = 0; BVal != NumVals; ++BVal)
          YLanes[BVal] = BVal;
        const uint64_t *Lanes[2] = {XLanes.data(), YLanes.data()};
        std::vector<uint64_t> Ref = Sliced.evaluatePoints(Lanes, NumVals);

        for (uint64_t BVal = 0; BVal != NumVals; ++BVal) {
          uint64_t AigVal = 0;
          for (unsigned I = 0; I != W; ++I)
            AigVal |= ((Aig::simValue(Values, R[I]) >> BVal) & 1) << I;
          uint64_t Inputs[2] = {A, BVal};
          uint64_t Interp = evaluate(Ctx, E, Inputs);
          EXPECT_EQ(AigVal, Interp & Mask)
              << Text << " W=" << W << " x=" << A << " y=" << BVal;
          EXPECT_EQ(Ref[BVal] & Mask, Interp & Mask)
              << Text << " W=" << W << " x=" << A << " y=" << BVal;
        }
      }
    }
  }
}

/// SAT-proves the AIG encoding equals the existing ripple-carry encoding
/// over ALL inputs: both circuits share input variables in one solver and
/// the miter must come back UNSAT.
TEST(AigWord, CrossEncodingEquivalenceWithRippleCarry) {
  enum OpKind { Add, Sub, Mul, Cmp };
  for (unsigned W = 1; W <= 6; ++W) {
    for (OpKind Op : {Add, Sub, Mul, Cmp}) {
      sat::SatSolver S;
      BitBlaster BB(S, W, /*EnableRewriting=*/false); // the ripple baseline
      BitBlaster::Word X = BB.freshWord(), Y = BB.freshWord();

      Aig G;
      AigBlaster AB(G, W);
      AigBlaster::Word XA = AB.freshWord(), YA = AB.freshWord();
      CnfEmitter Em(G, S);

      // Bridge the AIG inputs onto the ripple circuit's input variables.
      for (unsigned I = 0; I != W; ++I) {
        sat::Lit EX = Em.emit(XA[I]), EY = Em.emit(YA[I]);
        S.addClause({EX, ~X[I]});
        S.addClause({~EX, X[I]});
        S.addClause({EY, ~Y[I]});
        S.addClause({~EY, Y[I]});
      }

      std::vector<sat::Lit> Diffs;
      if (Op == Cmp) {
        sat::Lit DR = BB.disequal(X, Y);
        sat::Lit DA = Em.emit(AB.disequalLit(XA, YA));
        Diffs.push_back(BB.mkXor(DR, DA));
      } else {
        BitBlaster::Word WR = Op == Add   ? BB.bvAdd(X, Y)
                              : Op == Sub ? BB.bvSub(X, Y)
                                          : BB.bvMul(X, Y);
        AigBlaster::Word WA = Op == Add   ? AB.bvAdd(XA, YA)
                              : Op == Sub ? AB.bvSub(XA, YA)
                                          : AB.bvMul(XA, YA);
        for (unsigned I = 0; I != W; ++I)
          Diffs.push_back(BB.mkXor(WR[I], Em.emit(WA[I])));
      }
      S.addClause(Diffs); // some bit differs somewhere?
      EXPECT_EQ(S.solve(), sat::SatResult::Unsat)
          << "op " << (int)Op << " width " << W;
    }
  }
}

//===----------------------------------------------------------------------===//
// Incremental vs fresh-solver determinism
//===----------------------------------------------------------------------===//

TEST(AigChecker, IncrementalMatchesFreshOver200QueryCorpus) {
  // Width 4: every query decides well under the budget for all three
  // backends (width 8 already pushes some poly miters past 10s on the
  // in-tree CDCL solver).
  Context Ctx(4);
  CorpusOptions Opt;
  Opt.LinearCount = 40;
  Opt.PolyCount = 30;
  Opt.NonPolyCount = 30;
  Opt.MaxVars = 3;
  Opt.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, Opt);
  ASSERT_EQ(Corpus.size(), 100u);

  // 100 equivalent pairs plus 100 shifted (mostly inequivalent) pairs.
  std::vector<std::pair<const Expr *, const Expr *>> Queries;
  for (const CorpusEntry &E : Corpus)
    Queries.push_back({E.Obfuscated, E.Ground});
  for (size_t I = 0; I != Corpus.size(); ++I)
    Queries.push_back(
        {Corpus[I].Obfuscated, Corpus[(I + 1) % Corpus.size()].Ground});
  ASSERT_EQ(Queries.size(), 200u);

  auto Incremental = makeAigChecker(/*Incremental=*/true);
  auto Fresh = makeAigChecker(/*Incremental=*/false);
  auto Reference = makeBlastChecker(/*EnableRewriting=*/true);

  int Decided = 0;
  for (auto &[A, B] : Queries) {
    CheckResult RI = Incremental->check(Ctx, A, B, /*TimeoutSeconds=*/10);
    CheckResult RF = Fresh->check(Ctx, A, B, /*TimeoutSeconds=*/10);
    EXPECT_EQ(RI.Outcome, RF.Outcome)
        << "incremental and fresh verdicts differ";
    if (RI.Outcome != Verdict::Timeout) {
      ++Decided;
      CheckResult RR = Reference->check(Ctx, A, B, /*TimeoutSeconds=*/10);
      if (RR.Outcome != Verdict::Timeout) {
        EXPECT_EQ(RI.Outcome, RR.Outcome)
            << "AIG backend disagrees with BlastBV+RW";
      }
    }
  }
  // At width 4 with a 10s budget, everything should be decided.
  EXPECT_EQ(Decided, 200);
}

} // namespace
