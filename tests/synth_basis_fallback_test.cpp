//===- tests/synth_basis_fallback_test.cpp - Basis3 integrity fallback ----===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The shipped-table integrity check, exercised end to end: this binary
/// points MBA_BASIS3_TABLE at a deliberately corrupted file *before* the
/// first basis access (the load is lazy and happens once per process,
/// which is why this lives in its own test binary), then asserts the
/// loader rejected it and that the builtin fallback serves identical
/// content anyway.
///
//===----------------------------------------------------------------------===//

#include "synth/Basis3.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace mba;
using namespace mba::synth;

namespace {

TEST(Basis3Fallback, CorruptTableIsRejectedAndFallbackServes) {
  // Entry 0x03 filed under 0x04: the per-entry truth check must fire.
  std::string Path = ::testing::TempDir() + "basis3_corrupt.tbl";
  {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good());
    Out << "MBA-BASIS3 v1 vars=3 terms=256\n";
    for (unsigned F = 0; F != 256; ++F)
      Out << (F == 4 ? "04 ab|~\n" : ""); // short file + mismatched entry
  }
  ASSERT_EQ(setenv("MBA_BASIS3_TABLE", Path.c_str(), 1), 0);

  const Basis3LoadInfo &Info = basis3LoadInfo(); // first access: loads now
  EXPECT_FALSE(Info.FromFile);
  EXPECT_EQ(Info.Path, Path);
  EXPECT_FALSE(Info.Error.empty());

  // The builtin closure serves identical content: the generator output is
  // the ground truth either way.
  std::string Table = generateBasis3Table();
  EXPECT_NE(Table.find("MBA-BASIS3 v1 vars=3 terms=256"), std::string::npos);
  EXPECT_EQ(bitwiseCost(3, 0), 0u);
  EXPECT_EQ(bitwiseRpn(3, 0b11111111), "1");
  EXPECT_EQ(bitwiseCost(2, 0b0110), 1u); // a^b via builtin tier

  std::remove(Path.c_str());
}

} // namespace
