//===- tests/ir_dataflow_test.cpp - Dataflow-framework tests --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
// The analyses are validated against brute force: dominance by per-node
// graph deletion and reachability, the abstract domains by exhaustive
// width-4 interpretation.
//
//===----------------------------------------------------------------------===//

#include "ir/Dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mba;

namespace {

Function parseOne(Context &Ctx, const char *Text) {
  Diag D;
  auto P = Program::parse(Ctx, Text, &D);
  EXPECT_TRUE(P.has_value()) << D.str();
  return std::move(P->Functions.front());
}

const char *DiamondText = R"(
func @f(x, y) {
entry:
  p = x & 1
  br p, left, right
left:
  a = x + y
  jmp join
right:
  b = x - y
  jmp join
join:
  m = phi [left: a], [right: b]
  ret m
}
)";

const char *LoopText = R"(
func @loop(n) {
entry:
  jmp head
head:
  i = phi [entry: 0], [body: i2]
  c = i - n
  br c, body, done
body:
  i2 = i + 1
  jmp head
done:
  ret i
}
)";

const char *UnreachableText = R"(
func @u(x) {
entry:
  jmp exit
dead:
  jmp exit
exit:
  ret x
}
)";

/// Brute-force dominance: A dominates B iff both are reachable and B is no
/// longer reachable from the entry once every path is forbidden to visit A
/// (reflexively, A dominates itself).
std::vector<std::vector<bool>> bruteDominators(const CFG &G) {
  unsigned N = G.numBlocks();
  auto ReachAvoiding = [&](int Avoid) {
    std::vector<bool> R(N, false);
    if (Avoid == 0)
      return R;
    std::vector<unsigned> Work{0};
    R[0] = true;
    while (!Work.empty()) {
      unsigned B = Work.back();
      Work.pop_back();
      for (unsigned S : G.Succs[B])
        if ((int)S != Avoid && !R[S]) {
          R[S] = true;
          Work.push_back(S);
        }
    }
    return R;
  };
  std::vector<bool> Reach = ReachAvoiding(-1);
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, false));
  for (unsigned A = 0; A != N; ++A) {
    std::vector<bool> RA = ReachAvoiding((int)A);
    for (unsigned B = 0; B != N; ++B)
      Dom[A][B] = Reach[A] && Reach[B] && (A == B || !RA[B]);
  }
  return Dom;
}

void checkDominatorsAgainstBruteForce(const Function &F) {
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  std::vector<std::vector<bool>> Want = bruteDominators(G);
  for (unsigned A = 0; A != G.numBlocks(); ++A)
    for (unsigned B = 0; B != G.numBlocks(); ++B)
      EXPECT_EQ(DT.dominates(A, B), Want[A][B])
          << F.Name << ": dominates(" << F.Blocks[A].Name << ", "
          << F.Blocks[B].Name << ")";
}

TEST(IRCfg, BuildsEdges) {
  Context Ctx(64);
  Function F = parseOne(Ctx, DiamondText);
  CFG G = CFG::build(F);
  ASSERT_EQ(G.numBlocks(), 4u);
  EXPECT_EQ(G.Succs[0], (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(G.Succs[1], (std::vector<unsigned>{3}));
  EXPECT_EQ(G.Preds[3], (std::vector<unsigned>{1, 2}));
  EXPECT_TRUE(G.Succs[3].empty());
  EXPECT_TRUE(G.Preds[0].empty());
}

TEST(IRDom, MatchesBruteForce) {
  Context Ctx(64);
  checkDominatorsAgainstBruteForce(parseOne(Ctx, DiamondText));
  checkDominatorsAgainstBruteForce(parseOne(Ctx, LoopText));
  checkDominatorsAgainstBruteForce(parseOne(Ctx, UnreachableText));
}

TEST(IRDom, LoopShape) {
  Context Ctx(64);
  Function F = parseOne(Ctx, LoopText);
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  // entry -> head -> {body, done}; head dominates body and done.
  EXPECT_EQ(DT.idom(1), 0u);
  EXPECT_EQ(DT.idom(2), 1u);
  EXPECT_EQ(DT.idom(3), 1u);
  EXPECT_TRUE(DT.dominates(1, 3));
  EXPECT_FALSE(DT.dominates(2, 3)); // the body does not dominate the exit
}

TEST(IRDom, UnreachableBlocksAreOutside) {
  Context Ctx(64);
  Function F = parseOne(Ctx, UnreachableText);
  CFG G = CFG::build(F);
  DominatorTree DT = DominatorTree::build(G);
  EXPECT_FALSE(DT.reachable(1));
  EXPECT_FALSE(DT.dominates(1, 2));
  EXPECT_FALSE(DT.dominates(2, 1));
  EXPECT_FALSE(DT.dominates(1, 1));
}

TEST(IRRpo, PermutationRespectingDominance) {
  Context Ctx(64);
  for (const char *Text : {DiamondText, LoopText, UnreachableText}) {
    Function F = parseOne(Ctx, Text);
    CFG G = CFG::build(F);
    std::vector<unsigned> RPO = reversePostOrder(G);
    std::vector<bool> Reach = reachableBlocks(G);
    size_t NumReach = (size_t)std::count(Reach.begin(), Reach.end(), true);
    ASSERT_EQ(RPO.size(), NumReach);
    ASSERT_FALSE(RPO.empty());
    EXPECT_EQ(RPO.front(), 0u);
    std::vector<int> Pos(G.numBlocks(), -1);
    for (size_t I = 0; I != RPO.size(); ++I) {
      EXPECT_TRUE(Reach[RPO[I]]);
      EXPECT_EQ(Pos[RPO[I]], -1) << "duplicate block in RPO";
      Pos[RPO[I]] = (int)I;
    }
    DominatorTree DT = DominatorTree::build(G);
    for (unsigned A = 0; A != G.numBlocks(); ++A)
      for (unsigned B = 0; B != G.numBlocks(); ++B)
        if (A != B && DT.dominates(A, B)) {
          EXPECT_LT(Pos[A], Pos[B])
              << F.Name << ": dominator must precede in RPO";
        }
  }
}

TEST(IRDefUse, SitesAndCounts) {
  Context Ctx(64);
  Function F = parseOne(Ctx, DiamondText);
  DefUseInfo DU = DefUseInfo::build(F);

  const DefSite *DX = DU.defOf(Ctx.getVar("x"));
  ASSERT_NE(DX, nullptr);
  EXPECT_EQ(DX->Kind, DefSite::Param);
  EXPECT_EQ(DX->Index, 0u);
  EXPECT_EQ(DU.numUses(Ctx.getVar("x")), 3u); // p, a, b right-hand sides

  const DefSite *DP = DU.defOf(Ctx.getVar("p"));
  ASSERT_NE(DP, nullptr);
  EXPECT_EQ(DP->Kind, DefSite::Inst);
  EXPECT_EQ(DP->Block, 0u);
  EXPECT_EQ(DP->Index, 0u);
  std::span<const UseSite> PU = DU.usesOf(Ctx.getVar("p"));
  ASSERT_EQ(PU.size(), 1u);
  EXPECT_EQ(PU[0].Kind, UseSite::TermCond);
  EXPECT_EQ(PU[0].Block, 0u);

  const DefSite *DM = DU.defOf(Ctx.getVar("m"));
  ASSERT_NE(DM, nullptr);
  EXPECT_EQ(DM->Kind, DefSite::Phi);
  EXPECT_EQ(DM->Block, 3u);
  std::span<const UseSite> MU = DU.usesOf(Ctx.getVar("m"));
  ASSERT_EQ(MU.size(), 1u);
  EXPECT_EQ(MU[0].Kind, UseSite::TermRet);

  std::span<const UseSite> AU = DU.usesOf(Ctx.getVar("a"));
  ASSERT_EQ(AU.size(), 1u);
  EXPECT_EQ(AU[0].Kind, UseSite::PhiIn);
  EXPECT_EQ(AU[0].Block, 3u);
  EXPECT_EQ(AU[0].PhiPred, 1u); // flows in over the 'left' edge

  EXPECT_EQ(DU.defOf(Ctx.getVar("nosuch")), nullptr);
  EXPECT_EQ(DU.numUses(Ctx.getVar("nosuch")), 0u);
}

TEST(IRLiveness, DiamondByHand) {
  Context Ctx(64);
  Function F = parseOne(Ctx, DiamondText);
  CFG G = CFG::build(F);
  Liveness L = Liveness::build(F, G);
  const Expr *X = Ctx.getVar("x");
  const Expr *Y = Ctx.getVar("y");
  const Expr *A = Ctx.getVar("a");
  const Expr *M = Ctx.getVar("m");

  // x and y cross the branch into both arms.
  EXPECT_TRUE(L.LiveOut[0].count(X));
  EXPECT_TRUE(L.LiveOut[0].count(Y));
  EXPECT_TRUE(L.LiveIn[1].count(X));
  EXPECT_TRUE(L.LiveIn[2].count(Y));
  // A phi incoming is live-out of its predecessor, not live-in of the join.
  EXPECT_TRUE(L.LiveOut[1].count(A));
  EXPECT_FALSE(L.LiveIn[3].count(A));
  // m is defined by the join's own phi.
  EXPECT_FALSE(L.LiveIn[3].count(M));
  // Nothing is live into the entry: parameters are defs, not live-ins.
  EXPECT_FALSE(L.LiveIn[0].count(A));
  EXPECT_TRUE(L.LiveOut[3].empty());
}

//===----------------------------------------------------------------------===//
// Flow-sensitive abstract interpretation
//===----------------------------------------------------------------------===//

/// Concrete value \p V must be described by the abstract value the domain
/// assigned — soundness, checked exhaustively at width 4.
void expectConsistent(uint64_t Mask, const KnownBits &K, uint64_t V) {
  EXPECT_EQ(V & K.Zero & Mask, 0u);
  EXPECT_EQ(K.One & Mask & ~V, 0u);
}
void expectConsistent(uint64_t, const Parity &P, uint64_t V) {
  EXPECT_EQ((V ^ P.Residue) & lowBitsMask(P.KnownLow), 0u);
}
void expectConsistent(uint64_t, const Interval &I, uint64_t V) {
  EXPECT_TRUE(I.contains(V)) << "[" << I.Lo << ", " << I.Hi << "] " << V;
}

const char *MixedText = R"(
func @s(x) {
entry:
  a = (x | 3) & 12
  br a, t, f
t:
  b = a * 2 + 1
  jmp join
f:
  b2 = x ^ 5
  jmp join
join:
  m = phi [t: b], [f: b2]
  r = m + (m & 6)
  ret r
}
)";

template <class Domain>
void checkSoundnessExhaustively(Context &Ctx, const Function &F,
                                const Domain &D) {
  CFG G = CFG::build(F);
  FlowAnalysis<Domain> FA(D, F, G);
  const Expr *Ret = nullptr;
  for (const BasicBlock &B : F.Blocks)
    if (B.Term.Kind == TermKind::Ret)
      Ret = B.Term.Value;
  ASSERT_NE(Ret, nullptr);
  typename Domain::Value AV = FA.valueOfExpr(Ret);
  for (uint64_t X = 0; X <= Ctx.mask(); ++X) {
    uint64_t Args[] = {X};
    std::optional<uint64_t> R = interpretFunction(Ctx, F, Args);
    ASSERT_TRUE(R.has_value());
    expectConsistent(Ctx.mask(), AV, *R);
  }
}

TEST(IRFlow, SoundAgainstExhaustiveInterpretation) {
  Context Ctx(4);
  Function F = parseOne(Ctx, MixedText);
  checkSoundnessExhaustively(Ctx, F, KnownBitsDomain(Ctx.mask()));
  checkSoundnessExhaustively(Ctx, F, ParityDomain(Ctx.width()));
  checkSoundnessExhaustively(Ctx, F, IntervalDomain(Ctx.mask()));
}

TEST(IRFlow, ConstantThroughDiamond) {
  // Both arms feed the same constant into the phi: the join must keep it.
  Context Ctx(64);
  Function F = parseOne(Ctx,
                        "func @c(x) {\nentry:\n  br x, t, f\n"
                        "t:\n  jmp join\nf:\n  jmp join\n"
                        "join:\n  m = phi [t: 3], [f: 3]\n  ret m\n}\n");
  CFG G = CFG::build(F);
  FlowAnalysis<KnownBitsDomain> FA(KnownBitsDomain(Ctx.mask()), F, G);
  const Expr *M = Ctx.getVar("m");
  EXPECT_EQ(FA.constantOf(M), std::optional<uint64_t>(3));
}

TEST(IRFlow, BranchEdgeRefinementPinsConditionToZero) {
  // On the not-taken edge of `br v, t, join` the value v is known 0, so
  // the phi join is {5, 0} and bits 1 and 3 of m are known zero.
  Context Ctx(4);
  Function F = parseOne(Ctx,
                        "func @g(x) {\nentry:\n  v = x & 7\n"
                        "  br v, t, join\n"
                        "t:\n  jmp join\n"
                        "join:\n  m = phi [t: 5], [entry: v]\n"
                        "  r = m & 10\n  ret r\n}\n");
  CFG G = CFG::build(F);
  FlowAnalysis<KnownBitsDomain> FA(KnownBitsDomain(Ctx.mask()), F, G);
  EXPECT_EQ(FA.constantOf(Ctx.getVar("r")), std::optional<uint64_t>(0));
  // And the exhaustive cross-check, for good measure.
  for (uint64_t X = 0; X <= Ctx.mask(); ++X) {
    uint64_t Args[] = {X};
    auto R = interpretFunction(Ctx, F, Args);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(*R, 0u);
  }
}

TEST(IRFlow, WideningTerminatesOnCountingLoop) {
  // The interval of a loop counter ascends 2^64 states without widening;
  // the constructor finishing at all is the termination test.
  Context Ctx(64);
  Function F = parseOne(Ctx, LoopText);
  CFG G = CFG::build(F);
  FlowAnalysis<IntervalDomain> FA(IntervalDomain(Ctx.mask()), F, G);
  EXPECT_FALSE(FA.values().empty()) << "analysis hit the round bound";
  // Soundness: every concrete value the counter takes for n = 5 lies in
  // its abstract interval.
  Interval I = FA.valueOf(Ctx.getVar("i"));
  for (uint64_t V = 0; V <= 5; ++V)
    EXPECT_TRUE(I.contains(V)) << V;
}

} // namespace
