//===- tests/trace_test.cpp - Straight-line trace tests -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Trace.h"

#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/Obfuscator.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

const char *SampleTrace = R"(
# an obfuscated basic block
t1 = (x | y) + (x & y)
t2 = t1 - y          # t2 == x
t3 = (t2 ^ y) + 2*(t2 & y)
out = t3 * 2 - t3    # out == x + y
dead = t1 * t1
)";

TEST(TraceParse, ParsesInstructionsAndComments) {
  Context Ctx(64);
  std::string Error;
  auto T = Trace::parse(Ctx, SampleTrace, &Error);
  ASSERT_TRUE(T.has_value()) << Error;
  EXPECT_EQ(T->size(), 5u);
  EXPECT_STREQ(T->instructions()[0].Dest->varName(), "t1");
  EXPECT_STREQ(T->instructions()[3].Dest->varName(), "out");
  auto Inputs = T->inputs();
  ASSERT_EQ(Inputs.size(), 2u);
  EXPECT_STREQ(Inputs[0]->varName(), "x");
  EXPECT_STREQ(Inputs[1]->varName(), "y");
}

TEST(TraceParse, RejectsMalformedInput) {
  Context Ctx(64);
  std::string Error;
  EXPECT_FALSE(Trace::parse(Ctx, "t1 = x +", &Error).has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_FALSE(Trace::parse(Ctx, "just text", &Error).has_value());
  EXPECT_FALSE(Trace::parse(Ctx, "1bad = x", &Error).has_value());
  EXPECT_FALSE(Trace::parse(Ctx, " = x", &Error).has_value());
  // Re-assignment violates single-assignment form.
  EXPECT_FALSE(Trace::parse(Ctx, "a = x\na = y", &Error).has_value());
  EXPECT_NE(Error.find("re-assignment"), std::string::npos);
  // Self-reference is not allowed.
  EXPECT_FALSE(Trace::parse(Ctx, "a = a + 1", &Error).has_value());
}

TEST(TraceParse, DiagnosticsCarryColumnAndToken) {
  Context Ctx(64);
  std::string Error;
  // The '=' is missing: the diagnostic points at the first token.
  EXPECT_FALSE(Trace::parse(Ctx, "just text", &Error).has_value());
  EXPECT_NE(Error.find("line 1, col 1"), std::string::npos);
  EXPECT_NE(Error.find("near 'just'"), std::string::npos);
  // A bad expression points into the expression text.
  EXPECT_FALSE(Trace::parse(Ctx, "a = x + + y", &Error).has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos);
  EXPECT_NE(Error.find("bad expression"), std::string::npos);
  EXPECT_NE(Error.find("near '+'"), std::string::npos);
  // A bad destination points at the offending character.
  EXPECT_FALSE(Trace::parse(Ctx, "1bad = x", &Error).has_value());
  EXPECT_NE(Error.find("col 1"), std::string::npos);
  EXPECT_NE(Error.find("digit"), std::string::npos);
  // Self-use names the variable.
  EXPECT_FALSE(Trace::parse(Ctx, "a = a + 1", &Error).has_value());
  EXPECT_NE(Error.find("used in its own definition"), std::string::npos);
  EXPECT_NE(Error.find("near 'a'"), std::string::npos);
}

TEST(TraceParse, RejectsUseBeforeDef) {
  // 'b' is assigned later in the trace: referencing it earlier would
  // silently read an unrelated input named 'b'.
  Context Ctx(64);
  std::string Error;
  EXPECT_FALSE(Trace::parse(Ctx, "a = b + 1\nb = 2", &Error).has_value());
  EXPECT_NE(Error.find("line 1, col 5"), std::string::npos);
  EXPECT_NE(Error.find("use of 'b' before its definition at line 2"),
            std::string::npos);
  EXPECT_NE(Error.find("near 'b'"), std::string::npos);
}

TEST(TraceParse, EmptyTextIsEmptyTrace) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, "\n# only a comment\n\n");
  ASSERT_TRUE(T.has_value());
  EXPECT_TRUE(T->empty());
}

TEST(TraceRun, ExecutesSequentially) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, "a = x + 1\nb = a * 2\nc = b - x");
  ASSERT_TRUE(T.has_value());
  std::unordered_map<const Expr *, uint64_t> In = {{Ctx.getVar("x"), 10}};
  auto Out = T->run(Ctx, In);
  EXPECT_EQ(Out.at(Ctx.getVar("a")), 11u);
  EXPECT_EQ(Out.at(Ctx.getVar("b")), 22u);
  EXPECT_EQ(Out.at(Ctx.getVar("c")), 12u);
}

TEST(TraceFlatten, MatchesExecution) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, SampleTrace);
  ASSERT_TRUE(T.has_value());
  const Expr *Out = Ctx.getVar("out");
  const Expr *Flat = T->flatten(Ctx, Out);
  RNG Rng(3);
  for (int I = 0; I < 100; ++I) {
    std::unordered_map<const Expr *, uint64_t> In = {
        {Ctx.getVar("x"), Rng.next()}, {Ctx.getVar("y"), Rng.next()}};
    EXPECT_EQ(T->run(Ctx, In).at(Out), evaluate(Ctx, Flat, In));
  }
}

TEST(TraceFlatten, InputPassesThrough) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, "a = x + 1");
  ASSERT_TRUE(T.has_value());
  const Expr *Y = Ctx.getVar("y");
  EXPECT_EQ(T->flatten(Ctx, Y), Y);
}

TEST(TraceDce, RemovesUnreachableInstructions) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, SampleTrace);
  ASSERT_TRUE(T.has_value());
  const Expr *Roots[] = {Ctx.getVar("out")};
  Trace Live = T->eliminateDeadCode(Roots);
  EXPECT_EQ(Live.size(), 4u); // 'dead' dropped
  for (const TraceInst &I : Live.instructions())
    EXPECT_STRNE(I.Dest->varName(), "dead");
  // Semantics of the root are preserved.
  RNG Rng(4);
  for (int I = 0; I < 50; ++I) {
    std::unordered_map<const Expr *, uint64_t> In = {
        {Ctx.getVar("x"), Rng.next()}, {Ctx.getVar("y"), Rng.next()}};
    EXPECT_EQ(T->run(Ctx, In).at(Roots[0]), Live.run(Ctx, In).at(Roots[0]));
  }
}

TEST(TraceDeobfuscate, RecoversSimpleSemantics) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, SampleTrace);
  ASSERT_TRUE(T.has_value());
  MBASolver Solver(Ctx);
  const Expr *Roots[] = {Ctx.getVar("out")};
  Trace Clean = T->deobfuscate(Ctx, Solver, Roots);
  ASSERT_EQ(Clean.size(), 1u);
  EXPECT_EQ(printExpr(Ctx, Clean.instructions()[0].Rhs), "x+y");
}

TEST(TraceDeobfuscate, MultipleRoots) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, SampleTrace);
  ASSERT_TRUE(T.has_value());
  MBASolver Solver(Ctx);
  const Expr *Roots[] = {Ctx.getVar("t2"), Ctx.getVar("out")};
  Trace Clean = T->deobfuscate(Ctx, Solver, Roots);
  ASSERT_EQ(Clean.size(), 2u);
  EXPECT_EQ(printExpr(Ctx, Clean.instructions()[0].Rhs), "x");
  EXPECT_EQ(printExpr(Ctx, Clean.instructions()[1].Rhs), "x+y");
}

TEST(TraceDeobfuscate, GeneratedObfuscationRoundTrip) {
  // Build a multi-instruction obfuscated trace with the generator, then
  // deobfuscate and compare semantics exhaustively on corners + samples.
  Context Ctx(64);
  Obfuscator Obf(Ctx, 99);
  MBASolver Solver(Ctx);
  RNG Rng(17);
  const Expr *X = Ctx.getVar("x"), *Y = Ctx.getVar("y");
  ObfuscationOptions Opts;

  Trace T;
  const Expr *S1 = Ctx.getVar("s1"), *S2 = Ctx.getVar("s2");
  const Expr *Out = Ctx.getVar("result");
  T.append(S1, Obf.obfuscateLinear(Ctx.getAdd(X, Y), Opts));
  T.append(S2, Obf.obfuscateLinear(Ctx.getSub(X, Y), Opts));
  // result = s1 + s2 == 2x, expressed through the temps.
  T.append(Out, Ctx.getAdd(S1, S2));

  const Expr *Roots[] = {Out};
  Trace Clean = T.deobfuscate(Ctx, Solver, Roots);
  ASSERT_EQ(Clean.size(), 1u);
  for (int I = 0; I < 100; ++I) {
    std::unordered_map<const Expr *, uint64_t> In = {{X, Rng.next()},
                                                     {Y, Rng.next()}};
    EXPECT_EQ(T.run(Ctx, In).at(Out), Clean.run(Ctx, In).at(Out));
    EXPECT_EQ(Clean.run(Ctx, In).at(Out), (2 * In.at(X)) & Ctx.mask());
  }
}

TEST(TracePrint, RoundTripsThroughParse) {
  Context Ctx(64);
  auto T = Trace::parse(Ctx, SampleTrace);
  ASSERT_TRUE(T.has_value());
  std::string Text = T->print(Ctx);
  // Printing emits one parseable line per instruction... but the printed
  // text re-parses only in a fresh context-independent sense: names were
  // already defined here, so parse into the same context must fail on
  // re-assignment? No: parse builds a *new Trace*, and single-assignment
  // is per-trace, so this round-trips fine.
  auto T2 = Trace::parse(Ctx, Text);
  ASSERT_TRUE(T2.has_value());
  ASSERT_EQ(T2->size(), T->size());
  RNG Rng(5);
  const Expr *Out = Ctx.getVar("out");
  for (int I = 0; I < 50; ++I) {
    std::unordered_map<const Expr *, uint64_t> In = {
        {Ctx.getVar("x"), Rng.next()}, {Ctx.getVar("y"), Rng.next()}};
    EXPECT_EQ(T->run(Ctx, In).at(Out), T2->run(Ctx, In).at(Out));
  }
}

} // namespace
