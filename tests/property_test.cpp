//===- tests/property_test.cpp - Property-based invariant sweeps ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Parameterized property sweeps over the library's core invariants:
///  * simplification preserves semantics on random expressions, at every
///    width, under every option combination;
///  * simplification never increases MBA alternation;
///  * signatures are invariant under simplification (Theorem 1);
///  * solver backends agree with brute-force equivalence at small widths.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ast/BitslicedEval.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "gen/Corpus.h"
#include "gen/Obfuscator.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

/// Draws a random MBA expression of any category.
const Expr *randomMBA(Context &Ctx, Obfuscator &Obf, RNG &Rng,
                      std::span<const Expr *const> Vars) {
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 1 + (unsigned)Rng.below(2);
  Opts.TermsPerIdentity = 3 + (unsigned)Rng.below(3);
  const Expr *Base = Vars[Rng.below(Vars.size())];
  const Expr *Target =
      Rng.chance(1, 2)
          ? Ctx.getAdd(Base, Vars[Rng.below(Vars.size())])
          : Ctx.getSub(Ctx.getMul(Ctx.getConst(1 + Rng.below(4)), Base),
                       Ctx.getConst(Rng.below(8)));
  const Expr *E = Obf.obfuscateLinear(Target, Opts);
  switch (Rng.below(3)) {
  case 0:
    return E; // linear
  case 1: {
    Obfuscator::ProductTerm P{1 + Rng.below(3),
                              {Vars[Rng.below(Vars.size())], Base}};
    return Ctx.getAdd(E, Obf.obfuscatePoly(std::span(&P, 1), Opts));
  }
  default:
    return Obf.obfuscateNonPoly(E, Vars, 1 + (unsigned)Rng.below(2));
  }
}

struct SweepConfig {
  unsigned Width;
  BasisKind Basis;
  bool CSE;
  bool FinalOpt;
  bool AutoBasis = false;

  friend void PrintTo(const SweepConfig &C, std::ostream *OS) {
    *OS << "w" << C.Width
        << (C.AutoBasis ? "-auto"
            : C.Basis == BasisKind::Conjunction ? "-conj"
                                                : "-disj")
        << (C.CSE ? "-cse" : "") << (C.FinalOpt ? "-fo" : "");
  }
};

class SimplifySweep : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(SimplifySweep, SoundAndNonWorsening) {
  SweepConfig Cfg = GetParam();
  Context Ctx(Cfg.Width);
  SimplifyOptions Opts;
  Opts.Basis = Cfg.Basis;
  Opts.EnableCSE = Cfg.CSE;
  Opts.EnableFinalOpt = Cfg.FinalOpt;
  Opts.AutoBasis = Cfg.AutoBasis;
  MBASolver Solver(Ctx, Opts);
  Obfuscator Obf(Ctx, 9000 + Cfg.Width + (unsigned)Cfg.Basis);
  RNG Rng(77 + Cfg.Width);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};

  for (int Trial = 0; Trial < 25; ++Trial) {
    const Expr *E = randomMBA(Ctx, Obf, Rng, Vars);
    const Expr *R = Solver.simplify(E);
    // Both the obfuscated input and the simplified output must satisfy the
    // hash-consing IR invariants.
    {
      VerifyResult VR = verifyExpr(Ctx, E);
      ASSERT_TRUE(VR.ok()) << VR.Message;
      VR = verifyExpr(Ctx, R);
      ASSERT_TRUE(VR.ok()) << VR.Message;
    }
    // Soundness on random inputs: one bitsliced batch of 40 points, the
    // first few cross-checked against the scalar interpreter.
    {
      constexpr size_t NumPoints = 40;
      uint64_t X[NumPoints], Y[NumPoints], Z[NumPoints];
      for (size_t I = 0; I != NumPoints; ++I) {
        X[I] = Rng.next();
        Y[I] = Rng.next();
        Z[I] = Rng.next();
      }
      const uint64_t *Ptrs[] = {X, Y, Z};
      std::vector<uint64_t> OutE =
          Ctx.getBitsliced(E).evaluatePoints(Ptrs, NumPoints);
      std::vector<uint64_t> OutR =
          Ctx.getBitsliced(R).evaluatePoints(Ptrs, NumPoints);
      for (size_t I = 0; I != NumPoints; ++I) {
        if (I < 4) {
          uint64_t Vals[] = {X[I], Y[I], Z[I]};
          ASSERT_EQ(evaluate(Ctx, E, Vals), OutE[I])
              << "bitsliced vs scalar: " << printExpr(Ctx, E);
          ASSERT_EQ(evaluate(Ctx, R, Vals), OutR[I])
              << "bitsliced vs scalar: " << printExpr(Ctx, R);
        }
        ASSERT_EQ(OutE[I], OutR[I])
            << printExpr(Ctx, E) << "\n -> " << printExpr(Ctx, R);
      }
    }
    // Exhaustive corner check (signatures' domain), scalar on purpose:
    // independent of the bitsliced corner path it guards.
    for (unsigned K = 0; K != 8; ++K) {
      uint64_t Vals[] = {K & 4 ? Ctx.mask() : 0, K & 2 ? Ctx.mask() : 0,
                         K & 1 ? Ctx.mask() : 0};
      ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
    }
    // Never worse than the input.
    EXPECT_LE(mbaAlternation(R), mbaAlternation(E));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SimplifySweep,
    ::testing::Values(
        SweepConfig{4, BasisKind::Conjunction, true, true},
        SweepConfig{8, BasisKind::Conjunction, true, true},
        SweepConfig{16, BasisKind::Disjunction, true, true},
        SweepConfig{32, BasisKind::Conjunction, false, true},
        SweepConfig{32, BasisKind::Conjunction, true, false},
        SweepConfig{64, BasisKind::Conjunction, true, true},
        SweepConfig{64, BasisKind::Disjunction, false, false},
        SweepConfig{64, BasisKind::Conjunction, true, true,
                    /*AutoBasis=*/true},
        SweepConfig{16, BasisKind::Conjunction, true, true,
                    /*AutoBasis=*/true}));

TEST(SignatureInvariance, SimplificationPreservesSignatures) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  Obfuscator Obf(Ctx, 4242);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  ObfuscationOptions Opts;
  for (int Trial = 0; Trial < 40; ++Trial) {
    const Expr *Target =
        Trial % 2 ? Ctx.getAdd(Vars[0], Vars[1]) : Ctx.getXor(Vars[0], Vars[1]);
    const Expr *E = Obf.obfuscateLinear(Target, Opts);
    const Expr *R = Solver.simplify(E);
    EXPECT_EQ(computeSignature(Ctx, E, Vars), computeSignature(Ctx, R, Vars));
  }
}

TEST(SolverAgreement, BlastBackendsMatchBruteForceAtWidth4) {
  // Exhaustive ground truth at width 4 with 2 variables (256 input pairs)
  // against both blast configurations.
  Context Ctx(4);
  RNG Rng(31337);
  Obfuscator Obf(Ctx, 808);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  auto Plain = makeBlastChecker(false);
  auto RW = makeBlastChecker(true);

  for (int Trial = 0; Trial < 15; ++Trial) {
    const Expr *A = Obf.randomBitwise(Vars, 2);
    const Expr *B = Rng.chance(1, 2)
                        ? Obf.randomBitwise(Vars, 2)
                        : Ctx.getAdd(A, Ctx.getConst(Rng.below(2)));
    bool Equal = true;
    for (uint64_t X = 0; X != 16 && Equal; ++X)
      for (uint64_t Y = 0; Y != 16 && Equal; ++Y) {
        uint64_t Vals[] = {X, Y};
        Equal = evaluate(Ctx, A, Vals) == evaluate(Ctx, B, Vals);
      }
    Verdict Expected = Equal ? Verdict::Equivalent : Verdict::NotEquivalent;
    EXPECT_EQ(Plain->check(Ctx, A, B, 30).Outcome, Expected)
        << printExpr(Ctx, A) << " vs " << printExpr(Ctx, B);
    EXPECT_EQ(RW->check(Ctx, A, B, 30).Outcome, Expected)
        << printExpr(Ctx, A) << " vs " << printExpr(Ctx, B);
  }
}

TEST(SolverAgreement, Z3AgreesWithBlastOnIdentities) {
  auto Z3 = makeZ3Checker();
  if (!Z3)
    GTEST_SKIP() << "built without Z3";
  Context Ctx(8);
  Obfuscator Obf(Ctx, 515);
  auto Blast = makeBlastChecker(true);
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 1;
  Opts.TermsPerIdentity = 4;
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y")};
  for (int Trial = 0; Trial < 10; ++Trial) {
    const Expr *Target = Ctx.getAdd(Vars[0], Vars[1]);
    const Expr *E = Obf.obfuscateLinear(Target, Opts);
    CheckResult RZ = Z3->check(Ctx, E, Target, 30);
    CheckResult RB = Blast->check(Ctx, E, Target, 30);
    EXPECT_EQ(RZ.Outcome, Verdict::Equivalent);
    EXPECT_EQ(RB.Outcome, Verdict::Equivalent);
  }
}

TEST(GeneratorProperties, CorpusEntriesAreIdentitiesAcrossWidths) {
  for (unsigned Width : {8u, 32u, 64u}) {
    Context Ctx(Width);
    CorpusOptions Opts;
    Opts.LinearCount = 15;
    Opts.PolyCount = 10;
    Opts.NonPolyCount = 10;
    Opts.Seed = 999 + Width;
    auto Corpus = generateCorpus(Ctx, Opts);
    for (const CorpusEntry &E : Corpus) {
      EXPECT_TRUE(verifyEntrySampled(Ctx, E, 48, Width))
          << "width " << Width << ": " << printExpr(Ctx, E.Obfuscated);
      EXPECT_TRUE(verifyExpr(Ctx, E.Obfuscated).ok());
      EXPECT_TRUE(verifyExpr(Ctx, E.Ground).ok());
    }
    // The whole generator run must leave the context structurally sound.
    VerifyResult VR = verifyContext(Ctx);
    EXPECT_TRUE(VR.ok()) << VR.Message;
  }
}

TEST(SimplifierIdempotence, FixpointOnCorpus) {
  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = 15;
  Opts.PolyCount = 10;
  Opts.NonPolyCount = 10;
  auto Corpus = generateCorpus(Ctx, Opts);
  MBASolver Solver(Ctx);
  for (const CorpusEntry &E : Corpus) {
    const Expr *R1 = Solver.simplify(E.Obfuscated);
    const Expr *R2 = Solver.simplify(R1);
    EXPECT_EQ(printExpr(Ctx, R1), printExpr(Ctx, R2));
  }
}

} // namespace
