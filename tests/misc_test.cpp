//===- tests/misc_test.cpp - Assorted cross-cutting behaviours ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/EncodeArithmetic.h"
#include "ir/Trace.h"
#include "mba/Simplifier.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(TempVarHygiene, UserVariablesNamedLikeTempsDoNotCollide) {
  // The user's expression already uses "_t0"; the simplifier must pick
  // fresh names and still return an equivalent result that references the
  // user's _t0 faithfully.
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, "((_t0 - y) | z) + ((_t0 - y) & z)");
  const Expr *R = Solver.simplify(E);
  RNG Rng(1);
  for (int I = 0; I < 100; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, R, Vals));
  }
  EXPECT_EQ(printExpr(Ctx, R), "_t0-y+z");
}

TEST(TempVarHygiene, RepeatedSolverUseKeepsAllocatingFreshTemps) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  // Two different abstractions in sequence must not cross-contaminate.
  const Expr *E1 = parseOrDie(Ctx, "((x+1) | y) + ((x+1) & y)");
  const Expr *E2 = parseOrDie(Ctx, "((x-1) | y) + ((x-1) & y)");
  const Expr *R1 = Solver.simplify(E1);
  const Expr *R2 = Solver.simplify(E2);
  RNG Rng(2);
  for (int I = 0; I < 60; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    ASSERT_EQ(evaluate(Ctx, E1, Vals), evaluate(Ctx, R1, Vals));
    ASSERT_EQ(evaluate(Ctx, E2, Vals), evaluate(Ctx, R2, Vals));
  }
}

TEST(EncodeNarrowWidths, EncodingHoldsAtEveryWidth) {
  for (unsigned W : {1u, 2u, 5u, 16u}) {
    Context Ctx(W);
    EncodeOptions Opts;
    Opts.Rounds = 2;
    Opts.Percent = 100;
    Opts.Seed = W;
    const Expr *E = parseOrDie(Ctx, "x - y");
    const Expr *Enc = encodeArithmetic(Ctx, E, Opts);
    // Exhaustive at tiny widths, sampled otherwise.
    uint64_t Limit = W <= 5 ? (1ULL << W) : 64;
    RNG Rng(W);
    for (uint64_t A = 0; A != Limit; ++A) {
      for (uint64_t B = 0; B != Limit; ++B) {
        uint64_t X = W <= 5 ? A : (Rng.next() & Ctx.mask());
        uint64_t Y = W <= 5 ? B : (Rng.next() & Ctx.mask());
        uint64_t Vals[] = {X, Y};
        ASSERT_EQ(evaluate(Ctx, E, Vals), evaluate(Ctx, Enc, Vals))
            << "width " << W;
      }
      if (W > 5)
        break;
    }
  }
}

TEST(TraceWithEncoder, EncodedTraceDeobfuscates) {
  // Encode each instruction of a trace, then recover the root semantics.
  Context Ctx(64);
  auto T = Trace::parse(Ctx, "t1 = x + y\nout = t1 * 2 - t1");
  ASSERT_TRUE(T.has_value());
  EncodeOptions Opts;
  Opts.Rounds = 2;
  Opts.Percent = 100;
  Opts.Seed = 5;
  Trace Encoded;
  for (const TraceInst &I : T->instructions())
    Encoded.append(I.Dest, encodeArithmetic(Ctx, I.Rhs, Opts));

  MBASolver Solver(Ctx);
  const Expr *Roots[] = {Ctx.getVar("out")};
  Trace Clean = Encoded.deobfuscate(Ctx, Solver, Roots);
  ASSERT_EQ(Clean.size(), 1u);
  // Flattening composes the per-instruction encodings into forms like
  // (2t) & ~t — relational bit facts outside the MBA model (the paper's
  // Section 7 limitation) — so full recovery to "x+y" is not guaranteed.
  // Required: semantic equality and a genuine size reduction.
  const Expr *Out = Ctx.getVar("out");
  const Expr *Recovered = Clean.instructions()[0].Rhs;
  RNG Rng(6);
  for (int I = 0; I < 100; ++I) {
    std::unordered_map<const Expr *, uint64_t> In = {
        {Ctx.getVar("x"), Rng.next()}, {Ctx.getVar("y"), Rng.next()}};
    uint64_t Want = (In.at(Ctx.getVar("x")) + In.at(Ctx.getVar("y"))) &
                    Ctx.mask();
    ASSERT_EQ(Encoded.run(Ctx, In).at(Out), Want);
    ASSERT_EQ(Clean.run(Ctx, In).at(Out), Want);
  }
  EXPECT_LT(printExpr(Ctx, Recovered).size(),
            printExpr(Ctx, Encoded.flatten(Ctx, Out)).size());
}

TEST(DeterminismAcrossContexts, SimplifierOutputIsContextIndependent) {
  // The same textual input in two fresh contexts yields the same text out
  // (no hidden global state, no pointer-order dependence).
  const char *Samples[] = {
      "(x&~y)*(~x&y) + (x&y)*(x|y)",
      "2*(x|y) - (~x&y) - (x&~y)",
      "((x-y)|z) + ((x-y)&z)",
      "~(x-1)",
  };
  for (const char *S : Samples) {
    std::string Out1, Out2;
    {
      Context Ctx(64);
      MBASolver Solver(Ctx);
      Out1 = printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, S)));
    }
    {
      Context Ctx(64);
      // Different variable-creation order beforehand must not matter.
      Ctx.getVar("unrelated");
      Ctx.getVar("z");
      MBASolver Solver(Ctx);
      Out2 = printExpr(Ctx, Solver.simplify(parseOrDie(Ctx, S)));
    }
    EXPECT_EQ(Out1, Out2) << S;
  }
}

TEST(ContextScale, ManyVariablesAndNodes) {
  Context Ctx(64);
  // 2000 variables and a large expression keep the context healthy.
  const Expr *E = Ctx.getConst(0);
  for (int I = 0; I < 2000; ++I)
    E = Ctx.getXor(E, Ctx.getVar("v" + std::to_string(I)));
  EXPECT_EQ(Ctx.numVars(), 2000u);
  EXPECT_GT(Ctx.numNodes(), 2000u);
  std::vector<uint64_t> Vals(2000, 0);
  Vals[7] = 42;
  EXPECT_EQ(evaluate(Ctx, E, Vals), 42u);
}

} // namespace
