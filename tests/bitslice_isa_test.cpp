//===- tests/bitslice_isa_test.cpp - Wide-engine ISA agreement tests ------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Pins every compiled wide-engine back end (scalar / AVX2 / AVX-512) to the
/// same results: exhaustive kernel agreement at widths <= 8 (every (a, b)
/// input pair exists, so agreement is a proof, not a sample), and a
/// 4-worker-pool determinism test asserting that signature computation under
/// a forced SIMD back end is bit-identical to the scalar path. Back ends the
/// CPU cannot run are skipped, so the suite passes (with reduced coverage)
/// on non-AVX hardware.
///
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/Obfuscator.h"
#include "mba/Signature.h"
#include "support/Bitslice.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace mba;
namespace bs = mba::bitslice;

namespace {

uint64_t maskOf(unsigned Width) {
  return Width == 64 ? ~0ULL : ((1ULL << Width) - 1);
}

/// The back ends this build AND this CPU can actually run (Scalar always).
std::vector<bs::Isa> supportedIsas() {
  std::vector<bs::Isa> Out;
  for (bs::Isa I : {bs::Isa::Scalar, bs::Isa::Avx2, bs::Isa::Avx512})
    if (bs::isaSupported(I))
      Out.push_back(I);
  return Out;
}

/// RAII dispatch override so a failing assertion cannot leak a forced ISA
/// into later tests.
struct ForcedIsa {
  explicit ForcedIsa(bs::Isa I) { bs::forceIsa(I); }
  ~ForcedIsa() { bs::clearForcedIsa(); }
};

//===----------------------------------------------------------------------===//
// Exhaustive kernel agreement, widths 1..8
//===----------------------------------------------------------------------===//

// Lane-space kernels: for each width <= 8 the input vectors enumerate every
// (a, b) pair, so every adder carry chain and multiplier partial product a
// back end can produce is exercised.
TEST(WideIsaAgreement, ExhaustiveLaneKernelsWidthsUpTo8) {
  for (bs::Isa I : supportedIsas()) {
    const bs::WideKernels &K = bs::kernelsFor(I);
    ASSERT_EQ(K.IsaTag, I);
    for (unsigned Width = 1; Width <= 8; ++Width) {
      const uint64_t Mask = maskOf(Width);
      const unsigned Side = 1u << Width;
      const unsigned N = Side * Side;
      std::vector<uint64_t> A(N), B(N), Out(N);
      for (unsigned P = 0; P != N; ++P) {
        A[P] = P & (Side - 1);
        B[P] = P >> Width;
      }
      auto Check = [&](const char *Op, auto Expected) {
        for (unsigned P = 0; P != N; ++P)
          ASSERT_EQ(Out[P], Expected(A[P], B[P]) & Mask)
              << bs::isaName(I) << " " << Op << " w" << Width << " a=" << A[P]
              << " b=" << B[P];
      };
      K.LaneAnd(A.data(), B.data(), Out.data(), N);
      Check("and", [](uint64_t X, uint64_t Y) { return X & Y; });
      K.LaneOr(A.data(), B.data(), Out.data(), N);
      Check("or", [](uint64_t X, uint64_t Y) { return X | Y; });
      K.LaneXor(A.data(), B.data(), Out.data(), N);
      Check("xor", [](uint64_t X, uint64_t Y) { return X ^ Y; });
      K.LaneAddM(A.data(), B.data(), Out.data(), N, Mask);
      Check("add", [](uint64_t X, uint64_t Y) { return X + Y; });
      K.LaneSubM(A.data(), B.data(), Out.data(), N, Mask);
      Check("sub", [](uint64_t X, uint64_t Y) { return X - Y; });
      K.LaneMulM(A.data(), B.data(), Out.data(), N, Mask);
      Check("mul", [](uint64_t X, uint64_t Y) { return X * Y; });
      K.LaneNotM(A.data(), Out.data(), N, Mask);
      Check("not", [](uint64_t X, uint64_t) { return ~X; });
      K.LaneNegM(A.data(), Out.data(), N, Mask);
      Check("neg", [](uint64_t X, uint64_t) { return ~X + 1; });
      K.LaneCopyM(A.data(), Out.data(), N, Mask);
      Check("copy", [](uint64_t X, uint64_t) { return X; });
      // Fused scalar-operand forms, exhaustive over a for a few constants.
      for (uint64_t C : {uint64_t(0), uint64_t(1), Mask, Mask >> 1}) {
        K.LaneAndS(A.data(), C, Out.data(), N);
        Check("andS", [C](uint64_t X, uint64_t) { return X & C; });
        K.LaneOrS(A.data(), C, Out.data(), N);
        Check("orS", [C](uint64_t X, uint64_t) { return X | C; });
        K.LaneXorS(A.data(), C, Out.data(), N);
        Check("xorS", [C](uint64_t X, uint64_t) { return X ^ C; });
        K.LaneAddSM(A.data(), C, Out.data(), N, Mask);
        Check("addS", [C](uint64_t X, uint64_t) { return X + C; });
        K.LaneSubSM(A.data(), C, Out.data(), N, Mask);
        Check("subS", [C](uint64_t X, uint64_t) { return X - C; });
        K.LaneRSubSM(A.data(), C, Out.data(), N, Mask);
        Check("rsubS", [C](uint64_t X, uint64_t) { return C - X; });
        K.LaneMulSM(A.data(), C, Out.data(), N, Mask);
        Check("mulS", [C](uint64_t X, uint64_t) { return X * C; });
      }
    }
  }
}

// Slice-space kernels: the same exhaustive pairs pushed through the back
// end's own transpose (LanesToSlices), the sliced op, and the inverse
// transpose. Runs in the back end's native block size, including the final
// partial block.
TEST(WideIsaAgreement, ExhaustiveSliceKernelsWidthsUpTo8) {
  for (bs::Isa I : supportedIsas()) {
    const bs::WideKernels &K = bs::kernelsFor(I);
    const unsigned Lanes = K.Words * 64;
    for (unsigned Width = 1; Width <= 8; ++Width) {
      const uint64_t Mask = maskOf(Width);
      const unsigned Side = 1u << Width;
      const unsigned N = Side * Side;
      std::vector<uint64_t> A(N), B(N), Out(N);
      for (unsigned P = 0; P != N; ++P) {
        A[P] = P & (Side - 1);
        B[P] = P >> Width;
      }
      std::vector<uint64_t> SA(Width * K.Words), SB(Width * K.Words),
          SO(Width * K.Words);
      auto RunSliced = [&](auto SliceOp) {
        for (unsigned Base = 0; Base < N; Base += Lanes) {
          unsigned Block = std::min(Lanes, N - Base);
          K.LanesToSlices(A.data() + Base, Block, Width, SA.data());
          K.LanesToSlices(B.data() + Base, Block, Width, SB.data());
          SliceOp(SA.data(), SB.data(), SO.data());
          K.SlicesToLanes(SO.data(), Width, Block, Out.data() + Base);
        }
      };
      auto Check = [&](const char *Op, auto Expected) {
        for (unsigned P = 0; P != N; ++P)
          ASSERT_EQ(Out[P], Expected(A[P], B[P]) & Mask)
              << bs::isaName(I) << " slice-" << Op << " w" << Width
              << " a=" << A[P] << " b=" << B[P];
      };
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceAnd(Width, X, Y, O);
      });
      Check("and", [](uint64_t X, uint64_t Y) { return X & Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceOr(Width, X, Y, O);
      });
      Check("or", [](uint64_t X, uint64_t Y) { return X | Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceXor(Width, X, Y, O);
      });
      Check("xor", [](uint64_t X, uint64_t Y) { return X ^ Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceAdd(Width, X, Y, O);
      });
      Check("add", [](uint64_t X, uint64_t Y) { return X + Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceSub(Width, X, Y, O);
      });
      Check("sub", [](uint64_t X, uint64_t Y) { return X - Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *Y, uint64_t *O) {
        K.SliceMul(Width, X, Y, O);
      });
      Check("mul", [](uint64_t X, uint64_t Y) { return X * Y; });
      RunSliced([&](const uint64_t *X, const uint64_t *, uint64_t *O) {
        K.SliceNot(Width, X, O);
      });
      Check("not", [](uint64_t X, uint64_t) { return ~X; });
      RunSliced([&](const uint64_t *X, const uint64_t *, uint64_t *O) {
        K.SliceNeg(Width, X, O);
      });
      Check("neg", [](uint64_t X, uint64_t) { return ~X + 1; });
      RunSliced([&](const uint64_t *, const uint64_t *, uint64_t *O) {
        K.SliceBroadcast(Width, Mask >> 1, O);
      });
      Check("broadcast", [&](uint64_t, uint64_t) { return Mask >> 1; });
    }
  }
}

// The wide transpose must match transpose64 applied block by block.
TEST(WideIsaAgreement, TransposeBlocksMatchesScalar64) {
  RNG Rng(6);
  for (bs::Isa I : supportedIsas()) {
    const bs::WideKernels &K = bs::kernelsFor(I);
    for (unsigned Blocks : {1u, 2u, K.Words, 2 * K.Words + 1}) {
      std::vector<uint64_t> M(64 * Blocks), Ref;
      for (uint64_t &W : M)
        W = Rng.next();
      Ref = M;
      for (unsigned B = 0; B != Blocks; ++B)
        bs::transpose64(Ref.data() + 64 * B);
      K.TransposeBlocks(M.data(), Blocks);
      ASSERT_EQ(M, Ref) << bs::isaName(I) << " blocks=" << Blocks;
    }
  }
}

//===----------------------------------------------------------------------===//
// 4-worker-pool determinism across back ends
//===----------------------------------------------------------------------===//

// Signatures computed on a jobs=4 pool must be bit-identical under every
// forced back end: the SIMD paths may not perturb results regardless of
// which worker, block size, or partial tail a lane lands in. One Context
// per worker ordinal (BitslicedExpr borrows per-context scratch).
TEST(WideIsaAgreement, PooledSignaturesDeterministicAcrossIsas) {
  constexpr unsigned Jobs = 4;
  constexpr unsigned NumExprs = 24;

  // Fixed corpus of linear-MBA texts, generated once.
  std::vector<std::string> Texts;
  {
    Context GenCtx(64);
    Obfuscator Obf(GenCtx, 20210620);
    const Expr *Vars[] = {GenCtx.getVar("x"), GenCtx.getVar("y"),
                          GenCtx.getVar("z")};
    ObfuscationOptions OOpts;
    for (unsigned I = 0; I != NumExprs; ++I) {
      const Expr *T = Obf.randomBitwise(Vars, 2);
      Texts.push_back(printExpr(GenCtx, Obf.obfuscateLinear(T, OOpts)));
    }
  }

  auto RunAll = [&](unsigned Width) {
    std::vector<std::vector<uint64_t>> PerIsa;
    for (bs::Isa I : supportedIsas()) {
      ForcedIsa Forced(I);
      std::vector<std::unique_ptr<Context>> Ctxs;
      for (unsigned W = 0; W != Jobs; ++W)
        Ctxs.push_back(std::make_unique<Context>(Width));
      std::vector<std::vector<uint64_t>> Sigs(NumExprs);
      ThreadPool Pool(Jobs);
      Pool.parallelFor(NumExprs, [&](size_t Index, unsigned Worker) {
        Context &Ctx = *Ctxs[Worker];
        // The contexts were built on the main thread; re-home each onto
        // the pool thread that owns its ordinal (idempotent — a worker
        // ordinal is pinned to one pool thread for the pool's lifetime).
        Ctx.adoptByCurrentThread();
        auto R = parseExpr(Ctx, Texts[Index]);
        ASSERT_TRUE(R.ok()) << R.Error;
        Sigs[Index] = computeSignature(Ctx, R.E);
      });
      std::vector<uint64_t> Flat;
      for (const auto &S : Sigs)
        Flat.insert(Flat.end(), S.begin(), S.end());
      PerIsa.push_back(std::move(Flat));
    }
    for (size_t K = 1; K < PerIsa.size(); ++K)
      EXPECT_EQ(PerIsa[K], PerIsa[0])
          << "width " << Width << ": " << bs::isaName(supportedIsas()[K])
          << " diverges from " << bs::isaName(supportedIsas()[0]);
  };
  RunAll(8);
  RunAll(64);
}

} // namespace
