//===- tests/static_analysis_cli_test.cpp - mba-tidy CLI tests ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Spawns the real mba-tidy binary (path injected by CMake) against the
// corpus and asserts exit codes plus the clang-tidy diagnostic format that
// CI annotators parse. Subprocess-per-case makes this the slow tier; the
// in-process logic lives in static_analysis_test.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

RunResult runTidy(const std::string &Args) {
  RunResult R;
  std::string Cmd = std::string(MBA_TIDY_BIN) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr) << Cmd;
  if (!Pipe)
    return R;
  char Buf[4096];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    R.Output.append(Buf, N);
  int Status = pclose(Pipe);
  R.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

std::string corpus(const std::string &File) {
  return std::string(MBA_TIDY_CORPUS_DIR) + "/" + File;
}

TEST(MbaTidyCli, FindingsExitOneWithClangTidyFormat) {
  RunResult R = runTidy(corpus("unnamed_raii.cpp"));
  EXPECT_EQ(R.ExitCode, 1);
  // file:line:col: warning: ... [check-name]
  EXPECT_NE(R.Output.find("unnamed_raii.cpp:"), std::string::npos);
  EXPECT_NE(R.Output.find(": warning: "), std::string::npos);
  EXPECT_NE(R.Output.find("[mba-unnamed-raii]"), std::string::npos);
  EXPECT_NE(R.Output.find("warnings generated."), std::string::npos);
}

TEST(MbaTidyCli, CleanFileExitsZeroSilently) {
  RunResult R = runTidy(corpus("clean.cpp"));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.Output.empty()) << R.Output;
}

TEST(MbaTidyCli, NolintSuppressionsHoldThroughTheCli) {
  RunResult R = runTidy(corpus("nolint.cpp"));
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(R.Output.empty()) << R.Output;
}

TEST(MbaTidyCli, ChecksFlagRestrictsToNamedCheck) {
  RunResult R = runTidy("--checks=mba-cross-context-expr " +
                        corpus("unnamed_raii.cpp"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;

  R = runTidy("--checks=mba-unnamed-raii " + corpus("unnamed_raii.cpp"));
  EXPECT_EQ(R.ExitCode, 1);
}

TEST(MbaTidyCli, ListChecksNamesEveryCheck) {
  RunResult R = runTidy("--list-checks");
  EXPECT_EQ(R.ExitCode, 0);
  for (const char *Name :
       {"mba-cross-context-expr", "mba-context-captured-by-pool",
        "mba-unnamed-raii", "mba-raw-pointer-in-cache-key",
        "mba-sat-solver-in-loop"})
    EXPECT_NE(R.Output.find(Name), std::string::npos) << Name;
}

TEST(MbaTidyCli, UnknownCheckOrMissingFileIsAUsageError) {
  EXPECT_EQ(runTidy("--checks=mba-no-such-check " + corpus("clean.cpp"))
                .ExitCode,
            2);
  EXPECT_EQ(runTidy(corpus("does_not_exist.cpp")).ExitCode, 2);
  EXPECT_EQ(runTidy("").ExitCode, 2); // no files at all
}

TEST(MbaTidyCli, QuietSuppressesOutputNotExitCode) {
  RunResult R = runTidy("--quiet " + corpus("raw_pointer_in_cache_key.cpp"));
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_TRUE(R.Output.empty()) << R.Output;
}

} // namespace
