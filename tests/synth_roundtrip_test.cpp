//===- tests/synth_roundtrip_test.cpp - 500-target synthesis round trip ---===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Round trip through the enumerative synthesizer: draw a random ground
/// truth in one of the bank's shapes (constant, a*f+c, a1*f1+a2*f2+c over
/// up to three variables), hide it behind non-polynomial obfuscation
/// rewrites (gen/Obfuscator.h), and require the synthesizer to recover a
/// checker-proved equivalent. Every installed result is verified Equivalent
/// by the staged checker inside synthesize(); the test additionally
/// re-proves a slice of the results independently.
///
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "gen/Obfuscator.h"
#include "poly/PolyExpr.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"
#include "synth/Basis3.h"

#include <gtest/gtest.h>

using namespace mba;
using namespace mba::synth;

namespace {

TEST(SynthRoundTrip, FiveHundredObfuscatedTargets) {
  // Width 8: the AIG stage proves each obfuscated-vs-candidate miter in
  // milliseconds, so all 500 installs are gated by a real proof. At wider
  // widths the raw obfuscated miters (random w-bit coefficients buried
  // under bitwise-over-arithmetic rewrites) routinely exhaust a SAT
  // timeout — exactly the hardness the paper is about — and the
  // synthesizer would soundly decline instead of installing.
  Context Ctx(8);
  Obfuscator Obf(Ctx, /*Seed=*/0xB057ED);
  RNG Rng(20210620);
  Synthesizer Synth(Ctx);
  auto Independent = makeStagedChecker(Ctx, makeAigChecker(true));

  const Expr *AllVars[3] = {Ctx.getVar("x"), Ctx.getVar("y"),
                            Ctx.getVar("z")};
  unsigned Recovered = 0;
  for (unsigned Case = 0; Case != 500; ++Case) {
    const unsigned T = 1 + Rng.below(3);
    std::span<const Expr *const> Vars{AllVars, T};
    const unsigned Rows = 1u << T;
    const uint32_t Full = (1u << Rows) - 1;

    // Ground truth in a bank shape. Truths avoid the constants (0, Full);
    // coefficients avoid 0.
    auto RandTruth = [&] { return 1 + (uint32_t)Rng.below(Full - 1); };
    auto RandCoeff = [&] {
      uint64_t C;
      do
        C = Rng.next() & Ctx.mask();
      while (!C);
      return C;
    };
    const Expr *Ground;
    switch (Case % 3) {
    case 0:
      Ground = Ctx.getConst(Rng.next() & Ctx.mask());
      break;
    case 1:
      Ground = buildLinearCombination(
          Ctx, {{RandCoeff(), bitwiseFromTruth(Ctx, Vars, RandTruth())}},
          Rng.next() & Ctx.mask());
      break;
    default: {
      uint32_t T1 = RandTruth(), T2 = RandTruth();
      while (T2 == T1)
        T2 = RandTruth();
      Ground = buildLinearCombination(
          Ctx,
          {{RandCoeff(), bitwiseFromTruth(Ctx, Vars, T1)},
           {RandCoeff(), bitwiseFromTruth(Ctx, Vars, T2)}},
          Rng.next() & Ctx.mask());
      break;
    }
    }

    // Bury it under bitwise-over-arithmetic rewrites.
    const Expr *Obfuscated = Obf.obfuscateNonPoly(Ground, Vars, 3);

    const Expr *R = Synth.synthesize(Obfuscated);
    ASSERT_NE(R, nullptr) << "case " << Case << ": failed to recover "
                          << printExpr(Ctx, Ground) << " from "
                          << printExpr(Ctx, Obfuscated);
    ++Recovered;

    // Independent re-proof on a slice (the synthesizer already proved
    // every installed result internally).
    if (Case % 25 == 0) {
      CheckResult CR = Independent->check(Ctx, Obfuscated, R, 10.0);
      EXPECT_EQ(CR.Outcome, Verdict::Equivalent)
          << "case " << Case << ": " << printExpr(Ctx, R);
    }
  }

  const SynthStats &St = Synth.stats();
  EXPECT_EQ(Recovered, 500u);
  // Every returned result passed through the verifier (fresh or memoized).
  EXPECT_EQ(St.Installed, 500u);
  EXPECT_EQ(St.VerifyRejected, 0u);
}

} // namespace
