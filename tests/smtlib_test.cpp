//===- tests/smtlib_test.cpp - SMT-LIB2 export tests ----------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solvers/SmtLib.h"
#include "solvers/SmtLibParser.h"

#include "ast/DotPrinter.h"
#include "ast/Evaluator.h"
#include "ast/Parser.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace mba;

namespace {

TEST(SmtLib, TermRendering) {
  Context Ctx(64);
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "x")), "x");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "5")), "(_ bv5 64)");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "x+y")), "(bvadd x y)");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "~x")), "(bvnot x)");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "-x")), "(bvneg x)");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "x*y - (x&y)")),
            "(bvsub (bvmul x y) (bvand x y))");
  EXPECT_EQ(toSmtLibTerm(Ctx, parseOrDie(Ctx, "x|y^z")),
            "(bvor x (bvxor y z))");
}

TEST(SmtLib, ConstantsUseContextWidth) {
  Context Ctx(8);
  EXPECT_EQ(toSmtLibTerm(Ctx, Ctx.getAllOnes()), "(_ bv255 8)");
}

TEST(SmtLib, QueryStructure) {
  Context Ctx(32);
  const Expr *A = parseOrDie(Ctx, "x + y");
  const Expr *B = parseOrDie(Ctx, "(x^y) + 2*(x&y)");
  std::string Q = toSmtLibQuery(Ctx, A, B);
  EXPECT_NE(Q.find("(set-logic QF_BV)"), std::string::npos);
  EXPECT_NE(Q.find("(declare-const x (_ BitVec 32))"), std::string::npos);
  EXPECT_NE(Q.find("(declare-const y (_ BitVec 32))"), std::string::npos);
  EXPECT_NE(Q.find("(assert (distinct "), std::string::npos);
  EXPECT_NE(Q.find("(check-sat)"), std::string::npos);
  // Each variable declared exactly once.
  EXPECT_EQ(Q.find("declare-const x"), Q.rfind("declare-const x"));
}

TEST(SmtLib, ExportedIdentityIsUnsatUnderZ3) {
  Context Ctx(64);
  std::string Q = toSmtLibQuery(Ctx, parseOrDie(Ctx, "(x&~y) + y"),
                                parseOrDie(Ctx, "x|y"));
  auto R = solveSmtLibWithZ3(Q, 30);
  if (!R.has_value())
    GTEST_SKIP() << "Z3 unavailable or unknown";
  EXPECT_FALSE(*R) << "identity must be unsat (no counterexample)";
}

TEST(SmtLib, ExportedNonIdentityIsSatUnderZ3) {
  Context Ctx(64);
  std::string Q = toSmtLibQuery(Ctx, parseOrDie(Ctx, "x + y"),
                                parseOrDie(Ctx, "x | y"));
  auto R = solveSmtLibWithZ3(Q, 30);
  if (!R.has_value())
    GTEST_SKIP() << "Z3 unavailable or unknown";
  EXPECT_TRUE(*R) << "non-identity must have a counterexample";
}

TEST(SmtLibParser, ReadsExportedQueriesBack) {
  // Export -> parse round trip preserves semantics of both sides.
  Context Ctx(64);
  const Expr *A = parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  const Expr *B = parseOrDie(Ctx, "x*y");
  std::string Script = toSmtLibQuery(Ctx, A, B);

  Context Fresh(64);
  std::string Error;
  auto Q = parseSmtLibQuery(Fresh, Script, &Error);
  ASSERT_TRUE(Q.has_value()) << Error;
  EXPECT_TRUE(Q->IsDistinct);
  EXPECT_EQ(Q->Width, 64u);
  RNG Rng(21);
  for (int I = 0; I < 100; ++I) {
    uint64_t Vals[] = {Rng.next(), Rng.next()};
    EXPECT_EQ(evaluate(Fresh, Q->Lhs, Vals), evaluate(Ctx, A, Vals));
    EXPECT_EQ(evaluate(Fresh, Q->Rhs, Vals), evaluate(Ctx, B, Vals));
  }
}

TEST(SmtLibParser, AcceptsCommonVariations) {
  Context Ctx(8);
  std::string Error;
  // declare-fun form, n-ary bvadd, hex literal, negated equality.
  const char *Script = R"(
; a comment
(set-logic QF_BV)
(declare-fun x () (_ BitVec 8))
(declare-fun y () (_ BitVec 8))
(assert (not (= (bvadd x y #x01) (bvor x y))))
(check-sat)
)";
  auto Q = parseSmtLibQuery(Ctx, Script, &Error);
  ASSERT_TRUE(Q.has_value()) << Error;
  EXPECT_TRUE(Q->IsDistinct); // not(=) == distinct
  uint64_t Vals[] = {3, 5};
  EXPECT_EQ(evaluate(Ctx, Q->Lhs, Vals), 9u);
  EXPECT_EQ(evaluate(Ctx, Q->Rhs, Vals), 7u);
}

TEST(SmtLibParser, RejectsUnsupportedInput) {
  Context Ctx(64);
  std::string Error;
  EXPECT_FALSE(parseSmtLibQuery(Ctx, "(assert", &Error).has_value());
  EXPECT_FALSE(parseSmtLibQuery(Ctx, "(frobnicate x)", &Error).has_value());
  EXPECT_FALSE(
      parseSmtLibQuery(Ctx, "(assert (bvult x y))", &Error).has_value());
  // Width mismatch with the context.
  EXPECT_FALSE(parseSmtLibQuery(
                   Ctx, "(declare-const x (_ BitVec 8))"
                        "(assert (= x x))",
                   &Error)
                   .has_value());
  EXPECT_NE(Error.find("width"), std::string::npos);
  // No assertion at all.
  EXPECT_FALSE(parseSmtLibQuery(Ctx, "(set-logic QF_BV)", &Error).has_value());
}

TEST(DotPrinter, RendersDagStructure) {
  Context Ctx(64);
  const Expr *Shared = parseOrDie(Ctx, "x&y");
  const Expr *E = Ctx.getAdd(Shared, Ctx.getMul(Shared, Ctx.getConst(3)));
  std::string Dot = toDot(Ctx, E, "g");
  EXPECT_NE(Dot.find("digraph g {"), std::string::npos);
  EXPECT_NE(Dot.find("shape=box,label=\"x\""), std::string::npos);
  EXPECT_NE(Dot.find("shape=diamond,label=\"3\""), std::string::npos);
  EXPECT_NE(Dot.find("label=\"&\""), std::string::npos);
  // The shared x&y node appears exactly once.
  size_t First = Dot.find("label=\"&\"");
  EXPECT_EQ(Dot.find("label=\"&\"", First + 1), std::string::npos);
  // Node count: x, y, x&y, 3, mul, add = 6 declarations.
  size_t Count = 0, Pos = 0;
  while ((Pos = Dot.find("  n", Pos)) != std::string::npos) {
    size_t Bracket = Dot.find(' ', Pos + 2);
    if (Dot[Bracket + 1] == '[')
      ++Count;
    Pos += 3;
  }
  EXPECT_EQ(Count, 6u);
}

} // namespace
