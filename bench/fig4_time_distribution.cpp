//===- bench/fig4_time_distribution.cpp - Figure 4 reproduction -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Figure 4**: each solver's solving-time distribution on the
/// raw corpus. Expected shape (paper): the time curves blow up quickly and
/// the majority of queries never return within the timeout.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);
  if (Opts.PerCategory == 40)
    Opts.PerCategory = 25;
  if (Opts.TimeoutSeconds == 1.0)
    Opts.TimeoutSeconds = 0.25;

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  // The classic seed identities are tiny and instantly solvable; at study
  // scale they would dominate the linear slice, so the hardness studies
  // use synthesized entries only (the paper's 1000-per-category corpus
  // dilutes its handful of textbook identities the same way).
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  auto Checkers = makeAllCheckers();
  auto Records = runSolvingStudy(Ctx, Corpus, Checkers, Opts.TimeoutSeconds,
                                 /*Simplifier=*/nullptr);
  printTimeDistribution(Records, Opts.TimeoutSeconds,
                        "Figure 4: solving-time distribution on RAW MBA");

  std::printf("Paper reference (Figure 4): all three solvers fail to return "
              "for the majority\n");
  std::printf("of queries within the 1h threshold; solved times span the "
              "full range.\n");
  exportTelemetry(Opts);
  return 0;
}
