//===- bench/table1_corpus_stats.cpp - Table 1 reproduction ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Table 1**: the complexity distribution of the MBA corpus
/// (min / max / average of variable count, MBA alternation, MBA length,
/// term count and coefficient magnitude, per category). The corpus here is
/// regenerated at full paper scale (1000 linear / 1000 poly / 1000
/// non-poly) with the constructions of gen/ (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace mba;

namespace {

struct Distribution {
  double Min = 1e100, Max = 0, Sum = 0;
  size_t N = 0;

  void add(double V) {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
    Sum += V;
    ++N;
  }
  double avg() const { return N ? Sum / (double)N : 0; }
};

struct CategoryStats {
  Distribution Vars, Alternation, Length, Terms, Coefficients;
};

} // namespace

int main(int Argc, char **Argv) {
  unsigned PerCategory = 1000;
  for (int I = 1; I < Argc; ++I)
    if (std::sscanf(Argv[I], "--per-category=%u", &PerCategory) == 1)
      continue;

  Context Ctx(64);
  CorpusOptions Opts;
  Opts.LinearCount = Opts.PolyCount = Opts.NonPolyCount = PerCategory;
  std::vector<CorpusEntry> Corpus = generateCorpus(Ctx, Opts);

  CategoryStats Stats[3];
  for (const CorpusEntry &E : Corpus) {
    ComplexityMetrics M = measureComplexity(Ctx, E.Obfuscated);
    CategoryStats &S = Stats[(int)E.Category];
    S.Vars.add((double)M.NumVariables);
    S.Alternation.add((double)M.Alternation);
    S.Length.add((double)M.Length);
    S.Terms.add((double)M.NumTerms);
    S.Coefficients.add((double)M.MaxCoefficient);
  }

  std::printf("=== Table 1: complexity distribution of the MBA corpus "
              "(%u per category) ===\n",
              PerCategory);
  std::printf("%-18s | %-22s | %-22s | %-22s\n", "Metric", "Linear MBA",
              "Poly MBA", "Non-poly MBA");
  auto Row = [&](const char *Name, Distribution CategoryStats::*Member) {
    std::printf("%-18s |", Name);
    for (int C = 0; C != 3; ++C) {
      const Distribution &D = Stats[C].*Member;
      std::printf(" %5.0f %6.0f %7.1f  |", D.Min, D.Max, D.avg());
    }
    std::printf("\n");
  };
  std::printf("%-18s | %5s %6s %7s  | %5s %6s %7s  | %5s %6s %7s\n", "",
              "min", "max", "avg", "min", "max", "avg", "min", "max", "avg");
  Row("Num of Variables", &CategoryStats::Vars);
  Row("MBA Alternation", &CategoryStats::Alternation);
  Row("MBA Length", &CategoryStats::Length);
  Row("Number of Terms", &CategoryStats::Terms);
  Row("Coefficients", &CategoryStats::Coefficients);

  std::printf("\nPaper reference (Table 1, collected corpus):\n");
  std::printf("  vars avg 2.5/2.4/2.9; alternation avg 9.1/9.1/17.2;\n");
  std::printf("  length avg 116.5/88.0/161.6; terms avg 9.8/7.4/17.1;\n");
  std::printf("  coefficients avg 7.2/16.0/22.1\n");
  return 0;
}
