//===- bench/fig3_metric_correlation.cpp - Figure 3 reproduction ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Figure 3**: the relation between each complexity metric and
/// solving performance. The paper's key observation: *MBA alternation is
/// the dominant factor* — solving time/failure climbs steeply with
/// alternation, while the other metrics correlate weakly.
///
/// Output: per metric, bucketed rows with the solve rate and average time
/// of solved queries in that bucket (aggregated over all solvers).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mba/Metrics.h"

#include <cstdio>
#include <vector>

using namespace mba;
using namespace mba::bench;

namespace {

struct Bucket {
  unsigned Solved = 0, Total = 0;
  double TimeSum = 0;
};

void printMetric(const char *Name, const std::vector<double> &Values,
                 const std::vector<QueryRecord> &Records,
                 const std::vector<double> &Edges) {
  std::vector<Bucket> Buckets(Edges.size() + 1);
  for (const QueryRecord &R : Records) {
    double V = Values[R.EntryIndex];
    size_t B = 0;
    while (B < Edges.size() && V > Edges[B])
      ++B;
    ++Buckets[B].Total;
    if (R.Outcome == Verdict::Equivalent) {
      ++Buckets[B].Solved;
      Buckets[B].TimeSum += R.Seconds;
    }
  }
  std::printf("%s:\n", Name);
  for (size_t B = 0; B != Buckets.size(); ++B) {
    if (!Buckets[B].Total)
      continue;
    char Range[64];
    if (B == 0)
      std::snprintf(Range, sizeof(Range), "<= %.0f", Edges[0]);
    else if (B == Edges.size())
      std::snprintf(Range, sizeof(Range), "> %.0f", Edges.back());
    else
      std::snprintf(Range, sizeof(Range), "%.0f - %.0f", Edges[B - 1] + 1,
                    Edges[B]);
    double SolveRate = 100.0 * Buckets[B].Solved / Buckets[B].Total;
    double AvgTime =
        Buckets[B].Solved ? Buckets[B].TimeSum / Buckets[B].Solved : 0;
    std::printf("  %-12s  queries %4u  solved %5.1f%%  avg-time %ss\n", Range,
                Buckets[B].Total, SolveRate, formatSeconds(AvgTime).c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);
  if (Opts.PerCategory == 40)
    Opts.PerCategory = 25;
  if (Opts.TimeoutSeconds == 1.0)
    Opts.TimeoutSeconds = 0.25;

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  // The classic seed identities are tiny and instantly solvable; at study
  // scale they would dominate the linear slice, so the hardness studies
  // use synthesized entries only (the paper's 1000-per-category corpus
  // dilutes its handful of textbook identities the same way).
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  std::vector<ComplexityMetrics> Metrics;
  Metrics.reserve(Corpus.size());
  for (const CorpusEntry &E : Corpus)
    Metrics.push_back(measureComplexity(Ctx, E.Obfuscated));

  auto Checkers = makeAllCheckers();
  auto Records = runSolvingStudy(Ctx, Corpus, Checkers, Opts.TimeoutSeconds,
                                 /*Simplifier=*/nullptr);

  std::printf("=== Figure 3: complexity metrics vs solving performance "
              "(raw queries, all solvers pooled) ===\n");
  auto Extract = [&](auto Member) {
    std::vector<double> V;
    for (auto &M : Metrics)
      V.push_back((double)(M.*Member));
    return V;
  };
  printMetric("MBA alternation",
              Extract(&ComplexityMetrics::Alternation), Records,
              {2, 5, 10, 20});
  printMetric("Number of variables",
              Extract(&ComplexityMetrics::NumVariables), Records, {1, 2, 3});
  printMetric("MBA length", Extract(&ComplexityMetrics::Length), Records,
              {50, 120, 250});
  printMetric("Number of terms", Extract(&ComplexityMetrics::NumTerms),
              Records, {4, 8, 16});
  printMetric("Max coefficient", Extract(&ComplexityMetrics::MaxCoefficient),
              Records, {4, 10, 40});

  std::printf("\nPaper reference (Figure 3): solving time grows drastically "
              "with MBA alternation;\n");
  std::printf("other metrics show much weaker correlation.\n");
  exportTelemetry(Opts);
  return 0;
}
