//===- bench/Harness.cpp - Shared benchmark driver code -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

using namespace mba;
using namespace mba::bench;

HarnessOptions mba::bench::parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, Len) == 0 ? Arg + Len : nullptr;
    };
    if (const char *V = Value("--per-category="))
      Opts.PerCategory = (unsigned)std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--timeout="))
      Opts.TimeoutSeconds = std::strtod(V, nullptr);
    else if (const char *V = Value("--width="))
      Opts.Width = (unsigned)std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--seed="))
      Opts.Seed = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--static-prove="))
      Opts.StageZeroProver = std::strtoul(V, nullptr, 10) != 0;
    else
      std::fprintf(stderr,
                   "warning: unknown argument '%s' "
                   "(supported: --per-category= --timeout= --width= --seed= "
                   "--static-prove=)\n",
                   Arg);
  }
  return Opts;
}

std::vector<QueryRecord> mba::bench::runSolvingStudy(
    Context &Ctx, const std::vector<CorpusEntry> &Corpus,
    std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    double TimeoutSeconds, MBASolver *Simplifier) {
  // Preprocess once (shared across solvers, like the paper's pipeline).
  std::vector<const Expr *> Lhs(Corpus.size()), Rhs(Corpus.size());
  for (size_t I = 0; I != Corpus.size(); ++I) {
    if (Simplifier) {
      Lhs[I] = Simplifier->simplify(Corpus[I].Obfuscated);
      Rhs[I] = Simplifier->simplify(Corpus[I].Ground);
    } else {
      Lhs[I] = Corpus[I].Obfuscated;
      Rhs[I] = Corpus[I].Ground;
    }
  }

  std::vector<QueryRecord> Records;
  Records.reserve(Corpus.size() * Checkers.size());
  for (auto &Checker : Checkers) {
    for (size_t I = 0; I != Corpus.size(); ++I) {
      CheckResult R = Checker->check(Ctx, Lhs[I], Rhs[I], TimeoutSeconds);
      Records.push_back(
          {Checker->name(), Corpus[I].Category, R.Outcome, R.Seconds, I});
    }
  }
  return Records;
}

void mba::bench::addStageZeroProver(
    Context &Ctx, std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    StageZeroStats &Stats) {
  for (auto &Checker : Checkers)
    Checker = makeStagedChecker(Ctx, std::move(Checker), &Stats);
}

void mba::bench::printStageZeroStats(const StageZeroStats &Stats) {
  size_t Queries = Stats.queries();
  double Pct = Queries ? 100.0 * (double)Stats.discharged() / (double)Queries
                       : 0.0;
  std::printf("Stage-0 static prover: %zu / %zu queries discharged before "
              "any solver (%.1f%%)\n",
              Stats.discharged(), Queries, Pct);
  std::printf("  proved %zu, refuted %zu, fallthrough to solver %zu\n",
              Stats.Proved, Stats.Refuted, Stats.Fallthrough);
  std::printf("  static time %.3f s total; solver time %.3f s on the "
              "fallthrough queries\n",
              Stats.StaticSeconds, Stats.SolverSeconds);
  std::printf("  saturation: %u rounds, %zu rule matches, %zu merges, "
              "%zu e-nodes across queries\n",
              Stats.Saturation.Iterations, Stats.Saturation.Matches,
              Stats.Saturation.Merges, Stats.Saturation.ENodes);
}

std::string mba::bench::formatSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", S);
  return Buf;
}

void mba::bench::printSolverCategoryTable(
    const std::vector<QueryRecord> &Records, size_t CorpusSizePerCategory,
    const std::string &Title) {
  std::printf("=== %s ===\n", Title.c_str());
  std::printf("(N = solved; times in seconds over solved queries)\n");

  struct Agg {
    unsigned Solved = 0;
    unsigned Total = 0;
    double TMin = 1e100, TMax = 0, TSum = 0;
  };
  // Preserve solver order of first appearance.
  std::vector<std::string> Solvers;
  std::map<std::pair<std::string, MBAKind>, Agg> Cells;
  for (const QueryRecord &R : Records) {
    if (std::find(Solvers.begin(), Solvers.end(), R.Solver) == Solvers.end())
      Solvers.push_back(R.Solver);
    Agg &Cell = Cells[{R.Solver, R.Category}];
    ++Cell.Total;
    if (R.Outcome == Verdict::Equivalent) {
      ++Cell.Solved;
      Cell.TMin = std::min(Cell.TMin, R.Seconds);
      Cell.TMax = std::max(Cell.TMax, R.Seconds);
      Cell.TSum += R.Seconds;
    }
  }

  const MBAKind Kinds[] = {MBAKind::Linear, MBAKind::Polynomial,
                           MBAKind::NonPolynomial};
  for (const std::string &Solver : Solvers) {
    std::printf("%-12s %-10s %6s %10s %10s %10s\n", Solver.c_str(), "type",
                "N", "Tmin", "Tmax", "Tavg");
    unsigned TotalSolved = 0, Total = 0;
    for (MBAKind K : Kinds) {
      auto It = Cells.find({Solver, K});
      if (It == Cells.end())
        continue;
      const Agg &Cell = It->second;
      TotalSolved += Cell.Solved;
      Total += Cell.Total;
      if (Cell.Solved)
        std::printf("%-12s %-10s %6u %10s %10s %10s\n", "", mbaKindName(K),
                    Cell.Solved, formatSeconds(Cell.TMin).c_str(),
                    formatSeconds(Cell.TMax).c_str(),
                    formatSeconds(Cell.TSum / Cell.Solved).c_str());
      else
        std::printf("%-12s %-10s %6u %10s %10s %10s\n", "", mbaKindName(K), 0u,
                    "-", "-", "-");
    }
    double Pct = Total ? 100.0 * TotalSolved / Total : 0;
    std::printf("%-12s total solved: %u / %u (%.1f%%)\n\n", "", TotalSolved,
                Total, Pct);
  }
  (void)CorpusSizePerCategory;
}

void mba::bench::printTimeDistribution(const std::vector<QueryRecord> &Records,
                                       double TimeoutSeconds,
                                       const std::string &Title) {
  std::printf("=== %s ===\n", Title.c_str());
  std::vector<std::string> Solvers;
  for (const QueryRecord &R : Records)
    if (std::find(Solvers.begin(), Solvers.end(), R.Solver) == Solvers.end())
      Solvers.push_back(R.Solver);

  for (const std::string &Solver : Solvers) {
    std::vector<double> Times;
    unsigned Timeouts = 0, Total = 0;
    for (const QueryRecord &R : Records) {
      if (R.Solver != Solver)
        continue;
      ++Total;
      if (R.Outcome == Verdict::Equivalent)
        Times.push_back(R.Seconds);
      else
        ++Timeouts;
    }
    std::sort(Times.begin(), Times.end());
    std::printf("%s: %zu solved, %u timeout/other (timeout=%.2fs)\n",
                Solver.c_str(), Times.size(), Timeouts, TimeoutSeconds);
    if (!Times.empty()) {
      auto Pct = [&](double P) {
        size_t Index = (size_t)(P * (double)(Times.size() - 1));
        return Times[Index];
      };
      std::printf("  p10=%s p50=%s p90=%s max=%s\n",
                  formatSeconds(Pct(0.10)).c_str(),
                  formatSeconds(Pct(0.50)).c_str(),
                  formatSeconds(Pct(0.90)).c_str(),
                  formatSeconds(Times.back()).c_str());
    }
    // Cumulative solved-vs-time ASCII curve (the figures' visual).
    const int Columns = 50;
    std::printf("  solved-by-time curve [0 .. %.2fs]:\n  |", TimeoutSeconds);
    for (int C = 0; C != Columns; ++C) {
      double T = TimeoutSeconds * (double)(C + 1) / Columns;
      size_t SolvedByT =
          std::upper_bound(Times.begin(), Times.end(), T) - Times.begin();
      double Frac = Total ? (double)SolvedByT / Total : 0;
      const char *Glyphs = " .:-=+*#%@";
      int G = std::min(9, (int)(Frac * 10));
      std::printf("%c", Glyphs[G]);
      (void)T;
    }
    std::printf("| %.0f%% solved at timeout\n", Total ? 100.0 * Times.size() / Total : 0.0);
  }
  std::printf("\n");
}
