//===- bench/Harness.cpp - Shared benchmark driver code -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "support/BuildInfo.h"
#include "support/QueryLog.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

using namespace mba;
using namespace mba::bench;

HarnessOptions mba::bench::parseHarnessArgs(int Argc, char **Argv) {
  HarnessOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, Len) == 0 ? Arg + Len : nullptr;
    };
    if (const char *V = Value("--per-category="))
      Opts.PerCategory = (unsigned)std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--timeout="))
      Opts.TimeoutSeconds = std::strtod(V, nullptr);
    else if (const char *V = Value("--width="))
      Opts.Width = (unsigned)std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--seed="))
      Opts.Seed = std::strtoull(V, nullptr, 10);
    else if (const char *V = Value("--static-prove="))
      Opts.StageZeroProver = std::strtoul(V, nullptr, 10) != 0;
    else if (const char *V = Value("--jobs="))
      Opts.Jobs = (unsigned)std::strtoul(V, nullptr, 10);
    else if (const char *V = Value("--incremental="))
      Opts.IncrementalAig = std::strtoul(V, nullptr, 10) != 0;
    else if (const char *V = Value("--simplify="))
      Opts.Simplify = std::strtoul(V, nullptr, 10) != 0;
    else if (const char *V = Value("--json="))
      Opts.JsonPath = V;
    else if (const char *V = Value("--cache="))
      Opts.Cache = std::strtoul(V, nullptr, 10) != 0;
    else if (const char *V = Value("--cache-file=")) {
      Opts.CacheFile = V;
      Opts.Cache = true;
    } else if (const char *V = Value("--trace="))
      Opts.TracePath = V;
    else if (const char *V = Value("--metrics="))
      Opts.MetricsPath = V;
    else if (const char *V = Value("--query-log="))
      Opts.QueryLogPath = V;
    else
      std::fprintf(stderr,
                   "warning: unknown argument '%s' "
                   "(supported: --per-category= --timeout= --width= --seed= "
                   "--static-prove= --jobs= --incremental= --simplify= "
                   "--json= --cache= --cache-file= --trace= --metrics= "
                   "--query-log=)\n",
                   Arg);
  }
  return Opts;
}

PipelineCaches::PipelineCaches(unsigned Width)
    : Width(Width), Simplify(Width),
      Telemetry(telemetry::registerSource([this](telemetry::MetricsSink &S) {
        auto Emit = [&S](const char *Layer, const CacheStats &Stats) {
          std::string P = std::string("cache.") + Layer + ".";
          S.value(P + "hits", Stats.Hits);
          S.value(P + "misses", Stats.Misses);
          S.value(P + "inserts", Stats.Inserts);
          S.value(P + "evictions", Stats.Evictions);
          S.value(P + "entries", Stats.Entries);
        };
        Emit("simplify_result", Simplify.resultStats());
        Emit("simplify_linear", Simplify.linearStats());
        Emit("basis", Basis.stats());
        Emit("verdicts", Verdicts.stats());
      })) {}

void mba::bench::enableTelemetry(const HarnessOptions &Opts) {
  bool Trace = !Opts.TracePath.empty();
  bool Metrics = Trace || !Opts.MetricsPath.empty() || !Opts.JsonPath.empty();
  if (Metrics)
    telemetry::setMetricsEnabled(true);
  if (Trace) {
    telemetry::clearTrace();
    telemetry::setThreadLabel("main");
    telemetry::setTracingEnabled(true);
  }
  if (!Opts.QueryLogPath.empty() &&
      !querylog::openFile(Opts.QueryLogPath))
    std::fprintf(stderr, "warning: cannot open query log '%s'\n",
                 Opts.QueryLogPath.c_str());
}

void mba::bench::exportTelemetry(const HarnessOptions &Opts) {
  if (!Opts.TracePath.empty()) {
    telemetry::setTracingEnabled(false);
    if (!telemetry::writeChromeTrace(Opts.TracePath))
      std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                   Opts.TracePath.c_str());
  }
  if (!Opts.MetricsPath.empty() &&
      !telemetry::writeMetricsText(Opts.MetricsPath))
    std::fprintf(stderr, "warning: cannot write metrics to '%s'\n",
                 Opts.MetricsPath.c_str());
  if (!Opts.QueryLogPath.empty())
    querylog::close();
}

bool PipelineCaches::loadFrom(const std::string &Path, std::string &Err) {
  SnapshotReader R(Path, Width);
  if (!R.ok()) {
    Err = R.error();
    return false;
  }
  std::string Name;
  uint64_t Count = 0;
  while (R.nextSection(Name, Count)) {
    if (Simplify.loadSection(R, Name, Count))
      continue;
    if (Name == BasisCache::SectionName) {
      Basis.loadSection(R, Count);
      continue;
    }
    if (Name == VerdictCache::SectionName) {
      Verdicts.loadSection(R, Count);
      continue;
    }
    // Unknown section (written by a newer binary): skip its entries.
    uint64_t Key = 0;
    std::vector<uint8_t> Payload;
    for (uint64_t I = 0; I != Count && R.entry(Key, Payload); ++I)
      ;
  }
  if (!R.ok()) {
    Err = R.error();
    return false;
  }
  return true;
}

bool PipelineCaches::saveTo(const std::string &Path, std::string &Err) const {
  SnapshotWriter W(Path, Width);
  if (!W.ok()) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Simplify.save(W);
  Basis.save(W);
  Verdicts.save(W);
  if (!W.finish()) {
    Err = "short write to '" + Path + "'";
    return false;
  }
  return true;
}

std::unique_ptr<PipelineCaches>
mba::bench::makePipelineCaches(const HarnessOptions &Opts) {
  if (!Opts.Cache)
    return nullptr;
  auto Caches = std::make_unique<PipelineCaches>(Opts.Width);
  if (!Opts.CacheFile.empty()) {
    std::string Err;
    // A missing file is the normal cold-start case; only report loads
    // that found a file but could not use it.
    if (std::FILE *Probe = std::fopen(Opts.CacheFile.c_str(), "rb")) {
      std::fclose(Probe);
      if (!Caches->loadFrom(Opts.CacheFile, Err))
        std::fprintf(stderr, "warning: ignoring cache snapshot: %s\n",
                     Err.c_str());
    }
  }
  return Caches;
}

void mba::bench::savePipelineCaches(const HarnessOptions &Opts,
                                    const PipelineCaches *Caches) {
  if (!Caches || Opts.CacheFile.empty())
    return;
  std::string Err;
  if (!Caches->saveTo(Opts.CacheFile, Err))
    std::fprintf(stderr, "warning: cache snapshot not saved: %s\n",
                 Err.c_str());
}

void mba::bench::printCacheStats(const PipelineCaches &Caches) {
  auto Line = [](const char *Name, const CacheStats &S) {
    std::printf("  %-16s %8llu hits %8llu misses %8llu entries "
                "(%llu evicted)\n",
                Name, (unsigned long long)S.Hits, (unsigned long long)S.Misses,
                (unsigned long long)S.Entries,
                (unsigned long long)S.Evictions);
  };
  std::printf("Semantic caches:\n");
  Line("simplify.result", Caches.Simplify.resultStats());
  Line("simplify.linear", Caches.Simplify.linearStats());
  Line("basis", Caches.Basis.stats());
  Line("verdicts", Caches.Verdicts.stats());
}

std::vector<QueryRecord> mba::bench::runSolvingStudy(
    Context &Ctx, const std::vector<CorpusEntry> &Corpus,
    std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    double TimeoutSeconds, MBASolver *Simplifier) {
  // Preprocess once (shared across solvers, like the paper's pipeline).
  std::vector<const Expr *> Lhs(Corpus.size()), Rhs(Corpus.size());
  for (size_t I = 0; I != Corpus.size(); ++I) {
    if (Simplifier) {
      Lhs[I] = Simplifier->simplify(Corpus[I].Obfuscated);
      Rhs[I] = Simplifier->simplify(Corpus[I].Ground);
    } else {
      Lhs[I] = Corpus[I].Obfuscated;
      Rhs[I] = Corpus[I].Ground;
    }
  }

  std::vector<QueryRecord> Records;
  Records.reserve(Corpus.size() * Checkers.size());
  for (auto &Checker : Checkers) {
    for (size_t I = 0; I != Corpus.size(); ++I) {
      CheckResult R = Checker->check(Ctx, Lhs[I], Rhs[I], TimeoutSeconds);
      Records.push_back(
          {Checker->name(), Corpus[I].Category, R.Outcome, R.Seconds, I});
    }
  }
  return Records;
}

namespace {

/// Copies the attached caches' counters into the result (no-op when the
/// study ran uncached).
void recordCacheStats(StudyResult &Out, const StudyConfig &Config) {
  if (!Config.Caches)
    return;
  Out.CachesEnabled = true;
  Out.SimplifyResultCache = Config.Caches->Simplify.resultStats();
  Out.SimplifyLinearCache = Config.Caches->Simplify.linearStats();
  Out.BasisCacheStats = Config.Caches->Basis.stats();
  Out.VerdictCacheStats = Config.Caches->Verdicts.stats();
}

/// The simplifier configuration of one study worker, with the shared
/// caches attached when the study runs cached.
SimplifyOptions studySimplifyOptions(const StudyConfig &Config) {
  SimplifyOptions Opts;
  if (Config.Caches) {
    Opts.SharedCache = &Config.Caches->Simplify;
    Opts.SharedBasisCache = &Config.Caches->Basis;
  }
  return Opts;
}

void mergeStageZeroStats(StageZeroStats &Into, const StageZeroStats &From) {
  Into.Proved += From.Proved;
  Into.Refuted += From.Refuted;
  Into.Fallthrough += From.Fallthrough;
  Into.StaticSeconds += From.StaticSeconds;
  Into.SolverSeconds += From.SolverSeconds;
  Into.Saturation.Iterations += From.Saturation.Iterations;
  Into.Saturation.ENodes += From.Saturation.ENodes;
  Into.Saturation.Merges += From.Saturation.Merges;
  Into.Saturation.Matches += From.Saturation.Matches;
}

} // namespace

StudyResult mba::bench::runSolvingStudyParallel(
    Context &Ctx, const std::vector<CorpusEntry> &Corpus,
    const CheckerFactory &MakeCheckers, const StudyConfig &Config) {
  StudyResult Out;
  Out.Jobs = Config.Jobs ? Config.Jobs
                         : std::max(1u, std::thread::hardware_concurrency());
  // Total covers preprocessing + simplification + solving — the
  // end-to-end number WallSeconds (solve loop only) never included.
  Stopwatch Total;
  if (Config.RecordSimplified) {
    Out.SimplifiedLhs.assign(Corpus.size(), std::string());
    Out.SimplifiedRhs.assign(Corpus.size(), std::string());
  }

  if (Out.Jobs == 1) {
    // Serial path, bit-identical to runSolvingStudy on the main context.
    std::vector<std::unique_ptr<EquivalenceChecker>> Checkers =
        MakeCheckers(Ctx);
    if (Config.StageZero)
      addStageZeroProver(Ctx, Checkers, Out.StaticStats,
                         Config.Caches ? &Config.Caches->Verdicts : nullptr);
    std::unique_ptr<MBASolver> Simplifier;
    if (Config.Simplify)
      Simplifier =
          std::make_unique<MBASolver>(Ctx, studySimplifyOptions(Config));
    std::vector<const Expr *> Lhs(Corpus.size()), Rhs(Corpus.size());
    for (size_t I = 0; I != Corpus.size(); ++I) {
      Lhs[I] = Simplifier ? Simplifier->simplify(Corpus[I].Obfuscated)
                          : Corpus[I].Obfuscated;
      Rhs[I] = Simplifier ? Simplifier->simplify(Corpus[I].Ground)
                          : Corpus[I].Ground;
      if (Config.RecordSimplified) {
        Out.SimplifiedLhs[I] = printExpr(Ctx, Lhs[I]);
        Out.SimplifiedRhs[I] = printExpr(Ctx, Rhs[I]);
      }
    }
    // The wall clock starts after preprocessing (and there is no cloning
    // on the serial path): it measures the solve loop alone.
    Stopwatch Wall;
    Out.Records.reserve(Corpus.size() * Checkers.size());
    for (auto &Checker : Checkers)
      for (size_t I = 0; I != Corpus.size(); ++I) {
        CheckResult R =
            Checker->check(Ctx, Lhs[I], Rhs[I], Config.TimeoutSeconds);
        Out.Records.push_back(
            {Checker->name(), Corpus[I].Category, R.Outcome, R.Seconds, I});
      }
    Out.WallSeconds = Wall.seconds();
    if (Simplifier)
      Out.SimplifySeconds = Simplifier->stats().Seconds;
    recordCacheStats(Out, Config);
    Out.TotalSeconds = Total.seconds();
    return Out;
  }

  const size_t N = Corpus.size();
  // One private pipeline per worker. Members are ordered so the checkers
  // (which hold pointers into Stats and Ctx) die before their targets.
  struct Worker {
    std::unique_ptr<Context> Ctx;
    StageZeroStats Stats;
    std::unique_ptr<MBASolver> Simplifier;
    std::vector<std::unique_ptr<EquivalenceChecker>> Checkers;
    double CloneSeconds = 0;
  };
  std::vector<Worker> Workers(Out.Jobs);

  size_t NumCheckers = MakeCheckers(Ctx).size();
  Out.Records.assign(N * NumCheckers, QueryRecord{});

  ThreadPool Pool(Out.Jobs);
  Stopwatch Wall;
  Pool.parallelFor(N, [&](size_t I, unsigned Ordinal) {
    Worker &W = Workers[Ordinal];
    if (!W.Ctx) {
      // First task on this worker: build its context here, on the worker
      // thread, so the context's owner-thread guardrail holds. The label
      // keys trace rows by the stable worker ordinal, not the OS thread.
      telemetry::setThreadLabel("worker-" + std::to_string(Ordinal));
      W.Ctx = std::make_unique<Context>(Ctx.width());
      if (Config.Simplify)
        W.Simplifier = std::make_unique<MBASolver>(
            *W.Ctx, studySimplifyOptions(Config));
      W.Checkers = MakeCheckers(*W.Ctx);
      if (Config.StageZero)
        addStageZeroProver(*W.Ctx, W.Checkers, W.Stats,
                           Config.Caches ? &Config.Caches->Verdicts
                                         : nullptr);
    }
    Stopwatch CloneTimer;
    const Expr *Lhs = cloneExpr(*W.Ctx, Corpus[I].Obfuscated);
    const Expr *Rhs = cloneExpr(*W.Ctx, Corpus[I].Ground);
    W.CloneSeconds += CloneTimer.seconds();
    if (W.Simplifier) {
      Lhs = W.Simplifier->simplify(Lhs);
      Rhs = W.Simplifier->simplify(Rhs);
    }
    if (Config.RecordSimplified) {
      // Pre-assigned slots: no lock needed, no order dependence.
      Out.SimplifiedLhs[I] = printExpr(*W.Ctx, Lhs);
      Out.SimplifiedRhs[I] = printExpr(*W.Ctx, Rhs);
    }
    for (size_t C = 0; C != W.Checkers.size(); ++C) {
      CheckResult R =
          W.Checkers[C]->check(*W.Ctx, Lhs, Rhs, Config.TimeoutSeconds);
      // Slot layout matches the serial loop's checker-major order.
      Out.Records[C * N + I] = {W.Checkers[C]->name(), Corpus[I].Category,
                                R.Outcome, R.Seconds, I};
    }
  });
  Out.WallSeconds = Wall.seconds();
  Out.Pool = Pool.stats();
  for (Worker &W : Workers) {
    mergeStageZeroStats(Out.StaticStats, W.Stats);
    if (W.Simplifier)
      Out.SimplifySeconds += W.Simplifier->stats().Seconds;
    Out.CloneSeconds += W.CloneSeconds;
  }
  recordCacheStats(Out, Config);
  Out.TotalSeconds = Total.seconds();
  return Out;
}

void mba::bench::addStageZeroProver(
    Context &Ctx, std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    StageZeroStats &Stats, VerdictCache *Verdicts) {
  for (auto &Checker : Checkers)
    Checker = makeStagedChecker(Ctx, std::move(Checker), &Stats, ProveBudget(),
                                Verdicts);
}

void mba::bench::printStageZeroStats(const StageZeroStats &Stats) {
  size_t Queries = Stats.queries();
  double Pct = Queries ? 100.0 * (double)Stats.discharged() / (double)Queries
                       : 0.0;
  std::printf("Stage-0 static prover: %zu / %zu queries discharged before "
              "any solver (%.1f%%)\n",
              Stats.discharged(), Queries, Pct);
  std::printf("  proved %zu, refuted %zu, fallthrough to solver %zu\n",
              Stats.Proved, Stats.Refuted, Stats.Fallthrough);
  std::printf("  static time %.3f s total; solver time %.3f s on the "
              "fallthrough queries\n",
              Stats.StaticSeconds, Stats.SolverSeconds);
  std::printf("  saturation: %u rounds, %zu rule matches, %zu merges, "
              "%zu e-nodes across queries\n",
              Stats.Saturation.Iterations, Stats.Saturation.Matches,
              Stats.Saturation.Merges, Stats.Saturation.ENodes);
}

void mba::bench::writeStudyJson(const std::string &Path,
                                const std::string &Table,
                                const HarnessOptions &Opts,
                                const StudyResult &Result) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "error: cannot write JSON report to '%s'\n",
                 Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"table\": \"%s\",\n", Table.c_str());
  std::fprintf(F,
               "  \"build_info\": {\"version\": \"%s\", \"git_sha\": \"%s\", "
               "\"build_type\": \"%s\", \"isa\": \"%s\"},\n",
               buildinfo::version(), buildinfo::gitSha(),
               buildinfo::buildType(), buildinfo::activeIsaName());
  std::fprintf(F,
               "  \"config\": {\"per_category\": %u, \"timeout_seconds\": "
               "%.6f, \"width\": %u, \"seed\": %llu, \"jobs\": %u, "
               "\"stage_zero\": %s, \"simplify\": %s, \"incremental\": %s},\n",
               Opts.PerCategory, Opts.TimeoutSeconds, Opts.Width,
               (unsigned long long)Opts.Seed, Result.Jobs,
               Result.StaticStats.queries() ? "true" : "false",
               Result.SimplifySeconds > 0 ? "true" : "false",
               Opts.IncrementalAig ? "true" : "false");
  std::fprintf(F,
               "  \"timing\": {\"total_seconds\": %.6f, \"wall_seconds\": "
               "%.6f, \"clone_seconds\": %.6f, \"simplify_seconds\": %.6f},\n",
               Result.TotalSeconds, Result.WallSeconds, Result.CloneSeconds,
               Result.SimplifySeconds);
  auto CacheJson = [&](const char *Name, const CacheStats &S,
                       const char *Sep) {
    std::fprintf(F,
                 "    \"%s\": {\"hits\": %llu, \"misses\": %llu, "
                 "\"inserts\": %llu, \"evictions\": %llu, \"entries\": "
                 "%llu}%s\n",
                 Name, (unsigned long long)S.Hits, (unsigned long long)S.Misses,
                 (unsigned long long)S.Inserts,
                 (unsigned long long)S.Evictions,
                 (unsigned long long)S.Entries, Sep);
  };
  std::fprintf(F, "  \"caches\": {\n    \"enabled\": %s,\n",
               Result.CachesEnabled ? "true" : "false");
  CacheJson("simplify_result", Result.SimplifyResultCache, ",");
  CacheJson("simplify_linear", Result.SimplifyLinearCache, ",");
  CacheJson("basis", Result.BasisCacheStats, ",");
  CacheJson("verdicts", Result.VerdictCacheStats, "");
  std::fprintf(F, "  },\n");
  std::fprintf(F,
               "  \"pool\": {\"workers\": %u, \"tasks\": %llu, \"steals\": "
               "%llu, \"idle_waits\": %llu},\n",
               Result.Jobs, (unsigned long long)Result.Pool.Tasks,
               (unsigned long long)Result.Pool.Steals,
               (unsigned long long)Result.Pool.IdleWaits);
  std::fprintf(F,
               "  \"stage_zero\": {\"proved\": %zu, \"refuted\": %zu, "
               "\"fallthrough\": %zu, \"static_seconds\": %.6f, "
               "\"solver_seconds\": %.6f},\n",
               Result.StaticStats.Proved, Result.StaticStats.Refuted,
               Result.StaticStats.Fallthrough,
               Result.StaticStats.StaticSeconds,
               Result.StaticStats.SolverSeconds);

  // The unified telemetry registry, flattened. Counters and gauges are
  // plain numbers; histograms report count/sum, estimated percentiles and
  // the non-empty log2 buckets. Empty when telemetry never ran this
  // process.
  std::vector<telemetry::MetricValue> Metrics = telemetry::snapshotMetrics();

  // CNF footprint of the run: variables/clauses the SAT backends actually
  // encoded (the sat.encode.* counters, summed over every worker). Zero
  // when every query was discharged before bit-blasting.
  auto MetricCounter = [&Metrics](const char *Name) -> unsigned long long {
    for (const telemetry::MetricValue &M : Metrics)
      if (M.Which == telemetry::MetricValue::KCounter && M.Name == Name)
        return M.Value;
    return 0;
  };
  std::fprintf(F, "  \"cnf\": {\"vars\": %llu, \"clauses\": %llu},\n",
               MetricCounter("sat.encode.vars"),
               MetricCounter("sat.encode.clauses"));
  std::fprintf(F, "  \"metrics\": {");
  for (size_t I = 0; I != Metrics.size(); ++I) {
    const telemetry::MetricValue &M = Metrics[I];
    std::fprintf(F, "%s\n    \"%s\": ", I ? "," : "", M.Name.c_str());
    switch (M.Which) {
    case telemetry::MetricValue::KCounter:
      std::fprintf(F, "%llu", (unsigned long long)M.Value);
      break;
    case telemetry::MetricValue::KGauge:
      std::fprintf(F, "%lld", (long long)M.GaugeValue);
      break;
    case telemetry::MetricValue::KHistogram: {
      std::fprintf(F, "{\"count\": %llu, \"sum\": %llu",
                   (unsigned long long)M.Hist.Count,
                   (unsigned long long)M.Hist.Sum);
      if (M.Hist.Count)
        std::fprintf(F, ", \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f",
                     M.Hist.percentile(50), M.Hist.percentile(95),
                     M.Hist.percentile(99));
      // Sparse bucket map, keyed on each bucket's inclusive upper bound
      // (bucket B covers [2^(B-1), 2^B)); empty buckets are omitted.
      std::fprintf(F, ", \"buckets\": {");
      bool FirstBucket = true;
      for (unsigned B = 0; B != telemetry::HistogramBuckets; ++B) {
        if (!M.Hist.Buckets[B])
          continue;
        std::fprintf(F, "%s\"%llu\": %llu", FirstBucket ? "" : ", ",
                     (unsigned long long)telemetry::histogramBucketMax(B),
                     (unsigned long long)M.Hist.Buckets[B]);
        FirstBucket = false;
      }
      std::fprintf(F, "}}");
      break;
    }
    }
  }
  std::fprintf(F, "%s},\n", Metrics.empty() ? "" : "\n  ");

  // Per-solver, per-category aggregation (the printed table's cells).
  struct Agg {
    unsigned Solved = 0, Total = 0;
    double TMin = 1e100, TMax = 0, TSum = 0;
  };
  std::vector<std::string> Solvers;
  std::map<std::pair<std::string, MBAKind>, Agg> Cells;
  for (const QueryRecord &R : Result.Records) {
    if (std::find(Solvers.begin(), Solvers.end(), R.Solver) == Solvers.end())
      Solvers.push_back(R.Solver);
    Agg &Cell = Cells[{R.Solver, R.Category}];
    ++Cell.Total;
    if (R.Outcome == Verdict::Equivalent) {
      ++Cell.Solved;
      Cell.TMin = std::min(Cell.TMin, R.Seconds);
      Cell.TMax = std::max(Cell.TMax, R.Seconds);
      Cell.TSum += R.Seconds;
    }
  }
  std::fprintf(F, "  \"solvers\": [\n");
  const MBAKind Kinds[] = {MBAKind::Linear, MBAKind::Polynomial,
                           MBAKind::NonPolynomial};
  for (size_t S = 0; S != Solvers.size(); ++S) {
    std::fprintf(F, "    {\"name\": \"%s\", \"categories\": [",
                 Solvers[S].c_str());
    bool First = true;
    unsigned TotalSolved = 0, Total = 0;
    for (MBAKind K : Kinds) {
      auto It = Cells.find({Solvers[S], K});
      if (It == Cells.end())
        continue;
      const Agg &Cell = It->second;
      TotalSolved += Cell.Solved;
      Total += Cell.Total;
      std::fprintf(F, "%s\n      {\"category\": \"%s\", \"solved\": %u, "
                      "\"total\": %u",
                   First ? "" : ",", mbaKindName(K), Cell.Solved, Cell.Total);
      if (Cell.Solved)
        std::fprintf(F,
                     ", \"tmin\": %.6f, \"tmax\": %.6f, \"tavg\": %.6f}",
                     Cell.TMin, Cell.TMax, Cell.TSum / Cell.Solved);
      else
        std::fprintf(F, "}");
      First = false;
    }
    std::fprintf(F, "],\n     \"total_solved\": %u, \"total\": %u}%s\n",
                 TotalSolved, Total, S + 1 == Solvers.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
}

std::string mba::bench::formatSeconds(double S) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", S);
  return Buf;
}

void mba::bench::printSolverCategoryTable(
    const std::vector<QueryRecord> &Records, size_t CorpusSizePerCategory,
    const std::string &Title) {
  std::printf("=== %s ===\n", Title.c_str());
  std::printf("(N = solved; times in seconds over solved queries)\n");

  struct Agg {
    unsigned Solved = 0;
    unsigned Total = 0;
    double TMin = 1e100, TMax = 0, TSum = 0;
  };
  // Preserve solver order of first appearance.
  std::vector<std::string> Solvers;
  std::map<std::pair<std::string, MBAKind>, Agg> Cells;
  for (const QueryRecord &R : Records) {
    if (std::find(Solvers.begin(), Solvers.end(), R.Solver) == Solvers.end())
      Solvers.push_back(R.Solver);
    Agg &Cell = Cells[{R.Solver, R.Category}];
    ++Cell.Total;
    if (R.Outcome == Verdict::Equivalent) {
      ++Cell.Solved;
      Cell.TMin = std::min(Cell.TMin, R.Seconds);
      Cell.TMax = std::max(Cell.TMax, R.Seconds);
      Cell.TSum += R.Seconds;
    }
  }

  const MBAKind Kinds[] = {MBAKind::Linear, MBAKind::Polynomial,
                           MBAKind::NonPolynomial};
  for (const std::string &Solver : Solvers) {
    std::printf("%-12s %-10s %6s %10s %10s %10s\n", Solver.c_str(), "type",
                "N", "Tmin", "Tmax", "Tavg");
    unsigned TotalSolved = 0, Total = 0;
    for (MBAKind K : Kinds) {
      auto It = Cells.find({Solver, K});
      if (It == Cells.end())
        continue;
      const Agg &Cell = It->second;
      TotalSolved += Cell.Solved;
      Total += Cell.Total;
      if (Cell.Solved)
        std::printf("%-12s %-10s %6u %10s %10s %10s\n", "", mbaKindName(K),
                    Cell.Solved, formatSeconds(Cell.TMin).c_str(),
                    formatSeconds(Cell.TMax).c_str(),
                    formatSeconds(Cell.TSum / Cell.Solved).c_str());
      else
        std::printf("%-12s %-10s %6u %10s %10s %10s\n", "", mbaKindName(K), 0u,
                    "-", "-", "-");
    }
    double Pct = Total ? 100.0 * TotalSolved / Total : 0;
    std::printf("%-12s total solved: %u / %u (%.1f%%)\n\n", "", TotalSolved,
                Total, Pct);
  }
  (void)CorpusSizePerCategory;
}

void mba::bench::printTimeDistribution(const std::vector<QueryRecord> &Records,
                                       double TimeoutSeconds,
                                       const std::string &Title) {
  std::printf("=== %s ===\n", Title.c_str());
  std::vector<std::string> Solvers;
  for (const QueryRecord &R : Records)
    if (std::find(Solvers.begin(), Solvers.end(), R.Solver) == Solvers.end())
      Solvers.push_back(R.Solver);

  for (const std::string &Solver : Solvers) {
    std::vector<double> Times;
    unsigned Timeouts = 0, Total = 0;
    for (const QueryRecord &R : Records) {
      if (R.Solver != Solver)
        continue;
      ++Total;
      if (R.Outcome == Verdict::Equivalent)
        Times.push_back(R.Seconds);
      else
        ++Timeouts;
    }
    std::sort(Times.begin(), Times.end());
    std::printf("%s: %zu solved, %u timeout/other (timeout=%.2fs)\n",
                Solver.c_str(), Times.size(), Timeouts, TimeoutSeconds);
    if (!Times.empty()) {
      auto Pct = [&](double P) {
        size_t Index = (size_t)(P * (double)(Times.size() - 1));
        return Times[Index];
      };
      std::printf("  p10=%s p50=%s p90=%s max=%s\n",
                  formatSeconds(Pct(0.10)).c_str(),
                  formatSeconds(Pct(0.50)).c_str(),
                  formatSeconds(Pct(0.90)).c_str(),
                  formatSeconds(Times.back()).c_str());
    }
    // Cumulative solved-vs-time ASCII curve (the figures' visual).
    const int Columns = 50;
    std::printf("  solved-by-time curve [0 .. %.2fs]:\n  |", TimeoutSeconds);
    for (int C = 0; C != Columns; ++C) {
      double T = TimeoutSeconds * (double)(C + 1) / Columns;
      size_t SolvedByT =
          std::upper_bound(Times.begin(), Times.end(), T) - Times.begin();
      double Frac = Total ? (double)SolvedByT / Total : 0;
      const char *Glyphs = " .:-=+*#%@";
      int G = std::min(9, (int)(Frac * 10));
      std::printf("%c", Glyphs[G]);
      (void)T;
    }
    std::printf("| %.0f%% solved at timeout\n", Total ? 100.0 * Times.size() / Total : 0.0);
  }
  std::printf("\n");
}
