//===- bench/table8_overhead.cpp - Table 8 reproduction -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Table 8**: MBA-Solver's own cost (time and memory) as a
/// function of input complexity, bucketed by MBA alternation at the
/// paper's sample points 10 / 20 / 30 / 40. Memory is the expression-arena
/// growth during simplification (the paper reports the prototype's process
/// memory delta). Expected shape: sub-second times and single-digit-MB
/// memory, growing mildly with alternation — the preprocessing overhead is
/// negligible compared to solver time.
///
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"
#include "ast/Context.h"
#include "ast/Parser.h"
#include "gen/Obfuscator.h"
#include "mba/Metrics.h"
#include "mba/Simplifier.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstring>
#include <vector>

using namespace mba;

int main(int Argc, char **Argv) {
  unsigned SamplesPerBucket = 20;
  for (int I = 1; I < Argc; ++I)
    if (std::sscanf(Argv[I], "--samples=%u", &SamplesPerBucket) == 1)
      continue;

  // The paper samples alternation 10..40; the two extra rows extend the
  // sweep to show the asymptotic growth the C++ engine makes visible.
  const unsigned Targets[] = {10, 20, 30, 40, 80, 160};
  unsigned StaticProved = 0, StaticRefuted = 0, StaticUnknown = 0;
  double StaticSeconds = 0;
  std::printf("=== Table 8: MBA-Solver overhead vs MBA alternation ===\n");
  std::printf("%-14s %12s %12s %10s\n", "Alternation", "Time (s)",
              "Memory (MB)", "samples");
  std::printf("(memory = expression arena growth + transient working set)\n");

  for (unsigned Target : Targets) {
    double TimeSum = 0, MemSum = 0;
    unsigned Collected = 0;
    uint64_t Seed = 5000 + Target;
    // Draw obfuscations until enough land near the alternation target.
    while (Collected < SamplesPerBucket) {
      Context Ctx(64);
      Obfuscator Obf(Ctx, Seed++);
      ObfuscationOptions OOpts;
      OOpts.ZeroIdentities = std::max(1u, Target / 3);
      OOpts.TermsPerIdentity = 6;
      OOpts.BitwiseDepth = 2;
      const Expr *E =
          Obf.obfuscateLinear(parseOrDie(Ctx, "x + y - z"), OOpts);
      uint64_t Alt = mbaAlternation(E);
      // Accept within +-25% of the bucket target.
      if (Alt * 4 < Target * 3 || Alt * 4 > Target * 5)
        continue;
      // Fresh context per sample so the memory delta is attributable.
      MBASolver Solver(Ctx);
      size_t Before = Ctx.bytesUsed();
      Stopwatch Timer;
      const Expr *R = Solver.simplify(E);
      TimeSum += Timer.seconds();
      MemSum += (double)(Ctx.bytesUsed() - Before +
                         Solver.stats().TransientBytes) /
                (1024.0 * 1024.0);
      ++Collected;
      // Stage 0 on the verification query the solver study poses for this
      // sample (simplified vs obfuscated): how many never need a solver.
      Stopwatch StaticTimer;
      ProveResult Static = proveEquivalence(Ctx, E, R);
      StaticSeconds += StaticTimer.seconds();
      if (Static.Outcome == ProveOutcome::Proved)
        ++StaticProved;
      else if (Static.Outcome == ProveOutcome::Refuted)
        ++StaticRefuted; // cannot happen: simplification is sound
      else
        ++StaticUnknown;
    }
    std::printf("%-14u %12.4f %12.4f %10u\n", Target,
                TimeSum / SamplesPerBucket, MemSum / SamplesPerBucket,
                SamplesPerBucket);
  }

  unsigned StaticTotal = StaticProved + StaticRefuted + StaticUnknown;
  std::printf("\nStage-0 static prover on the per-sample verification "
              "queries (simplified vs obfuscated):\n");
  std::printf("  proved %u, refuted %u, unknown %u of %u — proved/refuted "
              "queries never reach a solver\n",
              StaticProved, StaticRefuted, StaticUnknown, StaticTotal);
  std::printf("  static time %.3f s total (%.2f ms avg/query)\n",
              StaticSeconds,
              StaticTotal ? 1e3 * StaticSeconds / StaticTotal : 0.0);

  std::printf("\nPaper reference (Table 8):\n");
  std::printf("  alt 10: 0.05 s / 0.2 MB;  alt 20: 0.68 s / 1.5 MB;\n");
  std::printf("  alt 30: 0.79 s / 3.6 MB;  alt 40: 0.93 s / 6.7 MB\n");
  std::printf("(The C++ engine is orders of magnitude below the Python "
              "prototype's cost;\n the shape — mild growth with alternation "
              "— is what transfers.)\n");
  return 0;
}
