//===- bench/ablation_basis.cpp - Section 7 basis-selection ablation ------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's Section 7 discussion: the normalized basis is a design
/// choice — Table 4 uses {x, y, x&y, -1}, Table 9 suggests {x, y, x|y, -1},
/// and the optimal pick may depend on the input. This ablation simplifies
/// the same corpus under both bases (and with the final-step optimization
/// on/off) and compares result complexity and solver throughput.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mba/Metrics.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

namespace {

struct AblationRow {
  const char *Name;
  BasisKind Basis;
  bool FinalOpt;
  bool AutoBasis = false;
};

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  const AblationRow Rows[] = {
      {"conj (Table 4)", BasisKind::Conjunction, true},
      {"disj (Table 9)", BasisKind::Disjunction, true},
      {"auto (per-input)", BasisKind::Conjunction, true, /*AutoBasis=*/true},
      {"conj, no final-opt", BasisKind::Conjunction, false},
      {"disj, no final-opt", BasisKind::Disjunction, false},
  };

  std::printf("=== Ablation: normalized-basis selection (Section 7), "
              "%u/category ===\n",
              Opts.PerCategory);
  std::printf("%-22s %12s %12s %12s %12s\n", "configuration", "avg alt",
              "avg length", "simpl. time", "solved %");

  auto Checkers = makeAllCheckers();
  EquivalenceChecker *Checker = Checkers.front().get();
  for (const AblationRow &Row : Rows) {
    SimplifyOptions SOpts;
    SOpts.Basis = Row.Basis;
    SOpts.EnableFinalOpt = Row.FinalOpt;
    SOpts.AutoBasis = Row.AutoBasis;
    MBASolver Solver(Ctx, SOpts);

    double AltSum = 0, LenSum = 0;
    unsigned Solved = 0;
    for (const CorpusEntry &E : Corpus) {
      const Expr *L = Solver.simplify(E.Obfuscated);
      const Expr *R = Solver.simplify(E.Ground);
      ComplexityMetrics M = measureComplexity(Ctx, L);
      AltSum += (double)M.Alternation;
      LenSum += (double)M.Length;
      if (Checker->check(Ctx, L, R, Opts.TimeoutSeconds).Outcome ==
          Verdict::Equivalent)
        ++Solved;
    }
    double N = (double)Corpus.size();
    std::printf("%-22s %12.2f %12.1f %11.3fs %11.1f%%\n", Row.Name,
                AltSum / N, LenSum / N, Solver.stats().Seconds,
                100.0 * Solved / N);
  }

  std::printf("\nPaper reference (Section 7): the conjunction basis wins for "
              "the majority of\n");
  std::printf("inputs; some expressions simplify better under the "
              "disjunction basis, and the\n");
  std::printf("final-step optimization recovers single-bitwise-operator "
              "forms either way.\n");
  exportTelemetry(Opts);
  return 0;
}
