//===- bench/table7_peer_comparison.cpp - Table 7 reproduction ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Table 7**: MBA-Solver versus the peer tools.
///
///  * SSPAM-style pattern matching: never wrong (every rule is an
///    identity) but rescues few queries — most outputs stay too complex
///    and the verifying solver times out ("O").
///  * Syntia-style synthesis: always returns *something*, but a large
///    share is semantically wrong ("N") because the I/O oracle
///    under-constrains the target.
///  * MBA-Solver: semantics-preserving and near-complete ("Y").
///
/// Columns: correctness Y/N/O and ratio, average MBA alternation before and
/// after (correct outputs only), and average verification time.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ast/ExprUtils.h"
#include "mba/Metrics.h"
#include "peer/PatternRewriter.h"
#include "peer/Synthesizer.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <functional>

using namespace mba;
using namespace mba::bench;

namespace {

struct ToolRow {
  std::string Name;
  unsigned CountY = 0, CountN = 0, CountO = 0;
  double AltBefore = 0, AltAfter = 0; // over correct outputs
  double SolveTime = 0;               // over correct outputs
  double ToolTime = 0;                // total simplification time

  void print() const {
    unsigned Total = CountY + CountN + CountO;
    double Ratio = Total ? 100.0 * CountY / Total : 0;
    double AB = CountY ? AltBefore / CountY : 0;
    double AA = CountY ? AltAfter / CountY : 0;
    double Pct = AB > 0 ? 100.0 * AA / AB : 0;
    double ST = CountY ? SolveTime / CountY : 0;
    std::printf(
        "%-12s Y=%-5u N=%-5u O=%-5u ratio=%5.1f%% | alt %6.1f -> %5.1f "
        "(%5.1f%%) | avg solve %ss | tool time %.2fs\n",
        Name.c_str(), CountY, CountN, CountO, Ratio, AB, AA, Pct,
        formatSeconds(ST).c_str(), ToolTime);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);
  if (Opts.TimeoutSeconds == 1.0)
    Opts.TimeoutSeconds = 0.25;

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  // The verifying solver, as in the paper: the tool output is checked
  // against the ground truth by an SMT solver with a timeout.
  auto Checkers = makeAllCheckers();
  EquivalenceChecker *Verifier = Checkers.front().get();

  PatternRewriter Sspam(Ctx);
  Synthesizer Syntia(Ctx);
  MBASolver Solver(Ctx);

  auto RunTool =
      [&](const std::string &Name,
          const std::function<const Expr *(const CorpusEntry &)> &Tool) {
        ToolRow Row;
        Row.Name = Name;
        Stopwatch Total;
        for (const CorpusEntry &E : Corpus) {
          Stopwatch ToolTimer;
          const Expr *Out = Tool(E);
          Row.ToolTime += ToolTimer.seconds();
          CheckResult R = Verifier->check(Ctx, Out, E.Ground,
                                          Opts.TimeoutSeconds);
          switch (R.Outcome) {
          case Verdict::Equivalent:
            ++Row.CountY;
            Row.AltBefore += (double)mbaAlternation(E.Obfuscated);
            Row.AltAfter += (double)mbaAlternation(Out);
            Row.SolveTime += R.Seconds;
            break;
          case Verdict::NotEquivalent:
            ++Row.CountN;
            break;
          case Verdict::Timeout:
            ++Row.CountO;
            break;
          }
        }
        (void)Total;
        return Row;
      };

  ToolRow SspamRow = RunTool("SSPAM", [&](const CorpusEntry &E) {
    return Sspam.simplify(E.Obfuscated);
  });
  ToolRow SyntiaRow = RunTool("Syntia", [&](const CorpusEntry &E) {
    std::vector<const Expr *> Vars = collectVariables(E.Obfuscated);
    SynthOptions SOpts;
    SOpts.Seed = 1 + (uint64_t)&E - (uint64_t)Corpus.data();
    SynthResult R = Syntia.synthesize(E.Obfuscated, Vars, SOpts);
    return R.Best;
  });
  ToolRow MbaRow = RunTool("MBA-Solver", [&](const CorpusEntry &E) {
    return Solver.simplify(E.Obfuscated);
  });

  std::printf("=== Table 7: peer-tool comparison (verifier %s, timeout %ss, "
              "%u/category) ===\n",
              Verifier->name().c_str(),
              formatSeconds(Opts.TimeoutSeconds).c_str(), Opts.PerCategory);
  SspamRow.print();
  SyntiaRow.print();
  MbaRow.print();

  std::printf("\nPaper reference (Table 7, 3000 queries, 1h timeout):\n");
  std::printf("  SSPAM      Y=89   N=0    O=2911 ratio  3.0%% | alt 4.8 -> "
              "4.3 (89.6%%)\n");
  std::printf("  Syntia     Y=512  N=2488 O=0    ratio 17.1%% | alt 3.3 -> "
              "0.4 (12.1%%)\n");
  std::printf("  MBA-Solver Y=2894 N=0    O=106  ratio 96.5%% | alt 11.9 -> "
              "2.8 (23.5%%)\n");
  exportTelemetry(Opts);
  return 0;
}
