//===- bench/table9_ir_deobfuscation.cpp - IR pipeline study --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The program-level companion to Table 6: runs the static IR deobfuscation
/// pipeline (ir/Passes.h) on a generated corpus of obfuscated programs and
/// measures
///
///   - node-count reduction (expression volume before / after),
///   - opaque branches folded and MBA regions rewritten,
///   - the solve-rate uplift: equivalence queries "program == ground truth"
///     posed to the bit-blasting backend raw vs after deobfuscation
///     (straight-line programs only — a genuine input-dependent diamond has
///     no single flattened expression),
///   - soundness: every program is interpreted against its ground-truth
///     expression on random inputs before AND after the pipeline, and every
///     rewrite inside the pipeline is re-verified by the staged equivalence
///     checker. Any disagreement fails the run.
///
/// Flags: --count=N programs (default 60), plus the shared harness flags
/// --width=BITS --timeout=SECONDS --seed=N --json=PATH --trace=PATH
/// --metrics=PATH.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "ast/Context.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "gen/ProgramGen.h"
#include "ir/Passes.h"
#include "ir/Program.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace mba;
using namespace mba::bench;

namespace {

/// The 'ret' expression of \p F, or null when no block returns.
const Expr *retValue(const Function &F) {
  for (const BasicBlock &B : F.Blocks)
    if (B.Term.Kind == TermKind::Ret)
      return B.Term.Value;
  return nullptr;
}

/// Interprets \p F against \p Ground on \p Trials random inputs. Returns
/// false (and reports on stderr) on any disagreement or interpreter
/// non-termination.
bool agreesWithGround(const Context &Ctx, const Function &F,
                      const Expr *Ground, RNG &R, unsigned Trials,
                      const char *Stage) {
  for (unsigned T = 0; T != Trials; ++T) {
    std::vector<uint64_t> Args;
    std::unordered_map<const Expr *, uint64_t> Env;
    for (const Expr *P : F.Params) {
      uint64_t V = R.next() & Ctx.mask();
      Args.push_back(V);
      Env.emplace(P, V);
    }
    std::optional<uint64_t> Got = interpretFunction(Ctx, F, Args);
    uint64_t Want = evaluate(Ctx, Ground, Env);
    if (!Got || *Got != Want) {
      std::fprintf(stderr,
                   "FAIL(%s): @%s disagrees with ground truth "
                   "(got %s, want %llu)\n",
                   Stage, F.Name.c_str(),
                   Got ? std::to_string(*Got).c_str() : "<no ret>",
                   (unsigned long long)Want);
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  // --count is this driver's own flag; strip it before the shared parser.
  unsigned Count = 60;
  std::vector<char *> HarnessArgv;
  for (int I = 0; I < Argc; ++I) {
    unsigned V = 0;
    if (I > 0 && std::sscanf(Argv[I], "--count=%u", &V) == 1)
      Count = V;
    else
      HarnessArgv.push_back(Argv[I]);
  }
  HarnessOptions Opts =
      parseHarnessArgs((int)HarnessArgv.size(), HarnessArgv.data());
  enableTelemetry(Opts);

  Context Ctx(Opts.Width);
  ProgramGenOptions GenOpts;
  std::vector<GeneratedProgram> Corpus =
      generateProgramCorpus(Ctx, Count, Opts.Seed, GenOpts,
                            /*MixBranchy=*/true);

  MBASolver Solver(Ctx);
  auto Checker = makeRegionVerifier(Ctx);
  auto SolveChecker = makeBlastChecker(true);

  PassOptions POpts;
  POpts.VerifyTimeout = Opts.TimeoutSeconds;

  RNG CheckRng(Opts.Seed ^ 0x9e3779b97f4a7c15ULL);
  size_t NodesBefore = 0, NodesAfter = 0;
  size_t InstsBefore = 0, InstsAfter = 0;
  size_t RegionsFound = 0, RegionsRewritten = 0;
  size_t BranchesFolded = 0, Unsound = 0;
  unsigned RawSolved = 0, SimpSolved = 0, SolveQueries = 0;
  double RawSeconds = 0, SimpSeconds = 0, PipelineSeconds = 0;
  unsigned Failures = 0;

  for (size_t I = 0; I != Corpus.size(); ++I) {
    const GeneratedProgram &G = Corpus[I];
    Diag D;
    std::optional<Program> P = Program::parse(Ctx, G.Text, &D);
    if (!P) {
      std::fprintf(stderr, "FAIL(parse): program %zu: %s\n", I,
                   D.str().c_str());
      ++Failures;
      continue;
    }
    Function &F = P->Functions.front();
    if (!agreesWithGround(Ctx, F, G.Ground, CheckRng, 8, "pre")) {
      ++Failures;
      continue;
    }

    // Raw solve: straight-line programs flatten to one pure expression.
    const Expr *RawFlat = nullptr;
    if (!G.Branchy)
      RawFlat = flattenValue(Ctx, F, retValue(F));

    Stopwatch PipeTimer;
    FunctionReport R = deobfuscateFunction(Ctx, F, Solver, Checker.get(),
                                           POpts);
    PipelineSeconds += PipeTimer.seconds();

    if (!agreesWithGround(Ctx, F, G.Ground, CheckRng, 8, "post")) {
      ++Failures;
      continue;
    }

    NodesBefore += R.NodesBefore;
    NodesAfter += R.NodesAfter;
    InstsBefore += R.InstsBefore;
    InstsAfter += R.InstsAfter;
    RegionsFound += R.RegionsFound;
    RegionsRewritten += R.RegionsRewritten;
    BranchesFolded += R.BranchesFolded;
    Unsound += R.UnsoundBlocked;

    if (RawFlat) {
      ++SolveQueries;
      CheckResult Raw = SolveChecker->check(Ctx, RawFlat, G.Ground,
                                            Opts.TimeoutSeconds);
      RawSeconds += Raw.Seconds;
      if (Raw.Outcome == Verdict::Equivalent)
        ++RawSolved;
      if (Raw.Outcome == Verdict::NotEquivalent) {
        std::fprintf(stderr, "FAIL(raw-check): program %zu not equivalent "
                             "to its ground truth\n", I);
        ++Failures;
      }
      const Expr *SimpFlat = flattenValue(Ctx, F, retValue(F));
      CheckResult Simp = SolveChecker->check(Ctx, SimpFlat, G.Ground,
                                             Opts.TimeoutSeconds);
      SimpSeconds += Simp.Seconds;
      if (Simp.Outcome == Verdict::Equivalent)
        ++SimpSolved;
      if (Simp.Outcome == Verdict::NotEquivalent) {
        std::fprintf(stderr, "FAIL(simp-check): program %zu changed "
                             "semantics in the pipeline\n", I);
        ++Failures;
      }
    }
  }

  std::printf("=== Table 9: static IR deobfuscation "
              "(%u programs, width %u, seed %llu) ===\n",
              Count, Opts.Width, (unsigned long long)Opts.Seed);
  std::printf("%-28s %14zu -> %zu (%.1f%% reduction)\n",
              "expression nodes", NodesBefore, NodesAfter,
              NodesBefore
                  ? 100.0 * (double)(NodesBefore - NodesAfter) /
                        (double)NodesBefore
                  : 0.0);
  std::printf("%-28s %14zu -> %zu\n", "instructions (incl. phis)",
              InstsBefore, InstsAfter);
  std::printf("%-28s %14zu found, %zu rewritten\n", "MBA regions",
              RegionsFound, RegionsRewritten);
  std::printf("%-28s %14zu\n", "opaque branches folded", BranchesFolded);
  std::printf("%-28s %14zu (must be 0)\n", "unsound rewrites blocked",
              Unsound);
  std::printf("%-28s %14.2f s total\n", "pipeline time", PipelineSeconds);
  std::printf("\nSolve-rate uplift (straight-line programs, BlastBV+RW, "
              "%.2f s budget):\n", Opts.TimeoutSeconds);
  std::printf("  raw        %u / %u solved  (%.2f s)\n", RawSolved,
              SolveQueries, RawSeconds);
  std::printf("  deobfuscated %u / %u solved  (%.2f s)\n", SimpSolved,
              SolveQueries, SimpSeconds);

  if (!Opts.JsonPath.empty()) {
    std::ofstream Out(Opts.JsonPath);
    Out << "{\n"
        << "  \"table\": \"table9_ir_deobfuscation\",\n"
        << "  \"count\": " << Count << ",\n"
        << "  \"width\": " << Opts.Width << ",\n"
        << "  \"seed\": " << Opts.Seed << ",\n"
        << "  \"timeout_seconds\": " << Opts.TimeoutSeconds << ",\n"
        << "  \"nodes_before\": " << NodesBefore << ",\n"
        << "  \"nodes_after\": " << NodesAfter << ",\n"
        << "  \"insts_before\": " << InstsBefore << ",\n"
        << "  \"insts_after\": " << InstsAfter << ",\n"
        << "  \"regions_found\": " << RegionsFound << ",\n"
        << "  \"regions_rewritten\": " << RegionsRewritten << ",\n"
        << "  \"branches_folded\": " << BranchesFolded << ",\n"
        << "  \"unsound_blocked\": " << Unsound << ",\n"
        << "  \"solve_queries\": " << SolveQueries << ",\n"
        << "  \"raw_solved\": " << RawSolved << ",\n"
        << "  \"simplified_solved\": " << SimpSolved << ",\n"
        << "  \"pipeline_seconds\": " << PipelineSeconds << ",\n"
        << "  \"failures\": " << Failures << "\n"
        << "}\n";
    if (!Out)
      std::fprintf(stderr, "warning: could not write %s\n",
                   Opts.JsonPath.c_str());
  }
  exportTelemetry(Opts);

  if (Unsound) {
    std::fprintf(stderr,
                 "error: %zu unsound rewrite candidate(s) — the pipeline "
                 "blocked them, but their existence means a simplifier "
                 "bug\n", Unsound);
    return 1;
  }
  if (Failures) {
    std::fprintf(stderr, "error: %u program(s) failed\n", Failures);
    return 1;
  }
  return 0;
}
