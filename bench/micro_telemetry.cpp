//===- bench/micro_telemetry.cpp - Telemetry overhead micro-benchmarks ----===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the per-operation cost of the unified telemetry layer
/// (support/Telemetry.h) in both states. The contract numbers
/// docs/OBSERVABILITY.md quotes come from here:
///
///  * **disabled** (the default): a counter add, histogram record, or
///    trace span is one relaxed atomic load — within noise of the empty
///    baseline loop, and the reason instrumentation is allowed to live in
///    per-expression hot paths (end-to-end: micro_core regresses < 2% with
///    the instrumented build, since the disabled checks are a few
///    sub-nanosecond loads per simplify call);
///  * **enabled metrics**: a counter add is one striped relaxed fetch_add
///    (~a few ns, no contention across threads by construction);
///  * **enabled tracing**: a span costs two clock reads plus one push into
///    a per-thread buffer.
///
/// BM_SimplifyInstrumented shows the end-to-end effect on a real pipeline
/// pass with everything off, metrics on, and metrics+tracing on.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/ExprUtils.h"
#include "gen/Corpus.h"
#include "mba/Simplifier.h"
#include "support/Telemetry.h"

#include <benchmark/benchmark.h>

using namespace mba;
using namespace mba::telemetry;

namespace {

/// Baseline: the measurement loop with no telemetry call at all.
void BM_BaselineLoop(benchmark::State &State) {
  uint64_t X = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(++X);
  }
}
BENCHMARK(BM_BaselineLoop);

void BM_CounterAddDisabled(benchmark::State &State) {
  setMetricsEnabled(false);
  Counter &C = counter("micro.counter_disabled");
  for (auto _ : State)
    C.add();
  benchmark::DoNotOptimize(C.value());
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State &State) {
  setMetricsEnabled(true);
  Counter &C = counter("micro.counter_enabled");
  for (auto _ : State)
    C.add();
  setMetricsEnabled(false);
  benchmark::DoNotOptimize(C.value());
}
BENCHMARK(BM_CounterAddEnabled);

/// The multithreaded enabled case: stripes keep workers off each other's
/// cache lines, so per-op cost should stay flat as threads are added.
void BM_CounterAddEnabledMT(benchmark::State &State) {
  if (State.thread_index() == 0)
    setMetricsEnabled(true);
  Counter &C = counter("micro.counter_enabled_mt");
  for (auto _ : State)
    C.add();
  if (State.thread_index() == 0)
    setMetricsEnabled(false);
}
BENCHMARK(BM_CounterAddEnabledMT)->Threads(1)->Threads(4)->Threads(8);

void BM_HistogramRecordDisabled(benchmark::State &State) {
  setMetricsEnabled(false);
  Histogram &H = histogram("micro.hist_disabled");
  uint64_t V = 0;
  for (auto _ : State)
    H.record(V++);
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_HistogramRecordEnabled(benchmark::State &State) {
  setMetricsEnabled(true);
  Histogram &H = histogram("micro.hist_enabled");
  uint64_t V = 0;
  for (auto _ : State)
    H.record(V++);
  setMetricsEnabled(false);
}
BENCHMARK(BM_HistogramRecordEnabled);

void BM_SpanDisabled(benchmark::State &State) {
  setTracingEnabled(false);
  for (auto _ : State) {
    MBA_TRACE_SPAN("micro.span_disabled");
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State &State) {
  setTracingEnabled(true);
  clearTrace();
  for (auto _ : State) {
    MBA_TRACE_SPAN("micro.span_enabled");
  }
  setTracingEnabled(false);
  clearTrace();
}
BENCHMARK(BM_SpanEnabled);

/// End-to-end: one instrumented simplification pass over a small corpus.
/// Arg 0 = all off, 1 = metrics, 2 = metrics + tracing. The 0-vs-baseline
/// delta is the "disabled overhead < 2%" number the docs cite.
void BM_SimplifyInstrumented(benchmark::State &State) {
  Context Master(64);
  CorpusOptions Opts;
  Opts.LinearCount = Opts.PolyCount = Opts.NonPolyCount = 4;
  std::vector<const Expr *> Exprs;
  for (const CorpusEntry &E : generateCorpus(Master, Opts))
    Exprs.push_back(E.Obfuscated);

  setMetricsEnabled(State.range(0) >= 1);
  setTracingEnabled(State.range(0) >= 2);
  for (auto _ : State) {
    Context Ctx(64);
    MBASolver Solver(Ctx);
    for (const Expr *E : Exprs)
      benchmark::DoNotOptimize(Solver.simplify(cloneExpr(Ctx, E)));
    // Cap trace memory: the span stream of one pass is enough to measure.
    if (State.range(0) >= 2)
      clearTrace();
  }
  setMetricsEnabled(false);
  setTracingEnabled(false);
  clearTrace();
}
BENCHMARK(BM_SimplifyInstrumented)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace
