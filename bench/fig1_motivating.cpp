//===- bench/fig1_motivating.cpp - Figure 1 reproduction ------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Figure 1**: the motivating MBA identity
///
///   x*y == (x&~y)*(~x&y) + (x&y)*(x|y)
///
/// which Z3 cannot refute-the-negation of within an hour at 64 bits. Each
/// backend is given the raw query under a short budget (expected: timeout),
/// then the MBA-Solver-simplified query (expected: instant).
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"

#include <cstdio>

using namespace mba;

int main(int Argc, char **Argv) {
  double Timeout = 2.0;
  for (int I = 1; I < Argc; ++I)
    if (std::sscanf(Argv[I], "--timeout=%lf", &Timeout) == 1)
      continue;

  Context Ctx(64);
  const Expr *Obf = parseOrDie(Ctx, "(x&~y)*(~x&y) + (x&y)*(x|y)");
  const Expr *Ground = parseOrDie(Ctx, "x*y");

  std::printf("=== Figure 1: solve(x*y != (x&~y)*(~x&y) + (x&y)*(x|y)), "
              "64-bit ===\n");
  std::printf("raw query, %.1fs budget (paper: Z3 gets no result in 1 "
              "hour):\n", Timeout);
  auto Checkers = makeAllCheckers();
  for (auto &C : Checkers) {
    CheckResult R = C->check(Ctx, Obf, Ground, Timeout);
    std::printf("  %-12s %-15s %8.3f s\n", C->name().c_str(),
                verdictName(R.Outcome), R.Seconds);
  }

  MBASolver Simplifier(Ctx);
  const Expr *Simple = Simplifier.simplify(Obf);
  std::printf("\nMBA-Solver simplification: %s  ==>  %s   (%.4f s)\n",
              printExpr(Ctx, Obf).c_str(), printExpr(Ctx, Simple).c_str(),
              Simplifier.stats().Seconds);

  std::printf("simplified query:\n");
  for (auto &C : Checkers) {
    CheckResult R = C->check(Ctx, Simple, Ground, Timeout);
    std::printf("  %-12s %-15s %8.3f s\n", C->name().c_str(),
                verdictName(R.Outcome), R.Seconds);
  }
  return 0;
}
