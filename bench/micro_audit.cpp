//===- bench/micro_audit.cpp - Audit-mode overhead micro-benchmarks -------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the cost of the soundness-auditing layer on the paper's corpus
/// path: simplification with the rewrite trail disabled (baseline), with
/// trail recording only, and with a full post-hoc audit replay. A fourth
/// benchmark isolates the IR verifier sweep. Run on a slice of the same
/// generator that produces the 3000-expression corpus, so the ratio between
/// BM_SimplifyCorpus* variants is the audit-mode overhead number.
///
//===----------------------------------------------------------------------===//

#include "analysis/Audit.h"
#include "analysis/Verifier.h"
#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Simplifier.h"

#include <benchmark/benchmark.h>

using namespace mba;

namespace {

/// A deterministic slice of the paper-scale corpus (LinearCount etc. are
/// scaled down so one iteration stays in the millisecond range; the mix of
/// categories matches the 1000/1000/1000 dataset).
std::vector<CorpusEntry> makeCorpus(Context &Ctx, unsigned PerCategory) {
  CorpusOptions Opts;
  Opts.LinearCount = PerCategory;
  Opts.PolyCount = PerCategory;
  Opts.NonPolyCount = PerCategory;
  return generateCorpus(Ctx, Opts);
}

void BM_SimplifyCorpusBaseline(benchmark::State &State) {
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  for (auto _ : State) {
    MBASolver Solver(Ctx);
    for (const CorpusEntry &E : Corpus)
      benchmark::DoNotOptimize(Solver.simplify(E.Obfuscated));
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}
BENCHMARK(BM_SimplifyCorpusBaseline)->Arg(10)->Arg(50);

void BM_SimplifyCorpusWithTrail(benchmark::State &State) {
  // Trail recording only: the overhead of remembering (rule, before, after)
  // per rewrite, without replaying the checks.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  for (auto _ : State) {
    RewriteTrail Trail;
    SimplifyOptions Opts;
    Opts.Trail = &Trail;
    MBASolver Solver(Ctx, Opts);
    for (const CorpusEntry &E : Corpus)
      benchmark::DoNotOptimize(Solver.simplify(E.Obfuscated));
    benchmark::DoNotOptimize(Trail.size());
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}
BENCHMARK(BM_SimplifyCorpusWithTrail)->Arg(10)->Arg(50);

void BM_SimplifyCorpusWithAudit(benchmark::State &State) {
  // Full audit mode: record the trail and replay every step through the
  // structure/abstract/signature/concrete cross-checks.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  for (auto _ : State) {
    RewriteTrail Trail;
    SimplifyOptions Opts;
    Opts.Trail = &Trail;
    MBASolver Solver(Ctx, Opts);
    for (const CorpusEntry &E : Corpus)
      benchmark::DoNotOptimize(Solver.simplify(E.Obfuscated));
    AuditReport Report = auditTrail(Ctx, Trail);
    if (!Report.ok())
      State.SkipWithError("audit found issues in a sound pipeline");
    benchmark::DoNotOptimize(Report.StepsChecked);
  }
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}
BENCHMARK(BM_SimplifyCorpusWithAudit)->Arg(10)->Arg(50);

void BM_VerifyContext(benchmark::State &State) {
  // Whole-context IR verification after a corpus generation + simplify run
  // (linear in the number of interned nodes).
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, 50);
  MBASolver Solver(Ctx);
  for (const CorpusEntry &E : Corpus)
    benchmark::DoNotOptimize(Solver.simplify(E.Obfuscated));
  for (auto _ : State) {
    VerifyResult R = verifyContext(Ctx);
    if (!R.ok())
      State.SkipWithError("context failed verification");
    benchmark::DoNotOptimize(R.ok());
  }
  State.SetItemsProcessed(State.iterations() * Ctx.numNodes());
}
BENCHMARK(BM_VerifyContext);

void BM_AuditReplayOnly(benchmark::State &State) {
  // Isolates the replay cost: one fixed trail, audited repeatedly.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, 20);
  RewriteTrail Trail;
  SimplifyOptions Opts;
  Opts.Trail = &Trail;
  MBASolver Solver(Ctx, Opts);
  for (const CorpusEntry &E : Corpus)
    benchmark::DoNotOptimize(Solver.simplify(E.Obfuscated));
  for (auto _ : State)
    benchmark::DoNotOptimize(auditTrail(Ctx, Trail).StepsChecked);
  State.SetItemsProcessed(State.iterations() * Trail.size());
}
BENCHMARK(BM_AuditReplayOnly);

} // namespace
