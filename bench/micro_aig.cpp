//===- bench/micro_aig.cpp - AIG layer micro-benchmarks -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmarks for the AIG subsystem: construction throughput with
/// structural hashing, CNF size of the carry-lookahead/carry-save encodings
/// against the ripple-carry BitBlaster (the `vars`/`clauses` counters make
/// the comparison directly readable next to micro_sat's), and the
/// incremental guarded-query loop the BlastBV+AIG backend runs.
///
//===----------------------------------------------------------------------===//

#include "aig/Aig.h"
#include "aig/AigBlaster.h"
#include "aig/ExprAig.h"
#include "ast/Context.h"
#include "ast/Parser.h"
#include "sat/Solver.h"

#include <benchmark/benchmark.h>

using namespace mba;
using namespace mba::aig;
using namespace mba::sat;

namespace {

void BM_AigAdder(benchmark::State &State) {
  // Brent-Kung carry-lookahead adder construction (graph only, no CNF).
  unsigned Width = (unsigned)State.range(0);
  uint64_t Nodes = 0;
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    benchmark::DoNotOptimize(B.bvAdd(B.freshWord(), B.freshWord()));
    Nodes = G.numNodes();
  }
  State.counters["nodes"] = (double)Nodes;
}
BENCHMARK(BM_AigAdder)->Arg(8)->Arg(32)->Arg(64);

void BM_AigMultiplier(benchmark::State &State) {
  // Carry-save-array multiplier construction.
  unsigned Width = (unsigned)State.range(0);
  uint64_t Nodes = 0;
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    benchmark::DoNotOptimize(B.bvMul(B.freshWord(), B.freshWord()));
    Nodes = G.numNodes();
  }
  State.counters["nodes"] = (double)Nodes;
}
BENCHMARK(BM_AigMultiplier)->Arg(8)->Arg(16)->Arg(32);

void BM_AigStrashSharing(benchmark::State &State) {
  // Re-building the same adder against one graph: after the first round
  // every mkAnd is a strash hit, so this measures pure lookup throughput.
  unsigned Width = (unsigned)State.range(0);
  Aig G;
  AigBlaster B(G, Width);
  AigBlaster::Word X = B.freshWord(), Y = B.freshWord();
  B.bvAdd(X, Y); // populate
  uint64_t Hits = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(B.bvAdd(X, Y));
    Hits = G.stats().StrashHits;
  }
  State.counters["strash_hits"] = (double)Hits;
}
BENCHMARK(BM_AigStrashSharing)->Arg(32);

void BM_AigEncodeAdderCnf(benchmark::State &State) {
  // CNF size/time of the carry-lookahead adder; compare with micro_sat's
  // BM_BlastAdder (ripple-carry) counters.
  unsigned Width = (unsigned)State.range(0);
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    AigBlaster::Word Sum = B.bvAdd(B.freshWord(), B.freshWord());
    SatSolver S;
    CnfEmitter Em(G, S);
    for (AigLit L : Sum)
      benchmark::DoNotOptimize(Em.emit(L));
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_AigEncodeAdderCnf)->Arg(8)->Arg(32)->Arg(64);

void BM_AigEncodeMultiplierCnf(benchmark::State &State) {
  unsigned Width = (unsigned)State.range(0);
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    AigBlaster::Word Prod = B.bvMul(B.freshWord(), B.freshWord());
    SatSolver S;
    CnfEmitter Em(G, S);
    for (AigLit L : Prod)
      benchmark::DoNotOptimize(Em.emit(L));
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_AigEncodeMultiplierCnf)->Arg(8)->Arg(16)->Arg(32);

void BM_AigLinearMBAEquivalenceUnsat(benchmark::State &State) {
  // The same miter micro_sat solves over ripple-carry, over the AIG path.
  unsigned Width = (unsigned)State.range(0);
  Context Ctx(Width);
  const Expr *L = parseOrDie(Ctx, "(x&~y) + y");
  const Expr *R = parseOrDie(Ctx, "x|y");
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    ExprAig EA(B);
    SatSolver S;
    CnfEmitter Em(G, S);
    AigLit Root = B.disequalLit(EA.blast(L), EA.blast(R));
    if (Root == Aig::falseLit()) {
      benchmark::DoNotOptimize(Root); // rewriting decided it
      continue;
    }
    S.addClause({Em.emit(Root)});
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_AigLinearMBAEquivalenceUnsat)->Arg(8)->Arg(16)->Arg(32);

void BM_AigIncrementalQueryLoop(benchmark::State &State) {
  // The BlastBV+AIG protocol over a batch of related miters: persistent
  // graph + solver, per-query guard literal, retire with a unit, simplify.
  unsigned Width = (unsigned)State.range(0);
  Context Ctx(Width);
  const char *Pairs[][2] = {
      {"(x&~y) + y", "x|y"},
      {"(x|y) - y", "x&~y"},
      {"(x^y) + 2*(x&y)", "x+y"},
      {"x - (x&y)", "x&~y"},
  };
  for (auto _ : State) {
    Aig G;
    AigBlaster B(G, Width);
    ExprAig EA(B);
    SatSolver S;
    CnfEmitter Em(G, S);
    for (auto &P : Pairs) {
      AigLit Root = B.disequalLit(EA.blast(parseOrDie(Ctx, P[0])),
                                  EA.blast(parseOrDie(Ctx, P[1])));
      if (Root == Aig::falseLit())
        continue;
      Lit Guard(S.newVar(), false);
      S.addClause({~Guard, Em.emit(Root)});
      Lit Assumptions[1] = {Guard};
      benchmark::DoNotOptimize(S.solve(Assumptions));
      S.addClause({~Guard});
      S.simplify();
    }
  }
}
BENCHMARK(BM_AigIncrementalQueryLoop)->Arg(8)->Arg(16);

} // namespace
