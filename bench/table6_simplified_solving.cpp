//===- bench/table6_simplified_solving.cpp - Table 6 reproduction ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Table 6**: solver performance after MBA-Solver
/// preprocessing. Expected shape (paper): every solver jumps from <17% to
/// 96.5% solved, linear and poly categories complete in ~0.01-0.04 s each,
/// and the differences between solvers vanish.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  // Stage 0 (on by default, --static-prove=0 to disable): the static
  // equivalence prover short-circuits queries before bit-blast/SMT. Sound,
  // so the table's verdicts are identical either way. --jobs=N fans the
  // corpus out over per-worker contexts; verdicts are identical for any
  // job count.
  StudyConfig Config;
  Config.TimeoutSeconds = Opts.TimeoutSeconds;
  Config.Jobs = Opts.Jobs;
  // --simplify=0 skips the paper's preprocessing and feeds the raw corpus
  // to the same solver matrix — the one-binary before/after ablation, and
  // the configuration that actually exercises the incremental SAT path
  // (simplified queries collapse structurally on the shared AIG).
  Config.Simplify = Opts.Simplify;
  Config.StageZero = Opts.StageZeroProver;
  // --cache=1 shares the semantic memoization layer across the study;
  // --cache-file=PATH additionally loads/saves a snapshot, so a second run
  // starts warm. Verdicts are bit-identical either way.
  std::unique_ptr<PipelineCaches> Caches = makePipelineCaches(Opts);
  Config.Caches = Caches.get();
  StudyResult Result = runSolvingStudyParallel(
      Ctx, Corpus,
      [&Opts](Context &) { return makeAllCheckers(Opts.IncrementalAig); },
      Config);
  savePipelineCaches(Opts, Caches.get());
  printSolverCategoryTable(
      Result.Records, Opts.PerCategory,
      "Table 6: solving after MBA-Solver simplification (timeout " +
          formatSeconds(Opts.TimeoutSeconds) + "s, width " +
          std::to_string(Opts.Width) + ")");
  if (Opts.StageZeroProver)
    printStageZeroStats(Result.StaticStats);
  if (Caches)
    printCacheStats(*Caches);

  std::printf("Simplification preprocessing cost (Table 8 reports details): "
              "%.3f s total for %zu expressions\n",
              Result.SimplifySeconds, Corpus.size() * 2);
  std::printf("Solve loop wall-clock: %.3f s on %u job(s); corpus cloning "
              "%.3f s; pool tasks %llu, steals %llu, idle waits %llu\n",
              Result.WallSeconds, Result.Jobs, Result.CloneSeconds,
              (unsigned long long)Result.Pool.Tasks,
              (unsigned long long)Result.Pool.Steals,
              (unsigned long long)Result.Pool.IdleWaits);
  if (!Opts.JsonPath.empty())
    writeStudyJson(Opts.JsonPath, "table6", Opts, Result);
  exportTelemetry(Opts);
  std::printf("\nPaper reference (Table 6): all solvers 2894/3000 (96.5%%) "
              "solved;\n");
  std::printf("  linear/poly averages 0.01-0.02 s; non-poly 894/1000 with "
              "~0.2 s averages.\n");
  return 0;
}
