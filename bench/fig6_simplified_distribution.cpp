//===- bench/fig6_simplified_distribution.cpp - Figure 6 reproduction -----===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Figure 6**: Z3's solving-time distribution with MBA-Solver
/// preprocessing. Expected shape (paper): nearly every query completes, in
/// hundredths of a second, with a thin tail from the hard non-poly
/// residue.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  MBASolver Simplifier(Ctx);
  auto Checkers = makeAllCheckers();
  auto Records =
      runSolvingStudy(Ctx, Corpus, Checkers, Opts.TimeoutSeconds, &Simplifier);
  printTimeDistribution(
      Records, Opts.TimeoutSeconds,
      "Figure 6: solving-time distribution with MBA-Solver simplification");

  std::printf("Paper reference (Figure 6): with simplification, Z3 solves "
              "96.5%% of the corpus,\n");
  std::printf("almost all of it in under 0.1 s.\n");
  exportTelemetry(Opts);
  return 0;
}
