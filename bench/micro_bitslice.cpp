//===- bench/micro_bitslice.cpp - Bitsliced evaluation benchmarks ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the bitsliced (transposed) evaluation path against
/// the scalar baseline it replaced:
///  * signature construction (computeSignature vs computeSignatureScalar) —
///    the hot loop of classification and simplification, and the headline
///    ">= 10x at 3 variables / width 64" number in docs/PERF.md;
///  * batch point evaluation (BitslicedExpr vs CompiledExpr vs evaluate) —
///    the sampling-refutation and fuzz-agreement workload;
///  * the raw 64x64 bit-matrix transpose primitive;
///  * the wide-engine kernels (and/or/xor/add/mul/transpose) once per
///    supported ISA back end, reporting lanes/cycle and bytes/cycle so the
///    AVX2/AVX-512 win is machine-readable in the bench-smoke artifact
///    (`--benchmark_format=json`, counters `lanes_per_cycle` and
///    `bytes_per_cycle`).
///
/// `micro_bitslice --signature-dump` bypasses google-benchmark and prints a
/// deterministic signature/batch fingerprint for a fixed expression set on
/// the currently dispatched ISA (MBA_FORCE_ISA honoured, never echoed);
/// CI runs it under MBA_FORCE_ISA=scalar and the best ISA and asserts the
/// outputs are byte-identical.
///
//===----------------------------------------------------------------------===//

#include "ast/BitslicedEval.h"
#include "ast/CompiledEval.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "gen/Corpus.h"
#include "mba/Signature.h"
#include "support/Bitslice.h"
#include "support/RNG.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h> // NOLINT(mba-isa-outside-seam): __rdtsc cycle counter, not SIMD dispatch
#endif

using namespace mba;

namespace {

// The signature workload: obfuscated corpus entries. Pick a median-size
// 3-variable linear entry from the regenerated paper corpus.
const Expr *corpusLinear3(Context &Ctx) {
  CorpusOptions Opts;
  Opts.LinearCount = 40;
  Opts.PolyCount = 0;
  Opts.NonPolyCount = 0;
  Opts.MinVars = 3;
  Opts.MaxVars = 3;
  Opts.IncludeSeedIdentities = false;
  std::vector<CorpusEntry> Corpus = generateCorpus(Ctx, Opts);
  return Corpus[Corpus.size() / 2].Obfuscated;
}

void BM_SignatureScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  std::vector<const Expr *> Vars;
  for (const Expr *V : collectVariables(E))
    Vars.push_back(V);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureScalar);

void BM_SignatureBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  std::vector<const Expr *> Vars;
  for (const Expr *V : collectVariables(E))
    Vars.push_back(V);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureBitsliced);

// Cold-path cost: compiling the bitsliced program for the corpus entry.
// computeSignature amortizes this through Context::getBitsliced (pointer
// identity = structural identity), so the warm numbers above pay it only
// on the first signature of each distinct DAG.
void BM_SignatureBitslicedColdCompile(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  for (auto _ : State) {
    BitslicedExpr Compiled(Ctx, E);
    benchmark::DoNotOptimize(&Compiled);
  }
}
BENCHMARK(BM_SignatureBitslicedColdCompile);

// A small handwritten linear MBA: the lower bound on expression size,
// where per-call compile overhead is the whole story.
const char *SampleLinear3 =
    "2*(x|y) - (~x&y) - (x&~y) + 4*(x^y) - 3*(x&y) + (x&z) - (y|z)";

void BM_SignatureSmallScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                    Ctx.getVar("z")};
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureSmallScalar);

void BM_SignatureSmallBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                    Ctx.getVar("z")};
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureSmallBitsliced);

// Eight-variable signatures: 256 corners = four full 64-lane blocks.
const char *SampleLinear8 = "(a&b) + 2*(c|d) - (e^f) + 3*(g&~h) - (a|h)";

void BM_Signature8VarScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear8);
  std::vector<const Expr *> Vars;
  for (const char *Name : {"a", "b", "c", "d", "e", "f", "g", "h"})
    Vars.push_back(Ctx.getVar(Name));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_Signature8VarScalar);

void BM_Signature8VarBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear8);
  std::vector<const Expr *> Vars;
  for (const char *Name : {"a", "b", "c", "d", "e", "f", "g", "h"})
    Vars.push_back(Ctx.getVar(Name));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_Signature8VarBitsliced);

// Batch evaluation of 4096 random points (the sampling/fuzz workload).
constexpr size_t BatchPoints = 4096;

void BM_Batch4096Interpreted(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  for (auto _ : State) {
    uint64_t Acc = 0;
    for (size_t I = 0; I != BatchPoints; ++I) {
      std::vector<uint64_t> Vals = {X[I], Y[I], Z[I]};
      Acc ^= evaluate(Ctx, E, Vals);
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_Batch4096Interpreted);

void BM_Batch4096Compiled(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  CompiledExpr Compiled(Ctx, E);
  std::vector<uint64_t> Vals(3);
  for (auto _ : State) {
    uint64_t Acc = 0;
    for (size_t I = 0; I != BatchPoints; ++I) {
      Vals[0] = X[I];
      Vals[1] = Y[I];
      Vals[2] = Z[I];
      Acc ^= Compiled.evaluate(Vals);
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_Batch4096Compiled);

void BM_Batch4096Bitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  BitslicedExpr Compiled(Ctx, E);
  const uint64_t *Ptrs[] = {X.data(), Y.data(), Z.data()};
  for (auto _ : State) {
    std::vector<uint64_t> Out = Compiled.evaluatePoints(Ptrs, BatchPoints);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_Batch4096Bitsliced);

void BM_Transpose64(benchmark::State &State) {
  RNG Rng(11);
  uint64_t M[64];
  for (uint64_t &W : M)
    W = Rng.next();
  for (auto _ : State) {
    bitslice::transpose64(M);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_Transpose64);

//===----------------------------------------------------------------------===//
// Per-ISA wide-kernel throughput: lanes/cycle and bytes/cycle
//===----------------------------------------------------------------------===//

#if defined(__x86_64__) || defined(_M_X64)
inline uint64_t cycleCounter() { return __rdtsc(); }
constexpr bool HaveCycleCounter = true;
#else
inline uint64_t cycleCounter() { return 0; }
constexpr bool HaveCycleCounter = false;
#endif

// One kernel invocation's footprint, for the derived counters. Lanes is
// the number of 64-bit lanes advanced per call; Bytes is the memory
// traffic (reads + writes) the call performs.
struct KernelShape {
  uint64_t Lanes;
  uint64_t Bytes;
};

constexpr unsigned KernelLanes = 4096;

// Times Fn (one kernel call) under the benchmark loop, reads the TSC
// around each call, and reports lanes/cycle and bytes/cycle counters.
// TSC on current x86 is constant-rate rather than core-clock, which is
// exactly what a cross-run artifact wants: the ratio AVX-512/AVX2/scalar
// is what the bench-smoke job tracks, not an absolute IPC claim.
template <typename Fn>
void runKernelBench(benchmark::State &State, KernelShape Shape, Fn &&Call) {
  uint64_t Cycles = 0;
  for (auto _ : State) {
    uint64_t T0 = cycleCounter();
    Call();
    Cycles += cycleCounter() - T0;
  }
  uint64_t Iters = (uint64_t)State.iterations();
  State.SetItemsProcessed((int64_t)(Iters * Shape.Lanes));
  State.SetBytesProcessed((int64_t)(Iters * Shape.Bytes));
  if (HaveCycleCounter && Cycles) {
    State.counters["lanes_per_cycle"] =
        benchmark::Counter((double)(Iters * Shape.Lanes) / (double)Cycles);
    State.counters["bytes_per_cycle"] =
        benchmark::Counter((double)(Iters * Shape.Bytes) / (double)Cycles);
  }
}

struct KernelInputs {
  std::vector<uint64_t> A, B, Out;
  KernelInputs() : A(KernelLanes), B(KernelLanes), Out(KernelLanes) {
    RNG Rng(13);
    for (unsigned I = 0; I != KernelLanes; ++I) {
      A[I] = Rng.next();
      B[I] = Rng.next();
    }
  }
};

// Registered once per supported ISA from main(): wide_<kernel>/<isa>.
void registerWideKernelBenches() {
  using bitslice::Isa;
  using bitslice::WideKernels;
  constexpr uint64_t LaneBytes = 3 * 8ull * KernelLanes; // A + B + Out
  for (Isa I : {Isa::Scalar, Isa::Avx2, Isa::Avx512}) {
    if (!bitslice::isaSupported(I))
      continue;
    const WideKernels &K = bitslice::kernelsFor(I);
    const std::string Suffix = std::string("/") + bitslice::isaName(I);
    auto Reg = [&](const char *Name, auto Fn, KernelShape Shape) {
      benchmark::RegisterBenchmark(("wide_" + std::string(Name) + Suffix).c_str(),
                                   [Fn, Shape](benchmark::State &State) {
                                     static KernelInputs In;
                                     runKernelBench(State, Shape, [&] {
                                       Fn(In.A.data(), In.B.data(),
                                          In.Out.data());
                                     });
                                   });
    };
    KernelShape Lane{KernelLanes, LaneBytes};
    Reg("and", [&K](const uint64_t *A, const uint64_t *B,
                    uint64_t *Out) { K.LaneAnd(A, B, Out, KernelLanes); },
        Lane);
    Reg("or", [&K](const uint64_t *A, const uint64_t *B,
                   uint64_t *Out) { K.LaneOr(A, B, Out, KernelLanes); },
        Lane);
    Reg("xor", [&K](const uint64_t *A, const uint64_t *B,
                    uint64_t *Out) { K.LaneXor(A, B, Out, KernelLanes); },
        Lane);
    Reg("add",
        [&K](const uint64_t *A, const uint64_t *B, uint64_t *Out) {
          K.LaneAddM(A, B, Out, KernelLanes, ~0ull);
        },
        Lane);
    Reg("mul",
        [&K](const uint64_t *A, const uint64_t *B, uint64_t *Out) {
          K.LaneMulM(A, B, Out, KernelLanes, ~0ull);
        },
        Lane);
    // Transpose works in-place over KernelLanes/64 blocks of 64 words:
    // every word is read and written once.
    constexpr unsigned Blocks = KernelLanes / 64;
    benchmark::RegisterBenchmark(
        ("wide_transpose" + Suffix).c_str(), [&K](benchmark::State &State) {
          static KernelInputs In;
          runKernelBench(State,
                         KernelShape{KernelLanes, 2 * 8ull * KernelLanes},
                         [&] { K.TransposeBlocks(In.A.data(), Blocks); });
        });
  }
}

//===----------------------------------------------------------------------===//
// --signature-dump: deterministic fingerprint for scalar-vs-SIMD CI diff
//===----------------------------------------------------------------------===//

// Prints signatures and a batch-evaluation digest for a fixed expression
// set on whatever ISA the wide engine currently dispatches to. The output
// deliberately never names the ISA: CI diffs two runs byte-for-byte.
int signatureDump() {
  for (unsigned Width : {8u, 16u, 32u, 64u}) {
    Context Ctx(Width);
    struct Case {
      const char *Text;
      std::vector<const char *> Vars;
    } Cases[] = {
        {SampleLinear3, {"x", "y", "z"}},
        {SampleLinear8, {"a", "b", "c", "d", "e", "f", "g", "h"}},
        {"(x ^ (y + 1)) * 3 - (x | ~y)", {"x", "y"}},
        {"~x + 2*(x & 0x5555) - (x | 0x1234)", {"x"}},
    };
    for (const Case &C : Cases) {
      const Expr *E = parseOrDie(Ctx, C.Text);
      std::vector<const Expr *> Vars;
      for (const char *Name : C.Vars)
        Vars.push_back(Ctx.getVar(Name));
      std::printf("sig w%u v%zu", Width, Vars.size());
      for (uint64_t S : computeSignature(Ctx, E, Vars))
        std::printf(" %016llx", (unsigned long long)S);
      std::printf("\n");

      // Batch evaluation over an awkward point count (padding tail paths
      // differ per backend and must still agree).
      constexpr size_t N = 173;
      RNG Rng(99 + Width);
      std::vector<std::vector<uint64_t>> Inputs(Vars.size());
      std::vector<const uint64_t *> Ptrs;
      for (auto &Col : Inputs) {
        Col.resize(N);
        for (uint64_t &V : Col)
          V = Rng.next() & Ctx.mask();
        Ptrs.push_back(Col.data());
      }
      BitslicedExpr Compiled(Ctx, E);
      uint64_t Digest = 0x9e3779b97f4a7c15ull;
      for (uint64_t V : Compiled.evaluatePoints({Ptrs.data(), Ptrs.size()}, N))
        Digest = (Digest ^ V) * 0x2545f4914f6cdd1dull;
      std::printf("batch w%u v%zu n%zu %016llx\n", Width, Vars.size(), N,
                  (unsigned long long)Digest);
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I != argc; ++I)
    if (std::string_view(argv[I]) == "--signature-dump")
      return signatureDump();
  registerWideKernelBenches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
