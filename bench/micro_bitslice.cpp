//===- bench/micro_bitslice.cpp - Bitsliced evaluation benchmarks ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the bitsliced (transposed) evaluation path against
/// the scalar baseline it replaced:
///  * signature construction (computeSignature vs computeSignatureScalar) —
///    the hot loop of classification and simplification, and the headline
///    ">= 10x at 3 variables / width 64" number in docs/PERF.md;
///  * batch point evaluation (BitslicedExpr vs CompiledExpr vs evaluate) —
///    the sampling-refutation and fuzz-agreement workload;
///  * the raw 64x64 bit-matrix transpose primitive.
///
//===----------------------------------------------------------------------===//

#include "ast/BitslicedEval.h"
#include "ast/CompiledEval.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "gen/Corpus.h"
#include "mba/Signature.h"
#include "support/Bitslice.h"
#include "support/RNG.h"

#include <benchmark/benchmark.h>

using namespace mba;

namespace {

// The signature workload: obfuscated corpus entries. Pick a median-size
// 3-variable linear entry from the regenerated paper corpus.
const Expr *corpusLinear3(Context &Ctx) {
  CorpusOptions Opts;
  Opts.LinearCount = 40;
  Opts.PolyCount = 0;
  Opts.NonPolyCount = 0;
  Opts.MinVars = 3;
  Opts.MaxVars = 3;
  Opts.IncludeSeedIdentities = false;
  std::vector<CorpusEntry> Corpus = generateCorpus(Ctx, Opts);
  return Corpus[Corpus.size() / 2].Obfuscated;
}

void BM_SignatureScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  std::vector<const Expr *> Vars;
  for (const Expr *V : collectVariables(E))
    Vars.push_back(V);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureScalar);

void BM_SignatureBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  std::vector<const Expr *> Vars;
  for (const Expr *V : collectVariables(E))
    Vars.push_back(V);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureBitsliced);

// Cold-path cost: compiling the bitsliced program for the corpus entry.
// computeSignature amortizes this through Context::getBitsliced (pointer
// identity = structural identity), so the warm numbers above pay it only
// on the first signature of each distinct DAG.
void BM_SignatureBitslicedColdCompile(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = corpusLinear3(Ctx);
  for (auto _ : State) {
    BitslicedExpr Compiled(Ctx, E);
    benchmark::DoNotOptimize(&Compiled);
  }
}
BENCHMARK(BM_SignatureBitslicedColdCompile);

// A small handwritten linear MBA: the lower bound on expression size,
// where per-call compile overhead is the whole story.
const char *SampleLinear3 =
    "2*(x|y) - (~x&y) - (x&~y) + 4*(x^y) - 3*(x&y) + (x&z) - (y|z)";

void BM_SignatureSmallScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                    Ctx.getVar("z")};
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureSmallScalar);

void BM_SignatureSmallBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  std::vector<const Expr *> Vars = {Ctx.getVar("x"), Ctx.getVar("y"),
                                    Ctx.getVar("z")};
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_SignatureSmallBitsliced);

// Eight-variable signatures: 256 corners = four full 64-lane blocks.
const char *SampleLinear8 = "(a&b) + 2*(c|d) - (e^f) + 3*(g&~h) - (a|h)";

void BM_Signature8VarScalar(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear8);
  std::vector<const Expr *> Vars;
  for (const char *Name : {"a", "b", "c", "d", "e", "f", "g", "h"})
    Vars.push_back(Ctx.getVar(Name));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignatureScalar(Ctx, E, Vars));
}
BENCHMARK(BM_Signature8VarScalar);

void BM_Signature8VarBitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear8);
  std::vector<const Expr *> Vars;
  for (const char *Name : {"a", "b", "c", "d", "e", "f", "g", "h"})
    Vars.push_back(Ctx.getVar(Name));
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E, Vars));
}
BENCHMARK(BM_Signature8VarBitsliced);

// Batch evaluation of 4096 random points (the sampling/fuzz workload).
constexpr size_t BatchPoints = 4096;

void BM_Batch4096Interpreted(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  for (auto _ : State) {
    uint64_t Acc = 0;
    for (size_t I = 0; I != BatchPoints; ++I) {
      std::vector<uint64_t> Vals = {X[I], Y[I], Z[I]};
      Acc ^= evaluate(Ctx, E, Vals);
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_Batch4096Interpreted);

void BM_Batch4096Compiled(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  CompiledExpr Compiled(Ctx, E);
  std::vector<uint64_t> Vals(3);
  for (auto _ : State) {
    uint64_t Acc = 0;
    for (size_t I = 0; I != BatchPoints; ++I) {
      Vals[0] = X[I];
      Vals[1] = Y[I];
      Vals[2] = Z[I];
      Acc ^= Compiled.evaluate(Vals);
    }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_Batch4096Compiled);

void BM_Batch4096Bitsliced(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear3);
  RNG Rng(7);
  std::vector<uint64_t> X(BatchPoints), Y(BatchPoints), Z(BatchPoints);
  for (size_t I = 0; I != BatchPoints; ++I) {
    X[I] = Rng.next();
    Y[I] = Rng.next();
    Z[I] = Rng.next();
  }
  BitslicedExpr Compiled(Ctx, E);
  const uint64_t *Ptrs[] = {X.data(), Y.data(), Z.data()};
  for (auto _ : State) {
    std::vector<uint64_t> Out = Compiled.evaluatePoints(Ptrs, BatchPoints);
    benchmark::DoNotOptimize(Out.data());
  }
}
BENCHMARK(BM_Batch4096Bitsliced);

void BM_Transpose64(benchmark::State &State) {
  RNG Rng(11);
  uint64_t M[64];
  for (uint64_t &W : M)
    W = Rng.next();
  for (auto _ : State) {
    bitslice::transpose64(M);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_Transpose64);

} // namespace
