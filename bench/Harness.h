//===- bench/Harness.h - Shared benchmark driver code -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure reproduction binaries: corpus
/// setup, the solver-study loop (raw and simplified variants), per-category
/// aggregation in the paper's [N, Tmin/Tmax, Tavg] format, and text
/// rendering of tables and distribution "figures".
///
/// Scaling: the paper runs 3000 queries per solver with a one-hour timeout
/// on a Xeon server; the defaults here run a deterministic sub-corpus with
/// a seconds-scale timeout so the whole suite finishes in minutes. Every
/// binary accepts --per-category=N, --timeout=SECONDS, --width=BITS and
/// --seed=N to re-run at larger scale. EXPERIMENTS.md records the scaling
/// next to each reproduced number.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_BENCH_HARNESS_H
#define MBA_BENCH_HARNESS_H

#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"

#include <memory>
#include <string>
#include <vector>

namespace mba::bench {

/// Command-line-tunable experiment scale.
struct HarnessOptions {
  unsigned PerCategory = 40;   ///< corpus entries per category (paper: 1000)
  double TimeoutSeconds = 1.0; ///< per-query budget (paper: 3600)
  unsigned Width = 64;         ///< word width (paper: 64)
  uint64_t Seed = 20210620;
  /// Run the static equivalence prover as stage 0 in front of every
  /// backend (benches that opt in call addStageZeroProver). Sound either
  /// way — verdicts are identical with or without it.
  bool StageZeroProver = true;
};

/// Parses --per-category / --timeout / --width / --seed / --static-prove
/// overrides.
HarnessOptions parseHarnessArgs(int Argc, char **Argv);

/// One solver query outcome.
struct QueryRecord {
  std::string Solver;
  MBAKind Category;
  Verdict Outcome = Verdict::Timeout;
  double Seconds = 0;
  size_t EntryIndex = 0;
};

/// Runs every (checker, corpus entry) pair on the identity query. When
/// \p Simplifier is non-null, both sides are preprocessed through it first
/// (the paper's MBA-Solver-assisted configuration of Table 6); solver time
/// excludes preprocessing, which the paper reports separately (Table 8).
std::vector<QueryRecord>
runSolvingStudy(Context &Ctx, const std::vector<CorpusEntry> &Corpus,
                std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
                double TimeoutSeconds, MBASolver *Simplifier);

/// Prints the Table 2 / Table 6 layout: one block per solver with per-
/// category N, [Tmin, Tmax], Tavg and the total solved count.
void printSolverCategoryTable(const std::vector<QueryRecord> &Records,
                              size_t CorpusSizePerCategory,
                              const std::string &Title);

/// Prints a solving-time distribution "figure": per solver, the sorted
/// solved-query times as percentiles plus an ASCII cumulative curve
/// (Figures 4 and 6 are exactly these curves).
void printTimeDistribution(const std::vector<QueryRecord> &Records,
                           double TimeoutSeconds, const std::string &Title);

/// Convenience: formats seconds with three decimals.
std::string formatSeconds(double S);

/// Wraps every checker in \p Checkers with the stage-0 static prover
/// (makeStagedChecker), all feeding the shared \p Stats counters. \p Stats
/// must outlive the checkers.
void addStageZeroProver(
    Context &Ctx, std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    StageZeroStats &Stats);

/// Prints the stage-0 counters accumulated by a staged run: the
/// proved/refuted/fallthrough split (how many queries never reached a
/// solver), static vs solver wall-clock, and saturation statistics.
void printStageZeroStats(const StageZeroStats &Stats);

} // namespace mba::bench

#endif // MBA_BENCH_HARNESS_H
