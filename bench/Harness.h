//===- bench/Harness.h - Shared benchmark driver code -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure reproduction binaries: corpus
/// setup, the solver-study loop (raw and simplified variants), per-category
/// aggregation in the paper's [N, Tmin/Tmax, Tavg] format, and text
/// rendering of tables and distribution "figures".
///
/// Scaling: the paper runs 3000 queries per solver with a one-hour timeout
/// on a Xeon server; the defaults here run a deterministic sub-corpus with
/// a seconds-scale timeout so the whole suite finishes in minutes. Every
/// binary accepts --per-category=N, --timeout=SECONDS, --width=BITS and
/// --seed=N to re-run at larger scale. EXPERIMENTS.md records the scaling
/// next to each reproduced number.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_BENCH_HARNESS_H
#define MBA_BENCH_HARNESS_H

#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Simplifier.h"
#include "mba/SimplifyCache.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mba::bench {

/// Command-line-tunable experiment scale.
struct HarnessOptions {
  unsigned PerCategory = 40;   ///< corpus entries per category (paper: 1000)
  double TimeoutSeconds = 1.0; ///< per-query budget (paper: 3600)
  unsigned Width = 64;         ///< word width (paper: 64)
  uint64_t Seed = 20210620;
  /// Run the static equivalence prover as stage 0 in front of every
  /// backend (benches that opt in call addStageZeroProver). Sound either
  /// way — verdicts are identical with or without it.
  bool StageZeroProver = true;
  /// Worker threads for the solving loop: 0 = hardware concurrency,
  /// 1 = the exact serial path on the main context.
  unsigned Jobs = 0;
  /// Run the BlastBV+AIG backend incrementally (one persistent guarded
  /// SAT instance per worker, recycled on its reset window) instead of a
  /// fresh solver per query. Verdicts are identical either way; only
  /// timing and the sat.incremental.* counters change.
  bool IncrementalAig = true;
  /// MBA-Solver preprocessing for the benches that default to it
  /// (table6/fig6). --simplify=0 feeds the raw corpus to the same solver
  /// matrix — the ablation that shows the paper's before/after in one
  /// binary, and the config CI uses to drive the incremental SAT path
  /// (simplified queries collapse structurally on the AIG and never
  /// reach a solver).
  bool Simplify = true;
  /// When non-empty, the study also writes a machine-readable JSON report
  /// here (writeStudyJson).
  std::string JsonPath;
  /// Share the semantic memoization layer (simplify / basis / verdict
  /// caches) across the whole study. Verdicts and simplified expressions
  /// are bit-identical with caching on or off; only timing changes.
  bool Cache = false;
  /// Snapshot path: loaded (if present) before the study, saved after it.
  /// Implies Cache.
  std::string CacheFile;
  /// When non-empty, tracing spans are enabled for the study and a Chrome
  /// trace-event JSON (chrome://tracing / Perfetto loadable) is written
  /// here afterwards.
  std::string TracePath;
  /// When non-empty, metrics are enabled and a Prometheus-style text dump
  /// of the unified telemetry registry is written here after the study.
  /// Metrics are also enabled (and embedded in the report) with --json.
  std::string MetricsPath;
  /// When non-empty, the per-query flight recorder (support/QueryLog.h) is
  /// enabled for the study and every simplify/equivalence query appends one
  /// JSONL record here. Purely observational: verdicts and simplified
  /// expressions are bit-identical with or without a log.
  std::string QueryLogPath;
};

/// Parses --per-category / --timeout / --width / --seed / --static-prove /
/// --jobs / --incremental / --simplify / --json / --cache / --cache-file /
/// --trace / --metrics / --query-log overrides.
HarnessOptions parseHarnessArgs(int Argc, char **Argv);

/// Turns telemetry on as Opts asks (tracing for --trace, metrics for
/// --trace/--metrics/--json) and clears any stale trace events. Call once
/// before the study; pair with exportTelemetry after it.
void enableTelemetry(const HarnessOptions &Opts);

/// Writes the trace / metrics files Opts configured (warning on stderr on
/// I/O failure). No-op for paths left empty.
void exportTelemetry(const HarnessOptions &Opts);

/// The three shared caches of one study run, built at a fixed word width.
/// All members are internally synchronized; one PipelineCaches can feed
/// every worker of a parallel study and persist across runs via the
/// snapshot format (support/Cache.h).
struct PipelineCaches {
  explicit PipelineCaches(unsigned Width);

  unsigned Width;
  SimplifyCache Simplify;
  BasisCache Basis;
  VerdictCache Verdicts;
  /// Publishes every cache's hit/miss/entry counters into the telemetry
  /// registry (cache.<layer>.<counter>) for the lifetime of this object.
  telemetry::SourceHandle Telemetry;

  /// Loads a snapshot written by saveTo(). Unknown sections are skipped;
  /// a missing file, bad magic, version or width mismatch fails with
  /// \p Err set and leaves the caches unchanged (partial corruption drops
  /// the remainder of the file only).
  bool loadFrom(const std::string &Path, std::string &Err);

  /// Writes every cache as one snapshot file.
  bool saveTo(const std::string &Path, std::string &Err) const;
};

/// Builds the cache set Opts asks for: null when caching is off, otherwise
/// fresh caches pre-loaded from Opts.CacheFile when that file exists (a
/// load failure warns on stderr and starts cold).
std::unique_ptr<PipelineCaches> makePipelineCaches(const HarnessOptions &Opts);

/// Persists \p Caches to Opts.CacheFile when one is configured (no-op
/// otherwise); warns on stderr if the write fails.
void savePipelineCaches(const HarnessOptions &Opts,
                        const PipelineCaches *Caches);

/// Prints the hit/miss/entry counters of every cache in \p Caches.
void printCacheStats(const PipelineCaches &Caches);

/// One solver query outcome.
struct QueryRecord {
  std::string Solver;
  MBAKind Category;
  Verdict Outcome = Verdict::Timeout;
  double Seconds = 0;
  size_t EntryIndex = 0;
};

/// Runs every (checker, corpus entry) pair on the identity query. When
/// \p Simplifier is non-null, both sides are preprocessed through it first
/// (the paper's MBA-Solver-assisted configuration of Table 6); solver time
/// excludes preprocessing, which the paper reports separately (Table 8).
std::vector<QueryRecord>
runSolvingStudy(Context &Ctx, const std::vector<CorpusEntry> &Corpus,
                std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
                double TimeoutSeconds, MBASolver *Simplifier);

/// Builds the checker set for one context. Called once per worker in a
/// parallel study, so every backend instance is private to its thread.
using CheckerFactory =
    std::function<std::vector<std::unique_ptr<EquivalenceChecker>>(
        Context &Ctx)>;

/// Configuration for runSolvingStudyParallel.
struct StudyConfig {
  double TimeoutSeconds = 1.0;
  /// Worker threads. 1 runs the serial loop inline on the main context —
  /// bit-identical to runSolvingStudy. 0 = hardware concurrency.
  unsigned Jobs = 1;
  /// Preprocess both sides through a per-worker MBASolver (Table 6's
  /// configuration) before handing them to the checkers.
  bool Simplify = false;
  /// Wrap every checker in the stage-0 static prover (addStageZeroProver);
  /// counters are merged across workers into StudyResult::StaticStats.
  bool StageZero = false;
  /// Shared memoization layer: simplify/basis caches feed every worker's
  /// MBASolver, the verdict cache short-circuits the staged checkers. Null
  /// runs uncached. Either way the verdicts and simplified expressions are
  /// bit-identical (pinned by tests/harness_test.cpp).
  PipelineCaches *Caches = nullptr;
  /// Record the printed simplified (or raw, when !Simplify) expressions
  /// per corpus entry into StudyResult::SimplifiedLhs/Rhs — the hook the
  /// determinism tests compare across job counts and cache configurations.
  bool RecordSimplified = false;
};

/// Everything a study run produces: the per-query records (in the same
/// checker-major order as runSolvingStudy, regardless of Jobs) plus the
/// aggregate counters the JSON report serializes.
struct StudyResult {
  std::vector<QueryRecord> Records;
  StageZeroStats StaticStats;  ///< merged across workers (Config.StageZero)
  double SimplifySeconds = 0;  ///< preprocessing cost, summed over workers
  double CloneSeconds = 0;     ///< cross-context corpus cloning, summed
  double WallSeconds = 0;      ///< solve loop only; excludes corpus setup
  /// End-to-end study time: preprocessing + simplify + solve (the number
  /// "wall_seconds" historically missed — it starts after preprocessing).
  double TotalSeconds = 0;
  PoolStats Pool;              ///< steal/idle counters (zero when Jobs == 1)
  unsigned Jobs = 1;           ///< resolved worker count
  /// Printed per-entry expressions (Config.RecordSimplified), indexed by
  /// corpus entry in corpus order for any job count.
  std::vector<std::string> SimplifiedLhs, SimplifiedRhs;
  bool CachesEnabled = false;  ///< a PipelineCaches was attached
  CacheStats SimplifyResultCache; ///< whole-result layer counters
  CacheStats SimplifyLinearCache; ///< linear-rebuild layer counters
  CacheStats BasisCacheStats;     ///< basis-solve counters
  CacheStats VerdictCacheStats;   ///< equivalence-verdict counters
};

/// The parallel solving study. Work is partitioned per corpus entry; each
/// worker owns a private Context (created on its own thread — see the
/// threading model in ast/Context.h), clones the entry's expressions into
/// it with cloneExpr, optionally simplifies, and runs every checker from
/// its own factory-built set. Results land in pre-assigned slots, so the
/// record order — and, since every stage is deterministic, every verdict —
/// is identical for any job count.
StudyResult runSolvingStudyParallel(Context &Ctx,
                                    const std::vector<CorpusEntry> &Corpus,
                                    const CheckerFactory &MakeCheckers,
                                    const StudyConfig &Config);

/// Writes \p Result as a machine-readable JSON report (the BENCH_*.json
/// files; schema documented in docs/PERF.md): run config, wall-clock and
/// preprocessing timings, pool counters, the stage-0 split, and per-solver
/// per-category solved counts with Tmin/Tmax/Tavg.
void writeStudyJson(const std::string &Path, const std::string &Table,
                    const HarnessOptions &Opts, const StudyResult &Result);

/// Prints the Table 2 / Table 6 layout: one block per solver with per-
/// category N, [Tmin, Tmax], Tavg and the total solved count.
void printSolverCategoryTable(const std::vector<QueryRecord> &Records,
                              size_t CorpusSizePerCategory,
                              const std::string &Title);

/// Prints a solving-time distribution "figure": per solver, the sorted
/// solved-query times as percentiles plus an ASCII cumulative curve
/// (Figures 4 and 6 are exactly these curves).
void printTimeDistribution(const std::vector<QueryRecord> &Records,
                           double TimeoutSeconds, const std::string &Title);

/// Convenience: formats seconds with three decimals.
std::string formatSeconds(double S);

/// Wraps every checker in \p Checkers with the stage-0 static prover
/// (makeStagedChecker), all feeding the shared \p Stats counters. \p Stats
/// must outlive the checkers. \p Verdicts optionally short-circuits
/// repeated queries before stage 0 (see makeStagedChecker).
void addStageZeroProver(
    Context &Ctx, std::vector<std::unique_ptr<EquivalenceChecker>> &Checkers,
    StageZeroStats &Stats, VerdictCache *Verdicts = nullptr);

/// Prints the stage-0 counters accumulated by a staged run: the
/// proved/refuted/fallthrough split (how many queries never reached a
/// solver), static vs solver wall-clock, and saturation statistics.
void printStageZeroStats(const StageZeroStats &Stats);

} // namespace mba::bench

#endif // MBA_BENCH_HARNESS_H
