//===- bench/micro_sat.cpp - SAT/bit-blasting micro-benchmarks ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "bitblast/BitBlaster.h"
#include "bitblast/ExprBlaster.h"
#include "sat/Solver.h"

#include <benchmark/benchmark.h>

using namespace mba;
using namespace mba::sat;

namespace {

void BM_BlastAdder(benchmark::State &State) {
  unsigned Width = (unsigned)State.range(0);
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    SatSolver S;
    BitBlaster B(S, Width, true);
    benchmark::DoNotOptimize(B.bvAdd(B.freshWord(), B.freshWord()));
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_BlastAdder)->Arg(8)->Arg(32)->Arg(64);

void BM_BlastMultiplier(benchmark::State &State) {
  unsigned Width = (unsigned)State.range(0);
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    SatSolver S;
    BitBlaster B(S, Width, true);
    benchmark::DoNotOptimize(B.bvMul(B.freshWord(), B.freshWord()));
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_BlastMultiplier)->Arg(8)->Arg(16)->Arg(32);

void BM_AdderEquivalenceUnsat(benchmark::State &State) {
  // x + y == y + x as a miter, per width.
  unsigned Width = (unsigned)State.range(0);
  Context Ctx(Width);
  const Expr *L = parseOrDie(Ctx, "x + y");
  const Expr *R = parseOrDie(Ctx, "y + x");
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    SatSolver S;
    BitBlaster B(S, Width, true);
    ExprBlaster EB(B);
    B.assertLit(B.disequal(EB.blast(L), EB.blast(R)));
    benchmark::DoNotOptimize(S.solve());
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_AdderEquivalenceUnsat)->Arg(8)->Arg(16)->Arg(32);

void BM_LinearMBAEquivalenceUnsat(benchmark::State &State) {
  unsigned Width = (unsigned)State.range(0);
  Context Ctx(Width);
  const Expr *L = parseOrDie(Ctx, "(x&~y) + y");
  const Expr *R = parseOrDie(Ctx, "x|y");
  uint64_t Vars = 0, Clauses = 0;
  for (auto _ : State) {
    SatSolver S;
    BitBlaster B(S, Width, true);
    ExprBlaster EB(B);
    B.assertLit(B.disequal(EB.blast(L), EB.blast(R)));
    benchmark::DoNotOptimize(S.solve());
    Vars = S.numVars();
    Clauses = S.stats().ClausesAdded;
  }
  State.counters["vars"] = (double)Vars;
  State.counters["clauses"] = (double)Clauses;
}
BENCHMARK(BM_LinearMBAEquivalenceUnsat)->Arg(8)->Arg(16)->Arg(32);

void BM_RandomSat(benchmark::State &State) {
  // Under-constrained random 3-SAT throughput.
  for (auto _ : State) {
    State.PauseTiming();
    SatSolver S;
    uint64_t Seed = 42;
    auto Next = [&] {
      Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
      return Seed >> 33;
    };
    const unsigned NumVars = 200;
    for (unsigned I = 0; I != NumVars; ++I)
      S.newVar();
    for (unsigned C = 0; C != 2 * NumVars; ++C) {
      Lit Clause[3];
      for (int K = 0; K != 3; ++K)
        Clause[K] = Lit((Var)(Next() % NumVars), Next() & 1);
      S.addClause(std::span<const Lit>(Clause, 3));
    }
    State.ResumeTiming();
    benchmark::DoNotOptimize(S.solve());
  }
}
BENCHMARK(BM_RandomSat);

} // namespace
