//===- bench/table2_raw_solving.cpp - Table 2 reproduction ----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces **Table 2**: each solver's performance on the *raw* MBA
/// identity equations — solved count N, [Tmin, Tmax] and Tavg per category.
/// Expected shape (paper, 1h timeout): solvers crack only a small fraction
/// overall (Z3 2.8%, STP 3.3%, Boolector 16.5%), linear being the easiest
/// category and poly MBA nearly hopeless.
///
/// Scaled defaults: 25 entries/category, 0.4 s timeout, width 64. Use
/// --per-category/--timeout/--width to scale up.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);
  if (Opts.PerCategory == 40)
    Opts.PerCategory = 25; // study default; raw queries mostly time out
  if (Opts.TimeoutSeconds == 1.0)
    Opts.TimeoutSeconds = 0.25;

  Context Ctx(Opts.Width);
  CorpusOptions CorpusOpts;
  CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
      Opts.PerCategory;
  CorpusOpts.Seed = Opts.Seed;
  // The classic seed identities are tiny and instantly solvable; at study
  // scale they would dominate the linear slice, so the hardness studies
  // use synthesized entries only (the paper's 1000-per-category corpus
  // dilutes its handful of textbook identities the same way).
  CorpusOpts.IncludeSeedIdentities = false;
  auto Corpus = generateCorpus(Ctx, CorpusOpts);

  StudyConfig Config;
  Config.TimeoutSeconds = Opts.TimeoutSeconds;
  Config.Jobs = Opts.Jobs;
  std::unique_ptr<PipelineCaches> Caches = makePipelineCaches(Opts);
  Config.Caches = Caches.get();
  StudyResult Result = runSolvingStudyParallel(
      Ctx, Corpus,
      [&Opts](Context &) { return makeAllCheckers(Opts.IncrementalAig); },
      Config);
  savePipelineCaches(Opts, Caches.get());
  printSolverCategoryTable(
      Result.Records, Opts.PerCategory,
      "Table 2: solving RAW MBA identity equations (timeout " +
          formatSeconds(Opts.TimeoutSeconds) + "s, width " +
          std::to_string(Opts.Width) + ")");
  std::printf("Solve loop wall-clock: %.3f s on %u job(s); pool steals "
              "%llu, idle waits %llu\n",
              Result.WallSeconds, Result.Jobs,
              (unsigned long long)Result.Pool.Steals,
              (unsigned long long)Result.Pool.IdleWaits);
  if (!Opts.JsonPath.empty())
    writeStudyJson(Opts.JsonPath, "table2", Opts, Result);
  exportTelemetry(Opts);

  std::printf("Paper reference (Table 2, 1h timeout, 1000/category):\n");
  std::printf("  Z3 84 (2.8%%), STP 98 (3.3%%), Boolector 496 (16.5%%) "
              "solved;\n");
  std::printf("  linear is the most solvable category, poly nearly "
              "unsolvable raw.\n");
  std::printf("  (STP and Boolector are substituted by BlastBV/BlastBV+RW; "
              "see DESIGN.md.)\n");
  return 0;
}
