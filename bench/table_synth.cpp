//===- bench/table_synth.cpp - Synthesizer fallback on non-poly residue ---===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Solve-rate/latency table for the enumerative term-bank synthesizer
/// (src/synth) on opaque non-polynomial residue — the cases the paper's
/// syntactic pipeline cannot flatten and must hand to the SMT fallback.
///
/// The corpus is generated here rather than taken from gen/Corpus: every
/// target hides a bank-shaped ground truth (constant, a*f+c, or
/// a1*f1+a2*f2+c over up to three variables) under bitwise-over-arithmetic
/// rewrites *plus* an opaque-zero carry fact (Obfuscator::obfuscateOpaque,
/// a masked product of consecutive values). The carry fact is invisible to
/// the linear-signature solve and the polynomial ring, so simplification
/// leaves non-polynomial residue; worse, the residue's linear part is
/// canonicalized over a basis polluted by the opaque temporary, so the two
/// sides of a query reach the checker as structurally different canonical
/// forms whose equivalence is SAT-hard to establish.
///
/// Two configurations run over the same entries:
///
///   pipeline        MBASolver as shipped: simplify both sides, then ask
///                   the staged BlastBV+AIG checker with the per-query
///                   budget (--timeout). Residue entries either burn a
///                   real SAT solve or time out.
///   pipeline+synth  The same, with the synthesizer wired in as
///                   SimplifyOptions::SynthFallback. Every synthesized
///                   result was proved Equivalent by the staged checker
///                   inside synthesize() before being installed (the
///                   synthesizer's own verify budget, default 5s, is spent
///                   once per recipe and memoized); the installed bank
///                   form is re-canonicalized by the simplifier, so both
///                   sides collapse to the same expression and the final
///                   check short-circuits structurally.
///
/// The table reports per-configuration solved/total, residue left after
/// simplification, actual SAT activity (queries, short-circuits, solves)
/// and latency, plus the two delta columns the bench exists for:
/// residue_cracked (entries the plain pipeline fails that the synth
/// configuration solves) and residue_eliminated (entries whose residue the
/// synthesizer removed). `--json=FILE` writes the machine-readable record
/// (BENCH_table_synth.json is regenerated with
/// `--per-category=40 --width=16 --timeout=0.1 --jobs=1`).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "gen/Obfuscator.h"
#include "mba/Classify.h"
#include "poly/PolyExpr.h"
#include "solvers/EquivalenceChecker.h"
#include "support/RNG.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"
#include "synth/Basis3.h"
#include "synth/Synthesizer.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

using namespace mba;
using namespace mba::bench;

namespace {

struct Entry {
  const Expr *Target; ///< obfuscated form with opaque residue mixed in
  const Expr *Ground; ///< bank-shaped ground truth
};

/// Bank-shaped grounds hidden under non-poly rewrites plus one opaque-zero
/// carry fact each. Mirrors tests/synth_roundtrip_test.cpp's generation so
/// the bench measures the same target family the round-trip test pins.
std::vector<Entry> generateEntries(Context &Ctx, unsigned Count,
                                   uint64_t Seed) {
  Obfuscator Obf(Ctx, Seed ^ 0xB057ED);
  RNG Rng(Seed);
  const Expr *AllVars[3] = {Ctx.getVar("x"), Ctx.getVar("y"),
                            Ctx.getVar("z")};
  std::vector<Entry> Entries;
  Entries.reserve(Count);
  for (unsigned Case = 0; Case != Count; ++Case) {
    unsigned T = 1 + (unsigned)Rng.below(3);
    std::span<const Expr *const> Vars{AllVars, T};
    unsigned Rows = 1u << T;
    uint32_t Full = (1u << Rows) - 1;
    auto RandTruth = [&] { return 1 + (uint32_t)Rng.below(Full - 1); };
    auto RandCoeff = [&]() -> uint64_t { return 2 + Rng.below(9); };
    const Expr *Ground;
    switch (Case % 3) {
    case 0:
      Ground = Ctx.getConst(Rng.next() & Ctx.mask());
      break;
    case 1:
      Ground = buildLinearCombination(
          Ctx, {{RandCoeff(), synth::bitwiseFromTruth(Ctx, Vars, RandTruth())}},
          Rng.next() & Ctx.mask());
      break;
    default: {
      uint32_t T1 = RandTruth(), T2 = RandTruth();
      while (T2 == T1)
        T2 = RandTruth();
      Ground = buildLinearCombination(
          Ctx,
          {{RandCoeff(), synth::bitwiseFromTruth(Ctx, Vars, T1)},
           {RandCoeff(), synth::bitwiseFromTruth(Ctx, Vars, T2)}},
          Rng.next() & Ctx.mask());
      break;
    }
    }
    const Expr *Target = Obf.obfuscateNonPoly(Ground, Vars, 2);
    Target = Obf.obfuscateOpaque(Target, Vars, 1);
    Entries.push_back({Target, Ground});
  }
  return Entries;
}

struct ConfigResult {
  std::string Name;
  unsigned Solved = 0;
  unsigned Residue = 0; ///< entries left non-polynomial after simplify
  double TMin = 0, TMax = 0, TSum = 0;
  std::vector<bool> SolvedByEntry;
  std::vector<bool> ResidueByEntry;
  // SAT activity across the whole configuration (telemetry deltas).
  uint64_t SatQueries = 0, SatShortCircuit = 0, SatSolves = 0;

  void record(bool SolvedEntry, bool HasResidue, double Seconds) {
    if (SolvedEntry)
      ++Solved;
    if (HasResidue)
      ++Residue;
    if (SolvedByEntry.empty() || Seconds < TMin)
      TMin = Seconds;
    if (Seconds > TMax)
      TMax = Seconds;
    TSum += Seconds;
    SolvedByEntry.push_back(SolvedEntry);
    ResidueByEntry.push_back(HasResidue);
  }
};

ConfigResult runConfig(Context &Ctx, const std::vector<Entry> &Entries,
                       const std::string &Name, const SimplifyOptions &SOpts,
                       double TimeoutSeconds) {
  ConfigResult R;
  R.Name = Name;
  MBASolver Solver(Ctx, SOpts);
  // The production solving configuration: stage-0 static prover in front
  // of the incremental BlastBV+AIG backend. Both sides are preprocessed,
  // exactly like the Table 6 study — with the synth fallback on, two
  // semantically equal residues canonicalize to the same expression, so
  // the query collapses structurally instead of reaching SAT.
  auto Checker = makeStagedChecker(Ctx, makeAigChecker(true));
  telemetry::Counter &Queries = telemetry::counter("sat.aig.queries");
  telemetry::Counter &Short = telemetry::counter("sat.aig.short_circuit");
  telemetry::Counter &Assumption =
      telemetry::counter("sat.incremental.assumption_solves");
  telemetry::Counter &Fresh = telemetry::counter("sat.fresh.solves");
  uint64_t Q0 = Queries.value(), S0 = Short.value(),
           V0 = Assumption.value() + Fresh.value();
  for (const Entry &E : Entries) {
    Stopwatch Timer;
    const Expr *Lhs = Solver.simplify(E.Target);
    const Expr *Rhs = Solver.simplify(E.Ground);
    CheckResult CR = Checker->check(Ctx, Lhs, Rhs, TimeoutSeconds);
    R.record(CR.Outcome == Verdict::Equivalent,
             classifyMBA(Ctx, Lhs) == MBAKind::NonPolynomial,
             Timer.seconds());
  }
  R.SatQueries = Queries.value() - Q0;
  R.SatShortCircuit = Short.value() - S0;
  R.SatSolves = Assumption.value() + Fresh.value() - V0;
  return R;
}

void printConfig(const ConfigResult &R, unsigned Total) {
  std::printf("  %-16s %4u / %-4u solved   residue %3u   sat %" PRIu64
              "q/%" PRIu64 "sc/%" PRIu64 "sv   t(min/avg/max) "
              "%.4f / %.4f / %.4f s\n",
              R.Name.c_str(), R.Solved, Total, R.Residue, R.SatQueries,
              R.SatShortCircuit, R.SatSolves, R.TMin,
              Total ? R.TSum / Total : 0.0, R.TMax);
}

} // namespace

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);

  Context Ctx(Opts.Width);
  auto Entries = generateEntries(Ctx, Opts.PerCategory, Opts.Seed);

  ConfigResult Plain = runConfig(Ctx, Entries, "pipeline", SimplifyOptions(),
                                 Opts.TimeoutSeconds);

  // The synthesizer's verify budget is its own (SynthOptions default, 5s),
  // deliberately *not* tied to the per-query --timeout: verification of a
  // recipe is a one-time cost memoized in the ShardedCache, while the
  // online query budget stays tight.
  synth::Synthesizer Synth(Ctx);
  SimplifyOptions WithSynth;
  WithSynth.SynthFallback = Synth.fallbackHook();
  ConfigResult Synthed = runConfig(Ctx, Entries, "pipeline+synth", WithSynth,
                                   Opts.TimeoutSeconds);

  // The delta columns the synthesizer exists for: entries the plain
  // pipeline could not solve that the synth configuration does, and
  // residue entries whose opaque remainder the synthesizer removed.
  unsigned ResidueCracked = 0, ResidueEliminated = 0;
  for (size_t I = 0; I != Entries.size(); ++I) {
    if (!Plain.SolvedByEntry[I] && Synthed.SolvedByEntry[I])
      ++ResidueCracked;
    if (Plain.ResidueByEntry[I] && !Synthed.ResidueByEntry[I])
      ++ResidueEliminated;
  }

  const synth::SynthStats &St = Synth.stats();
  unsigned Total = (unsigned)Entries.size();
  std::printf("Table synth: opaque non-poly residue synthesis (width %u, "
              "timeout %.2fs, %u entries)\n",
              Opts.Width, Opts.TimeoutSeconds, Total);
  printConfig(Plain, Total);
  printConfig(Synthed, Total);
  std::printf("  residue cracked by synth: %u   residue eliminated: %u\n",
              ResidueCracked, ResidueEliminated);
  std::printf("  synth stats: queries %" PRIu64 ", matched %" PRIu64
              ", installed %" PRIu64 ", verify-rejected %" PRIu64
              ", unsupported %" PRIu64 ", cache hits %" PRIu64
              ", verify %.3fs\n",
              St.Queries, St.Matched, St.Installed, St.VerifyRejected,
              St.Unsupported, St.CacheHits, St.VerifySeconds);

  if (!Opts.JsonPath.empty()) {
    FILE *F = std::fopen(Opts.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "{\n  \"table\": \"table_synth\",\n");
    std::fprintf(F,
                 "  \"config\": {\"entries\": %u, \"timeout_seconds\": %f, "
                 "\"width\": %u, \"seed\": %" PRIu64 "},\n",
                 Total, Opts.TimeoutSeconds, Opts.Width, Opts.Seed);
    std::fprintf(F, "  \"configs\": [\n");
    for (const ConfigResult *R : {&Plain, &Synthed})
      std::fprintf(F,
                   "    {\"name\": \"%s\", \"solved\": %u, \"total\": %u, "
                   "\"residue\": %u, \"sat_queries\": %" PRIu64
                   ", \"sat_short_circuit\": %" PRIu64
                   ", \"sat_solves\": %" PRIu64 ", \"tmin\": %f, "
                   "\"tmax\": %f, \"tavg\": %f}%s\n",
                   R->Name.c_str(), R->Solved, Total, R->Residue,
                   R->SatQueries, R->SatShortCircuit, R->SatSolves, R->TMin,
                   R->TMax, Total ? R->TSum / Total : 0.0,
                   R == &Synthed ? "" : ",");
    std::fprintf(F, "  ],\n");
    std::fprintf(F, "  \"residue_cracked\": %u,\n", ResidueCracked);
    std::fprintf(F, "  \"residue_eliminated\": %u,\n", ResidueEliminated);
    std::fprintf(F,
                 "  \"synth\": {\"queries\": %" PRIu64 ", \"matched\": %" PRIu64
                 ", \"installed\": %" PRIu64 ", \"verify_rejected\": %" PRIu64
                 ", \"unsupported\": %" PRIu64 ", \"cache_hits\": %" PRIu64
                 ", \"verify_seconds\": %f}\n",
                 St.Queries, St.Matched, St.Installed, St.VerifyRejected,
                 St.Unsupported, St.CacheHits, St.VerifySeconds);
    std::fprintf(F, "}\n");
    std::fclose(F);
  }
  exportTelemetry(Opts);
  return 0;
}
