//===- bench/micro_prove.cpp - Static prover micro-benchmarks -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Measures the stage-0 static equivalence prover on the corpus path:
/// latency and hit-rate on raw and simplified query pairs (the same
/// queries Tables 2 and 6 pose to solvers), the solver wall-clock the
/// discharged queries save, the saturate-and-extract pre-pass, and the
/// one-time cost of certifying the shipped rule table. Hit-rates are
/// reported as benchmark counters: `proved`, `refuted`, `unknown` are the
/// per-corpus splits, `solver_s_saved` is the measured BlastBV time on the
/// queries the prover discharges.
///
//===----------------------------------------------------------------------===//

#include "analysis/Prover.h"
#include "analysis/Rules.h"
#include "ast/Context.h"
#include "gen/Corpus.h"
#include "mba/Simplifier.h"
#include "solvers/EquivalenceChecker.h"
#include "support/Stopwatch.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace mba;

namespace {

/// A deterministic slice of the paper-scale corpus (category mix matches
/// the 1000/1000/1000 dataset).
std::vector<CorpusEntry> makeCorpus(Context &Ctx, unsigned PerCategory) {
  CorpusOptions Opts;
  Opts.LinearCount = PerCategory;
  Opts.PolyCount = PerCategory;
  Opts.NonPolyCount = PerCategory;
  return generateCorpus(Ctx, Opts);
}

/// The corpus identity queries as (lhs, rhs) pairs, optionally simplified
/// on both sides (the Table 6 configuration).
std::vector<std::pair<const Expr *, const Expr *>>
makePairs(Context &Ctx, const std::vector<CorpusEntry> &Corpus,
          bool Simplify) {
  MBASolver Solver(Ctx);
  std::vector<std::pair<const Expr *, const Expr *>> Pairs;
  Pairs.reserve(Corpus.size());
  for (const CorpusEntry &E : Corpus)
    if (Simplify)
      Pairs.push_back({Solver.simplify(E.Obfuscated), Solver.simplify(E.Ground)});
    else
      Pairs.push_back({E.Obfuscated, E.Ground});
  return Pairs;
}

/// One prover pass over all pairs; returns the outcome split.
struct Split {
  size_t Proved = 0, Refuted = 0, Unknown = 0;
};

Split proveAll(Context &Ctx,
               const std::vector<std::pair<const Expr *, const Expr *>> &Pairs) {
  Split S;
  Prover P(Ctx);
  for (const auto &[A, B] : Pairs) {
    switch (P.prove(A, B).Outcome) {
    case ProveOutcome::Proved: ++S.Proved; break;
    case ProveOutcome::Refuted: ++S.Refuted; break;
    case ProveOutcome::Unknown: ++S.Unknown; break;
    }
  }
  return S;
}

void reportSplit(benchmark::State &State, Context &Ctx,
                 const std::vector<std::pair<const Expr *, const Expr *>>
                     &Pairs) {
  Split S = proveAll(Ctx, Pairs);
  double N = (double)Pairs.size();
  State.counters["proved"] = (double)S.Proved / N;
  State.counters["refuted"] = (double)S.Refuted / N;
  State.counters["unknown"] = (double)S.Unknown / N;
  // Solver wall-clock the discharged queries save: BlastBV's time on the
  // same queries (short timeout; timeouts count at the full budget).
  auto Blast = makeBlastChecker(/*EnableRewriting=*/true);
  Prover P(Ctx);
  double Saved = 0;
  for (const auto &[A, B] : Pairs)
    if (P.prove(A, B).Outcome != ProveOutcome::Unknown)
      Saved += Blast->check(Ctx, A, B, 0.25).Seconds;
  State.counters["solver_s_saved"] = Saved;
}

void BM_ProveRawPairs(benchmark::State &State) {
  // Raw corpus queries (the Table 2 configuration): the prover faces the
  // full obfuscation, so most queries fall through — this bounds the
  // stage-0 overhead a raw run pays.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  auto Pairs = makePairs(Ctx, Corpus, /*Simplify=*/false);
  for (auto _ : State) {
    Split S = proveAll(Ctx, Pairs);
    benchmark::DoNotOptimize(S.Proved);
  }
  State.SetItemsProcessed(State.iterations() * Pairs.size());
  reportSplit(State, Ctx, Pairs);
}
BENCHMARK(BM_ProveRawPairs)->Arg(10);

void BM_ProveSimplifiedPairs(benchmark::State &State) {
  // Post-simplification queries (the Table 6 configuration): the fraction
  // the prover discharges here is exactly the fraction of the solver study
  // that never bit-blasts.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  auto Pairs = makePairs(Ctx, Corpus, /*Simplify=*/true);
  for (auto _ : State) {
    Split S = proveAll(Ctx, Pairs);
    benchmark::DoNotOptimize(S.Proved);
  }
  State.SetItemsProcessed(State.iterations() * Pairs.size());
  reportSplit(State, Ctx, Pairs);
}
BENCHMARK(BM_ProveSimplifiedPairs)->Arg(10)->Arg(30);

void BM_ProveMismatchedPairs(benchmark::State &State) {
  // Cross-matched (non-equivalent) pairs: exercises the refutation path
  // (abstract domains) and the unknown path on genuinely different inputs.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  std::vector<std::pair<const Expr *, const Expr *>> Pairs;
  for (size_t I = 0; I + 1 < Corpus.size(); ++I)
    Pairs.push_back({Corpus[I].Ground, Corpus[I + 1].Ground});
  for (auto _ : State) {
    Split S = proveAll(Ctx, Pairs);
    benchmark::DoNotOptimize(S.Refuted);
  }
  State.SetItemsProcessed(State.iterations() * Pairs.size());
  reportSplit(State, Ctx, Pairs);
}
BENCHMARK(BM_ProveMismatchedPairs)->Arg(10);

void BM_SaturateAndExtract(benchmark::State &State) {
  // The simplifier's optional saturation pre-pass on obfuscated inputs.
  Context Ctx(64);
  auto Corpus = makeCorpus(Ctx, (unsigned)State.range(0));
  Prover P(Ctx);
  for (auto _ : State)
    for (const CorpusEntry &E : Corpus)
      benchmark::DoNotOptimize(P.saturateAndExtract(E.Obfuscated));
  State.SetItemsProcessed(State.iterations() * Corpus.size());
}
BENCHMARK(BM_SaturateAndExtract)->Arg(10);

void BM_CertifyRules(benchmark::State &State) {
  // One-time startup cost: prove the whole shipped rule table sound for
  // all widths (polynomial + linear-corner provers).
  for (auto _ : State) {
    RuleSet RS;
    addDefaultRules(RS);
    CertifySummary S = certifyRules(RS);
    if (!S.allCertified())
      State.SkipWithError("shipped rule failed certification");
    benchmark::DoNotOptimize(S.NumCertified);
  }
}
BENCHMARK(BM_CertifyRules);

} // namespace
