//===- bench/ablation_width.cpp - Bit-width sensitivity ablation ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (not in the paper): how solving difficulty scales
/// with the word width. MBA identities hold at every width; bit-blasting
/// cost grows with it, so raw solve rates collapse as width rises while
/// the simplified queries stay flat — evidence that the preprocessing
/// pass's benefit is width-independent.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace mba;
using namespace mba::bench;

int main(int Argc, char **Argv) {
  HarnessOptions Opts = parseHarnessArgs(Argc, Argv);
  enableTelemetry(Opts);
  if (Opts.PerCategory == 40)
    Opts.PerCategory = 10;
  if (Opts.TimeoutSeconds == 1.0)
    Opts.TimeoutSeconds = 0.25;

  std::printf("=== Width ablation: raw vs simplified solve rate by word "
              "width (%u/category, %.2fs timeout) ===\n",
              Opts.PerCategory, Opts.TimeoutSeconds);
  std::printf("%-8s", "width");
  bool HeaderDone = false;

  const unsigned Widths[] = {4, 8, 16, 32, 64};
  for (unsigned Width : Widths) {
    Context Ctx(Width);
    CorpusOptions CorpusOpts;
    CorpusOpts.LinearCount = CorpusOpts.PolyCount = CorpusOpts.NonPolyCount =
        Opts.PerCategory;
    CorpusOpts.Seed = Opts.Seed;
    CorpusOpts.IncludeSeedIdentities = false;
    auto Corpus = generateCorpus(Ctx, CorpusOpts);

    auto Checkers = makeAllCheckers();
    if (!HeaderDone) {
      for (auto &C : Checkers)
        std::printf(" | %-10s raw  simp", C->name().c_str());
      std::printf("\n");
      HeaderDone = true;
    }

    auto Raw = runSolvingStudy(Ctx, Corpus, Checkers, Opts.TimeoutSeconds,
                               nullptr);
    MBASolver Simplifier(Ctx);
    auto Simp = runSolvingStudy(Ctx, Corpus, Checkers, Opts.TimeoutSeconds,
                                &Simplifier);

    std::printf("%-8u", Width);
    for (auto &C : Checkers) {
      auto Rate = [&](const std::vector<QueryRecord> &Records) {
        unsigned Solved = 0, Total = 0;
        for (const QueryRecord &R : Records) {
          if (R.Solver != C->name())
            continue;
          ++Total;
          Solved += R.Outcome == Verdict::Equivalent;
        }
        return Total ? 100.0 * Solved / Total : 0.0;
      };
      std::printf(" | %-10s %3.0f%% %4.0f%%", "", Rate(Raw), Rate(Simp));
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape: raw solve rates fall as width grows (the\n"
              "search space explodes); simplified rates stay ~100%% at every\n"
              "width because the preprocessing is width-uniform.\n");
  exportTelemetry(Opts);
  return 0;
}
