//===- bench/micro_cache.cpp - Semantic memoization micro-benchmarks ------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the semantic memoization layer (support/Cache.h and
/// its clients). The contract numbers the docs quote come from here:
///
///  * warm shared caches make a repeat pass over a corpus >= 10x faster
///    than the uncached pipeline (BM_SimplifyCorpusWarmShared vs
///    BM_SimplifyCorpusNoCache), and
///  * attaching cold caches to a single pass costs <= 5% over running
///    uncached (BM_SimplifyCorpusColdShared vs BM_SimplifyCorpusNoCache) —
///    the all-miss overhead is hashing plus one store clone per insert.
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/ExprUtils.h"
#include "gen/Corpus.h"
#include "mba/Basis.h"
#include "mba/Simplifier.h"
#include "mba/SimplifyCache.h"
#include "support/Cache.h"

#include <benchmark/benchmark.h>

using namespace mba;

namespace {

/// One master corpus, cloned into a fresh context per measured iteration
/// (the same pattern the parallel harness uses per worker).
class CorpusFixture {
public:
  CorpusFixture() : Master(64) {
    CorpusOptions Opts;
    Opts.LinearCount = Opts.PolyCount = Opts.NonPolyCount = 8;
    for (const CorpusEntry &E : generateCorpus(Master, Opts))
      Exprs.push_back(E.Obfuscated);
  }

  Context Master;
  std::vector<const Expr *> Exprs;
};

CorpusFixture &fixture() {
  static CorpusFixture F;
  return F;
}

/// Simplifies every corpus expression in a fresh context with a fresh
/// solver; Caches (may be null) are the shared layer under test.
void simplifyPass(SimplifyCache *Shared, BasisCache *Basis) {
  CorpusFixture &F = fixture();
  Context Ctx(64);
  SimplifyOptions Opts;
  Opts.SharedCache = Shared;
  Opts.SharedBasisCache = Basis;
  MBASolver Solver(Ctx, Opts);
  for (const Expr *E : F.Exprs)
    benchmark::DoNotOptimize(Solver.simplify(cloneExpr(Ctx, E)));
}

void BM_SimplifyCorpusNoCache(benchmark::State &State) {
  for (auto _ : State)
    simplifyPass(nullptr, nullptr);
}
BENCHMARK(BM_SimplifyCorpusNoCache);

void BM_SimplifyCorpusColdShared(benchmark::State &State) {
  // Fresh caches each iteration: every lookup misses, so the delta to
  // NoCache is the pure bookkeeping overhead.
  for (auto _ : State) {
    SimplifyCache Shared(64);
    BasisCache Basis;
    simplifyPass(&Shared, &Basis);
  }
}
BENCHMARK(BM_SimplifyCorpusColdShared);

void BM_SimplifyCorpusWarmShared(benchmark::State &State) {
  // One shared cache set, prewarmed before measurement: every whole-result
  // lookup hits and a pass is a hash plus a clone per expression.
  SimplifyCache Shared(64);
  BasisCache Basis;
  simplifyPass(&Shared, &Basis);
  for (auto _ : State)
    simplifyPass(&Shared, &Basis);
}
BENCHMARK(BM_SimplifyCorpusWarmShared);

void BM_ShardedCacheLookupHit(benchmark::State &State) {
  ShardedCache<uint64_t> Cache(1 << 16);
  for (uint64_t K = 0; K != 1024; ++K)
    Cache.insert(hashMix64(K), K);
  uint64_t K = 0, Out = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.lookup(hashMix64(K++ & 1023), Out));
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_ShardedCacheLookupHit);

void BM_ShardedCacheInsertEvict(benchmark::State &State) {
  // Capacity far below the key range: steady-state insert+evict cost.
  ShardedCache<uint64_t> Cache(256);
  uint64_t K = 0;
  for (auto _ : State)
    Cache.insert(hashMix64(K++), K);
}
BENCHMARK(BM_ShardedCacheInsertEvict);

void BM_ExprFingerprint(benchmark::State &State) {
  CorpusFixture &F = fixture();
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(exprFingerprint(F.Exprs[I++ % F.Exprs.size()]));
}
BENCHMARK(BM_ExprFingerprint);

} // namespace
