//===- bench/micro_core.cpp - google-benchmark micro-benchmarks -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Micro-benchmarks of the core primitives: parsing, signature computation,
/// basis solving, full simplification per category, and obfuscation. These
/// are throughput tests for the library itself (the paper-facing numbers
/// live in the table*/fig* binaries).
///
//===----------------------------------------------------------------------===//

#include "ast/Context.h"
#include "ast/Parser.h"
#include "ast/Printer.h"
#include "gen/Corpus.h"
#include "gen/Obfuscator.h"
#include "linalg/TruthTable.h"
#include "mba/Basis.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"

#include <benchmark/benchmark.h>

using namespace mba;

namespace {

const char *SampleLinear = "2*(x|y) - (~x&y) - (x&~y) + 4*(x^y) - 3*(x&y)";
const char *SamplePoly = "(x&~y)*(~x&y) + (x&y)*(x|y)";
const char *SampleNonPoly = "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)";

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    Context Ctx(64);
    benchmark::DoNotOptimize(parseOrDie(Ctx, SampleLinear));
  }
}
BENCHMARK(BM_Parse);

void BM_Print(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear);
  for (auto _ : State)
    benchmark::DoNotOptimize(printExpr(Ctx, E));
}
BENCHMARK(BM_Print);

void BM_Signature(benchmark::State &State) {
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear);
  for (auto _ : State)
    benchmark::DoNotOptimize(computeSignature(Ctx, E));
}
BENCHMARK(BM_Signature);

void BM_BasisSolve(benchmark::State &State) {
  Context Ctx(64);
  const Expr *Vars[] = {Ctx.getVar("x"), Ctx.getVar("y"), Ctx.getVar("z")};
  std::vector<uint64_t> Sig = {0, 1, 1, 2, 3, 4, 5, 6};
  for (auto _ : State)
    benchmark::DoNotOptimize(
        solveBasis(Ctx, BasisKind::Conjunction, Sig, Vars));
}
BENCHMARK(BM_BasisSolve);

void BM_SimplifyLinear(benchmark::State &State) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, SampleLinear);
  for (auto _ : State)
    benchmark::DoNotOptimize(Solver.simplify(E));
}
BENCHMARK(BM_SimplifyLinear);

void BM_SimplifyPoly(benchmark::State &State) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, SamplePoly);
  for (auto _ : State)
    benchmark::DoNotOptimize(Solver.simplify(E));
}
BENCHMARK(BM_SimplifyPoly);

void BM_SimplifyNonPoly(benchmark::State &State) {
  Context Ctx(64);
  MBASolver Solver(Ctx);
  const Expr *E = parseOrDie(Ctx, SampleNonPoly);
  for (auto _ : State)
    benchmark::DoNotOptimize(Solver.simplify(E));
}
BENCHMARK(BM_SimplifyNonPoly);

void BM_SimplifyColdCache(benchmark::State &State) {
  // Fresh solver per iteration: measures the no-lookup-table path.
  Context Ctx(64);
  const Expr *E = parseOrDie(Ctx, SampleLinear);
  for (auto _ : State) {
    SimplifyOptions Opts;
    Opts.EnableCache = false;
    MBASolver Solver(Ctx, Opts);
    benchmark::DoNotOptimize(Solver.simplify(E));
  }
}
BENCHMARK(BM_SimplifyColdCache);

/// A bitwise expression over \p T variables for the truth-table benches
/// (deep enough that the column is not a single pattern fill).
const Expr *truthBenchExpr(Context &Ctx, std::vector<const Expr *> &Vars,
                           unsigned T) {
  Vars.clear();
  for (unsigned I = 0; I != T; ++I)
    Vars.push_back(Ctx.getVar("v" + std::to_string(I)));
  const Expr *E = Vars[0];
  for (unsigned I = 1; I != T; ++I) {
    const Expr *Term = I % 2 ? Ctx.getAnd(E, Vars[I])
                             : Ctx.getOr(Ctx.getNot(E), Vars[I]);
    E = Ctx.getXor(E, Term);
  }
  return E;
}

// Before/after pair for the word-packed truth-table kernel: the scalar
// row-at-a-time evaluator vs the packed 64-rows-per-word one.
void BM_TruthColumnScalar(benchmark::State &State) {
  Context Ctx(64);
  std::vector<const Expr *> Vars;
  const Expr *E = truthBenchExpr(Ctx, Vars, (unsigned)State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(truthColumn(Ctx, E, Vars));
}
BENCHMARK(BM_TruthColumnScalar)->Arg(6)->Arg(10);

void BM_TruthColumnPacked(benchmark::State &State) {
  Context Ctx(64);
  std::vector<const Expr *> Vars;
  const Expr *E = truthBenchExpr(Ctx, Vars, (unsigned)State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(truthColumnPacked(Ctx, E, Vars));
}
BENCHMARK(BM_TruthColumnPacked)->Arg(6)->Arg(10);

void BM_ObfuscateLinear(benchmark::State &State) {
  Context Ctx(64);
  Obfuscator Obf(Ctx, 1);
  const Expr *Target = parseOrDie(Ctx, "x + y");
  ObfuscationOptions Opts;
  for (auto _ : State)
    benchmark::DoNotOptimize(Obf.obfuscateLinear(Target, Opts));
}
BENCHMARK(BM_ObfuscateLinear);

void BM_CorpusGeneration(benchmark::State &State) {
  for (auto _ : State) {
    Context Ctx(64);
    CorpusOptions Opts;
    Opts.LinearCount = 10;
    Opts.PolyCount = 10;
    Opts.NonPolyCount = 10;
    benchmark::DoNotOptimize(generateCorpus(Ctx, Opts));
  }
}
BENCHMARK(BM_CorpusGeneration);

} // namespace
