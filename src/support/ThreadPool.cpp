//===- support/ThreadPool.cpp - Work-stealing thread pool -----------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace mba;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Shards.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Shards.push_back(std::make_unique<Shard>());
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Lock(Mu);
    ShuttingDown = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

PoolStats ThreadPool::stats() const {
  PoolStats Out;
  Out.Steals = Steals.load(std::memory_order_relaxed);
  Out.IdleWaits = IdleWaits.load(std::memory_order_relaxed);
  Out.Tasks = Tasks.load(std::memory_order_relaxed);
  return Out;
}

bool ThreadPool::grabIndex(unsigned Ordinal, size_t &Index) {
  // Fast path: the front of our own shard.
  {
    Shard &Own = *Shards[Ordinal];
    MutexLock Lock(Own.Mu);
    if (Own.Lo < Own.Hi) {
      Index = Own.Lo++;
      return true;
    }
  }
  // Steal: cut the back half of the fullest other shard, then adopt it.
  // The victim's lock is never held while taking our own (no ordering
  // cycle), at the cost of the stolen range being stealable again.
  for (;;) {
    unsigned Victim = numWorkers();
    size_t Best = 0;
    for (unsigned V = 0; V != numWorkers(); ++V) {
      if (V == Ordinal)
        continue;
      Shard &S = *Shards[V];
      MutexLock Lock(S.Mu);
      if (S.Hi - S.Lo > Best) {
        Best = S.Hi - S.Lo;
        Victim = V;
      }
    }
    if (Victim == numWorkers())
      return false; // everything drained
    size_t StolenLo = 0, StolenHi = 0;
    {
      Shard &S = *Shards[Victim];
      MutexLock Lock(S.Mu);
      size_t Remaining = S.Hi - S.Lo;
      if (Remaining == 0)
        continue; // lost the race; rescan
      size_t Keep = Remaining / 2;
      StolenLo = S.Lo + Keep;
      StolenHi = S.Hi;
      S.Hi = StolenLo;
    }
    {
      Shard &Own = *Shards[Ordinal];
      MutexLock Lock(Own.Mu);
      Own.Lo = StolenLo + 1;
      Own.Hi = StolenHi;
    }
    Steals.fetch_add(1, std::memory_order_relaxed);
    // The registry counter outlives this pool — a metrics dump written
    // after the study (and its pool) still reports the totals.
    static telemetry::Counter &StealsC = telemetry::counter("pool.steals");
    StealsC.add();
    Index = StolenLo;
    return true;
  }
}

void ThreadPool::workerMain(unsigned Ordinal) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(size_t, unsigned)> *Fn = nullptr;
    {
      UniqueMutexLock Lock(Mu);
      // Explicit predicate loop rather than the wait(lock, pred) overload:
      // the thread-safety analysis cannot look into a predicate lambda, but
      // it does see these guarded reads happen with Mu held. Same condition
      // variable semantics (re-check after every wakeup).
      while (!(ShuttingDown || (Job && JobGeneration != SeenGeneration)))
        WorkCv.wait(Lock.native());
      if (ShuttingDown)
        return;
      SeenGeneration = JobGeneration;
      Fn = Job;
    }

    size_t LocalTasks = 0;
    std::exception_ptr LocalError;
    size_t Index;
    while (grabIndex(Ordinal, Index)) {
      ++LocalTasks;
      if (LocalError)
        continue; // drain without running more work after a failure
      try {
        MBA_TRACE_SPAN("pool.task");
        (*Fn)(Index, Ordinal);
      } catch (...) {
        LocalError = std::current_exception();
      }
    }

    Tasks.fetch_add(LocalTasks, std::memory_order_relaxed);
    static telemetry::Counter &TasksC = telemetry::counter("pool.tasks");
    TasksC.add(LocalTasks);
    if (LocalTasks == 0) {
      IdleWaits.fetch_add(1, std::memory_order_relaxed);
      static telemetry::Counter &IdleC =
          telemetry::counter("pool.idle_waits");
      IdleC.add();
    }
    {
      MutexLock Lock(Mu);
      if (LocalError && !FirstError)
        FirstError = LocalError;
      if (--ActiveWorkers == 0)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t, unsigned)> &Fn) {
  if (N == 0)
    return;
  unsigned W = numWorkers();
  // Seed one contiguous shard per worker.
  size_t Chunk = (N + W - 1) / W;
  for (unsigned I = 0; I != W; ++I) {
    Shard &S = *Shards[I];
    MutexLock Lock(S.Mu);
    S.Lo = std::min(N, (size_t)I * Chunk);
    S.Hi = std::min(N, S.Lo + Chunk);
  }
  UniqueMutexLock Lock(Mu);
  assert(!Job && "parallelFor is not reentrant");
  Job = &Fn;
  FirstError = nullptr;
  ActiveWorkers = W;
  ++JobGeneration;
  WorkCv.notify_all();
  // Explicit predicate loop for the thread-safety analysis (see workerMain).
  while (ActiveWorkers != 0)
    DoneCv.wait(Lock.native());
  Job = nullptr;
  // Move the error out before rethrowing: the throw unwinds Lock, and no
  // guarded field may be touched after that.
  std::exception_ptr Error = FirstError;
  FirstError = nullptr;
  if (Error)
    std::rethrow_exception(Error);
}
