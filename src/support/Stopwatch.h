//===- support/Stopwatch.h - Wall-clock timing helper -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic stopwatch used by the benchmark harness to report solving and
/// simplification times (Tables 2, 6, 7, 8).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_STOPWATCH_H
#define MBA_SUPPORT_STOPWATCH_H

#include <chrono>

namespace mba {

/// Starts timing on construction; query elapsed time at any point.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or last reset().
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace mba

#endif // MBA_SUPPORT_STOPWATCH_H
