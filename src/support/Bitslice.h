//===- support/Bitslice.h - Transposed 64-lane word kernels -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bitsliced (transposed) evaluation kernels: 64 evaluation points are packed
/// one-per-bit into uint64_t "slice" words, so one word operation advances
/// all 64 points at once. A w-bit value batch is stored as w slices, where
/// bit j of Slices[b] is bit b of point j's value.
///
/// The kernels below are pure word arithmetic with no AST dependencies (this
/// is the bottom of the library layering); the DAG compiler/evaluator that
/// drives them lives in ast/BitslicedEval.h. Motivation and layout details
/// are documented in docs/PERF.md.
///
/// Operation costs per 64-point batch at width w:
///  * bitwise (&, |, ^, ~): w word ops — 1 op per point at w = 64, and
///    w/64 ops per point below that (an 8x op-count win at w = 8);
///  * add/sub/neg: a ripple-carry over the w slices, ~5w word ops (the
///    carry chain is the only loop-carried dependency);
///  * mul: schoolbook shift-and-add in slice space for small widths, or a
///    transpose round-trip to lane space (64 scalar multiplies) above
///    kSchoolbookMulMaxWidth, whichever is cheaper.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_BITSLICE_H
#define MBA_SUPPORT_BITSLICE_H

#include <cstdint>

namespace mba::bitslice {

/// Points per slice block: one evaluation point per bit of a uint64_t.
inline constexpr unsigned LanesPerBlock = 64;

/// Widths up to this use the schoolbook slice-space multiplier; wider
/// multiplies round-trip through lane space (see sliceMul).
inline constexpr unsigned kSchoolbookMulMaxWidth = 16;

/// Truth-table corner mask for a block of 64 consecutive corner indices
/// starting at the 64-aligned \p Base: bit j of the result is bit \p Bit of
/// corner index Base + j. Because j only varies the low 6 bits, this is a
/// fixed periodic pattern for Bit < 6 and a constant otherwise — O(1) per
/// variable per block, instead of assembling 64 lane bits one by one.
inline uint64_t cornerMask(unsigned Bit, uint64_t Base) {
  constexpr uint64_t Pattern[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};
  return Bit < 6 ? Pattern[Bit] : ((Base >> Bit) & 1 ? ~0ull : 0);
}

/// In-place transpose of the 64x64 bit matrix \p M (row i, bit j) -> (row j,
/// bit i). This is the lane<->slice conversion primitive: treating rows as
/// lanes gives slices and vice versa.
void transpose64(uint64_t M[64]);

/// Transposes \p NumLanes lane values (each a \p Width-bit word) into
/// \p Width slice words. Lanes beyond NumLanes read as 0; bits of Slices
/// beyond NumLanes are zero.
void lanesToSlices(const uint64_t *Lanes, unsigned NumLanes, unsigned Width,
                   uint64_t *Slices);

/// Inverse of lanesToSlices: expands \p Width slices back into \p NumLanes
/// per-point values (masked to the width).
void slicesToLanes(const uint64_t *Slices, unsigned Width, unsigned NumLanes,
                   uint64_t *Lanes);

/// Broadcasts the \p Width-bit constant \p Value to every lane: slice b is
/// all-ones when bit b of Value is set, else zero.
void sliceBroadcast(unsigned Width, uint64_t Value, uint64_t *Out);

inline void sliceNot(unsigned Width, const uint64_t *A, uint64_t *Out) {
  for (unsigned B = 0; B != Width; ++B)
    Out[B] = ~A[B];
}

inline void sliceAnd(unsigned Width, const uint64_t *A, const uint64_t *B,
                     uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] & B[I];
}

inline void sliceOr(unsigned Width, const uint64_t *A, const uint64_t *B,
                    uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] | B[I];
}

inline void sliceXor(unsigned Width, const uint64_t *A, const uint64_t *B,
                     uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] ^ B[I];
}

/// Out = A + B per lane, mod 2^Width (ripple-carry across slices). Aliasing
/// Out with A or B is allowed.
void sliceAdd(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

/// Out = A - B per lane, mod 2^Width. Aliasing allowed.
void sliceSub(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

/// Out = -A per lane, mod 2^Width. Aliasing allowed.
void sliceNeg(unsigned Width, const uint64_t *A, uint64_t *Out);

/// Out = A * B per lane, mod 2^Width. Uses the schoolbook slice-space
/// method up to kSchoolbookMulMaxWidth and a lane-space round-trip above
/// it. \p Out must not alias A or B.
void sliceMul(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

} // namespace mba::bitslice

#endif // MBA_SUPPORT_BITSLICE_H
