//===- support/Bitslice.h - Transposed 64-lane word kernels -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bitsliced (transposed) evaluation kernels: 64 evaluation points are packed
/// one-per-bit into uint64_t "slice" words, so one word operation advances
/// all 64 points at once. A w-bit value batch is stored as w slices, where
/// bit j of Slices[b] is bit b of point j's value.
///
/// The kernels below are pure word arithmetic with no AST dependencies (this
/// is the bottom of the library layering); the DAG compiler/evaluator that
/// drives them lives in ast/BitslicedEval.h. Motivation and layout details
/// are documented in docs/PERF.md.
///
/// Besides the fixed 64-lane kernels, this header is the single ISA seam of
/// the repository: a lane-templated wide engine (WideKernels) processes
/// blocks of Words x 64 lanes per call, with back ends compiled per ISA
/// from one kernel source (BitsliceKernels.h) — scalar (1 word / 64
/// lanes, always available), AVX2 (4 words / 256 lanes) and AVX-512
/// (8 words / 512 lanes) — selected by runtime CPU-feature dispatch.
/// `MBA_FORCE_ISA=scalar|avx2|avx512` (or forceIsa()) overrides the
/// selection for testing; forcing an ISA the CPU or build lacks clamps to
/// the best supported one. Every back end computes bit-identical results —
/// the determinism tests compare them lane for lane. All intrinsics and
/// `__AVX*__` conditionals in the tree live behind this seam
/// (src/support/Bitslice*); mba-tidy flags them anywhere else.
///
/// Operation costs per 64-point batch at width w:
///  * bitwise (&, |, ^, ~): w word ops — 1 op per point at w = 64, and
///    w/64 ops per point below that (an 8x op-count win at w = 8);
///  * add/sub/neg: a ripple-carry over the w slices, ~5w word ops (the
///    carry chain is the only loop-carried dependency);
///  * mul: schoolbook shift-and-add in slice space for small widths, or a
///    transpose round-trip to lane space (64 scalar multiplies) above
///    kSchoolbookMulMaxWidth, whichever is cheaper.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_BITSLICE_H
#define MBA_SUPPORT_BITSLICE_H

#include <cstdint>
#include <string_view>

namespace mba::bitslice {

/// Points per slice block: one evaluation point per bit of a uint64_t.
inline constexpr unsigned LanesPerBlock = 64;

/// Widths up to this use the schoolbook slice-space multiplier; wider
/// multiplies round-trip through lane space (see sliceMul).
inline constexpr unsigned kSchoolbookMulMaxWidth = 16;

/// Truth-table corner mask for a block of 64 consecutive corner indices
/// starting at the 64-aligned \p Base: bit j of the result is bit \p Bit of
/// corner index Base + j. Because j only varies the low 6 bits, this is a
/// fixed periodic pattern for Bit < 6 and a constant otherwise — O(1) per
/// variable per block, instead of assembling 64 lane bits one by one.
inline uint64_t cornerMask(unsigned Bit, uint64_t Base) {
  constexpr uint64_t Pattern[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};
  return Bit < 6 ? Pattern[Bit] : ((Base >> Bit) & 1 ? ~0ull : 0);
}

/// In-place transpose of the 64x64 bit matrix \p M (row i, bit j) -> (row j,
/// bit i). This is the lane<->slice conversion primitive: treating rows as
/// lanes gives slices and vice versa.
void transpose64(uint64_t M[64]);

/// Transposes \p NumLanes lane values (each a \p Width-bit word) into
/// \p Width slice words. Lanes beyond NumLanes read as 0; bits of Slices
/// beyond NumLanes are zero.
void lanesToSlices(const uint64_t *Lanes, unsigned NumLanes, unsigned Width,
                   uint64_t *Slices);

/// Inverse of lanesToSlices: expands \p Width slices back into \p NumLanes
/// per-point values (masked to the width).
void slicesToLanes(const uint64_t *Slices, unsigned Width, unsigned NumLanes,
                   uint64_t *Lanes);

/// Broadcasts the \p Width-bit constant \p Value to every lane: slice b is
/// all-ones when bit b of Value is set, else zero.
void sliceBroadcast(unsigned Width, uint64_t Value, uint64_t *Out);

inline void sliceNot(unsigned Width, const uint64_t *A, uint64_t *Out) {
  for (unsigned B = 0; B != Width; ++B)
    Out[B] = ~A[B];
}

inline void sliceAnd(unsigned Width, const uint64_t *A, const uint64_t *B,
                     uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] & B[I];
}

inline void sliceOr(unsigned Width, const uint64_t *A, const uint64_t *B,
                    uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] | B[I];
}

inline void sliceXor(unsigned Width, const uint64_t *A, const uint64_t *B,
                     uint64_t *Out) {
  for (unsigned I = 0; I != Width; ++I)
    Out[I] = A[I] ^ B[I];
}

/// Out = A + B per lane, mod 2^Width (ripple-carry across slices). Aliasing
/// Out with A or B is allowed.
void sliceAdd(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

/// Out = A - B per lane, mod 2^Width. Aliasing allowed.
void sliceSub(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

/// Out = -A per lane, mod 2^Width. Aliasing allowed.
void sliceNeg(unsigned Width, const uint64_t *A, uint64_t *Out);

/// Out = A * B per lane, mod 2^Width. Uses the schoolbook slice-space
/// method up to kSchoolbookMulMaxWidth and a lane-space round-trip above
/// it. \p Out must not alias A or B.
void sliceMul(unsigned Width, const uint64_t *A, const uint64_t *B,
              uint64_t *Out);

//===----------------------------------------------------------------------===//
// Wide engine: lane-templated kernels behind runtime ISA dispatch
//===----------------------------------------------------------------------===//

/// The instruction sets the wide engine can target. Ordered by capability:
/// clamping a forced ISA to the best supported one is a simple <=.
enum class Isa : uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// Display name ("scalar", "avx2", "avx512").
const char *isaName(Isa I);

/// Parses an isaName()/MBA_FORCE_ISA spelling; returns false (and leaves
/// \p Out alone) for anything else.
bool parseIsaName(std::string_view Name, Isa &Out);

/// Largest block any ISA back end processes, for sizing caller stack
/// buffers: AVX-512 runs 8 words (512 lanes) per slice.
inline constexpr unsigned MaxWideWords = 8;
inline constexpr unsigned MaxWideLanes = MaxWideWords * 64;

/// One ISA back end's kernel set. Slice arrays are slice-major with Words
/// words per slice (slice b at [b*Words, (b+1)*Words)); lane arrays hold
/// one word per point, N <= Words*64 per call. All back ends compute
/// bit-identical results; only throughput differs.
struct WideKernels {
  Isa IsaTag = Isa::Scalar;
  unsigned Words = 1; ///< 64-bit words per slice; lanes per block = 64*Words

  // Slice space (Width slices x Words words). Aliasing Out with an input
  // is allowed everywhere except SliceMul.
  void (*SliceNot)(unsigned Width, const uint64_t *A, uint64_t *Out);
  void (*SliceAnd)(unsigned Width, const uint64_t *A, const uint64_t *B,
                   uint64_t *Out);
  void (*SliceOr)(unsigned Width, const uint64_t *A, const uint64_t *B,
                  uint64_t *Out);
  void (*SliceXor)(unsigned Width, const uint64_t *A, const uint64_t *B,
                   uint64_t *Out);
  void (*SliceAdd)(unsigned Width, const uint64_t *A, const uint64_t *B,
                   uint64_t *Out);
  void (*SliceSub)(unsigned Width, const uint64_t *A, const uint64_t *B,
                   uint64_t *Out);
  void (*SliceNeg)(unsigned Width, const uint64_t *A, uint64_t *Out);
  void (*SliceMul)(unsigned Width, const uint64_t *A, const uint64_t *B,
                   uint64_t *Out);
  void (*SliceBroadcast)(unsigned Width, uint64_t Value, uint64_t *Out);

  /// \p Blocks consecutive in-place 64x64 bit-matrix transposes.
  void (*TransposeBlocks)(uint64_t *M, unsigned Blocks);
  /// Wide lanesToSlices/slicesToLanes (NumLanes <= Words*64); lanes beyond
  /// NumLanes read/write as 0.
  void (*LanesToSlices)(const uint64_t *Lanes, unsigned NumLanes,
                        unsigned Width, uint64_t *Slices);
  void (*SlicesToLanes)(const uint64_t *Slices, unsigned Width,
                        unsigned NumLanes, uint64_t *Lanes);

  // Lane space. The *M variants mask every output to the word width.
  void (*LaneCopyM)(const uint64_t *A, uint64_t *Out, unsigned N,
                    uint64_t Mask);
  void (*LaneNotM)(const uint64_t *A, uint64_t *Out, unsigned N,
                   uint64_t Mask);
  void (*LaneNegM)(const uint64_t *A, uint64_t *Out, unsigned N,
                   uint64_t Mask);
  void (*LaneAnd)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                  unsigned N);
  void (*LaneOr)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                 unsigned N);
  void (*LaneXor)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                  unsigned N);
  void (*LaneAddM)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                   unsigned N, uint64_t Mask);
  void (*LaneSubM)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                   unsigned N, uint64_t Mask);
  void (*LaneMulM)(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                   unsigned N, uint64_t Mask);
  // Fused scalar-operand forms: one pass where LaneFill plus the
  // two-source kernel would cost three (constants and coefficients are
  // the backbone of linear MBA, so these carry real traffic).
  void (*LaneAndS)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N);
  void (*LaneOrS)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N);
  void (*LaneXorS)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N);
  /// Out[j] = (A[j] + C) & Mask.
  void (*LaneAddSM)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N,
                    uint64_t Mask);
  /// Out[j] = (A[j] - C) & Mask.
  void (*LaneSubSM)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N,
                    uint64_t Mask);
  /// Out[j] = (C - A[j]) & Mask.
  void (*LaneRSubSM)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N,
                     uint64_t Mask);
  /// Out[j] = (A[j] * C) & Mask.
  void (*LaneMulSM)(const uint64_t *A, uint64_t C, uint64_t *Out, unsigned N,
                    uint64_t Mask);
  void (*LaneFill)(uint64_t V, uint64_t *Out, unsigned N);
  /// Out[j] = bit j of Bits ? C : 0 (Bits holds ceil(N/64) words).
  void (*LaneSelect)(const uint64_t *Bits, uint64_t C, uint64_t *Out,
                     unsigned N);
  /// Out[j] = bit j of Bits ? C1 : C0 — any op of a Uniform and a Splat
  /// value collapses to this single pass.
  void (*LaneSelect2)(const uint64_t *Bits, uint64_t C1, uint64_t C0,
                      uint64_t *Out, unsigned N);
};

/// The best ISA this build AND this CPU support. Computed once.
Isa bestSupportedIsa();

/// True when \p I is available (compiled in and supported by the CPU).
bool isaSupported(Isa I);

/// The ISA the wide engine currently dispatches to: the forced one
/// (forceIsa / MBA_FORCE_ISA, clamped to supported) or bestSupportedIsa().
Isa activeIsa();

/// Overrides dispatch for this process (benches and the agreement tests
/// iterate the back ends this way). Clamped to supported at use.
void forceIsa(Isa I);

/// Clears forceIsa and re-reads MBA_FORCE_ISA on next use.
void clearForcedIsa();

/// The kernel table for \p I, clamped to the best supported ISA at or
/// below it. kernelsFor(Isa::Scalar) always works.
const WideKernels &kernelsFor(Isa I);

/// kernelsFor(activeIsa()).
inline const WideKernels &activeKernels() { return kernelsFor(activeIsa()); }

namespace detail {
/// Per-TU back-end tables; null when the back end is not compiled in
/// (non-x86-64 builds). Implemented in Bitslice.cpp / BitsliceAvx2.cpp /
/// BitsliceAvx512.cpp, each with its own ISA code-gen flags.
const WideKernels *scalarWideKernels();
const WideKernels *avx2WideKernels();
const WideKernels *avx512WideKernels();
} // namespace detail

} // namespace mba::bitslice

#endif // MBA_SUPPORT_BITSLICE_H
