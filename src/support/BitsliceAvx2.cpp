//===- support/BitsliceAvx2.cpp - 256-lane (AVX2) wide back end -----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AVX2 instantiation of the wide kernel set: 4 words per slice, 256
/// lanes per block. This translation unit is compiled with -mavx2 (see
/// src/support/CMakeLists.txt), so the lane-templated bodies in
/// BitsliceKernels.h vectorize to 256-bit ymm operations; the kernels
/// themselves stay ISA-agnostic source. Whether this back end actually
/// runs is a *runtime* decision (bestSupportedIsa checks CPUID), so the
/// binary stays runnable on pre-AVX2 hardware.
///
//===----------------------------------------------------------------------===//

#include "support/Bitslice.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)

#include "support/BitsliceKernels.h"

const mba::bitslice::WideKernels *mba::bitslice::detail::avx2WideKernels() {
  static const WideKernels Table = wide::makeKernels<4>(Isa::Avx2);
  return &Table;
}

#else

// Built without AVX2 code-gen (non-x86 target or the compiler rejected
// -mavx2): the back end is absent and dispatch falls through to scalar.
const mba::bitslice::WideKernels *mba::bitslice::detail::avx2WideKernels() {
  return nullptr;
}

#endif
