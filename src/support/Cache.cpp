//===- support/Cache.cpp - Snapshot reader/writer -------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Cache.h"

#include <cstdio>

using namespace mba;

// Sanity caps against corrupted length fields: no section name is longer
// than a path component, and no payload (a printed expression or a small
// coefficient list) comes anywhere near 256 MiB.
static constexpr uint32_t MaxSectionNameLen = 4096;
static constexpr uint32_t MaxPayloadLen = 1u << 28;

//===----------------------------------------------------------------------===//
// SnapshotWriter
//===----------------------------------------------------------------------===//

SnapshotWriter::SnapshotWriter(const std::string &Path, uint32_t Width) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File) {
    Healthy = false;
    return;
  }
  writeBytes(SnapshotMagic, sizeof(SnapshotMagic));
  writeU32(SnapshotVersion);
  writeU32(Width);
}

SnapshotWriter::~SnapshotWriter() {
  if (File)
    std::fclose(static_cast<std::FILE *>(File));
}

void SnapshotWriter::writeBytes(const void *P, size_t N) {
  if (!File || !Healthy)
    return;
  if (std::fwrite(P, 1, N, static_cast<std::FILE *>(File)) != N)
    Healthy = false;
}

void SnapshotWriter::writeU32(uint32_t V) {
  uint8_t B[4];
  for (int I = 0; I != 4; ++I)
    B[I] = (uint8_t)(V >> (8 * I));
  writeBytes(B, 4);
}

void SnapshotWriter::writeU64(uint64_t V) {
  uint8_t B[8];
  for (int I = 0; I != 8; ++I)
    B[I] = (uint8_t)(V >> (8 * I));
  writeBytes(B, 8);
}

void SnapshotWriter::beginSection(std::string_view Name, uint64_t Count) {
  writeU32((uint32_t)Name.size());
  writeBytes(Name.data(), Name.size());
  writeU64(Count);
}

void SnapshotWriter::entry(uint64_t Key, const std::vector<uint8_t> &Payload) {
  writeU64(Key);
  writeU32((uint32_t)Payload.size());
  writeBytes(Payload.data(), Payload.size());
}

bool SnapshotWriter::finish() {
  if (!File)
    return false;
  if (std::fflush(static_cast<std::FILE *>(File)) != 0)
    Healthy = false;
  if (std::fclose(static_cast<std::FILE *>(File)) != 0)
    Healthy = false;
  File = nullptr;
  return Healthy;
}

//===----------------------------------------------------------------------===//
// SnapshotReader
//===----------------------------------------------------------------------===//

SnapshotReader::SnapshotReader(const std::string &Path, uint32_t ExpectWidth) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open snapshot '" + Path + "'";
    return;
  }
  // Slurp the whole file; snapshots are modest (printed expressions and
  // coefficient lists) and whole-buffer parsing makes truncation explicit.
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.insert(Data.end(), Buf, Buf + N);
  std::fclose(F);

  char Magic[sizeof(SnapshotMagic)];
  if (!take(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, SnapshotMagic, sizeof(Magic)) != 0) {
    Err = "'" + Path + "' is not a cache snapshot (bad magic)";
    return;
  }
  uint32_t Version = 0, Width = 0;
  if (!takeU32(Version) || !takeU32(Width)) {
    Err = "'" + Path + "' is truncated";
    return;
  }
  if (Version != SnapshotVersion) {
    Err = "snapshot '" + Path + "' has schema version " +
          std::to_string(Version) + ", expected " +
          std::to_string(SnapshotVersion);
    return;
  }
  if (Width != ExpectWidth) {
    Err = "snapshot '" + Path + "' was built at width " +
          std::to_string(Width) + ", this run uses width " +
          std::to_string(ExpectWidth);
    return;
  }
}

bool SnapshotReader::take(void *P, size_t N) {
  if (Pos + N > Data.size())
    return false;
  std::memcpy(P, Data.data() + Pos, N);
  Pos += N;
  return true;
}

bool SnapshotReader::takeU32(uint32_t &V) {
  uint8_t B[4];
  if (!take(B, 4))
    return false;
  V = 0;
  for (int I = 0; I != 4; ++I)
    V |= (uint32_t)B[I] << (8 * I);
  return true;
}

bool SnapshotReader::takeU64(uint64_t &V) {
  uint8_t B[8];
  if (!take(B, 8))
    return false;
  V = 0;
  for (int I = 0; I != 8; ++I)
    V |= (uint64_t)B[I] << (8 * I);
  return true;
}

bool SnapshotReader::nextSection(std::string &Name, uint64_t &Count) {
  if (!ok())
    return false;
  if (Pos == Data.size())
    return false; // clean end of file
  uint32_t NameLen = 0;
  if (!takeU32(NameLen) || NameLen > MaxSectionNameLen) {
    Err = "corrupted snapshot: bad section header";
    return false;
  }
  Name.resize(NameLen);
  if (NameLen && !take(Name.data(), NameLen)) {
    Err = "corrupted snapshot: truncated section name";
    return false;
  }
  if (!takeU64(Count)) {
    Err = "corrupted snapshot: truncated section count";
    return false;
  }
  return true;
}

bool SnapshotReader::entry(uint64_t &Key, std::vector<uint8_t> &Payload) {
  if (!ok())
    return false;
  uint32_t Len = 0;
  if (!takeU64(Key) || !takeU32(Len) || Len > MaxPayloadLen) {
    Err = "corrupted snapshot: bad entry header";
    return false;
  }
  Payload.resize(Len);
  if (Len && !take(Payload.data(), Len)) {
    Err = "corrupted snapshot: truncated entry payload";
    return false;
  }
  return true;
}
