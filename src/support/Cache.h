//===- support/Cache.h - Sharded concurrent LRU caches ----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic memoization layer: a generic sharded concurrent LRU cache
/// plus a versioned binary snapshot format for cross-run persistence.
///
/// MBA-Solver's workload is dominated by recomputation — corpus expressions
/// share subterms, the simplifier re-derives basis solutions for
/// semantically identical subexpressions, and the staged checker re-proves
/// pairs it has already decided. Three clients sit on top of this layer:
/// the simplification cache (mba/SimplifyCache.h), the basis/lookup cache
/// (mba/Basis.h) and the verdict cache (solvers/EquivalenceChecker.h).
///
/// Keys are 64-bit semantic hashes (signature vectors, canonical
/// fingerprints). The cache stores no full keys beyond the hash, so a hash
/// collision would alias two entries; with the mixers below the probability
/// is ~n^2 / 2^65 (about 2^-25 for a million-entry cache), far below the
/// solver backends' own error sources. docs/PERF.md discusses the trade.
///
/// Concurrency: the key space is split over N shards (power of two), each
/// a mutex-guarded hash map with an intrusive LRU list threaded through the
/// map's nodes (libstdc++/libc++ node-based maps guarantee stable element
/// addresses). Lookups and inserts on different shards never contend.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_CACHE_H
#define MBA_SUPPORT_CACHE_H

#include "support/ThreadSafety.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mba {

//===----------------------------------------------------------------------===//
// Hashing helpers
//===----------------------------------------------------------------------===//

/// Finalizing 64-bit mixer (splitmix64): every input bit affects every
/// output bit. Used both to derive shard indices and to build cache keys.
inline uint64_t hashMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Order-sensitive accumulation of \p V into the running hash \p H.
inline uint64_t hashCombine64(uint64_t H, uint64_t V) {
  return hashMix64(H ^ (V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2)));
}

/// Hash of a byte string (FNV-1a folded through the finalizer).
inline uint64_t hashBytes64(const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != Len; ++I)
    H = (H ^ P[I]) * 0x100000001b3ULL;
  return hashMix64(H);
}

inline uint64_t hashString64(std::string_view S) {
  return hashBytes64(S.data(), S.size());
}

//===----------------------------------------------------------------------===//
// CacheStats
//===----------------------------------------------------------------------===//

/// Rolled-up counters of one cache (summed over its shards).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0; ///< current population, not a rate

  CacheStats &operator+=(const CacheStats &O) {
    Hits += O.Hits;
    Misses += O.Misses;
    Inserts += O.Inserts;
    Evictions += O.Evictions;
    Entries += O.Entries;
    return *this;
  }
};

//===----------------------------------------------------------------------===//
// ShardedCache
//===----------------------------------------------------------------------===//

/// A concurrent LRU cache from 64-bit keys to values of type \p V, sharded
/// by the mixed key's top bits. \p V must be copyable; lookups hand out
/// copies, so values should be cheap to copy (pointers, small structs, or
/// small vectors).
template <typename V> class ShardedCache {
public:
  /// \p Capacity is the total entry budget, split evenly over
  /// \p NumShards (rounded up to a power of two).
  explicit ShardedCache(size_t Capacity = 1 << 16, unsigned NumShards = 16) {
    unsigned Shards = 1;
    ShardBits = 0;
    while (Shards < NumShards && Shards < 256) {
      Shards <<= 1;
      ++ShardBits;
    }
    ShardCapacity = Capacity / Shards ? Capacity / Shards : 1;
    Shards_.reserve(Shards);
    for (unsigned I = 0; I != Shards; ++I)
      Shards_.push_back(std::make_unique<Shard>());
  }

  /// Copies the value of \p Key into \p Out and marks the entry
  /// most-recently-used. Counts a hit or a miss.
  bool lookup(uint64_t Key, V &Out) {
    Shard &S = shardFor(Key);
    MutexLock Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      S.Misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    S.Hits.fetch_add(1, std::memory_order_relaxed);
    touch(S, &It->second);
    Out = It->second.Value;
    return true;
  }

  /// Inserts or overwrites \p Key. Evicts the shard's least-recently-used
  /// entry when the shard is over budget.
  void insert(uint64_t Key, const V &Value) {
    insertMerge(Key, Value,
                [](V &Existing, const V &New) { Existing = New; });
  }

  /// Like insert(), but an existing entry is combined with the new value
  /// via \p Merge(V &Existing, const V &New) instead of overwritten (e.g.
  /// the verdict cache keeps the larger exhausted budget).
  template <typename MergeFn>
  void insertMerge(uint64_t Key, const V &Value, MergeFn Merge) {
    Shard &S = shardFor(Key);
    MutexLock Lock(S.Mu);
    auto [It, Inserted] = S.Map.try_emplace(Key, Node{Key, Value});
    Node *N = &It->second;
    if (!Inserted) {
      Merge(N->Value, Value);
      touch(S, N);
      return;
    }
    S.Inserts.fetch_add(1, std::memory_order_relaxed);
    pushFront(S, N);
    if (S.Map.size() > ShardCapacity) {
      Node *Victim = S.Tail;
      detach(S, Victim);
      S.Map.erase(Victim->Key);
      S.Evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Snapshot of all entries (shard by shard; the order is unspecified).
  std::vector<std::pair<uint64_t, V>> entries() const {
    std::vector<std::pair<uint64_t, V>> Out;
    for (const auto &SP : Shards_) {
      MutexLock Lock(SP->Mu);
      for (const auto &[Key, N] : SP->Map)
        Out.push_back({Key, N.Value});
    }
    return Out;
  }

  /// Rolled-up counters over all shards. The rate counters are relaxed
  /// atomics (never torn under --jobs=N; audited for the telemetry layer),
  /// so only the population read takes each shard's lock.
  CacheStats stats() const {
    CacheStats Out;
    for (const auto &SP : Shards_) {
      Out.Hits += SP->Hits.load(std::memory_order_relaxed);
      Out.Misses += SP->Misses.load(std::memory_order_relaxed);
      Out.Inserts += SP->Inserts.load(std::memory_order_relaxed);
      Out.Evictions += SP->Evictions.load(std::memory_order_relaxed);
      MutexLock Lock(SP->Mu);
      Out.Entries += SP->Map.size();
    }
    return Out;
  }

  size_t size() const { return stats().Entries; }

  /// Drops every entry; hit/miss counters are preserved.
  void clear() {
    for (const auto &SP : Shards_) {
      MutexLock Lock(SP->Mu);
      SP->Map.clear();
      SP->Head = SP->Tail = nullptr;
    }
  }

  unsigned numShards() const { return (unsigned)Shards_.size(); }
  size_t shardCapacity() const { return ShardCapacity; }

private:
  struct Node {
    uint64_t Key = 0;
    V Value{};
    Node *Prev = nullptr; ///< toward the MRU end
    Node *Next = nullptr; ///< toward the LRU end
  };

  struct Shard {
    mutable Mutex Mu;
    std::unordered_map<uint64_t, Node> Map MBA_GUARDED_BY(Mu);
    Node *Head MBA_GUARDED_BY(Mu) = nullptr; ///< most recently used
    Node *Tail MBA_GUARDED_BY(Mu) = nullptr; ///< least recently used
    // Relaxed atomics: written under Mu (the map/LRU updates need it
    // anyway) but readable lock-free by stats() and telemetry snapshots.
    std::atomic<uint64_t> Hits{0}, Misses{0}, Inserts{0}, Evictions{0};
  };

  Shard &shardFor(uint64_t Key) {
    size_t Index = ShardBits ? (hashMix64(Key) >> (64 - ShardBits)) : 0;
    return *Shards_[Index];
  }

  static void detach(Shard &S, Node *N) MBA_REQUIRES(S.Mu) {
    (N->Prev ? N->Prev->Next : S.Head) = N->Next;
    (N->Next ? N->Next->Prev : S.Tail) = N->Prev;
    N->Prev = N->Next = nullptr;
  }

  static void pushFront(Shard &S, Node *N) MBA_REQUIRES(S.Mu) {
    N->Prev = nullptr;
    N->Next = S.Head;
    if (S.Head)
      S.Head->Prev = N;
    S.Head = N;
    if (!S.Tail)
      S.Tail = N;
  }

  static void touch(Shard &S, Node *N) MBA_REQUIRES(S.Mu) {
    if (S.Head == N)
      return;
    detach(S, N);
    pushFront(S, N);
  }

  std::vector<std::unique_ptr<Shard>> Shards_;
  size_t ShardCapacity = 1;
  unsigned ShardBits = 0;
};

//===----------------------------------------------------------------------===//
// Snapshot format
//===----------------------------------------------------------------------===//
//
// Little-endian binary layout:
//
//   8 bytes   magic "MBACACHE"
//   u32       schema version (SnapshotVersion)
//   u32       word width the caches were built at
//   repeated sections until EOF:
//     u32       section-name length
//     bytes     section name (e.g. "simplify.result")
//     u64       entry count
//     repeated: u64 key, u32 payload length, payload bytes
//
// A reader rejects mismatched magic, version or width up front (a cache
// keyed at width 64 is meaningless at width 8), and reports truncation or
// implausible lengths as corruption. Unknown section names are skipped, so
// the format is forward-extensible within one version.

inline constexpr char SnapshotMagic[8] = {'M', 'B', 'A', 'C', 'A', 'C', 'H', 'E'};
inline constexpr uint32_t SnapshotVersion = 1;

/// Streaming writer for the snapshot format. Construct, write sections via
/// beginSection()/entry(), then call finish() — which reports whether every
/// write landed. A writer that never reached finish() leaves a file that
/// readers reject as truncated.
class SnapshotWriter {
public:
  SnapshotWriter(const std::string &Path, uint32_t Width);
  ~SnapshotWriter();

  bool ok() const { return File && Healthy; }

  void beginSection(std::string_view Name, uint64_t Count);
  void entry(uint64_t Key, const std::vector<uint8_t> &Payload);
  bool finish();

private:
  void writeBytes(const void *P, size_t N);
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);

  void *File = nullptr; ///< std::FILE*, kept opaque for the header
  bool Healthy = true;
};

/// Whole-file snapshot reader. The constructor slurps and validates the
/// header; ok() is false (with error()) on open failure, bad magic, version
/// or width mismatch. Iterate nextSection() / entry(); both return false
/// and set error() on corruption.
class SnapshotReader {
public:
  SnapshotReader(const std::string &Path, uint32_t ExpectWidth);

  bool ok() const { return Err.empty(); }
  const std::string &error() const { return Err; }

  /// Advances to the next section header. Returns false at a clean end of
  /// file, or on corruption (then error() is set).
  bool nextSection(std::string &Name, uint64_t &Count);

  /// Reads one entry of the current section.
  bool entry(uint64_t &Key, std::vector<uint8_t> &Payload);

private:
  bool take(void *P, size_t N);
  bool takeU32(uint32_t &V);
  bool takeU64(uint64_t &V);

  std::vector<uint8_t> Data;
  size_t Pos = 0;
  std::string Err;
};

/// Serializes every entry of \p Cache as one snapshot section; \p Encode
/// appends the payload bytes of a value to a buffer.
template <typename V, typename EncodeFn>
void saveCacheSection(SnapshotWriter &W, std::string_view Name,
                      const ShardedCache<V> &Cache, EncodeFn Encode) {
  auto Entries = Cache.entries();
  W.beginSection(Name, Entries.size());
  std::vector<uint8_t> Buf;
  for (const auto &[Key, Value] : Entries) {
    Buf.clear();
    Encode(Value, Buf);
    W.entry(Key, Buf);
  }
}

/// Loads \p Count entries of the current section into \p Cache; \p Decode
/// turns payload bytes back into a value (std::nullopt drops the entry).
/// Returns the number of entries loaded.
template <typename V, typename DecodeFn>
size_t loadCacheSection(SnapshotReader &R, uint64_t Count,
                        ShardedCache<V> &Cache, DecodeFn Decode) {
  size_t Loaded = 0;
  uint64_t Key = 0;
  std::vector<uint8_t> Buf;
  for (uint64_t I = 0; I != Count; ++I) {
    if (!R.entry(Key, Buf))
      break;
    if (std::optional<V> Value = Decode(Buf)) {
      Cache.insert(Key, *Value);
      ++Loaded;
    }
  }
  return Loaded;
}

//===----------------------------------------------------------------------===//
// Little-endian payload encoding helpers
//===----------------------------------------------------------------------===//

inline void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

inline void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

inline void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back((uint8_t)(V >> (8 * I)));
}

/// Bounds-checked sequential decoder over a payload buffer. Failure is
/// sticky: once a read runs past the end, every later read fails too, so
/// callers can batch reads and check failed() once.
struct ByteCursor {
  const std::vector<uint8_t> &Buf;
  size_t Pos = 0;
  bool Fail = false;

  explicit ByteCursor(const std::vector<uint8_t> &Buf) : Buf(Buf) {}

  uint8_t u8() {
    if (Pos + 1 > Buf.size()) {
      Fail = true;
      return 0;
    }
    return Buf[Pos++];
  }

  uint32_t u32() {
    uint32_t V = 0;
    if (Pos + 4 > Buf.size()) {
      Fail = true;
      return 0;
    }
    for (int I = 0; I != 4; ++I)
      V |= (uint32_t)Buf[Pos++] << (8 * I);
    return V;
  }

  uint64_t u64() {
    uint64_t V = 0;
    if (Pos + 8 > Buf.size()) {
      Fail = true;
      return 0;
    }
    for (int I = 0; I != 8; ++I)
      V |= (uint64_t)Buf[Pos++] << (8 * I);
    return V;
  }

  bool failed() const { return Fail; }
  bool atEnd() const { return Pos == Buf.size(); }
};

} // namespace mba

#endif // MBA_SUPPORT_CACHE_H
