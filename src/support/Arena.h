//===- support/Arena.h - Bump-pointer arena allocator ----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena. Expression nodes are allocated here so that
/// they live exactly as long as their owning Context, and so that the memory
/// cost of a simplification run can be measured precisely (Table 8 of the
/// paper reports simplifier memory use).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_ARENA_H
#define MBA_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mba {

/// Bump-pointer allocator with slab growth.
///
/// Objects allocated from the arena are never individually freed; everything
/// is released when the arena is destroyed. Destructors of allocated objects
/// are NOT run, so only trivially-destructible payloads should be placed here
/// (expression nodes satisfy this).
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    if (P + Size > End) {
      growSlab(Size + Align);
      P = (Cur + Align - 1) & ~(uintptr_t)(Align - 1);
    }
    Cur = P + Size;
    BytesUsed += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Allocates and default-constructs a \p T with the given arguments.
  template <typename T, typename... Args> T *create(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Copies the character range into the arena and returns a NUL-terminated
  /// pointer. Used to intern variable names.
  const char *copyString(const char *Data, size_t Len) {
    char *Mem = static_cast<char *>(allocate(Len + 1, 1));
    std::copy(Data, Data + Len, Mem);
    Mem[Len] = '\0';
    return Mem;
  }

  /// Total payload bytes handed out so far (excludes slab slack).
  size_t bytesUsed() const { return BytesUsed; }

  /// Total bytes reserved from the system.
  size_t bytesReserved() const { return BytesReserved; }

private:
  void growSlab(size_t MinSize) {
    size_t SlabSize = Slabs.empty() ? 4096 : Slabs.back().Size * 2;
    if (SlabSize < MinSize)
      SlabSize = MinSize;
    Slabs.push_back({std::make_unique<char[]>(SlabSize), SlabSize});
    BytesReserved += SlabSize;
    Cur = reinterpret_cast<uintptr_t>(Slabs.back().Mem.get());
    End = Cur + SlabSize;
  }

  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };

  std::vector<Slab> Slabs;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t BytesUsed = 0;
  size_t BytesReserved = 0;
};

} // namespace mba

#endif // MBA_SUPPORT_ARENA_H
