//===- support/BitsliceAvx512.cpp - 512-lane (AVX-512) wide back end ------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AVX-512 instantiation of the wide kernel set: 8 words per slice,
/// 512 lanes per block. Compiled with -mavx512f/bw/dq/vl (see
/// src/support/CMakeLists.txt) so the shared kernel bodies vectorize to
/// 512-bit zmm operations — notably the 64-bit lane multiply (vpmullq,
/// AVX-512DQ) that AVX2 has to emulate. Runtime dispatch (CPUID in
/// bestSupportedIsa) decides whether this back end ever executes.
///
//===----------------------------------------------------------------------===//

#include "support/Bitslice.h"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX512F__) &&        \
    defined(__AVX512BW__) && defined(__AVX512DQ__) && defined(__AVX512VL__)

#include "support/BitsliceKernels.h"

const mba::bitslice::WideKernels *mba::bitslice::detail::avx512WideKernels() {
  static const WideKernels Table = wide::makeKernels<8>(Isa::Avx512);
  return &Table;
}

#else

// Built without AVX-512 code-gen: the back end is absent and dispatch
// falls through to AVX2 or scalar.
const mba::bitslice::WideKernels *mba::bitslice::detail::avx512WideKernels() {
  return nullptr;
}

#endif
