//===- support/Telemetry.h - Unified metrics + tracing layer ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified telemetry layer: a global metrics registry (monotonic
/// counters, gauges, log-scale histograms) plus a scoped tracing-span API,
/// with exporters to the Chrome trace-event JSON format (loadable in
/// chrome://tracing / Perfetto) and a flat Prometheus-style text dump.
///
/// Everything in the pipeline — parser, classification, signatures, the
/// Algorithm 1 simplification stages, basis solving, the stage-0 prover,
/// SMT backend calls, cache lookups, and thread-pool tasks — reports into
/// this one subsystem, so a single snapshot (or one trace file) covers a
/// whole study instead of N ad-hoc stat structs.
///
/// Design constraints, in order:
///
///  1. **Near-zero overhead when disabled.** Both metrics and tracing are
///     off by default; every recording operation starts with one relaxed
///     atomic load and returns. Instrumentation can therefore live inside
///     per-expression hot paths (docs/OBSERVABILITY.md records measured
///     costs; bench/micro_telemetry reproduces them).
///  2. **No cross-thread contention when enabled.** Counters and histogram
///     buckets are striped over cache-line-padded relaxed atomics, with the
///     stripe picked per thread; span events go to per-thread buffers.
///     Aggregation happens only at snapshot/collect time.
///  3. **Stable identity.** Metrics are named once and live for the
///     process; threads carry stable ids and labels (the pool sets
///     "worker-N"), so traces from repeated runs line up.
///
/// Usage:
///
///   // metrics — cache the reference, then count
///   static telemetry::Counter &C = telemetry::counter("simplify.calls");
///   C.add();
///
///   // spans — RAII, nanosecond timestamps, per-thread trees
///   { MBA_TRACE_SPAN("simplify.linear"); ...work...; }
///
///   // export
///   telemetry::writeChromeTrace("trace.json");
///   telemetry::writeMetricsText("metrics.txt");
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_TELEMETRY_H
#define MBA_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace mba::telemetry {

//===----------------------------------------------------------------------===//
// Global enable switches
//===----------------------------------------------------------------------===//

namespace detail {
extern std::atomic<bool> MetricsOn;
extern std::atomic<bool> TracingOn;
} // namespace detail

/// Metrics recording (counters/gauges/histograms). Off by default.
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}
void setMetricsEnabled(bool On);

/// Span tracing. Off by default.
inline bool tracingEnabled() {
  return detail::TracingOn.load(std::memory_order_relaxed);
}
void setTracingEnabled(bool On);

//===----------------------------------------------------------------------===//
// Metrics: counters, gauges, histograms
//===----------------------------------------------------------------------===//

/// Stripe count for counters/histograms: enough that a handful of pool
/// workers rarely share a stripe, small enough to keep snapshots cheap.
inline constexpr unsigned NumStripes = 8;

/// The stripe this thread writes to (assigned round-robin on first use).
unsigned threadStripe();

namespace detail {
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> V{0};
};
} // namespace detail

/// Monotonic counter. add() is one relaxed load (the enable check) plus one
/// relaxed fetch_add on a thread-striped slot; value() sums the stripes.
class Counter {
public:
  void add(uint64_t N = 1) {
    if (!metricsEnabled())
      return;
    Stripes[threadStripe()].V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t Sum = 0;
    for (const auto &S : Stripes)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }

private:
  detail::PaddedAtomic Stripes[NumStripes];
};

/// Last-value gauge (e.g. current cache population, configured job count).
/// set()/add() are single relaxed atomic ops; not striped — gauges record a
/// state, not a rate, so the last writer wins by design.
class Gauge {
public:
  void set(int64_t V) {
    if (!metricsEnabled())
      return;
    Value.store(V, std::memory_order_relaxed);
  }
  void add(int64_t Delta) {
    if (!metricsEnabled())
      return;
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Number of log2 histogram buckets: bucket 0 counts the value 0, bucket i
/// (1..64) counts values in [2^(i-1), 2^i).
inline constexpr unsigned HistogramBuckets = 65;

/// Bucket index of \p V (0 for 0, otherwise bit_width).
inline unsigned histogramBucket(uint64_t V) {
  unsigned B = 0;
  while (V) {
    ++B;
    V >>= 1;
  }
  return B;
}

/// Inclusive upper bound of bucket \p B (2^B - 1; bucket 0 holds only 0).
inline uint64_t histogramBucketMax(unsigned B) {
  return B == 0 ? 0 : (B >= 64 ? ~0ULL : (1ULL << B) - 1);
}

/// Log-scale (power-of-two bucket) histogram of uint64 samples — typically
/// nanosecond durations or sizes. record() touches one striped bucket slot
/// plus striped count/sum accumulators.
class Histogram {
public:
  void record(uint64_t V) {
    if (!metricsEnabled())
      return;
    Stripe &S = Stripes[threadStripe()];
    S.Buckets[histogramBucket(V)].fetch_add(1, std::memory_order_relaxed);
    S.Count.fetch_add(1, std::memory_order_relaxed);
    S.Sum.fetch_add(V, std::memory_order_relaxed);
  }

  /// Merged view across stripes (and therefore across threads).
  struct Snapshot {
    uint64_t Buckets[HistogramBuckets] = {};
    uint64_t Count = 0;
    uint64_t Sum = 0;

    /// Estimated value at percentile \p P (0..100), linearly interpolated
    /// inside the log2 bucket holding that rank — the usual
    /// Prometheus-style histogram_quantile estimate, so p50/p95/p99 no
    /// longer require offline bucket math. Exact when a bucket holds one
    /// distinct value (e.g. bucket 0 = 0); otherwise accurate to the
    /// bucket's span. Returns 0 on an empty snapshot.
    double percentile(double P) const;
  };
  Snapshot snapshot() const {
    Snapshot Out;
    for (const Stripe &S : Stripes) {
      for (unsigned B = 0; B != HistogramBuckets; ++B)
        Out.Buckets[B] += S.Buckets[B].load(std::memory_order_relaxed);
      Out.Count += S.Count.load(std::memory_order_relaxed);
      Out.Sum += S.Sum.load(std::memory_order_relaxed);
    }
    return Out;
  }

private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> Buckets[HistogramBuckets] = {};
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
  };
  Stripe Stripes[NumStripes];
};

/// Registry lookup: returns the process-lifetime metric named \p Name,
/// creating it on first use. Callers should cache the reference (e.g. in a
/// function-local static) — lookup takes the registry mutex. Requesting the
/// same name as two different kinds is a programming error and aborts.
Counter &counter(std::string_view Name);
Gauge &gauge(std::string_view Name);
Histogram &histogram(std::string_view Name);

//===----------------------------------------------------------------------===//
// Callback metric sources (CacheStats / PoolStats migration)
//===----------------------------------------------------------------------===//

/// Receives the counters of one callback source during a snapshot.
class MetricsSink {
public:
  virtual ~MetricsSink() = default;
  virtual void value(std::string_view Name, uint64_t V) = 0;
};

/// A live object (a cache, a pool) that owns its own internally-synchronized
/// counters registers a source; each snapshot invokes the callback to pull
/// the current values into the unified view. RAII: destroying the handle
/// (or the owning object, which must destroy the handle first) unregisters.
class SourceHandle {
public:
  SourceHandle() = default;
  explicit SourceHandle(uint64_t Id) : Id(Id) {}
  SourceHandle(SourceHandle &&O) noexcept : Id(O.Id) { O.Id = 0; }
  SourceHandle &operator=(SourceHandle &&O) noexcept;
  SourceHandle(const SourceHandle &) = delete;
  SourceHandle &operator=(const SourceHandle &) = delete;
  ~SourceHandle() { reset(); }

  void reset();
  bool active() const { return Id != 0; }

private:
  uint64_t Id = 0;
};

/// Registers \p Fn to be polled at snapshot time. The callback must stay
/// valid until the handle is destroyed and must be safe to invoke from any
/// thread. Values from sources appear in snapshots as counters; two sources
/// emitting the same name are summed.
SourceHandle registerSource(std::function<void(MetricsSink &)> Fn);

//===----------------------------------------------------------------------===//
// Snapshot + exporters
//===----------------------------------------------------------------------===//

/// One metric in a registry snapshot.
struct MetricValue {
  enum Kind : uint8_t { KCounter, KGauge, KHistogram };
  std::string Name;
  Kind Which = KCounter;
  uint64_t Value = 0;     ///< counter sum / source value
  int64_t GaugeValue = 0; ///< gauges only
  Histogram::Snapshot Hist; ///< histograms only
};

/// The full registry — registered metrics plus polled sources — sorted by
/// name. Safe to call at any time from any thread.
std::vector<MetricValue> snapshotMetrics();

/// Flat Prometheus-style text dump of snapshotMetrics():
///   # TYPE mba_simplify_calls counter
///   mba_simplify_calls 128
/// Histograms emit cumulative _bucket{le="..."} lines plus _count/_sum.
/// Dots in metric names become underscores; every name gains the "mba_"
/// prefix. Returns false if the file cannot be written.
bool writeMetricsText(const std::string &Path);

/// Same dump onto an open stream (used by mba_cli --stats and tests).
void printMetricsText(std::FILE *Out);

/// Human-readable breakdown: counters/gauges one per line, histograms as
/// count/avg, plus a per-span-name aggregation of the collected trace
/// (calls, total ms, mean). The mba_cli --stats output.
void printSummary(std::FILE *Out);

//===----------------------------------------------------------------------===//
// Tracing spans
//===----------------------------------------------------------------------===//

/// Nanoseconds since an arbitrary process-wide monotonic epoch.
uint64_t nowNs();

/// Interns \p Name into process-lifetime storage and returns a stable
/// pointer; equal strings return the same pointer. For span names built at
/// runtime (e.g. "solve.backend.Z3") — string literals need no interning.
const char *internName(std::string_view Name);

/// Labels the calling thread in trace exports ("worker-3"); optionally
/// pins its trace tid (pass -1 to keep the auto-assigned one). The pool
/// labels its workers so per-worker spans merge with stable thread ids.
void setThreadLabel(std::string_view Label, int Tid = -1);

/// One completed span. Name points to a string literal or interned name.
struct TraceEvent {
  const char *Name = nullptr;
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  uint32_t Tid = 0;
};

/// Every completed span from every thread, sorted by (Tid, StartNs).
/// Collection is safe while other threads keep recording.
std::vector<TraceEvent> collectTrace();

/// (Tid, label) pairs of every thread that recorded or was labelled.
std::vector<std::pair<uint32_t, std::string>> traceThreads();

/// Number of spans dropped because a thread buffer hit its cap.
uint64_t traceDropped();

/// Discards all recorded spans (thread registrations and labels survive).
void clearTrace();

/// Writes the collected trace in the Chrome trace-event JSON format:
/// one complete ("ph":"X") event per span with microsecond ts/dur, plus
/// thread_name metadata. Loadable in chrome://tracing and Perfetto.
/// Returns false if the file cannot be written.
bool writeChromeTrace(const std::string &Path);

namespace detail {
void endSpan(const char *Name, uint64_t StartNs);
} // namespace detail

/// RAII scope for one traced span. When tracing is disabled at entry the
/// guard is inert (one relaxed load); the span is recorded at destruction.
class SpanGuard {
public:
  explicit SpanGuard(const char *Name)
      : Name(tracingEnabled() ? Name : nullptr),
        StartNs(this->Name ? nowNs() : 0) {}
  ~SpanGuard() {
    if (Name)
      detail::endSpan(Name, StartNs);
  }
  SpanGuard(const SpanGuard &) = delete;
  SpanGuard &operator=(const SpanGuard &) = delete;

private:
  const char *Name;
  uint64_t StartNs;
};

} // namespace mba::telemetry

#define MBA_TELEMETRY_CONCAT2(A, B) A##B
#define MBA_TELEMETRY_CONCAT(A, B) MBA_TELEMETRY_CONCAT2(A, B)

/// Records a span named \p NAME (a string literal or interned pointer)
/// covering the rest of the enclosing scope.
#define MBA_TRACE_SPAN(NAME)                                                   \
  ::mba::telemetry::SpanGuard MBA_TELEMETRY_CONCAT(MbaTraceSpan_,              \
                                                   __LINE__)(NAME)

#endif // MBA_SUPPORT_TELEMETRY_H
