//===- support/Json.h - Minimal JSON value parser ---------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON reader for the repo's own machine-readable
/// artifacts: the `BENCH_*.json` study reports (tools/bench-diff), the
/// query-log JSONL journal (`mba_cli explain`, parse-back tests), and any
/// future exporter that needs to be read back in-process.
///
/// Scope is deliberately narrow — parse a complete document into an owned
/// tree of `json::Value` nodes and navigate it. No streaming, no writer
/// (producers emit text directly, as Harness/QueryLog do), no comments or
/// trailing-comma extensions. Numbers are held as doubles: every value our
/// exporters emit (counts, nanosecond sums, seconds) fits the 2^53 exact
/// integer range, and identifiers that do not (fingerprints) are emitted as
/// hex strings by convention.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_JSON_H
#define MBA_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mba::json {

/// One parsed JSON value. Objects preserve member order (the order the
/// document listed them); lookup by key is linear, which is fine for the
/// small objects our reports contain.
class Value {
public:
  enum Kind : uint8_t { KNull, KBool, KNumber, KString, KArray, KObject };

  Value() = default;
  explicit Value(Kind K) : Which(K) {}

  Kind kind() const { return Which; }
  bool isNull() const { return Which == KNull; }
  bool isBool() const { return Which == KBool; }
  bool isNumber() const { return Which == KNumber; }
  bool isString() const { return Which == KString; }
  bool isArray() const { return Which == KArray; }
  bool isObject() const { return Which == KObject; }

  /// Scalar accessors; return the fallback when the kind does not match.
  bool asBool(bool Default = false) const {
    return Which == KBool ? Flag : Default;
  }
  double asNumber(double Default = 0) const {
    return Which == KNumber ? Num : Default;
  }
  uint64_t asU64(uint64_t Default = 0) const {
    return Which == KNumber && Num >= 0 ? static_cast<uint64_t>(Num) : Default;
  }
  const std::string &asString() const { return Str; }

  /// Array access.
  size_t size() const { return Elements.size(); }
  const Value &at(size_t I) const { return Elements[I]; }
  const std::vector<Value> &elements() const { return Elements; }

  /// Object access: nullptr when absent or when this is not an object.
  const Value *get(std::string_view Key) const {
    if (Which != KObject)
      return nullptr;
    for (const auto &M : Mbrs)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Mbrs;
  }

  /// Convenience: object member as number/string with a fallback.
  double numberAt(std::string_view Key, double Default = 0) const {
    const Value *V = get(Key);
    return V ? V->asNumber(Default) : Default;
  }
  std::string_view stringAt(std::string_view Key,
                            std::string_view Default = "") const {
    const Value *V = get(Key);
    return V && V->isString() ? std::string_view(V->Str) : Default;
  }

private:
  friend class Parser;
  Kind Which = KNull;
  bool Flag = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Elements;
  std::vector<std::pair<std::string, Value>> Mbrs;
};

/// Parses \p Text as one complete JSON document into \p Out. On failure
/// returns false and, when \p Error is non-null, describes the first
/// problem with a byte offset. Trailing whitespace is permitted; any other
/// trailing content is an error (JSONL callers split on newlines first).
bool parse(std::string_view Text, Value &Out, std::string *Error = nullptr);

/// Reads and parses a whole file. Returns false on I/O or parse errors.
bool parseFile(const std::string &Path, Value &Out,
               std::string *Error = nullptr);

} // namespace mba::json

#endif // MBA_SUPPORT_JSON_H
