//===- support/QueryLog.h - Per-query flight recorder -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-query flight recorder: a structured JSONL event journal that
/// captures, for every simplify and equivalence query, the full decision
/// trail — classification verdict, which Algorithm 1 stages ran, per-rule
/// fire counts / time / node deltas (Simplifier notes and e-graph
/// saturation), stage-0 outcome, cache hits per layer, the chosen backend,
/// AIG/CNF sizes, SAT conflict/propagation work, and per-stage wall time.
/// Where the telemetry layer answers "how much, in aggregate", the query
/// log answers "why was *this* query slow".
///
/// Discipline mirrors support/Telemetry.h:
///
///  1. **~Zero disabled cost.** Everything funnels through
///     `querylog::active()`, which is one relaxed atomic load returning
///     nullptr when no sink is open. Instrumentation sites therefore live
///     directly in Simplifier / Prover / the checkers.
///  2. **Thread-safe, line-atomic output.** Each record serializes into a
///     private buffer and is appended to the sink under one mutex, so an
///     8-way parallel study produces interleaved but individually intact
///     JSON lines (pinned by tests/querylog_test.cpp).
///  3. **Behavior-neutral.** Opening a log must not change verdicts or
///     simplified output: recording never toggles SimplifyOptions (in
///     particular not `Trail`, which suspends the result cache), it only
///     observes. Pinned bit-identical by harness_test.
///
/// Usage — one ambient scope per query, contributions from anywhere below:
///
///   { querylog::QueryScope Scope("check");      // outermost scope arms
///     ...
///     if (querylog::Record *R = querylog::active()) {
///       R->str("backend", Name);
///       R->num("sat_conflicts", Delta);
///     }
///   }                                           // record written here
///
/// Scopes nest: an inner scope of the *same* kind is pass-through (the
/// AIG backend contributes SAT stats into the enclosing staged-checker
/// record; run standalone it opens its own), while an inner scope of a
/// *different* kind suppresses recording for its extent (an equivalence
/// check issued from inside simplify — the synth fallback's verification —
/// does not leak backend fields into the simplify record).
///
/// The same module owns the **rule-attribution registry**: process-wide
/// per-rule totals (fires, ns, node counts before/after, verified installs
/// vs rejects) fed from the same instrumentation hooks and exported through
/// a telemetry source as `rule.<name>.*` counters, so the summary lands in
/// the Prometheus dump and the `--json` report's `metrics` object without
/// extra plumbing. See docs/OBSERVABILITY.md for the record schema.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_QUERYLOG_H
#define MBA_SUPPORT_QUERYLOG_H

#include "support/Telemetry.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mba::querylog {

namespace detail {
extern std::atomic<bool> LogOn;
} // namespace detail

/// True when a sink (file or in-memory capture) is open. One relaxed load.
inline bool enabled() {
  return detail::LogOn.load(std::memory_order_relaxed);
}

/// Opens \p Path as the JSONL sink (truncating) and enables recording.
/// Returns false (and stays disabled) if the file cannot be created.
bool openFile(const std::string &Path);

/// Enables recording into an in-memory line buffer instead of a file —
/// the `mba_cli explain` path. Replaces any open sink.
void beginCapture();

/// Stops capture mode and returns the recorded lines (without newlines).
std::vector<std::string> endCapture();

/// Flushes and closes whichever sink is open; recording is disabled.
/// Safe to call when nothing is open.
void close();

/// Number of records written to the current sink since it was opened.
uint64_t recordsWritten();

//===----------------------------------------------------------------------===//
// Records and scopes
//===----------------------------------------------------------------------===//

/// One in-flight query record. Fields are typed key/values kept in insertion
/// order; `stage()` appends to the per-stage timing array and `rule()`
/// accumulates into the per-rule attribution array (same rule name merges).
/// Keys must be string literals (they are stored as pointers). Setting a
/// scalar key twice overwrites — later, more specific writers win.
class Record {
public:
  void str(const char *Key, std::string_view V);
  void num(const char *Key, uint64_t V);
  void snum(const char *Key, int64_t V);
  void fnum(const char *Key, double V);
  void flag(const char *Key, bool V);

  /// Appends one stage-timing entry: {"name": Name, "ns": Ns}.
  void stage(std::string_view Name, uint64_t Ns);

  /// Accumulates one rule-attribution entry; repeated calls with the same
  /// \p Name sum into a single {"rule", "fires", "ns", "nodes_before",
  /// "nodes_after"} row.
  void rule(std::string_view Name, uint64_t Fires, uint64_t Ns,
            uint64_t NodesBefore, uint64_t NodesAfter);

  /// Serializes the record as one JSON object (no trailing newline).
  std::string serialize(const char *Kind, uint64_t Seq) const;

private:
  struct Field {
    const char *Key;
    enum : uint8_t { FStr, FNum, FSNum, FFloat, FBool } Which;
    std::string S;
    uint64_t U = 0;
    int64_t I = 0;
    double D = 0;
    bool B = false;
  };
  struct StageEntry {
    std::string Name;
    uint64_t Ns;
  };
  struct RuleEntry {
    std::string Name;
    uint64_t Fires;
    uint64_t Ns;
    uint64_t NodesBefore;
    uint64_t NodesAfter;
  };

  Field &slot(const char *Key);

  std::vector<Field> Fields;
  std::vector<StageEntry> Stages;
  std::vector<RuleEntry> Rules;
};

/// The calling thread's active record, or nullptr when recording is off,
/// no scope is open, or a different-kind nested scope suppresses it.
Record *active();

/// RAII ambient scope for one query. The outermost scope on a thread owns
/// the record and writes it at destruction; see the file comment for the
/// nesting rules. \p Kind must be a string literal ("simplify", "check").
class QueryScope {
public:
  explicit QueryScope(const char *Kind);
  ~QueryScope();
  QueryScope(const QueryScope &) = delete;
  QueryScope &operator=(const QueryScope &) = delete;

  /// The record this scope arms, or nullptr when it is inert/pass-through.
  /// Most contributors should use querylog::active() instead.
  Record *record() { return Armed ? &Rec : nullptr; }

private:
  const char *Kind;
  bool Armed = false;       ///< outermost scope: owns + writes the record
  bool Suppressing = false; ///< different-kind nested scope
  uint64_t StartNs = 0;
  Record Rec;
};

/// RAII stage timer: appends {"name": Name, "ns": elapsed} to the record
/// that was active at construction. Inert (one relaxed load) when recording
/// is off. \p Name must outlive the timer (string literals do).
class StageTimer {
public:
  explicit StageTimer(const char *Name)
      : Name(Name), R(active()), StartNs(R ? telemetry::nowNs() : 0) {}
  ~StageTimer() {
    if (R)
      R->stage(Name, telemetry::nowNs() - StartNs);
  }
  StageTimer(const StageTimer &) = delete;
  StageTimer &operator=(const StageTimer &) = delete;

private:
  const char *Name;
  Record *R;
  uint64_t StartNs;
};

//===----------------------------------------------------------------------===//
// Rule-attribution registry
//===----------------------------------------------------------------------===//

/// Process-wide totals for one rewrite rule.
struct RuleStats {
  uint64_t Fires = 0;
  uint64_t Ns = 0;
  uint64_t NodesBefore = 0; ///< sum of node counts before each fire
  uint64_t NodesAfter = 0;  ///< sum after; Before - After = net reduction
  uint64_t Installs = 0;    ///< verified installs (synth fallback)
  uint64_t Rejects = 0;     ///< verification rejects
};

/// Adds one observation to \p Rule's process-wide totals and, when a query
/// record is active, to its per-query attribution array. Callers gate on
/// `telemetry::metricsEnabled() || querylog::active()` so the disabled
/// pipeline never takes the registry mutex.
void noteRule(std::string_view Rule, uint64_t Fires, uint64_t Ns,
              uint64_t NodesBefore, uint64_t NodesAfter);

/// Records a verified-install (true) or verification-reject (false) for
/// \p Rule — the synth fallback's accept/reject decision.
void noteRuleOutcome(std::string_view Rule, bool Installed);

/// Snapshot of the registry, sorted by rule name.
std::vector<std::pair<std::string, RuleStats>> ruleAttribution();

/// Drops all registry totals (tests).
void resetRuleAttribution();

} // namespace mba::querylog

#endif // MBA_SUPPORT_QUERYLOG_H
