//===- support/ThreadSafety.h - Clang thread-safety capabilities -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time concurrency checking: macro wrappers over Clang's
/// thread-safety-analysis attributes, plus capability-annotated mutex types
/// the concurrent components (support/ThreadPool, support/Cache,
/// support/Telemetry, mba/SimplifyCache) are written against.
///
/// The runtime story is unchanged — `mba::Mutex` is a `std::mutex` and
/// `MutexLock` is a `std::lock_guard` — but under Clang with
/// `-DMBA_THREAD_SAFETY=ON` (which adds `-Werror=thread-safety`) every
/// access to a field marked MBA_GUARDED_BY outside its mutex, every
/// forgotten unlock, and every call to an MBA_REQUIRES function without the
/// capability is a hard compile error. Under GCC (or with the option off)
/// every macro expands to nothing, so the annotations cost nothing and the
/// TSan job stays the dynamic backstop for what the static analysis cannot
/// see (docs/STATIC_ANALYSIS.md relates the two layers).
///
/// Why wrapper types instead of annotating `std::mutex` uses directly:
/// Clang's analysis only tracks types that carry the `capability`
/// attribute. libc++ annotates its `std::mutex`, libstdc++ does not, so a
/// tree that locks `std::mutex` directly gets no checking on the toolchain
/// most Linux CI uses. The wrappers pin the annotations into our own types,
/// independent of the standard library flavor.
///
/// Capabilities are also used for non-mutex invariants: `ast/Context.h`
/// models its owner-thread rule as a capability asserted by the runtime
/// owner check (MBA_ASSERT_CAPABILITY), so touching the interning tables
/// without going through the guardrail is a compile-time diagnostic under
/// Clang and a runtime assert elsewhere.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_THREADSAFETY_H
#define MBA_SUPPORT_THREADSAFETY_H

#include <mutex>

// Attribute dispatch: real attributes only under Clang (the only compiler
// implementing -Wthread-safety); no-ops everywhere else so GCC builds are
// untouched.
#if defined(__clang__) && defined(__has_attribute)
#define MBA_TSA_HAS(x) __has_attribute(x)
#else
#define MBA_TSA_HAS(x) 0
#endif

#if MBA_TSA_HAS(capability)
#define MBA_TSA(x) __attribute__((x))
#else
#define MBA_TSA(x)
#endif

/// Marks a type as a capability (a lock, or an abstract resource like
/// "ownership of this Context"). \p Name appears in diagnostics.
#define MBA_CAPABILITY(Name) MBA_TSA(capability(Name))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (lock_guard-shaped types).
#define MBA_SCOPED_CAPABILITY MBA_TSA(scoped_lockable)

/// Field annotation: reads and writes require holding \p x.
#define MBA_GUARDED_BY(x) MBA_TSA(guarded_by(x))

/// Pointer-field annotation: the *pointee* is protected by \p x (the
/// pointer itself may be read freely).
#define MBA_PT_GUARDED_BY(x) MBA_TSA(pt_guarded_by(x))

/// Function annotation: the caller must hold the listed capabilities
/// exclusively (and still holds them on return).
#define MBA_REQUIRES(...) MBA_TSA(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold the listed capabilities at
/// least shared.
#define MBA_REQUIRES_SHARED(...) MBA_TSA(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (caller must not
/// already hold them).
#define MBA_ACQUIRE(...) MBA_TSA(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities.
#define MBA_RELEASE(...) MBA_TSA(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability when the function returns
/// the given value — MBA_TRY_ACQUIRE(true) or MBA_TRY_ACQUIRE(true, Mu).
#define MBA_TRY_ACQUIRE(...) MBA_TSA(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (deadlock prevention on self-locking entry points).
#define MBA_EXCLUDES(...) MBA_TSA(locks_excluded(__VA_ARGS__))

/// Function annotation: a runtime check that the capability is held; after
/// the call the analysis treats it as held. This is the bridge between
/// runtime guardrails (asserts) and the static model.
#define MBA_ASSERT_CAPABILITY(x) MBA_TSA(assert_capability(x))

/// Function annotation: returns a reference to the named capability
/// (accessor functions handing out a mutex).
#define MBA_RETURN_CAPABILITY(x) MBA_TSA(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant
/// (enforced by review; see docs/STATIC_ANALYSIS.md).
#define MBA_NO_THREAD_SAFETY_ANALYSIS MBA_TSA(no_thread_safety_analysis)

namespace mba {

/// A std::mutex carrying the capability attribute so Clang tracks it.
/// BasicLockable, so standard guards work where annotation is not needed;
/// annotated code should prefer MutexLock / UniqueMutexLock below, which
/// the analysis understands as scoped acquire/release.
class MBA_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() MBA_ACQUIRE() { M.lock(); }
  void unlock() MBA_RELEASE() { M.unlock(); }
  bool tryLock() MBA_TRY_ACQUIRE(true) { return M.try_lock(); }

  /// The wrapped mutex, for condition-variable waits
  /// (`Cv.wait(Lock.native())`). Handing out the raw mutex does not leak
  /// the capability: the analysis still attributes it to this object via
  /// the guard that owns it.
  std::mutex &native() { return M; }

private:
  std::mutex M;
};

/// Scoped lock over Mutex — the annotated `std::lock_guard`.
class MBA_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) MBA_ACQUIRE(M) : Mu(M) { Mu.lock(); }
  ~MutexLock() MBA_RELEASE() { Mu.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

private:
  Mutex &Mu;
};

/// Scoped lock that exposes the underlying std::unique_lock for
/// condition-variable waits. The capability is held for the guard's whole
/// lifetime from the analysis' point of view; a `Cv.wait(Lock.native())`
/// releases and reacquires the OS lock inside one annotated region, which
/// is exactly the standard condition-variable contract (the guarded state
/// must be re-checked after wait returns — the explicit predicate loops in
/// ThreadPool.cpp do that under the analysis' eyes).
class MBA_SCOPED_CAPABILITY UniqueMutexLock {
public:
  explicit UniqueMutexLock(Mutex &M) MBA_ACQUIRE(M) : Lock(M.native()) {}
  ~UniqueMutexLock() MBA_RELEASE() = default;

  UniqueMutexLock(const UniqueMutexLock &) = delete;
  UniqueMutexLock &operator=(const UniqueMutexLock &) = delete;

  std::unique_lock<std::mutex> &native() { return Lock; }

private:
  std::unique_lock<std::mutex> Lock;
};

} // namespace mba

#endif // MBA_SUPPORT_THREADSAFETY_H
