//===- support/BuildInfo.h - Artifact provenance ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build provenance for every exported artifact: version, git revision,
/// build type (baked in at configure time via compile definitions on this
/// one TU) and the active SIMD ISA (resolved at runtime from the Bitslice
/// dispatch). Surfaces as the labeled `mba_build_info` gauge in the
/// Prometheus dump and as the `build_info` object in `--json` study
/// reports, so a checked-in BENCH_*.json or a scraped metrics endpoint
/// always says which binary produced it.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_BUILDINFO_H
#define MBA_SUPPORT_BUILDINFO_H

namespace mba::buildinfo {

/// Release version string ("0.10.0" — tracks the PR sequence).
const char *version();

/// Abbreviated git revision the binary was configured from, or "unknown"
/// outside a git checkout.
const char *gitSha();

/// CMake build type ("RelWithDebInfo", "Debug", ...), or "unspecified".
const char *buildType();

/// The SIMD ISA the bitslice engine dispatches to on this machine right
/// now ("scalar", "avx2", "avx512") — runtime, not compile-time, so it
/// reflects MBA_FORCE_ISA overrides.
const char *activeIsaName();

} // namespace mba::buildinfo

#endif // MBA_SUPPORT_BUILDINFO_H
