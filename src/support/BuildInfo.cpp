//===- support/BuildInfo.cpp - Artifact provenance ------------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

#include "support/Bitslice.h"

// The configure step defines MBA_GIT_SHA / MBA_BUILD_TYPE on this TU only
// (src/support/CMakeLists.txt), so a new commit recompiles one file.
#ifndef MBA_GIT_SHA
#define MBA_GIT_SHA "unknown"
#endif
#ifndef MBA_BUILD_TYPE
#define MBA_BUILD_TYPE "unspecified"
#endif
#ifndef MBA_VERSION
#define MBA_VERSION "0.10.0"
#endif

namespace mba::buildinfo {

const char *version() { return MBA_VERSION; }

const char *gitSha() { return MBA_GIT_SHA; }

const char *buildType() { return MBA_BUILD_TYPE; }

const char *activeIsaName() { return bitslice::isaName(bitslice::activeIsa()); }

} // namespace mba::buildinfo
