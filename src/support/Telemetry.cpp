//===- support/Telemetry.cpp - Unified metrics + tracing layer ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/BuildInfo.h"
#include "support/ThreadSafety.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace mba;
using namespace mba::telemetry;

std::atomic<bool> mba::telemetry::detail::MetricsOn{false};
std::atomic<bool> mba::telemetry::detail::TracingOn{false};

void mba::telemetry::setMetricsEnabled(bool On) {
  detail::MetricsOn.store(On, std::memory_order_relaxed);
}

void mba::telemetry::setTracingEnabled(bool On) {
  detail::TracingOn.store(On, std::memory_order_relaxed);
}

unsigned mba::telemetry::threadStripe() {
  static std::atomic<unsigned> NextStripe{0};
  thread_local unsigned Stripe =
      NextStripe.fetch_add(1, std::memory_order_relaxed) % NumStripes;
  return Stripe;
}

//===----------------------------------------------------------------------===//
// Metric registry
//===----------------------------------------------------------------------===//

namespace {

struct MetricSlot {
  MetricValue::Kind Which = MetricValue::KCounter;
  // Exactly one is set, according to Which. unique_ptr keeps addresses
  // stable across registry rehashes (metrics hand out references).
  std::unique_ptr<Counter> C;
  std::unique_ptr<Gauge> G;
  std::unique_ptr<Histogram> H;
};

struct Registry {
  Mutex Mu;
  std::unordered_map<std::string, MetricSlot> Metrics MBA_GUARDED_BY(Mu);

  Mutex SourcesMu;
  uint64_t NextSourceId MBA_GUARDED_BY(SourcesMu) = 1;
  std::unordered_map<uint64_t, std::function<void(MetricsSink &)>>
      Sources MBA_GUARDED_BY(SourcesMu);
};

// Leaked on purpose: metrics are process-lifetime and instrumented code may
// run during static destruction.
Registry &registry() {
  static Registry *R = new Registry();
  return *R;
}

MetricSlot &findOrCreate(std::string_view Name, MetricValue::Kind Which) {
  Registry &R = registry();
  MutexLock Lock(R.Mu);
  auto [It, Inserted] = R.Metrics.try_emplace(std::string(Name));
  MetricSlot &S = It->second;
  if (Inserted) {
    S.Which = Which;
    switch (Which) {
    case MetricValue::KCounter:
      S.C = std::make_unique<Counter>();
      break;
    case MetricValue::KGauge:
      S.G = std::make_unique<Gauge>();
      break;
    case MetricValue::KHistogram:
      S.H = std::make_unique<Histogram>();
      break;
    }
  } else if (S.Which != Which) {
    std::fprintf(stderr,
                 "telemetry: metric '%.*s' requested as two different "
                 "kinds\n",
                 (int)Name.size(), Name.data());
    std::abort();
  }
  return S;
}

} // namespace

double mba::telemetry::Histogram::Snapshot::percentile(double P) const {
  if (Count == 0)
    return 0.0;
  if (P < 0)
    P = 0;
  if (P > 100)
    P = 100;
  // 1-based rank of the sample at percentile P (nearest-rank, then
  // interpolated inside the bucket that holds it).
  uint64_t Rank = (uint64_t)((P / 100.0) * (double)Count + 0.5);
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Cum = 0;
  for (unsigned B = 0; B != HistogramBuckets; ++B) {
    if (!Buckets[B])
      continue;
    if (Cum + Buckets[B] < Rank) {
      Cum += Buckets[B];
      continue;
    }
    // Rank falls in bucket B, spanning [Lo, Hi]. Spread the bucket's
    // samples evenly across the span (bucket 0 holds only the value 0).
    if (B == 0)
      return 0.0;
    double Lo = (double)(B == 1 ? 1 : histogramBucketMax(B - 1) + 1);
    double Hi = (double)histogramBucketMax(B);
    double Fraction = (double)(Rank - Cum) / (double)Buckets[B];
    return Lo + Fraction * (Hi - Lo);
  }
  return (double)histogramBucketMax(HistogramBuckets - 1);
}

Counter &mba::telemetry::counter(std::string_view Name) {
  return *findOrCreate(Name, MetricValue::KCounter).C;
}

Gauge &mba::telemetry::gauge(std::string_view Name) {
  return *findOrCreate(Name, MetricValue::KGauge).G;
}

Histogram &mba::telemetry::histogram(std::string_view Name) {
  return *findOrCreate(Name, MetricValue::KHistogram).H;
}

SourceHandle &SourceHandle::operator=(SourceHandle &&O) noexcept {
  if (this != &O) {
    reset();
    Id = O.Id;
    O.Id = 0;
  }
  return *this;
}

void SourceHandle::reset() {
  if (!Id)
    return;
  Registry &R = registry();
  MutexLock Lock(R.SourcesMu);
  R.Sources.erase(Id);
  Id = 0;
}

SourceHandle
mba::telemetry::registerSource(std::function<void(MetricsSink &)> Fn) {
  Registry &R = registry();
  MutexLock Lock(R.SourcesMu);
  uint64_t Id = R.NextSourceId++;
  R.Sources.emplace(Id, std::move(Fn));
  return SourceHandle(Id);
}

std::vector<MetricValue> mba::telemetry::snapshotMetrics() {
  Registry &R = registry();
  // Source values first, summed by name (two pools both emitting
  // "pool.steals" roll up into one line).
  std::map<std::string, uint64_t> SourceValues;
  struct Sink final : MetricsSink {
    std::map<std::string, uint64_t> &Values;
    explicit Sink(std::map<std::string, uint64_t> &Values) : Values(Values) {}
    void value(std::string_view Name, uint64_t V) override {
      Values[std::string(Name)] += V;
    }
  } S(SourceValues);
  {
    MutexLock Lock(R.SourcesMu);
    for (auto &[Id, Fn] : R.Sources)
      Fn(S);
  }

  std::vector<MetricValue> Out;
  {
    MutexLock Lock(R.Mu);
    Out.reserve(R.Metrics.size() + SourceValues.size());
    for (const auto &[Name, Slot] : R.Metrics) {
      MetricValue V;
      V.Name = Name;
      V.Which = Slot.Which;
      switch (Slot.Which) {
      case MetricValue::KCounter:
        V.Value = Slot.C->value();
        break;
      case MetricValue::KGauge:
        V.GaugeValue = Slot.G->value();
        break;
      case MetricValue::KHistogram:
        V.Hist = Slot.H->snapshot();
        V.Value = V.Hist.Count;
        break;
      }
      Out.push_back(std::move(V));
    }
  }
  for (const auto &[Name, Value] : SourceValues) {
    MetricValue V;
    V.Name = Name;
    V.Which = MetricValue::KCounter;
    V.Value = Value;
    Out.push_back(std::move(V));
  }
  std::sort(Out.begin(), Out.end(),
            [](const MetricValue &A, const MetricValue &B) {
              return A.Name < B.Name;
            });
  // Registered metric and same-named source sum into one entry.
  std::vector<MetricValue> Merged;
  for (MetricValue &V : Out) {
    if (!Merged.empty() && Merged.back().Name == V.Name &&
        Merged.back().Which == MetricValue::KCounter &&
        V.Which == MetricValue::KCounter)
      Merged.back().Value += V.Value;
    else
      Merged.push_back(std::move(V));
  }
  return Merged;
}

//===----------------------------------------------------------------------===//
// Text exporters
//===----------------------------------------------------------------------===//

namespace {

/// "simplify.linear runs" -> "mba_simplify_linear_runs".
std::string promName(const std::string &Name) {
  std::string Out = "mba_";
  for (char C : Name)
    Out += (std::isalnum((unsigned char)C) ? C : '_');
  return Out;
}

} // namespace

void mba::telemetry::printMetricsText(std::FILE *Out) {
  // Provenance first: a constant labeled gauge, the Prometheus idiom for
  // "which binary is this" (join on the labels, ignore the value).
  std::fprintf(Out,
               "# TYPE mba_build_info gauge\n"
               "mba_build_info{version=\"%s\",git_sha=\"%s\",isa=\"%s\","
               "build=\"%s\"} 1\n",
               buildinfo::version(), buildinfo::gitSha(),
               buildinfo::activeIsaName(), buildinfo::buildType());
  for (const MetricValue &V : snapshotMetrics()) {
    std::string P = promName(V.Name);
    switch (V.Which) {
    case MetricValue::KCounter:
      std::fprintf(Out, "# TYPE %s counter\n%s %llu\n", P.c_str(), P.c_str(),
                   (unsigned long long)V.Value);
      break;
    case MetricValue::KGauge:
      std::fprintf(Out, "# TYPE %s gauge\n%s %lld\n", P.c_str(), P.c_str(),
                   (long long)V.GaugeValue);
      break;
    case MetricValue::KHistogram: {
      std::fprintf(Out, "# TYPE %s histogram\n", P.c_str());
      uint64_t Cum = 0;
      for (unsigned B = 0; B != HistogramBuckets; ++B) {
        if (!V.Hist.Buckets[B])
          continue; // sparse output: only populated buckets
        Cum += V.Hist.Buckets[B];
        std::fprintf(Out, "%s_bucket{le=\"%llu\"} %llu\n", P.c_str(),
                     (unsigned long long)histogramBucketMax(B),
                     (unsigned long long)Cum);
      }
      std::fprintf(Out, "%s_bucket{le=\"+Inf\"} %llu\n", P.c_str(),
                   (unsigned long long)V.Hist.Count);
      std::fprintf(Out, "%s_sum %llu\n%s_count %llu\n", P.c_str(),
                   (unsigned long long)V.Hist.Sum, P.c_str(),
                   (unsigned long long)V.Hist.Count);
      break;
    }
    }
  }
}

bool mba::telemetry::writeMetricsText(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  printMetricsText(F);
  bool Ok = std::fclose(F) == 0;
  return Ok;
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

uint64_t mba::telemetry::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return (uint64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - Epoch)
      .count();
}

const char *mba::telemetry::internName(std::string_view Name) {
  static Mutex Mu;
  // Node-based set: element addresses are stable for the process lifetime.
  static std::unordered_set<std::string> *Names =
      new std::unordered_set<std::string>();
  MutexLock Lock(Mu);
  return Names->emplace(Name).first->c_str();
}

namespace {

/// Per-thread buffer cap — ~2M spans ≈ 64 MB. Beyond it spans are counted
/// as dropped rather than growing without bound.
constexpr size_t MaxEventsPerThread = 2u << 20;

struct ThreadBuf {
  Mutex Mu;
  std::vector<TraceEvent> Events MBA_GUARDED_BY(Mu);
  uint32_t Tid MBA_GUARDED_BY(Mu) = 0;
  std::string Label MBA_GUARDED_BY(Mu);
  uint64_t Dropped MBA_GUARDED_BY(Mu) = 0;
};

struct TraceState {
  Mutex Mu; // guards Buffers and NextTid
  std::vector<std::shared_ptr<ThreadBuf>> Buffers MBA_GUARDED_BY(Mu);
  uint32_t NextTid MBA_GUARDED_BY(Mu) = 0;
};

TraceState &traceState() {
  static TraceState *S = new TraceState();
  return *S;
}

ThreadBuf &threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> Buf = [] {
    auto B = std::make_shared<ThreadBuf>();
    TraceState &S = traceState();
    MutexLock Lock(S.Mu);
    // Fix surfaced by the annotations: Tid/Label are guarded by B->Mu, but
    // were initialized holding only S.Mu. Unreachable by other threads
    // until the push_back publishes B, so benign in practice — but the
    // static analysis (rightly) cannot prove that, and the uncontended
    // lock is free. Lock order S.Mu -> B->Mu matches collectTrace().
    {
      MutexLock BLock(B->Mu);
      B->Tid = S.NextTid++;
      B->Label = B->Tid == 0 ? "main" : "thread-" + std::to_string(B->Tid);
    }
    S.Buffers.push_back(B);
    return B;
  }();
  return *Buf;
}

} // namespace

void mba::telemetry::detail::endSpan(const char *Name, uint64_t StartNs) {
  uint64_t EndNs = nowNs();
  ThreadBuf &B = threadBuf();
  MutexLock Lock(B.Mu);
  if (B.Events.size() >= MaxEventsPerThread) {
    ++B.Dropped;
    return;
  }
  B.Events.push_back({Name, StartNs, EndNs - StartNs, B.Tid});
}

void mba::telemetry::setThreadLabel(std::string_view Label, int Tid) {
  ThreadBuf &B = threadBuf();
  MutexLock Lock(B.Mu);
  B.Label = std::string(Label);
  if (Tid >= 0)
    B.Tid = (uint32_t)Tid;
}

std::vector<TraceEvent> mba::telemetry::collectTrace() {
  TraceState &S = traceState();
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  {
    MutexLock Lock(S.Mu);
    Buffers = S.Buffers;
  }
  std::vector<TraceEvent> Out;
  for (const auto &B : Buffers) {
    MutexLock Lock(B->Mu);
    // The tid may have been relabelled after events were recorded; stamp
    // the current one so exports stay consistent.
    for (TraceEvent E : B->Events) {
      E.Tid = B->Tid;
      Out.push_back(E);
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.DurNs > B.DurNs; // parents before children
            });
  return Out;
}

std::vector<std::pair<uint32_t, std::string>> mba::telemetry::traceThreads() {
  TraceState &S = traceState();
  std::vector<std::pair<uint32_t, std::string>> Out;
  MutexLock Lock(S.Mu);
  for (const auto &B : S.Buffers) {
    MutexLock BLock(B->Mu);
    Out.push_back({B->Tid, B->Label});
  }
  return Out;
}

uint64_t mba::telemetry::traceDropped() {
  TraceState &S = traceState();
  uint64_t Dropped = 0;
  MutexLock Lock(S.Mu);
  for (const auto &B : S.Buffers) {
    MutexLock BLock(B->Mu);
    Dropped += B->Dropped;
  }
  return Dropped;
}

void mba::telemetry::clearTrace() {
  TraceState &S = traceState();
  std::vector<std::shared_ptr<ThreadBuf>> Buffers;
  {
    MutexLock Lock(S.Mu);
    Buffers = S.Buffers;
  }
  for (const auto &B : Buffers) {
    MutexLock Lock(B->Mu);
    B->Events.clear();
    B->Dropped = 0;
  }
}

namespace {

/// JSON string escaping for names/labels (ASCII control chars, quote,
/// backslash).
std::string jsonEscape(std::string_view In) {
  std::string Out;
  for (char C : In) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if ((unsigned char)C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

bool mba::telemetry::writeChromeTrace(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "{\"traceEvents\":[\n");
  std::fprintf(F, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"args\":{\"name\":\"mba-solver\"}}");
  for (const auto &[Tid, Label] : traceThreads())
    std::fprintf(F,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 Tid, jsonEscape(Label).c_str());
  for (const TraceEvent &E : collectTrace())
    std::fprintf(F,
                 ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                 "\"ts\":%.3f,\"dur\":%.3f}",
                 jsonEscape(E.Name).c_str(), E.Tid, (double)E.StartNs / 1e3,
                 (double)E.DurNs / 1e3);
  std::fprintf(F, "\n],\"displayTimeUnit\":\"ms\"}\n");
  return std::fclose(F) == 0;
}

//===----------------------------------------------------------------------===//
// Human-readable summary (mba_cli --stats)
//===----------------------------------------------------------------------===//

void mba::telemetry::printSummary(std::FILE *Out) {
  // Span aggregation: per name, call count / total / mean.
  struct Agg {
    uint64_t Calls = 0;
    uint64_t TotalNs = 0;
  };
  std::map<std::string, Agg> Spans;
  for (const TraceEvent &E : collectTrace()) {
    Agg &A = Spans[E.Name];
    ++A.Calls;
    A.TotalNs += E.DurNs;
  }
  if (!Spans.empty()) {
    std::fprintf(Out, "Pipeline spans:\n");
    std::fprintf(Out, "  %-28s %10s %12s %12s\n", "span", "calls",
                 "total ms", "mean us");
    for (const auto &[Name, A] : Spans)
      std::fprintf(Out, "  %-28s %10llu %12.3f %12.3f\n", Name.c_str(),
                   (unsigned long long)A.Calls, (double)A.TotalNs / 1e6,
                   (double)A.TotalNs / 1e3 / (double)A.Calls);
  }
  std::vector<MetricValue> Metrics = snapshotMetrics();
  if (!Metrics.empty()) {
    std::fprintf(Out, "Metrics:\n");
    for (const MetricValue &V : Metrics) {
      switch (V.Which) {
      case MetricValue::KCounter:
        std::fprintf(Out, "  %-40s %llu\n", V.Name.c_str(),
                     (unsigned long long)V.Value);
        break;
      case MetricValue::KGauge:
        std::fprintf(Out, "  %-40s %lld\n", V.Name.c_str(),
                     (long long)V.GaugeValue);
        break;
      case MetricValue::KHistogram:
        std::fprintf(Out,
                     "  %-40s count %llu, mean %.1f, p50 %.0f, p95 %.0f, "
                     "p99 %.0f\n",
                     V.Name.c_str(), (unsigned long long)V.Hist.Count,
                     V.Hist.Count ? (double)V.Hist.Sum / (double)V.Hist.Count
                                  : 0.0,
                     V.Hist.percentile(50), V.Hist.percentile(95),
                     V.Hist.percentile(99));
        break;
      }
    }
  }
  uint64_t Dropped = traceDropped();
  if (Dropped)
    std::fprintf(Out, "(%llu spans dropped: thread buffer cap)\n",
                 (unsigned long long)Dropped);
}
