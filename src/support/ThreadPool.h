//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel corpus pipeline
/// (bench/Harness.h). parallelFor() splits an index range into one
/// contiguous shard per worker; a worker that drains its own shard steals
/// the back half of the largest remaining shard, so uneven per-entry cost
/// (a handful of near-timeout solver queries among thousands of easy ones)
/// does not serialize the run.
///
/// Design notes:
///  * shards are [lo, hi) ranges guarded by one mutex per worker — at this
///    granularity (thousands of entries, each milliseconds of work) lock
///    traffic is noise, and the simple scheme is easy to audit under TSAN;
///  * steal and idle-wait counters are exported (PoolStats) so the bench
///    harness can report scheduler health next to its timing tables; they
///    are relaxed atomics (no torn reads under --jobs=N) and the pool
///    mirrors them into the global telemetry counters pool.tasks /
///    pool.steals / pool.idle_waits (support/Telemetry.h), which outlive
///    the pool, so a metrics dump written after a study still covers the
///    scheduler alongside the caches and pipeline counters;
///  * the callback receives (index, worker) — the worker ordinal lets
///    callers keep per-worker state (e.g. one expression Context per
///    worker, see ast/Context.h's threading rule) without sharing.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_THREADPOOL_H
#define MBA_SUPPORT_THREADPOOL_H

#include "support/Telemetry.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace mba {

/// Snapshot of the scheduler counters across parallelFor() calls. The live
/// counters are relaxed atomics inside the pool; this is the consistent-read
/// copy stats() hands out.
struct PoolStats {
  size_t Steals = 0;    ///< shard halves taken from another worker
  size_t IdleWaits = 0; ///< times a worker found every shard empty
  size_t Tasks = 0;     ///< total indices executed
};

/// A fixed-size work-stealing pool. Threads are created on construction and
/// parked between parallelFor() calls.
class ThreadPool {
public:
  /// Creates \p Threads workers (0 means std::thread::hardware_concurrency,
  /// itself clamped to at least 1).
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return (unsigned)Workers.size(); }

  /// Runs Fn(Index, Worker) for every Index in [0, N), distributing indices
  /// over all workers with stealing. Blocks until every index has run.
  /// Worker ordinals are in [0, numWorkers()). If any invocation throws,
  /// the first exception is rethrown here after the loop drains.
  void parallelFor(size_t N,
                   const std::function<void(size_t, unsigned)> &Fn)
      MBA_EXCLUDES(Mu);

  PoolStats stats() const;

private:
  struct Shard {
    Mutex Mu;
    // Remaining [Lo, Hi). Guarded: both ends move under steals, so even a
    // racy read of one end is meaningless.
    size_t Lo MBA_GUARDED_BY(Mu) = 0;
    size_t Hi MBA_GUARDED_BY(Mu) = 0;
  };

  void workerMain(unsigned Ordinal) MBA_EXCLUDES(Mu);
  bool grabIndex(unsigned Ordinal, size_t &Index);

  std::vector<std::thread> Workers;
  std::vector<std::unique_ptr<Shard>> Shards; // one per worker

  Mutex Mu; // guards the job state below
  std::condition_variable WorkCv;   // workers wait for a job
  std::condition_variable DoneCv;   // parallelFor waits for completion
  const std::function<void(size_t, unsigned)> *Job MBA_GUARDED_BY(Mu) = nullptr;
  uint64_t JobGeneration MBA_GUARDED_BY(Mu) = 0;
  unsigned ActiveWorkers MBA_GUARDED_BY(Mu) = 0;
  bool ShuttingDown MBA_GUARDED_BY(Mu) = false;
  std::exception_ptr FirstError MBA_GUARDED_BY(Mu);

  // Scheduler counters: relaxed atomics, so concurrent workers never tear
  // a read and stats() / the telemetry source need no lock.
  std::atomic<size_t> Steals{0};
  std::atomic<size_t> IdleWaits{0};
  std::atomic<size_t> Tasks{0};
};

} // namespace mba

#endif // MBA_SUPPORT_THREADPOOL_H
