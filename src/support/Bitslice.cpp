//===- support/Bitslice.cpp - Transposed 64-lane word kernels -------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Bitslice.h"
#include "support/BitsliceKernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace mba::bitslice;

void mba::bitslice::transpose64(uint64_t M[64]) {
  // Hacker's Delight 7-3 style recursive block swap: exchange the
  // off-diagonal j x j sub-blocks for j = 32, 16, ..., 1.
  unsigned J = 32;
  uint64_t Mask = 0x00000000FFFFFFFFULL;
  for (; J; J >>= 1, Mask ^= Mask << J) {
    for (unsigned K = 0; K < 64; K = (K + J + 1) & ~J) {
      uint64_t T = (M[K] ^ (M[K + J] << J)) & ~Mask;
      M[K] ^= T;
      M[K + J] ^= T >> J;
    }
  }
}

void mba::bitslice::lanesToSlices(const uint64_t *Lanes, unsigned NumLanes,
                                  unsigned Width, uint64_t *Slices) {
  uint64_t M[64];
  unsigned N = NumLanes < 64 ? NumLanes : 64;
  std::memcpy(M, Lanes, N * sizeof(uint64_t));
  if (N < 64)
    std::memset(M + N, 0, (64 - N) * sizeof(uint64_t));
  transpose64(M);
  std::memcpy(Slices, M, Width * sizeof(uint64_t));
}

void mba::bitslice::slicesToLanes(const uint64_t *Slices, unsigned Width,
                                  unsigned NumLanes, uint64_t *Lanes) {
  uint64_t M[64];
  std::memcpy(M, Slices, Width * sizeof(uint64_t));
  if (Width < 64)
    std::memset(M + Width, 0, (64 - Width) * sizeof(uint64_t));
  transpose64(M);
  unsigned N = NumLanes < 64 ? NumLanes : 64;
  std::memcpy(Lanes, M, N * sizeof(uint64_t));
}

void mba::bitslice::sliceBroadcast(unsigned Width, uint64_t Value,
                                   uint64_t *Out) {
  for (unsigned B = 0; B != Width; ++B)
    Out[B] = (Value >> B & 1) ? ~0ULL : 0;
}

void mba::bitslice::sliceAdd(unsigned Width, const uint64_t *A,
                             const uint64_t *B, uint64_t *Out) {
  uint64_t Carry = 0;
  for (unsigned I = 0; I != Width; ++I) {
    uint64_t X = A[I], Y = B[I];
    uint64_t Sum = X ^ Y ^ Carry;
    Carry = (X & Y) | (Carry & (X ^ Y));
    Out[I] = Sum;
  }
}

void mba::bitslice::sliceSub(unsigned Width, const uint64_t *A,
                             const uint64_t *B, uint64_t *Out) {
  // A - B == A + ~B + 1: seed the ripple with a carry-in of 1.
  uint64_t Carry = ~0ULL;
  for (unsigned I = 0; I != Width; ++I) {
    uint64_t X = A[I], Y = ~B[I];
    uint64_t Sum = X ^ Y ^ Carry;
    Carry = (X & Y) | (Carry & (X ^ Y));
    Out[I] = Sum;
  }
}

void mba::bitslice::sliceNeg(unsigned Width, const uint64_t *A,
                             uint64_t *Out) {
  // -A == ~A + 1.
  uint64_t Carry = ~0ULL;
  for (unsigned I = 0; I != Width; ++I) {
    uint64_t X = ~A[I];
    Out[I] = X ^ Carry;
    Carry = X & Carry;
  }
}

void mba::bitslice::sliceMul(unsigned Width, const uint64_t *A,
                             const uint64_t *B, uint64_t *Out) {
  if (Width <= kSchoolbookMulMaxWidth) {
    // Schoolbook shift-and-add: for each multiplier bit k, add A << k into
    // the accumulator on the lanes where bit k of B is set. ~2.5 * Width^2
    // word ops; cheaper than two transposes below ~16 bits.
    for (unsigned I = 0; I != Width; ++I)
      Out[I] = 0;
    for (unsigned K = 0; K != Width; ++K) {
      uint64_t Sel = B[K];
      if (!Sel)
        continue;
      uint64_t Carry = 0;
      for (unsigned I = K; I != Width; ++I) {
        uint64_t X = Out[I], Y = A[I - K] & Sel;
        Out[I] = X ^ Y ^ Carry;
        Carry = (X & Y) | (Carry & (X ^ Y));
      }
    }
    return;
  }
  // Wide multiply: transpose both operands back to lane space, multiply
  // per lane with the hardware multiplier, and re-transpose the product.
  uint64_t LA[64], LB[64];
  slicesToLanes(A, Width, 64, LA);
  slicesToLanes(B, Width, 64, LB);
  for (unsigned J = 0; J != 64; ++J)
    LA[J] *= LB[J];
  lanesToSlices(LA, 64, Width, Out);
}

//===----------------------------------------------------------------------===//
// Wide engine dispatch
//===----------------------------------------------------------------------===//

const WideKernels *mba::bitslice::detail::scalarWideKernels() {
  static const WideKernels Table = wide::makeKernels<1>(Isa::Scalar);
  return &Table;
}

const char *mba::bitslice::isaName(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return "scalar";
  case Isa::Avx2:
    return "avx2";
  case Isa::Avx512:
    return "avx512";
  }
  return "scalar";
}

bool mba::bitslice::parseIsaName(std::string_view Name, Isa &Out) {
  if (Name == "scalar") {
    Out = Isa::Scalar;
    return true;
  }
  if (Name == "avx2") {
    Out = Isa::Avx2;
    return true;
  }
  if (Name == "avx512") {
    Out = Isa::Avx512;
    return true;
  }
  return false;
}

Isa mba::bitslice::bestSupportedIsa() {
  static const Isa Best = [] {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
    if (detail::avx512WideKernels() && __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl"))
      return Isa::Avx512;
    if (detail::avx2WideKernels() && __builtin_cpu_supports("avx2"))
      return Isa::Avx2;
#endif
    return Isa::Scalar;
  }();
  return Best;
}

bool mba::bitslice::isaSupported(Isa I) { return I <= bestSupportedIsa(); }

namespace {

constexpr int kIsaUnset = -2; ///< read MBA_FORCE_ISA on next activeIsa()
constexpr int kIsaAuto = -1;  ///< no override; follow bestSupportedIsa()

/// The forced-ISA cell. Atomic so benches forcing an ISA while worker
/// threads evaluate is a race only on *which* ISA a block uses, never on
/// results (all back ends are bit-identical).
std::atomic<int> ForcedIsa{kIsaUnset};

} // namespace

Isa mba::bitslice::activeIsa() {
  int F = ForcedIsa.load(std::memory_order_relaxed);
  if (F == kIsaUnset) {
    F = kIsaAuto;
    if (const char *Env = std::getenv("MBA_FORCE_ISA")) {
      Isa Parsed;
      if (parseIsaName(Env, Parsed))
        F = (int)Parsed;
      else
        std::fprintf(stderr,
                     "warning: MBA_FORCE_ISA=%s not recognized "
                     "(scalar|avx2|avx512); using auto detection\n",
                     Env);
    }
    ForcedIsa.store(F, std::memory_order_relaxed);
  }
  Isa Best = bestSupportedIsa();
  if (F == kIsaAuto)
    return Best;
  Isa Want = (Isa)F;
  return Want <= Best ? Want : Best;
}

void mba::bitslice::forceIsa(Isa I) {
  ForcedIsa.store((int)I, std::memory_order_relaxed);
}

void mba::bitslice::clearForcedIsa() {
  ForcedIsa.store(kIsaUnset, std::memory_order_relaxed);
}

const WideKernels &mba::bitslice::kernelsFor(Isa I) {
  Isa Best = bestSupportedIsa();
  Isa Use = I <= Best ? I : Best;
  const WideKernels *T = nullptr;
  switch (Use) {
  case Isa::Avx512:
    T = detail::avx512WideKernels();
    if (T)
      break;
    [[fallthrough]];
  case Isa::Avx2:
    T = detail::avx2WideKernels();
    if (T)
      break;
    [[fallthrough]];
  case Isa::Scalar:
    T = detail::scalarWideKernels();
    break;
  }
  return *T;
}
