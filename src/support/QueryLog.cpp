//===- support/QueryLog.cpp - Per-query flight recorder -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/QueryLog.h"

#include "support/Telemetry.h"
#include "support/ThreadSafety.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

namespace mba::querylog {

namespace detail {
std::atomic<bool> LogOn{false};
} // namespace detail

//===----------------------------------------------------------------------===//
// Sink
//===----------------------------------------------------------------------===//

namespace {

/// The output sink — a file or an in-memory capture buffer. Leaked on
/// purpose (process lifetime), same as the telemetry registry, so records
/// written from detached worker threads during shutdown stay safe.
struct Sink {
  Mutex Mu;
  std::FILE *File MBA_GUARDED_BY(Mu) = nullptr;
  bool Capturing MBA_GUARDED_BY(Mu) = false;
  std::vector<std::string> Captured MBA_GUARDED_BY(Mu);
  uint64_t Written MBA_GUARDED_BY(Mu) = 0;
};

Sink &sink() {
  static Sink *S = new Sink;
  return *S;
}

/// Global record sequence; never reset so seq values stay unique across
/// sink reopenings within one process.
std::atomic<uint64_t> NextSeq{0};

/// Stable small ids for threads that write records.
std::atomic<uint32_t> NextTid{0};

uint32_t threadId() {
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

void appendEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void writeLine(const std::string &Line) {
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  if (S.Capturing) {
    S.Captured.push_back(Line);
    ++S.Written;
  } else if (S.File) {
    std::string WithNl = Line;
    WithNl += '\n';
    // One fwrite per record: POSIX stdio locks the stream per call, and the
    // sink mutex already serializes us, so lines never interleave.
    std::fwrite(WithNl.data(), 1, WithNl.size(), S.File);
    ++S.Written;
  }
}

} // namespace

bool openFile(const std::string &Path) {
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  if (S.File) {
    std::fclose(S.File);
    S.File = nullptr;
  }
  S.Capturing = false;
  S.Captured.clear();
  S.File = std::fopen(Path.c_str(), "wb");
  S.Written = 0;
  bool Ok = S.File != nullptr;
  detail::LogOn.store(Ok, std::memory_order_relaxed);
  return Ok;
}

void beginCapture() {
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  if (S.File) {
    std::fclose(S.File);
    S.File = nullptr;
  }
  S.Capturing = true;
  S.Captured.clear();
  S.Written = 0;
  detail::LogOn.store(true, std::memory_order_relaxed);
}

std::vector<std::string> endCapture() {
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  S.Capturing = false;
  detail::LogOn.store(false, std::memory_order_relaxed);
  return std::move(S.Captured);
}

void close() {
  detail::LogOn.store(false, std::memory_order_relaxed);
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  if (S.File) {
    std::fclose(S.File);
    S.File = nullptr;
  }
  S.Capturing = false;
  S.Captured.clear();
}

uint64_t recordsWritten() {
  Sink &S = sink();
  MutexLock Lock(S.Mu);
  return S.Written;
}

//===----------------------------------------------------------------------===//
// Record
//===----------------------------------------------------------------------===//

Record::Field &Record::slot(const char *Key) {
  for (Field &F : Fields)
    if (std::strcmp(F.Key, Key) == 0)
      return F;
  Fields.push_back(Field{Key, Field::FNum, {}, 0, 0, 0, false});
  return Fields.back();
}

void Record::str(const char *Key, std::string_view V) {
  Field &F = slot(Key);
  F.Which = Field::FStr;
  F.S.assign(V);
}

void Record::num(const char *Key, uint64_t V) {
  Field &F = slot(Key);
  F.Which = Field::FNum;
  F.U = V;
}

void Record::snum(const char *Key, int64_t V) {
  Field &F = slot(Key);
  F.Which = Field::FSNum;
  F.I = V;
}

void Record::fnum(const char *Key, double V) {
  Field &F = slot(Key);
  F.Which = Field::FFloat;
  F.D = V;
}

void Record::flag(const char *Key, bool V) {
  Field &F = slot(Key);
  F.Which = Field::FBool;
  F.B = V;
}

void Record::stage(std::string_view Name, uint64_t Ns) {
  Stages.push_back(StageEntry{std::string(Name), Ns});
}

void Record::rule(std::string_view Name, uint64_t Fires, uint64_t Ns,
                  uint64_t NodesBefore, uint64_t NodesAfter) {
  for (RuleEntry &R : Rules)
    if (R.Name == Name) {
      R.Fires += Fires;
      R.Ns += Ns;
      R.NodesBefore += NodesBefore;
      R.NodesAfter += NodesAfter;
      return;
    }
  Rules.push_back(RuleEntry{std::string(Name), Fires, Ns, NodesBefore,
                            NodesAfter});
}

std::string Record::serialize(const char *Kind, uint64_t Seq) const {
  std::string Out;
  Out.reserve(256);
  char Buf[64];
  Out += "{\"seq\":";
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Seq);
  Out += Buf;
  Out += ",\"kind\":\"";
  Out += Kind;
  Out += "\",\"tid\":";
  std::snprintf(Buf, sizeof(Buf), "%u", threadId());
  Out += Buf;
  for (const Field &F : Fields) {
    Out += ",\"";
    Out += F.Key;
    Out += "\":";
    switch (F.Which) {
    case Field::FStr:
      Out += '"';
      appendEscaped(Out, F.S);
      Out += '"';
      break;
    case Field::FNum:
      std::snprintf(Buf, sizeof(Buf), "%" PRIu64, F.U);
      Out += Buf;
      break;
    case Field::FSNum:
      std::snprintf(Buf, sizeof(Buf), "%" PRId64, F.I);
      Out += Buf;
      break;
    case Field::FFloat:
      std::snprintf(Buf, sizeof(Buf), "%.9g", F.D);
      Out += Buf;
      break;
    case Field::FBool:
      Out += F.B ? "true" : "false";
      break;
    }
  }
  if (!Stages.empty()) {
    Out += ",\"stages\":[";
    for (size_t I = 0; I != Stages.size(); ++I) {
      if (I)
        Out += ',';
      Out += "{\"name\":\"";
      appendEscaped(Out, Stages[I].Name);
      Out += "\",\"ns\":";
      std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Stages[I].Ns);
      Out += Buf;
      Out += '}';
    }
    Out += ']';
  }
  if (!Rules.empty()) {
    Out += ",\"rules\":[";
    for (size_t I = 0; I != Rules.size(); ++I) {
      if (I)
        Out += ',';
      const RuleEntry &R = Rules[I];
      Out += "{\"rule\":\"";
      appendEscaped(Out, R.Name);
      Out += '"';
      std::snprintf(Buf, sizeof(Buf), ",\"fires\":%" PRIu64, R.Fires);
      Out += Buf;
      std::snprintf(Buf, sizeof(Buf), ",\"ns\":%" PRIu64, R.Ns);
      Out += Buf;
      std::snprintf(Buf, sizeof(Buf), ",\"nodes_before\":%" PRIu64,
                    R.NodesBefore);
      Out += Buf;
      std::snprintf(Buf, sizeof(Buf), ",\"nodes_after\":%" PRIu64,
                    R.NodesAfter);
      Out += Buf;
      Out += '}';
    }
    Out += ']';
  }
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

namespace {

struct ThreadScopeState {
  Record *Active = nullptr;
  const char *ActiveKind = nullptr;
  int Suppress = 0;
};

ThreadScopeState &tls() {
  thread_local ThreadScopeState TS;
  return TS;
}

} // namespace

Record *active() {
  if (!enabled())
    return nullptr;
  ThreadScopeState &TS = tls();
  return TS.Suppress == 0 ? TS.Active : nullptr;
}

QueryScope::QueryScope(const char *Kind) : Kind(Kind) {
  if (!enabled())
    return; // inert — nothing to undo in the destructor
  ThreadScopeState &TS = tls();
  if (!TS.Active) {
    Armed = true;
    TS.Active = &Rec;
    TS.ActiveKind = Kind;
    StartNs = telemetry::nowNs();
  } else if (std::strcmp(Kind, TS.ActiveKind) != 0) {
    Suppressing = true;
    ++TS.Suppress;
  }
  // Same-kind nested scope: pass-through; contributions reach the
  // enclosing record via active().
}

QueryScope::~QueryScope() {
  ThreadScopeState &TS = tls();
  if (Suppressing)
    --TS.Suppress;
  if (!Armed)
    return;
  Rec.num("ns", telemetry::nowNs() - StartNs);
  uint64_t Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  std::string Line = Rec.serialize(Kind, Seq);
  TS.Active = nullptr;
  TS.ActiveKind = nullptr;
  if (enabled())
    writeLine(Line);
}

//===----------------------------------------------------------------------===//
// Rule-attribution registry
//===----------------------------------------------------------------------===//

namespace {

struct AttributionRegistry {
  Mutex Mu;
  std::map<std::string, RuleStats, std::less<>> Stats MBA_GUARDED_BY(Mu);
};

AttributionRegistry &attribution() {
  static AttributionRegistry *R = new AttributionRegistry;
  return *R;
}

/// Registers the telemetry source that mirrors the registry as
/// `rule.<name>.*` counters — lazily, on the first observation, and never
/// under the registry mutex (the snapshot path locks the telemetry source
/// list first and this mutex second; registering in the opposite order
/// could deadlock).
void ensureAttributionSource() {
  static std::atomic<bool> Registered{false};
  if (Registered.exchange(true, std::memory_order_acq_rel))
    return;
  static telemetry::SourceHandle *Handle = new telemetry::SourceHandle(
      telemetry::registerSource([](telemetry::MetricsSink &S) {
        for (const auto &[Name, RS] : ruleAttribution()) {
          std::string Prefix = "rule." + Name;
          S.value(Prefix + ".fires", RS.Fires);
          S.value(Prefix + ".ns", RS.Ns);
          S.value(Prefix + ".nodes_before", RS.NodesBefore);
          S.value(Prefix + ".nodes_after", RS.NodesAfter);
          if (RS.Installs || RS.Rejects) {
            S.value(Prefix + ".installs", RS.Installs);
            S.value(Prefix + ".rejects", RS.Rejects);
          }
        }
      }));
  (void)Handle; // leaked: the source lives for the process
}

} // namespace

void noteRule(std::string_view Rule, uint64_t Fires, uint64_t Ns,
              uint64_t NodesBefore, uint64_t NodesAfter) {
  if (Record *R = active())
    R->rule(Rule, Fires, Ns, NodesBefore, NodesAfter);
  ensureAttributionSource();
  AttributionRegistry &Reg = attribution();
  MutexLock Lock(Reg.Mu);
  RuleStats &RS = Reg.Stats[std::string(Rule)];
  RS.Fires += Fires;
  RS.Ns += Ns;
  RS.NodesBefore += NodesBefore;
  RS.NodesAfter += NodesAfter;
}

void noteRuleOutcome(std::string_view Rule, bool Installed) {
  ensureAttributionSource();
  AttributionRegistry &Reg = attribution();
  MutexLock Lock(Reg.Mu);
  RuleStats &RS = Reg.Stats[std::string(Rule)];
  if (Installed)
    ++RS.Installs;
  else
    ++RS.Rejects;
}

std::vector<std::pair<std::string, RuleStats>> ruleAttribution() {
  AttributionRegistry &Reg = attribution();
  MutexLock Lock(Reg.Mu);
  return {Reg.Stats.begin(), Reg.Stats.end()};
}

void resetRuleAttribution() {
  AttributionRegistry &Reg = attribution();
  MutexLock Lock(Reg.Mu);
  Reg.Stats.clear();
}

} // namespace mba::querylog
