//===- support/BitsliceKernels.h - Lane-templated wide kernels --*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-templated kernel bodies behind the WideKernels dispatch table
/// (Bitslice.h). Every kernel is parameterized on WordsV — the number of
/// 64-bit words per slice, i.e. lanes-per-block / 64 — and compiled once
/// per ISA translation unit:
///
///   Bitslice.cpp        WordsV = 1   baseline flags      (64 lanes)
///   BitsliceAvx2.cpp    WordsV = 4   -mavx2 -O3          (256 lanes)
///   BitsliceAvx512.cpp  WordsV = 8   -mavx512{f,bw,dq,vl} (512 lanes)
///
/// The bodies are plain word arithmetic written so the inner trip counts
/// are the compile-time WordsV (ripple carries) or a flat Width*WordsV run
/// (bitwise ops): exactly the shapes the auto-vectorizer turns into full
/// 256/512-bit vector ops under the per-file ISA flags. Keeping one source
/// of truth here is what guarantees the ISA back ends are bit-identical —
/// the SIMD determinism tests pin that.
///
/// Everything lives in an anonymous namespace ON PURPOSE: each ISA TU must
/// get its own private copy compiled with its own flags. Named inline
/// functions or ordinary template instantiations would be ODR-merged
/// across TUs and the linker could pick the scalar copy for the AVX table
/// (the classic function-multiversioning pitfall). Include this header
/// from the three Bitslice*.cpp files only.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_BITSLICEKERNELS_H
#define MBA_SUPPORT_BITSLICEKERNELS_H

#include "support/Bitslice.h"

#include <cstring>

namespace {
namespace wide {

/// In-place 64x64 bit-matrix transpose, restructured from the classic
/// Hacker's Delight 7-3 iteration (Bitslice.cpp keeps that form) so the
/// inner loop runs over a *contiguous* row range — for J >= the vector
/// width the compiler turns it into full-width vector shifts and xors.
inline void transposeOne(uint64_t *M) {
  unsigned J = 32;
  uint64_t Mask = 0x00000000FFFFFFFFULL;
  for (; J; J >>= 1, Mask ^= Mask << J) {
    for (unsigned K = 0; K < 64; K += 2 * J) {
      for (unsigned L = K; L < K + J; ++L) {
        uint64_t T = (M[L] ^ (M[L + J] << J)) & ~Mask;
        M[L] ^= T;
        M[L + J] ^= T >> J;
      }
    }
  }
}

/// The kernel set at WordsV words per slice (WordsV * 64 lanes per block).
/// Slice arrays are slice-major: slice b occupies words
/// [b*WordsV, (b+1)*WordsV). Lane arrays are one word per point.
template <unsigned WordsV> struct Impl {
  static constexpr unsigned Lanes = WordsV * 64;

  //===--------------------------------------------------------------------===//
  // Slice space
  //===--------------------------------------------------------------------===//

  static void sliceNot(unsigned Width, const uint64_t *A, uint64_t *Out) {
    for (unsigned I = 0, N = Width * WordsV; I != N; ++I)
      Out[I] = ~A[I];
  }

  static void sliceAnd(unsigned Width, const uint64_t *A, const uint64_t *B,
                       uint64_t *Out) {
    for (unsigned I = 0, N = Width * WordsV; I != N; ++I)
      Out[I] = A[I] & B[I];
  }

  static void sliceOr(unsigned Width, const uint64_t *A, const uint64_t *B,
                      uint64_t *Out) {
    for (unsigned I = 0, N = Width * WordsV; I != N; ++I)
      Out[I] = A[I] | B[I];
  }

  static void sliceXor(unsigned Width, const uint64_t *A, const uint64_t *B,
                       uint64_t *Out) {
    for (unsigned I = 0, N = Width * WordsV; I != N; ++I)
      Out[I] = A[I] ^ B[I];
  }

  // The ripple carry is the only loop-carried dependency, and it is
  // per-word independent: Carry[] is one full-adder chain per 64-lane
  // word, so the WordsV-wide inner loop is one vector op end to end.

  static void sliceAdd(unsigned Width, const uint64_t *A, const uint64_t *B,
                       uint64_t *Out) {
    uint64_t Carry[WordsV] = {};
    for (unsigned I = 0; I != Width; ++I) {
      const uint64_t *X = A + (size_t)I * WordsV;
      const uint64_t *Y = B + (size_t)I * WordsV;
      uint64_t *O = Out + (size_t)I * WordsV;
      for (unsigned K = 0; K != WordsV; ++K) {
        uint64_t S = X[K] ^ Y[K] ^ Carry[K];
        Carry[K] = (X[K] & Y[K]) | (Carry[K] & (X[K] ^ Y[K]));
        O[K] = S;
      }
    }
  }

  static void sliceSub(unsigned Width, const uint64_t *A, const uint64_t *B,
                       uint64_t *Out) {
    // A - B == A + ~B + 1: seed the ripple with a carry-in of 1.
    uint64_t Carry[WordsV];
    for (unsigned K = 0; K != WordsV; ++K)
      Carry[K] = ~0ULL;
    for (unsigned I = 0; I != Width; ++I) {
      const uint64_t *X = A + (size_t)I * WordsV;
      const uint64_t *B0 = B + (size_t)I * WordsV;
      uint64_t *O = Out + (size_t)I * WordsV;
      for (unsigned K = 0; K != WordsV; ++K) {
        uint64_t Y = ~B0[K];
        uint64_t S = X[K] ^ Y ^ Carry[K];
        Carry[K] = (X[K] & Y) | (Carry[K] & (X[K] ^ Y));
        O[K] = S;
      }
    }
  }

  static void sliceNeg(unsigned Width, const uint64_t *A, uint64_t *Out) {
    // -A == ~A + 1.
    uint64_t Carry[WordsV];
    for (unsigned K = 0; K != WordsV; ++K)
      Carry[K] = ~0ULL;
    for (unsigned I = 0; I != Width; ++I) {
      const uint64_t *A0 = A + (size_t)I * WordsV;
      uint64_t *O = Out + (size_t)I * WordsV;
      for (unsigned K = 0; K != WordsV; ++K) {
        uint64_t X = ~A0[K];
        O[K] = X ^ Carry[K];
        Carry[K] = X & Carry[K];
      }
    }
  }

  static void sliceMul(unsigned Width, const uint64_t *A, const uint64_t *B,
                       uint64_t *Out) {
    if (Width <= mba::bitslice::kSchoolbookMulMaxWidth) {
      // Schoolbook shift-and-add, WordsV carry chains side by side.
      for (unsigned I = 0, N = Width * WordsV; I != N; ++I)
        Out[I] = 0;
      for (unsigned K = 0; K != Width; ++K) {
        const uint64_t *Sel = B + (size_t)K * WordsV;
        uint64_t Any = 0;
        for (unsigned W = 0; W != WordsV; ++W)
          Any |= Sel[W];
        if (!Any)
          continue;
        uint64_t Carry[WordsV] = {};
        for (unsigned I = K; I != Width; ++I) {
          uint64_t *O = Out + (size_t)I * WordsV;
          const uint64_t *X = A + (size_t)(I - K) * WordsV;
          for (unsigned W = 0; W != WordsV; ++W) {
            uint64_t Xv = O[W], Yv = X[W] & Sel[W];
            O[W] = Xv ^ Yv ^ Carry[W];
            Carry[W] = (Xv & Yv) | (Carry[W] & (Xv ^ Yv));
          }
        }
      }
      return;
    }
    // Wide multiply: round-trip through lane space for the hardware
    // multiplier (one vector multiply per vector of lanes).
    uint64_t LA[Lanes], LB[Lanes];
    slicesToLanes(A, Width, Lanes, LA);
    slicesToLanes(B, Width, Lanes, LB);
    for (unsigned J = 0; J != Lanes; ++J)
      LA[J] *= LB[J];
    lanesToSlices(LA, Lanes, Width, Out);
  }

  static void sliceBroadcast(unsigned Width, uint64_t Value, uint64_t *Out) {
    for (unsigned B = 0; B != Width; ++B) {
      uint64_t V = (Value >> B & 1) ? ~0ULL : 0;
      for (unsigned W = 0; W != WordsV; ++W)
        Out[(size_t)B * WordsV + W] = V;
    }
  }

  //===--------------------------------------------------------------------===//
  // Lane <-> slice conversion
  //===--------------------------------------------------------------------===//

  static void transposeBlocks(uint64_t *M, unsigned Blocks) {
    for (unsigned B = 0; B != Blocks; ++B)
      transposeOne(M + (size_t)B * 64);
  }

  static void lanesToSlices(const uint64_t *LanesIn, unsigned NumLanes,
                            unsigned Width, uint64_t *Slices) {
    uint64_t M[64];
    for (unsigned W = 0; W != WordsV; ++W) {
      unsigned Lo = W * 64;
      unsigned N = NumLanes > Lo ? (NumLanes - Lo < 64 ? NumLanes - Lo : 64)
                                 : 0;
      if (N)
        std::memcpy(M, LanesIn + Lo, N * sizeof(uint64_t));
      if (N < 64)
        std::memset(M + N, 0, (64 - N) * sizeof(uint64_t));
      transposeOne(M);
      for (unsigned B = 0; B != Width; ++B)
        Slices[(size_t)B * WordsV + W] = M[B];
    }
  }

  static void slicesToLanes(const uint64_t *Slices, unsigned Width,
                            unsigned NumLanes, uint64_t *LanesOut) {
    uint64_t M[64];
    for (unsigned W = 0; W != WordsV; ++W) {
      unsigned Lo = W * 64;
      if (Lo >= NumLanes)
        break;
      for (unsigned B = 0; B != Width; ++B)
        M[B] = Slices[(size_t)B * WordsV + W];
      if (Width < 64)
        std::memset(M + Width, 0, (64 - Width) * sizeof(uint64_t));
      transposeOne(M);
      unsigned N = NumLanes - Lo < 64 ? NumLanes - Lo : 64;
      std::memcpy(LanesOut + Lo, M, N * sizeof(uint64_t));
    }
  }

  //===--------------------------------------------------------------------===//
  // Lane space (one word per point; N <= Lanes)
  //===--------------------------------------------------------------------===//

  static void laneCopyM(const uint64_t *A, uint64_t *Out, unsigned N,
                        uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] & Mask;
  }

  static void laneNotM(const uint64_t *A, uint64_t *Out, unsigned N,
                       uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = ~A[J] & Mask;
  }

  static void laneNegM(const uint64_t *A, uint64_t *Out, unsigned N,
                       uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (0 - A[J]) & Mask;
  }

  static void laneAnd(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                      unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] & B[J];
  }

  static void laneOr(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                     unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] | B[J];
  }

  static void laneXor(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                      unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] ^ B[J];
  }

  static void laneAddM(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                       unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] + B[J]) & Mask;
  }

  static void laneSubM(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                       unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] - B[J]) & Mask;
  }

  static void laneMulM(const uint64_t *A, const uint64_t *B, uint64_t *Out,
                       unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] * B[J]) & Mask;
  }

  static void laneAndS(const uint64_t *A, uint64_t C, uint64_t *Out,
                       unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] & C;
  }

  static void laneOrS(const uint64_t *A, uint64_t C, uint64_t *Out,
                      unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] | C;
  }

  static void laneXorS(const uint64_t *A, uint64_t C, uint64_t *Out,
                       unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = A[J] ^ C;
  }

  static void laneAddSM(const uint64_t *A, uint64_t C, uint64_t *Out,
                        unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] + C) & Mask;
  }

  static void laneSubSM(const uint64_t *A, uint64_t C, uint64_t *Out,
                        unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] - C) & Mask;
  }

  static void laneRSubSM(const uint64_t *A, uint64_t C, uint64_t *Out,
                         unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (C - A[J]) & Mask;
  }

  static void laneMulSM(const uint64_t *A, uint64_t C, uint64_t *Out,
                        unsigned N, uint64_t Mask) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = (A[J] * C) & Mask;
  }

  static void laneFill(uint64_t V, uint64_t *Out, unsigned N) {
    for (unsigned J = 0; J != N; ++J)
      Out[J] = V;
  }

  static void laneSelect(const uint64_t *Bits, uint64_t C, uint64_t *Out,
                         unsigned N) {
    // Out[j] = bit j of Bits ? C : 0. The shift amount varies per lane
    // within a fixed source word, which vectorizes to variable-shift ops.
    for (unsigned Base = 0; Base < N; Base += 64) {
      uint64_t Bw = Bits[Base >> 6];
      unsigned End = N - Base < 64 ? N : Base + 64;
      for (unsigned J = Base; J != End; ++J)
        Out[J] = (Bw >> (J - Base)) & 1 ? C : 0;
    }
  }

  static void laneSelect2(const uint64_t *Bits, uint64_t C1, uint64_t C0,
                          uint64_t *Out, unsigned N) {
    for (unsigned Base = 0; Base < N; Base += 64) {
      uint64_t Bw = Bits[Base >> 6];
      unsigned End = N - Base < 64 ? N : Base + 64;
      for (unsigned J = Base; J != End; ++J)
        Out[J] = (Bw >> (J - Base)) & 1 ? C1 : C0;
    }
  }
};

/// Builds the dispatch table for Impl<WordsV> tagged as \p Tag.
template <unsigned WordsV>
mba::bitslice::WideKernels makeKernels(mba::bitslice::Isa Tag) {
  using K = Impl<WordsV>;
  mba::bitslice::WideKernels T;
  T.IsaTag = Tag;
  T.Words = WordsV;
  T.SliceNot = &K::sliceNot;
  T.SliceAnd = &K::sliceAnd;
  T.SliceOr = &K::sliceOr;
  T.SliceXor = &K::sliceXor;
  T.SliceAdd = &K::sliceAdd;
  T.SliceSub = &K::sliceSub;
  T.SliceNeg = &K::sliceNeg;
  T.SliceMul = &K::sliceMul;
  T.SliceBroadcast = &K::sliceBroadcast;
  T.TransposeBlocks = &K::transposeBlocks;
  T.LanesToSlices = &K::lanesToSlices;
  T.SlicesToLanes = &K::slicesToLanes;
  T.LaneCopyM = &K::laneCopyM;
  T.LaneNotM = &K::laneNotM;
  T.LaneNegM = &K::laneNegM;
  T.LaneAnd = &K::laneAnd;
  T.LaneOr = &K::laneOr;
  T.LaneXor = &K::laneXor;
  T.LaneAddM = &K::laneAddM;
  T.LaneSubM = &K::laneSubM;
  T.LaneMulM = &K::laneMulM;
  T.LaneAndS = &K::laneAndS;
  T.LaneOrS = &K::laneOrS;
  T.LaneXorS = &K::laneXorS;
  T.LaneAddSM = &K::laneAddSM;
  T.LaneSubSM = &K::laneSubSM;
  T.LaneRSubSM = &K::laneRSubSM;
  T.LaneMulSM = &K::laneMulSM;
  T.LaneFill = &K::laneFill;
  T.LaneSelect = &K::laneSelect;
  T.LaneSelect2 = &K::laneSelect2;
  return T;
}

} // namespace wide
} // namespace

#endif // MBA_SUPPORT_BITSLICEKERNELS_H
