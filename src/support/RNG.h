//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by the corpus
/// generator, the Syntia-style synthesizer, and the property tests.
/// Determinism matters: the generated 3000-expression corpus must be
/// reproducible across runs so that the benchmark tables are stable.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_SUPPORT_RNG_H
#define MBA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace mba {

/// SplitMix64 generator. Passes BigCrush for the purposes we need and is
/// two lines of state transition, which keeps corpus generation trivially
/// reproducible.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Rejection-free modulo is fine here; bias is irrelevant for workload
    // generation.
    return next() % Bound;
  }

  /// Returns a value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + (int64_t)below((uint64_t)(Hi - Lo) + 1);
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Splits off an independent generator (for parallel-safe sub-streams).
  RNG split() { return RNG(next() ^ 0x5851f42d4c957f2dULL); }

private:
  uint64_t State;
};

} // namespace mba

#endif // MBA_SUPPORT_RNG_H
