//===- support/Json.cpp - Minimal JSON value parser -----------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mba::json {
namespace {

constexpr size_t kMaxDepth = 128;

} // namespace

/// Recursive-descent parser over a string_view. Tracks a byte offset for
/// error messages and bounds nesting depth so malformed input cannot blow
/// the stack.
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing content after document");
    return true;
  }

private:
  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;

  bool fail(const char *Msg) {
    if (Error) {
      *Error = Msg;
      *Error += " at offset ";
      *Error += std::to_string(Pos);
    }
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    size_t N = std::strlen(Word);
    if (Text.compare(Pos, N, Word) != 0)
      return fail("invalid literal");
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out, size_t Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.Which = Value::KString;
      return parseString(Out.Str);
    case 't':
      Out.Which = Value::KBool;
      Out.Flag = true;
      return literal("true");
    case 'f':
      Out.Which = Value::KBool;
      Out.Flag = false;
      return literal("false");
    case 'n':
      Out.Which = Value::KNull;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, size_t Depth) {
    Out.Which = Value::KObject;
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after key");
      skipWs();
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Mbrs.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, size_t Depth) {
    Out.Which = Value::KArray;
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return true;
    for (;;) {
      skipWs();
      Value Element;
      if (!parseValue(Element, Depth + 1))
        return false;
      Out.Elements.push_back(std::move(Element));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // UTF-8 encode the code point. Surrogate pairs are not recombined
        // (our exporters never emit them); each half encodes separately.
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Spelling(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Spelling.c_str(), &End);
    if (End != Spelling.c_str() + Spelling.size()) {
      Pos = Start;
      return fail("malformed number");
    }
    Out.Which = Value::KNumber;
    Out.Num = V;
    return true;
  }
};

bool parse(std::string_view Text, Value &Out, std::string *Error) {
  Out = Value();
  Parser P(Text, Error);
  return P.run(Out);
}

bool parseFile(const std::string &Path, Value &Out, std::string *Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parse(Text, Out, Error);
}

} // namespace mba::json
