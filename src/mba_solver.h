//===- mba_solver.h - Umbrella header for the MBA-Solver library -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella for downstream users: one include pulls in the
/// public surface of the library. Individual headers remain the preferred
/// include for translation units that only need one subsystem.
///
/// \code
///   #include "mba_solver.h"
///
///   mba::Context Ctx(64);
///   const mba::Expr *E = mba::parseOrDie(Ctx, "(x&~y)+y");
///   mba::MBASolver Solver(Ctx);
///   std::string S = mba::printExpr(Ctx, Solver.simplify(E)); // "x|y"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_SOLVER_H
#define MBA_MBA_SOLVER_H

// Expressions: construction, parsing, printing, evaluation, visualization.
#include "ast/BitslicedEval.h"
#include "ast/CompiledEval.h"
#include "ast/Context.h"
#include "ast/DotPrinter.h"
#include "ast/Evaluator.h"
#include "ast/Expr.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

// Soundness auditing: IR verifier, abstract domains, rewrite audit trail.
#include "analysis/AbstractInterp.h"
#include "analysis/Audit.h"
#include "analysis/KnownBits.h"
#include "analysis/Verifier.h"

// Static equivalence proving: e-graph, certified rules, saturation prover.
#include "analysis/EGraph.h"
#include "analysis/Prover.h"
#include "analysis/Rules.h"

// The MBA theory core: classification, metrics, signatures, simplification.
#include "mba/Basis.h"
#include "mba/BooleanMin.h"
#include "mba/Classify.h"
#include "mba/Metrics.h"
#include "mba/Signature.h"
#include "mba/Simplifier.h"

// Obfuscation / dataset generation.
#include "gen/Corpus.h"
#include "gen/EncodeArithmetic.h"
#include "gen/Obfuscator.h"
#include "gen/SeedIdentities.h"

// Equivalence checking backends and SMT-LIB interop.
#include "solvers/EquivalenceChecker.h"
#include "solvers/SmtLib.h"
#include "solvers/SmtLibParser.h"

// Straight-line code traces.
#include "ir/Trace.h"

// Bulk-evaluation kernels and the worker pool behind parallel studies.
#include "support/Bitslice.h"
#include "support/ThreadPool.h"

#endif // MBA_MBA_SOLVER_H
