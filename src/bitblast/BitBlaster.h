//===- bitblast/BitBlaster.h - Word-level circuits to CNF ------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-blasting of w-bit bit-vector terms into CNF over the in-tree CDCL
/// solver: Tseitin-encoded gates, ripple-carry adders, and shift-and-add
/// multipliers. Together with sat/, this forms the in-tree bit-vector
/// solver that substitutes for STP and Boolector in the paper's experiment
/// matrix (both are bit-blasting solvers; see DESIGN.md).
///
/// Two configurations exist:
///  * plain — naive Tseitin encoding of every gate;
///  * rewriting — structural hashing plus local simplification (constant
///    folding, x&x = x, x^x = 0, negation absorption), standing in for the
///    word-level/AIG preprocessing real solvers differ in.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_BITBLAST_BITBLASTER_H
#define MBA_BITBLAST_BITBLASTER_H

#include "sat/Solver.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

namespace mba {

/// Builds circuits over a SatSolver. A word is a vector of literals,
/// least-significant bit first.
class BitBlaster {
public:
  using Word = std::vector<sat::Lit>;

  /// \p EnableRewriting turns on structural hashing and local gate
  /// simplification.
  BitBlaster(sat::SatSolver &Solver, unsigned Width, bool EnableRewriting);

  unsigned width() const { return Width; }

  /// The constant-true literal (a dedicated variable constrained true).
  sat::Lit trueLit() const { return True; }
  sat::Lit falseLit() const { return ~True; }

  /// A word of fresh unconstrained variables (an input).
  Word freshWord();

  /// The constant word for \p Value (truncated to the width).
  Word constWord(uint64_t Value);

  // Gate-level operations (with rewriting when enabled).
  sat::Lit mkAnd(sat::Lit A, sat::Lit B);
  sat::Lit mkOr(sat::Lit A, sat::Lit B);
  sat::Lit mkXor(sat::Lit A, sat::Lit B);

  // Word-level bitwise operations.
  Word bvNot(const Word &A);
  Word bvAnd(const Word &A, const Word &B);
  Word bvOr(const Word &A, const Word &B);
  Word bvXor(const Word &A, const Word &B);

  // Word-level arithmetic modulo 2^w.
  Word bvAdd(const Word &A, const Word &B);
  Word bvSub(const Word &A, const Word &B);
  Word bvNeg(const Word &A);
  Word bvMul(const Word &A, const Word &B);

  /// A literal that is true iff the words differ somewhere.
  sat::Lit disequal(const Word &A, const Word &B);

  /// Asserts \p L at the root level.
  void assertLit(sat::Lit L);

  /// Number of AND-equivalent gates materialized (for reporting).
  uint64_t numGates() const { return NumGates; }

private:
  /// Adder cell: (sum, carry-out).
  std::pair<sat::Lit, sat::Lit> fullAdder(sat::Lit A, sat::Lit B,
                                          sat::Lit Cin);

  /// Known constant value of a literal under rewriting (folds against the
  /// dedicated true variable); 1 true, 0 false, -1 unknown.
  int knownValue(sat::Lit L) const;

  sat::SatSolver &Solver;
  unsigned Width;
  bool Rewriting;
  sat::Lit True;
  uint64_t NumGates = 0;

  enum class GateKind : uint8_t { And, Xor };
  std::map<std::tuple<GateKind, uint32_t, uint32_t>, sat::Lit> GateCache;
};

} // namespace mba

#endif // MBA_BITBLAST_BITBLASTER_H
