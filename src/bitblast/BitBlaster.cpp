//===- bitblast/BitBlaster.cpp - Word-level circuits to CNF ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bitblast/BitBlaster.h"

using namespace mba;
using namespace mba::sat;

BitBlaster::BitBlaster(SatSolver &Solver, unsigned Width,
                       bool EnableRewriting)
    : Solver(Solver), Width(Width), Rewriting(EnableRewriting) {
  assert(Width >= 1 && Width <= 64 && "width must be in [1, 64]");
  True = Lit(Solver.newVar(), false);
  Solver.addClause({True});
}

BitBlaster::Word BitBlaster::freshWord() {
  Word W(Width);
  for (auto &L : W)
    L = Lit(Solver.newVar(), false);
  return W;
}

BitBlaster::Word BitBlaster::constWord(uint64_t Value) {
  Word W(Width);
  for (unsigned I = 0; I != Width; ++I)
    W[I] = (Value >> I & 1) ? True : ~True;
  return W;
}

int BitBlaster::knownValue(Lit L) const {
  if (L == True)
    return 1;
  if (L == ~True)
    return 0;
  return -1;
}

Lit BitBlaster::mkAnd(Lit A, Lit B) {
  if (Rewriting) {
    int KA = knownValue(A), KB = knownValue(B);
    if (KA == 0 || KB == 0)
      return falseLit();
    if (KA == 1)
      return B;
    if (KB == 1)
      return A;
    if (A == B)
      return A;
    if (A == ~B)
      return falseLit();
    if (A.code() > B.code())
      std::swap(A, B); // commutative normalization for the cache
    auto Key = std::make_tuple(GateKind::And, A.code(), B.code());
    auto It = GateCache.find(Key);
    if (It != GateCache.end())
      return It->second;
    Lit C(Solver.newVar(), false);
    Solver.addClause({~C, A});
    Solver.addClause({~C, B});
    Solver.addClause({C, ~A, ~B});
    ++NumGates;
    GateCache.emplace(Key, C);
    return C;
  }
  Lit C(Solver.newVar(), false);
  Solver.addClause({~C, A});
  Solver.addClause({~C, B});
  Solver.addClause({C, ~A, ~B});
  ++NumGates;
  return C;
}

Lit BitBlaster::mkOr(Lit A, Lit B) { return ~mkAnd(~A, ~B); }

Lit BitBlaster::mkXor(Lit A, Lit B) {
  if (Rewriting) {
    int KA = knownValue(A), KB = knownValue(B);
    if (KA == 0)
      return B;
    if (KB == 0)
      return A;
    if (KA == 1)
      return ~B;
    if (KB == 1)
      return ~A;
    if (A == B)
      return falseLit();
    if (A == ~B)
      return trueLit();
    // Push negations out: xor(~a, b) = ~xor(a, b). Canonicalize to
    // positive inputs and track output parity.
    bool Flip = false;
    if (A.negated()) {
      A = ~A;
      Flip = !Flip;
    }
    if (B.negated()) {
      B = ~B;
      Flip = !Flip;
    }
    if (A.code() > B.code())
      std::swap(A, B);
    auto Key = std::make_tuple(GateKind::Xor, A.code(), B.code());
    auto It = GateCache.find(Key);
    if (It != GateCache.end())
      return Flip ? ~It->second : It->second;
    Lit C(Solver.newVar(), false);
    Solver.addClause({~C, A, B});
    Solver.addClause({~C, ~A, ~B});
    Solver.addClause({C, ~A, B});
    Solver.addClause({C, A, ~B});
    ++NumGates;
    GateCache.emplace(Key, C);
    return Flip ? ~C : C;
  }
  Lit C(Solver.newVar(), false);
  Solver.addClause({~C, A, B});
  Solver.addClause({~C, ~A, ~B});
  Solver.addClause({C, ~A, B});
  Solver.addClause({C, A, ~B});
  ++NumGates;
  return C;
}

BitBlaster::Word BitBlaster::bvNot(const Word &A) {
  Word R(Width);
  for (unsigned I = 0; I != Width; ++I)
    R[I] = ~A[I];
  return R;
}

BitBlaster::Word BitBlaster::bvAnd(const Word &A, const Word &B) {
  Word R(Width);
  for (unsigned I = 0; I != Width; ++I)
    R[I] = mkAnd(A[I], B[I]);
  return R;
}

BitBlaster::Word BitBlaster::bvOr(const Word &A, const Word &B) {
  Word R(Width);
  for (unsigned I = 0; I != Width; ++I)
    R[I] = mkOr(A[I], B[I]);
  return R;
}

BitBlaster::Word BitBlaster::bvXor(const Word &A, const Word &B) {
  Word R(Width);
  for (unsigned I = 0; I != Width; ++I)
    R[I] = mkXor(A[I], B[I]);
  return R;
}

std::pair<Lit, Lit> BitBlaster::fullAdder(Lit A, Lit B, Lit Cin) {
  Lit AxB = mkXor(A, B);
  Lit Sum = mkXor(AxB, Cin);
  // Carry-out = (A & B) | (Cin & (A ^ B)).
  Lit Carry = mkOr(mkAnd(A, B), mkAnd(Cin, AxB));
  return {Sum, Carry};
}

BitBlaster::Word BitBlaster::bvAdd(const Word &A, const Word &B) {
  Word R(Width);
  Lit Carry = falseLit();
  for (unsigned I = 0; I != Width; ++I) {
    auto [Sum, Cout] = fullAdder(A[I], B[I], Carry);
    R[I] = Sum;
    Carry = Cout; // the final carry out falls off the word (mod 2^w)
  }
  return R;
}

BitBlaster::Word BitBlaster::bvSub(const Word &A, const Word &B) {
  // A - B = A + ~B + 1 (ripple with carry-in 1).
  Word R(Width);
  Lit Carry = trueLit();
  for (unsigned I = 0; I != Width; ++I) {
    auto [Sum, Cout] = fullAdder(A[I], ~B[I], Carry);
    R[I] = Sum;
    Carry = Cout;
  }
  return R;
}

BitBlaster::Word BitBlaster::bvNeg(const Word &A) {
  return bvSub(constWord(0), A);
}

BitBlaster::Word BitBlaster::bvMul(const Word &A, const Word &B) {
  // Shift-and-add: sum over i of (A << i) masked by B[i]. Only the low
  // Width bits of each partial product matter.
  Word Acc = constWord(0);
  for (unsigned I = 0; I != Width; ++I) {
    Word Partial(Width);
    for (unsigned J = 0; J != Width; ++J)
      Partial[J] = J < I ? falseLit() : mkAnd(A[J - I], B[I]);
    Acc = bvAdd(Acc, Partial);
  }
  return Acc;
}

Lit BitBlaster::disequal(const Word &A, const Word &B) {
  Lit Any = falseLit();
  for (unsigned I = 0; I != Width; ++I)
    Any = mkOr(Any, mkXor(A[I], B[I]));
  return Any;
}

void BitBlaster::assertLit(Lit L) { Solver.addClause({L}); }
