//===- bitblast/ExprBlaster.h - MBA expressions to circuits ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates MBA expressions into bit-vector circuits: each variable gets
/// one fresh input word (shared across expressions blasted through the same
/// ExprBlaster, so an equivalence query sees identical inputs on both
/// sides), and operators map to the corresponding BitBlaster primitives.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_BITBLAST_EXPRBLASTER_H
#define MBA_BITBLAST_EXPRBLASTER_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "bitblast/BitBlaster.h"

#include <unordered_map>

namespace mba {

/// Expression-to-circuit translator with DAG sharing.
class ExprBlaster {
public:
  ExprBlaster(BitBlaster &Blaster) : Blaster(Blaster) {}

  /// Returns the word computing \p E. Shared sub-DAGs are blasted once.
  BitBlaster::Word blast(const Expr *E);

  /// The input word assigned to variable \p V (created on first use).
  const BitBlaster::Word &inputWord(const Expr *V);

private:
  BitBlaster &Blaster;
  std::unordered_map<const Expr *, BitBlaster::Word> Memo;
  std::unordered_map<const Expr *, BitBlaster::Word> Inputs;
};

} // namespace mba

#endif // MBA_BITBLAST_EXPRBLASTER_H
