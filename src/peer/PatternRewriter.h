//===- peer/PatternRewriter.h - SSPAM-style simplification -----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pattern-matching MBA simplifier in the spirit of SSPAM (Eyrolles,
/// Goubin, Videau — SPRO'16), the first peer tool of the paper's Table 7
/// comparison. A library of known MBA identities is applied bottom-up to a
/// fixpoint; matching is syntactic with wildcards and commutative-operator
/// backtracking, plus constant folding.
///
/// Every rule is an identity, so the transformation is always correct
/// ("SSPAM does not introduce wrong simplification result"); coverage is
/// limited to expressions that literally contain a library pattern — the
/// reason it only rescues ~3% of the corpus in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_PEER_PATTERNREWRITER_H
#define MBA_PEER_PATTERNREWRITER_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <string>
#include <vector>

namespace mba {

/// One rewrite rule: Pattern -> Replacement over wildcard variables.
/// Wildcards are the pattern's variables (they match any sub-expression);
/// constants in patterns match exactly.
struct RewriteRule {
  const Expr *Pattern;
  const Expr *Replacement;
  std::string Name;
};

/// Bottom-up fixpoint rewriter over a rule library.
class PatternRewriter {
public:
  /// Loads the built-in library (classic Hacker's Delight / MBA rules).
  explicit PatternRewriter(Context &Ctx);

  /// Adds a custom rule given as pattern/replacement text. The variables
  /// of \p PatternText are the wildcards. Both sides must parse.
  void addRule(std::string_view PatternText, std::string_view ReplacementText,
               std::string Name = "");

  /// Applies the library bottom-up until fixpoint or \p MaxIterations full
  /// passes. Always returns an equivalent expression.
  const Expr *simplify(const Expr *E, unsigned MaxIterations = 8);

  size_t numRules() const { return Rules.size(); }

  /// Read access to the rule library (tests verify each rule is an
  /// identity by treating its wildcards as universally quantified
  /// variables).
  const std::vector<RewriteRule> &rules() const { return Rules; }

  /// Number of successful rule applications in the last simplify() call.
  size_t lastRewriteCount() const { return LastRewrites; }

private:
  const Expr *rewriteOnce(const Expr *E, bool &Changed);
  const Expr *foldConstants(const Expr *E);

  Context &Ctx;
  std::vector<RewriteRule> Rules;
  size_t LastRewrites = 0;
};

} // namespace mba

#endif // MBA_PEER_PATTERNREWRITER_H
