//===- peer/PatternRewriter.cpp - SSPAM-style simplification --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "peer/PatternRewriter.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Parser.h"

#include <unordered_map>

using namespace mba;

namespace {

using Bindings = std::unordered_map<const Expr *, const Expr *>;

/// Syntactic matching with wildcard variables and commutative-operator
/// backtracking.
bool matchExpr(const Expr *Pattern, const Expr *Subject, Bindings &Bound) {
  if (Pattern->isVar()) {
    auto [It, Inserted] = Bound.emplace(Pattern, Subject);
    return Inserted || It->second == Subject;
  }
  if (Pattern->isConst())
    return Subject->isConst() &&
           Pattern->constValue() == Subject->constValue();
  if (Pattern->kind() != Subject->kind())
    return false;
  if (Pattern->isUnary())
    return matchExpr(Pattern->operand(), Subject->operand(), Bound);

  Bindings Saved = Bound;
  if (matchExpr(Pattern->lhs(), Subject->lhs(), Bound) &&
      matchExpr(Pattern->rhs(), Subject->rhs(), Bound))
    return true;
  Bound = Saved;
  if (isCommutativeKind(Pattern->kind())) {
    if (matchExpr(Pattern->lhs(), Subject->rhs(), Bound) &&
        matchExpr(Pattern->rhs(), Subject->lhs(), Bound))
      return true;
    Bound = Saved;
  }
  return false;
}

} // namespace

PatternRewriter::PatternRewriter(Context &Ctx) : Ctx(Ctx) {
  // The built-in library: the classic identities SSPAM's pattern base
  // covers (Hacker's Delight chapter 2, HAKMEM, and the trivial algebraic
  // cleanups SymPy would do for it).
  const struct {
    const char *Pattern, *Replacement, *Name;
  } Library[] = {
      // Bitwise-to-arithmetic reductions.
      {"(a&~b)+b", "a|b", "or-from-andnot"},
      {"(a|b)-(a&b)", "a^b", "xor-from-or-and"},
      {"(a^b)+2*(a&b)", "a+b", "add-from-xor-and"},
      {"(a|b)+(a&b)", "a+b", "add-from-or-and"},
      {"2*(a|b)-(a^b)", "a+b", "add-from-or-xor"},
      {"a+b-(a|b)", "a&b", "and-from-sum-or"},
      {"a+b-(a&b)", "a|b", "or-from-sum-and"},
      {"a+b-2*(a&b)", "a^b", "xor-from-sum-and"},
      {"(a&~b)-(~a&b)", "a-b", "sub-from-andnots"},
      {"(a^b)-2*(~a&b)", "a-b", "sub-from-xor-andnot"},
      {"2*(a&~b)-(a^b)", "a-b", "sub-from-andnot-xor"},
      {"(a^b)+(a&b)", "a|b", "or-from-xor-and"},
      {"(a|b)-b", "a&~b", "andnot-from-or"},
      {"(a|b)-a", "~a&b", "andnot-from-or-2"},
      {"(~a&b)+(a&b)", "b", "split-b"},
      {"(a&~b)+(a&b)", "a", "split-a"},
      // Complement / negation identities.
      {"~a+1", "-a", "neg-from-not"},
      {"-~a-1", "a", "id-from-negnot"},
      {"~(~a)", "a", "double-not"},
      {"-(-a)", "a", "double-neg"},
      {"~(a-1)", "-a", "not-dec"},
      {"~(-a)", "a-1", "not-neg"},
      // Idempotence / annihilation / identity elements.
      {"a&a", "a", "and-idem"},
      {"a|a", "a", "or-idem"},
      {"a^a", "0", "xor-self"},
      {"a&~a", "0", "and-complement"},
      {"a|~a", "-1", "or-complement"},
      {"a^~a", "-1", "xor-complement"},
      {"a&0", "0", "and-zero"},
      {"a|0", "a", "or-zero"},
      {"a^0", "a", "xor-zero"},
      {"a&-1", "a", "and-ones"},
      {"a|-1", "-1", "or-ones"},
      {"a^-1", "~a", "xor-ones"},
      // Arithmetic cleanups.
      {"a*0", "0", "mul-zero"},
      {"a*1", "a", "mul-one"},
      {"a+0", "a", "add-zero"},
      {"a-0", "a", "sub-zero"},
      {"0-a", "-a", "zero-sub"},
      {"a-a", "0", "sub-self"},
      {"a+-1", "a-1", "add-minus-one"},
      // Additional identities from Eyrolles's thesis rule base (the SSPAM
      // pattern library covers these shapes as well).
      {"(a|b)+(~a|b)-~a", "a+b", "add-from-or-noror"},
      {"(a|b)+b-(~a&b)", "a+b", "add-from-or-andnot"},
      {"(a^b)+2*b-2*(~a&b)", "a+b", "add-from-xor-andnot"},
      {"b+(a&~b)+(a&b)", "a+b", "add-from-split"},
      {"(a^b)+2*(a|~b)+2", "a-b", "sub-from-example1"},
      {"-a-b+(a&b)-1", "~(a|b)", "nor-from-arith"},
      {"-a-b+2*(a&b)-1", "b^~a", "xnor-from-arith"},
      {"(a&b)-a-b-1", "~(a|b)", "nor-from-arith-2"},
      {"~a&~b", "~(a|b)", "demorgan-and"},
      {"~a|~b", "~(a&b)", "demorgan-or"},
      {"~a^~b", "a^b", "xor-complements"},
      {"~a^b", "~(a^b)", "xnor-pull-not"},
      {"(a&b)|(a&~b)", "a", "or-of-splits"},
      {"(a|b)&(a|~b)", "a", "and-of-joins"},
      {"(a&b)|(~a&b)", "b", "or-of-splits-b"},
      {"(a&b)^(a|b)", "a^b", "xor-from-and-or"},
      {"(a|b)^(a&~b)", "b", "xor-absorb"},
      {"a&(a|b)", "a", "absorb-and"},
      {"a|(a&b)", "a", "absorb-or"},
      {"a^(a&b)", "a&~b", "xor-and-self"},
      {"a^(a|b)", "~a&b", "xor-or-self"},
      {"a+b-(a^b)", "2*(a&b)", "collect-and"},
  };
  for (const auto &R : Library)
    addRule(R.Pattern, R.Replacement, R.Name);
}

void PatternRewriter::addRule(std::string_view PatternText,
                              std::string_view ReplacementText,
                              std::string Name) {
  const Expr *Pattern = parseOrDie(Ctx, PatternText);
  const Expr *Replacement = parseOrDie(Ctx, ReplacementText);
#ifndef NDEBUG
  // Every replacement wildcard must be bound by the pattern.
  auto PatternVars = collectVariables(Pattern);
  for (const Expr *V : collectVariables(Replacement))
    assert(std::find(PatternVars.begin(), PatternVars.end(), V) !=
               PatternVars.end() &&
           "replacement uses an unbound wildcard");
#endif
  Rules.push_back({Pattern, Replacement, std::move(Name)});
}

const Expr *PatternRewriter::foldConstants(const Expr *E) {
  if (E->isLeaf())
    return E;
  for (unsigned I = 0; I != E->numOperands(); ++I)
    if (!E->getOperand(I)->isConst())
      return E;
  return Ctx.getConst(evaluate(Ctx, E, std::span<const uint64_t>()));
}

const Expr *PatternRewriter::rewriteOnce(const Expr *E, bool &Changed) {
  bool LocalChanged = false;
  const Expr *R = rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    const Expr *Folded = foldConstants(N);
    if (Folded != N) {
      LocalChanged = true;
      return Folded;
    }
    for (const RewriteRule &Rule : Rules) {
      Bindings Bound;
      if (!matchExpr(Rule.Pattern, N, Bound))
        continue;
      const Expr *Out = substitute(Ctx, Rule.Replacement, Bound);
      LocalChanged = true;
      ++LastRewrites;
      return foldConstants(Out);
    }
    return N;
  });
  Changed = LocalChanged;
  return R;
}

const Expr *PatternRewriter::simplify(const Expr *E, unsigned MaxIterations) {
  LastRewrites = 0;
  for (unsigned I = 0; I != MaxIterations; ++I) {
    bool Changed = false;
    E = rewriteOnce(E, Changed);
    if (!Changed)
      break;
  }
  return E;
}
