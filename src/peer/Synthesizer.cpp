//===- peer/Synthesizer.cpp - Syntia-style MCTS program synthesis ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "peer/Synthesizer.h"

#include "ast/CompiledEval.h"
#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"

#include <bit>
#include <cmath>

using namespace mba;

namespace {

/// The candidate grammar: leaf productions (variables and small constants)
/// followed by binary and unary operators.
class Grammar {
public:
  Grammar(Context &Ctx, std::span<const Expr *const> Vars)
      : Ctx(Ctx), Vars(Vars.begin(), Vars.end()) {
    for (uint64_t C : {0ULL, 1ULL, 2ULL, ~0ULL})
      Consts.push_back(Ctx.getConst(C));
  }

  unsigned numProductions() const {
    return (unsigned)(Vars.size() + Consts.size() + NumBinary + NumUnary);
  }

  /// Operand count of production \p P (0 leaf, 1 unary, 2 binary).
  unsigned arity(unsigned P) const {
    unsigned Leaves = (unsigned)(Vars.size() + Consts.size());
    if (P < Leaves)
      return 0;
    return P < Leaves + NumBinary ? 2 : 1;
  }

  /// Builds the node for production \p P over already-built operands.
  const Expr *build(unsigned P, const Expr *A, const Expr *B) const {
    unsigned Leaves = (unsigned)(Vars.size() + Consts.size());
    if (P < Vars.size())
      return Vars[P];
    if (P < Leaves)
      return Consts[P - Vars.size()];
    switch (P - Leaves) {
    case 0:
      return Ctx.getAdd(A, B);
    case 1:
      return Ctx.getSub(A, B);
    case 2:
      return Ctx.getMul(A, B);
    case 3:
      return Ctx.getAnd(A, B);
    case 4:
      return Ctx.getOr(A, B);
    case 5:
      return Ctx.getXor(A, B);
    case 6:
      return Ctx.getNot(A);
    default:
      return Ctx.getNeg(A);
    }
  }

private:
  static constexpr unsigned NumBinary = 6;
  static constexpr unsigned NumUnary = 2;
  Context &Ctx;
  std::vector<const Expr *> Vars;
  std::vector<const Expr *> Consts;
};

/// A partial derivation: preorder production sequence with open holes.
struct Derivation {
  std::vector<uint8_t> Prods;
  unsigned Holes = 1;

  bool complete() const { return Holes == 0; }

  void apply(unsigned P, const Grammar &G) {
    Prods.push_back((uint8_t)P);
    Holes += G.arity(P) - 1;
  }

  /// A production is admissible if the size cap stays satisfiable: every
  /// open hole still needs at least one production.
  bool admissible(unsigned P, const Grammar &G, unsigned MaxNodes) const {
    return Prods.size() + Holes + G.arity(P) <= MaxNodes;
  }
};

/// Builds the expression of a complete derivation (preorder replay).
const Expr *buildExpr(const Derivation &D, const Grammar &G, size_t &Pos) {
  unsigned P = D.Prods[Pos++];
  switch (G.arity(P)) {
  case 0:
    return G.build(P, nullptr, nullptr);
  case 1: {
    const Expr *A = buildExpr(D, G, Pos);
    return G.build(P, A, nullptr);
  }
  default: {
    const Expr *A = buildExpr(D, G, Pos);
    const Expr *B = buildExpr(D, G, Pos);
    return G.build(P, A, B);
  }
  }
}

struct TreeNode {
  Derivation State;
  int32_t Parent = -1;
  std::vector<int32_t> Children;       // index into pool, -1 = unexpanded
  std::vector<uint8_t> ChildProd;      // production of each child slot
  uint32_t Visits = 0;
  double BestReward = 0;
};

} // namespace

SynthResult Synthesizer::synthesize(const Expr *Target,
                                    std::span<const Expr *const> Vars,
                                    const SynthOptions &Opts) {
  RNG Rng(Opts.Seed);
  Grammar G(Ctx, Vars);
  unsigned Width = Ctx.width();
  uint64_t Mask = Ctx.mask();

  // The I/O oracle: corner-ish samples first, then random ones. Outputs
  // come from the target, which is otherwise treated as a black box.
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<std::vector<uint64_t>> Inputs;
  std::vector<uint64_t> Outputs;
  const uint64_t Special[] = {0, 1, Mask, 2};
  for (unsigned S = 0; S != Opts.NumSamples; ++S) {
    std::vector<uint64_t> Sample(MaxIndex + 1, 0);
    for (const Expr *V : Vars)
      Sample[V->varIndex()] =
          S < 4 ? Special[(S + V->varIndex()) % 4] : (Rng.next() & Mask);
    Outputs.push_back(evaluate(Ctx, Target, Sample));
    Inputs.push_back(std::move(Sample));
  }

  // Reward: mean per-sample bit similarity; 1.0 iff all samples match.
  // Candidates are evaluated on every sample, so compile once per
  // candidate and replay the bytecode.
  auto RewardOf = [&](const Expr *E) {
    CompiledExpr Compiled(Ctx, E);
    double Total = 0;
    for (size_t S = 0; S != Inputs.size(); ++S) {
      uint64_t Out = Compiled.evaluate(Inputs[S]);
      unsigned Wrong = (unsigned)std::popcount((Out ^ Outputs[S]) & Mask);
      Total += 1.0 - (double)Wrong / Width;
    }
    return Total / (double)Inputs.size();
  };

  // Uniform random completion under the size cap.
  auto Rollout = [&](Derivation D) {
    while (!D.complete()) {
      unsigned P;
      do {
        P = (unsigned)Rng.below(G.numProductions());
      } while (!D.admissible(P, G, Opts.MaxNodes));
      D.apply(P, G);
    }
    size_t Pos = 0;
    return buildExpr(D, G, Pos);
  };

  std::vector<TreeNode> Pool(1);
  Pool[0].State = Derivation();

  SynthResult Result;
  Result.Best = Ctx.getZero();
  Result.BestReward = -1;
  double BestScore = -1e9;

  // Candidate preference: exact matches first, then reward with a small
  // parsimony penalty so a compact exact form beats a bloated one.
  auto Consider = [&](const Expr *E) {
    double Raw = RewardOf(E);
    double Score = Raw - 0.004 * (double)countTreeNodes(E);
    bool Exact = Raw >= 1.0;
    bool BestIsExact = Result.BestReward >= 1.0;
    if ((Exact && !BestIsExact) || (Exact == BestIsExact && Score > BestScore)) {
      BestScore = Score;
      Result.BestReward = Raw;
      Result.Best = E;
    }
    return Raw;
  };

  uint32_t FirstExactIter = UINT32_MAX;
  for (unsigned Iter = 0; Iter != Opts.MaxIterations; ++Iter) {
    Result.IterationsUsed = Iter + 1;

    // Selection: descend while fully expanded and non-terminal.
    int32_t NodeIdx = 0;
    for (;;) {
      TreeNode &Node = Pool[NodeIdx];
      if (Node.State.complete())
        break;
      if (Node.Children.empty()) {
        // Materialize child slots for admissible productions.
        for (unsigned P = 0; P != G.numProductions(); ++P) {
          if (Node.State.admissible(P, G, Opts.MaxNodes)) {
            Node.Children.push_back(-1);
            Node.ChildProd.push_back((uint8_t)P);
          }
        }
      }
      // Expand a random unexpanded slot if any.
      std::vector<unsigned> Unexpanded;
      for (unsigned I = 0; I != Node.Children.size(); ++I)
        if (Node.Children[I] < 0)
          Unexpanded.push_back(I);
      if (!Unexpanded.empty()) {
        unsigned Slot = Unexpanded[Rng.below(Unexpanded.size())];
        TreeNode Child;
        Child.State = Node.State;
        Child.State.apply(Node.ChildProd[Slot], G);
        Child.Parent = NodeIdx;
        Pool.push_back(std::move(Child));
        Pool[NodeIdx].Children[Slot] = (int32_t)(Pool.size() - 1);
        NodeIdx = (int32_t)(Pool.size() - 1);
        break;
      }
      // UCT over expanded children with max-reward exploitation (SA-UCT).
      double BestScore = -1;
      int32_t BestChild = -1;
      for (unsigned I = 0; I != Node.Children.size(); ++I) {
        const TreeNode &C = Pool[Node.Children[I]];
        double Score =
            C.BestReward + Opts.ExplorationC *
                               std::sqrt(std::log((double)Node.Visits + 2) /
                                         ((double)C.Visits + 1));
        if (Score > BestScore) {
          BestScore = Score;
          BestChild = Node.Children[I];
        }
      }
      NodeIdx = BestChild;
    }

    // Simulation.
    const Expr *Candidate = Rollout(Pool[NodeIdx].State);
    double R = Consider(Candidate);

    // Backpropagation (max reward).
    for (int32_t I = NodeIdx; I >= 0; I = Pool[I].Parent) {
      ++Pool[I].Visits;
      Pool[I].BestReward = std::max(Pool[I].BestReward, R);
    }

    // Once an exact match exists, keep searching briefly for a smaller
    // one, then stop.
    if (Result.BestReward >= 1.0) {
      if (FirstExactIter == UINT32_MAX)
        FirstExactIter = Iter;
      if (countTreeNodes(Result.Best) <= 5 || Iter >= FirstExactIter + 400)
        break;
    }
  }

  Result.MatchesAllSamples = Result.BestReward >= 1.0;
  return Result;
}
