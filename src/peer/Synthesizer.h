//===- peer/Synthesizer.h - Syntia-style MCTS program synthesis -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stochastic program-synthesis simplifier in the spirit of Syntia
/// (Blazytko et al., USENIX Security'17), the second peer tool of the
/// paper's Table 7 comparison. The target expression is observed only
/// through input/output samples (the oracle); Monte-Carlo Tree Search over
/// a small expression grammar looks for a compact expression matching all
/// samples.
///
/// Because the oracle is finite, a synthesized expression that matches
/// every sample may still differ from the target elsewhere — the *wrong
/// simplification* failure mode that dominates Syntia's row of Table 7
/// (up to 82.9% incorrect outputs). This implementation intentionally
/// preserves that behaviour: it returns the best sample-consistent
/// expression found, with no semantic verification.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_PEER_SYNTHESIZER_H
#define MBA_PEER_SYNTHESIZER_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/RNG.h"

#include <cstdint>
#include <span>
#include <vector>

namespace mba {

/// Synthesis parameters.
struct SynthOptions {
  unsigned NumSamples = 24;      ///< oracle I/O samples
  unsigned MaxIterations = 4000; ///< MCTS iterations
  unsigned MaxNodes = 15;        ///< size cap on candidate expressions
  double ExplorationC = 1.3;     ///< UCT exploration constant
  uint64_t Seed = 1;
};

/// Result of one synthesis run.
struct SynthResult {
  const Expr *Best = nullptr;  ///< best candidate found (never null)
  bool MatchesAllSamples = false;
  double BestReward = 0;
  unsigned IterationsUsed = 0;
};

/// MCTS synthesizer over (vars, small constants, +, -, *, &, |, ^, ~, -).
class Synthesizer {
public:
  explicit Synthesizer(Context &Ctx) : Ctx(Ctx) {}

  /// Synthesizes an expression matching \p Target's behaviour on sampled
  /// inputs over \p Vars. The target itself is used only as the I/O
  /// oracle, as Syntia uses instruction traces.
  SynthResult synthesize(const Expr *Target,
                         std::span<const Expr *const> Vars,
                         const SynthOptions &Opts);

private:
  Context &Ctx;
};

} // namespace mba

#endif // MBA_PEER_SYNTHESIZER_H
