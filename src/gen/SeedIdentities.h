//===- gen/SeedIdentities.h - Classic MBA identities -----------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic MBA identities quoted in the paper's Background section —
/// HAKMEM memo, Hacker's Delight, the x+y obfuscation family of Section
/// 2.2, Example 1, and the Figure 1 motivating equation. These seed the
/// corpus (the non-synthesized slice) and the quickstart example.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_GEN_SEEDIDENTITIES_H
#define MBA_GEN_SEEDIDENTITIES_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Classify.h"

#include <span>

namespace mba {

/// One known identity: Obfuscated == Ground for all inputs.
struct SeedIdentity {
  const char *Obfuscated; ///< complex MBA side, parseable text
  const char *Ground;     ///< simple equivalent
  MBAKind Category;       ///< category of the obfuscated side
  const char *Source;     ///< provenance note (paper section / book)
};

/// The built-in identity list.
std::span<const SeedIdentity> seedIdentities();

/// Parses entry \p Seed.Obfuscated / Ground into \p Ctx.
struct ParsedIdentity {
  const Expr *Obfuscated;
  const Expr *Ground;
};
ParsedIdentity parseSeedIdentity(Context &Ctx, const SeedIdentity &Seed);

} // namespace mba

#endif // MBA_GEN_SEEDIDENTITIES_H
