//===- gen/ProgramGen.h - Obfuscated program-IR generator -------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation of whole obfuscated *programs* in the ir/Program.h textual
/// grammar — the benchmark workload of the static MBA-region detection
/// pass (ir/Passes.h). Each generated function is semantically equal to a
/// small ground expression over its parameters; the obfuscations layered on
/// top are exactly what real MBA obfuscators emit behind a lifter:
///
///  * the ground expression is obfuscated with the linear null-space
///    construction (gen/Obfuscator.h) and split into three-address
///    instructions spread over a chain of basic blocks;
///  * *branchy* programs additionally guard the computation with an opaque
///    predicate (`br obf(1), real, junk` — an obfuscated constant 1, so the
///    junk arm never runs) and route part of the computation through a
///    diamond whose two arms compute different obfuscations of the same
///    sub-expression, joined by a phi.
///
/// Every program is emitted as text (the generator has no dependency on the
/// IR library); the ground expression rides along so harnesses can check
/// `interpret(parse(Text)) == evaluate(Ground)` and drive before/after
/// solver studies.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_GEN_PROGRAMGEN_H
#define MBA_GEN_PROGRAMGEN_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "gen/Obfuscator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mba {

/// Knobs of the program generator.
struct ProgramGenOptions {
  unsigned NumVars = 2;   ///< function parameters (2..4 supported names)
  unsigned NumBlocks = 3; ///< straight-line block-chain length
  /// Obfuscation strength of each linear obfuscation layer.
  ObfuscationOptions Obf;
  /// Add one non-polynomial rewrite layer on top of the linear
  /// obfuscation (makes regions non-linear MBA).
  bool NonPoly = false;
  /// Emit the branchy shape (opaque predicate + diamond with phi).
  bool Branchy = false;
};

/// One generated program with its ground truth.
struct GeneratedProgram {
  std::string Text;       ///< the program in the ir/Program.h grammar
  std::string GroundText; ///< printExpr of the ground expression
  const Expr *Ground = nullptr; ///< ground expression (owned by the Context)
  bool Branchy = false;
  size_t NumInsts = 0; ///< emitted instructions (not counting phis)
};

/// Generates one obfuscated program (function "f") deterministically from
/// \p Seed.
GeneratedProgram generateObfuscatedProgram(Context &Ctx, uint64_t Seed,
                                           const ProgramGenOptions &Opts);

/// Generates \p Count programs with per-index seeds derived from \p Seed.
/// When \p MixBranchy is true, every second program uses the branchy shape
/// (overriding Opts.Branchy); otherwise Opts.Branchy applies to all.
std::vector<GeneratedProgram>
generateProgramCorpus(Context &Ctx, size_t Count, uint64_t Seed,
                      const ProgramGenOptions &Opts, bool MixBranchy = true);

} // namespace mba

#endif // MBA_GEN_PROGRAMGEN_H
