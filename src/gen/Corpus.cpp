//===- gen/Corpus.cpp - The 3000-expression MBA corpus --------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Corpus.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "ast/Printer.h"
#include "gen/Obfuscator.h"
#include "gen/SeedIdentities.h"
#include "poly/PolyExpr.h"
#include "support/RNG.h"

#include <algorithm>

using namespace mba;

namespace {

/// Draws the working variable list for an entry: the first T of x, y, z, w.
std::vector<const Expr *> pickVars(Context &Ctx, unsigned T) {
  static const char *Names[] = {"x", "y", "z", "w"};
  assert(T >= 1 && T <= 4 && "corpus entries use 1-4 variables");
  std::vector<const Expr *> Vars;
  for (unsigned I = 0; I != T; ++I)
    Vars.push_back(Ctx.getVar(Names[I]));
  return Vars;
}

/// A random simple linear ground truth: a few small-coefficient terms over
/// variables and depth-1 bitwise expressions, plus a small constant.
const Expr *randomLinearGround(Context &Ctx, Obfuscator &Obf,
                               std::span<const Expr *const> Vars) {
  RNG &Rng = Obf.rng();
  std::vector<LinearTerm> Terms;
  // Every drawn variable participates so the entry's variable count
  // matches the category's draw (Table 1 averages ~2.5 variables).
  for (const Expr *V : Vars) {
    uint64_t Coeff = (uint64_t)Rng.range(-3, 3) & Ctx.mask();
    if (!Coeff)
      Coeff = 1;
    Terms.push_back({Coeff, V});
  }
  unsigned Extra = (unsigned)Rng.below(2);
  for (unsigned I = 0; I != Extra; ++I)
    Terms.push_back({1 + Rng.below(3), Obf.randomBitwise(Vars, 1)});
  uint64_t Constant = (uint64_t)Rng.range(-5, 5) & Ctx.mask();
  return buildLinearCombination(Ctx, Terms, Constant);
}

CorpusEntry makeLinearEntry(Context &Ctx, Obfuscator &Obf, unsigned T) {
  std::vector<const Expr *> Vars = pickVars(Ctx, T);
  const Expr *Ground = randomLinearGround(Ctx, Obf, Vars);
  RNG &Rng = Obf.rng();
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 2 + (unsigned)Rng.below(2);
  Opts.TermsPerIdentity = 5 + (unsigned)Rng.below(3);
  Opts.BitwiseDepth = 2 + (unsigned)Rng.below(2);
  Opts.MaxCoefficient = 60;
  CorpusEntry E;
  E.Obfuscated = Obf.obfuscateLinear(Ground, Opts);
  E.Ground = Ground;
  E.Category = MBAKind::Linear;
  E.NumVars = (unsigned)collectVariables(E.Obfuscated).size();
  return E;
}

CorpusEntry makePolyEntry(Context &Ctx, Obfuscator &Obf, unsigned T) {
  std::vector<const Expr *> Vars = pickVars(Ctx, T);
  RNG &Rng = Obf.rng();
  // Ground: 1-3 product terms of 2 factors each (degree 2 keeps expansion
  // during simplification tractable, like the paper's samples), plus a
  // linear tail so term counts land in Table 1's poly range.
  unsigned NumProducts = 1 + (unsigned)Rng.below(3);
  std::vector<Obfuscator::ProductTerm> Products;
  std::vector<LinearTerm> GroundTerms;
  for (unsigned P = 0; P != NumProducts; ++P) {
    Obfuscator::ProductTerm Term;
    Term.Coeff = 1 + Rng.below(6);
    const Expr *GroundProd = nullptr;
    // Ground factors are plain variables (the paper's poly ground truths
    // are e.g. x*y); the bitwise mess comes from obfuscating each factor.
    for (unsigned F = 0; F != 2; ++F) {
      const Expr *Factor = Vars[Rng.below(Vars.size())];
      Term.Factors.push_back(Factor);
      GroundProd = GroundProd ? Ctx.getMul(GroundProd, Factor) : Factor;
    }
    Products.push_back(Term);
    GroundTerms.push_back({Term.Coeff, GroundProd});
  }
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 4; // halved per factor inside obfuscatePoly
  Opts.TermsPerIdentity = 4;
  Opts.BitwiseDepth = 2;
  Opts.MaxCoefficient = 60;
  CorpusEntry E;
  const Expr *ProductPart = Obf.obfuscatePoly(Products, Opts);
  // Linear tail: an obfuscated linear MBA added to the products.
  const Expr *LinearGround = randomLinearGround(Ctx, Obf, Vars);
  ObfuscationOptions TailOpts;
  TailOpts.ZeroIdentities = 1;
  TailOpts.TermsPerIdentity = 4;
  E.Obfuscated =
      Ctx.getAdd(ProductPart, Obf.obfuscateLinear(LinearGround, TailOpts));
  E.Ground =
      Ctx.getAdd(buildLinearCombination(Ctx, GroundTerms, 0), LinearGround);
  E.Category = MBAKind::Polynomial;
  E.NumVars = (unsigned)collectVariables(E.Obfuscated).size();
  return E;
}

CorpusEntry makeNonPolyEntry(Context &Ctx, Obfuscator &Obf, unsigned T) {
  std::vector<const Expr *> Vars = pickVars(Ctx, T);
  const Expr *Ground = randomLinearGround(Ctx, Obf, Vars);
  RNG &Rng = Obf.rng();
  ObfuscationOptions Opts;
  Opts.ZeroIdentities = 1 + (unsigned)Rng.below(2);
  Opts.TermsPerIdentity = 5;
  Opts.BitwiseDepth = 1 + (unsigned)Rng.below(2);
  Opts.MaxCoefficient = 60;
  const Expr *Seed = Obf.obfuscateLinear(Ground, Opts);
  CorpusEntry E;
  E.Obfuscated = Obf.obfuscateNonPoly(Seed, Vars, 2 + (unsigned)Rng.below(3));
  E.Ground = Ground;
  E.Category = MBAKind::NonPolynomial;
  E.NumVars = (unsigned)collectVariables(E.Obfuscated).size();
  return E;
}

} // namespace

std::vector<CorpusEntry> mba::generateCorpus(Context &Ctx,
                                             const CorpusOptions &Options) {
  assert(Options.MinVars >= 1 && Options.MaxVars <= 4 &&
         Options.MinVars <= Options.MaxVars && "variable range must be 1-4");
  Obfuscator Obf(Ctx, Options.Seed);
  RNG &Rng = Obf.rng();

  std::vector<CorpusEntry> Corpus;
  Corpus.reserve(Options.LinearCount + Options.PolyCount +
                 Options.NonPolyCount);

  unsigned SeedLinear = 0, SeedPoly = 0, SeedNonPoly = 0;
  if (Options.IncludeSeedIdentities) {
    for (const SeedIdentity &S : seedIdentities()) {
      ParsedIdentity P = parseSeedIdentity(Ctx, S);
      CorpusEntry E;
      E.Obfuscated = P.Obfuscated;
      E.Ground = P.Ground;
      E.Category = S.Category;
      E.NumVars = (unsigned)collectVariables(E.Obfuscated).size();
      unsigned &Count = S.Category == MBAKind::Linear ? SeedLinear
                        : S.Category == MBAKind::Polynomial ? SeedPoly
                                                            : SeedNonPoly;
      auto Limit = S.Category == MBAKind::Linear    ? Options.LinearCount
                   : S.Category == MBAKind::Polynomial ? Options.PolyCount
                                                       : Options.NonPolyCount;
      if (Count < Limit) {
        Corpus.push_back(E);
        ++Count;
      }
    }
  }

  auto DrawVarCount = [&]() {
    return Options.MinVars +
           (unsigned)Rng.below(Options.MaxVars - Options.MinVars + 1);
  };

  for (unsigned I = SeedLinear; I < Options.LinearCount; ++I)
    Corpus.push_back(makeLinearEntry(Ctx, Obf, DrawVarCount()));
  for (unsigned I = SeedPoly; I < Options.PolyCount; ++I)
    // Polynomial products over a single variable degenerate (x*x is already
    // poly, but diversity wants >= 2 vars most of the time).
    Corpus.push_back(makePolyEntry(Ctx, Obf, std::max(2u, DrawVarCount())));
  for (unsigned I = SeedNonPoly; I < Options.NonPolyCount; ++I)
    Corpus.push_back(makeNonPolyEntry(Ctx, Obf, DrawVarCount()));
  return Corpus;
}

bool mba::verifyEntrySampled(const Context &Ctx, const CorpusEntry &Entry,
                             unsigned Samples, uint64_t Seed) {
  RNG Rng(Seed);
  std::vector<const Expr *> Vars = collectVariables(Entry.Obfuscated);
  for (const Expr *V : collectVariables(Entry.Ground)) {
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);
  }
  unsigned MaxIndex = 0;
  for (const Expr *V : Vars)
    MaxIndex = std::max(MaxIndex, V->varIndex());
  std::vector<uint64_t> Vals(MaxIndex + 1, 0);
  for (unsigned I = 0; I != Samples; ++I) {
    for (const Expr *V : Vars)
      Vals[V->varIndex()] = Rng.next();
    if (evaluate(Ctx, Entry.Obfuscated, Vals) !=
        evaluate(Ctx, Entry.Ground, Vals))
      return false;
  }
  return true;
}

std::string mba::corpusToText(const Context &Ctx,
                              const std::vector<CorpusEntry> &Entries) {
  std::string Out;
  for (const CorpusEntry &E : Entries) {
    Out += mbaKindName(E.Category);
    Out += '\t';
    Out += printExpr(Ctx, E.Ground);
    Out += '\t';
    Out += printExpr(Ctx, E.Obfuscated);
    Out += '\n';
  }
  return Out;
}
