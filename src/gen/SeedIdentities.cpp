//===- gen/SeedIdentities.cpp - Classic MBA identities --------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/SeedIdentities.h"

#include "ast/Parser.h"

using namespace mba;

namespace {

const SeedIdentity Identities[] = {
    // Background Section 2.1 (HAKMEM / Hacker's Delight).
    {"(x&~y) + y", "x|y", MBAKind::Linear, "paper eq. (2) / HAKMEM"},
    {"(x|y) - (x&y)", "x^y", MBAKind::Linear, "paper eq. (3) / HAKMEM"},
    // Section 2.2: the x+y obfuscation family.
    {"(x|y) + (~x|y) - ~x", "x+y", MBAKind::Linear, "paper sec. 2.2"},
    {"(x|y) + y - (~x&y)", "x+y", MBAKind::Linear, "paper sec. 2.2"},
    {"(x^y) + 2*y - 2*(~x&y)", "x+y", MBAKind::Linear, "paper sec. 2.2"},
    {"y + (x&~y) + (x&y)", "x+y", MBAKind::Linear, "paper sec. 2.2"},
    // Example 1's constructed identity.
    {"(x^y) + 2*(x|~y) + 2", "x-y", MBAKind::Linear, "paper example 1"},
    // Section 4.3 headline example.
    {"2*(x|y) - (~x&y) - (x&~y)", "x+y", MBAKind::Linear, "paper sec. 4.3"},
    // Hacker's Delight addition/subtraction/negation identities.
    {"(x^y) + 2*(x&y)", "x+y", MBAKind::Linear, "Hacker's Delight 2-16"},
    {"(x|y) + (x&y)", "x+y", MBAKind::Linear, "Hacker's Delight 2-16"},
    {"2*(x|y) - (x^y)", "x+y", MBAKind::Linear, "Hacker's Delight 2-16"},
    {"(x^y) - 2*(~x&y)", "x-y", MBAKind::Linear, "Hacker's Delight 2-17"},
    {"(x&~y) - (~x&y)", "x-y", MBAKind::Linear, "Hacker's Delight 2-17"},
    {"2*(x&~y) - (x^y)", "x-y", MBAKind::Linear, "Hacker's Delight 2-17"},
    {"~x + 1", "-x", MBAKind::Linear, "two's complement"},
    {"~(x-1)", "-x", MBAKind::NonPolynomial, "paper sec. 6.1 exception"},
    {"x + y - (x|y)", "x&y", MBAKind::Linear, "Hacker's Delight"},
    {"x + y - (x&y)", "x|y", MBAKind::Linear, "Hacker's Delight"},
    {"x + y - 2*(x&y)", "x^y", MBAKind::Linear, "Hacker's Delight"},
    {"(x|y) - y + (x&y) - x", "0", MBAKind::Linear, "zero identity"},
    // Figure 1: the motivating poly identity that stalls Z3 for an hour.
    {"(x&~y)*(~x&y) + (x&y)*(x|y)", "x*y", MBAKind::Polynomial,
     "paper fig. 1"},
    // Section 4.5 common-sub-expression showcase.
    {"((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)", "x-y+z",
     MBAKind::NonPolynomial, "paper sec. 4.5"},
    // Non-poly forms of a + b == (a|b) + (a&b) with arithmetic operands.
    {"((x+y)|z) + ((x+y)&z) - z", "x+y", MBAKind::NonPolynomial,
     "a+b=(a|b)+(a&b)"},
    {"((x-y)^z) + 2*((x-y)&z) - z", "x-y", MBAKind::NonPolynomial,
     "a+b=(a^b)+2(a&b)"},
};

} // namespace

std::span<const SeedIdentity> mba::seedIdentities() { return Identities; }

ParsedIdentity mba::parseSeedIdentity(Context &Ctx, const SeedIdentity &Seed) {
  return {parseOrDie(Ctx, Seed.Obfuscated), parseOrDie(Ctx, Seed.Ground)};
}
