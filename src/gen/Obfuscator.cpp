//===- gen/Obfuscator.cpp - MBA identity / obfuscation generator ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Obfuscator.h"

#include "ast/Evaluator.h"
#include "ast/ExprUtils.h"
#include "linalg/IntKernel.h"
#include "linalg/TruthTable.h"
#include "mba/Classify.h"
#include "poly/PolyExpr.h"

#include <algorithm>
#include <functional>

using namespace mba;

std::vector<LinearTerm> mba::decomposeLinearTerms(const Context &Ctx,
                                                  const Expr *E) {
  assert(classifyMBA(Ctx, E) == MBAKind::Linear && "input must be linear");
  uint64_t Mask = Ctx.mask();
  std::vector<LinearTerm> Terms;
  uint64_t Constant = 0;
  std::function<void(const Expr *, uint64_t)> Go = [&](const Expr *N,
                                                       uint64_t Scale) {
    switch (N->kind()) {
    case ExprKind::Const:
      Constant = (Constant + Scale * N->constValue()) & Mask;
      return;
    case ExprKind::Add:
      Go(N->lhs(), Scale);
      Go(N->rhs(), Scale);
      return;
    case ExprKind::Sub:
      Go(N->lhs(), Scale);
      Go(N->rhs(), (0 - Scale) & Mask);
      return;
    case ExprKind::Neg:
      // -a is arithmetic negation: recurse with flipped scale — unless the
      // operand is pure bitwise, in which case -e is a coefficient of -1 on
      // the bitwise term e.
      Go(N->operand(), (0 - Scale) & Mask);
      return;
    case ExprKind::Mul: {
      // One side must be constant-valued (possibly a variable-free subtree
      // rather than a literal Const node — the classifier folds those).
      auto ConstantValue = [&](const Expr *Side) -> std::optional<uint64_t> {
        if (Side->isConst())
          return Side->constValue();
        if (collectVariables(Side).empty())
          return evaluate(Ctx, Side, std::span<const uint64_t>());
        return std::nullopt;
      };
      if (auto L = ConstantValue(N->lhs())) {
        Go(N->rhs(), (Scale * *L) & Mask);
        return;
      }
      auto R = ConstantValue(N->rhs());
      assert(R && "linear Mul must have a constant-valued side");
      Go(N->lhs(), (Scale * *R) & Mask);
      return;
    }
    default:
      // A pure bitwise term (variable or bitwise operator node).
      Terms.push_back({Scale, N});
      return;
    }
  };
  Go(E, 1);
  if (Constant)
    Terms.push_back({Constant, nullptr});
  return Terms;
}

Obfuscator::Obfuscator(Context &Ctx, uint64_t Seed) : Ctx(Ctx), Rng(Seed) {}

const Expr *Obfuscator::randomBitwise(std::span<const Expr *const> Vars,
                                      unsigned Depth) {
  assert(!Vars.empty() && "need at least one variable");
  if (Depth == 0 || Rng.chance(1, 8)) {
    const Expr *V = Vars[Rng.below(Vars.size())];
    return Rng.chance(1, 3) ? Ctx.getNot(V) : V;
  }
  switch (Rng.below(4)) {
  case 0:
    return Ctx.getNot(randomBitwise(Vars, Depth - 1));
  case 1:
    return Ctx.getAnd(randomBitwise(Vars, Depth - 1),
                      randomBitwise(Vars, Depth - 1));
  case 2:
    return Ctx.getOr(randomBitwise(Vars, Depth - 1),
                     randomBitwise(Vars, Depth - 1));
  default:
    return Ctx.getXor(randomBitwise(Vars, Depth - 1),
                      randomBitwise(Vars, Depth - 1));
  }
}

const Expr *Obfuscator::zeroIdentity(std::span<const Expr *const> Vars,
                                     unsigned NumTerms,
                                     unsigned BitwiseDepth) {
  unsigned T = (unsigned)Vars.size();
  unsigned Rows = 1u << T;
  // With more columns (expressions + the all-ones column) than rows the
  // kernel is guaranteed nontrivial.
  NumTerms = std::max(NumTerms, Rows);

  std::vector<const Expr *> Exprs;
  Exprs.reserve(NumTerms);
  for (unsigned I = 0; I != NumTerms; ++I)
    Exprs.push_back(randomBitwise(Vars, BitwiseDepth));

  std::vector<uint8_t> Truth = truthTableMatrix(Ctx, Exprs, Vars);
  IntMatrix M;
  M.Rows = Rows;
  M.Cols = NumTerms + 1;
  M.Data.resize((size_t)M.Rows * M.Cols);
  for (unsigned R = 0; R != Rows; ++R) {
    for (unsigned C = 0; C != NumTerms; ++C)
      M.at(R, C) = Truth[R * NumTerms + C];
    M.at(R, NumTerms) = 1; // the all-ones column, encoded as -1 below
  }

  // Combine two kernel vectors (when the kernel has dimension > 1) with
  // small random weights: the combination is still in the kernel and is
  // denser, giving identities with realistically many terms.
  auto C1 = integerKernelVector(M, (unsigned)Rng.below(8));
  auto C2 = integerKernelVector(M, (unsigned)Rng.below(8));
  assert(C1 && C2 && "kernel must be nontrivial with cols > rows");
  int64_t A = Rng.range(1, 3), B = C1 == C2 ? 0 : Rng.range(1, 3);
  std::vector<int64_t> C(C1->size());
  for (size_t I = 0; I != C.size(); ++I)
    C[I] = A * (*C1)[I] + B * (*C2)[I];

  uint64_t Mask = Ctx.mask();
  std::vector<LinearTerm> Terms;
  for (unsigned I = 0; I != NumTerms; ++I)
    if (C[I])
      Terms.push_back({(uint64_t)C[I] & Mask, Exprs[I]});
  // The all-ones column stands for the constant -1, so its coefficient k
  // contributes the constant -k.
  uint64_t Constant = (0 - (uint64_t)C[NumTerms]) & Mask;
  return buildLinearCombination(Ctx, Terms, Constant);
}

const Expr *Obfuscator::obfuscateLinear(const Expr *Target,
                                        const ObfuscationOptions &Opts) {
  assert(classifyMBA(Ctx, Target) == MBAKind::Linear &&
         "target must be linear");
  std::vector<const Expr *> Vars = collectVariables(Target);
  if (Vars.empty())
    return Target; // constant target: nothing to mix identities over

  uint64_t Mask = Ctx.mask();
  std::vector<LinearTerm> Terms = decomposeLinearTerms(Ctx, Target);
  uint64_t Constant = 0;
  // Split out the constant entry so shuffling only permutes real terms.
  Terms.erase(std::remove_if(Terms.begin(), Terms.end(),
                             [&](const LinearTerm &T) {
                               if (T.second)
                                 return false;
                               Constant = (Constant + T.first) & Mask;
                               return true;
                             }),
              Terms.end());

  for (unsigned R = 0; R != Opts.ZeroIdentities; ++R) {
    // Identities are drawn over a small variable subset: the kernel
    // construction needs more expressions than truth-table rows (2^t), so
    // restricting to <= 3 variables keeps identity sizes realistic even
    // for 4-variable targets (the paper's corpus tops out at 14 terms).
    std::vector<const Expr *> IdentityVars = Vars;
    unsigned SubsetSize =
        std::min<unsigned>((unsigned)Vars.size(), 2 + (unsigned)Rng.below(2));
    for (size_t I = IdentityVars.size(); I > 1; --I)
      std::swap(IdentityVars[I - 1], IdentityVars[Rng.below(I)]);
    IdentityVars.resize(SubsetSize);
    const Expr *Zero =
        zeroIdentity(IdentityVars, Opts.TermsPerIdentity, Opts.BitwiseDepth);
    uint64_t Scale = 1 + Rng.below(std::max(1u, Opts.MaxCoefficient));
    for (LinearTerm T : decomposeLinearTerms(Ctx, Zero)) {
      uint64_t Coeff = (T.first * Scale) & Mask;
      if (T.second)
        Terms.push_back({Coeff, T.second});
      else
        Constant = (Constant + Coeff) & Mask;
    }
  }

  // Fisher-Yates shuffle for a scrambled term order.
  for (size_t I = Terms.size(); I > 1; --I)
    std::swap(Terms[I - 1], Terms[Rng.below(I)]);
  return buildLinearCombination(Ctx, Terms, Constant);
}

const Expr *Obfuscator::obfuscatePoly(std::span<const ProductTerm> Products,
                                      const ObfuscationOptions &Opts) {
  assert(!Products.empty() && "need at least one product term");
  // Per-factor obfuscation uses a lighter setting so products stay a
  // realistic size.
  ObfuscationOptions FactorOpts = Opts;
  FactorOpts.ZeroIdentities = std::max(1u, Opts.ZeroIdentities / 2);

  std::vector<LinearTerm> OutTerms;
  for (const ProductTerm &P : Products) {
    assert(!P.Factors.empty() && "empty factor list");
    const Expr *Prod = nullptr;
    for (const Expr *F : P.Factors) {
      assert(classifyMBA(Ctx, F) == MBAKind::Linear && "factor must be linear");
      const Expr *FObf = obfuscateLinear(F, FactorOpts);
      Prod = Prod ? Ctx.getMul(Prod, FObf) : FObf;
    }
    OutTerms.push_back({P.Coeff, Prod});
  }
  return buildLinearCombination(Ctx, OutTerms, 0);
}

const Expr *
Obfuscator::applyNonPolyRewrite(const Expr *E,
                                std::span<const Expr *const> Vars) {
  // Candidate rewrite points: arithmetic operator nodes, and the root.
  std::vector<const Expr *> Candidates;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (isArithmeticKind(N->kind()))
      Candidates.push_back(N);
  });
  if (Candidates.empty() || Rng.chance(1, 4))
    Candidates.push_back(E);
  const Expr *A = Candidates[Rng.below(Candidates.size())];

  const Expr *B = randomBitwise(Vars, 1);
  const Expr *Form;
  switch (Rng.below(4)) {
  case 0:
    // a == (a|b) + (a&b) - b       (from a + b == (a|b) + (a&b))
    Form = Ctx.getSub(Ctx.getAdd(Ctx.getOr(A, B), Ctx.getAnd(A, B)), B);
    break;
  case 1:
    // a == (a^b) + 2*(a&b) - b     (from a + b == (a^b) + 2*(a&b))
    Form = Ctx.getSub(Ctx.getAdd(Ctx.getXor(A, B),
                                 Ctx.getMul(Ctx.getConst(2),
                                            Ctx.getAnd(A, B))),
                      B);
    break;
  case 2:
    // a == -(~a) - 1               (two's complement)
    Form = Ctx.getSub(Ctx.getNeg(Ctx.getNot(A)), Ctx.getOne());
    break;
  default:
    // a == ~(~a)
    Form = Ctx.getNot(Ctx.getNot(A));
    break;
  }
  if (A == E)
    return Form;
  return substitute(Ctx, E, {{A, Form}});
}

const Expr *Obfuscator::obfuscateOpaque(const Expr *Seed,
                                        std::span<const Expr *const> Vars,
                                        unsigned Count) {
  assert(!Vars.empty() && "need variables to build opaque products over");
  const Expr *E = Seed;
  for (unsigned I = 0; I != Count; ++I) {
    const Expr *V = Vars[Rng.below(Vars.size())];
    unsigned K = 2 + (unsigned)Rng.below(5); // 2..6 consecutive factors
    unsigned Pow2 = 0;                       // v2(K!) by Legendre's formula
    for (unsigned N = K; N > 1; N /= 2)
      Pow2 += N / 2;
    unsigned MaskBits = 1 + (unsigned)Rng.below(Pow2);
    uint64_t Offset = Rng.below(16);
    const Expr *P = nullptr;
    for (unsigned F = 0; F != K; ++F) {
      uint64_t Shift = (Offset + F) & Ctx.mask();
      const Expr *Factor = Shift ? Ctx.getAdd(V, Ctx.getConst(Shift)) : V;
      P = P ? Ctx.getMul(P, Factor) : Factor;
    }
    const Expr *Zero =
        Ctx.getAnd(P, Ctx.getConst(((uint64_t)1 << MaskBits) - 1));
    // Adding and xoring an identical zero both preserve the value; vary
    // the mixing operator so the residue shapes differ.
    E = Rng.chance(1, 3) ? Ctx.getXor(E, Zero) : Ctx.getAdd(E, Zero);
  }
  return E;
}

const Expr *Obfuscator::obfuscateNonPoly(const Expr *Seed,
                                         std::span<const Expr *const> Vars,
                                         unsigned Rewrites) {
  assert(!Vars.empty() && "need variables to draw rewrite partners from");
  const Expr *E = Seed;
  for (unsigned I = 0; I != Rewrites; ++I)
    E = applyNonPolyRewrite(E, Vars);
  // Rewrites over pure-bitwise nodes can come out linear; force the
  // category with additional rounds (bounded).
  for (unsigned Attempt = 0;
       Attempt != 8 && classifyMBA(Ctx, E) != MBAKind::NonPolynomial;
       ++Attempt)
    E = applyNonPolyRewrite(E, Vars);
  return E;
}
