//===- gen/EncodeArithmetic.cpp - Tigress-style operator encoding ---------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/EncodeArithmetic.h"

#include "ast/ExprUtils.h"
#include "support/RNG.h"

using namespace mba;

namespace {

/// The rewrite catalogue. Each entry builds an equivalent of op(A, B) (B
/// unused for the unary operators).
struct Encoder {
  Context &Ctx;
  RNG Rng;
  bool EncodeMul;

  const Expr *C(uint64_t V) { return Ctx.getConst(V); }

  const Expr *encodeAdd(const Expr *A, const Expr *B) {
    switch (Rng.below(4)) {
    case 0: // (a|b) + (a&b)
      return Ctx.getAdd(Ctx.getOr(A, B), Ctx.getAnd(A, B));
    case 1: // (a^b) + 2*(a&b)
      return Ctx.getAdd(Ctx.getXor(A, B),
                        Ctx.getMul(C(2), Ctx.getAnd(A, B)));
    case 2: // a - ~b - 1
      return Ctx.getSub(Ctx.getSub(A, Ctx.getNot(B)), C(1));
    default: // 2*(a|b) - (a^b)
      return Ctx.getSub(Ctx.getMul(C(2), Ctx.getOr(A, B)), Ctx.getXor(A, B));
    }
  }

  const Expr *encodeSub(const Expr *A, const Expr *B) {
    switch (Rng.below(4)) {
    case 0: // a + ~b + 1
      return Ctx.getAdd(Ctx.getAdd(A, Ctx.getNot(B)), C(1));
    case 1: // (a^b) - 2*(~a&b)
      return Ctx.getSub(Ctx.getXor(A, B),
                        Ctx.getMul(C(2), Ctx.getAnd(Ctx.getNot(A), B)));
    case 2: // (a&~b) - (~a&b)
      return Ctx.getSub(Ctx.getAnd(A, Ctx.getNot(B)),
                        Ctx.getAnd(Ctx.getNot(A), B));
    default: // 2*(a&~b) - (a^b)
      return Ctx.getSub(Ctx.getMul(C(2), Ctx.getAnd(A, Ctx.getNot(B))),
                        Ctx.getXor(A, B));
    }
  }

  const Expr *encodeXor(const Expr *A, const Expr *B) {
    switch (Rng.below(2)) {
    case 0: // (a|b) - (a&b)
      return Ctx.getSub(Ctx.getOr(A, B), Ctx.getAnd(A, B));
    default: // a + b - 2*(a&b)
      return Ctx.getSub(Ctx.getAdd(A, B),
                        Ctx.getMul(C(2), Ctx.getAnd(A, B)));
    }
  }

  const Expr *encodeOr(const Expr *A, const Expr *B) {
    switch (Rng.below(2)) {
    case 0: // a + b - (a&b)
      return Ctx.getSub(Ctx.getAdd(A, B), Ctx.getAnd(A, B));
    default: // (a&~b) + b
      return Ctx.getAdd(Ctx.getAnd(A, Ctx.getNot(B)), B);
    }
  }

  const Expr *encodeAnd(const Expr *A, const Expr *B) {
    switch (Rng.below(2)) {
    case 0: // a + b - (a|b)
      return Ctx.getSub(Ctx.getAdd(A, B), Ctx.getOr(A, B));
    default: // (~a|b) - ~a
      return Ctx.getSub(Ctx.getOr(Ctx.getNot(A), B), Ctx.getNot(A));
    }
  }

  const Expr *encodeNot(const Expr *A) {
    // ~a == -a - 1
    return Ctx.getSub(Ctx.getNeg(A), C(1));
  }

  const Expr *encodeNeg(const Expr *A) {
    // -a == ~a + 1
    return Ctx.getAdd(Ctx.getNot(A), C(1));
  }

  const Expr *encodeMul(const Expr *A, const Expr *B) {
    // a*b == (a&b)*(a|b) + (a&~b)*(~a&b)  (the Figure 1 identity)
    return Ctx.getAdd(
        Ctx.getMul(Ctx.getAnd(A, B), Ctx.getOr(A, B)),
        Ctx.getMul(Ctx.getAnd(A, Ctx.getNot(B)),
                   Ctx.getAnd(Ctx.getNot(A), B)));
  }

  const Expr *encodeNode(const Expr *N) {
    switch (N->kind()) {
    case ExprKind::Add:
      return encodeAdd(N->lhs(), N->rhs());
    case ExprKind::Sub:
      return encodeSub(N->lhs(), N->rhs());
    case ExprKind::Xor:
      return encodeXor(N->lhs(), N->rhs());
    case ExprKind::Or:
      return encodeOr(N->lhs(), N->rhs());
    case ExprKind::And:
      return encodeAnd(N->lhs(), N->rhs());
    case ExprKind::Not:
      return encodeNot(N->operand());
    case ExprKind::Neg:
      return encodeNeg(N->operand());
    case ExprKind::Mul:
      // Constant multiplications stay (coefficients are not operators the
      // transform encodes); variable products optionally rewrite.
      if (!EncodeMul || N->lhs()->isConst() || N->rhs()->isConst())
        return N;
      return encodeMul(N->lhs(), N->rhs());
    default:
      return N;
    }
  }
};

} // namespace

const Expr *mba::encodeArithmetic(Context &Ctx, const Expr *E,
                                  const EncodeOptions &Opts) {
  Encoder Enc{Ctx, RNG(Opts.Seed), Opts.EncodeMul};
  const Expr *Result = E;
  for (unsigned Round = 0; Round != Opts.Rounds; ++Round) {
    Result = rewriteBottomUp(Ctx, Result, [&](const Expr *N) -> const Expr * {
      if (N->isLeaf())
        return N;
      if (!Enc.Rng.chance(Opts.Percent, 100))
        return N;
      return Enc.encodeNode(N);
    });
  }
  return Result;
}
