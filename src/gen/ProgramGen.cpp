//===- gen/ProgramGen.cpp - Obfuscated program-IR generator ---------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/ProgramGen.h"

#include "ast/ExprUtils.h"
#include "ast/Printer.h"

#include <unordered_map>

using namespace mba;

namespace {

/// Emits the three-address split of \p E: one `tN = ...` line per internal
/// DAG node (shared nodes split once), appended to \p Lines. Returns the
/// operand string naming \p E (a temp, a variable, or a literal).
class ThreeAddressSplitter {
public:
  ThreeAddressSplitter(const Context &Ctx, unsigned &NextTemp,
                       std::vector<std::string> &Lines)
      : Ctx(Ctx), NextTemp(NextTemp), Lines(Lines) {}

  std::string split(const Expr *E) {
    if (auto It = NameOf.find(E); It != NameOf.end())
      return It->second;
    std::string Name;
    switch (E->kind()) {
    case ExprKind::Var:
      Name = E->varName();
      break;
    case ExprKind::Const:
      Name = std::to_string(Ctx.toSigned(E->constValue()));
      break;
    case ExprKind::Not:
    case ExprKind::Neg: {
      std::string Op = split(E->operand());
      Name = fresh();
      Lines.push_back(Name + " = " +
                      (E->is(ExprKind::Not) ? "~" : "-") + Op);
      break;
    }
    default: {
      std::string L = split(E->lhs());
      std::string R = split(E->rhs());
      const char *Op = "+";
      switch (E->kind()) {
      case ExprKind::Add: Op = "+"; break;
      case ExprKind::Sub: Op = "-"; break;
      case ExprKind::Mul: Op = "*"; break;
      case ExprKind::And: Op = "&"; break;
      case ExprKind::Or:  Op = "|"; break;
      case ExprKind::Xor: Op = "^"; break;
      default: break;
      }
      Name = fresh();
      Lines.push_back(Name + " = " + L + " " + Op + " " + R);
      break;
    }
    }
    NameOf.emplace(E, Name);
    return Name;
  }

private:
  std::string fresh() {
    // Built via append (not `"t" + to_string(...)`) to dodge a GCC 12
    // -Wrestrict false positive on the prepend path.
    std::string Name = "t";
    Name += std::to_string(++NextTemp);
    return Name;
  }

  const Context &Ctx;
  unsigned &NextTemp;
  std::vector<std::string> &Lines;
  std::unordered_map<const Expr *, std::string> NameOf;
};

/// A random ground expression: a small linear MBA over \p Vars with small
/// coefficients and at most one bitwise term — the kind of expression an
/// obfuscator starts from.
const Expr *randomGround(Context &Ctx, Obfuscator &O,
                         std::span<const Expr *const> Vars) {
  RNG &R = O.rng();
  const Expr *E = nullptr;
  auto AddTerm = [&](const Expr *T) { E = E ? Ctx.getAdd(E, T) : T; };
  for (const Expr *V : Vars) {
    uint64_t C = 1 + R.below(5);
    AddTerm(C == 1 ? V : Ctx.getMul(Ctx.getConst(C), V));
  }
  if (Vars.size() >= 2 && R.chance(1, 2))
    AddTerm(O.randomBitwise(Vars, 1));
  if (R.chance(1, 2))
    AddTerm(Ctx.getConst(1 + R.below(17)));
  return E;
}

/// Chunks \p Lines into \p NumBlocks consecutive groups. Returns the block
/// bodies (possibly fewer groups when there are fewer lines).
std::vector<std::vector<std::string>>
chunkLines(const std::vector<std::string> &Lines, unsigned NumBlocks) {
  NumBlocks = std::max(1U, NumBlocks);
  std::vector<std::vector<std::string>> Chunks;
  size_t Per = (Lines.size() + NumBlocks - 1) / std::max<size_t>(NumBlocks, 1);
  Per = std::max<size_t>(Per, 1);
  for (size_t I = 0; I < Lines.size(); I += Per) {
    Chunks.emplace_back(Lines.begin() + (long)I,
                        Lines.begin() +
                            (long)std::min(Lines.size(), I + Per));
  }
  if (Chunks.empty())
    Chunks.emplace_back();
  return Chunks;
}

const char *const ParamNames[] = {"x", "y", "z", "w"};

} // namespace

GeneratedProgram mba::generateObfuscatedProgram(Context &Ctx, uint64_t Seed,
                                                const ProgramGenOptions &O) {
  Obfuscator Obf(Ctx, Seed);
  unsigned NumVars = std::min(std::max(O.NumVars, 1U), 4U);
  std::vector<const Expr *> Vars;
  for (unsigned I = 0; I != NumVars; ++I)
    Vars.push_back(Ctx.getVar(ParamNames[I]));

  GeneratedProgram Out;
  Out.Branchy = O.Branchy;
  unsigned NextTemp = 0;

  std::string Params;
  for (unsigned I = 0; I != NumVars; ++I) {
    if (I)
      Params += ", ";
    Params += ParamNames[I];
  }

  auto Obfuscate = [&](const Expr *E) {
    const Expr *R = Obf.obfuscateLinear(E, O.Obf);
    if (O.NonPoly)
      R = Obf.obfuscateNonPoly(R, Vars, 1);
    return R;
  };

  std::string Text = "func @f(" + Params + ") {\n";
  auto EmitBlock = [&](const std::string &Label,
                       const std::vector<std::string> &Lines,
                       const std::string &Term) {
    Text += Label + ":\n";
    for (const std::string &L : Lines)
      Text += "  " + L + "\n";
    Text += "  " + Term + "\n";
  };

  if (!O.Branchy) {
    const Expr *Ground = randomGround(Ctx, Obf, Vars);
    const Expr *Obfuscated = Obfuscate(Ground);
    std::vector<std::string> Lines;
    ThreeAddressSplitter S(Ctx, NextTemp, Lines);
    std::string Root = S.split(Obfuscated);
    Out.NumInsts = Lines.size();
    auto Chunks = chunkLines(Lines, O.NumBlocks);
    for (size_t I = 0; I != Chunks.size(); ++I) {
      bool Last = I + 1 == Chunks.size();
      EmitBlock(I == 0 ? "entry" : "b" + std::to_string(I), Chunks[I],
                Last ? "ret " + Root : "jmp b" + std::to_string(I + 1));
    }
    Text += "}\n";
    Out.Ground = Ground;
    Out.GroundText = printExpr(Ctx, Ground);
    Out.Text = std::move(Text);
    return Out;
  }

  // Branchy shape: ground = A + B.
  //   entry: split(obf(A)) ... p = split(obf(1)); br p, cont, junk
  //   junk:  decoy instructions; jmp cont
  //   cont:  br x, arm_a, arm_b                     (a genuine branch)
  //   arm_a: split(obf_1(B)) -> ra; jmp join
  //   arm_b: split(obf_2(B)) -> rb; jmp join
  //   join:  m = phi [arm_a: ra], [arm_b: rb]; out = tA + m; ret out
  const Expr *A = randomGround(Ctx, Obf, Vars);
  const Expr *B = randomGround(Ctx, Obf, Vars);
  const Expr *Ground = Ctx.getAdd(A, B);

  std::vector<std::string> EntryLines;
  ThreeAddressSplitter SEntry(Ctx, NextTemp, EntryLines);
  std::string RootA = SEntry.split(Obfuscate(A));
  // The opaque predicate: an obfuscation of the constant 1 — never zero,
  // so the junk arm is statically dead (and provably so).
  std::string Pred = SEntry.split(Obfuscate(Ctx.getOne()));
  Out.NumInsts += EntryLines.size();
  EmitBlock("entry", EntryLines, "br " + Pred + ", cont, junk");

  std::vector<std::string> JunkLines;
  ThreeAddressSplitter SJunk(Ctx, NextTemp, JunkLines);
  SJunk.split(Obf.randomBitwise(Vars, 2));
  Out.NumInsts += JunkLines.size();
  EmitBlock("junk", JunkLines, "jmp cont");

  EmitBlock("cont", {}, "br " + std::string(ParamNames[0]) +
                            ", arm_a, arm_b");

  std::vector<std::string> ArmALines;
  ThreeAddressSplitter SA(Ctx, NextTemp, ArmALines);
  std::string RootB1 = SA.split(Obfuscate(B));
  Out.NumInsts += ArmALines.size();
  EmitBlock("arm_a", ArmALines, "jmp join");

  std::vector<std::string> ArmBLines;
  ThreeAddressSplitter SB(Ctx, NextTemp, ArmBLines);
  std::string RootB2 = SB.split(Obfuscate(B));
  Out.NumInsts += ArmBLines.size();
  EmitBlock("arm_b", ArmBLines, "jmp join");

  Text += "join:\n";
  Text += "  m1 = phi [arm_a: " + RootB1 + "], [arm_b: " + RootB2 + "]\n";
  Text += "  out = " + RootA + " + m1\n";
  Text += "  ret out\n";
  Text += "}\n";
  Out.NumInsts += 1; // out
  Out.Ground = Ground;
  Out.GroundText = printExpr(Ctx, Ground);
  Out.Text = std::move(Text);
  return Out;
}

std::vector<GeneratedProgram>
mba::generateProgramCorpus(Context &Ctx, size_t Count, uint64_t Seed,
                           const ProgramGenOptions &Opts, bool MixBranchy) {
  std::vector<GeneratedProgram> Out;
  Out.reserve(Count);
  RNG Seeder(Seed);
  for (size_t I = 0; I != Count; ++I) {
    ProgramGenOptions O = Opts;
    if (MixBranchy)
      O.Branchy = (I % 2) == 1;
    Out.push_back(generateObfuscatedProgram(Ctx, Seeder.next(), O));
  }
  return Out;
}
