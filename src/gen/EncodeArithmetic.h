//===- gen/EncodeArithmetic.h - Tigress-style operator encoding -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tigress-style "EncodeArithmetic" obfuscation: each arithmetic or
/// bitwise operator is rewritten into a fixed MBA identity chosen from the
/// classic catalogue (Hacker's Delight chapter 2 — the same rules Tigress's
/// EncodeArithmetic transform applies; Tigress-produced samples are one of
/// the paper's corpus sources). Applied over multiple rounds, the rewrites
/// compound: `x + y` becomes `(x|y)+(x&y)`, whose `|` then becomes
/// `(x&~y)+y`, and so on — exactly the layered growth seen in protected
/// binaries.
///
/// In contrast to the null-space Obfuscator (random identities), this
/// transformation is template-driven, which makes it the natural adversary
/// for pattern-matching simplifiers: SSPAM's library inverts single rules
/// but not their compositions.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_GEN_ENCODEARITHMETIC_H
#define MBA_GEN_ENCODEARITHMETIC_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>

namespace mba {

/// Knobs for the encoder.
struct EncodeOptions {
  unsigned Rounds = 2;       ///< rewrite passes (complexity compounds)
  unsigned Percent = 85;     ///< probability of rewriting an eligible node
  uint64_t Seed = 1;         ///< template/application randomness
  bool EncodeMul = true;     ///< also rewrite x*y (Figure 1 style)
};

/// Applies the operator-encoding transformation to \p E. The result is an
/// identity of \p E on every input word.
const Expr *encodeArithmetic(Context &Ctx, const Expr *E,
                             const EncodeOptions &Opts);

} // namespace mba

#endif // MBA_GEN_ENCODEARITHMETIC_H
