//===- gen/Obfuscator.h - MBA identity / obfuscation generator -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generation of MBA identities, reproducing the constructions behind the
/// paper's 3000-expression corpus (Section 3.1):
///
///  * **Linear** — Zhou et al.'s null-space method (the paper's Example 1):
///    the truth-table matrix M of randomly drawn bitwise expressions plus
///    the all-ones (-1) column has a nontrivial integer kernel once it has
///    more columns than rows; any kernel vector C makes sum_i C_i * e_i an
///    identical zero on every w-bit input. Adding such zeros to a target
///    expression and flattening/shuffling terms yields arbitrarily complex
///    linear MBA equal to the target — the construction Tigress and
///    Eyrolles's generator use.
///  * **Polynomial** — every bitwise factor of a product template is
///    replaced by an equivalent complex linear MBA (Figure 1's
///    (x&~y)*(~x&y) + (x&y)*(x|y) == x*y is of this shape).
///  * **Non-polynomial** — identity rewrites that push bitwise operators
///    over arithmetic sub-expressions, e.g. a == (a|b) + (a&b) - b for any
///    b (from a + b == (a|b) + (a&b)).
///
/// All constructions are identities by design; the generator additionally
/// asserts equivalence on sampled inputs in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_GEN_OBFUSCATOR_H
#define MBA_GEN_OBFUSCATOR_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/RNG.h"

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace mba {

/// Knobs for the linear null-space construction.
struct ObfuscationOptions {
  unsigned ZeroIdentities = 3;    ///< zero-identities mixed into the target
  unsigned TermsPerIdentity = 5;  ///< bitwise expressions per identity
  unsigned BitwiseDepth = 2;      ///< depth of random bitwise expressions
  unsigned MaxCoefficient = 9;    ///< scale factor bound for each identity
};

/// One (coefficient, bitwise-expression) addend of a linear MBA; a null
/// expression denotes the constant term (coefficient only).
using LinearTerm = std::pair<uint64_t, const Expr *>;

/// Decomposes a *linear* MBA expression into its terms (Definition 1).
/// Bitwise expressions are kept as written; the constant term accumulates
/// into a null-expression entry. Asserts on non-linear input.
std::vector<LinearTerm> decomposeLinearTerms(const Context &Ctx,
                                             const Expr *E);

/// Deterministic generator of MBA identities.
class Obfuscator {
public:
  Obfuscator(Context &Ctx, uint64_t Seed);

  /// A random pure-bitwise expression over \p Vars with operator depth at
  /// most \p Depth (depth 0 yields a variable or its complement).
  const Expr *randomBitwise(std::span<const Expr *const> Vars, unsigned Depth);

  /// A linear MBA expression that is identically zero, built by the
  /// null-space method over \p Vars. \p NumTerms random bitwise expressions
  /// are drawn (at least 2^|Vars| are used so the kernel is nontrivial).
  const Expr *zeroIdentity(std::span<const Expr *const> Vars,
                           unsigned NumTerms, unsigned BitwiseDepth = 2);

  /// An equivalent, more complex linear MBA for the linear \p Target:
  /// target terms plus scaled zero identities, shuffled.
  const Expr *obfuscateLinear(const Expr *Target,
                              const ObfuscationOptions &Opts);

  /// An equivalent polynomial MBA for a product-of-factors template:
  /// each factor (a variable or bitwise expression) is replaced by an
  /// equivalent linear MBA. \p Products is a list of (coefficient,
  /// factor-list) terms; the result equals
  /// sum_i Coeff_i * prod_j Factor_ij.
  struct ProductTerm {
    uint64_t Coeff;
    std::vector<const Expr *> Factors;
  };
  const Expr *obfuscatePoly(std::span<const ProductTerm> Products,
                            const ObfuscationOptions &Opts);

  /// Applies \p Rewrites bitwise-over-arithmetic identity rewrites to
  /// \p Seed, producing a non-polynomial equivalent. Partners for the
  /// rewrites are drawn over \p Vars.
  const Expr *obfuscateNonPoly(const Expr *Seed,
                               std::span<const Expr *const> Vars,
                               unsigned Rewrites);

  /// Mixes \p Count opaque-zero addends into \p Seed. Each opaque zero is
  /// a carry fact: a product of K consecutive values (v+r)*(v+r+1)*...*
  /// (v+r+K-1) is divisible by K!, so masking it to at most v2(K!) low
  /// bits (v2 = 2-adic valuation) yields an identical zero. Unlike the
  /// null-space zeros of obfuscateLinear, the fact is invisible to both
  /// the linear-signature solve and the polynomial ring: the syntactic
  /// pipeline can only abstract the product as an opaque temporary, so
  /// the masked term survives simplification as non-polynomial residue.
  /// This models the opaque-predicate constructions real obfuscators
  /// layer over MBA rewriting; removing them takes semantic
  /// reconstruction (synth/Synthesizer) or an SMT query.
  const Expr *obfuscateOpaque(const Expr *Seed,
                              std::span<const Expr *const> Vars,
                              unsigned Count);

  RNG &rng() { return Rng; }

private:
  /// Rewrites one arithmetic node a of \p E to an equivalent form that
  /// introduces a bitwise operator over it (e.g. (a|b) + (a&b) - b).
  const Expr *applyNonPolyRewrite(const Expr *E,
                                  std::span<const Expr *const> Vars);

  Context &Ctx;
  RNG Rng;
};

} // namespace mba

#endif // MBA_GEN_OBFUSCATOR_H
