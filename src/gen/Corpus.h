//===- gen/Corpus.h - The 3000-expression MBA corpus ------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regeneration of the paper's evaluation corpus (Section 3.1): 1000 linear,
/// 1000 (non-linear) polynomial and 1000 non-polynomial MBA identity
/// equations over 1-4 variables, with complexity matched to Table 1. The
/// paper collected its corpus from Syntia, Eyrolles's thesis, Tigress, Zhou
/// et al. and Hacker's Delight; those sources' samples were themselves
/// produced by the constructions implemented in Obfuscator.h, so the
/// regenerated corpus exercises the same population. The classic quotable
/// identities (SeedIdentities.h) are included verbatim at the front of each
/// category slice.
///
/// Every entry pairs the complex expression with its simple ground truth,
/// so each entry is an MBA identity equation `Obfuscated == Ground` whose
/// solver verdict must be "equivalent" — the setup of Tables 2, 6 and 7.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_GEN_CORPUS_H
#define MBA_GEN_CORPUS_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "mba/Classify.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mba {

/// One corpus identity: Obfuscated == Ground on all w-bit inputs.
struct CorpusEntry {
  const Expr *Obfuscated = nullptr;
  const Expr *Ground = nullptr;
  MBAKind Category = MBAKind::Linear;
  unsigned NumVars = 0;
};

/// Corpus shape parameters; defaults regenerate the paper-scale dataset.
struct CorpusOptions {
  unsigned LinearCount = 1000;
  unsigned PolyCount = 1000;
  unsigned NonPolyCount = 1000;
  uint64_t Seed = 20210620; ///< deterministic; default is PLDI'21's date
  unsigned MinVars = 1;
  unsigned MaxVars = 4;
  bool IncludeSeedIdentities = true;
};

/// Generates the corpus into \p Ctx. Entries are deterministic in
/// (Options.Seed, width). Each entry's category is verified syntactically;
/// equivalence holds by construction.
std::vector<CorpusEntry> generateCorpus(Context &Ctx,
                                        const CorpusOptions &Options);

/// Spot-checks Obfuscated == Ground on \p Samples random inputs; returns
/// false on any disagreement. Used by tests and the corpus tool.
bool verifyEntrySampled(const Context &Ctx, const CorpusEntry &Entry,
                        unsigned Samples, uint64_t Seed = 7);

/// Serializes entries as tab-separated "category<TAB>ground<TAB>obfuscated"
/// lines (the artifact's dataset format, adapted).
std::string corpusToText(const Context &Ctx,
                         const std::vector<CorpusEntry> &Entries);

} // namespace mba

#endif // MBA_GEN_CORPUS_H
