//===- poly/PolyExpr.h - Expression <-> polynomial conversion --*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conversion between MBA expressions and the polynomial normal form. The
/// caller chooses which sub-expressions become ring atoms through an
/// AtomMap; everything above the atoms must be arithmetic (+, -, *, unary -)
/// or constants. This implements the paper's "ArithReduce" step.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_POLY_POLYEXPR_H
#define MBA_POLY_POLYEXPR_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "poly/Polynomial.h"

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mba {

/// Bidirectional mapping between expressions designated as ring atoms and
/// their AtomIds. Atom ids are dense and assigned in registration order.
class AtomMap {
public:
  /// Returns the id of \p E, registering it on first use.
  AtomId getOrCreate(const Expr *E) {
    auto [It, Inserted] = Ids.emplace(E, (AtomId)Exprs.size());
    if (Inserted)
      Exprs.push_back(E);
    return It->second;
  }

  /// Returns the id of \p E if registered.
  std::optional<AtomId> lookup(const Expr *E) const {
    auto It = Ids.find(E);
    if (It == Ids.end())
      return std::nullopt;
    return It->second;
  }

  /// The expression of atom \p Id.
  const Expr *expr(AtomId Id) const {
    assert(Id < Exprs.size() && "unknown atom");
    return Exprs[Id];
  }

  size_t size() const { return Exprs.size(); }

private:
  std::unordered_map<const Expr *, AtomId> Ids;
  std::vector<const Expr *> Exprs;
};

/// Converts \p E to a polynomial. \p IsAtom decides which sub-expressions
/// become ring atoms (they are registered in \p Atoms); the converter
/// recurses only through arithmetic operators and constants, so \p IsAtom
/// must cover every non-arithmetic, non-constant node it can reach (bitwise
/// nodes and variables, typically).
///
/// Returns std::nullopt if a reachable node is neither arithmetic, constant,
/// nor an atom, or if expansion exceeds MaxPolynomialTerms.
std::optional<Polynomial>
exprToPolynomial(const Context &Ctx, const Expr *E, AtomMap &Atoms,
                 const std::function<bool(const Expr *)> &IsAtom);

/// Generalized conversion: \p AtomPoly may map a sub-expression directly to
/// an arbitrary polynomial (e.g. a bitwise expression to its normalized
/// linear combination over conjunction atoms — the substitution step of the
/// paper's Section 4.4). Returning std::nullopt means "not an atom": the
/// converter then recurses through arithmetic operators and constants, and
/// fails on anything else.
std::optional<Polynomial> exprToPolynomialGeneral(
    const Context &Ctx, const Expr *E,
    const std::function<std::optional<Polynomial>(const Expr *)> &AtomPoly);

/// Builds the canonical expression of \p P: terms in the deterministic
/// monomial order with the constant last, signed-coefficient formatting
/// (negative coefficients render via subtraction), and coefficient-1
/// multiplications elided. The zero polynomial yields the constant 0.
const Expr *polynomialToExpr(Context &Ctx, const Polynomial &P,
                             const AtomMap &Atoms);

/// Convenience: builds Sum_i Coeffs[i] * Exprs[i] + Constant as a
/// well-formatted expression (shared by the simplifier's normalized-form
/// and lookup-table output paths). Null entries in \p Exprs denote the
/// constant-1 "expression" (i.e. the coefficient contributes to the
/// constant).
const Expr *
buildLinearCombination(Context &Ctx,
                       const std::vector<std::pair<uint64_t, const Expr *>> &Terms,
                       uint64_t Constant);

} // namespace mba

#endif // MBA_POLY_POLYEXPR_H
