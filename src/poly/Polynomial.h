//===- poly/Polynomial.h - Polynomials over bitwise atoms -------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multivariate polynomial normal form with coefficients in Z/2^w and
/// indeterminates ("atoms") identified by small integer ids. In the MBA
/// simplifier, atoms are variables and opaque bitwise sub-expressions; the
/// polynomial ring implements the expansion/collection/cancellation step of
/// Section 4.4 (the paper's prototype delegates this to SymPy):
///
///   (x - x&y) * (y - x&y) + (x&y) * (x + y - x&y)  ==>  x*y
///
/// Monomials are sorted exponent vectors; polynomials are coefficient maps
/// keyed by monomial, so addition collects like terms and cancellation to
/// zero is automatic in the ring Z/2^w.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_POLY_POLYNOMIAL_H
#define MBA_POLY_POLYNOMIAL_H

#include <cassert>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace mba {

/// Identifies an indeterminate of the polynomial ring.
using AtomId = uint32_t;

/// A power product of atoms: sorted (atom, exponent) pairs with positive
/// exponents. The empty monomial is the constant 1.
class Monomial {
public:
  Monomial() = default;

  /// The monomial consisting of a single atom to the first power.
  static Monomial atom(AtomId Id) {
    Monomial M;
    M.Powers.push_back({Id, 1});
    return M;
  }

  /// Product of two monomials (exponents add).
  Monomial operator*(const Monomial &O) const;

  /// Total degree (sum of exponents).
  unsigned degree() const {
    unsigned D = 0;
    for (auto &[Id, E] : Powers)
      D += E;
    return D;
  }

  bool isConstant() const { return Powers.empty(); }

  /// Sole atom of a degree-1 monomial.
  AtomId linearAtom() const {
    assert(degree() == 1 && "not a degree-1 monomial");
    return Powers.front().first;
  }

  const std::vector<std::pair<AtomId, uint32_t>> &powers() const {
    return Powers;
  }

  bool operator==(const Monomial &O) const { return Powers == O.Powers; }
  bool operator<(const Monomial &O) const {
    // Order by total degree first so that iteration yields the constant
    // term, then linear terms, then higher-degree terms — the order in
    // which normalized MBA results are conventionally written.
    unsigned DA = degree(), DB = O.degree();
    if (DA != DB)
      return DA < DB;
    return Powers < O.Powers;
  }

private:
  std::vector<std::pair<AtomId, uint32_t>> Powers;
};

/// A polynomial over atoms with coefficients in Z/2^w. All arithmetic wraps
/// to the width selected by the mask provided at construction.
class Polynomial {
public:
  /// Creates the zero polynomial for words selected by \p Mask.
  explicit Polynomial(uint64_t Mask) : Mask(Mask) {}

  /// The constant polynomial \p C.
  static Polynomial constant(uint64_t C, uint64_t Mask) {
    Polynomial P(Mask);
    P.addTerm(Monomial(), C);
    return P;
  }

  /// The polynomial consisting of the single atom \p Id.
  static Polynomial atom(AtomId Id, uint64_t Mask) {
    Polynomial P(Mask);
    P.addTerm(Monomial::atom(Id), 1);
    return P;
  }

  uint64_t mask() const { return Mask; }

  /// Adds \p Coeff * \p M into the polynomial, erasing the term if the
  /// coefficient cancels to zero.
  void addTerm(const Monomial &M, uint64_t Coeff);

  Polynomial operator+(const Polynomial &O) const;
  Polynomial operator-(const Polynomial &O) const;
  Polynomial operator*(const Polynomial &O) const;
  Polynomial negated() const;

  /// Multiplies every coefficient by \p C.
  Polynomial scaled(uint64_t C) const;

  bool isZero() const { return Terms.empty(); }

  /// True when every monomial has degree <= 1 (an affine combination of
  /// atoms — a *linear MBA* once atoms are bitwise expressions).
  bool isLinear() const;

  /// Total degree; 0 for constants and for the zero polynomial.
  unsigned degree() const;

  /// Number of terms with nonzero coefficient.
  size_t numTerms() const { return Terms.size(); }

  /// Constant coefficient (0 when absent).
  uint64_t constantTerm() const;

  /// Coefficient of the degree-1 monomial of \p Id (0 when absent).
  uint64_t linearCoefficient(AtomId Id) const;

  /// If the polynomial is a single constant, returns it (the zero
  /// polynomial yields 0).
  std::optional<uint64_t> asConstant() const;

  /// Term iteration in the deterministic monomial order.
  const std::map<Monomial, uint64_t> &terms() const { return Terms; }

private:
  uint64_t Mask;
  std::map<Monomial, uint64_t> Terms;
};

/// Upper bound on intermediate term counts during products; guards against
/// exponential blow-up when expanding deeply factored expressions. Products
/// whose result would exceed the cap return std::nullopt from tryMul.
constexpr size_t MaxPolynomialTerms = 1 << 14;

/// Computes \p A * \p B unless the result would exceed MaxPolynomialTerms.
std::optional<Polynomial> tryMul(const Polynomial &A, const Polynomial &B);

} // namespace mba

#endif // MBA_POLY_POLYNOMIAL_H
