//===- poly/PolyExpr.cpp - Expression <-> polynomial conversion ----------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/PolyExpr.h"

#include "ast/Printer.h"

#include <algorithm>
#include <string>

using namespace mba;

std::optional<Polynomial> mba::exprToPolynomialGeneral(
    const Context &Ctx, const Expr *E,
    const std::function<std::optional<Polynomial>(const Expr *)> &AtomPoly) {
  uint64_t Mask = Ctx.mask();
  std::unordered_map<const Expr *, std::optional<Polynomial>> Memo;
  std::function<std::optional<Polynomial>(const Expr *)> Go =
      [&](const Expr *N) -> std::optional<Polynomial> {
    auto It = Memo.find(N);
    if (It != Memo.end())
      return It->second;
    std::optional<Polynomial> R;
    if (auto AtomResult = AtomPoly(N)) {
      R = std::move(AtomResult);
    } else if (N->isConst()) {
      R = Polynomial::constant(N->constValue(), Mask);
    } else {
      switch (N->kind()) {
      case ExprKind::Neg: {
        auto A = Go(N->operand());
        if (A)
          R = A->negated();
        break;
      }
      case ExprKind::Add: {
        auto A = Go(N->lhs());
        auto B = A ? Go(N->rhs()) : std::nullopt;
        if (A && B)
          R = *A + *B;
        break;
      }
      case ExprKind::Sub: {
        auto A = Go(N->lhs());
        auto B = A ? Go(N->rhs()) : std::nullopt;
        if (A && B)
          R = *A - *B;
        break;
      }
      case ExprKind::Mul: {
        auto A = Go(N->lhs());
        auto B = A ? Go(N->rhs()) : std::nullopt;
        if (A && B)
          R = tryMul(*A, *B); // respects the expansion cap
        break;
      }
      default:
        // A bitwise node or variable not designated as an atom: the
        // expression is outside the fragment this conversion handles.
        break;
      }
    }
    Memo.emplace(N, R);
    return R;
  };
  return Go(E);
}

std::optional<Polynomial>
mba::exprToPolynomial(const Context &Ctx, const Expr *E, AtomMap &Atoms,
                      const std::function<bool(const Expr *)> &IsAtom) {
  uint64_t Mask = Ctx.mask();
  return exprToPolynomialGeneral(
      Ctx, E, [&](const Expr *N) -> std::optional<Polynomial> {
        if (!IsAtom(N))
          return std::nullopt;
        return Polynomial::atom(Atoms.getOrCreate(N), Mask);
      });
}

namespace {

/// Builds the expression of one power product, multiplying factors in
/// printed order so the result does not depend on atom-id assignment.
const Expr *monomialExpr(Context &Ctx, const Monomial &M,
                         const AtomMap &Atoms) {
  std::vector<std::pair<std::string, const Expr *>> Factors;
  for (auto &[Id, Exp] : M.powers()) {
    const Expr *A = Atoms.expr(Id);
    std::string Key = printExpr(Ctx, A);
    for (uint32_t I = 0; I != Exp; ++I)
      Factors.push_back({Key, A});
  }
  std::sort(Factors.begin(), Factors.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  const Expr *Product = nullptr;
  for (auto &[Key, A] : Factors)
    Product = Product ? Ctx.getMul(Product, A) : A;
  assert(Product && "constant monomial has no expression");
  return Product;
}

/// Accumulates signed terms into a +/- chain. \p Factor may be null for a
/// pure-constant term.
class SumBuilder {
public:
  explicit SumBuilder(Context &Ctx) : Ctx(Ctx) {}

  void addTerm(uint64_t Coeff, const Expr *Factor) {
    Coeff &= Ctx.mask();
    if (!Coeff)
      return;
    bool Negative = Ctx.toSigned(Coeff) < 0;
    uint64_t Mag = Negative ? (0 - Coeff) & Ctx.mask() : Coeff;
    const Expr *Term;
    if (!Factor)
      Term = Ctx.getConst(Mag);
    else if (Mag == 1)
      Term = Factor;
    else
      Term = Ctx.getMul(Ctx.getConst(Mag), Factor);
    if (!Acc)
      Acc = Negative ? negate(Term) : Term;
    else
      Acc = Negative ? Ctx.getSub(Acc, Term) : Ctx.getAdd(Acc, Term);
  }

  const Expr *finish() { return Acc ? Acc : Ctx.getZero(); }

private:
  const Expr *negate(const Expr *E) {
    if (E->isConst())
      return Ctx.getConst(0 - E->constValue());
    return Ctx.getNeg(E);
  }

  Context &Ctx;
  const Expr *Acc = nullptr;
};

} // namespace

const Expr *mba::polynomialToExpr(Context &Ctx, const Polynomial &P,
                                  const AtomMap &Atoms) {
  // Order terms canonically: by total degree, then by the printed monomial.
  // Atom ids are assigned in registration order (input-dependent), so
  // sorting on them would make the output order depend on how the
  // polynomial was built; printing keys make re-simplification a fixpoint.
  struct TermRec {
    unsigned Degree;
    std::string Key;
    uint64_t Coeff;
    const Expr *Factor;
  };
  std::vector<TermRec> Terms;
  for (auto &[M, C] : P.terms()) {
    if (M.isConstant())
      continue;
    const Expr *Factor = monomialExpr(Ctx, M, Atoms);
    Terms.push_back({M.degree(), printExpr(Ctx, Factor), C, Factor});
  }
  std::sort(Terms.begin(), Terms.end(), [](const TermRec &A, const TermRec &B) {
    if (A.Degree != B.Degree)
      return A.Degree < B.Degree;
    return A.Key < B.Key;
  });

  SumBuilder Sum(Ctx);
  for (const TermRec &T : Terms)
    Sum.addTerm(T.Coeff, T.Factor);
  Sum.addTerm(P.constantTerm(), nullptr);
  return Sum.finish();
}

const Expr *mba::buildLinearCombination(
    Context &Ctx,
    const std::vector<std::pair<uint64_t, const Expr *>> &Terms,
    uint64_t Constant) {
  SumBuilder Sum(Ctx);
  for (auto &[Coeff, E] : Terms)
    Sum.addTerm(Coeff, E);
  Sum.addTerm(Constant, nullptr);
  return Sum.finish();
}
