//===- poly/Polynomial.cpp - Polynomials over bitwise atoms --------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Polynomial.h"

using namespace mba;

Monomial Monomial::operator*(const Monomial &O) const {
  Monomial Result;
  auto &Out = Result.Powers;
  size_t I = 0, J = 0;
  while (I < Powers.size() && J < O.Powers.size()) {
    if (Powers[I].first < O.Powers[J].first)
      Out.push_back(Powers[I++]);
    else if (Powers[I].first > O.Powers[J].first)
      Out.push_back(O.Powers[J++]);
    else {
      Out.push_back({Powers[I].first, Powers[I].second + O.Powers[J].second});
      ++I;
      ++J;
    }
  }
  while (I < Powers.size())
    Out.push_back(Powers[I++]);
  while (J < O.Powers.size())
    Out.push_back(O.Powers[J++]);
  return Result;
}

void Polynomial::addTerm(const Monomial &M, uint64_t Coeff) {
  Coeff &= Mask;
  if (!Coeff)
    return;
  auto [It, Inserted] = Terms.emplace(M, Coeff);
  if (Inserted)
    return;
  It->second = (It->second + Coeff) & Mask;
  if (!It->second)
    Terms.erase(It);
}

Polynomial Polynomial::operator+(const Polynomial &O) const {
  assert(Mask == O.Mask && "width mismatch");
  Polynomial R = *this;
  for (auto &[M, C] : O.Terms)
    R.addTerm(M, C);
  return R;
}

Polynomial Polynomial::operator-(const Polynomial &O) const {
  assert(Mask == O.Mask && "width mismatch");
  Polynomial R = *this;
  for (auto &[M, C] : O.Terms)
    R.addTerm(M, (0 - C) & Mask);
  return R;
}

Polynomial Polynomial::operator*(const Polynomial &O) const {
  assert(Mask == O.Mask && "width mismatch");
  Polynomial R(Mask);
  for (auto &[MA, CA] : Terms)
    for (auto &[MB, CB] : O.Terms)
      R.addTerm(MA * MB, (CA * CB) & Mask);
  return R;
}

Polynomial Polynomial::negated() const {
  Polynomial R(Mask);
  for (auto &[M, C] : Terms)
    R.addTerm(M, (0 - C) & Mask);
  return R;
}

Polynomial Polynomial::scaled(uint64_t C) const {
  Polynomial R(Mask);
  for (auto &[M, Coeff] : Terms)
    R.addTerm(M, (Coeff * C) & Mask);
  return R;
}

bool Polynomial::isLinear() const {
  for (auto &[M, C] : Terms)
    if (M.degree() > 1)
      return false;
  return true;
}

unsigned Polynomial::degree() const {
  unsigned D = 0;
  for (auto &[M, C] : Terms)
    D = std::max(D, M.degree());
  return D;
}

uint64_t Polynomial::constantTerm() const {
  auto It = Terms.find(Monomial());
  return It == Terms.end() ? 0 : It->second;
}

uint64_t Polynomial::linearCoefficient(AtomId Id) const {
  auto It = Terms.find(Monomial::atom(Id));
  return It == Terms.end() ? 0 : It->second;
}

std::optional<uint64_t> Polynomial::asConstant() const {
  if (Terms.empty())
    return 0;
  if (Terms.size() == 1 && Terms.begin()->first.isConstant())
    return Terms.begin()->second;
  return std::nullopt;
}

std::optional<Polynomial> mba::tryMul(const Polynomial &A,
                                      const Polynomial &B) {
  if (A.numTerms() * B.numTerms() > MaxPolynomialTerms)
    return std::nullopt;
  Polynomial R = A * B;
  if (R.numTerms() > MaxPolynomialTerms)
    return std::nullopt;
  return R;
}
