//===- mba/BooleanMin.h - Minimal bitwise expression synthesis -*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Smallest bitwise expression realizing a given truth function of up to
/// three variables. This powers the paper's final-step optimization
/// (Section 4.5): the simplifier's normalized output only uses conjunction
/// terms, but e.g. x + y - 2*(x&y) is really x ^ y — a pure bitwise form
/// with zero MBA alternation. At the final step MBA-Solver checks whether
/// the whole signature matches a*f + b for some bitwise function f, and
/// needs the cheapest expression of f; these tables provide it.
///
/// The search is an exhaustive breadth-first closure over the function
/// space (4 / 16 / 256 functions for 1 / 2 / 3 variables) under the
/// operators ~, &, |, ^ starting from the variables and the constants 0 and
/// -1, minimizing operator count. The closure is computed once per variable
/// count and cached for the process lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_BOOLEANMIN_H
#define MBA_MBA_BOOLEANMIN_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>

namespace mba {

/// Maximum variable count the synthesis tables cover.
constexpr unsigned MaxBooleanMinVars = 3;

/// Builds the minimal bitwise expression over \p Vars whose truth column is
/// \p Truth (bit k of \p Truth = function value on truth-table row k; rows
/// follow the TruthTable.h convention). |Vars| must be 1..MaxBooleanMinVars.
///
/// \param CostOut if non-null, receives the operator count of the result.
const Expr *synthesizeBitwise(Context &Ctx, std::span<const Expr *const> Vars,
                              uint32_t Truth, unsigned *CostOut = nullptr);

} // namespace mba

#endif // MBA_MBA_BOOLEANMIN_H
