//===- mba/Basis.h - Normalized base-vector sets ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized base-vector sets of Sections 4.3 and 7. A basis is a set
/// of 2^t expressions whose truth-table columns span Z^(2^t); expressing a
/// signature vector in the basis yields an equivalent linear MBA with
/// minimal mixing of bitwise and arithmetic operators.
///
///  * **Conjunction basis** (Table 4, generalized to t variables): the AND
///    of every nonempty variable subset, plus the constant -1. For t = 2
///    this is exactly {x, y, x&y, -1}. Its truth-table matrix is the subset
///    zeta matrix (unitriangular), so coefficients are recovered by exact
///    Moebius inversion.
///  * **Disjunction basis** (Table 9, the paper's Section 7 alternative):
///    the OR of every variable subset of size >= 2, the single variables,
///    and -1. Solved with ring Gaussian elimination; the paper suggests
///    input-dependent basis selection as future work, and the ablation
///    bench compares the two.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_BASIS_H
#define MBA_MBA_BASIS_H

#include "ast/Context.h"
#include "ast/Expr.h"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mba {

/// Which normalized basis the simplifier expresses signatures in.
enum class BasisKind : uint8_t {
  Conjunction, ///< Table 4: subset ANDs + (-1); solved by Moebius inversion
  Disjunction  ///< Table 9: subset ORs + (-1); solved by ring elimination
};

/// A linear combination sum_i Coeff_i * Term_i + Constant. The canonical
/// result form of linear MBA simplification.
struct LinearCombo {
  std::vector<std::pair<uint64_t, const Expr *>> Terms;
  uint64_t Constant = 0;

  /// Number of terms with a (necessarily nonzero) expression factor.
  size_t numExprTerms() const { return Terms.size(); }
};

/// The basis expression of variable-subset index \p Subset (truth-table
/// indexing; see TruthTable.h) over \p Vars: the AND (conjunction basis) or
/// OR (disjunction basis) of the subset's variables. |Subset| = 1 yields the
/// variable itself. \p Subset must be nonzero (index 0 denotes the constant
/// -1, which has no expression factor).
const Expr *basisExpr(Context &Ctx, BasisKind Kind, unsigned Subset,
                      std::span<const Expr *const> Vars);

/// Expresses the signature vector \p Sig (2^|Vars| entries) in the chosen
/// basis: the returned combination is the normalized linear MBA with
/// signature \p Sig. Exact over Z/2^w.
LinearCombo solveBasis(Context &Ctx, BasisKind Kind,
                       std::span<const uint64_t> Sig,
                       std::span<const Expr *const> Vars);

} // namespace mba

#endif // MBA_MBA_BASIS_H
