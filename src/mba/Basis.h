//===- mba/Basis.h - Normalized base-vector sets ----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized base-vector sets of Sections 4.3 and 7. A basis is a set
/// of 2^t expressions whose truth-table columns span Z^(2^t); expressing a
/// signature vector in the basis yields an equivalent linear MBA with
/// minimal mixing of bitwise and arithmetic operators.
///
///  * **Conjunction basis** (Table 4, generalized to t variables): the AND
///    of every nonempty variable subset, plus the constant -1. For t = 2
///    this is exactly {x, y, x&y, -1}. Its truth-table matrix is the subset
///    zeta matrix (unitriangular), so coefficients are recovered by exact
///    Moebius inversion.
///  * **Disjunction basis** (Table 9, the paper's Section 7 alternative):
///    the OR of every variable subset of size >= 2, the single variables,
///    and -1. Solved with ring Gaussian elimination; the paper suggests
///    input-dependent basis selection as future work, and the ablation
///    bench compares the two.
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_BASIS_H
#define MBA_MBA_BASIS_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/Cache.h"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace mba {

/// Which normalized basis the simplifier expresses signatures in.
enum class BasisKind : uint8_t {
  Conjunction, ///< Table 4: subset ANDs + (-1); solved by Moebius inversion
  Disjunction  ///< Table 9: subset ORs + (-1); solved by ring elimination
};

/// A linear combination sum_i Coeff_i * Term_i + Constant. The canonical
/// result form of linear MBA simplification.
struct LinearCombo {
  std::vector<std::pair<uint64_t, const Expr *>> Terms;
  uint64_t Constant = 0;

  /// Number of terms with a (necessarily nonzero) expression factor.
  size_t numExprTerms() const { return Terms.size(); }
};

/// The basis expression of variable-subset index \p Subset (truth-table
/// indexing; see TruthTable.h) over \p Vars: the AND (conjunction basis) or
/// OR (disjunction basis) of the subset's variables. |Subset| = 1 yields the
/// variable itself. \p Subset must be nonzero (index 0 denotes the constant
/// -1, which has no expression factor).
const Expr *basisExpr(Context &Ctx, BasisKind Kind, unsigned Subset,
                      std::span<const Expr *const> Vars);

/// Expression-free form of a basis solve: the chosen basis, the folded
/// constant, and the nonzero coefficients by variable-subset index, in the
/// exact order solveBasis emits them. Because it references variables only
/// by position, a solution is shareable across variable sets, contexts and
/// processes — it is what the basis cache stores and snapshots.
struct BasisSolution {
  BasisKind Kind = BasisKind::Conjunction;
  uint64_t Constant = 0;
  /// (subset index, coefficient) pairs in emission order (singletons first,
  /// then pairs, ...; see solveBasis).
  std::vector<std::pair<unsigned, uint64_t>> Terms;
};

/// The solve itself, without building expressions: expresses \p Sig
/// (2^NumVars entries) in basis \p Kind over Z/2^w (width selected by
/// \p Mask). A pure function of its arguments.
BasisSolution solveBasisRaw(BasisKind Kind, std::span<const uint64_t> Sig,
                            unsigned NumVars, uint64_t Mask);

/// Instantiates \p Solution over \p Vars: builds the basis expression of
/// every term's subset and returns the combination. Bit-identical to the
/// combination a direct solveBasis call would return.
LinearCombo comboFromSolution(Context &Ctx, const BasisSolution &Solution,
                              std::span<const Expr *const> Vars);

/// Expresses the signature vector \p Sig (2^|Vars| entries) in the chosen
/// basis: the returned combination is the normalized linear MBA with
/// signature \p Sig. Exact over Z/2^w. Equivalent to
/// comboFromSolution(solveBasisRaw(...)).
LinearCombo solveBasis(Context &Ctx, BasisKind Kind,
                       std::span<const uint64_t> Sig,
                       std::span<const Expr *const> Vars);

/// Thread-safe memo of basis solves (the Section 4.5 lookup table, made
/// cross-call and cross-thread): a ShardedCache of BasisSolutions keyed on
/// hash(width, basis mode, signature[, variable names — AutoBasis only;
/// see MBASolver::normalizedCombo]). Snapshots as one section of the cache
/// persistence format.
class BasisCache {
public:
  explicit BasisCache(size_t Capacity = 1 << 16) : Cache(Capacity) {}

  bool lookup(uint64_t Key, BasisSolution &Out) {
    return Cache.lookup(Key, Out);
  }
  void insert(uint64_t Key, const BasisSolution &S) { Cache.insert(Key, S); }

  CacheStats stats() const { return Cache.stats(); }
  void clear() { Cache.clear(); }

  void save(SnapshotWriter &W) const;
  /// Loads one snapshot section (header already consumed by the caller's
  /// nextSection loop). Returns the number of entries loaded.
  size_t loadSection(SnapshotReader &R, uint64_t Count);

  static constexpr const char *SectionName = "basis.solutions";

private:
  ShardedCache<BasisSolution> Cache;
};

} // namespace mba

#endif // MBA_MBA_BASIS_H
