//===- mba/SimplifyCache.cpp - Cross-call simplification cache ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/SimplifyCache.h"

#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

#include <cassert>

using namespace mba;

const Expr *SimplifyCache::lookup(ShardedCache<const Expr *> &Layer,
                                  uint64_t Key, Context &Dst) {
  assert(Dst.width() == Store.width() &&
         "simplify cache used with a context of a different width");
  const Expr *Stored = nullptr;
  if (!Layer.lookup(Key, Stored))
    return nullptr;
  // No store lock: Stored and everything it references were fully built
  // before the inserting thread released the shard mutex, and this thread
  // acquired that mutex inside Layer.lookup — the nodes are immutable and
  // safely published. cloneExpr only reads node fields.
  return cloneExpr(Dst, Stored);
}

const Expr *SimplifyCache::intern(const Expr *E) {
  assert(E && "caching a null expression");
  std::lock_guard<std::mutex> Lock(StoreMu);
  // The store context is touched by whichever thread inserts; re-adopt so
  // its owner-thread guardrail (debug builds) accepts serialized
  // multi-thread use.
  Store.adoptByCurrentThread();
  return cloneExpr(Store, E);
}

void SimplifyCache::save(SnapshotWriter &W) const {
  std::lock_guard<std::mutex> Lock(StoreMu);
  const_cast<Context &>(Store).adoptByCurrentThread();
  auto Encode = [this](const Expr *E, std::vector<uint8_t> &Out) {
    std::string S = printExpr(Store, E);
    Out.insert(Out.end(), S.begin(), S.end());
  };
  saveCacheSection(W, ResultSection, Results, Encode);
  saveCacheSection(W, LinearSection, Linear, Encode);
}

bool SimplifyCache::loadSection(SnapshotReader &R, std::string_view Name,
                                uint64_t Count) {
  ShardedCache<const Expr *> *Layer = nullptr;
  if (Name == ResultSection)
    Layer = &Results;
  else if (Name == LinearSection)
    Layer = &Linear;
  else
    return false;

  std::lock_guard<std::mutex> Lock(StoreMu);
  Store.adoptByCurrentThread();
  loadCacheSection(
      R, Count, *Layer,
      [this](const std::vector<uint8_t> &Buf) -> std::optional<const Expr *> {
        std::string_view Text((const char *)Buf.data(), Buf.size());
        ParseResult P = parseExpr(Store, Text);
        if (!P.ok())
          return std::nullopt; // unparseable payload: drop the entry
        return P.E;
      });
  return true;
}
