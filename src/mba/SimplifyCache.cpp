//===- mba/SimplifyCache.cpp - Cross-call simplification cache ------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/SimplifyCache.h"

#include "ast/ExprUtils.h"
#include "ast/Parser.h"
#include "ast/Printer.h"

#include <cassert>

using namespace mba;

const Expr *SimplifyCache::lookup(ShardedCache<const Expr *> &Layer,
                                  uint64_t Key, Context &Dst) {
  // width() (not Store.width()): the lock-free read of the guarded store
  // context was a discipline violation the annotations flagged.
  assert(Dst.width() == width() &&
         "simplify cache used with a context of a different width");
  const Expr *Stored = nullptr;
  if (!Layer.lookup(Key, Stored))
    return nullptr;
  // No store lock: Stored and everything it references were fully built
  // before the inserting thread released the shard mutex, and this thread
  // acquired that mutex inside Layer.lookup — the nodes are immutable and
  // safely published. cloneExpr only reads node fields.
  return cloneExpr(Dst, Stored);
}

const Expr *SimplifyCache::intern(const Expr *E) {
  assert(E && "caching a null expression");
  MutexLock Lock(StoreMu);
  // The store context is touched by whichever thread inserts; re-adopt so
  // its owner-thread guardrail (debug builds) accepts serialized
  // multi-thread use.
  Store.adoptByCurrentThread();
  return cloneExpr(Store, E);
}

void SimplifyCache::save(SnapshotWriter &W) const {
  MutexLock Lock(StoreMu);
  const_cast<Context &>(Store).adoptByCurrentThread();
  // Open-coded rather than via saveCacheSection's Encode callback: the
  // thread-safety analysis cannot see into a lambda that touches the
  // guarded Store, but it does see these accesses under StoreMu.
  for (const ShardedCache<const Expr *> *Layer : {&Results, &Linear}) {
    auto Entries = Layer->entries();
    W.beginSection(Layer == &Results ? ResultSection : LinearSection,
                   Entries.size());
    std::vector<uint8_t> Buf;
    for (const auto &[Key, Value] : Entries) {
      Buf.clear();
      std::string S = printExpr(Store, Value);
      Buf.insert(Buf.end(), S.begin(), S.end());
      W.entry(Key, Buf);
    }
  }
}

bool SimplifyCache::loadSection(SnapshotReader &R, std::string_view Name,
                                uint64_t Count) {
  ShardedCache<const Expr *> *Layer = nullptr;
  if (Name == ResultSection)
    Layer = &Results;
  else if (Name == LinearSection)
    Layer = &Linear;
  else
    return false;

  MutexLock Lock(StoreMu);
  Store.adoptByCurrentThread();
  // Open-coded for the same reason as save(): the guarded parse into the
  // store context must be visible to the analysis, not hidden in a
  // Decode callback.
  uint64_t Key = 0;
  std::vector<uint8_t> Buf;
  for (uint64_t I = 0; I != Count; ++I) {
    if (!R.entry(Key, Buf))
      break;
    std::string_view Text((const char *)Buf.data(), Buf.size());
    ParseResult P = parseExpr(Store, Text);
    if (!P.ok())
      continue; // unparseable payload: drop the entry
    Layer->insert(Key, P.E);
  }
  return true;
}
