//===- mba/KnownBits.cpp - Known-bits dataflow analysis -------------------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/KnownBits.h"

#include "ast/ExprUtils.h"

#include <bit>

using namespace mba;

namespace {

/// Mask of the low \p N bits (N <= 64).
uint64_t lowBits(unsigned N) {
  return N >= 64 ? ~0ULL : ((1ULL << N) - 1);
}

/// Known bits of A + B + CarryIn (carry-in fully known). Bits of the sum
/// are determined from the least-significant end as long as both operands
/// are determined: a carry out of a fully known prefix is itself known.
KnownBits addKnown(KnownBits A, KnownBits B, uint64_t CarryIn,
                   uint64_t Mask) {
  unsigned TrailA = (unsigned)std::countr_one(A.knownMask());
  unsigned TrailB = (unsigned)std::countr_one(B.knownMask());
  unsigned Known = std::min(TrailA, TrailB);
  if (Known == 0)
    return KnownBits();
  uint64_t Window = lowBits(Known);
  uint64_t Sum = (A.One & Window) + (B.One & Window) + CarryIn;
  KnownBits R;
  R.One = Sum & Window & Mask;
  R.Zero = ~Sum & Window & Mask;
  return R;
}

} // namespace

KnownBits
mba::computeKnownBits(const Context &Ctx, const Expr *E,
                      std::unordered_map<const Expr *, KnownBits> &Memo) {
  uint64_t Mask = Ctx.mask();
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (Memo.find(N) != Memo.end())
      return;
    KnownBits K;
    switch (N->kind()) {
    case ExprKind::Var:
      break; // nothing known
    case ExprKind::Const:
      K.One = N->constValue();
      K.Zero = ~N->constValue() & Mask;
      break;
    case ExprKind::Not: {
      KnownBits A = Memo.at(N->operand());
      K.Zero = A.One;
      K.One = A.Zero;
      break;
    }
    case ExprKind::And: {
      KnownBits A = Memo.at(N->lhs()), B = Memo.at(N->rhs());
      K.One = A.One & B.One;
      K.Zero = (A.Zero | B.Zero) & Mask;
      break;
    }
    case ExprKind::Or: {
      KnownBits A = Memo.at(N->lhs()), B = Memo.at(N->rhs());
      K.One = A.One | B.One;
      K.Zero = A.Zero & B.Zero;
      break;
    }
    case ExprKind::Xor: {
      KnownBits A = Memo.at(N->lhs()), B = Memo.at(N->rhs());
      K.One = (A.One & B.Zero) | (A.Zero & B.One);
      K.Zero = (A.Zero & B.Zero) | (A.One & B.One);
      break;
    }
    case ExprKind::Add:
      K = addKnown(Memo.at(N->lhs()), Memo.at(N->rhs()), 0, Mask);
      break;
    case ExprKind::Sub: {
      // a - b == a + ~b + 1.
      KnownBits B = Memo.at(N->rhs());
      KnownBits NotB{B.One, B.Zero};
      K = addKnown(Memo.at(N->lhs()), NotB, 1, Mask);
      break;
    }
    case ExprKind::Neg: {
      // -a == ~a + 1.
      KnownBits A = Memo.at(N->operand());
      KnownBits NotA{A.One, A.Zero};
      KnownBits Zero;
      Zero.Zero = Mask; // the constant 0
      K = addKnown(Zero, NotA, 1, Mask);
      break;
    }
    case ExprKind::Mul: {
      // The low k bits of a product depend only on the low k bits of the
      // factors; when both are known on a low window, so is the product on
      // that window. Trailing zeros additionally accumulate.
      KnownBits A = Memo.at(N->lhs()), B = Memo.at(N->rhs());
      unsigned TrailA = (unsigned)std::countr_one(A.knownMask());
      unsigned TrailB = (unsigned)std::countr_one(B.knownMask());
      unsigned Known = std::min(TrailA, TrailB);
      if (Known) {
        uint64_t Window = lowBits(Known);
        uint64_t Prod = (A.One & Window) * (B.One & Window);
        K.One = Prod & Window & Mask;
        K.Zero = ~Prod & Window & Mask;
      }
      // Factor trailing zeros: tz(a*b) >= tz(a) + tz(b).
      unsigned TzA = (unsigned)std::countr_one(A.Zero);
      unsigned TzB = (unsigned)std::countr_one(B.Zero);
      unsigned Tz = std::min(64u, TzA + TzB);
      K.Zero |= lowBits(Tz) & Mask & ~K.One;
      break;
    }
    }
    assert((K.Zero & K.One) == 0 && "contradictory known bits");
    Memo.emplace(N, K);
  });
  return Memo.at(E);
}

KnownBits mba::computeKnownBits(const Context &Ctx, const Expr *E) {
  std::unordered_map<const Expr *, KnownBits> Memo;
  return computeKnownBits(Ctx, E, Memo);
}

const Expr *mba::foldKnownBits(Context &Ctx, const Expr *E) {
  std::unordered_map<const Expr *, KnownBits> Memo;
  computeKnownBits(Ctx, E, Memo);
  uint64_t Mask = Ctx.mask();
  return rewriteBottomUp(Ctx, E, [&](const Expr *N) -> const Expr * {
    if (N->isLeaf())
      return N;
    // Note: rebuilt nodes may be absent from the memo (their operands were
    // folded); analyze on demand.
    auto It = Memo.find(N);
    KnownBits K =
        It != Memo.end() ? It->second : computeKnownBits(Ctx, N, Memo);
    if (K.isConstant(Mask))
      return Ctx.getConst(K.One);
    return N;
  });
}
