//===- mba/Metrics.cpp - MBA complexity metrics -----------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Metrics.h"

#include "ast/ExprUtils.h"
#include "ast/Printer.h"

#include <unordered_map>

using namespace mba;

namespace {

enum class OpClass { Arithmetic, Bitwise, Leaf };

OpClass opClassOf(const Expr *E) {
  if (E->isLeaf())
    return OpClass::Leaf;
  return isArithmeticKind(E->kind()) ? OpClass::Arithmetic : OpClass::Bitwise;
}

uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t S = A + B;
  return S < A ? UINT64_MAX : S;
}

} // namespace

uint64_t mba::mbaAlternation(const Expr *E) {
  // Tree-semantics count via DAG memoization: each node's count is the sum
  // over its children of (child count + 1 if the operator classes differ).
  std::unordered_map<const Expr *, uint64_t> Memo;
  forEachNodePostOrder(E, [&](const Expr *N) {
    uint64_t Count = 0;
    OpClass MyClass = opClassOf(N);
    for (unsigned I = 0, NumOps = N->numOperands(); I != NumOps; ++I) {
      const Expr *C = N->getOperand(I);
      Count = saturatingAdd(Count, Memo.at(C));
      OpClass ChildClass = opClassOf(C);
      if (ChildClass != OpClass::Leaf && ChildClass != MyClass)
        Count = saturatingAdd(Count, 1);
    }
    Memo.emplace(N, Count);
  });
  return Memo.at(E);
}

uint64_t mba::countTerms(const Expr *E) {
  std::unordered_map<const Expr *, uint64_t> Memo;
  forEachNodePostOrder(E, [&](const Expr *N) {
    uint64_t Count;
    switch (N->kind()) {
    case ExprKind::Add:
    case ExprKind::Sub:
      Count = saturatingAdd(Memo.at(N->lhs()), Memo.at(N->rhs()));
      break;
    case ExprKind::Neg:
      Count = Memo.at(N->operand());
      break;
    default:
      Count = 1;
      break;
    }
    Memo.emplace(N, Count);
  });
  return Memo.at(E);
}

uint64_t mba::maxCoefficient(const Context &Ctx, const Expr *E) {
  uint64_t Max = 0;
  forEachNodePostOrder(E, [&](const Expr *N) {
    if (!N->isConst())
      return;
    uint64_t V = N->constValue();
    uint64_t Magnitude =
        Ctx.toSigned(V) < 0 ? (0 - V) & Ctx.mask() : V;
    Max = std::max(Max, Magnitude);
  });
  return Max;
}

ComplexityMetrics mba::measureComplexity(const Context &Ctx, const Expr *E) {
  ComplexityMetrics M;
  M.Kind = classifyMBA(Ctx, E);
  M.NumVariables = (unsigned)collectVariables(E).size();
  M.Alternation = mbaAlternation(E);
  M.Length = printExpr(Ctx, E).size();
  M.NumTerms = countTerms(E);
  M.MaxCoefficient = maxCoefficient(Ctx, E);
  return M;
}
