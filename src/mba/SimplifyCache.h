//===- mba/SimplifyCache.h - Cross-call simplification cache ----*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared simplification cache: thread-safe, cross-call memoization of
/// simplifier outputs, layered on the sharded LRU of support/Cache.h. Two
/// layers with different key semantics:
///
///  * **Linear layer** — keyed on the canonical *semantic* key of a linear
///    MBA: hash(width, basis options, variable names, signature vector).
///    By Theorem 1 the signature determines the function, and the stored
///    value (the normalized rebuild of the signature) is a pure function of
///    the key, so structurally different but semantically equal
///    subexpressions simplify once per process.
///  * **Result layer** — keyed on the *structural* fingerprint of a whole
///    input: hash(exprFingerprint, width, options fingerprint). The full
///    pipeline's output is not a pure function of input semantics (the
///    simplifier guarantees never to increase alternation *relative to the
///    input form*), so whole-expression memoization must key on structure
///    to keep cached and uncached runs bit-identical. This layer is the
///    warm-run fast path: a hit replaces a full pipeline pass with a hash
///    and a clone.
///
/// Values are expressions. The cache owns a private store Context; inserts
/// clone the value into the store under the store mutex, lookups clone the
/// stored node into the caller's Context with cloneExpr. Stored nodes are
/// immutable and their publication is ordered by the shard mutex, so
/// clone-out needs no store lock (TSan-clean; see docs/PERF.md).
///
//===----------------------------------------------------------------------===//

#ifndef MBA_MBA_SIMPLIFYCACHE_H
#define MBA_MBA_SIMPLIFYCACHE_H

#include "ast/Context.h"
#include "ast/Expr.h"
#include "support/Cache.h"
#include "support/ThreadSafety.h"

namespace mba {

class SimplifyCache {
public:
  /// \p Width must match every Context the cache is used with (cloneExpr
  /// requires equal widths; enforced by assertion on lookup/insert).
  explicit SimplifyCache(unsigned Width, size_t ResultCapacity = 1 << 16,
                         size_t LinearCapacity = 1 << 16)
      : Width(Width), Store(Width), Results(ResultCapacity),
        Linear(LinearCapacity) {}

  /// Lock-discipline fix surfaced by the annotations: this used to read
  /// Store.width() without StoreMu. The width is immutable, so the race was
  /// benign, but the analysis cannot know that — and a separate const copy
  /// states the invariant instead of relying on it.
  unsigned width() const { return Width; }

  /// Returns the cached result cloned into \p Dst, or nullptr on miss.
  const Expr *lookupResult(uint64_t Key, Context &Dst) {
    return lookup(Results, Key, Dst);
  }
  const Expr *lookupLinear(uint64_t Key, Context &Dst) {
    return lookup(Linear, Key, Dst);
  }

  /// Clones \p E (from any same-width context) into the store and caches
  /// it under \p Key.
  void insertResult(uint64_t Key, const Expr *E) {
    Results.insert(Key, intern(E));
  }
  void insertLinear(uint64_t Key, const Expr *E) {
    Linear.insert(Key, intern(E));
  }

  CacheStats resultStats() const { return Results.stats(); }
  CacheStats linearStats() const { return Linear.stats(); }

  /// Writes both layers as snapshot sections (values as printed
  /// expressions, re-parsed on load).
  void save(SnapshotWriter &W) const MBA_EXCLUDES(StoreMu);

  /// Loads one section by name if it belongs to this cache; returns false
  /// for foreign section names (caller skips those entries itself).
  bool loadSection(SnapshotReader &R, std::string_view Name, uint64_t Count)
      MBA_EXCLUDES(StoreMu);

  static constexpr const char *ResultSection = "simplify.result";
  static constexpr const char *LinearSection = "simplify.linear";

private:
  const Expr *lookup(ShardedCache<const Expr *> &Layer, uint64_t Key,
                     Context &Dst);
  const Expr *intern(const Expr *E) MBA_EXCLUDES(StoreMu);

  const unsigned Width;
  /// Guards Store (interning is not thread-safe); the cached Expr pointers
  /// themselves are immutable once published through a shard mutex.
  mutable Mutex StoreMu;
  Context Store MBA_GUARDED_BY(StoreMu);
  ShardedCache<const Expr *> Results;
  ShardedCache<const Expr *> Linear;
};

} // namespace mba

#endif // MBA_MBA_SIMPLIFYCACHE_H
