//===- mba/Basis.cpp - Normalized base-vector sets --------------*- C++ -*-===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Basis.h"

#include "linalg/ModSolver.h"
#include "linalg/Subset.h"
#include "linalg/TruthTable.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace mba;

const Expr *mba::basisExpr(Context &Ctx, BasisKind Kind, unsigned Subset,
                           std::span<const Expr *const> Vars) {
  assert(Subset != 0 && "subset 0 is the constant -1, not an expression");
  assert(Subset < (1u << Vars.size()) && "subset index out of range");
  const Expr *Acc = nullptr;
  unsigned T = (unsigned)Vars.size();
  for (unsigned I = 0; I != T; ++I) {
    if (!truthBit(Subset, I, T))
      continue;
    const Expr *V = Vars[I];
    if (!Acc)
      Acc = V;
    else
      Acc = Kind == BasisKind::Conjunction ? Ctx.getAnd(Acc, V)
                                           : Ctx.getOr(Acc, V);
  }
  return Acc;
}

namespace {

/// Coefficients of \p Sig in the conjunction basis: Moebius inversion, since
/// the basis truth-table matrix is the subset zeta matrix.
std::vector<uint64_t> solveConjunction(std::span<const uint64_t> Sig,
                                       uint64_t Mask) {
  std::vector<uint64_t> C(Sig.begin(), Sig.end());
  subsetMoebius(C, Mask);
  return C;
}

/// Coefficients of \p Sig in the disjunction basis, by ring elimination on
/// the basis truth-table matrix (invertible: checked by construction in the
/// unit tests and asserted here).
std::vector<uint64_t> solveDisjunction(std::span<const uint64_t> Sig,
                                       unsigned T, uint64_t Mask) {
  unsigned N = 1u << T;
  SquareMatrix A;
  A.N = N;
  A.Data.assign((size_t)N * N, 0);
  for (unsigned Row = 0; Row != N; ++Row) {
    for (unsigned Col = 0; Col != N; ++Col) {
      // Column 0 is the all-ones (-1 encoded) column; column S>0 is the
      // truth column of OR over subset S: 1 iff S intersects the row's
      // true-variable set. Row bit layout equals subset bit layout.
      uint8_t Bit = Col == 0 ? 1 : ((Col & Row) != 0);
      A.at(Row, Col) = Bit;
    }
  }
  auto X = solveInvertibleMod2N(A, Sig, Mask);
  assert(X && "disjunction basis matrix must be invertible over Z/2^w");
  return *X;
}

} // namespace

BasisSolution mba::solveBasisRaw(BasisKind Kind, std::span<const uint64_t> Sig,
                                 unsigned NumVars, uint64_t Mask) {
  MBA_TRACE_SPAN("mba.basis_solve");
  static telemetry::Counter &Solves = telemetry::counter("basis.solves");
  Solves.add();
  assert(Sig.size() == (1u << NumVars) && "signature size mismatch");
  std::vector<uint64_t> C = Kind == BasisKind::Conjunction
                                ? solveConjunction(Sig, Mask)
                                : solveDisjunction(Sig, NumVars, Mask);

  BasisSolution Solution;
  Solution.Kind = Kind;
  // Subset 0 is the constant -1 with coefficient C[0]; fold the sign into
  // the combination's constant term.
  Solution.Constant = (0 - C[0]) & Mask;
  // Emit singletons first, then pairs, etc.; within one size, descending
  // subset index puts earlier-named variables first (variable i occupies
  // bit t-1-i), so the printed form reads x + y + (x&y) + ...
  std::vector<unsigned> Order;
  for (unsigned S = 1; S != (1u << NumVars); ++S)
    if (C[S])
      Order.push_back(S);
  std::sort(Order.begin(), Order.end(), [](unsigned A, unsigned B) {
    unsigned PA = (unsigned)__builtin_popcount(A);
    unsigned PB = (unsigned)__builtin_popcount(B);
    if (PA != PB)
      return PA < PB;
    return A > B;
  });
  for (unsigned S : Order)
    Solution.Terms.push_back({S, C[S]});
  return Solution;
}

LinearCombo mba::comboFromSolution(Context &Ctx, const BasisSolution &Solution,
                                   std::span<const Expr *const> Vars) {
  LinearCombo Combo;
  Combo.Constant = Solution.Constant;
  Combo.Terms.reserve(Solution.Terms.size());
  for (const auto &[Subset, Coeff] : Solution.Terms)
    Combo.Terms.push_back(
        {Coeff, basisExpr(Ctx, Solution.Kind, Subset, Vars)});
  return Combo;
}

LinearCombo mba::solveBasis(Context &Ctx, BasisKind Kind,
                            std::span<const uint64_t> Sig,
                            std::span<const Expr *const> Vars) {
  return comboFromSolution(
      Ctx, solveBasisRaw(Kind, Sig, (unsigned)Vars.size(), Ctx.mask()), Vars);
}

//===----------------------------------------------------------------------===//
// BasisCache snapshot codec
//===----------------------------------------------------------------------===//
//
// Payload: u8 kind, u64 constant, u32 term count, then (u32 subset,
// u64 coefficient) per term, in emission order.

void BasisCache::save(SnapshotWriter &W) const {
  saveCacheSection(W, SectionName, Cache,
                   [](const BasisSolution &S, std::vector<uint8_t> &Out) {
                     putU8(Out, (uint8_t)S.Kind);
                     putU64(Out, S.Constant);
                     putU32(Out, (uint32_t)S.Terms.size());
                     for (const auto &[Subset, Coeff] : S.Terms) {
                       putU32(Out, Subset);
                       putU64(Out, Coeff);
                     }
                   });
}

size_t BasisCache::loadSection(SnapshotReader &R, uint64_t Count) {
  return loadCacheSection(
      R, Count, Cache,
      [](const std::vector<uint8_t> &Buf) -> std::optional<BasisSolution> {
        ByteCursor Cur(Buf);
        BasisSolution S;
        uint8_t Kind = Cur.u8();
        if (Kind > (uint8_t)BasisKind::Disjunction)
          return std::nullopt;
        S.Kind = (BasisKind)Kind;
        S.Constant = Cur.u64();
        uint32_t NumTerms = Cur.u32();
        if (Cur.failed() || NumTerms > (1u << 20))
          return std::nullopt;
        S.Terms.reserve(NumTerms);
        for (uint32_t I = 0; I != NumTerms; ++I) {
          unsigned Subset = Cur.u32();
          uint64_t Coeff = Cur.u64();
          S.Terms.push_back({Subset, Coeff});
        }
        if (Cur.failed() || !Cur.atEnd())
          return std::nullopt;
        return S;
      });
}
