//===- mba/Classify.cpp - Linear / poly / non-poly classification --------===//
//
// Part of the MBA-Solver reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "mba/Classify.h"

#include "ast/ExprUtils.h"
#include "support/Telemetry.h"

#include <unordered_map>

using namespace mba;

const char *mba::mbaKindName(MBAKind K) {
  switch (K) {
  case MBAKind::Linear:
    return "linear";
  case MBAKind::Polynomial:
    return "poly";
  case MBAKind::NonPolynomial:
    return "non-poly";
  }
  return "?";
}

namespace {

/// Per-node classification facts, computed in one post-order pass.
struct Facts {
  bool PureBitwise;     ///< vars, 0/-1 constants, and &,|,^,~ only
  bool Linear;          ///< Definition 1 shape
  bool Poly;            ///< Definition 2 shape
  bool IsConstant;      ///< no variables below: evaluates to Value
  uint64_t Value;       ///< the constant's value (when IsConstant)
};

Facts computeFacts(const Context &Ctx, const Expr *E) {
  std::unordered_map<const Expr *, Facts> Memo;
  // Post-order guarantees children are classified before their parents, and
  // the iterative walk keeps recursion depth independent of the expression.
  uint64_t Mask = Ctx.mask();
  forEachNodePostOrder(E, [&](const Expr *N) {
    Facts F{false, false, false, false, 0};
    switch (N->kind()) {
    case ExprKind::Var:
      F = {true, true, true, false, 0};
      break;
    case ExprKind::Const:
      F.IsConstant = true;
      F.Value = N->constValue();
      break;
    case ExprKind::Not: {
      const Facts &A = Memo.at(N->operand());
      F.PureBitwise = A.PureBitwise;
      F.Linear = F.Poly = A.PureBitwise;
      if (A.IsConstant) {
        F.IsConstant = true;
        F.Value = ~A.Value & Mask;
      }
      break;
    }
    case ExprKind::And:
    case ExprKind::Or:
    case ExprKind::Xor: {
      const Facts &A = Memo.at(N->lhs());
      const Facts &B = Memo.at(N->rhs());
      F.PureBitwise = A.PureBitwise && B.PureBitwise;
      F.Linear = F.Poly = F.PureBitwise;
      if (A.IsConstant && B.IsConstant) {
        F.IsConstant = true;
        F.Value = N->kind() == ExprKind::And  ? (A.Value & B.Value)
                  : N->kind() == ExprKind::Or ? (A.Value | B.Value)
                                              : (A.Value ^ B.Value);
      }
      break;
    }
    case ExprKind::Neg: {
      const Facts &A = Memo.at(N->operand());
      F.Linear = A.Linear;
      F.Poly = A.Poly;
      if (A.IsConstant) {
        F.IsConstant = true;
        F.Value = (0 - A.Value) & Mask;
      }
      break;
    }
    case ExprKind::Add:
    case ExprKind::Sub: {
      const Facts &A = Memo.at(N->lhs());
      const Facts &B = Memo.at(N->rhs());
      F.Linear = A.Linear && B.Linear;
      F.Poly = A.Poly && B.Poly;
      if (A.IsConstant && B.IsConstant) {
        F.IsConstant = true;
        F.Value = (N->kind() == ExprKind::Add ? A.Value + B.Value
                                              : A.Value - B.Value) &
                  Mask;
      }
      break;
    }
    case ExprKind::Mul: {
      const Facts &A = Memo.at(N->lhs());
      const Facts &B = Memo.at(N->rhs());
      // Multiplying by a constant-valued side keeps linearity; any
      // product of polynomial shapes is polynomial (it expands to
      // Definition 2 form).
      F.Linear = (A.IsConstant && B.Linear) || (B.IsConstant && A.Linear);
      F.Poly = A.Poly && B.Poly;
      if (A.IsConstant && B.IsConstant) {
        F.IsConstant = true;
        F.Value = (A.Value * B.Value) & Mask;
      }
      break;
    }
    }
    if (F.IsConstant) {
      // A variable-free subtree behaves exactly like the constant it
      // evaluates to: 0 and -1 have uniform truth columns (legitimate
      // "bitwise" atoms — the paper's all-"1" column is encoded -1), and
      // any constant is a valid linear/poly term on its own.
      F.PureBitwise = F.Value == 0 || F.Value == Mask;
      F.Linear = true;
      F.Poly = true;
    }
    Memo.emplace(N, F);
  });
  return Memo.at(E);
}

} // namespace

bool mba::isPureBitwise(const Context &Ctx, const Expr *E) {
  return computeFacts(Ctx, E).PureBitwise;
}

MBAKind mba::classifyMBA(const Context &Ctx, const Expr *E) {
  MBA_TRACE_SPAN("mba.classify");
  Facts F = computeFacts(Ctx, E);
  if (F.Linear)
    return MBAKind::Linear;
  if (F.Poly)
    return MBAKind::Polynomial;
  return MBAKind::NonPolynomial;
}
